// Fig. 7 — "CPU overload caused by heavy-hitter flows": in 12 historical
// overload scenes, the top-1/top-2 flows dominate the overloaded core's
// traffic. Here each scene is an independent flow population (different
// seed); we report the traffic share of the top flows on the most loaded
// core.

#include <cstdio>

#include "bench_util.hpp"
#include "x86_region_sim.hpp"

using namespace sf;

int main() {
  bench::print_header(
      "Fig. 7", "top-flow share on the overloaded core, 12 scenes");

  sim::TablePrinter table({"Scene", "Top-1 flow", "Top-2 flow",
                           "Else (~100 flows)", "Core util"});
  double top2_sum = 0;
  int dominated = 0;
  for (int scene = 1; scene <= 12; ++scene) {
    bench::X86RegionSim::Config config;
    config.seed = 3000 + static_cast<std::uint64_t>(scene);
    bench::X86RegionSim sim(config);
    // Sample at the diurnal peak.
    const auto reports =
        sim.step(workload::hours(config.pattern.peak_hour));

    const x86::CoreLoad* hottest = nullptr;
    for (const auto& report : reports) {
      for (const auto& core : report.cores) {
        if (hottest == nullptr ||
            core.utilization > hottest->utilization) {
          hottest = &core;
        }
      }
    }
    const double top1 = hottest->top1_pps / hottest->offered_pps;
    const double top2 = hottest->top2_pps / hottest->offered_pps;
    const double rest = 1.0 - top1 - top2;
    top2_sum += top1 + top2;
    if (top1 + top2 > 0.5) ++dominated;
    table.add_row({std::to_string(scene), bench::pct(top1, 0),
                   bench::pct(top2, 0), bench::pct(rest, 0),
                   sim::format_double(hottest->utilization * 100, 0) + "%"});
  }
  table.print();

  sim::TablePrinter summary({"Metric", "Measured", "Paper"});
  summary.add_row({"mean top-1+top-2 share", bench::pct(top2_sum / 12, 0),
                   "dominant in most scenes"});
  summary.add_row({"scenes dominated (>50%)", std::to_string(dominated) +
                       "/12",
                   "most of 12"});
  summary.print();
  bench::print_note(
      "a single flow can reach tens of Gbps (§2.3); no per-flow hashing "
      "scheme can split it across cores without reordering hardware.");
  return 0;
}
