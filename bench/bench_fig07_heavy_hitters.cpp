// Fig. 7 — "CPU overload caused by heavy-hitter flows": in 12 historical
// overload scenes, the top-1/top-2 flows dominate the overloaded core's
// traffic. Here each scene is an independent flow population (different
// seed); we report the traffic share of the top flows on the most loaded
// core.
//
// The shares are measured the way a switch would measure them: a count-min
// sketch + top-K tracker on the overloaded core identifies the heavy
// flows, and the core's offered rate comes from its registry counter.

#include <cstdio>

#include "bench_util.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sketch.hpp"
#include "x86_region_sim.hpp"

using namespace sf;

int main() {
  bench::print_header(
      "Fig. 7", "top-flow share on the overloaded core, 12 scenes");

  sim::TablePrinter table({"Scene", "Top-1 flow", "Top-2 flow",
                           "Else (~100 flows)", "Core util"});
  double top2_sum = 0;
  int dominated = 0;
  for (int scene = 1; scene <= 12; ++scene) {
    bench::X86RegionSim::Config config;
    config.seed = 3000 + static_cast<std::uint64_t>(scene);
    bench::X86RegionSim sim(config);
    // Sample at the diurnal peak.
    const double t = workload::hours(config.pattern.peak_hour);
    const auto reports = sim.step(t);

    // Locate the most loaded core (which box, which core).
    std::size_t hot_gateway = 0;
    unsigned hot_core = 0;
    double hot_util = -1;
    for (std::size_t g = 0; g < reports.size(); ++g) {
      for (unsigned c = 0; c < reports[g].cores.size(); ++c) {
        if (reports[g].cores[c].utilization > hot_util) {
          hot_util = reports[g].cores[c].utilization;
          hot_gateway = g;
          hot_core = c;
        }
      }
    }

    // Its offered rate from the fleet registry, its heavy flows from the
    // sketch-backed tracker.
    const telemetry::Snapshot snap = sim.registry().snapshot();
    const double offered = static_cast<double>(snap.counter(
        bench::X86RegionSim::core_counter(hot_gateway, hot_core)));
    const auto top = sim.core_heavy_hitters(hot_gateway, hot_core, t).top(2);
    const double top1 =
        top.size() > 0 ? static_cast<double>(top[0].estimate) / offered : 0;
    const double top2 =
        top.size() > 1 ? static_cast<double>(top[1].estimate) / offered : 0;
    const double rest = 1.0 - top1 - top2;
    top2_sum += top1 + top2;
    if (top1 + top2 > 0.5) ++dominated;
    table.add_row({std::to_string(scene), bench::pct(top1, 0),
                   bench::pct(top2, 0), bench::pct(rest, 0),
                   sim::format_double(hot_util * 100, 0) + "%"});
  }
  table.print();

  sim::TablePrinter summary({"Metric", "Measured", "Paper"});
  summary.add_row({"mean top-1+top-2 share", bench::pct(top2_sum / 12, 0),
                   "dominant in most scenes"});
  summary.add_row({"scenes dominated (>50%)", std::to_string(dominated) +
                       "/12",
                   "most of 12"});
  summary.print();
  bench::print_note(
      "a single flow can reach tens of Gbps (§2.3); no per-flow hashing "
      "scheme can split it across cores without reordering hardware.");
  return 0;
}
