// Fig. 5 — "Traffic rate and packet loss rate of a region with XGW-x86s
// in a week": regional loss spikes of ~1e-5..1e-4 whenever an overloaded
// core saturates, worst during the festival window (day 6).

#include <cstdio>

#include "bench_util.hpp"
#include "x86_region_sim.hpp"

using namespace sf;

int main() {
  bench::print_header(
      "Fig. 5", "region traffic and packet loss with XGW-x86s (8 days)");

  bench::X86RegionSim::Config config;
  config.pattern.festival_start_day = 5.0;
  config.pattern.festival_end_day = 6.0;
  bench::X86RegionSim sim(config);

  sim::TimeSeries rate("rate_tbps");
  sim::TimeSeries loss("loss_rate");
  double worst = 0;
  double worst_day = 0;
  const double step = 1800;
  for (double t = 0; t < workload::days(8); t += step) {
    const auto reports = sim.step(t);
    double offered = 0;
    double dropped = 0;
    for (const auto& report : reports) {
      offered += report.offered_pps;
      dropped += report.dropped_pps;
    }
    const double drop_rate = offered > 0 ? dropped / offered : 0;
    rate.record(t / 86400.0,
                workload::rate_at(config.pattern, t) / 1e12);
    loss.record(t / 86400.0, drop_rate);
    if (drop_rate > worst) {
      worst = drop_rate;
      worst_day = t / 86400.0;
    }
  }

  std::printf("%s\n", sim::sparkline(rate, 64).c_str());
  std::printf("%s\n", sim::sparkline(loss, 64).c_str());

  sim::TablePrinter table({"Metric", "Measured", "Paper"});
  table.add_row({"worst region loss rate", sim::format_double(worst, 7),
                 "~1e-5 .. 1e-4"});
  table.add_row({"worst-loss day", sim::format_double(worst_day, 1),
                 "day 6 (festival)"});
  table.add_row({"mean loss rate", sim::format_double(loss.mean_value(), 8),
                 "loss occurs 'from time to time'"});
  table.print();
  bench::print_note(
      "losses concentrate where the diurnal/festival peak meets the "
      "pinned heavy-hitter core — CPU overload, not fabric capacity.");
  return 0;
}
