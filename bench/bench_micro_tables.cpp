// Microbenchmarks (google-benchmark) for the table structures on the
// packet path, plus the digest-width ablation called out in DESIGN.md.
// Not a paper figure: these quantify the building blocks the reproduction
// rests on.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "net/packet.hpp"
#include "tables/alpm.hpp"
#include "tables/dir24_8.hpp"
#include "tables/digest_table.hpp"
#include "tables/lpm_trie.hpp"
#include "tables/route_table.hpp"
#include "workload/rng.hpp"
#include "x86/rss.hpp"
#include "x86/snat.hpp"

using namespace sf;

namespace {

constexpr std::size_t kRoutes = 50'000;
constexpr std::size_t kVnis = 512;

template <typename Table>
void fill_routes(Table& table, workload::Rng& rng) {
  for (std::size_t i = 0; i < kRoutes; ++i) {
    table.insert(
        static_cast<net::Vni>(rng.uniform(kVnis)),
        net::Ipv4Prefix(
            net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), 24),
        static_cast<std::uint32_t>(i));
  }
}

std::vector<std::pair<net::Vni, net::IpAddr>> probes(std::size_t count) {
  workload::Rng rng(99);
  std::vector<std::pair<net::Vni, net::IpAddr>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({static_cast<net::Vni>(rng.uniform(kVnis)),
                   net::IpAddr(net::Ipv4Addr(
                       static_cast<std::uint32_t>(rng.next_u64())))});
  }
  return out;
}

void BM_LpmTrieLookup(benchmark::State& state) {
  tables::LpmTrie<std::uint32_t> trie;
  trie.reserve(kRoutes);
  workload::Rng rng(1);
  fill_routes(trie, rng);
  const auto keys = probes(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [vni, ip] = keys[i++ & 1023];
    benchmark::DoNotOptimize(trie.lookup(vni, ip));
  }
}
BENCHMARK(BM_LpmTrieLookup);

void BM_SoftwareLpmLookup(benchmark::State& state) {
  tables::SoftwareLpm<std::uint32_t> lpm;
  workload::Rng rng(1);
  fill_routes(lpm, rng);
  const auto keys = probes(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [vni, ip] = keys[i++ & 1023];
    benchmark::DoNotOptimize(lpm.lookup(vni, ip));
  }
}
BENCHMARK(BM_SoftwareLpmLookup);

void BM_AlpmLookup(benchmark::State& state) {
  tables::Alpm<std::uint32_t>::Config config;
  config.max_bucket_entries = static_cast<std::size_t>(state.range(0));
  tables::Alpm<std::uint32_t> alpm(config);
  workload::Rng rng(1);
  fill_routes(alpm, rng);
  const auto keys = probes(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [vni, ip] = keys[i++ & 1023];
    benchmark::DoNotOptimize(alpm.lookup(vni, ip));
  }
  state.SetLabel("bucket=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_AlpmLookup)->Arg(16)->Arg(32)->Arg(64);

void BM_Dir24_8Lookup(benchmark::State& state) {
  // The DPDK-class structure a production XGW-x86 uses for IPv4: one or
  // two array reads per lookup — the core of the ~1 Mpps/core budget.
  tables::Dir24_8 lpm;
  workload::Rng rng(6);
  for (int i = 0; i < 50'000; ++i) {
    lpm.insert(net::Ipv4Prefix(
                   net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                   24),
               static_cast<std::uint32_t>(i));
  }
  std::vector<net::Ipv4Addr> addrs;
  for (int i = 0; i < 1024; ++i) {
    addrs.push_back(
        net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpm.lookup(addrs[i++ & 1023]));
  }
}
BENCHMARK(BM_Dir24_8Lookup);

void BM_DigestVmNcLookup(benchmark::State& state) {
  tables::DigestVmNcTable table;
  workload::Rng rng(2);
  std::vector<tables::VmNcKey> keys;
  for (std::size_t i = 0; i < 50'000; ++i) {
    const bool v6 = rng.chance(0.25);
    tables::VmNcKey key{
        static_cast<net::Vni>(rng.uniform(kVnis)),
        v6 ? net::IpAddr(net::Ipv6Addr(rng.next_u64(), rng.next_u64()))
           : net::IpAddr(net::Ipv4Addr(
                 static_cast<std::uint32_t>(rng.next_u64())))};
    table.insert(key, {net::Ipv4Addr(1)});
    keys.push_back(key);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& key = keys[i++ % keys.size()];
    benchmark::DoNotOptimize(table.lookup(key.vni, key.vm_ip));
  }
}
BENCHMARK(BM_DigestVmNcLookup);

void BM_TcamLookup(benchmark::State& state) {
  tables::Tcam<std::uint32_t> tcam;
  workload::Rng rng(3);
  for (std::size_t i = 0; i < 1024; ++i) {
    const net::IpPrefix prefix = net::Ipv4Prefix(
        net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), 24);
    auto [key, mask] = tables::make_pooled_prefix(
        static_cast<net::Vni>(rng.uniform(kVnis)), prefix);
    tcam.insert(key, mask, 120, static_cast<std::uint32_t>(i));
  }
  const auto keys = probes(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [vni, ip] = keys[i++ & 1023];
    benchmark::DoNotOptimize(
        tcam.lookup(tables::make_pooled_key(vni, ip)));
  }
  state.SetLabel("1K rows, linear priority scan");
}
BENCHMARK(BM_TcamLookup);

void BM_SnatTranslate(benchmark::State& state) {
  x86::SnatEngine snat({{net::Ipv4Addr(203, 0, 113, 1),
                         net::Ipv4Addr(203, 0, 113, 2)},
                        1024,
                        65535,
                        300});
  workload::Rng rng(4);
  std::vector<net::FiveTuple> sessions;
  for (int i = 0; i < 10'000; ++i) {
    sessions.push_back(net::FiveTuple{
        net::IpAddr(net::Ipv4Addr(
            static_cast<std::uint32_t>(rng.next_u64()))),
        net::IpAddr(net::Ipv4Addr(93, 184, 216, 34)), 6,
        static_cast<std::uint16_t>(rng.uniform_range(1024, 65535)), 443});
  }
  std::size_t i = 0;
  double now = 0;
  for (auto _ : state) {
    now += 1e-6;
    benchmark::DoNotOptimize(
        snat.translate(sessions[i++ % sessions.size()], now));
  }
}
BENCHMARK(BM_SnatTranslate);

void BM_RssQueueFor(benchmark::State& state) {
  x86::RssIndirection rss(32);
  const auto keys = probes(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [vni, ip] = keys[i++ & 1023];
    net::FiveTuple tuple{ip, ip, 6, static_cast<std::uint16_t>(vni), 80};
    benchmark::DoNotOptimize(rss.queue_for(tuple));
  }
}
BENCHMARK(BM_RssQueueFor);

void BM_PacketEncodeDecode(benchmark::State& state) {
  net::OverlayPacket pkt;
  pkt.vni = 5001;
  pkt.inner.src = net::IpAddr::must_parse("192.168.10.2");
  pkt.inner.dst = net::IpAddr::must_parse("192.168.10.3");
  pkt.inner.proto = 6;
  pkt.payload_size = 256;
  for (auto _ : state) {
    const auto bytes = net::encode(pkt);
    benchmark::DoNotOptimize(net::decode(bytes));
  }
}
BENCHMARK(BM_PacketEncodeDecode);

// Digest-width ablation: conflicts vs SRAM saving (DESIGN.md §4).
void print_digest_ablation() {
  std::printf(
      "\ndigest-width ablation (100k IPv6 mappings): conflicts vs width\n");
  std::printf("%8s %12s %16s %18s\n", "bits", "conflicts",
              "conflict rate", "entry SRAM words");
  for (unsigned bits : {16u, 20u, 24u, 28u, 32u}) {
    tables::DigestVmNcTable::Config config;
    config.digest_bits = bits;
    config.buckets = 1 << 18;
    tables::DigestVmNcTable table(config);
    workload::Rng rng(5);
    for (int i = 0; i < 100'000; ++i) {
      table.insert({1, net::IpAddr(net::Ipv6Addr(rng.next_u64(),
                                                 rng.next_u64()))},
                   {net::Ipv4Addr(1)});
    }
    const auto stats = table.stats();
    std::printf("%8u %12zu %15.4f%% %18zu\n", bits, stats.conflict_entries,
                100.0 * static_cast<double>(stats.conflict_entries) /
                    100'000.0,
                table.entry_words());
  }
  std::printf(
      "(paper uses 32 bits: conflicts are birthday-bound ~n^2/2^33 and "
      "the side table stays tiny)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_digest_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
