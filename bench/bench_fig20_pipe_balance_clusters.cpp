// Fig. 20 — "Balanced traffic distribution between pipelines (view of
// clusters)": for every XGW-H cluster, the share of traffic taking the
// Egress-Pipe-1 shard vs the Egress-Pipe-3 shard is near 50/50, because
// entries split by VNI parity.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sailfish_region_sim.hpp"
#include "sim/stats.hpp"

using namespace sf;

int main() {
  bench::print_header(
      "Fig. 20", "traffic split between loopback pipes, per cluster");

  bench::SailfishScenario scenario = bench::make_scenario(1.0, 42, 30);
  auto& controller = scenario.system.region->controller();

  // Accumulate per-cluster pipe-1/pipe-3 bps from the flow population.
  std::vector<double> pipe1(controller.cluster_count(), 0);
  std::vector<double> pipe3(controller.cluster_count(), 0);
  for (const workload::Flow& flow : scenario.system.flows) {
    if (flow.scope == tables::RouteScope::kInternet) continue;
    auto cluster = controller.cluster_for(flow.vni);
    if (!cluster) continue;
    const double bps = flow.weight * scenario.pattern.base_bps;
    (xgwh::XgwH::shard_of_vni(flow.vni) ? pipe3 : pipe1)[*cluster] += bps;
  }

  sim::TablePrinter table(
      {"Cluster", "Egress Pipe 1", "Egress Pipe 3", "Pipe-1 share"});
  std::vector<double> shares;
  for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
    const double total = pipe1[c] + pipe3[c];
    if (total == 0) continue;
    const double share = pipe1[c] / total;
    shares.push_back(share);
    table.add_row({"cluster " + std::to_string(c),
                   sim::format_si(pipe1[c], "bps"),
                   sim::format_si(pipe3[c], "bps"), bench::pct(share, 1)});
  }
  table.print();

  sim::TablePrinter summary({"Metric", "Measured", "Paper"});
  summary.add_row({"mean pipe-1 share",
                   bench::pct(sim::mean(shares), 1), "~50%"});
  summary.add_row(
      {"worst deviation from 50%",
       bench::pct(std::max(sim::max_value(shares) - 0.5,
                           0.5 - sim::min_value(shares)),
                  1),
       "small in all clusters"});
  summary.print();
  bench::print_note(
      "unlike per-core hashing, each pipe aggregates thousands of tenants "
      "— the bins are huge, so the balls-into-bins variance vanishes "
      "(§5.2).");
  return 0;
}
