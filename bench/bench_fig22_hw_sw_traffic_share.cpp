// Fig. 22 — "Minority of traffic hits XGW-x86 which contains majority of
// forwarding tables": after table sharing, the software fleet carries a
// few Gbps — under 0.2 per mille of the region — while holding the full
// table set (routes + mappings + SNAT).
//
// The series is read from the region's telemetry registry: each
// simulate_interval() accumulates its offered/fallback rates into
// counters, and the bench differences successive snapshots — the numbers
// are the registry's, not a private tally.

#include <cstdio>

#include "bench_util.hpp"
#include "core/table_sharing.hpp"
#include "sailfish_region_sim.hpp"
#include "telemetry/registry.hpp"

using namespace sf;

int main() {
  bench::print_header("Fig. 22", "traffic sharing between XGW-H and XGW-x86");

  bench::SailfishScenario scenario = bench::make_scenario(1.0, 55, 30);

  sim::TimeSeries sw_rate("XGW-x86 rate (Gbps)");
  sim::TimeSeries sw_ratio("XGW-x86 ratio (permille)");
  const double step = 3600;
  telemetry::Snapshot previous =
      scenario.system.region->registry().snapshot();
  for (double t = 0; t < workload::days(8); t += step) {
    const double offered = workload::rate_at(scenario.pattern, t);
    scenario.system.region->simulate_interval(
        scenario.system.flows, offered,
        static_cast<std::uint64_t>(t / step));
    const telemetry::Snapshot current =
        scenario.system.region->registry().snapshot();
    const telemetry::Snapshot interval =
        telemetry::Snapshot::delta(previous, current);
    previous = current;

    const double fallback_bps =
        static_cast<double>(interval.counter("region.fallback_bps_sum"));
    const double offered_bps =
        static_cast<double>(interval.counter("region.offered_bps_sum"));
    sw_rate.record(t / 86400.0, fallback_bps / 1e9);
    sw_ratio.record(t / 86400.0,
                    offered_bps > 0 ? fallback_bps / offered_bps * 1000.0
                                    : 0.0);
  }

  std::printf("%s\n", sim::sparkline(sw_rate, 64).c_str());
  std::printf("%s\n", sim::sparkline(sw_ratio, 64).c_str());

  // The policy side: the controller's table-sharing decision for the
  // production-like service catalog predicts the same share.
  const auto catalog = core::default_service_catalog();
  const auto placements =
      core::decide_catalog(catalog, core::SharingPolicy{});
  const double policy_share =
      core::software_traffic_share(catalog, placements);

  sim::TablePrinter table({"Metric", "Measured", "Paper"});
  table.add_row({"max XGW-x86 traffic ratio",
                 sim::format_double(sw_ratio.max_value(), 3) + " permille",
                 "< 0.2 permille"});
  table.add_row({"mean XGW-x86 rate",
                 sim::format_si(sw_rate.mean_value() * 1e9, "bps"),
                 "a few Gbps"});
  table.add_row({"policy-predicted software share",
                 sim::format_double(policy_share * 1000.0, 3) + " permille",
                 "consistent with measurement"});
  table.print();

  std::printf("\ntable-sharing decisions (§4.2 policy):\n");
  sim::TablePrinter policy({"service", "traffic share", "entries",
                            "placement"});
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    policy.add_row({catalog[i].name,
                    sim::format_double(catalog[i].traffic_share * 100, 3) +
                        "%",
                    std::to_string(catalog[i].entries),
                    core::to_string(placements[i])});
  }
  policy.print();
  bench::print_note(
      "the majority of traffic hits the minority of tables (80/20 rule): "
      "hardware absorbs it; software keeps the stateful/volatile tail.");
  return 0;
}
