// Table 3 — "Memory occupancy after optimizations": the two major tables
// under the full compression stack, plus the ALPM partition-depth ablation
// called out in DESIGN.md (TCAM <-> SRAM trade as the bucket bound varies).

#include <cstdio>

#include "asic/placer.hpp"
#include "bench_util.hpp"
#include "tables/alpm.hpp"
#include "workload/rng.hpp"
#include "workload/zipf.hpp"
#include "xgwh/compression_plan.hpp"

using namespace sf;

namespace {

struct MeasuredAlpm {
  asic::AlpmDemand demand;
  double fill = 0;
  std::size_t partitions = 0;
};

MeasuredAlpm measure(std::size_t total_routes, std::size_t max_bucket) {
  tables::Alpm<tables::VxlanRouteAction>::Config config;
  config.max_bucket_entries = max_bucket;
  tables::Alpm<tables::VxlanRouteAction> alpm(config);
  workload::Rng rng(7);
  const std::size_t vpcs = 60'000;
  const std::vector<double> shares = workload::zipf_weights(vpcs, 1.0);
  std::size_t inserted = 0;
  for (std::size_t v = 0; v < vpcs && inserted < total_routes; ++v) {
    const net::Vni vni = static_cast<net::Vni>(1000 + v);
    const bool v6 = rng.chance(0.25);
    const std::size_t routes = std::max<std::size_t>(
        1, static_cast<std::size_t>(shares[v] *
                                    static_cast<double>(total_routes)));
    for (std::size_t r = 0; r < routes && inserted < total_routes; ++r) {
      if (v6) {
        alpm.insert(vni,
                    net::Ipv6Prefix(net::Ipv6Addr(rng.next_u64(), 0), 64),
                    {});
      } else {
        alpm.insert(
            vni,
            net::Ipv4Prefix(
                net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                24),
            {});
      }
      ++inserted;
    }
  }
  const auto stats = alpm.stats();
  return MeasuredAlpm{
      asic::AlpmDemand{stats.directory_slices, stats.allocated_bucket_words},
      stats.average_fill, stats.partitions};
}

}  // namespace

int main() {
  bench::print_header("Table 3", "memory occupancy after optimizations");

  const asic::Placer placer{asic::ChipConfig{}};
  const asic::GatewayWorkload workload{750'000, 250'000, 750'000, 250'000};

  const MeasuredAlpm measured = measure(1'000'000, 32);
  asic::CompressionConfig all = xgwh::config_for_steps("abcde");
  all.measured_alpm = measured.demand;
  const auto report = placer.evaluate(workload, all);

  // Decompose the per-table contributions from the demand list.
  double route_sram = 0;
  double route_tcam = 0;
  double vmnc_sram = 0;
  const auto chip = placer.chip();
  for (const auto& demand : report.demands) {
    // Path accounting: sharded over 2 paths, each spanning 2 pipelines.
    const double sram_frac =
        static_cast<double>(demand.sram_words) / 2.0 / 2.0 /
        static_cast<double>(chip.sram_words_per_pipeline());
    const double tcam_frac =
        static_cast<double>(demand.tcam_slices) / 2.0 / 2.0 /
        static_cast<double>(chip.tcam_slices_per_pipeline());
    if (demand.name.rfind("vxlan_route", 0) == 0) {
      route_sram += sram_frac;
      route_tcam += tcam_frac;
    } else {
      vmnc_sram += sram_frac;
    }
  }

  sim::TablePrinter table(
      {"Table", "SRAM (measured)", "SRAM (paper)", "TCAM (measured)",
       "TCAM (paper)"});
  table.add_row({"VXLAN routing (ALPM)", bench::pct(route_sram, 1), "18%",
                 bench::pct(route_tcam, 1), "11%"});
  table.add_row({"VM-NC mapping (pooled+digest)", bench::pct(vmnc_sram, 1),
                 "18%", "-", "-"});
  table.add_row({"Sum", bench::pct(report.sram_path_worst, 1), "36%",
                 bench::pct(report.tcam_path_worst, 1), "11%"});
  table.print();
  std::printf("ALPM shape: %zu partitions, average fill %.2f, feasible=%s\n",
              measured.partitions, measured.fill,
              report.feasible ? "yes" : "no");

  // ---- ablation: ALPM bucket bound ----------------------------------------
  bench::print_header("Table 3 (ablation)",
                      "ALPM bucket bound: TCAM directory vs SRAM buckets");
  sim::TablePrinter ablation({"max bucket", "partitions", "fill",
                              "TCAM occupancy", "SRAM occupancy (routes)"});
  for (std::size_t bucket : {8ul, 16ul, 32ul, 64ul, 128ul}) {
    const MeasuredAlpm m = measure(1'000'000, bucket);
    asic::CompressionConfig config = xgwh::config_for_steps("abcde");
    config.measured_alpm = m.demand;
    const auto r = placer.evaluate(workload, config);
    const double route_sram_frac =
        static_cast<double>(m.demand.bucket_words) / 4.0 /
        static_cast<double>(chip.sram_words_per_pipeline());
    ablation.add_row({std::to_string(bucket), std::to_string(m.partitions),
                      sim::format_double(m.fill, 2),
                      bench::pct(r.tcam_path_worst, 1),
                      bench::pct(route_sram_frac, 1)});
  }
  ablation.print();
  bench::print_note(
      "small buckets inflate the TCAM directory; large buckets reserve "
      "more SRAM per row — the trade §4.4 tunes with the first-level "
      "depth.");
  return 0;
}
