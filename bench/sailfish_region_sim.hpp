// Shared helper for the Sailfish operational benches (Figs. 19-22): builds
// a region at "large cloud region" scale — several XGW-H clusters of many
// devices carrying dozens of Tbps — and steps it through a festival week.

#pragma once

#include <algorithm>
#include <numeric>

#include "core/sailfish.hpp"
#include "workload/traffic_pattern.hpp"

namespace sf::bench {

struct SailfishScenario {
  core::SailfishSystem system;
  workload::TrafficPattern pattern;
};

/// `scale` multiplies the region size (VPCs, flows, base rate).
inline SailfishScenario make_scenario(double scale, std::uint64_t seed,
                                      double base_tbps) {
  core::SailfishOptions options;
  options.topology.vpc_count =
      static_cast<std::size_t>(400 * scale);
  options.topology.total_vms = static_cast<std::size_t>(12'000 * scale);
  options.topology.nc_count = static_cast<std::size_t>(1'500 * scale);
  options.topology.seed = seed;
  options.flows.flow_count = static_cast<std::size_t>(20'000 * scale);
  // Flows aggregate per-(tenant, destination) traffic: the top one is a
  // fraction of a percent of the region (a few hundred Gbps tenant),
  // far below any single device's envelope.
  options.flows.zipf_exponent = 0.5;
  options.flows.seed = seed + 1;

  // "A single cluster carries dozens of Tbps": 10 primaries x 3.2 Tbps,
  // with the 1:1 hot-standby backup set (§6.1); four XGW-x86s (§4.2).
  options.region.controller.cluster_template.primary_devices = 10;
  options.region.controller.cluster_template.backup_devices = 10;
  options.region.controller.max_clusters = 4;
  options.region.controller.initial_clusters = 4;  // pre-built (§6.1)
  options.region.controller.routes_water_level =
      static_cast<std::size_t>(
          600 * scale);  // spread VPCs over several clusters
  options.region.x86_nodes = 4;

  SailfishScenario scenario{core::make_system(options), {}};

  // Heavy flows are MTU-sized bulk transfers (a Tbps-scale flow at mouse
  // packets would be an absurd packet rate).
  auto& flows = scenario.system.flows;
  std::vector<std::size_t> by_weight(flows.size());
  std::iota(by_weight.begin(), by_weight.end(), std::size_t{0});
  std::sort(by_weight.begin(), by_weight.end(),
            [&](std::size_t a, std::size_t b) {
              return flows[a].weight > flows[b].weight;
            });
  for (std::size_t rank = 0; rank < by_weight.size() / 10; ++rank) {
    flows[by_weight[rank]].packet_size = 1500;
  }

  scenario.pattern.base_bps = base_tbps * 1e12;
  scenario.pattern.festival_start_day = 5.0;
  scenario.pattern.festival_end_day = 6.0;
  return scenario;
}

}  // namespace sf::bench
