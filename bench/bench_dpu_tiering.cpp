// Three-tier placement bench (sf::dpu, DESIGN.md §11) — the quickstart
// region with hardware squeezed to a 4-16x table shortfall, so most VPCs
// are overflow-admitted into the software tier. Without the DPU tier the
// whole overflow rides the bounded punt lanes toward x86 and saturates
// them; with it, the TierPlacer's sketches promote the overflow elephants
// onto the DPU flow tables interval by interval. Writes BENCH_dpu.json
// with the placement frontier: blended cost vs p99 latency vs per-tier
// occupancy at each shortfall.
//
// Self-checking — the process exits nonzero if three-tier placement
// regressed, so CI can use it as a smoke test:
//   * every shortfall must actually overflow (software-tier VPCs > 0);
//   * at every shortfall the DPU tier must absorb traffic (dpu_pps > 0)
//     with strictly lower p99 latency AND lower x86 punt-lane occupancy
//     than the DPU-off baseline;
//   * the warmup's interval series must replay byte-identically on 1 and
//     8 interval-engine threads.
//
// With SF_DPU=off there is nothing to measure: the bench prints a note
// and exits 0 (the byte-identity CI sweep diffs the *other* benches).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sailfish.hpp"
#include "dpu/xgw_dpu.hpp"

using namespace sf;

namespace {

constexpr double kIntervalBps = 1e11;
constexpr int kWarmupIntervals = 12;
constexpr double kShortfalls[] = {4.0, 8.0, 16.0};

// Relative serving cost per packet, by tier. The ASIC pipeline is the
// unit; the DPU's multiplier comes from its config (a flow-offload box
// costs a few ASIC-packet-equivalents per packet); general-purpose x86
// cores are the expensive last resort.
constexpr double kCostAsic = 1.0;
constexpr double kCostX86 = 16.0;

struct ScenarioResult {
  core::SailfishRegion::IntervalReport report;  // last warmup interval
  std::size_t overflow_vpcs = 0;
  double dpu_cost_units = 0;
};

ScenarioResult run_scenario(double shortfall, bool with_dpu,
                            std::size_t threads = 1) {
  const core::SailfishOptions options =
      core::overflow_options(shortfall, with_dpu);
  core::SailfishSystem system = core::make_system(options);
  system.region->set_interval_threads(threads);
  ScenarioResult result;
  for (int k = 0; k < kWarmupIntervals; ++k) {
    result.report = system.region->simulate_interval(
        system.flows, kIntervalBps, static_cast<std::uint64_t>(k));
  }
  result.overflow_vpcs = system.region->controller().overflow_count();
  result.dpu_cost_units = options.region.dpu_template.cost_units;
  return result;
}

/// Blended serving cost per packet (in ASIC-packet units) over the served
/// population: what the three tiers together spend to carry an average
/// packet this interval.
double blended_cost(const core::SailfishRegion::IntervalReport& report,
                    double dpu_cost_units) {
  const double served = report.offered_pps - report.dropped_pps;
  if (served <= 0) return 0;
  const double x86_pps = report.fallback_pps + report.overflow_x86_pps;
  const double hw_pps =
      std::max(0.0, served - report.dpu_pps - x86_pps);
  return (hw_pps * kCostAsic + report.dpu_pps * dpu_cost_units +
          x86_pps * kCostX86) /
         served;
}

std::string sci(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2e", value);
  return buffer;
}

/// Byte-stable rendering of everything the interval model computes, for
/// the thread-identity comparison.
std::string render(const core::SailfishRegion::IntervalReport& report) {
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "offered=%.9e dropped=%.9e fallback=%.9e/%.9e overflow=%.9e "
      "dpu=%.9e/%.9e overflow_x86=%.9e occ=%.9e p99=%.9e entries=%zu "
      "tblocc=%.9e promo=%zu demo=%zu\n",
      report.offered_pps, report.dropped_pps, report.fallback_bps,
      report.fallback_pps, report.overflow_pps, report.dpu_pps,
      report.dpu_bps, report.overflow_x86_pps, report.punt_queue_occupancy,
      report.p99_latency_us, report.dpu_flow_entries,
      report.dpu_table_occupancy, report.dpu_promotions,
      report.dpu_demotions);
  return line;
}

}  // namespace

int main() {
  bench::print_header("DPU tiering",
                      "4-16x table shortfall vs. the three-tier "
                      "ASIC / DPU / x86 placement frontier");
  if (!dpu::dpu_enabled()) {
    bench::print_note(
        "SF_DPU=off: the DPU tier is gated out of every region, so there "
        "is no placement machinery to measure. Skipping.");
    return 0;
  }

  // ---- thread identity: the warmup series must not depend on threads ------
  std::string series_one;
  std::string series_eight;
  {
    const core::SailfishOptions options = core::overflow_options(4.0, true);
    core::SailfishSystem one = core::make_system(options);
    core::SailfishSystem eight = core::make_system(options);
    one.region->set_interval_threads(1);
    eight.region->set_interval_threads(8);
    for (int k = 0; k < kWarmupIntervals; ++k) {
      series_one += render(one.region->simulate_interval(
          one.flows, kIntervalBps, static_cast<std::uint64_t>(k)));
      series_eight += render(eight.region->simulate_interval(
          eight.flows, kIntervalBps, static_cast<std::uint64_t>(k)));
    }
  }
  const bool replay_identical = series_one == series_eight;

  // ---- the placement frontier ---------------------------------------------
  struct Point {
    double shortfall = 0;
    std::size_t overflow_vpcs = 0;
    core::SailfishRegion::IntervalReport off;
    core::SailfishRegion::IntervalReport on;
    double cost_off = 0;
    double cost_on = 0;
  };
  std::vector<Point> frontier;
  bool placement_ok = true;
  for (const double shortfall : kShortfalls) {
    const ScenarioResult off = run_scenario(shortfall, false);
    const ScenarioResult on = run_scenario(shortfall, true);
    Point point;
    point.shortfall = shortfall;
    point.overflow_vpcs = on.overflow_vpcs;
    point.off = off.report;
    point.on = on.report;
    point.cost_off = blended_cost(off.report, on.dpu_cost_units);
    point.cost_on = blended_cost(on.report, on.dpu_cost_units);
    frontier.push_back(point);

    const bool ok = on.overflow_vpcs > 0 && point.on.dpu_pps > 0 &&
                    point.on.p99_latency_us < point.off.p99_latency_us &&
                    point.on.punt_queue_occupancy <
                        point.off.punt_queue_occupancy;
    if (!ok) {
      std::fprintf(stderr,
                   "FATAL: %gx shortfall: overflow_vpcs=%zu dpu_pps=%.3e "
                   "p99 %.1f vs %.1f us, punt occupancy %.3f vs %.3f\n",
                   shortfall, on.overflow_vpcs, point.on.dpu_pps,
                   point.on.p99_latency_us, point.off.p99_latency_us,
                   point.on.punt_queue_occupancy,
                   point.off.punt_queue_occupancy);
      placement_ok = false;
    }
  }

  sim::TablePrinter table({"Shortfall", "Overflow VPCs", "p99 off (us)",
                           "p99 DPU (us)", "Punt occ off", "Punt occ DPU",
                           "DPU share", "Cost off", "Cost DPU"});
  for (const Point& point : frontier) {
    const double served =
        point.on.offered_pps - point.on.dropped_pps;
    table.add_row(
        {sim::format_double(point.shortfall, 0) + "x",
         std::to_string(point.overflow_vpcs),
         sim::format_double(point.off.p99_latency_us, 1),
         sim::format_double(point.on.p99_latency_us, 1),
         sim::format_double(point.off.punt_queue_occupancy, 3),
         sim::format_double(point.on.punt_queue_occupancy, 3),
         bench::pct(served > 0 ? point.on.dpu_pps / served : 0),
         sim::format_double(point.cost_off, 2),
         sim::format_double(point.cost_on, 2)});
  }
  table.print();
  std::printf("thread replay              : %s\n",
              replay_identical ? "identical" : "DIVERGED");
  if (!replay_identical) {
    std::fprintf(stderr, "FATAL: interval series diverged across threads\n");
  }

  bench::print_note(
      "at every shortfall the DPU tier must absorb overflow elephants "
      "with lower p99 latency and punt-lane occupancy than the DPU-off "
      "baseline; a nonzero exit means three-tier placement regressed.");

  std::ofstream json("BENCH_dpu.json");
  json << "{\n  \"bench\": \"dpu_tiering\",\n"
       << "  \"interval_bps\": " << sci(kIntervalBps) << ",\n"
       << "  \"warmup_intervals\": " << kWarmupIntervals << ",\n"
       << "  \"replay_identical\": " << (replay_identical ? "true" : "false")
       << ",\n  \"frontier\": [\n";
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const Point& point = frontier[i];
    const double served_on = point.on.offered_pps - point.on.dropped_pps;
    json << "    {\"shortfall\": " << point.shortfall
         << ", \"overflow_vpcs\": " << point.overflow_vpcs << ",\n"
         << "     \"baseline\": {\"p99_latency_us\": "
         << sci(point.off.p99_latency_us)
         << ", \"punt_queue_occupancy\": "
         << sci(point.off.punt_queue_occupancy)
         << ", \"drop_rate\": " << sci(point.off.drop_rate)
         << ", \"cost_per_packet\": " << sci(point.cost_off) << "},\n"
         << "     \"dpu\": {\"p99_latency_us\": "
         << sci(point.on.p99_latency_us)
         << ", \"punt_queue_occupancy\": "
         << sci(point.on.punt_queue_occupancy)
         << ", \"drop_rate\": " << sci(point.on.drop_rate)
         << ", \"cost_per_packet\": " << sci(point.cost_on)
         << ",\n             \"dpu_share\": "
         << sci(served_on > 0 ? point.on.dpu_pps / served_on : 0)
         << ", \"dpu_flow_entries\": " << point.on.dpu_flow_entries
         << ", \"dpu_table_occupancy\": "
         << sci(point.on.dpu_table_occupancy) << "}}"
         << (i + 1 < frontier.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_dpu.json\n");

  return placement_ok && replay_identical ? 0 : 1;
}
