// Parallel interval-engine scaling: the same region stepped through the
// same intervals at 1/2/4/8 worker threads. Reports throughput (simulated
// intervals per second) and the speedup over single-threaded, and writes
// the numbers to BENCH_parallel.json for tracking across machines.
//
// The determinism contract is asserted as a side effect: every thread
// count must reproduce the single-threaded IntervalReport bit for bit.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sailfish_region_sim.hpp"
#include "sim/table_printer.hpp"

using namespace sf;

namespace {

bool reports_identical(const core::SailfishRegion::IntervalReport& a,
                       const core::SailfishRegion::IntervalReport& b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

struct Run {
  std::size_t threads = 1;
  double seconds = 0;
  double intervals_per_sec = 0;
  double speedup = 1.0;
};

}  // namespace

int main() {
  bench::print_header("Parallel scaling",
                      "sharded interval engine, 1/2/4/8 worker threads");

  bench::SailfishScenario scenario =
      bench::make_scenario(/*scale=*/1.0, /*seed=*/7, /*base_tbps=*/20);
  auto& region = *scenario.system.region;
  const auto& flows = scenario.system.flows;
  const std::size_t intervals = 12;
  const unsigned hw = std::thread::hardware_concurrency();

  // Single-threaded reference reports, for the byte-identity check.
  region.set_interval_threads(1);
  std::vector<core::SailfishRegion::IntervalReport> reference;
  for (std::size_t i = 0; i < intervals; ++i) {
    reference.push_back(region.simulate_interval(flows, 20e12, i));
  }

  std::vector<Run> runs;
  for (std::size_t threads : {1, 2, 4, 8}) {
    region.set_interval_threads(threads);
    region.simulate_interval(flows, 20e12, 0);  // warm the pool
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < intervals; ++i) {
      const auto report = region.simulate_interval(flows, 20e12, i);
      if (!reports_identical(report, reference[i])) {
        std::fprintf(stderr,
                     "FATAL: %zu-thread report diverged at interval %zu\n",
                     threads, i);
        return 1;
      }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    Run run;
    run.threads = threads;
    run.seconds = elapsed.count();
    run.intervals_per_sec = intervals / run.seconds;
    run.speedup = runs.empty()
                      ? 1.0
                      : run.intervals_per_sec / runs[0].intervals_per_sec;
    runs.push_back(run);
  }

  sim::TablePrinter table(
      {"Threads", "Wall time (s)", "Intervals/s", "Speedup vs 1"});
  for (const Run& run : runs) {
    table.add_row({std::to_string(run.threads),
                   sim::format_double(run.seconds, 3),
                   sim::format_double(run.intervals_per_sec, 2),
                   sim::format_double(run.speedup, 2) + "x"});
  }
  table.print();
  std::printf("hardware_concurrency: %u, shards: %zu, flows: %zu\n", hw,
              region.interval_plan().shards, flows.size());
  bench::print_note(
      "all thread counts reproduced the 1-thread reports bit for bit; "
      "speedup is bounded by the cores actually available "
      "(hardware_concurrency above).");

  std::ofstream json("BENCH_parallel.json");
  json << "{\n"
       << "  \"bench\": \"parallel_scaling\",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"shards\": " << region.interval_plan().shards << ",\n"
       << "  \"flows\": " << flows.size() << ",\n"
       << "  \"intervals\": " << intervals << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    json << "    {\"threads\": " << run.threads << ", \"seconds\": "
         << run.seconds << ", \"intervals_per_sec\": "
         << run.intervals_per_sec << ", \"speedup\": " << run.speedup
         << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_parallel.json\n");
  return 0;
}
