// Table 4 — "Overall memory resource consumption": the whole gateway,
// service tables included, placed per the folded-path layout (Figs. 13-15).
// Pipes 0/2 host entry/exit tables (ACL TCAM, ALPM directory, rewrite,
// counters); pipes 1/3 host the sharded bulk (ALPM buckets, pooled VM-NC,
// meters). Overflowing tables spill to the path's other pipe.

#include <cstdio>

#include "asic/placer.hpp"
#include "bench_util.hpp"
#include "xgwh/compression_plan.hpp"

using namespace sf;

int main() {
  bench::print_header("Table 4", "overall memory consumption (all tables)");

  const asic::ChipConfig chip;
  const asic::Placer placer(chip);

  // The paper's workload plus the QoS/service tables installed per SLAs.
  // The paper does not enumerate its service-table mix; these counts are
  // a representative production mix (per-tenant ACLs, SLA meters, billing
  // counters) calibrated so the whole gateway lands in Table 4's envelope.
  asic::GatewayWorkload workload{750'000, 250'000, 750'000, 250'000};
  workload.acl_rules = 175'000;
  workload.meters = 430'000;
  workload.counters = 1'500'000;
  workload.steering_entries = 64;

  asic::CompressionConfig config = xgwh::config_for_steps("abcde");
  config.alpm_max_bucket = 32;
  config.alpm_estimated_fill = 0.55;  // measured by the Table 3 bench

  auto demands = asic::compute_demands(chip, workload, config);
  // Layout per Figs. 13-15: ACL on the entry pipes; the ALPM directory
  // rides the loopback pipes next to its buckets (directory and bucket
  // read in consecutive stages of the same gress); bucket SRAM is
  // balanced across the path ("evenly distributed"); VM-NC and meters on
  // the loopback ingress; counters on the exit gress.
  for (auto& demand : demands) {
    if (demand.name == "acl") {
      demand.slot = asic::PathSlot::kFrontIngress;
    } else if (demand.name == "vxlan_route_alpm_dir") {
      demand.slot = asic::PathSlot::kBackEgress;
    } else if (demand.name == "vxlan_route_alpm_buckets") {
      demand.slot = asic::PathSlot::kBalanced;
    } else if (demand.name == "counters") {
      demand.slot = asic::PathSlot::kFrontEgress;
    }
  }
  const auto report = placer.place(demands, config);

  sim::TablePrinter table({"Pipeline", "SRAM (measured)", "SRAM (paper)",
                           "TCAM (measured)", "TCAM (paper)"});
  const double sram02 = (report.pipes[0].sram + report.pipes[2].sram) / 2;
  const double sram13 = (report.pipes[1].sram + report.pipes[3].sram) / 2;
  const double tcam02 = (report.pipes[0].tcam + report.pipes[2].tcam) / 2;
  const double tcam13 = (report.pipes[1].tcam + report.pipes[3].tcam) / 2;
  table.add_row({"Pipeline 0/2", bench::pct(sram02, 1), "70%",
                 bench::pct(tcam02, 1), "41%"});
  table.add_row({"Pipeline 1/3", bench::pct(sram13, 1), "68%",
                 bench::pct(tcam13, 1), "22%"});
  table.add_row({"Sum", bench::pct((sram02 + sram13) / 2, 1), "69%",
                 bench::pct((tcam02 + tcam13) / 2, 1), "32%"});
  table.print();

  std::printf("per-table demand (gateway-wide):\n");
  sim::TablePrinter detail({"table", "SRAM words", "TCAM slices", "slot"});
  static const char* kSlots[] = {"Ingress 0/2", "Egress 1/3", "Ingress 1/3",
                                 "Egress 0/2", "Balanced"};
  for (const auto& demand : report.demands) {
    detail.add_row({demand.name, std::to_string(demand.sram_words),
                    std::to_string(demand.tcam_slices),
                    kSlots[static_cast<int>(demand.slot)]});
  }
  detail.print();
  bench::print_note(
      "feasible placement (everything fits with headroom): " +
      std::string(report.feasible ? "yes" : "no") +
      " — 'there is still room for adding future table entries' (§5.1).");
  return 0;
}
