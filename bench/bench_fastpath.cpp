// Flow-cache fast path: cached vs uncached packet rate across a hit-rate
// sweep (0/50/90/99%) at 1 and 8 worker threads, through the same
// deterministic sharded batch path the interval engine uses (one XGW-H
// gateway — and thus one private flow cache — per shard, no locks).
// A second sweep varies the engine burst size (1/8/32/128/512) against
// cloud-scale tables (4096 tenants, ~100 MB of table state across the
// fleet, so uncached lookups miss the cache hierarchy): the SoA batched
// walk (DESIGN.md §15) is a pure throughput knob, so every burst size
// must reproduce the burst-1 verdict stream byte-for-byte while the
// uncached rate climbs with the software-pipelined lookups.
//
// The byte-identity contract is asserted as a side effect: at every
// (hit-rate, threads) point the cached fleet must produce exactly the
// verdict stream of an uncached fleet, and at every (burst, threads)
// point both fleets must reproduce their burst-1 streams. Numbers land in
// BENCH_fastpath.json; EXPERIMENTS.md quotes them.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dataplane/shard_engine.hpp"
#include "sim/table_printer.hpp"
#include "xgwh/xgwh.hpp"

using namespace sf;

namespace {

constexpr std::size_t kShards = 8;
constexpr std::size_t kVnis = 64;
constexpr std::size_t kWorkingSet = 512;  // distinct hot flows
constexpr std::size_t kPackets = 60'000;

xgwh::XgwH::Config device_config(std::size_t cache_entries) {
  xgwh::XgwH::Config config;
  config.flow_cache_entries = cache_entries;
  return config;
}

/// Identical tables on every shard device: kVnis tenants, each with a
/// local /16 and a handful of VM-NC mappings covering the working set.
void install_tables(dataplane::TableProgrammer& gw) {
  for (std::size_t v = 0; v < kVnis; ++v) {
    const net::Vni vni = static_cast<net::Vni>(100 + v);
    gw.install_route(
        vni,
        net::Ipv4Prefix(net::Ipv4Addr(10, static_cast<std::uint8_t>(v), 0, 0),
                        16),
        tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, {}});
    for (std::uint8_t host = 1; host <= 16; ++host) {
      gw.install_mapping(
          tables::VmNcKey{vni, net::IpAddr(net::Ipv4Addr(
                                   10, static_cast<std::uint8_t>(v), 1,
                                   host))},
          tables::VmNcAction{net::Ipv4Addr(172, 16,
                                           static_cast<std::uint8_t>(v),
                                           host)});
    }
  }
}

std::vector<std::unique_ptr<xgwh::XgwH>> make_fleet(
    std::size_t cache_entries) {
  std::vector<std::unique_ptr<xgwh::XgwH>> fleet;
  fleet.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    fleet.push_back(
        std::make_unique<xgwh::XgwH>(device_config(cache_entries)));
    install_tables(*fleet.back());
  }
  return fleet;
}

// ---- burst-sweep fixture ---------------------------------------------------
// The hit-rate sweep above runs deliberately small tables (they fit in L2,
// isolating the cache-vs-walk cost). The burst sweep instead installs
// cloud-scale tables: kBurstVnis tenants, each with a local /16 and
// kBurstHosts VM-NC mappings. Tenants reuse one inner address plan —
// pooled keys embed the VNI, so the device still holds kBurstVnis distinct
// routes and kBurstVnis * kBurstHosts distinct mappings (~12 MB per
// device, ~100 MB across the fleet), far past the cache hierarchy. A cold
// stream hopping tenants makes every lookup a genuine memory miss — the
// regime the SoA walk's hash/prefetch/resolve pipeline is built for.

constexpr std::size_t kBurstVnis = 4096;
constexpr std::size_t kBurstHosts = 32;  // VM-NC mappings per tenant

void install_burst_tables(dataplane::TableProgrammer& gw) {
  for (std::size_t v = 0; v < kBurstVnis; ++v) {
    const net::Vni vni = static_cast<net::Vni>(100 + v);
    gw.install_route(
        vni, net::Ipv4Prefix(net::Ipv4Addr(10, 0, 0, 0), 16),
        tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, {}});
    for (std::size_t host = 0; host < kBurstHosts; ++host) {
      gw.install_mapping(
          tables::VmNcKey{vni, net::IpAddr(net::Ipv4Addr(
                                   10, 0, 1,
                                   static_cast<std::uint8_t>(1 + host)))},
          tables::VmNcAction{net::Ipv4Addr(
              172, static_cast<std::uint8_t>(16 + (v >> 8)),
              static_cast<std::uint8_t>(v & 255),
              static_cast<std::uint8_t>(1 + host))});
    }
  }
}

std::vector<std::unique_ptr<xgwh::XgwH>> make_burst_fleet(
    std::size_t cache_entries) {
  std::vector<std::unique_ptr<xgwh::XgwH>> fleet;
  fleet.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    fleet.push_back(
        std::make_unique<xgwh::XgwH>(device_config(cache_entries)));
    install_burst_tables(*fleet.back());
  }
  return fleet;
}

net::OverlayPacket burst_hot_flow(std::size_t id) {
  // Odd multiplier mod a power of two is a bijection on the low bits: the
  // working set spans 512 distinct tenants.
  const std::size_t v = (id * 2654435761ULL) % kBurstVnis;
  net::OverlayPacket pkt;
  pkt.vni = static_cast<net::Vni>(100 + v);
  pkt.inner.src = net::IpAddr(net::Ipv4Addr(
      10, 0, 2, static_cast<std::uint8_t>(1 + id % 250)));
  pkt.inner.dst = net::IpAddr(net::Ipv4Addr(
      10, 0, 1, static_cast<std::uint8_t>(1 + id % kBurstHosts)));
  pkt.inner.proto = 6;
  pkt.inner.src_port = static_cast<std::uint16_t>(40000 + id % 1000);
  pkt.inner.dst_port = 80;
  pkt.payload_size = 200;
  return pkt;
}

net::OverlayPacket burst_cold_flow(std::size_t id) {
  // Never-repeated flows scattered across all kBurstVnis tenants.
  net::OverlayPacket pkt = burst_hot_flow(id * 7919);
  pkt.inner.src_port = static_cast<std::uint16_t>(2000 + id % 30000);
  pkt.inner.src = net::IpAddr(net::Ipv4Addr(
      10, 0, 3, static_cast<std::uint8_t>(1 + (id / 30000) % 250)));
  return pkt;
}

std::vector<net::OverlayPacket> make_burst_stream(unsigned hit_percent) {
  std::vector<net::OverlayPacket> packets;
  packets.reserve(kPackets);
  std::size_t cold = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    if (i % 100 < hit_percent) {
      packets.push_back(burst_hot_flow(i % kWorkingSet));
    } else {
      packets.push_back(burst_cold_flow(cold++));
    }
  }
  return packets;
}

net::OverlayPacket hot_flow(std::size_t id) {
  const std::size_t v = id % kVnis;
  net::OverlayPacket pkt;
  pkt.vni = static_cast<net::Vni>(100 + v);
  pkt.inner.src = net::IpAddr(
      net::Ipv4Addr(10, static_cast<std::uint8_t>(v), 2,
                    static_cast<std::uint8_t>(1 + id % 250)));
  pkt.inner.dst = net::IpAddr(
      net::Ipv4Addr(10, static_cast<std::uint8_t>(v), 1,
                    static_cast<std::uint8_t>(1 + (id / kVnis) % 16)));
  pkt.inner.proto = 6;
  pkt.inner.src_port = static_cast<std::uint16_t>(40000 + id % 1000);
  pkt.inner.dst_port = 80;
  pkt.payload_size = 200;
  return pkt;
}

net::OverlayPacket cold_flow(std::size_t id) {
  // A never-repeated flow: unique source port space far from hot flows.
  net::OverlayPacket pkt = hot_flow(id % kWorkingSet);
  pkt.inner.src_port = static_cast<std::uint16_t>(2000 + id % 30000);
  pkt.inner.src = net::IpAddr(net::Ipv4Addr(
      10, static_cast<std::uint8_t>(id % kVnis), 3,
      static_cast<std::uint8_t>(1 + (id / 30000) % 250)));
  return pkt;
}

/// The measured stream: packet i is a working-set repeat when
/// (i % 100) < hit_percent, a fresh flow otherwise — deterministic and
/// independent of timing.
std::vector<net::OverlayPacket> make_stream(unsigned hit_percent) {
  std::vector<net::OverlayPacket> packets;
  packets.reserve(kPackets);
  std::size_t cold = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    if (i % 100 < hit_percent) {
      packets.push_back(hot_flow(i % kWorkingSet));
    } else {
      packets.push_back(cold_flow(cold++));
    }
  }
  return packets;
}

bool same_verdict(const dataplane::Verdict& a, const dataplane::Verdict& b) {
  return a.action == b.action && a.drop_reason == b.drop_reason &&
         a.latency_us == b.latency_us &&
         a.packet.outer_src_ip == b.packet.outer_src_ip &&
         a.packet.outer_dst_ip == b.packet.outer_dst_ip;
}

struct Point {
  unsigned hit_percent = 0;
  std::size_t threads = 1;
  double uncached_mpps = 0;
  double cached_mpps = 0;
  double speedup = 0;
  double measured_hit_rate = 0;
};

struct BatchPoint {
  std::size_t batch = 0;
  std::size_t threads = 1;
  double uncached_mpps = 0;  // 0%-hit stream, cache disabled
  double cached_mpps = 0;    // 90%-hit stream, cache enabled
};

}  // namespace

int main() {
  bench::print_header("Fast path",
                      "flow-cache hit-rate sweep, cached vs uncached pps");

  // Warm-up stream: every working-set flow once, so "hit rate" in the
  // measured stream means what it says.
  std::vector<net::OverlayPacket> warm;
  warm.reserve(kWorkingSet);
  for (std::size_t i = 0; i < kWorkingSet; ++i) warm.push_back(hot_flow(i));

  std::vector<Point> points;
  for (const unsigned hit_percent : {0u, 50u, 90u, 99u}) {
    const auto packets = make_stream(hit_percent);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      dataplane::ShardEngine engine({kShards, threads});
      auto gateway_for = [](auto& fleet) {
        return [&fleet](std::size_t shard) -> dataplane::Gateway& {
          return *fleet[shard];
        };
      };

      // Best-of-kReps wall time per configuration: a single ~50 ms pass is
      // at the mercy of scheduler noise on a shared box; the minimum is
      // the closest observable to the true per-packet cost.
      constexpr int kReps = 5;
      auto make_warm_fleet = [&](std::size_t cache_entries) {
        auto fleet = make_fleet(cache_entries);
        // Two warm passes: admission caches a flow on its second miss.
        engine.process_packets(warm, 0.0, gateway_for(fleet));
        engine.process_packets(warm, 0.0, gateway_for(fleet));
        return fleet;
      };
      auto fleet_hits = [](const auto& fleet) {
        std::uint64_t total = 0;
        for (const auto& device : fleet) {
          total += device->flow_cache_stats().hits;
        }
        return total;
      };

      auto uncached_fleet = make_warm_fleet(0);
      auto cached_fleet = make_warm_fleet(1 << 12);
      const std::uint64_t hits_before = fleet_hits(cached_fleet);

      // The verdict buffers are reusable pipeline state (the interval
      // engine recycles them batch to batch), so their construction is
      // not part of the per-packet cost being measured. Cached and
      // uncached passes alternate within each rep so background noise on
      // a shared box hits both sides of the ratio equally; best-of-kReps
      // is the closest observable to the true per-packet cost.
      std::vector<dataplane::Verdict> reference(packets.size());
      std::vector<dataplane::Verdict> verdicts(packets.size());
      double uncached_s = 0, cached_s = 0;
      std::uint64_t hits = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        engine.process_packets(packets, 0.0, gateway_for(uncached_fleet),
                               reference);
        const std::chrono::duration<double> u =
            std::chrono::steady_clock::now() - t0;
        t0 = std::chrono::steady_clock::now();
        engine.process_packets(packets, 0.0, gateway_for(cached_fleet),
                               verdicts);
        const std::chrono::duration<double> c =
            std::chrono::steady_clock::now() - t0;
        if (rep == 0 || u.count() < uncached_s) uncached_s = u.count();
        if (rep == 0 || c.count() < cached_s) cached_s = c.count();
        if (rep == 0) {
          // Hit accounting from the first pass only: later reps re-see
          // rep-1's "cold" flows. Verdicts are unaffected (replay is
          // byte-identical by construction), so reusing the fleet for
          // timing is safe — it just keeps the CPU caches realistic.
          hits = fleet_hits(cached_fleet) - hits_before;
        }
      }
      const std::uint64_t no_hits = fleet_hits(uncached_fleet);
      if (no_hits != 0) {
        std::fprintf(stderr, "FATAL: uncached fleet reported hits\n");
        return 1;
      }
      for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (!same_verdict(verdicts[i], reference[i])) {
          std::fprintf(stderr,
                       "FATAL: cached verdict diverged at packet %zu "
                       "(hit %u%%, %zu threads)\n",
                       i, hit_percent, threads);
          return 1;
        }
      }

      Point point;
      point.hit_percent = hit_percent;
      point.threads = threads;
      point.uncached_mpps = kPackets / uncached_s / 1e6;
      point.cached_mpps = kPackets / cached_s / 1e6;
      point.speedup = point.cached_mpps / point.uncached_mpps;
      point.measured_hit_rate =
          static_cast<double>(hits) / static_cast<double>(kPackets);
      points.push_back(point);
    }
  }

  // ---- burst-size sweep ----------------------------------------------------
  // Uncached throughput is the tentpole number: the SoA walk pipelines the
  // ALPM directory probes and bucket/VM-NC prefetches across the burst, so
  // the uncached rate should climb steeply from burst 1 to the plateau.
  // Verdicts must not move at all: each (burst, threads) stream is
  // byte-compared against the burst-1 stream of the same fleet kind.
  const auto cold_stream = make_burst_stream(0);
  const auto mixed_stream = make_burst_stream(90);
  std::vector<net::OverlayPacket> burst_warm;
  burst_warm.reserve(kWorkingSet);
  for (std::size_t i = 0; i < kWorkingSet; ++i) {
    burst_warm.push_back(burst_hot_flow(i));
  }
  std::vector<BatchPoint> batch_points;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    std::vector<dataplane::Verdict> uncached_ref(cold_stream.size());
    std::vector<dataplane::Verdict> cached_ref(mixed_stream.size());
    // One fleet pair per thread count, shared across burst sizes: the
    // cloud-scale install is expensive, and reuse is sound because burst
    // streams never take the fallback action (the only stateful meter)
    // and cache replay is byte-identical by contract — exactly what the
    // byte-compare below asserts. Every burst size therefore sees the
    // same fully-warm cache by its best-of-kReps pass, keeping the
    // cached trajectory comparable across points.
    auto uncached_fleet = make_burst_fleet(0);
    auto cached_fleet = make_burst_fleet(1 << 12);
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{8}, std::size_t{32}, std::size_t{128},
          std::size_t{512}}) {
      dataplane::ShardEngine engine({kShards, threads, batch});
      auto gateway_for = [](auto& fleet) {
        return [&fleet](std::size_t shard) -> dataplane::Gateway& {
          return *fleet[shard];
        };
      };
      engine.process_packets(burst_warm, 0.0, gateway_for(cached_fleet));
      engine.process_packets(burst_warm, 0.0, gateway_for(cached_fleet));

      constexpr int kReps = 5;
      std::vector<dataplane::Verdict> uncached_out(cold_stream.size());
      std::vector<dataplane::Verdict> cached_out(mixed_stream.size());
      double uncached_s = 0, cached_s = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        engine.process_packets(cold_stream, 0.0, gateway_for(uncached_fleet),
                               uncached_out);
        const std::chrono::duration<double> u =
            std::chrono::steady_clock::now() - t0;
        t0 = std::chrono::steady_clock::now();
        engine.process_packets(mixed_stream, 0.0, gateway_for(cached_fleet),
                               cached_out);
        const std::chrono::duration<double> c =
            std::chrono::steady_clock::now() - t0;
        if (rep == 0 || u.count() < uncached_s) uncached_s = u.count();
        if (rep == 0 || c.count() < cached_s) cached_s = c.count();
      }

      if (batch == 1) {
        uncached_ref = uncached_out;
        cached_ref = cached_out;
      } else {
        for (std::size_t i = 0; i < cold_stream.size(); ++i) {
          if (!same_verdict(uncached_out[i], uncached_ref[i])) {
            std::fprintf(stderr,
                         "FATAL: uncached verdict diverged at packet %zu "
                         "(burst %zu, %zu threads)\n",
                         i, batch, threads);
            return 1;
          }
        }
        for (std::size_t i = 0; i < mixed_stream.size(); ++i) {
          if (!same_verdict(cached_out[i], cached_ref[i])) {
            std::fprintf(stderr,
                         "FATAL: cached verdict diverged at packet %zu "
                         "(burst %zu, %zu threads)\n",
                         i, batch, threads);
            return 1;
          }
        }
      }

      BatchPoint bp;
      bp.batch = batch;
      bp.threads = threads;
      bp.uncached_mpps = kPackets / uncached_s / 1e6;
      bp.cached_mpps = kPackets / cached_s / 1e6;
      batch_points.push_back(bp);
    }
  }

  sim::TablePrinter table({"Hit rate", "Threads", "Uncached Mpps",
                           "Cached Mpps", "Speedup", "Measured hits"});
  for (const Point& p : points) {
    table.add_row({std::to_string(p.hit_percent) + "%",
                   std::to_string(p.threads),
                   sim::format_double(p.uncached_mpps, 3),
                   sim::format_double(p.cached_mpps, 3),
                   sim::format_double(p.speedup, 2) + "x",
                   bench::pct(p.measured_hit_rate)});
  }
  table.print();
  bench::print_note(
      "every point byte-matched the uncached fleet's verdict stream; the "
      "warm-up pass seeds the working set so the sweep's nominal hit rate "
      "is what the caches actually serve.");

  sim::TablePrinter batch_table(
      {"Burst", "Threads", "Uncached Mpps", "Cached Mpps", "vs burst 1"});
  for (const BatchPoint& p : batch_points) {
    double base = 0;
    for (const BatchPoint& q : batch_points) {
      if (q.threads == p.threads && q.batch == 1) base = q.uncached_mpps;
    }
    batch_table.add_row({std::to_string(p.batch), std::to_string(p.threads),
                         sim::format_double(p.uncached_mpps, 3),
                         sim::format_double(p.cached_mpps, 3),
                         sim::format_double(p.uncached_mpps / base, 2) + "x"});
  }
  batch_table.print();
  bench::print_note(
      "burst sweep: uncached = 0%-hit stream with the cache disabled, "
      "cached = 90%-hit stream; every burst size byte-matched the burst-1 "
      "verdict stream of the same fleet.");

  std::ofstream json("BENCH_fastpath.json");
  json << "{\n"
       << "  \"bench\": \"fastpath\",\n"
       << "  \"shards\": " << kShards << ",\n"
       << "  \"working_set_flows\": " << kWorkingSet << ",\n"
       << "  \"packets\": " << kPackets << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"hit_percent\": " << p.hit_percent
         << ", \"threads\": " << p.threads
         << ", \"uncached_mpps\": " << p.uncached_mpps
         << ", \"cached_mpps\": " << p.cached_mpps
         << ", \"speedup\": " << p.speedup
         << ", \"measured_hit_rate\": " << p.measured_hit_rate << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"batch_sweep\": [\n";
  for (std::size_t i = 0; i < batch_points.size(); ++i) {
    const BatchPoint& p = batch_points[i];
    json << "    {\"batch\": " << p.batch << ", \"threads\": " << p.threads
         << ", \"uncached_mpps\": " << p.uncached_mpps
         << ", \"cached_mpps\": " << p.cached_mpps << "}"
         << (i + 1 < batch_points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_fastpath.json\n");
  return 0;
}
