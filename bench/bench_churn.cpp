// Mid-interval table churn: a tenant-onboarding wave plus a VM-migration
// storm applied by a dedicated mutator thread WHILE the sharded engine
// forwards a packet batch (DESIGN.md §13). Every update carries a virtual
// apply_index, so which packets see which table version is a property of
// the stamped op stream — never of thread timing.
//
// Asserted as a side effect (FATAL on violation):
//   * the churn verdict stream is byte-identical at 1 and 8 worker
//     threads (and so are the per-shard table/counter reports);
//   * the flow-cached fleet produces exactly the uncached fleet's
//     verdicts under churn (per-VNI invalidation is coherent);
//   * at least one verdict differs from the static-table run — the
//     migrations really became visible mid-interval.
//
// Measured: sustained update rate (target >= 50k ops/s) and the uncached
// forwarding-rate degradation vs a churn-free run (target < 10%). Numbers
// land in BENCH_churn.json; EXPERIMENTS.md quotes them.

#include <chrono>
#include <ctime>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dataplane/shard_engine.hpp"
#include "sim/table_printer.hpp"
#include "x86/xgw_x86.hpp"

using namespace sf;

namespace {

constexpr std::size_t kShards = 8;
constexpr std::size_t kVnis = 64;
constexpr std::size_t kHosts = 16;        // mapped VMs per tenant
constexpr std::size_t kWorkingSet = 512;  // distinct hot flows
constexpr std::size_t kPackets = 240'000;
// One op per 120 packets — far above the paper's Fig. 23 update:packet
// ratio, but low enough that forwarding is not artificially mutator-bound.
constexpr std::size_t kOps = 2'000;

net::Vni base_vni(std::size_t v) { return static_cast<net::Vni>(100 + v); }

/// Identical tables on every shard node: kVnis tenants, each a local /16
/// and kHosts VM-NC mappings.
void install_tables(dataplane::TableProgrammer& gw) {
  for (std::size_t v = 0; v < kVnis; ++v) {
    gw.install_route(
        base_vni(v),
        net::Ipv4Prefix(net::Ipv4Addr(10, static_cast<std::uint8_t>(v), 0, 0),
                        16),
        tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, {}});
    for (std::size_t host = 1; host <= kHosts; ++host) {
      gw.install_mapping(
          tables::VmNcKey{base_vni(v),
                          net::IpAddr(net::Ipv4Addr(
                              10, static_cast<std::uint8_t>(v), 1,
                              static_cast<std::uint8_t>(host)))},
          tables::VmNcAction{net::Ipv4Addr(
              172, 16, static_cast<std::uint8_t>(v),
              static_cast<std::uint8_t>(host))});
    }
  }
}

std::vector<std::unique_ptr<x86::XgwX86>> make_fleet(
    std::size_t cache_entries) {
  std::vector<std::unique_ptr<x86::XgwX86>> fleet;
  fleet.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    x86::XgwX86::Config config;
    config.flow_cache_entries = cache_entries;
    fleet.push_back(std::make_unique<x86::XgwX86>(config));
    install_tables(*fleet.back());
  }
  return fleet;
}

net::OverlayPacket hot_flow(std::size_t id) {
  const std::size_t v = id % kVnis;
  const std::size_t host = 1 + (id / kVnis) % kHosts;
  net::OverlayPacket pkt;
  pkt.vni = base_vni(v);
  pkt.inner.src = net::IpAddr(
      net::Ipv4Addr(10, static_cast<std::uint8_t>(v), 2,
                    static_cast<std::uint8_t>(1 + id % 250)));
  pkt.inner.dst = net::IpAddr(
      net::Ipv4Addr(10, static_cast<std::uint8_t>(v), 1,
                    static_cast<std::uint8_t>(host)));
  pkt.inner.proto = 6;
  pkt.inner.src_port = static_cast<std::uint16_t>(40000 + id % 1000);
  pkt.inner.dst_port = 80;
  pkt.payload_size = 200;
  return pkt;
}

std::vector<net::OverlayPacket> make_stream() {
  std::vector<net::OverlayPacket> packets;
  packets.reserve(kPackets);
  for (std::size_t i = 0; i < kPackets; ++i) {
    packets.push_back(hot_flow(i % kWorkingSet));
  }
  return packets;
}

/// The churn stream. Even ops are VM migrations: an existing tenant's
/// mapping re-targets a new NC (its in-flight flows must follow from the
/// next virtual instant on). Odd ops onboard fresh tenants (route +
/// mapping installs that grow the tables mid-interval). apply_index is
/// spread evenly across the batch.
std::vector<dataplane::TimedTableOp> make_updates() {
  std::vector<dataplane::TimedTableOp> updates;
  updates.reserve(kOps);
  for (std::size_t k = 0; k < kOps; ++k) {
    dataplane::TimedTableOp timed;
    timed.apply_index = k * kPackets / kOps;
    dataplane::TableOp& op = timed.op;
    if (k % 2 == 0) {
      const std::size_t m = k / 2;
      const std::size_t v = m % kVnis;
      const std::size_t host = 1 + (m / kVnis) % kHosts;
      const std::size_t wave = m / (kVnis * kHosts);
      op.kind = dataplane::TableOp::Kind::kAddMapping;
      op.mapping_key =
          tables::VmNcKey{base_vni(v),
                          net::IpAddr(net::Ipv4Addr(
                              10, static_cast<std::uint8_t>(v), 1,
                              static_cast<std::uint8_t>(host)))};
      op.mapping_action = tables::VmNcAction{net::Ipv4Addr(
          172, static_cast<std::uint8_t>(17 + wave),
          static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(host))};
      op.vni = op.mapping_key.vni;
    } else {
      // Onboarding: a brand-new tenant's first route (no traffic in this
      // batch; it stresses the publish path and table growth).
      const std::size_t t = k / 2;
      op.kind = dataplane::TableOp::Kind::kAddRoute;
      op.vni = static_cast<net::Vni>(0x30000 + t);
      op.prefix = net::Ipv4Prefix(
          net::Ipv4Addr(10, static_cast<std::uint8_t>(64 + t % 128), 0, 0),
          16);
      op.route_action =
          tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, {}};
    }
    updates.push_back(timed);
  }
  return updates;
}

using Fleet = std::vector<std::unique_ptr<x86::XgwX86>>;

std::function<dataplane::Gateway&(std::size_t)> gateway_for(Fleet& fleet) {
  return [&fleet](std::size_t shard) -> dataplane::Gateway& {
    return *fleet[shard];
  };
}

/// CPU seconds consumed by the calling thread so far.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

/// One interleaved pass: mutator applies the op stream (fanned to every
/// shard node) while the engine forwards. Returns wall seconds; when
/// `mutator_seconds` is non-null it receives the mutator thread's CPU
/// time over the apply stream — its wall span is scheduler noise on an
/// oversubscribed host, CPU time is the work the updates actually cost.
double run_churn(dataplane::ShardEngine& engine, Fleet& fleet,
                 std::span<const net::OverlayPacket> packets,
                 std::span<const dataplane::TimedTableOp> updates,
                 std::span<dataplane::Verdict> out,
                 double* mutator_seconds = nullptr) {
  std::vector<std::uint64_t> base(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    base[s] = fleet[s]->table_version();
  }
  double mutator_cpu_t0 = 0;
  dataplane::ShardEngine::UpdatePlan plan;
  plan.updates = updates;
  plan.apply = [&](std::size_t k) {
    if (k == 0) mutator_cpu_t0 = thread_cpu_seconds();
    const auto batch = dataplane::TableOpBatch::single(updates[k].op);
    for (auto& node : fleet) node->apply(batch);
    if (k + 1 == updates.size() && mutator_seconds != nullptr) {
      *mutator_seconds = thread_cpu_seconds() - mutator_cpu_t0;
    }
  };
  plan.advance = [&](std::size_t shard, std::size_t visible) {
    fleet[shard]->set_lookup_seq(base[shard] + visible);
  };
  const auto t0 = std::chrono::steady_clock::now();
  engine.process_packets(packets, 0.0, gateway_for(fleet), out, plan);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  for (auto& node : fleet) node->set_lookup_seq(std::nullopt);
  return dt.count();
}

bool same_verdict(const dataplane::Verdict& a, const dataplane::Verdict& b) {
  return a.action == b.action && a.drop_reason == b.drop_reason &&
         a.latency_us == b.latency_us &&
         a.packet.outer_src_ip == b.packet.outer_src_ip &&
         a.packet.outer_dst_ip == b.packet.outer_dst_ip;
}

std::size_t first_difference(std::span<const dataplane::Verdict> a,
                             std::span<const dataplane::Verdict> b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_verdict(a[i], b[i])) return i;
  }
  return a.size();
}

/// The per-shard interval report: table versions, table sizes, forwarding
/// counters. Byte-compared across thread counts.
std::string fleet_report(const Fleet& fleet) {
  std::string report;
  char line[160];
  for (std::size_t s = 0; s < kShards; ++s) {
    const x86::XgwX86& node = *fleet[s];
    std::snprintf(line, sizeof(line),
                  "shard=%zu version=%llu routes=%zu mappings=%zu in=%llu "
                  "fwd=%llu drop=%llu\n",
                  s, static_cast<unsigned long long>(node.table_version()),
                  node.route_count(), node.mapping_count(),
                  static_cast<unsigned long long>(
                      node.telemetry().packets_in),
                  static_cast<unsigned long long>(
                      node.telemetry().packets_forwarded),
                  static_cast<unsigned long long>(
                      node.telemetry().packets_dropped));
    report += line;
  }
  return report;
}

}  // namespace

int main() {
  bench::print_header(
      "Table churn",
      "mid-interval RCU updates vs forwarding, 1 vs 8 threads");

  const auto packets = make_stream();
  const auto updates = make_updates();

  // ---- byte-identity sweeps (fresh fleets, first pass only) --------------
  // Static reference: same batch, no churn.
  std::vector<dataplane::Verdict> reference(kPackets);
  {
    dataplane::ShardEngine engine({kShards, 1});
    auto fleet = make_fleet(0);
    engine.process_packets(packets, 0.0, gateway_for(fleet), reference);
  }

  std::vector<dataplane::Verdict> uncached_1(kPackets), uncached_8(kPackets);
  std::vector<dataplane::Verdict> cached_1(kPackets), cached_8(kPackets);
  std::string report_1, report_8;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    dataplane::ShardEngine engine({kShards, threads});
    auto uncached = make_fleet(0);
    auto cached = make_fleet(1 << 12);
    auto& u_out = threads == 1 ? uncached_1 : uncached_8;
    auto& c_out = threads == 1 ? cached_1 : cached_8;
    run_churn(engine, uncached, packets, updates, u_out);
    run_churn(engine, cached, packets, updates, c_out);
    (threads == 1 ? report_1 : report_8) = fleet_report(uncached);
  }

  if (std::size_t i = first_difference(uncached_1, uncached_8);
      i != kPackets) {
    const auto& a = uncached_1[i];
    const auto& b = uncached_8[i];
    std::fprintf(stderr,
                 "FATAL: churn verdicts diverged between 1 and 8 threads "
                 "at packet %zu\n  1t: action=%d drop=%d lat=%f dst=%s\n"
                 "  8t: action=%d drop=%d lat=%f dst=%s\n",
                 i, static_cast<int>(a.action),
                 static_cast<int>(a.drop_reason), a.latency_us,
                 a.packet.outer_dst_ip.to_string().c_str(),
                 static_cast<int>(b.action), static_cast<int>(b.drop_reason),
                 b.latency_us, b.packet.outer_dst_ip.to_string().c_str());
    return 1;
  }
  if (std::size_t i = first_difference(cached_1, cached_8); i != kPackets) {
    std::fprintf(stderr,
                 "FATAL: cached churn verdicts diverged between 1 and 8 "
                 "threads at packet %zu\n",
                 i);
    return 1;
  }
  if (std::size_t i = first_difference(cached_1, uncached_1);
      i != kPackets) {
    std::fprintf(stderr,
                 "FATAL: flow cache incoherent under churn at packet %zu\n",
                 i);
    return 1;
  }
  if (report_1 != report_8) {
    std::fprintf(stderr,
                 "FATAL: interval reports differ between thread counts:\n"
                 "--- 1 thread ---\n%s--- 8 threads ---\n%s",
                 report_1.c_str(), report_8.c_str());
    return 1;
  }
  std::size_t changed = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    if (!same_verdict(uncached_1[i], reference[i])) ++changed;
  }
  if (changed == 0) {
    std::fprintf(stderr,
                 "FATAL: no verdict changed under churn — migrations never "
                 "became visible mid-interval\n");
    return 1;
  }

  // ---- timing (uncached fleets, best of kReps) ---------------------------
  constexpr int kReps = 5;
  struct Point {
    std::size_t threads = 1;
    double static_mpps = 0;
    double churn_mpps = 0;
    double degradation = 0;      // wall-clock: 1 - churn/static
    double fwd_degradation = 0;  // mutator CPU discounted when timesharing
    double ops_per_s = 0;
  };
  std::vector<Point> points;
  std::vector<dataplane::Verdict> sink(kPackets);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    dataplane::ShardEngine engine({kShards, threads});
    auto static_fleet = make_fleet(0);
    auto churn_fleet = make_fleet(0);
    double static_s = 0, churn_s = 0, mutator_s = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      engine.process_packets(packets, 0.0, gateway_for(static_fleet), sink);
      const std::chrono::duration<double> st =
          std::chrono::steady_clock::now() - t0;
      double ms = 0;
      const double ct =
          run_churn(engine, churn_fleet, packets, updates, sink, &ms);
      if (rep == 0 || st.count() < static_s) static_s = st.count();
      if (rep == 0 || ct < churn_s) churn_s = ct;
      if (rep == 0 || ms < mutator_s) mutator_s = ms;
    }
    Point point;
    point.threads = threads;
    point.static_mpps = kPackets / static_s / 1e6;
    point.churn_mpps = kPackets / churn_s / 1e6;
    point.degradation = 1.0 - point.churn_mpps / point.static_mpps;
    // When forwarding threads + the mutator timeshare too few CPUs, wall
    // clock charges the mutator's own table work to forwarding. Discount
    // the mutator span to isolate what the paper's claim is about — the
    // read-path overhead of concurrent updates (pins, invalidation).
    const std::size_t hw = std::thread::hardware_concurrency();
    const bool timeshared = hw != 0 && threads + 1 > hw;
    const double fwd_s =
        timeshared && churn_s > mutator_s ? churn_s - mutator_s : churn_s;
    point.fwd_degradation = 1.0 - (kPackets / fwd_s / 1e6) / point.static_mpps;
    // Sustained apply rate over the mutator's own span: the updates all
    // landed mid-interval, so this is the rate the data plane absorbed
    // while forwarding (each op also fans out to all kShards nodes).
    point.ops_per_s = static_cast<double>(kOps) / mutator_s;
    points.push_back(point);
  }

  sim::TablePrinter table({"Threads", "Static Mpps", "Churn Mpps",
                           "Wall degr", "Fwd degr", "Update ops/s"});
  for (const Point& p : points) {
    table.add_row({std::to_string(p.threads),
                   sim::format_double(p.static_mpps, 3),
                   sim::format_double(p.churn_mpps, 3),
                   bench::pct(p.degradation),
                   bench::pct(p.fwd_degradation),
                   sim::format_double(p.ops_per_s / 1e3, 1) + "k"});
  }
  table.print();
  std::printf("verdicts changed by mid-interval migrations: %zu of %zu\n",
              changed, kPackets);
  std::printf("hardware threads: %u (forwarding degradation is "
              "mutator-CPU-adjusted when timeshared)\n",
              std::thread::hardware_concurrency());
  bench::print_note(
      "verdict streams and interval reports byte-matched at 1 vs 8 "
      "threads; cached == uncached under churn. Targets: >= 50k ops/s "
      "sustained, < 10% uncached forwarding degradation.");
  for (const Point& p : points) {
    if (p.ops_per_s < 50'000) {
      std::printf("WARN: %zu-thread update rate %.0f ops/s below 50k "
                  "target\n",
                  p.threads, p.ops_per_s);
    }
    if (p.fwd_degradation >= 0.10) {
      std::printf("WARN: %zu-thread uncached forwarding degradation %.1f%% "
                  "above 10%% target\n",
                  p.threads, 100.0 * p.fwd_degradation);
    }
  }

  std::ofstream json("BENCH_churn.json");
  json << "{\n"
       << "  \"bench\": \"churn\",\n"
       << "  \"shards\": " << kShards << ",\n"
       << "  \"packets\": " << kPackets << ",\n"
       << "  \"update_ops\": " << kOps << ",\n"
       << "  \"verdicts_changed_by_churn\": " << changed << ",\n"
       << "  \"byte_identical_across_threads\": true,\n"
       << "  \"cache_coherent_under_churn\": true,\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json << "    {\"threads\": " << p.threads
         << ", \"static_mpps\": " << p.static_mpps
         << ", \"churn_mpps\": " << p.churn_mpps
         << ", \"wall_degradation\": " << p.degradation
         << ", \"forwarding_degradation\": " << p.fwd_degradation
         << ", \"update_ops_per_s\": " << p.ops_per_s << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_churn.json\n");
  return 0;
}
