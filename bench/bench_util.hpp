// Shared helpers for the reproduction benches: each bench regenerates one
// table or figure of the paper and prints the paper's reported values next
// to the measured ones (EXPERIMENTS.md records the comparison).

#pragma once

#include <cstdio>
#include <string>

#include "sim/table_printer.hpp"
#include "sim/timeseries.hpp"

namespace sf::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

inline std::string pct(double fraction, int precision = 1) {
  return sim::format_percent(fraction, precision);
}

}  // namespace sf::bench
