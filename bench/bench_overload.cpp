// Overload-isolation bench (sf::guard) — one tenant floods the region at
// 4x its interval capacity while every other tenant keeps its normal
// Zipf share. The tenant guard must walk the storm tenant down the
// degradation ladder (full service -> shed new flows -> shed tenant)
// while the victims' drop rate stays under 1% at every sample. Writes
// BENCH_overload.json with the isolation ratio for tracking.
//
// Self-checking — the process exits nonzero if the isolation contract is
// violated, so CI can use it as an overload smoke test:
//   * the run must converge (storm tenant back to full service, no
//     leaked guard state);
//   * the ladder must descend tier by tier to shed-tenant during the
//     flood, and every victim sample must stay under the 1% budget;
//   * the scripted storm must replay byte-identically on 1 and 8
//     interval-engine threads;
//   * a fixed-seed randomized storm schedule must reproduce itself on a
//     fresh region.
//
// With SF_GUARD=off there is nothing to measure: the bench prints a note
// and exits 0 (the byte-identity CI sweep diffs the *other* benches).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "chaos/injector.hpp"
#include "core/sailfish.hpp"
#include "guard/guard.hpp"

using namespace sf;

namespace {

constexpr double kIntervalBps = 1e11;
constexpr double kStormMagnitude = 4.0;  // x region capacity
constexpr double kVictimDropBudget = 0.01;

core::SailfishOptions guarded_options() {
  core::SailfishOptions options = core::quickstart_options();
  options.region.enable_guard = true;
  options.region.guard.escalate_after = 1;
  options.region.guard.deescalate_after = 2;
  options.region.enable_punt_path = true;
  return options;
}

chaos::ChaosInjector::Config injector_config() {
  chaos::ChaosInjector::Config config;
  config.interval_bps = kIntervalBps;
  config.interval_every = 4;
  config.settle_s = 30.0;
  return config;
}

chaos::ChaosSchedule scripted_storm() {
  chaos::ChaosEvent event;
  event.time = 2.0;
  event.kind = chaos::FaultKind::kTenantStorm;
  event.count = 24;                   // Zipf-skewed flood flows
  event.duration = 8.0;               // seconds
  event.error_rate = kStormMagnitude; // x region rate
  chaos::ChaosSchedule schedule;
  schedule.add(event);
  return schedule;
}

std::string sci(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2e", value);
  return buffer;
}

}  // namespace

int main() {
  bench::print_header("Overload isolation",
                      "single-tenant storm at 4x region capacity vs. "
                      "the tenant guard's degradation ladder");
  if (!guard::guard_enabled()) {
    bench::print_note(
        "SF_GUARD=off: the guard is gated out of every region, so there "
        "is no overload machinery to measure. Skipping.");
    return 0;
  }

  // ---- scripted storm on 1 and 8 interval threads -------------------------
  const chaos::ChaosSchedule schedule = scripted_storm();
  core::SailfishSystem one = core::make_system(guarded_options());
  core::SailfishSystem eight = core::make_system(guarded_options());
  one.region->set_interval_threads(1);
  eight.region->set_interval_threads(8);
  chaos::ChaosInjector injector_one(*one.region, one.flows,
                                    injector_config());
  chaos::ChaosInjector injector_eight(*eight.region, eight.flows,
                                      injector_config());
  const chaos::ChaosReport report = injector_one.run(schedule);
  const chaos::ChaosReport report_eight = injector_eight.run(schedule);
  const bool replay_identical =
      report.to_json() == report_eight.to_json() &&
      injector_one.log().to_string() == injector_eight.log().to_string();

  // ---- fixed-seed randomized storm schedule replays itself ----------------
  chaos::ChaosSchedule::RandomConfig shape;
  shape.events = 10;
  shape.horizon_s = 12.0;
  shape.devices_per_cluster = 4;
  shape.ports_per_device = 4;
  shape.tenant_storms = true;
  std::uint64_t storm_seed = 0;
  for (std::uint64_t candidate = 1; candidate <= 64 && storm_seed == 0;
       ++candidate) {
    if (chaos::ChaosSchedule::random(candidate, shape)
            .to_string()
            .find("tenant-storm") != std::string::npos) {
      storm_seed = candidate;
    }
  }
  bool seeded_replay_identical = storm_seed != 0;
  bool seeded_converged = storm_seed != 0;
  if (storm_seed != 0) {
    std::string first;
    for (int round = 0; round < 2; ++round) {
      core::SailfishSystem system = core::make_system(guarded_options());
      chaos::ChaosInjector injector(*system.region, system.flows,
                                    injector_config());
      const chaos::ChaosReport seeded =
          injector.run(chaos::ChaosSchedule::random(storm_seed, shape));
      seeded_converged = seeded_converged && seeded.converged();
      const std::string rendered =
          seeded.to_json() + injector.log().to_string();
      if (round == 0) {
        first = rendered;
      } else {
        seeded_replay_identical = rendered == first;
      }
    }
  }

  // ---- the isolation numbers ----------------------------------------------
  sim::TablePrinter table({"t (s)", "Tier", "Storm offered (pps)",
                           "Storm shed (pps)", "Victim drop"});
  int max_tier = 0;
  bool ladder_monotonic = true;
  double peak_shed_fraction = 0;
  for (std::size_t i = 0; i < report.storm_samples.size(); ++i) {
    const auto& sample = report.storm_samples[i];
    table.add_row({sim::format_double(sample.time, 1),
                   guard::name(static_cast<guard::Tier>(sample.tier)),
                   sci(sample.storm_offered_pps), sci(sample.storm_shed_pps),
                   sci(sample.victim_drop_rate)});
    if (i > 0 && sample.tier < report.storm_samples[i - 1].tier) {
      ladder_monotonic = false;
    }
    max_tier = std::max(max_tier, sample.tier);
    if (sample.storm_offered_pps > 0) {
      peak_shed_fraction =
          std::max(peak_shed_fraction,
                   sample.storm_shed_pps / sample.storm_offered_pps);
    }
  }
  table.print();

  // Isolation ratio: how much harder the storm tenant is hit than the
  // victims — shed fraction over victim drop rate (floored to keep the
  // ratio finite when the victims lose nothing at all).
  const double isolation_ratio =
      peak_shed_fraction / std::max(report.peak_victim_drop_rate, 1e-9);
  std::printf("storm magnitude            : %.1fx region capacity\n",
              kStormMagnitude);
  std::printf("deepest ladder tier        : %s\n",
              guard::name(static_cast<guard::Tier>(max_tier)));
  std::printf("peak storm shed fraction   : %s\n",
              sci(peak_shed_fraction).c_str());
  std::printf("peak victim drop rate      : %s (budget %s)\n",
              sci(report.peak_victim_drop_rate).c_str(),
              sci(kVictimDropBudget).c_str());
  std::printf("isolation ratio            : %s\n",
              sci(isolation_ratio).c_str());
  std::printf("thread replay              : %s\n",
              replay_identical ? "identical" : "DIVERGED");
  std::printf("seeded replay (seed %llu)    : %s\n",
              static_cast<unsigned long long>(storm_seed),
              seeded_replay_identical ? "identical" : "DIVERGED");

  bench::print_note(
      "the storm tenant must be walked tier by tier to shed-tenant while "
      "every other tenant's drop rate stays under 1%; a nonzero exit "
      "means tenant isolation regressed.");

  const bool ok = report.converged() && !report.storm_samples.empty() &&
                  max_tier == 2 && ladder_monotonic &&
                  report.peak_victim_drop_rate < kVictimDropBudget &&
                  replay_identical && seeded_converged &&
                  seeded_replay_identical;
  if (!report.converged()) {
    for (const std::string& leak : report.leaks) {
      std::fprintf(stderr, "FATAL: leaked: %s\n", leak.c_str());
    }
  }
  if (max_tier != 2 || !ladder_monotonic) {
    std::fprintf(stderr,
                 "FATAL: ladder did not descend tier by tier to "
                 "shed-tenant (max tier %d)\n",
                 max_tier);
  }
  if (report.peak_victim_drop_rate >= kVictimDropBudget) {
    std::fprintf(stderr, "FATAL: victim drop rate %.3e over budget %.3e\n",
                 report.peak_victim_drop_rate, kVictimDropBudget);
  }
  if (!replay_identical || !seeded_replay_identical) {
    std::fprintf(stderr, "FATAL: storm replay diverged\n");
  }

  std::ofstream json("BENCH_overload.json");
  json << "{\n  \"bench\": \"overload_isolation\",\n"
       << "  \"storm_magnitude\": " << kStormMagnitude << ",\n"
       << "  \"interval_bps\": " << sci(kIntervalBps) << ",\n"
       << "  \"deepest_tier\": " << max_tier << ",\n"
       << "  \"peak_storm_shed_fraction\": " << sci(peak_shed_fraction)
       << ",\n"
       << "  \"peak_victim_drop_rate\": " << sci(report.peak_victim_drop_rate)
       << ",\n"
       << "  \"isolation_ratio\": " << sci(isolation_ratio) << ",\n"
       << "  \"replay_identical\": " << (replay_identical ? "true" : "false")
       << ",\n"
       << "  \"seeded_replay_identical\": "
       << (seeded_replay_identical ? "true" : "false") << ",\n"
       << "  \"storm_seed\": " << storm_seed << ",\n"
       << "  \"report\": " << report.to_json() << "\n}\n";
  std::printf("wrote BENCH_overload.json\n");

  return ok ? 0 : 1;
}
