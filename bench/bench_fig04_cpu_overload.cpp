// Fig. 4 — "CPU overload in an XGW-x86": one core pinned near 100% for
// days while its 31 siblings idle, because RSS pins the heavy-hitter
// flow(s) to it. 8 simulated days, 30-minute intervals.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "x86_region_sim.hpp"

using namespace sf;

int main() {
  bench::print_header("Fig. 4",
                      "per-core CPU consumption of one XGW-x86 over 8 days");

  bench::X86RegionSim sim({});

  // The gateway hosting the region's heaviest flow: the paper's box.
  const std::size_t hot_gateway = sim.hottest_gateway();

  // Track the top-5 cores by mean utilization.
  const unsigned cores = sim.config().model.cores;
  std::vector<sim::TimeSeries> core_series;
  for (unsigned c = 0; c < cores; ++c) {
    core_series.emplace_back("core" + std::to_string(c));
  }

  const double step = 1800;  // 30 minutes
  for (double t = 0; t < workload::days(8); t += step) {
    const auto reports = sim.step(t);
    const auto& cores_report = reports[hot_gateway].cores;
    for (unsigned c = 0; c < cores; ++c) {
      core_series[c].record(t / 86400.0,
                            std::min(1.0, cores_report[c].utilization) *
                                100.0);
    }
  }

  std::vector<std::size_t> order(cores);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return core_series[a].mean_value() > core_series[b].mean_value();
  });

  std::printf("top-5 cores of gateway %zu (utilization %%, 8 days):\n",
              hot_gateway);
  for (int rank = 0; rank < 5; ++rank) {
    std::printf("  #%d %s\n", rank + 1,
                sim::sparkline(core_series[order[static_cast<size_t>(rank)]],
                               64)
                    .c_str());
  }

  const double top = core_series[order[0]].mean_value();
  const double second = core_series[order[1]].mean_value();
  sim::TablePrinter table({"Metric", "Measured", "Paper"});
  table.add_row({"top core mean utilization",
                 sim::format_double(top, 0) + "%", "~100% for days"});
  table.add_row({"2nd core mean utilization",
                 sim::format_double(second, 0) + "%", "lightly loaded"});
  table.print();
  bench::print_note(
      "flow-based RSS hashing keeps the heavy hitter on one core: the "
      "§2.3 root cause.");
  return 0;
}
