// §8 (future work) — "N+1" hierarchical cache clusters: N cache clusters
// serving only the active tenants' entries plus one full backup cluster.
// Reproduces the paper's arithmetic ("if only 25% of the tenants' entries
// are active ... 4x performance at the cost of only 2x the number of
// XGW-H nodes") over a measured tenant-activity distribution, sweeps the
// design space, and quantifies the §6.2 stability argument against
// TEA-style dynamic caching: what happens when the active set shifts.

#include <cstdio>

#include "bench_util.hpp"
#include "core/cache_cluster.hpp"
#include "workload/zipf.hpp"

using namespace sf;

namespace {

// Tenant population shaped by §4.2's data mining: traffic is far more
// concentrated than entries ("5% of the table entries carry 95% of the
// traffic"), so a modest active-entry budget captures most traffic.
std::vector<core::TenantActivity> make_tenants(std::size_t count) {
  const std::vector<double> entries = workload::zipf_weights(count, 0.8);
  const double traffic_exponent =
      workload::fit_zipf_exponent(count, 0.05, 0.95);
  const std::vector<double> traffic =
      workload::zipf_weights(count, traffic_exponent);
  std::vector<core::TenantActivity> tenants(count);
  for (std::size_t i = 0; i < count; ++i) {
    tenants[i] = core::TenantActivity{entries[i], traffic[i]};
  }
  return tenants;
}

}  // namespace

int main() {
  bench::print_header("§8", "N+1 hierarchical cache clusters (future work)");

  // The paper's worked example: 25% active entries, 4 cache clusters.
  const auto tenants = make_tenants(2000);
  core::CacheClusterPlan paper_plan({4, 0.25});
  const auto analysis = paper_plan.analyze(tenants);

  sim::TablePrinter headline({"Metric", "Measured", "Paper (§8)"});
  headline.add_row({"active tenants in cache tier",
                    std::to_string(analysis.active_tenants) + " / 2000",
                    "the active 25% of entries"});
  headline.add_row({"cache hit rate (traffic share)",
                    bench::pct(analysis.hit_rate, 1), "high (80/20 rule)"});
  headline.add_row({"processing capability multiplier",
                    sim::format_double(analysis.load_multiplier, 2) + "x",
                    "4x"});
  headline.add_row({"node cost ratio",
                    sim::format_double(analysis.cost_ratio, 2) + "x", "2x"});
  headline.print();

  // Design-space sweep: cache cluster count x active fraction.
  std::printf("\ndesign sweep (load multiplier / cost ratio):\n");
  sim::TablePrinter sweep({"active fraction", "N=2", "N=4", "N=8"});
  for (double fraction : {0.1, 0.25, 0.5}) {
    std::vector<std::string> row{sim::format_double(fraction, 2)};
    for (std::size_t n : {2ul, 4ul, 8ul}) {
      const auto a = core::CacheClusterPlan({n, fraction}).analyze(tenants);
      row.push_back(sim::format_double(a.load_multiplier, 1) + "x / " +
                    sim::format_double(a.cost_ratio, 1) + "x");
    }
    sweep.add_row(row);
  }
  sweep.print();

  // Stability ablation (§6.2 "Occam's razor"): the active set was chosen
  // from history; shift tenant traffic and watch the miss path. With
  // pre-identified active sets the planner sees this coming; a TEA-style
  // dynamic cache would discover it as a runtime cache breakdown.
  std::printf("\nactivity-shift ablation (active set fixed, traffic moves):\n");
  sim::TablePrinter shift({"traffic shifted to cold tenants", "hit rate",
                           "backup load multiple", "backup overloaded?"});
  const auto active = core::active_set(tenants, 0.25);
  for (double shifted : {0.0, 0.1, 0.3, 0.5}) {
    double hit = 0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      double share = tenants[i].traffic_share * (1.0 - shifted);
      // The shifted portion spreads over the cold (inactive) tenants.
      if (!active[i]) {
        share += shifted / static_cast<double>(tenants.size());
      }
      if (active[i]) hit += share;
    }
    // At the paper's 4x design load, the backup absorbs (1-hit)*4 units.
    const double backup_load = (1.0 - hit) * 4.0;
    shift.add_row({bench::pct(shifted, 0), bench::pct(hit, 1),
                   sim::format_double(backup_load, 2) + "x",
                   backup_load > 1.0 ? "YES — re-plan needed" : "no"});
  }
  shift.print();
  bench::print_note(
      "Sailfish ships pre-allocated tables precisely to avoid runtime "
      "cache breakdown (§6.2); the N+1 design inherits that by planning "
      "the active set offline and re-planning on drift.");
  return 0;
}
