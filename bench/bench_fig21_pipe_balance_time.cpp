// Fig. 21 — "Balanced traffic distribution between pipelines (view of
// time)": the Egress-Pipe-1 and Egress-Pipe-3 rate curves overlap across
// the whole festival week.

#include <cstdio>

#include "bench_util.hpp"
#include "sailfish_region_sim.hpp"

using namespace sf;

int main() {
  bench::print_header("Fig. 21",
                      "loopback-pipe rates across the festival week");

  bench::SailfishScenario scenario = bench::make_scenario(1.0, 77, 30);

  sim::TimeSeries pipe1("Egress Pipe 1 (Tbps)");
  sim::TimeSeries pipe3("Egress Pipe 3 (Tbps)");
  sim::TimeSeries gap("pipe imbalance");
  const double step = 3600;
  for (double t = 0; t < workload::days(8); t += step) {
    const double offered = workload::rate_at(scenario.pattern, t);
    const auto report = scenario.system.region->simulate_interval(
        scenario.system.flows, offered,
        static_cast<std::uint64_t>(t / step));
    pipe1.record(t / 86400.0, report.shard_pipe_bps[1] / 1e12);
    pipe3.record(t / 86400.0, report.shard_pipe_bps[3] / 1e12);
    const double total =
        report.shard_pipe_bps[1] + report.shard_pipe_bps[3];
    gap.record(t / 86400.0,
               total > 0 ? std::abs(report.shard_pipe_bps[1] -
                                    report.shard_pipe_bps[3]) /
                               total
                         : 0);
  }

  std::printf("%s\n", sim::sparkline(pipe1, 64).c_str());
  std::printf("%s\n", sim::sparkline(pipe3, 64).c_str());

  sim::TablePrinter table({"Metric", "Measured", "Paper"});
  table.add_row({"mean pipe-1 rate",
                 sim::format_si(pipe1.mean_value() * 1e12, "bps"), "~n"});
  table.add_row({"mean pipe-3 rate",
                 sim::format_si(pipe3.mean_value() * 1e12, "bps"), "~n"});
  table.add_row({"mean |imbalance|", bench::pct(gap.mean_value(), 2),
                 "curves overlap"});
  table.print();
  bench::print_note(
      "both pipes track the diurnal/festival envelope together; the VNI "
      "split is stable over time, not just on average.");
  return 0;
}
