// Chaos convergence bench — replays three fixed-seed randomized fault
// schedules (device crashes and flaps, port error bursts, link loss,
// update-channel outages, provisioning storms, mid-upgrade failures)
// against a full Sailfish region and reports the recovery metrics:
// time-to-detect, time-to-reroute, probe packets blackholed during
// convergence, and the drop-rate-under-failure series (the Fig. 19 band
// with faults in it). Writes BENCH_chaos.json for tracking.
//
// Self-checking — the process exits nonzero if any run violates the
// recovery contract, so CI can use it as a chaos smoke test:
//   * every run must converge with zero leaked DR state (no stale
//     isolated-port ledgers, no devices still failed, no parked ops);
//   * detection and reroute latencies must stay within the health
//     thresholds' implied budget;
//   * each seeded run must replay byte-identically (event log and
//     report JSON) on 1 and 8 interval-engine threads.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chaos/injector.hpp"
#include "core/sailfish.hpp"

using namespace sf;

namespace {

// Detection is bounded by fail_after_missed (3 probes at 0.5 s = 1.0 s)
// and port isolation by isolate_port_after (2 reports = 0.5 s); give both
// a 2x margin before calling it a regression.
constexpr double kDetectBudgetS = 2.0;
constexpr double kRerouteBudgetS = 2.0;

core::SailfishOptions chaos_options() {
  core::SailfishOptions options = core::quickstart_options();
  options.region.recovery.ports_per_device = 4;
  options.region.recovery.cold_standby_pool = 0;
  options.region.recovery.min_live_fraction = 0.0;
  return options;
}

chaos::ChaosInjector::Config injector_config() {
  chaos::ChaosInjector::Config config;
  config.interval_bps = 1e11;
  config.interval_every = 4;
  config.settle_s = 30.0;
  return config;
}

chaos::ChaosSchedule::RandomConfig schedule_shape() {
  chaos::ChaosSchedule::RandomConfig shape;
  shape.horizon_s = 30.0;
  shape.events = 10;
  shape.clusters = 1;
  shape.devices_per_cluster = 4;  // quickstart: 2 primaries + 2 backups
  shape.ports_per_device = 4;
  return shape;
}

struct SeedResult {
  std::uint64_t seed = 0;
  chaos::ChaosReport report;
  std::string json;
  bool replay_identical = false;
  bool within_budget = false;

  bool ok() const {
    return report.converged() && replay_identical && within_budget;
  }
};

SeedResult run_seed(std::uint64_t seed) {
  const chaos::ChaosSchedule schedule =
      chaos::ChaosSchedule::random(seed, schedule_shape());

  core::SailfishSystem one = core::make_system(chaos_options());
  core::SailfishSystem eight = core::make_system(chaos_options());
  one.region->set_interval_threads(1);
  eight.region->set_interval_threads(8);

  chaos::ChaosInjector injector_one(*one.region, one.flows,
                                    injector_config());
  chaos::ChaosInjector injector_eight(*eight.region, eight.flows,
                                      injector_config());

  SeedResult result;
  result.seed = seed;
  result.report = injector_one.run(schedule);
  const chaos::ChaosReport report_eight = injector_eight.run(schedule);

  result.json = result.report.to_json();
  result.replay_identical =
      result.json == report_eight.to_json() &&
      injector_one.log().to_string() == injector_eight.log().to_string() &&
      injector_one.log().fingerprint() == injector_eight.log().fingerprint();
  result.within_budget =
      result.report.max_time_to_detect <= kDetectBudgetS &&
      result.report.max_time_to_reroute <= kRerouteBudgetS;
  return result;
}

std::string sci(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2e", value);
  return buffer;
}

std::string hex_seed(std::uint64_t seed) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%llX",
                static_cast<unsigned long long>(seed));
  return buffer;
}

}  // namespace

int main() {
  bench::print_header("Chaos convergence",
                      "seeded fault schedules vs. recovery machinery");

  const std::uint64_t seeds[] = {0x5EED01, 0x5EED02, 0x5EED03};
  std::vector<SeedResult> results;
  bool all_ok = true;

  sim::TablePrinter table({"Seed", "Faults", "Detect mean/max (s)",
                           "Reroute mean/max (s)", "Blackholed", "Peak drop",
                           "Converged", "Replay"});
  for (std::uint64_t seed : seeds) {
    SeedResult result = run_seed(seed);
    const chaos::ChaosReport& report = result.report;

    std::uint64_t blackholed = 0;
    for (const chaos::FaultRecord& fault : report.faults) {
      blackholed += fault.blackholed;
    }
    table.add_row({hex_seed(seed), std::to_string(report.faults.size()),
                   sim::format_double(report.mean_time_to_detect, 2) + " / " +
                       sim::format_double(report.max_time_to_detect, 2),
                   sim::format_double(report.mean_time_to_reroute, 2) + " / " +
                       sim::format_double(report.max_time_to_reroute, 2),
                   std::to_string(blackholed),
                   sci(report.peak_drop_rate),
                   report.converged() ? "yes" : "LEAKED",
                   result.replay_identical ? "identical" : "DIVERGED"});

    if (!result.ok()) {
      all_ok = false;
      if (!report.converged()) {
        for (const std::string& leak : report.leaks) {
          std::fprintf(stderr, "FATAL: seed %llx leaked: %s\n",
                       static_cast<unsigned long long>(seed), leak.c_str());
        }
      }
      if (!result.replay_identical) {
        std::fprintf(stderr,
                     "FATAL: seed %llx diverged between 1 and 8 threads\n",
                     static_cast<unsigned long long>(seed));
      }
      if (!result.within_budget) {
        std::fprintf(stderr,
                     "FATAL: seed %llx convergence regression: detect max "
                     "%.3f s (budget %.1f), reroute max %.3f s (budget %.1f)\n",
                     static_cast<unsigned long long>(seed),
                     report.max_time_to_detect, kDetectBudgetS,
                     report.max_time_to_reroute, kRerouteBudgetS);
      }
    }
    results.push_back(std::move(result));
  }
  table.print();

  // Fig. 19-style drop rate, but with faults in the band: the quiet floor
  // punctuated by the convergence windows of each injected failure.
  const chaos::ChaosReport& first = results.front().report;
  if (!first.drop_rate_series.empty()) {
    sim::TimeSeries drops("drop rate under failure (seed 1)");
    for (const auto& [time, rate] : first.drop_rate_series) {
      drops.record(time, rate);
    }
    std::printf("%s\n", sim::sparkline(drops, 56).c_str());
  }
  bench::print_note(
      "every seeded schedule must converge to a quiescent region with "
      "identical replays at 1 and 8 interval threads; a nonzero exit "
      "means the recovery machinery regressed.");

  std::ofstream json("BENCH_chaos.json");
  json << "{\n  \"bench\": \"chaos_convergence\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    json << "    {\"seed\": " << results[i].seed << ", \"replay_identical\": "
         << (results[i].replay_identical ? "true" : "false")
         << ", \"report\": " << results[i].json << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_chaos.json\n");

  return all_ok ? 0 : 1;
}
