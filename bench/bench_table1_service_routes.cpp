// Table 1 — "Typical cloud service examples on different traffic routes
// across the cloud gateway". Not a measurement table, but every row is a
// distinct forwarding path; this bench drives one packet per row through
// the full region and prints the verdict, closing the loop on the
// taxonomy: VM-VM (same VPC), VM-VM (different VPCs), VM-Internet,
// Internet-VM (the SNAT response), VM-IDC, IDC-VM, VM-Cross-region.

#include <cstdio>

#include "bench_util.hpp"
#include "core/path_trace.hpp"
#include "core/sailfish.hpp"

using namespace sf;

namespace {

net::OverlayPacket pkt(net::Vni vni, const net::IpAddr& src,
                       const net::IpAddr& dst, std::uint16_t dport = 443) {
  net::OverlayPacket p;
  p.vni = vni;
  p.inner.src = src;
  p.inner.dst = dst;
  p.inner.proto = 6;
  p.inner.src_port = 44000;
  p.inner.dst_port = dport;
  p.payload_size = 256;
  return p;
}

const char* path_name(const dataplane::Verdict& verdict) {
  switch (verdict.action) {
    case dataplane::Action::kForwardToNc:
      return verdict.software_path ? "XGW-H -> XGW-x86 -> NC"
                                   : "XGW-H -> vSwitch/NC";
    case dataplane::Action::kForwardTunnel:
      return verdict.software_path ? "XGW-H -> XGW-x86 -> NC"
                                   : "XGW-H -> CEN tunnel";
    case dataplane::Action::kSnatToInternet:
      return "XGW-H -> XGW-x86 -> Internet";
    case dataplane::Action::kDrop:
    case dataplane::Action::kFallbackToX86:
      return "DROPPED";
  }
  return "?";
}

}  // namespace

int main() {
  bench::print_header("Table 1", "every traffic route, end to end");

  core::SailfishOptions options = core::quickstart_options();
  options.topology.peerings_per_vpc = 1.0;  // guarantee a peered pair
  core::SailfishSystem system = core::make_system(options);
  auto& controller = system.region->controller();

  // Pick a v4 VPC with a peer, and its actors.
  const workload::VpcRecord* vpc_a = nullptr;
  const workload::VpcRecord* vpc_b = nullptr;
  for (const auto& vpc : system.topology.vpcs) {
    if (vpc.family == net::IpFamily::kV4 && !vpc.peers.empty() &&
        vpc.vms.size() >= 2) {
      vpc_a = &vpc;
      for (const auto& candidate : system.topology.vpcs) {
        if (candidate.vni == vpc.peers.front()) vpc_b = &candidate;
      }
      if (vpc_b != nullptr) break;
    }
  }
  if (vpc_a == nullptr || vpc_b == nullptr) {
    std::fprintf(stderr, "topology lacks a peered v4 pair\n");
    return 1;
  }

  // IDC and cross-region routes for VPC A (the topology generator only
  // makes intra-region services; Table 1 needs the CEN rows too).
  controller.install_route(
      vpc_a->vni, net::IpPrefix::must_parse("172.31.0.0/16"),
      {tables::RouteScope::kIdc, 0, net::Ipv4Addr(198, 19, 0, 9)});
  controller.install_route(
      vpc_a->vni, net::IpPrefix::must_parse("172.30.0.0/16"),
      {tables::RouteScope::kCrossRegion, 0, net::Ipv4Addr(198, 18, 0, 7)});

  const net::IpAddr vm1 = vpc_a->vms[0].ip;
  const net::IpAddr vm2 = vpc_a->vms[1].ip;
  // Peer target must be inside the exported (first) subnet of B.
  net::IpAddr peer_vm = vpc_b->vms[0].ip;
  for (const auto& vm : vpc_b->vms) {
    if (vpc_b->routes.front().prefix.contains(vm.ip)) {
      peer_vm = vm.ip;
      break;
    }
  }

  sim::TablePrinter table({"Traffic route", "Example (Table 1)", "Path",
                           "Latency"});
  auto run = [&](const char* route, const char* example,
                 const net::OverlayPacket& packet) {
    const auto result = system.region->process(packet, 1.0);
    table.add_row({route, example, path_name(result),
                   sim::format_double(result.latency_us, 1) + " us"});
    return result;
  };

  run("VM-VM (same VPC, diff vSwitches)",
      "distributed-computing sync", pkt(vpc_a->vni, vm1, vm2));
  run("VM-VM (different VPCs)", "two tenants, same region",
      pkt(vpc_a->vni, vm1, peer_vm));
  const auto outbound =
      run("VM-Internet", "tenant crawls web pages",
          pkt(vpc_a->vni, vm1, net::IpAddr::must_parse("93.184.216.34")));
  run("VM-IDC", "pull results to the office",
      pkt(vpc_a->vni, vm1, net::IpAddr::must_parse("172.31.4.4")));
  run("VM-Cross-region", "tenant in China <-> tenant in USA",
      pkt(vpc_a->vni, vm1, net::IpAddr::must_parse("172.30.4.4")));
  // IDC-VM: traffic from the CEN arrives VXLAN-encapsulated with the
  // VPC's VNI; the gateway resolves the VM like any east-west packet.
  run("IDC-VM", "login to the VM from the office",
      pkt(vpc_a->vni, net::IpAddr::must_parse("172.31.9.9"), vm1, 22));

  // Internet-VM: the response to the SNAT'd session re-enters through
  // the software gateway's binding.
  std::string internet_vm = "no binding";
  if (outbound.action == dataplane::Action::kSnatToInternet) {
    for (std::size_t n = 0; n < system.region->x86_node_count(); ++n) {
      auto back = system.region->x86_node(n).process_response(
          x86::SnatBinding{outbound.packet.inner.src.v4(),
                           outbound.packet.inner.src_port},
          net::IpAddr::must_parse("93.184.216.34"), 443, 512, 2.0);
      if (back) {
        internet_vm = "XGW-x86 reverse SNAT -> " +
                      back->outer_dst_ip.to_string() + " (NC)";
        break;
      }
    }
  }
  table.add_row({"Internet-VM", "login to the VM from home", internet_vm,
                 "-"});
  table.print();

  bench::print_note(
      "all seven Table 1 rows traverse the deployed tables; only the "
      "south-north rows touch XGW-x86 — the co-design of §4.2.");
  return 0;
}
