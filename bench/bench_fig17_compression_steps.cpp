// Fig. 17 — "Memory usage after step-by-step compression".
//
// Cumulative application of the five §4.4 techniques to the paper's
// workload (1M routes + 1M mappings, 75/25 v4/v6). Steps a..d come from
// the placer's cost model; step e additionally *measures* a real 1M-route
// ALPM build (tables/alpm.hpp) and feeds its partition statistics to the
// placer instead of an analytic estimate.

#include <cstdio>

#include "asic/placer.hpp"
#include "bench_util.hpp"
#include "tables/alpm.hpp"
#include "workload/rng.hpp"
#include "workload/zipf.hpp"
#include "xgwh/compression_plan.hpp"

using namespace sf;

namespace {

// A production-shaped route population: Zipf routes-per-VPC (top customers
// own thousands of routes), 75% v4 VPCs.
asic::AlpmDemand measure_alpm(std::size_t total_routes,
                              std::size_t max_bucket) {
  tables::Alpm<tables::VxlanRouteAction>::Config config;
  config.max_bucket_entries = max_bucket;
  tables::Alpm<tables::VxlanRouteAction> alpm(config);
  workload::Rng rng(2024);

  const std::size_t vpcs = 60'000;
  const std::vector<double> shares = workload::zipf_weights(vpcs, 1.0);
  std::size_t inserted = 0;
  for (std::size_t v = 0; v < vpcs && inserted < total_routes; ++v) {
    const net::Vni vni = static_cast<net::Vni>(1000 + v);
    const bool v6 = rng.chance(0.25);
    const std::size_t routes = std::max<std::size_t>(
        1, static_cast<std::size_t>(shares[v] *
                                    static_cast<double>(total_routes)));
    for (std::size_t r = 0; r < routes && inserted < total_routes; ++r) {
      if (v6) {
        alpm.insert(vni,
                    net::Ipv6Prefix(net::Ipv6Addr(rng.next_u64(), 0), 64),
                    {});
      } else {
        alpm.insert(
            vni,
            net::Ipv4Prefix(
                net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                24),
            {});
      }
      ++inserted;
    }
  }
  const auto stats = alpm.stats();
  std::printf(
      "measured ALPM: %zu routes -> %zu partitions (avg fill %.2f), "
      "%zu TCAM slices, %zu SRAM words\n",
      stats.routes, stats.partitions, stats.average_fill,
      stats.directory_slices, stats.allocated_bucket_words);
  return asic::AlpmDemand{stats.directory_slices,
                          stats.allocated_bucket_words};
}

}  // namespace

int main() {
  bench::print_header("Fig. 17", "memory usage after step-by-step compression");
  for (char step : {'a', 'b', 'c', 'd', 'e'}) {
    std::printf("  %c. %s\n", step, xgwh::step_description(step).c_str());
  }

  const asic::Placer placer{asic::ChipConfig{}};
  const asic::GatewayWorkload workload{750'000, 250'000, 750'000, 250'000};

  const asic::AlpmDemand measured = measure_alpm(1'000'000, 32);

  // Paper's reported series for comparison.
  const double paper_sram[] = {102, 51, 26, 18, 36};
  const double paper_tcam[] = {389, 194, 97, 156, 11};

  sim::TablePrinter table({"Steps", "SRAM (measured)", "SRAM (paper)",
                           "TCAM (measured)", "TCAM (paper)", "feasible"});
  std::size_t index = 0;
  for (auto [name, config] : xgwh::fig17_steps()) {
    if (config.alpm) config.measured_alpm = measured;
    const auto report = placer.evaluate(workload, config);
    table.add_row({name, bench::pct(report.sram_path_worst, 1),
                   sim::format_double(paper_sram[index], 0) + "%",
                   bench::pct(report.tcam_path_worst, 1),
                   sim::format_double(paper_tcam[index], 0) + "%",
                   report.feasible ? "yes" : "no"});
    ++index;
  }
  table.print();

  bench::print_note(
      "ablation — pipeline folding trades throughput for memory: "
      "6.4 Tbps/1 pass unfolded vs 3.2 Tbps/2 passes folded (Fig. 18 "
      "bench measures the latency side).");

  // The paper's contribution bullets (§1): per-scenario reduction of
  // SRAM/TCAM occupancy, before vs after the full compression stack.
  std::printf("\ncontribution check: occupancy reduction by scenario\n");
  sim::TablePrinter contrib({"Scenario", "SRAM reduction", "Paper",
                             "TCAM reduction", "Paper "});
  struct Scenario {
    const char* name;
    asic::GatewayWorkload w;
    const char* paper_sram;
    const char* paper_tcam;
  };
  const Scenario scenarios[] = {
      {"100% IPv4", {1'000'000, 0, 1'000'000, 0}, "38%", "96%"},
      {"75% IPv4 / 25% IPv6", {750'000, 250'000, 750'000, 250'000}, "65%",
       "97%"},
      {"100% IPv6", {0, 1'000'000, 0, 1'000'000}, "85%", "98%"},
  };
  for (const Scenario& scenario : scenarios) {
    const auto before =
        placer.evaluate(scenario.w, xgwh::config_for_steps(""));
    asic::CompressionConfig after_config = xgwh::config_for_steps("abcde");
    after_config.measured_alpm = measured;
    const auto after = placer.evaluate(scenario.w, after_config);
    contrib.add_row(
        {scenario.name,
         bench::pct(1.0 - after.sram_path_worst / before.sram_path_worst,
                    0),
         scenario.paper_sram,
         bench::pct(1.0 - after.tcam_path_worst / before.tcam_path_worst,
                    0),
         scenario.paper_tcam});
  }
  contrib.print();
  return 0;
}
