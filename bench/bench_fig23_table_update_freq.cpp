// Fig. 23 — "Regular updates and sudden updates of the VXLAN routing
// table": per-cluster entry counts over a month drift slowly under
// regular tenant churn, with rare step jumps when a top customer
// onboards a VM fleet or pushes a batch route update (§5.2).

#include <cstdio>

#include "bench_util.hpp"
#include "cluster/controller.hpp"
#include "workload/rng.hpp"
#include "workload/update_events.hpp"

using namespace sf;

int main() {
  bench::print_header(
      "Fig. 23", "VXLAN routing table entries per cluster over a month");

  struct ClusterSpec {
    const char* name;
    std::int64_t initial_entries;
    std::size_t sudden_events;
    std::uint64_t seed;
  };
  const ClusterSpec specs[] = {
      {"Cluster A", 120'000, 1, 10},
      {"Cluster B", 80'000, 2, 20},
      {"Cluster C", 150'000, 0, 30},
      {"Cluster D", 60'000, 1, 40},
  };

  sim::TablePrinter table({"Cluster", "Start", "End", "Regular events/day",
                           "Sudden jumps", "Largest jump"});
  for (const ClusterSpec& spec : specs) {
    workload::UpdateEventConfig config;
    config.sudden_events = spec.sudden_events;
    config.seed = spec.seed;
    const auto events = workload::generate_update_events(config);
    const auto series = workload::cumulative_entries(
        spec.initial_entries, events, config.span_days, 0.25);

    sim::TimeSeries ts(std::string(spec.name) + " entries");
    for (const auto& [day, entries] : series) {
      ts.record(day, static_cast<double>(entries));
    }
    std::printf("%s\n", sim::sparkline(ts, 64).c_str());

    std::int64_t largest_jump = 0;
    std::size_t sudden = 0;
    for (const auto& event : events) {
      if (event.sudden) {
        ++sudden;
        largest_jump = std::max(largest_jump, event.delta_entries);
      }
    }
    table.add_row({spec.name, std::to_string(series.front().second),
                   std::to_string(series.back().second),
                   sim::format_double(config.regular_events_per_day, 0),
                   std::to_string(sudden), std::to_string(largest_jump)});
  }
  table.print();

  bench::print_note(
      "paper: 'for most of the time, the table is updated very slowly "
      "with sudden increases ... occurring infrequently' — regular churn "
      "is easily handled; sudden jumps are announced by top customers "
      "ahead of time (§5.2), so entries are pre-installed.");

  // Controller-driven cross-check at small scale: apply an event stream
  // as real route installs/removals on a live controller and verify the
  // device tables track the ledger exactly.
  bench::print_header("Fig. 23 (live)",
                      "same churn driven through the real controller");
  cluster::Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 1;
  config.initial_clusters = 1;
  cluster::Controller controller(config);
  workload::VpcRecord vpc;
  vpc.vni = 777;
  vpc.family = net::IpFamily::kV4;
  vpc.routes.push_back(workload::RouteRecord{
      net::IpPrefix::must_parse("10.0.0.0/16"),
      tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, {}}});
  controller.add_vpc(vpc);

  workload::UpdateEventConfig live_config;
  live_config.span_days = 3.0;
  live_config.regular_events_per_day = 24;
  live_config.regular_delta_max = 8;
  live_config.sudden_events = 1;
  live_config.sudden_delta_min = 200;
  live_config.sudden_delta_max = 400;
  const auto live_events = workload::generate_update_events(live_config);

  workload::Rng rng(99);
  std::vector<net::IpPrefix> installed;
  std::size_t installs = 0;
  std::size_t removals = 0;
  for (const auto& event : live_events) {
    if (event.delta_entries > 0) {
      for (std::int64_t i = 0; i < event.delta_entries; ++i) {
        const net::IpPrefix prefix = net::Ipv4Prefix(
            net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), 28);
        if (controller.install_route(
                777, prefix,
                tables::VxlanRouteAction{tables::RouteScope::kLocal, 0,
                                         {}}) ==
            dataplane::TableOpStatus::kOk) {
          installed.push_back(prefix);
          ++installs;
        }
      }
    } else {
      for (std::int64_t i = 0; i < -event.delta_entries && !installed.empty();
           ++i) {
        const std::size_t victim = rng.uniform(installed.size());
        if (controller.remove_route(777, installed[victim]) ==
            dataplane::TableOpStatus::kOk) {
          ++removals;
        }
        installed.erase(installed.begin() +
                        static_cast<std::ptrdiff_t>(victim));
      }
    }
  }
  const auto audit = controller.check_consistency(0);
  std::printf(
      "applied %zu installs / %zu removals over %g days; device now holds "
      "%zu routes; consistency audit: %zu checked, %zu missing -> %s\n",
      installs, removals, live_config.span_days,
      controller.cluster(0).route_count(), audit.entries_checked,
      audit.missing_on_device,
      audit.missing_on_device == 0 ? "PASS" : "FAIL");
  return audit.missing_on_device == 0 ? 0 : 1;
}
