// Fig. 6 — "CPU consumption of XGW-x86s in the same region": gateway-level
// load is *balanced* (ECMP flow hashing over many flows works fine); the
// §2.3 imbalance lives below, at the per-core level. Jain's fairness index
// quantifies it.
//
// The series is read from the fleet's telemetry registry: step() folds
// each interval into per-gateway / per-core counters, and the bench works
// on snapshot deltas — the same numbers an operator's scrape would see.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "telemetry/registry.hpp"
#include "x86_region_sim.hpp"

using namespace sf;

int main() {
  bench::print_header(
      "Fig. 6",
      "per-gateway CPU consumption across the XGW-x86 fleet (8 days; "
      "the paper charts a sample of 15 boxes)");

  bench::X86RegionSim sim({});
  std::vector<sim::TimeSeries> gateway_series;
  for (std::size_t g = 0; g < sim.gateway_count(); ++g) {
    gateway_series.emplace_back("xgw-x86 " + std::to_string(g + 1));
  }

  const unsigned cores = sim.config().model.cores;
  const double capacity = sim.config().model.core_pps();
  const double step = 3600;
  std::vector<double> fairness_samples;
  std::vector<double> core_fairness_samples;
  telemetry::Snapshot previous = sim.registry().snapshot();
  for (double t = 0; t < workload::days(8); t += step) {
    sim.step(t);
    const telemetry::Snapshot current = sim.registry().snapshot();
    const telemetry::Snapshot interval =
        telemetry::Snapshot::delta(previous, current);
    previous = current;

    std::vector<double> per_gateway_pps;
    for (std::size_t g = 0; g < sim.gateway_count(); ++g) {
      double total_util = 0;
      std::vector<double> per_core;
      for (unsigned c = 0; c < cores; ++c) {
        const double offered = static_cast<double>(
            interval.counter(bench::X86RegionSim::core_counter(g, c)));
        total_util += std::min(1.0, offered / capacity);
        per_core.push_back(offered);
      }
      const double mean_util =
          total_util / static_cast<double>(cores) * 100.0;
      gateway_series[g].record(t / 86400.0, mean_util);
      per_gateway_pps.push_back(static_cast<double>(
          interval.counter(bench::X86RegionSim::gateway_counter(g))));
      if (g == sim.hottest_gateway()) {
        core_fairness_samples.push_back(sim::fairness_index(per_core));
      }
    }
    fairness_samples.push_back(sim::fairness_index(per_gateway_pps));
  }

  for (std::size_t g = 0; g < 5; ++g) {
    std::printf("%s\n", sim::sparkline(gateway_series[g], 56).c_str());
  }
  std::printf("  ... (%zu gateways total)\n", sim.gateway_count());

  sim::TablePrinter table({"Fairness (Jain)", "Measured", "Paper"});
  table.add_row({"across gateways",
                 sim::format_double(sim::mean(fairness_samples), 3),
                 "perfectly balanced"});
  table.add_row({"across cores of one gateway",
                 sim::format_double(sim::mean(core_fairness_samples), 3),
                 "unequal (heavy hitters)"});
  table.print();
  bench::print_note(
      "balancing among gateways is easy, balancing among CPU cores is "
      "not (§2.3): many flows per gateway vs few heavy flows per core.");
  return 0;
}
