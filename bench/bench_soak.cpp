// Week-long multi-region soak + regression canary (DESIGN.md §17).
//
// Runs the sf::soak scenario engine — two SailfishRegions sharing one
// tenant universe, a time-compressed simulated week of diurnal/festival
// traffic, composed chaos (device loss, DPU darkness, controller
// brownouts through the circuit breaker, tenant storms, churn waves),
// and a continuous SNAT session stream — for each seed at BOTH 1 and 8
// interval threads, then byte-compares the rendered reports.
//
// FATAL (nonzero exit) on:
//   * any invariant-auditor violation (the engine aborts mid-run);
//   * any non-storm tenant outside its weekly drop budget;
//   * a 1-vs-8-thread report byte mismatch.
//
// SF_SOAK_HOURS overrides the simulated span (default: the full 168 h
// week; CI smoke uses 6). Numbers land in BENCH_soak.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/table_printer.hpp"
#include "soak/soak.hpp"

using namespace sf;

namespace {

struct SeedRun {
  std::uint64_t seed = 0;
  soak::SoakEngine::Report report;  // the 1-thread run
  bool byte_identical = false;
  double wall_s_1t = 0;
  double wall_s_8t = 0;
};

soak::SoakEngine::Report run_once(std::uint64_t seed, double sim_hours,
                                  std::size_t threads, double* wall_s) {
  soak::SoakEngine::Config config;
  config.seed = seed;
  config.sim_hours = sim_hours;
  config.interval_threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  soak::SoakEngine engine(config);
  soak::SoakEngine::Report report = engine.run();
  *wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
  return report;
}

}  // namespace

int main() {
  double sim_hours = 168.0;
  if (const char* env = std::getenv("SF_SOAK_HOURS")) {
    sim_hours = std::atof(env);
    if (sim_hours <= 0) sim_hours = 168.0;
  }
  const std::vector<std::uint64_t> seeds = {1, 2};

  bench::print_header(
      "SOAK", "week-long multi-region soak: composed chaos, per-tenant "
              "SLOs, 1-vs-8-thread byte-identity canary");
  std::printf("simulated span: %.1f h per run (SF_SOAK_HOURS overrides)\n",
              sim_hours);

  std::vector<SeedRun> runs;
  bool all_identical = true;
  bool all_pass = true;
  for (std::uint64_t seed : seeds) {
    SeedRun run;
    run.seed = seed;
    run.report = run_once(seed, sim_hours, 1, &run.wall_s_1t);
    const soak::SoakEngine::Report threaded =
        run_once(seed, sim_hours, 8, &run.wall_s_8t);
    run.byte_identical = run.report.to_json() == threaded.to_json();
    all_identical = all_identical && run.byte_identical;
    all_pass = all_pass && run.report.pass;
    std::printf("seed %llu: %zu intervals x %zu regions, %s, "
                "1-thread %.1fs / 8-thread %.1fs, byte-identical: %s\n",
                static_cast<unsigned long long>(seed), run.report.intervals,
                run.report.regions, run.report.pass ? "PASS" : "FAIL",
                run.wall_s_1t, run.wall_s_8t,
                run.byte_identical ? "yes" : "NO");
    runs.push_back(std::move(run));
  }

  sim::TablePrinter table({"Seed", "Region", "Availability", "Wk p99 us",
                           "Wk p999 us", "Punt max", "SNAT sessions",
                           "Exhaustions", "Breaker trips", "Budget viol"});
  for (const SeedRun& run : runs) {
    for (const auto& region : run.report.region_summaries) {
      table.add_row(
          {std::to_string(run.seed), std::to_string(region.region_index),
           sim::format_double(region.availability, 6),
           sim::format_double(region.week_p99_latency_us, 1),
           sim::format_double(region.week_p999_latency_us, 1),
           sim::format_double(region.punt_occupancy_max, 3),
           std::to_string(region.snat_sessions),
           std::to_string(region.snat_exhaustions),
           std::to_string(region.breaker.trips),
           std::to_string(region.budget_violations.size())});
    }
  }
  table.print();
  for (const SeedRun& run : runs) {
    for (const auto& region : run.report.region_summaries) {
      std::printf("seed %llu region %zu chaos events:",
                  static_cast<unsigned long long>(run.seed),
                  region.region_index);
      for (const auto& [kind, count] : region.chaos_events) {
        std::printf(" %s=%zu", kind.c_str(), count);
      }
      std::printf("\n");
    }
  }
  bench::print_note(
      "every interval is audited (SNAT conservation, flow-cache "
      "coherence, placement parity; strict quiescence sweeps between "
      "faults); the engine aborts on any violation. Reports must "
      "byte-match at 1 vs 8 interval threads.");

  std::ofstream json("BENCH_soak.json");
  json << "{\n"
       << "  \"bench\": \"soak\",\n"
       << "  \"sim_hours\": " << sim_hours << ",\n"
       << "  \"byte_identical_1v8\": "
       << (all_identical ? "true" : "false") << ",\n"
       << "  \"pass\": " << (all_pass && all_identical ? "true" : "false")
       << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json << runs[i].report.to_json();
    json << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_soak.json\n");

  if (!all_identical) {
    std::printf("FATAL: 1-vs-8-thread soak reports diverged\n");
    return 1;
  }
  if (!all_pass) {
    std::printf("FATAL: soak run failed (violations or budget breaches)\n");
    return 1;
  }
  return 0;
}
