// Fig. 19 — "Sailfish's performance in three large cloud regions during a
// one-week online shopping festival": traffic of dozens of Tbps, packet
// drop rates steady at 1e-11..1e-10 — six orders of magnitude below the
// XGW-x86 region of Fig. 5.

#include <cstdio>

#include "bench_util.hpp"
#include "sailfish_region_sim.hpp"

using namespace sf;

int main() {
  bench::print_header(
      "Fig. 19",
      "drop rates in three large regions over a festival week");

  struct RegionSpec {
    const char* name;
    double scale;
    double base_tbps;
    std::uint64_t seed;
  };
  // Base rates sized the way production capacity planning does it: the
  // festival peak (x2.2 on top of the diurnal swing) stays within the
  // clusters' aggregate envelope with headroom (§6.1 water levels).
  const RegionSpec specs[] = {
      {"Region A", 1.0, 20, 100},
      {"Region B", 0.8, 15, 200},
      {"Region C", 1.2, 26, 300},
  };

  sim::TablePrinter table({"Region", "Peak rate", "Mean drop rate",
                           "Max drop rate", "Paper"});
  for (const RegionSpec& spec : specs) {
    bench::SailfishScenario scenario =
        bench::make_scenario(spec.scale, spec.seed, spec.base_tbps);

    sim::TimeSeries rate(std::string(spec.name) + " rate (Tbps)");
    sim::TimeSeries loss(std::string(spec.name) + " drop rate");
    const double step = 3600;
    double peak = 0;
    for (double t = 0; t < workload::days(8); t += step) {
      const double offered = workload::rate_at(scenario.pattern, t);
      const auto report = scenario.system.region->simulate_interval(
          scenario.system.flows, offered,
          static_cast<std::uint64_t>(t / step) ^ spec.seed);
      rate.record(t / 86400.0, offered / 1e12);
      loss.record(t / 86400.0, report.drop_rate);
      peak = std::max(peak, offered);
    }
    std::printf("%s\n", sim::sparkline(rate, 56).c_str());
    std::printf("%s\n", sim::sparkline(loss, 56).c_str());
    table.add_row({spec.name, sim::format_si(peak, "bps"),
                   sim::format_double(loss.mean_value(), 12),
                   sim::format_double(loss.max_value(), 12),
                   "1e-11 .. 1e-10"});
  }
  table.print();
  bench::print_note(
      "drops sit at the hardware loss floor even at festival peak: the "
      "Tofino-class pipes have orders of magnitude more headroom than "
      "CPU cores (contrast with the Fig. 5 bench).");
  return 0;
}
