// §2.3 / §4.2 / §1 — the CapEx claim: "Compared with the x86 gateway
// clusters, Sailfish reduces the total hardware acquisition cost by more
// than 90% for a region." Reproduced by the capacity planner over the
// paper's own arithmetic (15 Tbps, 50% water level, 1:1 backup, O($10K)
// boxes of roughly equal unit price), plus a sweep over region sizes.

#include <cstdio>

#include "bench_util.hpp"
#include "core/capacity_planner.hpp"

using namespace sf;

int main() {
  bench::print_header("§2.3/§4.2",
                      "hardware acquisition cost: x86 fleet vs Sailfish");

  // The paper's worked example.
  core::RegionRequirements paper_region;
  const auto plan =
      core::plan_region(paper_region, core::NodeEconomics{});

  sim::TablePrinter worked({"Quantity", "Measured", "Paper"});
  worked.add_row({"XGW-x86 boxes (with backup)",
                  std::to_string(plan.x86_only.nodes), "600"});
  worked.add_row({"x86 fleet cost",
                  "$" + sim::format_si(plan.x86_only.cost, ""), "O($10M)"});
  worked.add_row({"x86 clusters (ECMP cap)",
                  std::to_string(plan.x86_only.clusters),
                  "multiple smaller clusters"});
  worked.add_row({"Sailfish XGW-H (with backup)",
                  std::to_string(plan.sailfish_hardware.nodes),
                  "~10 primaries (§4.2)"});
  worked.add_row({"Sailfish fallback XGW-x86",
                  std::to_string(plan.sailfish_software.nodes),
                  "~4 (§4.2)"});
  worked.add_row({"Sailfish cost",
                  "$" + sim::format_si(plan.sailfish_cost, ""), "-"});
  worked.add_row({"cost reduction", bench::pct(plan.cost_reduction, 1),
                  "> 90%"});
  worked.print();

  // Sweep: the reduction holds across region sizes until table capacity,
  // not traffic, starts sizing the hardware fleet.
  std::printf("\nregion-size sweep:\n");
  sim::TablePrinter sweep({"Region traffic", "x86 boxes", "XGW-H", "x86 "
                           "fallback", "cost reduction"});
  for (double tbps : {5.0, 15.0, 30.0, 60.0}) {
    core::RegionRequirements requirements;
    requirements.traffic_bps = tbps * 1e12;
    requirements.table_entries =
        static_cast<std::size_t>(tbps / 15.0 * 2'000'000);
    const auto p = core::plan_region(requirements, core::NodeEconomics{});
    sweep.add_row({sim::format_double(tbps, 0) + " Tbps",
                   std::to_string(p.x86_only.nodes),
                   std::to_string(p.sailfish_hardware.nodes),
                   std::to_string(p.sailfish_software.nodes),
                   bench::pct(p.cost_reduction, 1)});
  }
  sweep.print();
  bench::print_note(
      "the ratio tracks the per-box capacity gap (32x at equal unit "
      "price); table growth without traffic growth would erode it — the "
      "§6.2 'long-term viability' discussion.");
  return 0;
}
