// Shared helper for the motivation benches (Figs. 4-7): a region served by
// XGW-x86 software gateways only — the pre-Sailfish deployment.
//
// Traffic model: a region carries millions of flows; per CPU core their
// aggregate averages out to a smooth *background* load. What does not
// average out is the small population of heavy-hitter flows ("a single
// flow can even reach tens of Gbps", §2.3): RSS pins each to one core.
// We therefore model background as an even per-core load plus K discrete
// heavy flows placed by ECMP (gateway) and RSS (core) hashing. Gateways
// stay balanced (Fig. 6); the cores hosting heavy hitters saturate
// (Figs. 4/7); their transient excess is the region's packet loss
// (Fig. 5).

#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "net/hash.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sketch.hpp"
#include "workload/rng.hpp"
#include "workload/traffic_pattern.hpp"
#include "workload/zipf.hpp"
#include "x86/cost_model.hpp"
#include "x86/xgw_x86.hpp"

namespace sf::bench {

struct HeavyFlow {
  std::size_t gateway = 0;
  unsigned core = 0;
  double weight = 0;  // share of region traffic
  /// Synthetic identity so sketches/trackers can key this flow.
  telemetry::FlowKey key;
};

class X86RegionSim {
 public:
  struct Config {
    /// The paper's region runs hundreds of boxes ("15 Tbps / 50 Gbps ...
    /// 600 gateways!", §2.3); Fig. 6 charts a sample of 15.
    std::size_t gateways = 400;
    /// Heavy-hitter flows region-wide; Zipf-shared within heavy_share.
    std::size_t heavy_flows = 200;
    double heavy_zipf_exponent = 1.0;
    /// Fraction of region traffic carried by the discrete heavy flows.
    /// Calibrated so the top flow is ~11 Gbps at the 20 Tbps base —
    /// just over one core's ~9.4 Gbps MTU capacity — and the tail stays
    /// below it: overload is the exception, as in the paper's scenes.
    double heavy_share = 0.0032;
    /// Heavy hitters are MTU-sized bulk transfers.
    double heavy_packet_bytes = 1500;
    /// Mean packet size of the background mix (IMIX-like).
    double background_packet_bytes = 700;
    /// 20 Tbps over 400 boxes ~= 50G per 100G box: the paper's ~50%
    /// water level.
    workload::TrafficPattern pattern{.base_bps = 20e12,
                                     .festival_multiplier = 1.6};
    /// Minute-scale burstiness of heavy flows (+/- fraction).
    double flow_burstiness = 0.3;
    x86::X86CostModel model;
    std::uint64_t seed = 2021;
  };

  explicit X86RegionSim(Config config) : config_(config) {
    workload::Rng rng(config.seed);
    const std::vector<double> weights = workload::zipf_weights(
        config.heavy_flows, config.heavy_zipf_exponent);
    for (std::size_t f = 0; f < config.heavy_flows; ++f) {
      HeavyFlow flow;
      flow.gateway = rng.uniform(config.gateways);
      flow.core = static_cast<unsigned>(rng.uniform(config.model.cores));
      flow.weight = weights[f] * config.heavy_share;
      flow.key.vni = static_cast<net::Vni>(1000 + f);
      flow.key.tuple.src = net::IpAddr(net::Ipv4Addr(
          10, static_cast<std::uint8_t>(f >> 8),
          static_cast<std::uint8_t>(f & 0xff), 2));
      flow.key.tuple.dst = net::IpAddr(net::Ipv4Addr(192, 168, 0, 1));
      flow.key.tuple.proto = 6;
      flow.key.tuple.src_port = static_cast<std::uint16_t>(40000 + f);
      flow.key.tuple.dst_port = 443;
      heavy_.push_back(flow);
    }
    // Deterministic per-core wobble of the background spread (RSS is
    // near-uniform over many flows, not exact).
    wobble_.resize(config.gateways * config.model.cores);
    for (double& w : wobble_) w = 0.94 + 0.12 * rng.uniform_real();

    // Pre-resolve one offered-pps counter per gateway and per core; every
    // step() adds its interval rates, so figure series come from snapshot
    // deltas instead of private tallies.
    gateway_offered_.reserve(config_.gateways);
    core_offered_.reserve(config_.gateways * config_.model.cores);
    for (std::size_t g = 0; g < config_.gateways; ++g) {
      gateway_offered_.push_back(
          &registry_.counter(gateway_counter(g)));
      for (unsigned c = 0; c < config_.model.cores; ++c) {
        core_offered_.push_back(&registry_.counter(core_counter(g, c)));
      }
    }
    steps_ = &registry_.counter("fleet.steps");
  }

  /// Registry counter names used by the benches.
  static std::string gateway_counter(std::size_t gateway) {
    return "fleet.gw" + std::to_string(gateway) + ".offered_pps_sum";
  }
  static std::string core_counter(std::size_t gateway, unsigned core) {
    return "fleet.gw" + std::to_string(gateway) + ".core" +
           std::to_string(core) + ".offered_pps_sum";
  }

  /// One interval at time t: per-gateway reports (x86::IntervalReport
  /// shape, built from the background + heavy-flow model).
  std::vector<x86::IntervalReport> step(double t_seconds) const {
    const double region_bps =
        workload::rate_at(config_.pattern, t_seconds);
    const double background_pps_per_core =
        region_bps * (1.0 - config_.heavy_share) / 8.0 /
        config_.background_packet_bytes /
        static_cast<double>(config_.gateways) / config_.model.cores;

    std::vector<x86::IntervalReport> reports(config_.gateways);
    for (std::size_t g = 0; g < config_.gateways; ++g) {
      reports[g].cores.resize(config_.model.cores);
      for (unsigned c = 0; c < config_.model.cores; ++c) {
        reports[g].cores[c].offered_pps =
            background_pps_per_core *
            wobble_[g * config_.model.cores + c];
      }
    }

    for (std::size_t f = 0; f < heavy_.size(); ++f) {
      const HeavyFlow& flow = heavy_[f];
      const double pps = heavy_pps(f, region_bps, t_seconds);
      x86::CoreLoad& core = reports[flow.gateway].cores[flow.core];
      core.offered_pps += pps;
      if (pps > core.top1_pps) {
        core.top2_pps = core.top1_pps;
        core.top1_pps = pps;
      } else if (pps > core.top2_pps) {
        core.top2_pps = pps;
      }
    }

    const double capacity = config_.model.core_pps();
    for (auto& report : reports) {
      for (auto& core : report.cores) {
        core.flows = 1;
        core.processed_pps = std::min(core.offered_pps, capacity);
        core.dropped_pps = core.offered_pps - core.processed_pps;
        core.utilization = core.offered_pps / capacity;
        report.offered_pps += core.offered_pps;
        report.dropped_pps += core.dropped_pps;
        report.max_core_utilization =
            std::max(report.max_core_utilization, core.utilization);
      }
      report.drop_rate = report.offered_pps > 0
                             ? report.dropped_pps / report.offered_pps
                             : 0;
    }

    // Fold the interval into the registry (the registry is the mutable
    // measurement plane of a const simulation step).
    steps_->add();
    for (std::size_t g = 0; g < config_.gateways; ++g) {
      gateway_offered_[g]->add(
          static_cast<std::uint64_t>(reports[g].offered_pps));
      for (unsigned c = 0; c < config_.model.cores; ++c) {
        core_offered_[g * config_.model.cores + c]->add(
            static_cast<std::uint64_t>(reports[g].cores[c].offered_pps));
      }
    }
    return reports;
  }

  /// A tracker fed with the discrete heavy flows RSS pinned to one core
  /// at time t — what a sketch on that core's datapath would see (the
  /// smooth background mix stays inside the sketch's error band).
  telemetry::HeavyHitterTracker core_heavy_hitters(
      std::size_t gateway, unsigned core, double t_seconds) const {
    telemetry::HeavyHitterTracker::Config cfg;
    cfg.sketch.width = 1024;
    cfg.capacity = 8;
    telemetry::HeavyHitterTracker tracker(cfg);
    const double region_bps =
        workload::rate_at(config_.pattern, t_seconds);
    for (std::size_t f = 0; f < heavy_.size(); ++f) {
      const HeavyFlow& flow = heavy_[f];
      if (flow.gateway != gateway || flow.core != core) continue;
      tracker.add(flow.key, static_cast<std::uint64_t>(
                                heavy_pps(f, region_bps, t_seconds)));
    }
    return tracker;
  }

  /// Gateway hosting the region's heaviest flow (the Fig. 4 box).
  std::size_t hottest_gateway() const { return heavy_.front().gateway; }

  const Config& config() const { return config_; }
  const std::vector<HeavyFlow>& heavy_flows() const { return heavy_; }
  std::size_t gateway_count() const { return config_.gateways; }

  telemetry::Registry& registry() const { return registry_; }

 private:
  /// Offered pps of heavy flow f at time t (minute-keyed burstiness).
  double heavy_pps(std::size_t f, double region_bps,
                   double t_seconds) const {
    const std::uint64_t burst_key =
        static_cast<std::uint64_t>(t_seconds / 60.0) + 1;
    const double u =
        static_cast<double>(net::mix64(burst_key ^ (f * 0x9e3779b9)) >>
                            11) *
        0x1.0p-53;
    const double burst = 1.0 + config_.flow_burstiness * (2.0 * u - 1.0);
    return heavy_[f].weight * region_bps * burst / 8.0 /
           config_.heavy_packet_bytes;
  }

  Config config_;
  std::vector<HeavyFlow> heavy_;
  std::vector<double> wobble_;

  mutable telemetry::Registry registry_;
  std::vector<telemetry::Counter*> gateway_offered_;
  std::vector<telemetry::Counter*> core_offered_;
  telemetry::Counter* steps_ = nullptr;
};

}  // namespace sf::bench
