// Fig. 8 — "CPU performance (single-core and multi-core) and ToR switch
// port speed from 2010 to 2020". A public-data figure: Geekbench-class
// CPU scores vs switch port speeds. The dataset is embedded (approximate
// public values); what matters — and what the paper argues from — are the
// growth ratios: ~2.5x single-core, ~4x multi-core, 40x port speed.

#include <cstdio>

#include "bench_util.hpp"

using namespace sf;

namespace {

struct YearPoint {
  int year;
  double single_core;  // normalized CPU score
  double multi_core;
  double port_gbps;
  const char* representative_switch;
};

// Approximate public data (geekbench.com-class scores, ToR generations).
constexpr YearPoint kTrend[] = {
    {2010, 400, 1600, 10, "Sun 10GbE Switch 72p"},
    {2012, 520, 2200, 40, "-"},
    {2014, 640, 2900, 40, "Mellanox SN2410 era"},
    {2016, 760, 3900, 100, "Mellanox SN2410"},
    {2018, 880, 5100, 200, "Wedge 100BF-65X"},
    {2020, 1000, 6400, 400, "Cisco Nexus 9364D-GX2A"},
};

}  // namespace

int main() {
  bench::print_header("Fig. 8",
                      "CPU performance vs ToR port speed, 2010-2020");

  sim::TablePrinter table({"Year", "Single-core", "Multi-core",
                           "Port (Gbps)", "Representative switch"});
  for (const YearPoint& point : kTrend) {
    table.add_row({std::to_string(point.year),
                   sim::format_double(point.single_core, 0),
                   sim::format_double(point.multi_core, 0),
                   sim::format_double(point.port_gbps, 0),
                   point.representative_switch});
  }
  table.print();

  const YearPoint& first = kTrend[0];
  const YearPoint& last = kTrend[std::size(kTrend) - 1];
  sim::TablePrinter growth({"Series", "2010->2020 growth", "Paper"});
  growth.add_row({"single-core CPU",
                  sim::format_double(last.single_core / first.single_core,
                                     1) + "x",
                  "2.5x"});
  growth.add_row({"multi-core CPU",
                  sim::format_double(last.multi_core / first.multi_core, 1) +
                      "x",
                  "4x"});
  growth.add_row({"ToR port speed",
                  sim::format_double(last.port_gbps / first.port_gbps, 0) +
                      "x",
                  "40x"});
  growth.print();
  bench::print_note(
      "traffic growth outpaces Moore's law, which itself outpaces "
      "single-core growth: software gateways lose ground every year "
      "(§2.3) — the case for programmable ASICs.");
  return 0;
}
