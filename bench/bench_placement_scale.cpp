// Placement at 10x the paper's scale: full placement wall time at
// 1M/5M/10M routes (multi-pipeline chips, cross-path spill enabled), the
// calibrated ALPM estimate vs a real Alpm build at every scale, and the
// incremental re-placement latency (Placer::replace) against the full
// recompute a delta-blind controller would pay — an O(N) desired-state
// recount plus demand modeling plus placement.
//
// Asserted as a side effect (FATAL on violation):
//   * the analytic ALPM shape estimate tracks Alpm::stats() within 5%
//     at 1M, 5M and 10M routes;
//   * every scale's placement is feasible on its chip;
//   * delta applies (<= 1k-entry deltas) are >= 50x faster than the
//     full recompute at p50;
//   * after 200 deltas the incremental layout's occupancy accounting is
//     identical to a from-scratch placement of the same workload.
//
// Numbers land in BENCH_placement.json; EXPERIMENTS.md quotes them.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "asic/placement.hpp"
#include "asic/placer.hpp"
#include "bench_util.hpp"
#include "sim/table_printer.hpp"
#include "tables/alpm.hpp"
#include "tables/route_table.hpp"
#include "tables/tcam.hpp"
#include "workload/rng.hpp"
#include "workload/zipf.hpp"
#include "xgwh/compression_plan.hpp"

using namespace sf;

namespace {

constexpr std::size_t kDeltas = 200;
constexpr int kFullReps = 5;

struct AlpmProbe {
  std::size_t routes = 0;
  std::size_t partitions = 0;
  double measured_fill = 0;
  std::size_t estimated_partitions = 0;
  double estimate_error = 0;
  double build_s = 0;
};

// Same generator the fill curve was calibrated on: Zipf VPC shares,
// 75/25 v4/v6, bucket bound 32.
AlpmProbe probe_alpm(std::size_t total) {
  tables::Alpm<tables::VxlanRouteAction>::Config config;
  config.max_bucket_entries = 32;
  tables::Alpm<tables::VxlanRouteAction> alpm(config);
  workload::Rng rng(2024);
  const std::size_t vpcs = 60'000;
  const std::vector<double> shares = workload::zipf_weights(vpcs, 1.0);
  std::size_t inserted = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t v = 0; v < vpcs && inserted < total; ++v) {
    const net::Vni vni = static_cast<net::Vni>(1000 + v);
    const bool v6 = rng.chance(0.25);
    const std::size_t routes = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(shares[v] * static_cast<double>(total)));
    for (std::size_t r = 0; r < routes && inserted < total; ++r) {
      if (v6) {
        alpm.insert(vni, net::Ipv6Prefix(net::Ipv6Addr(rng.next_u64(), 0), 64),
                    {});
      } else {
        alpm.insert(
            vni,
            net::Ipv4Prefix(
                net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), 24),
            {});
      }
      ++inserted;
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;

  const auto stats = alpm.stats();
  const unsigned dir_slices = (tables::kPooledRouteKeyBits + 43) / 44;
  const tables::AlpmShapeEstimate estimate =
      tables::estimate_alpm_shape(stats.routes, 32, dir_slices, 1);
  AlpmProbe probe;
  probe.routes = stats.routes;
  probe.partitions = stats.partitions;
  probe.measured_fill = stats.average_fill;
  probe.estimated_partitions = estimate.partitions;
  probe.estimate_error =
      std::abs(static_cast<double>(estimate.partitions) -
               static_cast<double>(stats.partitions)) /
      static_cast<double>(stats.partitions);
  probe.build_s = dt.count();
  return probe;
}

// Entry tags for the desired-state store a delta-blind controller has to
// recount before every placement. The scan is the O(N) term the
// incremental engine deletes.
enum class Tag : std::uint8_t {
  kRouteV4,
  kRouteV6,
  kMapV4,
  kMapV6,
  kMeter,
  kCounter,
};

std::vector<Tag> desired_state(const asic::GatewayWorkload& w) {
  std::vector<Tag> entries;
  entries.reserve(w.vxlan_routes_v4 + w.vxlan_routes_v6 + w.vm_maps_v4 +
                  w.vm_maps_v6 + w.meters + w.counters);
  entries.insert(entries.end(), w.vxlan_routes_v4, Tag::kRouteV4);
  entries.insert(entries.end(), w.vxlan_routes_v6, Tag::kRouteV6);
  entries.insert(entries.end(), w.vm_maps_v4, Tag::kMapV4);
  entries.insert(entries.end(), w.vm_maps_v6, Tag::kMapV6);
  entries.insert(entries.end(), w.meters, Tag::kMeter);
  entries.insert(entries.end(), w.counters, Tag::kCounter);
  return entries;
}

asic::GatewayWorkload recount(const std::vector<Tag>& entries,
                              const asic::GatewayWorkload& fixed) {
  asic::GatewayWorkload w = asic::empty_gateway_workload();
  w.digest_conflicts = fixed.digest_conflicts;
  w.acl_rules = fixed.acl_rules;
  w.steering_entries = fixed.steering_entries;
  for (const Tag tag : entries) {
    switch (tag) {
      case Tag::kRouteV4: ++w.vxlan_routes_v4; break;
      case Tag::kRouteV6: ++w.vxlan_routes_v6; break;
      case Tag::kMapV4: ++w.vm_maps_v4; break;
      case Tag::kMapV6: ++w.vm_maps_v6; break;
      case Tag::kMeter: ++w.meters; break;
      case Tag::kCounter: ++w.counters; break;
    }
  }
  return w;
}

asic::WorkloadDelta random_delta(workload::Rng& rng) {
  asic::WorkloadDelta delta;
  const auto step = [&](std::uint64_t bound) {
    const std::int64_t size = static_cast<std::int64_t>(rng.uniform(bound));
    return rng.chance(0.5) ? size : -size;
  };
  delta.vxlan_routes_v4 = step(400);
  delta.vxlan_routes_v6 = step(150);
  delta.vm_maps_v4 = step(300);
  delta.vm_maps_v6 = step(100);
  delta.meters = step(50);
  if (delta.empty()) delta.vxlan_routes_v4 = 1;
  return delta;
}

bool accounting_parity(const asic::Placement& live,
                       const asic::Placement& fresh) {
  for (unsigned p = 0; p < live.chip().pipelines; ++p) {
    for (asic::MemoryKind kind :
         {asic::MemoryKind::kSram, asic::MemoryKind::kTcam}) {
      if (live.pipe_units(p, kind) != fresh.pipe_units(p, kind)) return false;
    }
  }
  return live.feasible() == fresh.feasible();
}

struct ScaleResult {
  std::size_t routes = 0;
  unsigned pipelines = 0;
  AlpmProbe alpm;
  double full_place_ms = 0;
  double delta_p50_us = 0;
  double delta_p99_us = 0;
  double speedup = 0;
  bool feasible = false;
  bool parity = false;
  std::uint64_t delta_applies = 0;
  std::uint64_t full_recomputes = 0;
};

}  // namespace

int main() {
  bench::print_header("Placement scale",
                      "10M-route placement + incremental re-placement");

  const asic::CompressionConfig config = xgwh::config_for_steps("abcdef");

  struct Scale {
    std::size_t routes;
    unsigned pipelines;
  };
  const Scale scales[] = {{1'000'000, 4}, {5'000'000, 8}, {10'000'000, 16}};

  bool fatal = false;
  std::vector<ScaleResult> results;
  for (const Scale& scale : scales) {
    ScaleResult result;
    result.routes = scale.routes;
    result.pipelines = scale.pipelines;

    // ---- calibrated estimate vs a real ALPM build ----------------------
    result.alpm = probe_alpm(scale.routes);
    std::printf(
        "alpm %zuM: routes=%zu partitions=%zu fill=%.4f estimate=%zu "
        "(%.2f%% off) build=%.1fs\n",
        scale.routes / 1'000'000, result.alpm.routes, result.alpm.partitions,
        result.alpm.measured_fill, result.alpm.estimated_partitions,
        100.0 * result.alpm.estimate_error, result.alpm.build_s);
    if (result.alpm.estimate_error > 0.05) {
      std::printf("FATAL: ALPM estimate off by %.2f%% (> 5%%) at %zu "
                  "routes\n",
                  100.0 * result.alpm.estimate_error, scale.routes);
      fatal = true;
    }

    // ---- full placement: O(N) recount + demand modeling + layout -------
    asic::ChipConfig chip;
    chip.pipelines = scale.pipelines;
    const asic::Placer placer(chip);
    asic::GatewayWorkload workload = asic::empty_gateway_workload();
    workload.vxlan_routes_v4 = scale.routes * 3 / 4;
    workload.vxlan_routes_v6 = scale.routes - workload.vxlan_routes_v4;
    workload.vm_maps_v4 = 750'000;
    workload.vm_maps_v6 = 250'000;
    workload.digest_conflicts = 8;
    workload.meters = 430'000;
    workload.counters = 1'500'000;
    workload.steering_entries = 64;

    const std::vector<Tag> entries = desired_state(workload);
    double full_s = 0;
    asic::Placement full_layout;
    for (int rep = 0; rep < kFullReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const asic::GatewayWorkload counted = recount(entries, workload);
      full_layout = placer.place_layout(counted, config);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      if (rep == 0 || dt.count() < full_s) full_s = dt.count();
    }
    result.full_place_ms = full_s * 1e3;
    result.feasible = full_layout.feasible();
    if (!result.feasible) {
      std::printf("FATAL: %zu routes infeasible on %u pipelines\n",
                  scale.routes, scale.pipelines);
      fatal = true;
    }

    // ---- incremental deltas --------------------------------------------
    workload::Rng rng(7);
    asic::Placement live = full_layout;
    asic::GatewayWorkload current = live.workload();
    std::vector<double> delta_us;
    delta_us.reserve(kDeltas);
    for (std::size_t i = 0; i < kDeltas; ++i) {
      const asic::WorkloadDelta delta = random_delta(rng);
      const auto t0 = std::chrono::steady_clock::now();
      live = placer.replace(live, delta);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      delta_us.push_back(dt.count() * 1e6);
      current = delta.applied_to(current);
    }
    std::sort(delta_us.begin(), delta_us.end());
    result.delta_p50_us = delta_us[kDeltas / 2];
    result.delta_p99_us = delta_us[kDeltas * 99 / 100];
    result.speedup = (full_s * 1e6) / result.delta_p50_us;
    result.delta_applies = live.stats().delta_applies;
    result.full_recomputes = live.stats().full_recomputes;
    if (result.speedup < 50) {
      std::printf("FATAL: delta apply only %.1fx faster than full "
                  "recompute at %zu routes (target >= 50x)\n",
                  result.speedup, scale.routes);
      fatal = true;
    }

    // ---- occupancy parity vs from-scratch ------------------------------
    result.parity = accounting_parity(live, placer.place_layout(current,
                                                                config));
    if (!result.parity) {
      std::printf("FATAL: incremental layout diverged from from-scratch "
                  "placement at %zu routes\n",
                  scale.routes);
      fatal = true;
    }
    results.push_back(result);
  }

  sim::TablePrinter table({"Routes", "Pipes", "Full place", "Delta p50",
                           "Delta p99", "Speedup", "ALPM est err"});
  for (const ScaleResult& r : results) {
    table.add_row({std::to_string(r.routes / 1'000'000) + "M",
                   std::to_string(r.pipelines),
                   sim::format_double(r.full_place_ms, 2) + " ms",
                   sim::format_double(r.delta_p50_us, 1) + " us",
                   sim::format_double(r.delta_p99_us, 1) + " us",
                   sim::format_double(r.speedup, 0) + "x",
                   bench::pct(r.alpm.estimate_error, 2)});
  }
  table.print();
  bench::print_note(
      "full place = O(N) desired-state recount + demand modeling + "
      "place_layout; deltas are <= 1k-entry WorkloadDeltas through "
      "Placer::replace(). Targets: ALPM estimate within 5%, delta p50 "
      ">= 50x full place, occupancy parity after 200 deltas.");

  std::ofstream json("BENCH_placement.json");
  json << "{\n"
       << "  \"bench\": \"placement_scale\",\n"
       << "  \"compression_steps\": \"abcdef\",\n"
       << "  \"deltas_per_scale\": " << kDeltas << ",\n"
       << "  \"delta_max_magnitude\": 1000,\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    json << "    {\"routes\": " << r.routes
         << ", \"pipelines\": " << r.pipelines
         << ", \"full_place_ms\": " << r.full_place_ms
         << ", \"delta_p50_us\": " << r.delta_p50_us
         << ", \"delta_p99_us\": " << r.delta_p99_us
         << ", \"speedup_vs_full\": " << r.speedup
         << ", \"delta_applies\": " << r.delta_applies
         << ", \"full_recomputes\": " << r.full_recomputes
         << ", \"feasible\": " << (r.feasible ? "true" : "false")
         << ", \"occupancy_parity\": " << (r.parity ? "true" : "false")
         << ",\n     \"alpm\": {\"routes\": " << r.alpm.routes
         << ", \"partitions\": " << r.alpm.partitions
         << ", \"measured_fill\": " << r.alpm.measured_fill
         << ", \"estimated_partitions\": " << r.alpm.estimated_partitions
         << ", \"estimate_error\": " << r.alpm.estimate_error
         << ", \"build_s\": " << r.alpm.build_s << "}}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  return fatal ? 1 : 0;
}
