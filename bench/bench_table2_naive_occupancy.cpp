// Table 2 — "Table size and table occupancy in the Tofino chip".
//
// The straightforward placement: VXLAN routes in TCAM, VM-NC mappings in
// SRAM, no compression. Reproduced from first principles by the SfChip
// cost model and placer over the paper's workload scale (1M routes, 1M
// mappings, 75% IPv4 / 25% IPv6).

#include "asic/placer.hpp"
#include "bench_util.hpp"
#include "tables/entry.hpp"

using namespace sf;

int main() {
  bench::print_header("Table 2", "naive table occupancy on the chip");

  const asic::ChipConfig chip;
  const asic::Placer placer(chip);
  const asic::CompressionConfig none = asic::CompressionConfig::none();

  const asic::GatewayWorkload v4{1'000'000, 0, 1'000'000, 0};
  const asic::GatewayWorkload v6{0, 1'000'000, 0, 1'000'000};
  const asic::GatewayWorkload mixed{750'000, 250'000, 750'000, 250'000};

  const auto rv4 = placer.evaluate(v4, none);
  const auto rv6 = placer.evaluate(v6, none);
  const auto rmx = placer.evaluate(mixed, none);

  sim::TablePrinter table({"Table", "Match", "IP", "Key bits", "Occupancy",
                           "Measured", "Paper"});
  table.add_row({"VXLAN routing", "LPM", "IPv4",
                 std::to_string(tables::vxlan_route_key_bits(
                     net::IpFamily::kV4)),
                 "TCAM", bench::pct(rv4.tcam_path_worst, 0), "311%"});
  table.add_row({"VXLAN routing", "LPM", "IPv6",
                 std::to_string(tables::vxlan_route_key_bits(
                     net::IpFamily::kV6)),
                 "TCAM", bench::pct(rv6.tcam_path_worst, 0), "622%"});
  table.add_row({"VM-NC mapping", "EXACT", "IPv4",
                 std::to_string(tables::vm_nc_key_bits(net::IpFamily::kV4)),
                 "SRAM", bench::pct(rv4.sram_path_worst, 0), "58%"});
  table.add_row({"VM-NC mapping", "EXACT", "IPv6",
                 std::to_string(tables::vm_nc_key_bits(net::IpFamily::kV6)),
                 "SRAM", bench::pct(rv6.sram_path_worst, 0), "233%"});
  table.add_row({"Sum (75% IPv4, 25% IPv6)", "", "", "", "SRAM",
                 bench::pct(rmx.sram_path_worst, 1), "102%"});
  table.add_row({"Sum (75% IPv4, 25% IPv6)", "", "", "", "TCAM",
                 bench::pct(rmx.tcam_path_worst, 2), "388.75%"});
  table.print();

  bench::print_note(
      "demand exceeds one pipeline's memory: the naive layout is "
      "infeasible, motivating §4.4. feasible(placer) = " +
      std::string(rmx.feasible ? "true" : "false"));
  return 0;
}
