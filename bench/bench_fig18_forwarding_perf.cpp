// Fig. 18 — "XGW-H's forwarding performance": throughput, packet rate and
// latency of one XGW-H vs one XGW-x86 of roughly the same unit price.
// Rates come from the calibrated envelopes; latency is *measured* by
// pushing packets through the functional pipeline walker.

#include <cstdio>

#include "bench_util.hpp"
#include "x86/cost_model.hpp"
#include "xgwh/xgwh.hpp"

using namespace sf;

namespace {

double measure_xgwh_latency(xgwh::XgwH& gw, std::uint16_t payload) {
  net::OverlayPacket pkt;
  pkt.vni = 10;
  pkt.inner.src = net::IpAddr::must_parse("192.168.10.2");
  pkt.inner.dst = net::IpAddr::must_parse("192.168.10.3");
  pkt.inner.proto = 6;
  pkt.payload_size = payload;
  return gw.forward(pkt).latency_us;
}

}  // namespace

int main() {
  bench::print_header("Fig. 18", "XGW-H vs XGW-x86 forwarding performance");

  xgwh::XgwH hw{xgwh::XgwH::Config{}};  // folded, fully compressed
  hw.install_route(10, net::IpPrefix::must_parse("192.168.10.0/24"),
                   {tables::RouteScope::kLocal, 0, {}});
  hw.install_mapping({10, net::IpAddr::must_parse("192.168.10.3")},
                     {net::Ipv4Addr(10, 1, 1, 12)});
  const x86::X86CostModel sw;

  // (a) throughput and (b) packet rate.
  sim::TablePrinter rates({"Metric", "XGW-x86", "XGW-H", "Ratio", "Paper"});
  const double hw_bps = hw.max_throughput_bps();
  const double sw_bps = sw.nic_bps;
  const double hw_pps = hw.max_packet_rate_pps();
  const double sw_pps = sw.max_pps();
  rates.add_row({"Throughput", sim::format_si(sw_bps, "bps"),
                 sim::format_si(hw_bps, "bps"),
                 sim::format_double(hw_bps / sw_bps, 0) + "x",
                 ">20x (3.2 Tbps)"});
  rates.add_row({"Packet rate", sim::format_si(sw_pps, "pps"),
                 sim::format_si(hw_pps, "pps"),
                 sim::format_double(hw_pps / sw_pps, 0) + "x",
                 "72x (1800 vs 25 Mpps)"});
  rates.print();

  // Line-rate crossover vs packet size.
  std::printf("\nline rate vs packet size (achievable throughput):\n");
  sim::TablePrinter sweep({"Packet size", "XGW-x86", "XGW-H",
                           "x86 at line rate", "XGW-H at line rate"});
  for (std::size_t size : {64ul, 128ul, 256ul, 512ul, 1024ul, 1500ul}) {
    const double sw_tp = sw.throughput_bps(size);
    const double hw_tp =
        std::min(hw_bps, hw_pps * 8.0 * static_cast<double>(size));
    sweep.add_row({std::to_string(size) + "B", sim::format_si(sw_tp, "bps"),
                   sim::format_si(hw_tp, "bps"),
                   sw_tp >= sw.nic_bps * 0.999 ? "yes" : "no",
                   hw_tp >= hw_bps * 0.999 ? "yes" : "no"});
  }
  sweep.print();
  bench::print_note(
      "paper: XGW-H reaches line rate below 256B; XGW-x86 only above "
      "512B.");

  // (c) latency, measured through the folded pipeline walker.
  std::printf("\nforwarding latency (measured through the walker):\n");
  sim::TablePrinter latency({"Packet", "XGW-H measured", "XGW-H paper",
                             "XGW-x86 model", "XGW-x86 paper"});
  for (std::uint16_t payload : {32, 384, 928}) {
    net::OverlayPacket probe;
    probe.payload_size = payload;
    const std::size_t wire = probe.wire_size() + 8;  // ~ inner TCP adjust
    latency.add_row(
        {std::to_string(wire) + "B",
         sim::format_double(measure_xgwh_latency(hw, payload), 3) + " us",
         "2.17-2.31 us",
         sim::format_double(sw.latency_us(0.2), 0) + " us", "~40 us"});
  }
  latency.print();
  bench::print_note(
      "folding makes the packet traverse two pipeline passes: ~2x the "
      "pass latency, still 95% below the x86 path.");
  return 0;
}
