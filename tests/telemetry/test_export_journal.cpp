#include <gtest/gtest.h>

#include <string>

#include "net/ip.hpp"
#include "telemetry/export.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sketch.hpp"

namespace sf::telemetry {
namespace {

Snapshot sample_snapshot() {
  Registry registry;
  registry.counter("gw.packets_in").add(1234);
  registry.counter("gw.drops").add(5);
  Histogram::Config config;
  config.min_value = 1.0;
  config.growth = 2.0;
  config.buckets = 3;
  Histogram& lat = registry.histogram("gw.latency_us", config);
  lat.record(0.5);
  lat.record(3.0);
  lat.record(100.0);
  return registry.snapshot();
}

TEST(Export, TableListsCountersAndHistograms) {
  const std::string table = to_table(sample_snapshot());
  EXPECT_NE(table.find("gw.packets_in"), std::string::npos);
  EXPECT_NE(table.find("1234"), std::string::npos);
  EXPECT_NE(table.find("gw.latency_us"), std::string::npos);
}

TEST(Export, JsonIsWellFormedEnoughForConsumers) {
  const std::string json = to_json(sample_snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gw.packets_in\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  // The overflow bucket's +inf edge must not leak as a bare `inf` token
  // (invalid JSON) — it is quoted.
  EXPECT_EQ(json.find(",inf"), std::string::npos);
  EXPECT_NE(json.find("\"inf\""), std::string::npos);
}

TEST(Export, PrometheusEmitsSanitizedSeries) {
  const std::string prom = to_prometheus(sample_snapshot());
  // Dots sanitized to underscores; counters suffixed _total.
  EXPECT_NE(prom.find("gw_packets_in_total 1234"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE gw_packets_in_total counter"),
            std::string::npos);
  // Histograms: cumulative buckets ending at +Inf, plus _sum and _count.
  EXPECT_NE(prom.find("gw_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("gw_latency_us_count 3"), std::string::npos);
  EXPECT_NE(prom.find("gw_latency_us_sum"), std::string::npos);
}

TEST(Export, GaugesRenderOnlyWhenPresent) {
  // Counter-only snapshots keep their pre-gauge bytes: no "gauges" key in
  // the JSON, no gauge series in Prometheus (CI byte-diffs depend on it).
  const Snapshot plain = sample_snapshot();
  EXPECT_EQ(to_json(plain).find("\"gauges\""), std::string::npos);
  EXPECT_EQ(to_prometheus(plain).find("# TYPE") != std::string::npos &&
                to_prometheus(plain).find(" gauge\n") != std::string::npos,
            false);

  Registry registry;
  registry.counter("gw.packets_in").add(1);
  registry.gauge("gw.punt_queue.occupancy").set(0.75);
  registry.gauge("gw.flow_cache.high_watermark").set(512);
  const Snapshot with_gauges = registry.snapshot();

  const std::string json = to_json(with_gauges);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"gw.punt_queue.occupancy\":0.75"),
            std::string::npos);

  const std::string prom = to_prometheus(with_gauges);
  EXPECT_NE(prom.find("# TYPE gw_punt_queue_occupancy gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("gw_punt_queue_occupancy 0.75"), std::string::npos);
  EXPECT_NE(prom.find("gw_flow_cache_high_watermark 512"),
            std::string::npos);

  const std::string table = to_table(with_gauges);
  EXPECT_NE(table.find("gw.punt_queue.occupancy"), std::string::npos);
}

TEST(Export, HeavyHitterTableShowsShares) {
  HeavyHitterTracker tracker;
  FlowKey key;
  key.vni = 7;
  key.tuple.src = net::IpAddr(net::Ipv4Addr(10, 0, 0, 1));
  key.tuple.dst = net::IpAddr(net::Ipv4Addr(10, 0, 0, 2));
  key.tuple.proto = 17;
  key.tuple.src_port = 1000;
  key.tuple.dst_port = 53;
  tracker.add(key, 75);

  const std::string table = to_table(tracker.top(1), tracker.total());
  EXPECT_NE(table.find("vni 7"), std::string::npos);
  EXPECT_NE(table.find("75"), std::string::npos);
}

TEST(EventJournal, RingOverwritesOldestButKeepsSequence) {
  EventJournal journal(3);
  EXPECT_EQ(journal.capacity(), 3u);
  for (int i = 1; i <= 5; ++i) {
    journal.record("table-update",
                   "update " + std::to_string(i), /*time=*/i * 1.0);
  }
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal.total_recorded(), 5u);
  EXPECT_EQ(journal.overwritten(), 2u);

  const auto events = journal.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].sequence, 3u);  // oldest retained
  EXPECT_EQ(events[2].sequence, 5u);  // newest
  EXPECT_EQ(events[2].message, "update 5");
  EXPECT_DOUBLE_EQ(events[2].time, 5.0);
}

TEST(EventJournal, FiltersByCategoryAndKeepsCountingAfterClear) {
  EventJournal journal(8);
  journal.record("failover", "device 2 down");
  journal.record("table-update", "route added");
  journal.record("failover", "device 2 recovered");

  const auto failovers = journal.events("failover");
  ASSERT_EQ(failovers.size(), 2u);
  EXPECT_EQ(failovers[0].message, "device 2 down");
  EXPECT_EQ(failovers[1].message, "device 2 recovered");

  const std::string text = journal.to_string();
  EXPECT_NE(text.find("failover"), std::string::npos);
  EXPECT_NE(text.find("route added"), std::string::npos);

  journal.clear();
  EXPECT_EQ(journal.size(), 0u);
  journal.record("alert", "after clear");
  EXPECT_EQ(journal.events().front().sequence, 4u);  // monotonic
}

}  // namespace
}  // namespace sf::telemetry
