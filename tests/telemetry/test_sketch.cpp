#include "telemetry/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "net/ip.hpp"
#include "workload/rng.hpp"
#include "workload/zipf.hpp"

namespace sf::telemetry {
namespace {

FlowKey key_for_rank(std::size_t rank) {
  FlowKey key;
  key.vni = static_cast<net::Vni>(100 + rank);
  key.tuple.src = net::IpAddr(net::Ipv4Addr(
      10, static_cast<std::uint8_t>(rank >> 8),
      static_cast<std::uint8_t>(rank & 0xff), 2));
  key.tuple.dst = net::IpAddr(net::Ipv4Addr(192, 168, 0, 1));
  key.tuple.proto = 6;
  key.tuple.src_port = static_cast<std::uint16_t>(1024 + rank);
  key.tuple.dst_port = 443;
  return key;
}

TEST(FlowKey, HashDistinguishesVniAndTuple) {
  const FlowKey a = key_for_rank(1);
  FlowKey b = key_for_rank(1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.vni = 999;  // same tuple, different tenant
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(CountMinSketch, NeverUndercounts) {
  CountMinSketch::Config config;
  config.width = 128;  // deliberately tight: collisions guaranteed
  config.depth = 3;
  CountMinSketch sketch(config);

  workload::Rng rng(7);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t h = key_for_rank(rng.uniform(600)).hash();
    const std::uint64_t amount = 1 + rng.uniform(4);
    sketch.add(h, amount);
    truth[h] += amount;
  }

  for (const auto& [hash, count] : truth) {
    EXPECT_GE(sketch.estimate(hash), count);
  }
  std::uint64_t total = 0;
  for (const auto& [hash, count] : truth) total += count;
  EXPECT_EQ(sketch.total(), total);
}

TEST(CountMinSketch, ErrorBoundHoldsForMostKeys) {
  // estimate - true <= (e/width) * total with probability >= 1 - e^-depth
  // per key; over many keys a small violation fraction is allowed.
  CountMinSketch::Config config;
  config.width = 256;
  config.depth = 4;
  CountMinSketch sketch(config);

  workload::Rng rng(11);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t h = key_for_rank(rng.uniform(2000)).hash();
    sketch.add(h);
    ++truth[h];
  }

  const double bound = sketch.error_bound();
  EXPECT_NEAR(bound, 2.718281828 / 256.0 * 20000.0, 1.0);
  std::size_t violations = 0;
  for (const auto& [hash, count] : truth) {
    const double overshoot =
        static_cast<double>(sketch.estimate(hash) - count);
    if (overshoot > bound) ++violations;
  }
  EXPECT_LE(static_cast<double>(violations),
            0.05 * static_cast<double>(truth.size()));
}

TEST(CountMinSketch, ClearResets) {
  CountMinSketch sketch;
  sketch.add(123, 5);
  EXPECT_EQ(sketch.total(), 5u);
  sketch.clear();
  EXPECT_EQ(sketch.total(), 0u);
  EXPECT_EQ(sketch.estimate(123), 0u);
}

// The acceptance scenario: a Zipf(1.1) stream of 1000 flows; the tracker
// must recover >= 90% of the true top-8 from a deterministic seed.
TEST(HeavyHitterTracker, RecoversZipfTopEight) {
  HeavyHitterTracker::Config config;
  config.sketch.width = 1024;
  config.sketch.depth = 4;
  config.capacity = 16;
  HeavyHitterTracker tracker(config);

  const std::size_t kFlows = 1000;
  workload::ZipfSampler zipf(kFlows, 1.1);
  workload::Rng rng(2021);

  std::vector<std::uint64_t> truth(kFlows, 0);
  std::vector<FlowKey> keys;
  keys.reserve(kFlows);
  for (std::size_t r = 0; r < kFlows; ++r) keys.push_back(key_for_rank(r));

  for (int i = 0; i < 200000; ++i) {
    const std::size_t rank = zipf.sample(rng);
    tracker.add(keys[rank]);
    ++truth[rank];
  }

  // True top-8 flows by actual sampled counts.
  std::vector<std::size_t> ranks(kFlows);
  for (std::size_t r = 0; r < kFlows; ++r) ranks[r] = r;
  std::sort(ranks.begin(), ranks.end(), [&](std::size_t a, std::size_t b) {
    return truth[a] > truth[b];
  });

  const auto top = tracker.top(8);
  ASSERT_EQ(top.size(), 8u);
  std::size_t recovered = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const FlowKey& expected = keys[ranks[i]];
    for (const auto& entry : top) {
      if (entry.key == expected) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GE(static_cast<double>(recovered) / 8.0, 0.9);

  // Estimates never undercount and stay sorted heaviest-first.
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].estimate, top[i].estimate);
  }
  EXPECT_GE(top.front().estimate, truth[ranks.front()]);
}

TEST(HeavyHitterTracker, EvictsWeakestOverCapacity) {
  HeavyHitterTracker::Config config;
  config.capacity = 4;
  HeavyHitterTracker tracker(config);

  // 8 distinct flows with strictly increasing weight: later, heavier
  // flows must displace the earlier, lighter ones.
  for (std::size_t r = 0; r < 8; ++r) {
    tracker.add(key_for_rank(r), (r + 1) * 100);
  }

  EXPECT_EQ(tracker.tracked(), 4u);
  EXPECT_GT(tracker.evictions(), 0u);

  const auto top = tracker.top(4);
  ASSERT_EQ(top.size(), 4u);
  for (const auto& entry : top) {
    // Survivors are among the four heaviest (ranks 4..7).
    bool heavy = false;
    for (std::size_t r = 4; r < 8; ++r) {
      if (entry.key == key_for_rank(r)) heavy = true;
    }
    EXPECT_TRUE(heavy) << entry.key.to_string();
  }

  tracker.clear();
  EXPECT_EQ(tracker.tracked(), 0u);
  EXPECT_EQ(tracker.total(), 0u);
}

TEST(HeavyHitterTracker, ChurnAtTheCapacityBoundaryKeepsTheHeaviest) {
  // K flows fill the candidate list, then a stream of near-tied
  // challengers hammers the K boundary. The list must stay bounded, churn
  // must be visible as evictions, and the true heaviest flow must never
  // be displaced by the tied tail.
  HeavyHitterTracker::Config config;
  config.capacity = 4;
  HeavyHitterTracker tracker(config);

  tracker.add(key_for_rank(0), 10'000);  // the undisputed elephant
  for (std::size_t r = 1; r < 4; ++r) tracker.add(key_for_rank(r), 500);
  ASSERT_EQ(tracker.tracked(), 4u);

  const std::uint64_t before = tracker.evictions();
  for (int round = 0; round < 16; ++round) {
    // Challengers arrive just above the weakest incumbent's weight.
    tracker.add(key_for_rank(100 + round), 501 + round);
  }
  EXPECT_EQ(tracker.tracked(), 4u);  // bounded through the churn
  EXPECT_GT(tracker.evictions(), before);

  const auto top = tracker.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, key_for_rank(0));
  EXPECT_GE(top[0].estimate, 10'000u);
}

TEST(HeavyHitterTracker, TwoTenantsSharingATupleAreDistinctFlows) {
  // Two tenants reusing the same private 5-tuple (overlapping RFC1918
  // space) must be tracked separately: the VNI is part of the key.
  HeavyHitterTracker tracker;
  FlowKey tenant_a = key_for_rank(3);
  FlowKey tenant_b = tenant_a;
  tenant_a.vni = 111;
  tenant_b.vni = 222;

  tracker.add(tenant_a, 9'000);
  tracker.add(tenant_b, 400);

  EXPECT_EQ(tracker.tracked(), 2u);
  EXPECT_GE(tracker.estimate(tenant_a), 9'000u);
  const auto top = tracker.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, tenant_a);
  EXPECT_EQ(top[1].key, tenant_b);
  // The light tenant's estimate must not inherit the heavy tenant's
  // volume beyond the sketch's collision error band.
  EXPECT_LE(static_cast<double>(top[1].estimate),
            400.0 + tracker.sketch().error_bound());
}

TEST(CountMinSketch, DecayScalesTruncatesAndClamps) {
  CountMinSketch sketch;
  sketch.add(1, 1000);
  sketch.add(2, 5);

  sketch.decay(0.5);
  EXPECT_EQ(sketch.estimate(1), 500u);
  EXPECT_EQ(sketch.total(), 502u);  // 1005 * 0.5, truncated

  // Integer truncation drives small counters to zero instead of leaving
  // a permanent remainder.
  sketch.decay(0.5);
  sketch.decay(0.5);
  EXPECT_EQ(sketch.estimate(2), 0u);

  // The factor clamps to [0, 1]: decay can never inflate, and a negative
  // factor is a full clear.
  sketch.decay(7.0);
  EXPECT_EQ(sketch.estimate(1), 125u);
  sketch.decay(-1.0);
  EXPECT_EQ(sketch.total(), 0u);
  EXPECT_EQ(sketch.estimate(1), 0u);
}

TEST(HeavyHitterTracker, DecayAgesOutQuietFlowsAndRefreshesEstimates) {
  HeavyHitterTracker::Config config;
  config.capacity = 8;
  HeavyHitterTracker tracker(config);

  tracker.add(key_for_rank(0), 8'000);  // goes quiet after this interval
  tracker.add(key_for_rank(1), 1'000);  // keeps sending

  for (int interval = 0; interval < 14; ++interval) {
    tracker.decay(0.5);
    tracker.add(key_for_rank(1), 1'000);
  }

  // The quiet flow halves out of both the sketch and the candidate list;
  // the steady sender's decayed estimate converges near its per-interval
  // rate (geometric series: rate * 2), not its all-time total.
  EXPECT_EQ(tracker.estimate(key_for_rank(0)), 0u);
  const auto top = tracker.top(tracker.tracked());
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, key_for_rank(1));
  EXPECT_GE(top[0].estimate, 1'000u);
  EXPECT_LE(top[0].estimate, 2'000u);
  for (const auto& entry : top) {
    EXPECT_NE(entry.key, key_for_rank(0));
    EXPECT_GT(entry.estimate, 0u);
  }
}

}  // namespace
}  // namespace sf::telemetry
