#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace sf::telemetry {
namespace {

TEST(Counter, AddsMonotonically) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Registry, GetOrCreateReturnsStableReferences) {
  Registry registry;
  Counter& a = registry.counter("pkts");
  a.add(7);
  Counter& b = registry.counter("pkts");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_TRUE(registry.has_counter("pkts"));
  EXPECT_FALSE(registry.has_counter("other"));
  EXPECT_EQ(registry.counter_value("pkts"), 7u);
  EXPECT_EQ(registry.counter_value("other"), 0u);

  registry.histogram("lat");
  EXPECT_EQ(registry.instrument_count(), 2u);
}

TEST(Histogram, TracksMomentsAndExtremes) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.mean(), 0.0);

  hist.record(1.0);
  hist.record(3.0);
  hist.record(2.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.sum(), 6.0);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 3.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 2.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.percentile(100), 3.0);
}

TEST(Histogram, LogBucketsBoundMemoryAndCatchOverflow) {
  Histogram::Config config;
  config.min_value = 1.0;
  config.growth = 2.0;
  config.buckets = 3;  // edges 1, 2, 4 (+ overflow)
  Histogram hist(config);

  hist.record(0.5);    // <= 1 -> bucket 0
  hist.record(1.5);    // <= 2 -> bucket 1
  hist.record(3.0);    // <= 4 -> bucket 2
  hist.record(1e9);    // overflow

  const auto buckets = hist.buckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0].upper_edge, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].upper_edge, 2.0);
  EXPECT_DOUBLE_EQ(buckets[2].upper_edge, 4.0);
  EXPECT_TRUE(std::isinf(buckets[3].upper_edge));
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_EQ(buckets[2].count, 1u);
  EXPECT_EQ(buckets[3].count, 1u);
}

TEST(Snapshot, DeltaYieldsRates) {
  Registry registry;
  Counter& pkts = registry.counter("pkts");
  Histogram& lat = registry.histogram("lat");

  pkts.add(100);
  lat.record(1.0);
  const Snapshot earlier = registry.snapshot();

  pkts.add(25);
  lat.record(2.0);
  lat.record(3.0);
  const Snapshot later = registry.snapshot();

  const Snapshot diff = Snapshot::delta(earlier, later);
  EXPECT_EQ(diff.counter("pkts"), 25u);
  EXPECT_EQ(diff.counter("missing", 7u), 7u);
  ASSERT_NE(diff.histogram("lat"), nullptr);
  EXPECT_EQ(diff.histogram("lat")->count, 2u);

  // Names only present in `later` count from zero; a (hypothetical)
  // regression never goes negative.
  const Snapshot clamped = Snapshot::delta(later, earlier);
  EXPECT_EQ(clamped.counter("pkts"), 0u);
}

TEST(Gauge, MovesBothWaysAndSnapshotsTheLevel) {
  Registry registry;
  Gauge& occupancy = registry.gauge("queue.occupancy");
  occupancy.set(0.75);
  occupancy.set(0.25);  // unlike a counter, levels go down too
  EXPECT_DOUBLE_EQ(registry.gauge_value("queue.occupancy"), 0.25);
  EXPECT_TRUE(registry.has_gauge("queue.occupancy"));
  EXPECT_FALSE(registry.has_gauge("other"));
  EXPECT_EQ(&occupancy, &registry.gauge("queue.occupancy"));

  const Snapshot snapshot = registry.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.gauge("queue.occupancy"), 0.25);
  EXPECT_DOUBLE_EQ(snapshot.gauge("missing", 7.0), 7.0);
}

TEST(Gauge, DeltaKeepsTheLaterLevelNotADifference) {
  Registry registry;
  registry.gauge("fill").set(0.9);
  const Snapshot earlier = registry.snapshot();
  registry.gauge("fill").set(0.4);
  const Snapshot later = registry.snapshot();

  // A level is not a rate: the delta reports where the gauge *is* now.
  const Snapshot diff = Snapshot::delta(earlier, later);
  EXPECT_DOUBLE_EQ(diff.gauge("fill"), 0.4);
}

TEST(Gauge, MergeNamespacesPerDeviceLevels) {
  Registry device0;
  Registry device1;
  device0.gauge("table.fill").set(0.5);
  device1.gauge("table.fill").set(0.25);

  Snapshot fleet;
  fleet.merge(device0.snapshot(), "dev0.");
  fleet.merge(device1.snapshot(), "dev1.");
  EXPECT_DOUBLE_EQ(fleet.gauge("dev0.table.fill"), 0.5);
  EXPECT_DOUBLE_EQ(fleet.gauge("dev1.table.fill"), 0.25);
}

TEST(Snapshot, MergePrefixesAndSums) {
  Registry device0;
  Registry device1;
  device0.counter("pkts").add(10);
  device1.counter("pkts").add(32);

  Snapshot fleet;
  fleet.merge(device0.snapshot(), "dev0.");
  fleet.merge(device1.snapshot(), "dev1.");
  EXPECT_EQ(fleet.counter("dev0.pkts"), 10u);
  EXPECT_EQ(fleet.counter("dev1.pkts"), 32u);

  // Merging without a prefix aggregates same-named counters.
  Snapshot sum;
  sum.merge(device0.snapshot());
  sum.merge(device1.snapshot());
  EXPECT_EQ(sum.counter("pkts"), 42u);
}

}  // namespace
}  // namespace sf::telemetry
