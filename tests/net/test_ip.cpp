#include "net/ip.hpp"

#include <gtest/gtest.h>

namespace sf::net {
namespace {

TEST(Ipv4Addr, ParsesDottedQuad) {
  auto addr = Ipv4Addr::parse("192.168.10.3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0xc0a80a03u);
}

TEST(Ipv4Addr, RoundTripsToString) {
  for (const char* text : {"0.0.0.0", "10.1.1.11", "255.255.255.255"}) {
    EXPECT_EQ(Ipv4Addr::must_parse(text).to_string(), text);
  }
}

TEST(Ipv4Addr, RejectsMalformedInput) {
  for (const char* text :
       {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1..2.3", "a.b.c.d",
        "1.2.3.4 ", "01.2.3.4", "-1.2.3.4"}) {
    EXPECT_FALSE(Ipv4Addr::parse(text).has_value()) << text;
  }
}

TEST(Ipv4Addr, MustParseThrowsOnGarbage) {
  EXPECT_THROW(Ipv4Addr::must_parse("not-an-ip"), std::invalid_argument);
}

TEST(Ipv4Addr, OctetConstructorMatchesParse) {
  EXPECT_EQ(Ipv4Addr(10, 1, 1, 11), Ipv4Addr::must_parse("10.1.1.11"));
}

TEST(Ipv6Addr, ParsesFullForm) {
  auto addr = Ipv6Addr::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(addr->lo(), 1u);
}

TEST(Ipv6Addr, ParsesCompressedForms) {
  EXPECT_EQ(Ipv6Addr::must_parse("::"), Ipv6Addr(0, 0));
  EXPECT_EQ(Ipv6Addr::must_parse("::1"), Ipv6Addr(0, 1));
  EXPECT_EQ(Ipv6Addr::must_parse("2001:db8::1"),
            Ipv6Addr(0x20010db800000000ULL, 1));
  EXPECT_EQ(Ipv6Addr::must_parse("fe80::"),
            Ipv6Addr(0xfe80000000000000ULL, 0));
}

TEST(Ipv6Addr, ParsesMappedV4Form) {
  auto addr = Ipv6Addr::parse("::ffff:10.1.2.3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, Ipv6Addr::mapped(Ipv4Addr(10, 1, 2, 3)));
}

TEST(Ipv6Addr, RejectsMalformedInput) {
  for (const char* text :
       {"", ":::", "2001:db8", "1:2:3:4:5:6:7:8:9", "2001::db8::1",
        "12345::", "g::1", "1:2:3:4:5:6:7:8::"}) {
    EXPECT_FALSE(Ipv6Addr::parse(text).has_value()) << text;
  }
}

TEST(Ipv6Addr, FormatsRfc5952) {
  EXPECT_EQ(Ipv6Addr(0, 0).to_string(), "::");
  EXPECT_EQ(Ipv6Addr(0, 1).to_string(), "::1");
  EXPECT_EQ(Ipv6Addr::must_parse("2001:db8::8:800:200c:417a").to_string(),
            "2001:db8::8:800:200c:417a");
  // Leftmost longest zero run wins.
  EXPECT_EQ(Ipv6Addr::must_parse("1:0:0:1:0:0:0:1").to_string(),
            "1:0:0:1::1");
}

TEST(Ipv6Addr, TextRoundTripIsStable) {
  for (const char* text :
       {"::", "::1", "2001:db8::1", "fe80::1:2:3:4", "1:2:3:4:5:6:7:8"}) {
    const Ipv6Addr addr = Ipv6Addr::must_parse(text);
    EXPECT_EQ(Ipv6Addr::must_parse(addr.to_string()), addr) << text;
  }
}

TEST(Ipv6Addr, BytesRoundTrip) {
  const Ipv6Addr addr = Ipv6Addr::must_parse("2001:db8::42");
  EXPECT_EQ(Ipv6Addr::from_bytes(addr.bytes()), addr);
}

TEST(Ipv6Addr, BitIndexing) {
  const Ipv6Addr addr(0x8000000000000000ULL, 1);
  EXPECT_TRUE(addr.bit(0));
  EXPECT_FALSE(addr.bit(1));
  EXPECT_TRUE(addr.bit(127));
  EXPECT_FALSE(addr.bit(126));
}

TEST(IpAddr, DispatchesByFamily) {
  const IpAddr v4 = IpAddr::must_parse("10.0.0.1");
  const IpAddr v6 = IpAddr::must_parse("2001:db8::1");
  EXPECT_TRUE(v4.is_v4());
  EXPECT_TRUE(v6.is_v6());
  EXPECT_EQ(v4.to_string(), "10.0.0.1");
  EXPECT_EQ(v6.to_string(), "2001:db8::1");
}

TEST(IpAddr, WidenedZeroExtendsV4) {
  const IpAddr v4 = IpAddr::must_parse("1.2.3.4");
  EXPECT_EQ(v4.widened().hi(), 0u);
  EXPECT_EQ(v4.widened().lo(), 0x01020304u);
}

TEST(IpAddr, DifferentFamiliesCompareUnequal) {
  // 0.0.0.1 widened equals ::1 bitwise; the family must still separate.
  EXPECT_NE(IpAddr(Ipv4Addr(1)), IpAddr(Ipv6Addr(0, 1)));
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix prefix(Ipv4Addr::must_parse("192.168.10.99"), 24);
  EXPECT_EQ(prefix.address().to_string(), "192.168.10.0");
  EXPECT_EQ(prefix.to_string(), "192.168.10.0/24");
}

TEST(Ipv4Prefix, ContainsMatchesMask) {
  const Ipv4Prefix prefix = Ipv4Prefix::must_parse("10.1.0.0/16");
  EXPECT_TRUE(prefix.contains(Ipv4Addr::must_parse("10.1.255.3")));
  EXPECT_FALSE(prefix.contains(Ipv4Addr::must_parse("10.2.0.1")));
}

TEST(Ipv4Prefix, ZeroLengthMatchesEverything) {
  const Ipv4Prefix all = Ipv4Prefix::must_parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(Ipv4Addr::must_parse("255.255.255.255")));
  EXPECT_EQ(all.mask(), 0u);
}

TEST(Ipv4Prefix, RejectsBadLength) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0").has_value());
  EXPECT_THROW(Ipv4Prefix(Ipv4Addr(0), 33), std::invalid_argument);
}

TEST(Ipv6Prefix, CanonicalizesAndContains) {
  const Ipv6Prefix prefix = Ipv6Prefix::must_parse("2001:db8:0:1::/64");
  EXPECT_TRUE(prefix.contains(Ipv6Addr::must_parse("2001:db8:0:1::99")));
  EXPECT_FALSE(prefix.contains(Ipv6Addr::must_parse("2001:db8:0:2::1")));
}

TEST(Ipv6Prefix, Length65MasksIntoLowWord) {
  const Ipv6Prefix prefix(Ipv6Addr::must_parse("2001:db8::8000:0:0:0"), 65);
  EXPECT_TRUE(prefix.contains(Ipv6Addr::must_parse("2001:db8::8000:0:0:1")));
  EXPECT_FALSE(prefix.contains(Ipv6Addr::must_parse("2001:db8::1")));
}

TEST(IpPrefix, PooledLengthAddsV4Offset) {
  EXPECT_EQ(IpPrefix::must_parse("10.0.0.0/24").pooled_length(), 96u + 24u);
  EXPECT_EQ(IpPrefix::must_parse("2001:db8::/64").pooled_length(), 64u);
}

TEST(IpPrefix, ContainsIsFamilyAware) {
  const IpPrefix v4 = IpPrefix::must_parse("10.0.0.0/8");
  EXPECT_TRUE(v4.contains(IpAddr::must_parse("10.9.9.9")));
  EXPECT_FALSE(v4.contains(IpAddr::must_parse("2001:db8::1")));
}

}  // namespace
}  // namespace sf::net
