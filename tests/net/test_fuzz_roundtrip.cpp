// Randomized round-trip and robustness fuzz over the wire-format layer:
// address text round-trips, packet encode/decode under random field
// values, decode on corrupted/truncated bytes must never mis-parse.

#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "workload/rng.hpp"

namespace sf::net {
namespace {

TEST(FuzzRoundTrip, Ipv6TextRoundTripsOnRandomAddresses) {
  workload::Rng rng(71);
  for (int i = 0; i < 2'000; ++i) {
    // Mix fully random and zero-heavy addresses (compression paths).
    std::uint64_t hi = rng.next_u64();
    std::uint64_t lo = rng.next_u64();
    if (rng.chance(0.5)) hi &= rng.next_u64() & rng.next_u64();
    if (rng.chance(0.5)) lo &= rng.next_u64() & rng.next_u64();
    const Ipv6Addr addr(hi, lo);
    const Ipv6Addr reparsed = Ipv6Addr::must_parse(addr.to_string());
    ASSERT_EQ(reparsed, addr) << addr.to_string();
  }
}

TEST(FuzzRoundTrip, Ipv4PrefixRoundTrips) {
  workload::Rng rng(72);
  for (int i = 0; i < 1'000; ++i) {
    const Ipv4Prefix prefix(
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
        static_cast<unsigned>(rng.uniform(33)));
    ASSERT_EQ(Ipv4Prefix::must_parse(prefix.to_string()), prefix);
  }
}

OverlayPacket random_packet(workload::Rng& rng) {
  OverlayPacket pkt;
  pkt.vni = static_cast<Vni>(rng.uniform(kMaxVni + 1));
  pkt.outer_src_mac = MacAddr(rng.next_u64());
  pkt.outer_dst_mac = MacAddr(rng.next_u64());
  pkt.inner_src_mac = MacAddr(rng.next_u64());
  pkt.inner_dst_mac = MacAddr(rng.next_u64());
  pkt.outer_src_ip = Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
  pkt.outer_dst_ip = Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
  pkt.outer_udp_src_port = static_cast<std::uint16_t>(rng.uniform(65536));
  if (rng.chance(0.5)) {
    pkt.inner.src = Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
    pkt.inner.dst = Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
  } else {
    pkt.inner.src = Ipv6Addr(rng.next_u64(), rng.next_u64());
    pkt.inner.dst = Ipv6Addr(rng.next_u64(), rng.next_u64());
  }
  pkt.inner.proto = rng.chance(0.5) ? 6 : 17;
  pkt.inner.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
  pkt.inner.dst_port = static_cast<std::uint16_t>(rng.uniform(65536));
  pkt.payload_size = static_cast<std::uint16_t>(rng.uniform(1400));
  return pkt;
}

TEST(FuzzRoundTrip, PacketEncodeDecodeOnRandomFields) {
  workload::Rng rng(73);
  for (int i = 0; i < 500; ++i) {
    const OverlayPacket pkt = random_packet(rng);
    const auto bytes = encode(pkt);
    const auto decoded = decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->vni, pkt.vni);
    EXPECT_EQ(decoded->inner, pkt.inner);
    EXPECT_EQ(decoded->outer_src_ip, pkt.outer_src_ip);
    EXPECT_EQ(decoded->outer_dst_ip, pkt.outer_dst_ip);
    EXPECT_EQ(decoded->outer_dst_mac, pkt.outer_dst_mac);
    EXPECT_EQ(decoded->payload_size, pkt.payload_size);
  }
}

TEST(FuzzRoundTrip, DecodeNeverCrashesOnTruncation) {
  workload::Rng rng(74);
  const auto bytes = encode(random_packet(rng));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    // Any strict prefix either fails cleanly or yields a packet with a
    // shorter payload (truncation inside the payload is undetectable).
    const auto decoded =
        decode(std::span<const std::uint8_t>(bytes.data(), len));
    if (decoded.has_value()) {
      EXPECT_LT(decoded->payload_size, 1400 + 1);
    }
  }
}

TEST(FuzzRoundTrip, DecodeNeverCrashesOnBitFlips) {
  workload::Rng rng(75);
  const auto original = encode(random_packet(rng));
  for (int i = 0; i < 2'000; ++i) {
    auto bytes = original;
    // Flip 1-4 random bits; decode must not crash and, when it parses,
    // produce an internally consistent packet.
    const int flips = 1 + static_cast<int>(rng.uniform(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.uniform(bytes.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    const auto decoded = decode(bytes);
    if (decoded.has_value()) {
      EXPECT_LE(decoded->vni, kMaxVni);
    }
  }
}

TEST(FuzzRoundTrip, RssHashSpreadsRandomTuples) {
  workload::Rng rng(76);
  std::array<int, 64> buckets{};
  const int samples = 64 * 200;
  for (int i = 0; i < samples; ++i) {
    const OverlayPacket pkt = random_packet(rng);
    ++buckets[pkt.inner.rss_hash() % buckets.size()];
  }
  // Chi-squared-ish sanity: every bucket within 3x of the mean.
  for (int count : buckets) {
    EXPECT_GT(count, samples / 64 / 3);
    EXPECT_LT(count, samples / 64 * 3);
  }
}

}  // namespace
}  // namespace sf::net
