#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/hash.hpp"
#include "net/mac.hpp"

namespace sf::net {
namespace {

TEST(MacAddr, ParsesAndFormats) {
  const MacAddr mac = MacAddr::must_parse("02:00:0a:01:01:0b");
  EXPECT_EQ(mac.value(), 0x02000a01010bULL);
  EXPECT_EQ(mac.to_string(), "02:00:0a:01:01:0b");
}

TEST(MacAddr, RejectsMalformed) {
  for (const char* text :
       {"", "02:00:0a:01:01", "02:00:0a:01:01:0b:0c", "02-00-0a-01-01-0b",
        "0g:00:0a:01:01:0b", "2:0:a:1:1:b"}) {
    EXPECT_FALSE(MacAddr::parse(text).has_value()) << text;
  }
}

TEST(MacAddr, MulticastBit) {
  EXPECT_TRUE(MacAddr::must_parse("01:00:5e:00:00:01").is_multicast());
  EXPECT_FALSE(MacAddr::must_parse("02:00:00:00:00:01").is_multicast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
}

TEST(MacAddr, BytesRoundTrip) {
  const MacAddr mac = MacAddr::must_parse("de:ad:be:ef:00:42");
  auto bytes = mac.bytes();
  std::uint64_t rebuilt = 0;
  for (std::uint8_t b : bytes) rebuilt = (rebuilt << 8) | b;
  EXPECT_EQ(MacAddr(rebuilt), mac);
}

TEST(Crc32c, MatchesKnownVectors) {
  // RFC 3720 appendix B test vector: 32 bytes of zeros.
  std::array<std::uint8_t, 32> zeros{};
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  // "123456789" is the classic check value.
  const char* digits = "123456789";
  std::span<const std::uint8_t> span(
      reinterpret_cast<const std::uint8_t*>(digits), 9);
  EXPECT_EQ(crc32c(span), 0xe3069283u);
}

TEST(Crc32c, SeedChangesResult) {
  std::array<std::uint8_t, 4> data{1, 2, 3, 4};
  EXPECT_NE(crc32c(data, 0), crc32c(data, 1));
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t base = mix64(0x1234'5678'9abc'def0ULL);
  for (int bit = 0; bit < 64; bit += 7) {
    const std::uint64_t flipped =
        mix64(0x1234'5678'9abc'def0ULL ^ (1ULL << bit));
    const int differing = __builtin_popcountll(base ^ flipped);
    EXPECT_GT(differing, 16) << "bit " << bit;
    EXPECT_LT(differing, 48) << "bit " << bit;
  }
}

TEST(Digest, RespectsWidth) {
  const std::uint64_t d16 = digest(0x1234, 0x5678, 16);
  EXPECT_LT(d16, 1u << 16);
  const std::uint64_t d32 = digest(0x1234, 0x5678, 32);
  EXPECT_LT(d32, 1ULL << 32);
}

TEST(Digest, SeedSeparatesStreams) {
  EXPECT_NE(digest(1, 2, 32, 100), digest(1, 2, 32, 101));
}

TEST(HashIp, SeparatesFamilies) {
  // ::0.0.0.1 (v6) and 0.0.0.1 (v4) share widened bits but not hashes.
  EXPECT_NE(hash_ip(IpAddr(Ipv4Addr(1))), hash_ip(IpAddr(Ipv6Addr(0, 1))));
}

TEST(InternetChecksum, VerifiesIpv4Header) {
  // A canonical IPv4 header example (from RFC 1071 style examples).
  std::array<std::uint8_t, 20> header = {
      0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
      0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  const std::uint16_t sum = ipv4_header_checksum(header);
  EXPECT_EQ(sum, 0xb861);
  header[10] = static_cast<std::uint8_t>(sum >> 8);
  header[11] = static_cast<std::uint8_t>(sum);
  EXPECT_TRUE(ipv4_header_checksum_ok(header));
  header[4] ^= 0x01;  // corrupt
  EXPECT_FALSE(ipv4_header_checksum_ok(header));
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  std::array<std::uint8_t, 3> data{0x01, 0x02, 0x03};
  // Manually: words 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

}  // namespace
}  // namespace sf::net
