#include "net/packet.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace sf::net {
namespace {

OverlayPacket sample_packet() {
  OverlayPacket pkt;
  pkt.outer_src_mac = MacAddr::must_parse("02:00:00:00:00:01");
  pkt.outer_dst_mac = MacAddr::must_parse("02:00:00:00:00:02");
  pkt.outer_src_ip = IpAddr::must_parse("10.0.0.5");
  pkt.outer_dst_ip = IpAddr::must_parse("10.1.1.12");
  pkt.outer_udp_src_port = 33333;
  pkt.vni = 5001;
  pkt.inner_src_mac = MacAddr::must_parse("02:00:00:00:01:01");
  pkt.inner_dst_mac = MacAddr::must_parse("02:00:00:00:01:02");
  pkt.inner.src = IpAddr::must_parse("192.168.10.2");
  pkt.inner.dst = IpAddr::must_parse("192.168.10.3");
  pkt.inner.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  pkt.inner.src_port = 45000;
  pkt.inner.dst_port = 443;
  pkt.payload_size = 100;
  return pkt;
}

TEST(Headers, EthernetRoundTrip) {
  EthernetHeader hdr{MacAddr::must_parse("aa:bb:cc:dd:ee:ff"),
                     MacAddr::must_parse("11:22:33:44:55:66"), 0x0800};
  std::array<std::uint8_t, EthernetHeader::kSize> buf{};
  hdr.write(buf);
  auto parsed = EthernetHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, hdr.dst);
  EXPECT_EQ(parsed->src, hdr.src);
  EXPECT_EQ(parsed->ether_type, hdr.ether_type);
}

TEST(Headers, Ipv6RoundTrip) {
  Ipv6Header hdr;
  hdr.payload_length = 1234;
  hdr.next_header = 17;
  hdr.hop_limit = 7;
  hdr.flow_label = 0xabcde;
  hdr.src = Ipv6Addr::must_parse("2001:db8::1");
  hdr.dst = Ipv6Addr::must_parse("2001:db8::2");
  std::array<std::uint8_t, Ipv6Header::kSize> buf{};
  hdr.write(buf);
  auto parsed = Ipv6Header::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, hdr.src);
  EXPECT_EQ(parsed->dst, hdr.dst);
  EXPECT_EQ(parsed->flow_label, hdr.flow_label);
  EXPECT_EQ(parsed->payload_length, hdr.payload_length);
}

TEST(Headers, VxlanRequiresVniFlag) {
  VxlanHeader hdr{VxlanHeader::kFlagVni, 0xabcdef};
  std::array<std::uint8_t, VxlanHeader::kSize> buf{};
  hdr.write(buf);
  auto parsed = VxlanHeader::parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->vni, 0xabcdefu);
  buf[0] = 0;  // clear the I bit
  EXPECT_FALSE(VxlanHeader::parse(buf).has_value());
}

TEST(Headers, ParseRejectsShortBuffers) {
  std::array<std::uint8_t, 4> tiny{};
  EXPECT_FALSE(EthernetHeader::parse(tiny).has_value());
  EXPECT_FALSE(Ipv4Header::parse(tiny).has_value());
  EXPECT_FALSE(Ipv6Header::parse(tiny).has_value());
  EXPECT_FALSE(TcpHeader::parse(tiny).has_value());
  EXPECT_FALSE(VxlanHeader::parse(tiny).has_value());
}

TEST(OverlayPacket, WireSizeAddsUp) {
  const OverlayPacket pkt = sample_packet();
  // eth(14)+ip4(20)+udp(8)+vxlan(8)+eth(14)+ip4(20)+tcp(20)+payload(100)
  EXPECT_EQ(pkt.wire_size(), 14u + 20 + 8 + 8 + 14 + 20 + 20 + 100);
}

TEST(OverlayPacket, EncodeDecodeRoundTrip) {
  const OverlayPacket pkt = sample_packet();
  const std::vector<std::uint8_t> bytes = encode(pkt);
  EXPECT_EQ(bytes.size(), pkt.wire_size());
  auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->vni, pkt.vni);
  EXPECT_EQ(decoded->inner.src, pkt.inner.src);
  EXPECT_EQ(decoded->inner.dst, pkt.inner.dst);
  EXPECT_EQ(decoded->inner.src_port, pkt.inner.src_port);
  EXPECT_EQ(decoded->inner.dst_port, pkt.inner.dst_port);
  EXPECT_EQ(decoded->outer_src_ip, pkt.outer_src_ip);
  EXPECT_EQ(decoded->outer_dst_ip, pkt.outer_dst_ip);
  EXPECT_EQ(decoded->payload_size, pkt.payload_size);
}

TEST(OverlayPacket, EncodeDecodeRoundTripIpv6Inner) {
  OverlayPacket pkt = sample_packet();
  pkt.inner.src = IpAddr::must_parse("2001:db8::2");
  pkt.inner.dst = IpAddr::must_parse("2001:db8::3");
  pkt.inner.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  auto decoded = decode(encode(pkt));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->inner.src, pkt.inner.src);
  EXPECT_EQ(decoded->inner.dst, pkt.inner.dst);
}

TEST(OverlayPacket, EncodedIpv4ChecksumsVerify) {
  const std::vector<std::uint8_t> bytes = encode(sample_packet());
  std::span<const std::uint8_t> outer_ip(bytes.data() + 14, 20);
  EXPECT_TRUE(ipv4_header_checksum_ok(outer_ip));
}

TEST(OverlayPacket, DecodeRejectsNonVxlanPort) {
  std::vector<std::uint8_t> bytes = encode(sample_packet());
  // UDP dst port lives at offset 14 (eth) + 20 (ip) + 2.
  bytes[14 + 20 + 2] = 0x12;
  bytes[14 + 20 + 3] = 0x34;
  // The IPv4 checksum does not cover UDP, so only the port check trips.
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(OverlayPacket, DecodeRejectsCorruptChecksum) {
  std::vector<std::uint8_t> bytes = encode(sample_packet());
  bytes[14 + 8] ^= 0xff;  // outer TTL: breaks the header checksum
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(OverlayPacket, DecodeRejectsTruncation) {
  const std::vector<std::uint8_t> bytes = encode(sample_packet());
  for (std::size_t cut : {5ul, 20ul, 40ul, 60ul, 80ul}) {
    std::span<const std::uint8_t> truncated(bytes.data(), cut);
    EXPECT_FALSE(decode(truncated).has_value()) << cut;
  }
}

}  // namespace
}  // namespace sf::net
