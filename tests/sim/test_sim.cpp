#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hpp"
#include "sim/table_printer.hpp"
#include "sim/timeseries.hpp"

namespace sf::sim {
namespace {

TEST(Stats, MeanAndStddev) {
  const double values[] = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_NEAR(stddev(values), 2.138, 0.01);
}

TEST(Stats, EmptyInputsAreSafe) {
  std::span<const double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(stddev(empty), 0.0);
  EXPECT_EQ(percentile(empty, 50), 0.0);
  EXPECT_EQ(fairness_index(empty), 1.0);
}

TEST(Stats, PercentileInterpolates) {
  const double values[] = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 25.0);
}

TEST(Stats, PercentileIgnoresInputOrder) {
  const double values[] = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(values, 50), 25.0);
}

TEST(Stats, PercentileSingleElementIsThatElement) {
  const double one[] = {42.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 100), 42.0);
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  const double values[] = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(values, -5), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 250), 40.0);
}

TEST(Stats, PercentileNanPropagates) {
  const double values[] = {10, 20, 30};
  EXPECT_TRUE(std::isnan(percentile(values, std::nan(""))));
}

TEST(Stats, FairnessIndexBounds) {
  const double balanced[] = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(fairness_index(balanced), 1.0);
  const double skewed[] = {20, 0, 0, 0};
  EXPECT_DOUBLE_EQ(fairness_index(skewed), 0.25);  // 1/n when one-hot
}

TEST(TimeSeries, RecordsAndSummarizes) {
  TimeSeries series("drop_rate");
  for (int i = 0; i < 10; ++i) series.record(i, i * 1.0);
  EXPECT_EQ(series.points().size(), 10u);
  EXPECT_DOUBLE_EQ(series.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(series.max_value(), 9.0);
  EXPECT_DOUBLE_EQ(series.mean_value(), 4.5);
}

TEST(TimeSeries, DownsampleAverages) {
  TimeSeries series("s");
  for (int i = 0; i < 100; ++i) series.record(i, 1.0);
  const auto samples = series.downsample(10);
  ASSERT_EQ(samples.size(), 10u);
  for (double v : samples) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(TimeSeries, SparklineRendersSomething) {
  TimeSeries series("load");
  for (int i = 0; i < 50; ++i) series.record(i, i % 7);
  const std::string line = sparkline(series, 40);
  EXPECT_NE(line.find("load:"), std::string::npos);
  EXPECT_NE(line.find("max"), std::string::npos);
}

TEST(TimeSeries, CsvHasHeaderAndRows) {
  TimeSeries a("a");
  TimeSeries b("b");
  a.record(0, 1);
  a.record(1, 2);
  b.record(0, 3);
  const std::string csv = to_csv({&a, &b});
  EXPECT_NE(csv.find("time,a,b"), std::string::npos);
  EXPECT_NE(csv.find("0,1,3"), std::string::npos);
  EXPECT_NE(csv.find("1,2,"), std::string::npos);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, PadsMissingCells) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"1"});
  const std::string out = table.render();
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(Format, Helpers) {
  EXPECT_EQ(format_percent(0.1234), "12.3%");
  EXPECT_EQ(format_double(3.14159, 3), "3.142");
  EXPECT_EQ(format_si(3.2e12, "bps"), "3.2 Tbps");
  EXPECT_EQ(format_si(25e6, "pps"), "25 Mpps");
}

}  // namespace
}  // namespace sf::sim
