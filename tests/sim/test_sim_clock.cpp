// sf::sim::SimClock and the saturating time helpers (DESIGN.md §17): the
// week-scale soak must survive µs conversions past the uint32 range,
// backward timestamps from merged event streams, and stalled tick loops.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/sim_clock.hpp"

namespace sf::sim {
namespace {

TEST(ToMicros, ConvertsAndSaturates) {
  EXPECT_EQ(to_micros(0.0), 0u);
  EXPECT_EQ(to_micros(1.0), 1'000'000u);
  EXPECT_EQ(to_micros(1.5e-6), 1u);
  // A full simulated week must be nowhere near saturation.
  EXPECT_EQ(to_micros(kWeekSeconds), 604'800'000'000u);
  // Negative and NaN timestamps are "no time", never a wrap.
  EXPECT_EQ(to_micros(-3.0), 0u);
  EXPECT_EQ(to_micros(std::nan("")), 0u);
  // Far past the uint64 range: clamps to max instead of wrapping.
  EXPECT_EQ(to_micros(1e200),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ElapsedS, ClampsBackwardClocks) {
  EXPECT_DOUBLE_EQ(elapsed_s(10.0, 4.0), 6.0);
  EXPECT_DOUBLE_EQ(elapsed_s(4.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(elapsed_s(7.0, 7.0), 0.0);
}

TEST(SaturatingArithmetic, AddAndSub) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(saturating_add_us(2, 3), 5u);
  EXPECT_EQ(saturating_add_us(max, 1), max);
  EXPECT_EQ(saturating_add_us(max - 4, 10), max);
  EXPECT_EQ(saturating_sub_us(10, 4), 6u);
  EXPECT_EQ(saturating_sub_us(4, 10), 0u);
  EXPECT_EQ(saturating_sub_us(0, max), 0u);
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  EXPECT_DOUBLE_EQ(clock.advance_to(5.0), 5.0);
  EXPECT_DOUBLE_EQ(clock.advance_by(2.5), 7.5);
  EXPECT_EQ(clock.micros(), 7'500'000u);
  EXPECT_EQ(clock.regressions(), 0u);
}

TEST(SimClock, BackwardAdvanceHoldsAndCounts) {
  SimClock clock(100.0);
  // A replayed event stream hands the clock an old timestamp: the clock
  // holds, the caller sees the clamped time, and the regression counts.
  EXPECT_DOUBLE_EQ(clock.advance_to(40.0), 100.0);
  EXPECT_DOUBLE_EQ(clock.now(), 100.0);
  EXPECT_DOUBLE_EQ(clock.advance_by(-10.0), 100.0);
  EXPECT_EQ(clock.regressions(), 2u);
  // Forward motion resumes normally afterwards.
  EXPECT_DOUBLE_EQ(clock.advance_to(101.0), 101.0);
  EXPECT_EQ(clock.regressions(), 2u);
}

TEST(SimClock, StalledClockIsAFixedPoint) {
  SimClock clock(50.0);
  // "No time passed" must not drift: equal timestamps and zero steps are
  // not regressions and do not move the clock.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(clock.advance_to(50.0), 50.0);
    EXPECT_DOUBLE_EQ(clock.advance_by(0.0), 50.0);
  }
  EXPECT_DOUBLE_EQ(clock.now(), 50.0);
  EXPECT_EQ(clock.regressions(), 0u);
}

TEST(SimClock, WeekScaleMicrosStayExact) {
  SimClock clock;
  // 1008 ten-minute intervals: the soak's stride pattern, microsecond
  // conversions staying exact (double holds integers to 2^53).
  for (int i = 1; i <= 1008; ++i) clock.advance_to(600.0 * i);
  EXPECT_DOUBLE_EQ(clock.now(), kWeekSeconds);
  EXPECT_EQ(clock.micros(), 604'800'000'000u);
  EXPECT_EQ(clock.regressions(), 0u);
}

}  // namespace
}  // namespace sf::sim
