// ChaosTimeline — the interval-granular composed chaos scheduler
// (DESIGN.md §17): schedules are a pure function of (seed, config), a
// quickstart region steps through a full drawn day and comes out of the
// settle window leak-free, and the per-kind event census matches the
// schedule it was drawn from.

#include "soak/timeline.hpp"

#include <gtest/gtest.h>

#include "core/sailfish.hpp"

namespace sf::soak {
namespace {

ChaosTimeline::Config day_config(const core::SailfishSystem& system,
                                 std::uint64_t seed) {
  ChaosTimeline::Config config;
  config.seed = seed;
  config.horizon_s = 86400.0;  // one simulated day
  config.events_per_day = 8.0;
  for (std::size_t i = 0;
       i < system.topology.vpcs.size() && config.tenant_vnis.size() < 8; ++i) {
    config.tenant_vnis.push_back(system.topology.vpcs[i].vni);
  }
  for (const workload::VpcRecord& vpc : system.topology.vpcs) {
    if (config.migratable_vms.size() >= 16) break;
    if (vpc.vms.empty()) continue;
    config.migratable_vms.push_back(
        tables::VmNcKey{vpc.vni, vpc.vms.front().ip});
  }
  return config;
}

TEST(ChaosTimeline, SchedulesAreAPureFunctionOfSeedAndConfig) {
  core::SailfishSystem a = core::make_system(core::quickstart_options());
  core::SailfishSystem b = core::make_system(core::quickstart_options());
  ChaosTimeline first(*a.region, day_config(a, 42));
  ChaosTimeline second(*b.region, day_config(b, 42));
  ASSERT_FALSE(first.schedule().empty());
  EXPECT_EQ(first.schedule().to_string(), second.schedule().to_string());

  // A different seed must draw a different schedule.
  core::SailfishSystem c = core::make_system(core::quickstart_options());
  ChaosTimeline third(*c.region, day_config(c, 43));
  EXPECT_NE(first.schedule().to_string(), third.schedule().to_string());
}

TEST(ChaosTimeline, EventCensusMatchesTheDrawnSchedule) {
  core::SailfishSystem system = core::make_system(core::quickstart_options());
  ChaosTimeline timeline(*system.region, day_config(system, 7));
  std::size_t counted = 0;
  for (const auto& [kind, count] : timeline.event_counts()) {
    EXPECT_GT(count, 0u) << kind;
    counted += count;
  }
  EXPECT_EQ(counted, timeline.schedule().size());
  // A day at 8 events/day composes more than one fault kind.
  EXPECT_GE(timeline.event_counts().size(), 2u);
}

TEST(ChaosTimeline, FullDayStepsFireEverythingAndSettleLeakFree) {
  core::SailfishSystem system = core::make_system(core::quickstart_options());
  const ChaosTimeline::Config config = day_config(system, 11);
  ChaosTimeline timeline(*system.region, config);

  const std::size_t intervals =
      static_cast<std::size_t>(config.horizon_s / config.interval_s);
  std::size_t fired = 0;
  std::size_t stormed_intervals = 0;
  for (std::size_t i = 0; i < intervals; ++i) {
    const ChaosTimeline::StepResult step =
        timeline.step(static_cast<double>(i) * config.interval_s);
    fired += step.events_fired;
    if (!step.active_storms.empty()) {
      ++stormed_intervals;
      // Storm specs come out ascending-VNI with sane multipliers.
      for (std::size_t s = 1; s < step.active_storms.size(); ++s) {
        EXPECT_LT(step.active_storms[s - 1].vni, step.active_storms[s].vni);
      }
      for (const StormSpec& storm : step.active_storms) {
        EXPECT_GE(storm.multiplier, config.storm_multiplier_min);
        EXPECT_LE(storm.multiplier, config.storm_multiplier_max);
      }
    }
  }
  EXPECT_EQ(fired, timeline.schedule().size());
  EXPECT_EQ(timeline.events_fired(), timeline.schedule().size());

  // Settle past the horizon so detection/recovery hysteresis unwinds,
  // then demand a leak-free final audit.
  double t = static_cast<double>(intervals) * config.interval_s;
  for (int settle = 0; settle < 12; ++settle, t += config.interval_s) {
    timeline.step(t);
  }
  const std::vector<std::string> leaks = timeline.final_audit(t);
  EXPECT_TRUE(leaks.empty()) << leaks.front();
  // The drawn storms were actually delivered to some interval.
  if (timeline.event_counts().count("tenant-storm") > 0) {
    EXPECT_GT(stormed_intervals, 0u);
  }
}

}  // namespace
}  // namespace sf::soak
