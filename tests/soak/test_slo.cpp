// SloLedger — the per-tenant availability accounting the soak report
// renders (DESIGN.md §17): guard sheds land on the stormer's own ledger,
// unattributed region drops spread uniformly over offered rates, storm
// tenants are exempt from the budget alarm, and the week percentiles are
// served-packet-weighted over the interval samples.

#include "soak/slo.hpp"

#include <gtest/gtest.h>

namespace sf::soak {
namespace {

using core::SailfishRegion;
using guard::TenantGuard;
using guard::Tier;

constexpr double kInterval = 600.0;

TenantGuard::TenantInterval tenant_row(net::Vni vni, double offered_pps,
                                       double shed_pps,
                                       Tier tier = Tier::kFull) {
  TenantGuard::TenantInterval row;
  row.vni = vni;
  row.offered_pps = offered_pps;
  row.shed_pps = shed_pps;
  row.tier = tier;
  return row;
}

TEST(SloLedger, AttributesShedsDirectlyAndRemainderUniformly) {
  SloLedger ledger(SloLedger::Config{/*drop_budget=*/2e-3});
  SailfishRegion::IntervalReport interval;
  interval.offered_pps = 5000;  // includes unmetered tenants
  interval.dropped_pps = 350;   // 100 guard sheds + 250 unattributed
  interval.guard_shed_pps = 100;
  interval.guard_tenants = {tenant_row(10, 1000, 100, Tier::kShedNewFlows),
                            tenant_row(20, 3000, 0)};
  ledger.record_interval(kInterval, interval, /*storm_vnis=*/{});

  // Unattributed fraction = 250 / 5000 = 5%: tenant 10 absorbs its own
  // sheds plus 5% of its offered rate; tenant 20 only the uniform share.
  ASSERT_EQ(ledger.tenants().size(), 2u);
  const TenantSlo& a = ledger.tenants().at(10);
  EXPECT_DOUBLE_EQ(a.offered_pkts, 1000 * kInterval);
  EXPECT_DOUBLE_EQ(a.shed_pkts, 100 * kInterval);
  EXPECT_DOUBLE_EQ(a.dropped_pkts, (100 + 0.05 * 1000) * kInterval);
  EXPECT_DOUBLE_EQ(a.drop_fraction(), 0.15);
  const TenantSlo& b = ledger.tenants().at(20);
  EXPECT_DOUBLE_EQ(b.dropped_pkts, 0.05 * 3000 * kInterval);
  EXPECT_DOUBLE_EQ(b.drop_fraction(), 0.05);
  EXPECT_DOUBLE_EQ(b.availability(), 0.95);

  // Region-level aggregates fold in packets, not rates.
  EXPECT_DOUBLE_EQ(ledger.offered_pkts(), 5000 * kInterval);
  EXPECT_DOUBLE_EQ(ledger.dropped_pkts(), 350 * kInterval);
  EXPECT_EQ(ledger.intervals(), 1u);
  // Tier time-in-state follows the end-of-interval tier.
  EXPECT_DOUBLE_EQ(a.tier_seconds[1], kInterval);
  EXPECT_DOUBLE_EQ(b.tier_seconds[0], kInterval);
}

TEST(SloLedger, StormTenantsAreExemptFromTheBudget) {
  SloLedger ledger(SloLedger::Config{/*drop_budget=*/1e-2});
  SailfishRegion::IntervalReport interval;
  interval.offered_pps = 2000;
  interval.dropped_pps = 600;
  interval.guard_shed_pps = 500;
  // The stormer sheds half its traffic; the victim absorbs only the
  // uniform remainder (100 / 2000 = 5%), still over the 1% budget.
  interval.guard_tenants = {tenant_row(7, 1000, 500, Tier::kShedTenant),
                            tenant_row(8, 1000, 0)};
  ledger.record_interval(kInterval, interval, /*storm_vnis=*/{7});

  const TenantSlo& stormer = ledger.tenants().at(7);
  EXPECT_TRUE(stormer.stormed());
  EXPECT_GT(stormer.drop_fraction(), 0.5);
  EXPECT_TRUE(stormer.in_budget(1e-2));  // exempt: the defense working
  const TenantSlo& victim = ledger.tenants().at(8);
  EXPECT_FALSE(victim.stormed());
  EXPECT_FALSE(victim.in_budget(1e-2));
  // Only the non-storm violator alarms.
  const std::vector<net::Vni> violations = ledger.budget_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], 8u);
}

TEST(SloLedger, WeekPercentilesAreServedPacketWeighted) {
  SloLedger ledger(SloLedger::Config{});
  // 98 packets' worth of intervals at 10 us and 2 at 100 us: the 99th
  // weighted percentile must land on the slow sample. A zero-latency
  // interval (nothing on the latency-bearing paths) contributes nothing.
  SailfishRegion::IntervalReport fast;
  fast.offered_pps = 98;
  fast.p99_latency_us = 10;
  fast.p999_latency_us = 20;
  SailfishRegion::IntervalReport slow;
  slow.offered_pps = 2;
  slow.p99_latency_us = 100;
  slow.p999_latency_us = 200;
  SailfishRegion::IntervalReport idle;  // p99 == 0: skipped
  ledger.record_interval(1.0, fast, {});
  ledger.record_interval(1.0, slow, {});
  ledger.record_interval(1.0, idle, {});
  EXPECT_DOUBLE_EQ(ledger.week_p99_latency_us(), 100.0);
  EXPECT_DOUBLE_EQ(ledger.week_p999_latency_us(), 200.0);

  // Flip the weights: with only 1% of packets on the slow sample, p99
  // stays on the fast one.
  SloLedger mostly_fast(SloLedger::Config{});
  fast.offered_pps = 99;
  slow.offered_pps = 1;
  mostly_fast.record_interval(1.0, fast, {});
  mostly_fast.record_interval(1.0, slow, {});
  EXPECT_DOUBLE_EQ(mostly_fast.week_p99_latency_us(), 10.0);
}

TEST(SloLedger, PuntAndDropAggregatesTrackExtremes) {
  SloLedger ledger(SloLedger::Config{});
  for (int i = 0; i < 4; ++i) {
    SailfishRegion::IntervalReport interval;
    interval.offered_pps = 100;
    interval.drop_rate = 0.001 * (i + 1);
    interval.punt_queue_occupancy = 0.2 * (i + 1);
    ledger.record_interval(kInterval, interval, {});
  }
  EXPECT_EQ(ledger.intervals(), 4u);
  EXPECT_DOUBLE_EQ(ledger.peak_drop_rate(), 0.004);
  EXPECT_DOUBLE_EQ(ledger.punt_occupancy_max(), 0.8);
  EXPECT_DOUBLE_EQ(ledger.punt_occupancy_mean(), 0.5);
  // No latency-bearing intervals: the week percentiles stay zero.
  EXPECT_DOUBLE_EQ(ledger.week_p99_latency_us(), 0.0);
  EXPECT_TRUE(ledger.budget_violations().empty());
}

}  // namespace
}  // namespace sf::soak
