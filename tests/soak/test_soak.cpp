// SoakEngine end to end, compressed: a short multi-region soak must come
// out violation-free with every non-storm tenant inside its drop budget,
// and two runs differing only in interval-engine thread count must render
// byte-identical reports — the regression canary bench_soak enforces at
// week scale, kept here at a size ctest can afford.

#include "soak/soak.hpp"

#include <gtest/gtest.h>

namespace sf::soak {
namespace {

SoakEngine::Config short_config(std::size_t threads) {
  SoakEngine::Config config;
  config.seed = 5;
  config.regions = 2;
  config.sim_hours = 3.0;  // 18 recorded intervals per region
  config.interval_threads = threads;
  config.warmup_intervals = 1;
  config.settle_intervals = 6;
  // Collect violations instead of aborting so a regression shows up as a
  // readable test failure, not a process death.
  config.fatal_on_violation = false;
  return config;
}

TEST(SoakEngine, ShortSoakPassesCleanAcrossRegions) {
  SoakEngine engine(short_config(1));
  const SoakEngine::Report report = engine.run();

  EXPECT_EQ(report.regions, 2u);
  EXPECT_EQ(report.intervals, 18u);
  EXPECT_TRUE(report.pass) << report.to_json();
  EXPECT_EQ(report.total_violations, 0u);
  EXPECT_EQ(report.total_budget_violations, 0u);

  ASSERT_EQ(report.region_summaries.size(), 2u);
  for (const SoakEngine::RegionSummary& region : report.region_summaries) {
    EXPECT_TRUE(region.violations.empty());
    EXPECT_TRUE(region.budget_violations.empty());
    EXPECT_GT(region.offered_pkts, 0.0);
    EXPECT_GE(region.availability, 0.0);
    EXPECT_LE(region.availability, 1.0);
    // Audits ran every interval (warmup + recorded + settle).
    EXPECT_GE(region.audits_run, 18u);
    // The SNAT stream ran and the ledger metered real tenants.
    EXPECT_GT(region.snat_sessions, 0u);
    EXPECT_FALSE(region.tenants.empty());
    for (const TenantSlo& tenant : region.tenants) {
      EXPECT_TRUE(tenant.in_budget(report.drop_budget))
          << "vni " << tenant.vni;
    }
  }
}

TEST(SoakEngine, ReportIsByteIdenticalAcrossThreadCounts) {
  SoakEngine one(short_config(1));
  SoakEngine eight(short_config(8));
  const std::string a = one.run().to_json();
  const std::string b = eight.run().to_json();
  EXPECT_EQ(a, b);
  // Sanity on the rendering itself: the canary compares these bytes, so
  // the stable sections must actually be present.
  EXPECT_NE(a.find("\"region_reports\""), std::string::npos);
  EXPECT_NE(a.find("\"tenants\""), std::string::npos);
  EXPECT_NE(a.find("\"pass\": true"), std::string::npos);
}

}  // namespace
}  // namespace sf::soak
