// InvariantAuditor — the soak's between-intervals backstop (DESIGN.md
// §17): a healthy region audits clean in both light and strict mode, a
// nonsense interval report is caught by the bounds sweep, and violations
// accumulate on the auditor's lifetime ledger.

#include "soak/auditor.hpp"

#include <gtest/gtest.h>

#include "core/sailfish.hpp"

namespace sf::soak {
namespace {

TEST(InvariantAuditor, HealthyRegionAuditsCleanInBothModes) {
  core::SailfishSystem system = core::make_system(core::quickstart_options());
  InvariantAuditor auditor(*system.region, system.flows,
                           InvariantAuditor::Config{/*probe_flows=*/8});

  // Light sweep right after install, strict sweep once the control plane
  // is idle (make_system installs synchronously — nothing is deferred).
  EXPECT_TRUE(auditor.audit(0.0, /*strict=*/false).empty());
  EXPECT_TRUE(auditor.audit(600.0, /*strict=*/true).empty());
  EXPECT_EQ(auditor.audits_run(), 2u);
  EXPECT_EQ(auditor.strict_audits_run(), 1u);
  EXPECT_TRUE(auditor.all_violations().empty());
}

TEST(InvariantAuditor, StaysCleanAcrossSimulatedIntervals) {
  core::SailfishSystem system = core::make_system(core::quickstart_options());
  InvariantAuditor auditor(*system.region, system.flows,
                           InvariantAuditor::Config{/*probe_flows=*/8});

  // Drive real intervals between audits — the cache-coherence probes run
  // against tables that actually served traffic.
  for (int i = 0; i < 3; ++i) {
    const auto interval =
        system.region->simulate_interval(system.flows, 1e11, i);
    const auto violations =
        auditor.audit(600.0 * (i + 1), /*strict=*/true, &interval);
    EXPECT_TRUE(violations.empty())
        << "interval " << i << ": " << violations.front();
  }
  EXPECT_EQ(auditor.strict_audits_run(), 3u);
}

TEST(InvariantAuditor, FlagsOutOfBoundsIntervalReports) {
  core::SailfishSystem system = core::make_system(core::quickstart_options());
  InvariantAuditor auditor(*system.region, system.flows,
                           InvariantAuditor::Config{/*probe_flows=*/4});

  core::SailfishRegion::IntervalReport bad;
  bad.offered_pps = -1;              // negative rate
  bad.drop_rate = 1.5;               // ratio outside [0, 1]
  bad.p99_latency_us = 50;
  bad.p999_latency_us = 10;          // p999 < p99
  const auto violations = auditor.audit(600.0, /*strict=*/false, &bad);
  EXPECT_GE(violations.size(), 3u);
  // The lifetime ledger keeps everything ever found.
  EXPECT_EQ(auditor.all_violations().size(), violations.size());

  // A clean follow-up sweep adds nothing more.
  const std::size_t before = auditor.all_violations().size();
  EXPECT_TRUE(auditor.audit(1200.0, /*strict=*/false).empty());
  EXPECT_EQ(auditor.all_violations().size(), before);
}

}  // namespace
}  // namespace sf::soak
