#include "tables/dir24_8.hpp"

#include <gtest/gtest.h>

#include "tables/lpm_trie.hpp"
#include "workload/rng.hpp"

namespace sf::tables {
namespace {

using net::Ipv4Addr;
using net::Ipv4Prefix;

TEST(Dir24_8, BasicLongestMatch) {
  Dir24_8 lpm;
  EXPECT_TRUE(lpm.insert(Ipv4Prefix::must_parse("10.0.0.0/8"), 8));
  EXPECT_TRUE(lpm.insert(Ipv4Prefix::must_parse("10.1.0.0/16"), 16));
  EXPECT_TRUE(lpm.insert(Ipv4Prefix::must_parse("10.1.2.0/24"), 24));
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("10.1.2.3")), 24u);
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("10.1.9.9")), 16u);
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("10.9.9.9")), 8u);
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("11.0.0.1")), std::nullopt);
}

TEST(Dir24_8, HostRoutesUseSecondLevel) {
  Dir24_8 lpm;
  EXPECT_EQ(lpm.group_count(), 0u);
  lpm.insert(Ipv4Prefix::must_parse("192.168.1.0/24"), 100);
  EXPECT_EQ(lpm.group_count(), 0u);  // /24 stays in level 1
  lpm.insert(Ipv4Prefix::must_parse("192.168.1.5/32"), 200);
  EXPECT_EQ(lpm.group_count(), 1u);
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("192.168.1.5")), 200u);
  // The /24 still covers the rest of the group.
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("192.168.1.6")), 100u);
}

TEST(Dir24_8, GroupCollapsesWhenDeepRoutesLeave) {
  Dir24_8 lpm;
  lpm.insert(Ipv4Prefix::must_parse("192.168.1.0/24"), 100);
  lpm.insert(Ipv4Prefix::must_parse("192.168.1.128/25"), 200);
  EXPECT_EQ(lpm.group_count(), 1u);
  EXPECT_TRUE(lpm.remove(Ipv4Prefix::must_parse("192.168.1.128/25")));
  EXPECT_EQ(lpm.group_count(), 0u);
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("192.168.1.200")), 100u);
}

TEST(Dir24_8, RemoveExposesCover) {
  Dir24_8 lpm;
  lpm.insert(Ipv4Prefix::must_parse("10.0.0.0/8"), 8);
  lpm.insert(Ipv4Prefix::must_parse("10.1.0.0/16"), 16);
  EXPECT_TRUE(lpm.remove(Ipv4Prefix::must_parse("10.1.0.0/16")));
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("10.1.1.1")), 8u);
  EXPECT_FALSE(lpm.remove(Ipv4Prefix::must_parse("10.1.0.0/16")));
  EXPECT_EQ(lpm.route_count(), 1u);
}

TEST(Dir24_8, DeepRemoveExposesDeeperCoverInsideGroup) {
  Dir24_8 lpm;
  lpm.insert(Ipv4Prefix::must_parse("10.1.2.0/25"), 25);
  lpm.insert(Ipv4Prefix::must_parse("10.1.2.0/26"), 26);
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("10.1.2.1")), 26u);
  EXPECT_TRUE(lpm.remove(Ipv4Prefix::must_parse("10.1.2.0/26")));
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("10.1.2.1")), 25u);
}

TEST(Dir24_8, DefaultRoute) {
  Dir24_8 lpm;
  lpm.insert(Ipv4Prefix::must_parse("0.0.0.0/0"), 7);
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("203.0.113.9")), 7u);
  lpm.remove(Ipv4Prefix::must_parse("0.0.0.0/0"));
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("203.0.113.9")), std::nullopt);
}

TEST(Dir24_8, ReplaceUpdatesValue) {
  Dir24_8 lpm;
  lpm.insert(Ipv4Prefix::must_parse("10.0.0.0/8"), 1);
  lpm.insert(Ipv4Prefix::must_parse("10.0.0.0/8"), 2);
  EXPECT_EQ(lpm.route_count(), 1u);
  EXPECT_EQ(lpm.lookup(Ipv4Addr::must_parse("10.0.0.1")), 2u);
}

TEST(Dir24_8, RejectsOversizedValues) {
  Dir24_8 lpm;
  EXPECT_FALSE(lpm.insert(Ipv4Prefix::must_parse("10.0.0.0/8"),
                          Dir24_8::kMaxValue + 1));
  EXPECT_EQ(lpm.route_count(), 0u);
}

TEST(Dir24_8, FuzzAgainstTrie) {
  Dir24_8 lpm;
  LpmTrie<std::uint32_t> trie;
  workload::Rng rng(55);

  struct Installed {
    Ipv4Prefix prefix;
  };
  std::vector<Installed> installed;

  // Cluster prefixes in a small region of the space so the fuzz exercises
  // overlapping covers, group churn and collapses.
  auto random_prefix = [&]() {
    const unsigned length = 8 + static_cast<unsigned>(rng.uniform(25));
    const std::uint32_t addr =
        (10u << 24) | (static_cast<std::uint32_t>(rng.uniform(4)) << 16) |
        (static_cast<std::uint32_t>(rng.uniform(16)) << 8) |
        static_cast<std::uint32_t>(rng.uniform(256));
    return Ipv4Prefix(Ipv4Addr(addr), length);
  };

  for (int op = 0; op < 3'000; ++op) {
    const int roll = static_cast<int>(rng.uniform(10));
    if (roll < 6 || installed.empty()) {
      const Ipv4Prefix prefix = random_prefix();
      const std::uint32_t value =
          static_cast<std::uint32_t>(rng.uniform(1 << 24));
      lpm.insert(prefix, value);
      trie.insert(0, prefix, value);
      installed.push_back({prefix});
    } else {
      const std::size_t victim = rng.uniform(installed.size());
      const Ipv4Prefix prefix = installed[victim].prefix;
      EXPECT_EQ(lpm.remove(prefix), trie.remove(0, prefix));
      installed.erase(installed.begin() +
                      static_cast<std::ptrdiff_t>(victim));
    }
    if (op % 50 == 0) {
      for (int probe = 0; probe < 30; ++probe) {
        const Ipv4Addr addr(
            (10u << 24) |
            (static_cast<std::uint32_t>(rng.uniform(4)) << 16) |
            static_cast<std::uint32_t>(rng.uniform(1 << 16)));
        EXPECT_EQ(lpm.lookup(addr), trie.lookup(0, net::IpAddr(addr)))
            << addr.to_string();
      }
    }
  }
  EXPECT_EQ(lpm.route_count(), trie.size());
}

}  // namespace
}  // namespace sf::tables
