#include "tables/lpm_trie.hpp"

#include <gtest/gtest.h>

namespace sf::tables {
namespace {

using net::IpAddr;
using net::IpPrefix;
using net::Vni;

IpPrefix p4(const char* text) { return IpPrefix::must_parse(text); }
IpAddr a(const char* text) { return IpAddr::must_parse(text); }

TEST(LpmTrie, LongestPrefixWins) {
  LpmTrie<int> trie;
  trie.insert(1, p4("10.0.0.0/8"), 8);
  trie.insert(1, p4("10.1.0.0/16"), 16);
  trie.insert(1, p4("10.1.2.0/24"), 24);
  EXPECT_EQ(trie.lookup(1, a("10.1.2.3")), 24);
  EXPECT_EQ(trie.lookup(1, a("10.1.9.9")), 16);
  EXPECT_EQ(trie.lookup(1, a("10.9.9.9")), 8);
  EXPECT_EQ(trie.lookup(1, a("11.0.0.1")), std::nullopt);
}

TEST(LpmTrie, VniScopesTheTables) {
  LpmTrie<int> trie;
  trie.insert(1, p4("10.0.0.0/8"), 100);
  trie.insert(2, p4("10.0.0.0/8"), 200);
  EXPECT_EQ(trie.lookup(1, a("10.1.1.1")), 100);
  EXPECT_EQ(trie.lookup(2, a("10.1.1.1")), 200);
  EXPECT_EQ(trie.lookup(3, a("10.1.1.1")), std::nullopt);
}

TEST(LpmTrie, FamiliesAreSeparate) {
  LpmTrie<int> trie;
  trie.insert(1, p4("0.0.0.0/0"), 4);
  trie.insert(1, IpPrefix::must_parse("::/0"), 6);
  EXPECT_EQ(trie.lookup(1, a("1.2.3.4")), 4);
  EXPECT_EQ(trie.lookup(1, a("2001:db8::1")), 6);
}

TEST(LpmTrie, HostRoutes) {
  LpmTrie<int> trie;
  trie.insert(7, p4("192.168.1.5/32"), 1);
  EXPECT_EQ(trie.lookup(7, a("192.168.1.5")), 1);
  EXPECT_EQ(trie.lookup(7, a("192.168.1.6")), std::nullopt);
}

TEST(LpmTrie, Ipv6LongestMatch) {
  LpmTrie<int> trie;
  trie.insert(9, IpPrefix::must_parse("2001:db8::/32"), 32);
  trie.insert(9, IpPrefix::must_parse("2001:db8:0:1::/64"), 64);
  trie.insert(9, IpPrefix::must_parse("2001:db8:0:1::42/128"), 128);
  EXPECT_EQ(trie.lookup(9, a("2001:db8:0:1::42")), 128);
  EXPECT_EQ(trie.lookup(9, a("2001:db8:0:1::43")), 64);
  EXPECT_EQ(trie.lookup(9, a("2001:db8:ffff::1")), 32);
}

TEST(LpmTrie, InsertReplacesAndReturnsNewness) {
  LpmTrie<int> trie;
  EXPECT_TRUE(trie.insert(1, p4("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(1, p4("10.0.0.0/8"), 2));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(1, a("10.0.0.1")), 2);
}

TEST(LpmTrie, RemoveExposesShorterPrefix) {
  LpmTrie<int> trie;
  trie.insert(1, p4("10.0.0.0/8"), 8);
  trie.insert(1, p4("10.1.0.0/16"), 16);
  EXPECT_TRUE(trie.remove(1, p4("10.1.0.0/16")));
  EXPECT_EQ(trie.lookup(1, a("10.1.1.1")), 8);
  EXPECT_FALSE(trie.remove(1, p4("10.1.0.0/16")));
  EXPECT_EQ(trie.size(), 1u);
}

TEST(LpmTrie, FindIsExactNotLongest) {
  LpmTrie<int> trie;
  trie.insert(1, p4("10.0.0.0/8"), 8);
  EXPECT_NE(trie.find(1, p4("10.0.0.0/8")), nullptr);
  EXPECT_EQ(trie.find(1, p4("10.0.0.0/16")), nullptr);
}

TEST(LpmTrie, LookupWithLengthReportsDepth) {
  LpmTrie<int> trie;
  trie.insert(1, p4("10.0.0.0/8"), 8);
  trie.insert(1, p4("10.1.0.0/16"), 16);
  auto hit = trie.lookup_with_length(1, a("10.1.0.1"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, 16);
  EXPECT_EQ(hit->second, 16u);
}

TEST(LpmTrie, EntriesEnumerationRoundTrips) {
  LpmTrie<int> trie;
  trie.insert(1, p4("10.0.0.0/8"), 1);
  trie.insert(2, p4("10.1.2.0/24"), 2);
  trie.insert(3, IpPrefix::must_parse("2001:db8::/48"), 3);
  auto entries = trie.entries();
  ASSERT_EQ(entries.size(), 3u);
  LpmTrie<int> rebuilt;
  for (const auto& entry : entries) {
    rebuilt.insert(entry.vni, entry.prefix, entry.value);
  }
  EXPECT_EQ(rebuilt.size(), trie.size());
  EXPECT_EQ(rebuilt.lookup(2, a("10.1.2.200")), 2);
  EXPECT_EQ(rebuilt.lookup(3, a("2001:db8::9")), 3);
}

TEST(LpmTrie, DefaultRoutePrefixLengthZero) {
  LpmTrie<int> trie;
  trie.insert(5, p4("0.0.0.0/0"), 42);
  EXPECT_EQ(trie.lookup(5, a("8.8.8.8")), 42);
  auto entries = trie.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].prefix.length(), 0u);
}

TEST(LpmTrie, ClearEmptiesEverything) {
  LpmTrie<int> trie;
  trie.insert(1, p4("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.lookup(1, a("10.0.0.1")), std::nullopt);
}

}  // namespace
}  // namespace sf::tables
