#include "tables/digest_table.hpp"

#include <gtest/gtest.h>

#include "workload/rng.hpp"

namespace sf::tables {
namespace {

using net::IpAddr;

VmNcKey key4(net::Vni vni, const char* ip) {
  return VmNcKey{vni, IpAddr::must_parse(ip)};
}

TEST(DigestVmNcTable, V4InsertLookupErase) {
  DigestVmNcTable table;
  const VmNcKey key = key4(5, "192.168.10.2");
  EXPECT_TRUE(table.insert(key, VmNcAction{net::Ipv4Addr(10, 1, 1, 11)}));
  auto hit = table.lookup(5, IpAddr::must_parse("192.168.10.2"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->nc_ip, net::Ipv4Addr(10, 1, 1, 11));
  EXPECT_FALSE(table.lookup(6, IpAddr::must_parse("192.168.10.2")));
  EXPECT_TRUE(table.erase(key));
  EXPECT_FALSE(table.lookup(5, IpAddr::must_parse("192.168.10.2")));
}

TEST(DigestVmNcTable, V6LookupThroughDigest) {
  DigestVmNcTable table;
  const VmNcKey key = key4(7, "2001:db8::42");
  table.insert(key, VmNcAction{net::Ipv4Addr(10, 2, 2, 2)});
  auto hit = table.lookup(7, IpAddr::must_parse("2001:db8::42"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->nc_ip, net::Ipv4Addr(10, 2, 2, 2));
  EXPECT_EQ(table.stats().conflict_entries, 0u);
}

TEST(DigestVmNcTable, LabelSeparatesV4FromCompressedV6) {
  DigestVmNcTable table;
  // A v4 address equal to some v6 digest cannot collide: label bit.
  table.insert(key4(1, "1.2.3.4"), VmNcAction{net::Ipv4Addr(10, 0, 0, 1)});
  table.insert(key4(1, "2001:db8::1"),
               VmNcAction{net::Ipv4Addr(10, 0, 0, 2)});
  EXPECT_EQ(table.lookup(1, IpAddr::must_parse("1.2.3.4"))->nc_ip,
            net::Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(table.lookup(1, IpAddr::must_parse("2001:db8::1"))->nc_ip,
            net::Ipv4Addr(10, 0, 0, 2));
}

// A tiny digest width forces collisions deterministically.
DigestVmNcTable tiny_digest_table() {
  DigestVmNcTable::Config config;
  config.digest_bits = 4;  // 16 slots: collisions guaranteed quickly
  config.buckets = 1 << 10;
  return DigestVmNcTable(config);
}

TEST(DigestVmNcTable, CollidingV6KeysUseConflictTable) {
  DigestVmNcTable table = tiny_digest_table();
  workload::Rng rng(9);
  std::vector<VmNcKey> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(VmNcKey{
        3, IpAddr(net::Ipv6Addr(rng.next_u64(), rng.next_u64()))});
    ASSERT_TRUE(table.insert(
        keys.back(),
        VmNcAction{net::Ipv4Addr(static_cast<std::uint32_t>(i))}));
  }
  const auto stats = table.stats();
  EXPECT_GT(stats.conflict_entries, 0u);
  EXPECT_EQ(stats.main_entries + stats.conflict_entries, 64u);
  // Every inserted key must still resolve to its own action.
  for (int i = 0; i < 64; ++i) {
    auto hit = table.lookup(3, keys[static_cast<size_t>(i)].vm_ip);
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->nc_ip.value(), static_cast<std::uint32_t>(i));
  }
}

TEST(DigestVmNcTable, ErasePromotesConflictEntry) {
  DigestVmNcTable::Config config;
  config.digest_bits = 1;  // two slots: second same-label key collides
  DigestVmNcTable table(config);
  workload::Rng rng(11);
  // Find two distinct v6 keys with equal digests.
  VmNcKey first{1, IpAddr(net::Ipv6Addr(rng.next_u64(), rng.next_u64()))};
  table.insert(first, VmNcAction{net::Ipv4Addr(1)});
  VmNcKey second;
  while (true) {
    second = VmNcKey{1, IpAddr(net::Ipv6Addr(rng.next_u64(), rng.next_u64()))};
    if (second != first) {
      table.insert(second, VmNcAction{net::Ipv4Addr(2)});
      if (table.stats().conflict_entries == 1) break;
      table.erase(second);
    }
  }
  // Erase the main-table owner; the conflict entry is promoted.
  EXPECT_TRUE(table.erase(first));
  EXPECT_EQ(table.stats().conflict_entries, 0u);
  auto hit = table.lookup(1, second.vm_ip);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->nc_ip, net::Ipv4Addr(2));
  // Looking up the erased key now digest-collides with the promoted one:
  // the documented false-positive behavior of digest compression.
  auto stale = table.lookup(1, first.vm_ip);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->nc_ip, net::Ipv4Addr(2));
}

TEST(DigestVmNcTable, ReplaceKeepsSingleEntry) {
  DigestVmNcTable table;
  const VmNcKey key = key4(2, "2001:db8::7");
  table.insert(key, VmNcAction{net::Ipv4Addr(1)});
  table.insert(key, VmNcAction{net::Ipv4Addr(2)});
  EXPECT_EQ(table.stats().main_entries, 1u);
  EXPECT_EQ(table.lookup(2, key.vm_ip)->nc_ip, net::Ipv4Addr(2));
}

TEST(DigestVmNcTable, EntryWordsChargeConflictsAtWideRate) {
  DigestVmNcTable table = tiny_digest_table();
  workload::Rng rng(13);
  for (int i = 0; i < 40; ++i) {
    table.insert(VmNcKey{1, IpAddr(net::Ipv6Addr(rng.next_u64(),
                                                 rng.next_u64()))},
                 VmNcAction{net::Ipv4Addr(7)});
  }
  const auto stats = table.stats();
  EXPECT_EQ(table.entry_words(),
            stats.main_entries + 4 * stats.conflict_entries);
}

TEST(DigestVmNcTable, DocumentedFalsePositiveForUnknownV6) {
  // The digest table stores no full key: a *never-inserted* v6 address
  // whose digest collides with a real entry returns that entry's action.
  // With 4 digest bits this is easy to demonstrate; with the production
  // 32 bits it is a ~n/2^32 event that the destination vSwitch absorbs.
  DigestVmNcTable table = tiny_digest_table();
  workload::Rng rng(17);
  const VmNcKey real{1,
                     IpAddr(net::Ipv6Addr(rng.next_u64(), rng.next_u64()))};
  table.insert(real, VmNcAction{net::Ipv4Addr(42)});
  int false_positives = 0;
  for (int i = 0; i < 256; ++i) {
    const IpAddr probe(net::Ipv6Addr(rng.next_u64(), rng.next_u64()));
    if (probe == real.vm_ip) continue;
    if (table.lookup(1, probe).has_value()) ++false_positives;
  }
  EXPECT_GT(false_positives, 0);  // collisions at 4-bit digests
}

TEST(DigestVmNcTable, RejectsBadDigestWidth) {
  DigestVmNcTable::Config config;
  config.digest_bits = 0;
  EXPECT_THROW(DigestVmNcTable{config}, std::invalid_argument);
  config.digest_bits = 33;
  EXPECT_THROW(DigestVmNcTable{config}, std::invalid_argument);
}

}  // namespace
}  // namespace sf::tables
