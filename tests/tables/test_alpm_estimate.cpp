// The calibrated analytic ALPM shape model (estimate_alpm_shape) vs
// measured Alpm::stats(): the placer sizes the §4.4(e) directory and
// buckets from this estimate, so it must track the real structure — the
// regression bound here is 5% at 1M routes (the perf bench re-checks 5M
// and 10M). The route generator mirrors the calibration run: Zipf VPC
// shares, 75/25 v4/v6, bucket bound 32.

#include "tables/alpm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tables/route_table.hpp"
#include "tables/tcam.hpp"
#include "workload/rng.hpp"
#include "workload/zipf.hpp"

namespace sf::tables {
namespace {

TEST(AlpmEstimate, FillCurveIsMonotoneAndClamped) {
  EXPECT_DOUBLE_EQ(expected_alpm_fill(4), expected_alpm_fill(8));
  EXPECT_DOUBLE_EQ(expected_alpm_fill(128), expected_alpm_fill(256));
  double prev = 0;
  for (std::size_t bucket : {8u, 16u, 32u, 64u, 128u}) {
    const double fill = expected_alpm_fill(bucket);
    EXPECT_GE(fill, prev) << bucket;
    EXPECT_GT(fill, 0.4) << bucket;
    EXPECT_LT(fill, 0.8) << bucket;
    prev = fill;
  }
}

TEST(AlpmEstimate, ShapeArithmetic) {
  const AlpmShapeEstimate estimate = estimate_alpm_shape(1'000, 32, 4, 1);
  EXPECT_GE(estimate.partitions, 1u);
  EXPECT_EQ(estimate.directory_slices, estimate.partitions * 4);
  EXPECT_EQ(estimate.bucket_words, estimate.partitions * 32);
  // Zero routes still cost one partition (the root).
  EXPECT_EQ(estimate_alpm_shape(0, 32, 4, 1).partitions, 1u);
}

TEST(AlpmEstimate, TracksMeasuredStatsAtOneMillionRoutes) {
  constexpr std::size_t kTotal = 1'000'000;
  constexpr std::size_t kBucket = 32;
  Alpm<VxlanRouteAction>::Config config;
  config.max_bucket_entries = kBucket;
  Alpm<VxlanRouteAction> alpm(config);

  workload::Rng rng(2024);
  const std::size_t vpcs = 60'000;
  const std::vector<double> shares = workload::zipf_weights(vpcs, 1.0);
  std::size_t inserted = 0;
  for (std::size_t v = 0; v < vpcs && inserted < kTotal; ++v) {
    const net::Vni vni = static_cast<net::Vni>(1000 + v);
    const bool v6 = rng.chance(0.25);
    const std::size_t routes = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(shares[v] * static_cast<double>(kTotal)));
    for (std::size_t r = 0; r < routes && inserted < kTotal; ++r) {
      if (v6) {
        alpm.insert(vni, net::Ipv6Prefix(net::Ipv6Addr(rng.next_u64(), 0), 64),
                    {});
      } else {
        alpm.insert(
            vni,
            net::Ipv4Prefix(
                net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), 24),
            {});
      }
      ++inserted;
    }
  }

  const auto stats = alpm.stats();
  ASSERT_GT(stats.routes, 900'000u);  // random collisions dedup a few

  const unsigned dir_slices = (kPooledRouteKeyBits + 43) / 44;  // 153b key
  const AlpmShapeEstimate estimate =
      estimate_alpm_shape(stats.routes, kBucket, dir_slices, 1);
  const auto relative_error = [](std::size_t got, std::size_t want) {
    return std::abs(static_cast<double>(got) - static_cast<double>(want)) /
           static_cast<double>(want);
  };
  EXPECT_LT(relative_error(estimate.partitions, stats.partitions), 0.05)
      << "estimated " << estimate.partitions << " measured "
      << stats.partitions;
  EXPECT_LT(
      relative_error(estimate.directory_slices, stats.directory_slices), 0.05)
      << "estimated " << estimate.directory_slices << " measured "
      << stats.directory_slices;
  EXPECT_LT(
      relative_error(estimate.bucket_words, stats.allocated_bucket_words),
      0.05)
      << "estimated " << estimate.bucket_words << " measured "
      << stats.allocated_bucket_words;
}

}  // namespace
}  // namespace sf::tables
