// ALPM correctness: unit behaviors plus a property suite that
// cross-validates Alpm against the reference binary trie (LpmTrie) and the
// hash-probe SoftwareLpm across random route sets, bucket sizes and
// dynamic insert/erase churn.

#include "tables/alpm.hpp"

#include <gtest/gtest.h>

#include "tables/lpm_trie.hpp"
#include "tables/route_table.hpp"
#include "workload/rng.hpp"

namespace sf::tables {
namespace {

using net::IpAddr;
using net::IpPrefix;
using net::Vni;

IpPrefix p(const char* text) { return IpPrefix::must_parse(text); }
IpAddr a(const char* text) { return IpAddr::must_parse(text); }

TEST(Alpm, BasicLongestMatch) {
  Alpm<int> alpm;
  alpm.insert(1, p("10.0.0.0/8"), 8);
  alpm.insert(1, p("10.1.0.0/16"), 16);
  alpm.insert(1, p("10.1.2.0/24"), 24);
  EXPECT_EQ(alpm.lookup(1, a("10.1.2.3")), 24);
  EXPECT_EQ(alpm.lookup(1, a("10.1.9.9")), 16);
  EXPECT_EQ(alpm.lookup(1, a("10.9.9.9")), 8);
  EXPECT_EQ(alpm.lookup(1, a("11.0.0.1")), std::nullopt);
  EXPECT_EQ(alpm.lookup(2, a("10.1.2.3")), std::nullopt);
}

TEST(Alpm, EraseRestoresShorterRoute) {
  Alpm<int> alpm;
  alpm.insert(1, p("10.0.0.0/8"), 8);
  alpm.insert(1, p("10.1.0.0/16"), 16);
  EXPECT_TRUE(alpm.erase(1, p("10.1.0.0/16")));
  EXPECT_EQ(alpm.lookup(1, a("10.1.1.1")), 8);
  EXPECT_FALSE(alpm.erase(1, p("10.1.0.0/16")));
}

TEST(Alpm, FindIsExact) {
  Alpm<int> alpm;
  alpm.insert(1, p("10.0.0.0/8"), 8);
  EXPECT_NE(alpm.find(1, p("10.0.0.0/8")), nullptr);
  EXPECT_EQ(alpm.find(1, p("10.0.0.0/16")), nullptr);
  EXPECT_EQ(alpm.find(2, p("10.0.0.0/8")), nullptr);
}

TEST(Alpm, BucketSplitKeepsAnswersCorrect) {
  Alpm<int>::Config config;
  config.max_bucket_entries = 4;  // force frequent splits
  Alpm<int> alpm(config);
  // 64 host routes under one /16 plus a covering /8.
  alpm.insert(1, p("10.0.0.0/8"), 999);
  for (int i = 0; i < 64; ++i) {
    alpm.insert(1,
                net::Ipv4Prefix(net::Ipv4Addr(10, 1, 0,
                                              static_cast<std::uint8_t>(i)),
                                32),
                i);
  }
  auto stats = alpm.stats();
  EXPECT_GT(stats.partitions, 1u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(alpm.lookup(1, IpAddr(net::Ipv4Addr(
                                 10, 1, 0, static_cast<std::uint8_t>(i)))),
              i);
  }
  // An address under no host route falls back to the covering /8 even in
  // partitions whose bucket lacks it.
  EXPECT_EQ(alpm.lookup(1, a("10.1.0.200")), 999);
  EXPECT_EQ(alpm.lookup(1, a("10.200.0.1")), 999);
}

TEST(Alpm, BucketBoundHolds) {
  Alpm<int>::Config config;
  config.max_bucket_entries = 8;
  Alpm<int> alpm(config);
  workload::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    alpm.insert(static_cast<Vni>(rng.uniform(16)),
                net::Ipv4Prefix(
                    net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                    32),
                i);
  }
  const auto stats = alpm.stats();
  // Every partition respects the hardware bucket bound: routes/partition
  // never exceeds max even in the worst case.
  EXPECT_LE(stats.routes, stats.partitions * config.max_bucket_entries);
  EXPECT_GT(stats.average_fill, 0.2);
}

TEST(Alpm, EmptyPartitionsRetire) {
  Alpm<int>::Config config;
  config.max_bucket_entries = 2;
  Alpm<int> alpm(config);
  for (int i = 0; i < 32; ++i) {
    alpm.insert(1,
                net::Ipv4Prefix(net::Ipv4Addr(10, 0, 0,
                                              static_cast<std::uint8_t>(i)),
                                32),
                i);
  }
  const std::size_t partitions_before = alpm.stats().partitions;
  for (int i = 0; i < 32; ++i) {
    alpm.erase(1, net::Ipv4Prefix(
                      net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i)),
                      32));
  }
  EXPECT_EQ(alpm.size(), 0u);
  EXPECT_LT(alpm.stats().partitions, partitions_before);
  // The root partition always survives.
  EXPECT_GE(alpm.stats().partitions, 1u);
}

TEST(Alpm, StatsChargeDirectoryAndBuckets) {
  Alpm<int>::Config config;
  config.max_bucket_entries = 4;
  config.directory_slice_bits = 44;
  Alpm<int> alpm(config);
  for (int i = 0; i < 64; ++i) {
    alpm.insert(1,
                net::Ipv4Prefix(net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(i), 0), 24),
                i);
  }
  const auto stats = alpm.stats();
  EXPECT_EQ(stats.routes, 64u);
  // Directory: ceil(153/44) = 4 slices per pivot row.
  EXPECT_EQ(stats.directory_slices, stats.partitions * 4);
  // Each partition reserves max_bucket slots; slots in shallow-pivot
  // partitions can be multi-word (long suffixes), so allocated words are
  // at least the slot count.
  EXPECT_GE(stats.allocated_bucket_words,
            stats.partitions * config.max_bucket_entries);
  EXPECT_GE(stats.allocated_bucket_words, stats.used_bucket_words);
}

TEST(Alpm, RejectsZeroBucket) {
  Alpm<int>::Config config;
  config.max_bucket_entries = 0;
  EXPECT_THROW(Alpm<int>{config}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property suite: Alpm == LpmTrie == SoftwareLpm on random workloads.
// ---------------------------------------------------------------------------

struct AlpmPropertyParam {
  std::size_t max_bucket;
  std::size_t routes;
  double v6_fraction;
  std::uint64_t seed;
};

class AlpmPropertyTest : public ::testing::TestWithParam<AlpmPropertyParam> {
};

IpPrefix random_prefix(workload::Rng& rng, bool v6) {
  if (v6) {
    const unsigned len = 32 + static_cast<unsigned>(rng.uniform(97));
    return net::Ipv6Prefix(
        net::Ipv6Addr(rng.next_u64(), rng.next_u64()), len);
  }
  const unsigned len = 8 + static_cast<unsigned>(rng.uniform(25));
  return net::Ipv4Prefix(
      net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), len);
}

IpAddr random_addr(workload::Rng& rng, bool v6) {
  if (v6) return net::Ipv6Addr(rng.next_u64(), rng.next_u64());
  return net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
}

TEST_P(AlpmPropertyTest, MatchesReferenceImplementations) {
  const AlpmPropertyParam param = GetParam();
  workload::Rng rng(param.seed);

  Alpm<int>::Config config;
  config.max_bucket_entries = param.max_bucket;
  Alpm<int> alpm(config);
  LpmTrie<int> trie;
  SoftwareLpm<int> soft;

  struct Installed {
    Vni vni;
    IpPrefix prefix;
  };
  std::vector<Installed> installed;

  for (std::size_t i = 0; i < param.routes; ++i) {
    const Vni vni = static_cast<Vni>(rng.uniform(8));
    const bool v6 = rng.uniform_real() < param.v6_fraction;
    const IpPrefix prefix = random_prefix(rng, v6);
    const int value = static_cast<int>(i);
    alpm.insert(vni, prefix, value);
    trie.insert(vni, prefix, value);
    soft.insert(vni, prefix, value);
    installed.push_back({vni, prefix});
  }
  ASSERT_EQ(alpm.size(), trie.size());
  ASSERT_EQ(soft.size(), trie.size());

  // Lookups on random addresses plus addresses inside installed prefixes
  // (uniform random addresses rarely hit deep prefixes).
  auto check = [&](Vni vni, const IpAddr& addr) {
    const auto expected = trie.lookup(vni, addr);
    EXPECT_EQ(alpm.lookup(vni, addr), expected) << addr.to_string();
    EXPECT_EQ(soft.lookup(vni, addr), expected) << addr.to_string();
  };
  for (int i = 0; i < 300; ++i) {
    const Vni vni = static_cast<Vni>(rng.uniform(8));
    check(vni, random_addr(rng, rng.chance(param.v6_fraction)));
  }
  for (int i = 0; i < 300; ++i) {
    const Installed& pick = installed[rng.uniform(installed.size())];
    // The prefix's own base address is always inside it.
    if (pick.prefix.family() == net::IpFamily::kV4) {
      check(pick.vni,
            net::Ipv4Addr(static_cast<std::uint32_t>(
                pick.prefix.widened_address().lo())));
    } else {
      check(pick.vni, pick.prefix.widened_address());
    }
  }

  // Churn: remove a third, re-check equivalence.
  for (std::size_t i = 0; i < installed.size(); i += 3) {
    const Installed& victim = installed[i];
    const bool a_ok = alpm.erase(victim.vni, victim.prefix);
    const bool t_ok = trie.remove(victim.vni, victim.prefix);
    const bool s_ok = soft.erase(victim.vni, victim.prefix);
    EXPECT_EQ(a_ok, t_ok);
    EXPECT_EQ(s_ok, t_ok);
  }
  for (int i = 0; i < 300; ++i) {
    const Installed& pick = installed[rng.uniform(installed.size())];
    if (pick.prefix.family() == net::IpFamily::kV4) {
      check(pick.vni,
            net::Ipv4Addr(static_cast<std::uint32_t>(
                pick.prefix.widened_address().lo())));
    } else {
      check(pick.vni, pick.prefix.widened_address());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BucketSizesAndMixes, AlpmPropertyTest,
    ::testing::Values(AlpmPropertyParam{4, 400, 0.0, 101},
                      AlpmPropertyParam{8, 800, 0.25, 102},
                      AlpmPropertyParam{16, 1200, 0.25, 103},
                      AlpmPropertyParam{64, 2000, 0.5, 104},
                      AlpmPropertyParam{32, 1500, 1.0, 105},
                      AlpmPropertyParam{1, 150, 0.25, 106}));

}  // namespace
}  // namespace sf::tables
