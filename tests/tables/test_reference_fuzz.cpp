// Randomized-operation fuzz of the hash structures against std:: reference
// containers: thousands of interleaved insert/erase/lookup ops must agree
// exactly with std::unordered_map / std::map semantics.

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "tables/exact_table.hpp"
#include "tables/masked_key_map.hpp"
#include "workload/rng.hpp"

namespace sf::tables {
namespace {

TEST(ExactTableFuzz, AgreesWithUnorderedMap) {
  ExactTable<std::uint64_t, int> table({1 << 12, 4});
  std::unordered_map<std::uint64_t, int> reference;
  workload::Rng rng(31);

  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t key = rng.uniform(4'000);
    const int roll = static_cast<int>(rng.uniform(10));
    if (roll < 5) {
      const int value = static_cast<int>(rng.uniform(1'000'000));
      // Sized at 4x the key universe: inserts must always succeed.
      ASSERT_TRUE(table.insert(key, value));
      reference[key] = value;
    } else if (roll < 8) {
      EXPECT_EQ(table.erase(key), reference.erase(key) > 0);
    } else {
      auto hit = table.lookup(key);
      auto expected = reference.find(key);
      if (expected == reference.end()) {
        EXPECT_FALSE(hit.has_value());
      } else {
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, expected->second);
      }
    }
    if (op % 4096 == 0) {
      EXPECT_EQ(table.size(), reference.size());
    }
  }
  EXPECT_EQ(table.size(), reference.size());
}

struct DepthKeyRef {
  std::uint64_t bits;
  unsigned depth;

  friend bool operator<(const DepthKeyRef& a, const DepthKeyRef& b) {
    return std::tie(a.bits, a.depth) < std::tie(b.bits, b.depth);
  }
};

TEST(MaskedKeyMapFuzz, AgreesWithOrderedReference) {
  MaskedKeyMap<int> map;
  std::map<DepthKeyRef, int> reference;
  workload::Rng rng(37);

  auto make_key = [](std::uint64_t bits) {
    return TcamKey{{bits, 0, 0}};
  };

  for (int op = 0; op < 10'000; ++op) {
    const unsigned depth = 4 + static_cast<unsigned>(rng.uniform(16));
    const std::uint64_t bits = rng.next_u64();
    const std::uint64_t canonical =
        bits & (~std::uint64_t{0} << (64 - depth));
    const int roll = static_cast<int>(rng.uniform(10));
    if (roll < 6) {
      const int value = static_cast<int>(rng.uniform(1'000'000));
      map.insert(make_key(bits), depth, value);
      reference[{canonical, depth}] = value;
    } else if (roll < 8) {
      EXPECT_EQ(map.erase(make_key(bits), depth),
                reference.erase({canonical, depth}) > 0);
    } else {
      // Longest match: the reference scans depths descending.
      auto probe = make_key(bits);
      std::optional<std::pair<int, unsigned>> expected;
      for (unsigned d = 20; d >= 4 && !expected; --d) {
        const std::uint64_t masked =
            bits & (~std::uint64_t{0} << (64 - d));
        auto it = reference.find({masked, d});
        if (it != reference.end()) expected = {{it->second, d}};
      }
      const auto got = map.longest_match(probe);
      EXPECT_EQ(got.has_value(), expected.has_value());
      if (got && expected) {
        EXPECT_EQ(got->first, expected->first);
        EXPECT_EQ(got->second, expected->second);
      }
    }
  }
  EXPECT_EQ(map.size(), reference.size());
}

}  // namespace
}  // namespace sf::tables
