#include <gtest/gtest.h>

#include "tables/exact_table.hpp"
#include "tables/masked_key_map.hpp"

namespace sf::tables {
namespace {

struct IdentityHasher {
  std::uint64_t operator()(std::uint64_t key) const { return key; }
};

TEST(ExactTable, InsertLookupErase) {
  ExactTable<std::uint64_t, int> table({16, 4});
  EXPECT_TRUE(table.insert(1, 100));
  EXPECT_TRUE(table.insert(2, 200));
  EXPECT_EQ(table.lookup(1), 100);
  EXPECT_EQ(table.lookup(2), 200);
  EXPECT_EQ(table.lookup(3), std::nullopt);
  EXPECT_TRUE(table.erase(1));
  EXPECT_FALSE(table.erase(1));
  EXPECT_EQ(table.lookup(1), std::nullopt);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ExactTable, InsertReplacesExistingKey) {
  ExactTable<std::uint64_t, int> table({16, 4});
  table.insert(1, 100);
  EXPECT_TRUE(table.insert(1, 101));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(1), 101);
}

TEST(ExactTable, BucketOverflowFailsInsert) {
  // Identity hash + 1 bucket: every key collides; ways bound insertions.
  ExactTable<std::uint64_t, int, IdentityHasher> table({1, 2});
  EXPECT_TRUE(table.insert(10, 1));
  EXPECT_TRUE(table.insert(20, 2));
  EXPECT_FALSE(table.insert(30, 3));
  EXPECT_EQ(table.stats().insert_failures, 1u);
  // Freeing a way lets the next insert succeed.
  EXPECT_TRUE(table.erase(10));
  EXPECT_TRUE(table.insert(30, 3));
}

TEST(ExactTable, CapacityIsBucketsTimesWays) {
  ExactTable<std::uint64_t, int> table({100, 4});  // rounds to 128 buckets
  EXPECT_EQ(table.capacity(), 128u * 4u);
}

TEST(ExactTable, ForEachVisitsAllEntries) {
  ExactTable<std::uint64_t, int> table({16, 4});
  for (std::uint64_t k = 0; k < 10; ++k) table.insert(k, static_cast<int>(k));
  std::size_t visited = 0;
  std::uint64_t key_sum = 0;
  table.for_each([&](const std::uint64_t& k, const int&) {
    ++visited;
    key_sum += k;
  });
  EXPECT_EQ(visited, 10u);
  EXPECT_EQ(key_sum, 45u);
}

TEST(ExactTable, RejectsZeroGeometry) {
  using Table = ExactTable<std::uint64_t, int>;
  EXPECT_THROW(Table({0, 4}), std::invalid_argument);
  EXPECT_THROW(Table({16, 0}), std::invalid_argument);
}

TEST(MaskedKeyMap, LongestMatchAcrossDepths) {
  MaskedKeyMap<int> map;
  TcamKey key{{0xabcd'ef00'0000'0000ULL, 0, 0}};
  map.insert(key, 8, 8);
  map.insert(key, 16, 16);
  map.insert(key, 32, 32);
  auto hit = map.longest_match(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, 32);
  EXPECT_EQ(hit->second, 32u);
}

TEST(MaskedKeyMap, BelowBoundExcludesDeeperEntries) {
  MaskedKeyMap<int> map;
  TcamKey key{{0xabcd'ef00'0000'0000ULL, 0, 0}};
  map.insert(key, 8, 8);
  map.insert(key, 32, 32);
  auto hit = map.longest_match(key, 32);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, 8);
}

TEST(MaskedKeyMap, CanonicalizesKeysToDepth) {
  MaskedKeyMap<int> map;
  TcamKey noisy{{0xff12'3456'789a'bcdeULL, 0x1111, 0x2222}};
  map.insert(noisy, 8, 1);
  // Any key sharing the top 8 bits matches.
  TcamKey probe{{0xff00'0000'0000'0000ULL, 0, 0}};
  EXPECT_NE(map.find(probe, 8), nullptr);
  auto hit = map.longest_match(probe);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, 1);
}

TEST(MaskedKeyMap, EraseMaintainsDepthIndex) {
  MaskedKeyMap<int> map;
  TcamKey a{{0x1000'0000'0000'0000ULL, 0, 0}};
  TcamKey b{{0x2000'0000'0000'0000ULL, 0, 0}};
  map.insert(a, 8, 1);
  map.insert(b, 8, 2);
  EXPECT_TRUE(map.erase(a, 8));
  // Depth 8 must still be probed for b.
  auto hit = map.longest_match(b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, 2);
  EXPECT_TRUE(map.erase(b, 8));
  EXPECT_FALSE(map.longest_match(b).has_value());
}

TEST(MaskedKeyMap, InsertReturnsNewness) {
  MaskedKeyMap<int> map;
  TcamKey key{};
  EXPECT_TRUE(map.insert(key, 0, 1));
  EXPECT_FALSE(map.insert(key, 0, 2));
  EXPECT_EQ(map.size(), 1u);
  auto hit = map.longest_match(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, 2);
}

TEST(MaskedKeyMap, SameBitsDifferentDepthAreDistinct) {
  MaskedKeyMap<int> map;
  TcamKey key{{0xaa00'0000'0000'0000ULL, 0, 0}};
  map.insert(key, 8, 8);
  map.insert(key, 16, 16);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_NE(map.find(key, 8), nullptr);
  EXPECT_NE(map.find(key, 16), nullptr);
}

}  // namespace
}  // namespace sf::tables
