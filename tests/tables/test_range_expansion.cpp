#include "tables/range_expansion.hpp"

#include <gtest/gtest.h>

#include "tables/service_tables.hpp"
#include "workload/rng.hpp"

namespace sf::tables {
namespace {

// Exhaustive coverage check: each port in [lo, hi] matches exactly one
// entry; each port outside matches none.
void check_cover(std::uint16_t lo, std::uint16_t hi) {
  const auto entries = expand_port_range(lo, hi);
  for (std::uint32_t port = 0; port <= 0xffff; ++port) {
    int matched = 0;
    for (const TernaryRange& entry : entries) {
      if (entry.matches(static_cast<std::uint16_t>(port))) ++matched;
    }
    const bool inside = port >= lo && port <= hi;
    ASSERT_EQ(matched, inside ? 1 : 0)
        << "port " << port << " in [" << lo << "," << hi << "]";
  }
}

TEST(RangeExpansion, SinglePortIsOneRow) {
  const auto entries = expand_port_range(443, 443);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].mask, 0xffff);
  check_cover(443, 443);
}

TEST(RangeExpansion, FullRangeIsOneRow) {
  const auto entries = expand_port_range(0, 65535);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].mask, 0u);
}

TEST(RangeExpansion, AlignedBlockIsOneRow) {
  EXPECT_EQ(port_range_expansion_cost(1024, 2047), 1u);
  check_cover(1024, 2047);
}

TEST(RangeExpansion, EphemeralPortRange) {
  // [1024, 65535]: the classic SNAT source range — a handful of rows.
  const auto entries = expand_port_range(1024, 65535);
  EXPECT_EQ(entries.size(), 6u);  // 1024+2048+4096+...+32768 blocks
  check_cover(1024, 65535);
}

TEST(RangeExpansion, WorstCaseStaysBounded) {
  // [1, 65534] is the textbook worst case: 2w-2 = 30 rows for w=16.
  const auto entries = expand_port_range(1, 65534);
  EXPECT_EQ(entries.size(), 30u);
  check_cover(1, 65534);
}

TEST(RangeExpansion, RandomRangesCoverExactly) {
  workload::Rng rng(41);
  for (int i = 0; i < 30; ++i) {
    const std::uint16_t a = static_cast<std::uint16_t>(rng.uniform(65536));
    const std::uint16_t b = static_cast<std::uint16_t>(rng.uniform(65536));
    check_cover(std::min(a, b), std::max(a, b));
  }
}

TEST(RangeExpansion, RejectsInvertedRange) {
  EXPECT_THROW(expand_port_range(10, 9), std::invalid_argument);
}

TEST(AclRangeRules, MatchSemantics) {
  AclTable acl;
  AclRule rule;
  rule.dst_port_range = {{1024, 2047}};
  rule.verdict = AclVerdict::kDeny;
  acl.add(rule);
  net::FiveTuple tuple{net::IpAddr::must_parse("10.0.0.1"),
                       net::IpAddr::must_parse("10.0.0.2"), 6, 5, 1500};
  EXPECT_EQ(acl.evaluate(1, tuple), AclVerdict::kDeny);
  tuple.dst_port = 80;
  EXPECT_EQ(acl.evaluate(1, tuple), AclVerdict::kPermit);
  tuple.dst_port = 2048;
  EXPECT_EQ(acl.evaluate(1, tuple), AclVerdict::kPermit);
}

TEST(AclRangeRules, TcamRowAccounting) {
  AclTable acl;
  AclRule exact;
  exact.dst_port = 443;
  acl.add(exact);
  EXPECT_EQ(acl.tcam_rows(), 1u);

  AclRule ranged;
  ranged.dst_port_range = {{1, 65534}};  // 30 rows
  acl.add(ranged);
  EXPECT_EQ(acl.tcam_rows(), 31u);

  AclRule double_ranged;
  double_ranged.src_port_range = {{1024, 65535}};  // 6 rows
  double_ranged.dst_port_range = {{1024, 65535}};  // x6 = 36 rows
  acl.add(double_ranged);
  EXPECT_EQ(acl.tcam_rows(), 31u + 36u);
}

}  // namespace
}  // namespace sf::tables
