#include "tables/service_tables.hpp"

#include <gtest/gtest.h>

namespace sf::tables {
namespace {

net::FiveTuple tuple(const char* src, const char* dst, std::uint8_t proto,
                     std::uint16_t sport, std::uint16_t dport) {
  return net::FiveTuple{net::IpAddr::must_parse(src),
                        net::IpAddr::must_parse(dst), proto, sport, dport};
}

TEST(AclTable, DefaultVerdictWhenEmpty) {
  AclTable permit(AclVerdict::kPermit);
  AclTable deny(AclVerdict::kDeny);
  const auto t = tuple("10.0.0.1", "10.0.0.2", 6, 1000, 80);
  EXPECT_EQ(permit.evaluate(1, t), AclVerdict::kPermit);
  EXPECT_EQ(deny.evaluate(1, t), AclVerdict::kDeny);
}

TEST(AclTable, WildcardFieldsMatchAnything) {
  AclTable acl;
  AclRule rule;
  rule.dst_port = 22;
  rule.verdict = AclVerdict::kDeny;
  acl.add(rule);
  EXPECT_EQ(acl.evaluate(1, tuple("10.0.0.1", "10.0.0.2", 6, 1000, 22)),
            AclVerdict::kDeny);
  EXPECT_EQ(acl.evaluate(99, tuple("1.1.1.1", "2.2.2.2", 17, 5, 22)),
            AclVerdict::kDeny);
  EXPECT_EQ(acl.evaluate(1, tuple("10.0.0.1", "10.0.0.2", 6, 1000, 80)),
            AclVerdict::kPermit);
}

TEST(AclTable, HigherPriorityWins) {
  AclTable acl;
  AclRule deny_all;
  deny_all.vni = 5;
  deny_all.priority = 10;
  deny_all.verdict = AclVerdict::kDeny;
  AclRule allow_web;
  allow_web.vni = 5;
  allow_web.dst_port = 443;
  allow_web.priority = 20;
  allow_web.verdict = AclVerdict::kPermit;
  acl.add(deny_all);
  acl.add(allow_web);
  EXPECT_EQ(acl.evaluate(5, tuple("10.0.0.1", "10.0.0.2", 6, 1000, 443)),
            AclVerdict::kPermit);
  EXPECT_EQ(acl.evaluate(5, tuple("10.0.0.1", "10.0.0.2", 6, 1000, 80)),
            AclVerdict::kDeny);
  EXPECT_EQ(acl.evaluate(6, tuple("10.0.0.1", "10.0.0.2", 6, 1000, 80)),
            AclVerdict::kPermit);
}

TEST(AclTable, PrefixFieldsMatchSubnets) {
  AclTable acl;
  AclRule rule;
  rule.src = net::IpPrefix::must_parse("192.168.0.0/16");
  rule.verdict = AclVerdict::kDeny;
  acl.add(rule);
  EXPECT_EQ(acl.evaluate(1, tuple("192.168.3.4", "10.0.0.1", 6, 1, 2)),
            AclVerdict::kDeny);
  EXPECT_EQ(acl.evaluate(1, tuple("192.169.0.1", "10.0.0.1", 6, 1, 2)),
            AclVerdict::kPermit);
}

TEST(MeterTable, GreenWithinRateRedBeyond) {
  MeterTable meters;
  // 8 Mbps, 1 KB burst: 1 KB available immediately.
  const std::size_t index = meters.add({8e6, 1000});
  EXPECT_EQ(meters.offer(index, 800, 0.0), MeterColor::kGreen);
  EXPECT_EQ(meters.offer(index, 800, 0.0), MeterColor::kRed);
  // After 1 ms, 1e6 B/s * 1e-3 s = 1000 B refilled (capped at burst).
  EXPECT_EQ(meters.offer(index, 800, 0.001), MeterColor::kGreen);
}

TEST(MeterTable, BurstCapsAccumulation) {
  MeterTable meters;
  const std::size_t index = meters.add({8e6, 1000});
  // A long idle period cannot bank more than one burst.
  EXPECT_EQ(meters.offer(index, 1000, 100.0), MeterColor::kGreen);
  EXPECT_EQ(meters.offer(index, 1, 100.0), MeterColor::kRed);
}

TEST(MeterTable, ReconfigureAppliesNewRate) {
  MeterTable meters;
  const std::size_t index = meters.add({8e6, 1000});
  meters.offer(index, 1000, 0.0);  // drain
  meters.reconfigure(index, {80e6, 10000});
  // New rate: 10 MB/s -> 10 KB after 1 ms... capped by elapsed refill.
  EXPECT_EQ(meters.offer(index, 9000, 1.0), MeterColor::kGreen);
}

TEST(MeterTable, IndependentMeters) {
  MeterTable meters;
  const std::size_t a = meters.add({8e6, 1000});
  const std::size_t b = meters.add({8e6, 1000});
  EXPECT_EQ(meters.offer(a, 1000, 0.0), MeterColor::kGreen);
  EXPECT_EQ(meters.offer(b, 1000, 0.0), MeterColor::kGreen);
}

TEST(MeterTable, OutOfRangeThrows) {
  MeterTable meters;
  EXPECT_THROW(meters.offer(0, 1, 0.0), std::out_of_range);
}

TEST(CounterTable, AccumulatesPacketsAndBytes) {
  CounterTable counters;
  const std::size_t index = counters.add();
  counters.count(index, 1500);
  counters.count(index, 64, 2);
  EXPECT_EQ(counters.at(index).packets, 3u);
  EXPECT_EQ(counters.at(index).bytes, 1564u);
}

TEST(CounterTable, IndependentIndices) {
  CounterTable counters;
  const std::size_t a = counters.add();
  const std::size_t b = counters.add();
  counters.count(a, 100);
  EXPECT_EQ(counters.at(b).packets, 0u);
  EXPECT_EQ(counters.at(a).bytes, 100u);
}

}  // namespace
}  // namespace sf::tables
