// Cross-implementation LPM equivalence: the TCAM model (priority rows)
// against the reference trie, over randomized route sets — parameterized
// by family mix and table size. Together with tests/tables/test_alpm.cpp
// this closes the loop: LpmTrie == SoftwareLpm == Alpm == Tcam.

#include <gtest/gtest.h>

#include "tables/lpm_trie.hpp"
#include "tables/tcam.hpp"
#include "workload/rng.hpp"

namespace sf::tables {
namespace {

struct EquivalenceParam {
  std::size_t routes;
  double v6_fraction;
  std::uint64_t seed;
};

class TcamEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

net::IpPrefix random_prefix(workload::Rng& rng, bool v6) {
  if (v6) {
    const unsigned len = 16 + static_cast<unsigned>(rng.uniform(113));
    return net::Ipv6Prefix(net::Ipv6Addr(rng.next_u64(), rng.next_u64()),
                           len);
  }
  const unsigned len = 4 + static_cast<unsigned>(rng.uniform(29));
  return net::Ipv4Prefix(
      net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), len);
}

TEST_P(TcamEquivalenceTest, TcamMatchesTrie) {
  const EquivalenceParam param = GetParam();
  workload::Rng rng(param.seed);

  LpmTrie<int> trie;
  trie.reserve(param.routes);
  Tcam<int> tcam;  // pooled keys, priority = pooled prefix length

  for (std::size_t i = 0; i < param.routes; ++i) {
    const net::Vni vni = static_cast<net::Vni>(rng.uniform(4));
    const bool v6 = rng.uniform_real() < param.v6_fraction;
    const net::IpPrefix prefix = random_prefix(rng, v6);
    const int value = static_cast<int>(i);
    trie.insert(vni, prefix, value);
    auto [key, mask] = make_pooled_prefix(vni, prefix);
    ASSERT_TRUE(tcam.insert(
        key, mask, static_cast<int>(prefix.pooled_length()), value));
  }
  // Replacement keeps the structures aligned.
  ASSERT_EQ(tcam.size(), trie.size());

  auto check = [&](net::Vni vni, const net::IpAddr& ip) {
    EXPECT_EQ(tcam.lookup(make_pooled_key(vni, ip)), trie.lookup(vni, ip))
        << vni << " " << ip.to_string();
  };
  for (int i = 0; i < 400; ++i) {
    const net::Vni vni = static_cast<net::Vni>(rng.uniform(4));
    if (rng.uniform_real() < param.v6_fraction) {
      check(vni, net::IpAddr(net::Ipv6Addr(rng.next_u64(), rng.next_u64())));
    } else {
      check(vni, net::IpAddr(net::Ipv4Addr(
                     static_cast<std::uint32_t>(rng.next_u64()))));
    }
  }
  // Probe at installed prefixes' base addresses too (guaranteed hits).
  for (const auto& entry : trie.entries()) {
    if (entry.prefix.family() == net::IpFamily::kV4) {
      check(entry.vni,
            net::IpAddr(net::Ipv4Addr(static_cast<std::uint32_t>(
                entry.prefix.widened_address().lo()))));
    } else {
      check(entry.vni, net::IpAddr(entry.prefix.widened_address()));
    }
  }

  // Erase half from both; equivalence must survive.
  std::size_t index = 0;
  for (const auto& entry : trie.entries()) {
    if (index++ % 2 != 0) continue;
    auto [key, mask] = make_pooled_prefix(entry.vni, entry.prefix);
    EXPECT_TRUE(tcam.erase(key, mask));
    EXPECT_TRUE(trie.remove(entry.vni, entry.prefix));
  }
  for (int i = 0; i < 200; ++i) {
    const net::Vni vni = static_cast<net::Vni>(rng.uniform(4));
    check(vni, net::IpAddr(net::Ipv4Addr(
                   static_cast<std::uint32_t>(rng.next_u64()))));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RouteMixes, TcamEquivalenceTest,
    ::testing::Values(EquivalenceParam{64, 0.0, 11},
                      EquivalenceParam{128, 0.25, 12},
                      EquivalenceParam{128, 1.0, 13},
                      EquivalenceParam{256, 0.5, 14}));

}  // namespace
}  // namespace sf::tables
