#include "tables/tcam.hpp"

#include <gtest/gtest.h>

namespace sf::tables {
namespace {

using net::IpAddr;
using net::IpPrefix;

TEST(TcamKey, MaskedComparison) {
  TcamKey key{{0xffff'0000'0000'0000ULL, 0, 0}};
  TcamKey mask = tcam_mask(8);
  EXPECT_EQ(key.masked(mask).w[0], 0xff00'0000'0000'0000ULL);
}

TEST(TcamMask, CoversWordBoundaries) {
  EXPECT_EQ(tcam_mask(0).w[0], 0u);
  EXPECT_EQ(tcam_mask(64).w[0], ~std::uint64_t{0});
  EXPECT_EQ(tcam_mask(64).w[1], 0u);
  EXPECT_EQ(tcam_mask(65).w[1], 0x8000'0000'0000'0000ULL);
  EXPECT_EQ(tcam_mask(192).w[2], ~std::uint64_t{0});
}

TEST(TcamBit, IndexesAcrossWords) {
  TcamKey key{{1, 0x8000'0000'0000'0000ULL, 0}};
  EXPECT_TRUE(tcam_bit(key, 63));
  EXPECT_TRUE(tcam_bit(key, 64));
  EXPECT_FALSE(tcam_bit(key, 0));
  EXPECT_EQ(tcam_set_bit(TcamKey{}, 64).w[1], 0x8000'0000'0000'0000ULL);
}

TEST(PooledKey, LabelSeparatesFamilies) {
  // A v6 address whose top 96 bits are zero collides bitwise with a
  // zero-extended v4 address; the label bit must separate them.
  const TcamKey v4 = make_pooled_key(7, IpAddr::must_parse("0.0.0.1"));
  const TcamKey v6 = make_pooled_key(7, IpAddr::must_parse("::1"));
  EXPECT_NE(v4, v6);
}

TEST(PooledPrefix, MatchesItsAddresses) {
  auto [value, mask] =
      make_pooled_prefix(5, IpPrefix::must_parse("10.1.0.0/16"));
  const TcamKey inside = make_pooled_key(5, IpAddr::must_parse("10.1.2.3"));
  const TcamKey outside = make_pooled_key(5, IpAddr::must_parse("10.2.0.1"));
  const TcamKey wrong_vni =
      make_pooled_key(6, IpAddr::must_parse("10.1.2.3"));
  EXPECT_EQ(inside.masked(mask), value);
  EXPECT_NE(outside.masked(mask), value);
  EXPECT_NE(wrong_vni.masked(mask), value);
}

TEST(Tcam, LongestPrefixViaPriorities) {
  Tcam<int> tcam;
  auto add = [&](net::Vni vni, const char* prefix, int value) {
    const IpPrefix p = IpPrefix::must_parse(prefix);
    auto [key, mask] = make_pooled_prefix(vni, p);
    ASSERT_TRUE(
        tcam.insert(key, mask, static_cast<int>(p.pooled_length()), value));
  };
  add(1, "10.0.0.0/8", 8);
  add(1, "10.1.0.0/16", 16);
  add(1, "10.1.2.0/24", 24);
  EXPECT_EQ(tcam.lookup(make_pooled_key(1, IpAddr::must_parse("10.1.2.3"))),
            24);
  EXPECT_EQ(tcam.lookup(make_pooled_key(1, IpAddr::must_parse("10.1.9.9"))),
            16);
  EXPECT_EQ(tcam.lookup(make_pooled_key(1, IpAddr::must_parse("10.9.9.9"))),
            8);
  EXPECT_EQ(tcam.lookup(make_pooled_key(2, IpAddr::must_parse("10.1.2.3"))),
            std::nullopt);
}

TEST(Tcam, SlicesPerEntryFollowsKeyWidth) {
  Tcam<int> pooled(Tcam<int>::Config{kPooledRouteKeyBits, 44, 0});
  EXPECT_EQ(pooled.slices_per_entry(), 4u);  // ceil(153/44)
  Tcam<int> v4(Tcam<int>::Config{56, 44, 0});
  EXPECT_EQ(v4.slices_per_entry(), 2u);  // ceil(56/44)
}

TEST(Tcam, CapacityRejectsOverflow) {
  Tcam<int> tcam(Tcam<int>::Config{56, 44, 4});  // room for 2 entries
  auto p1 = make_v4_prefix(1, net::Ipv4Prefix::must_parse("10.0.0.0/8"));
  auto p2 = make_v4_prefix(1, net::Ipv4Prefix::must_parse("11.0.0.0/8"));
  auto p3 = make_v4_prefix(1, net::Ipv4Prefix::must_parse("12.0.0.0/8"));
  EXPECT_TRUE(tcam.insert(p1.first, p1.second, 8, 1));
  EXPECT_TRUE(tcam.insert(p2.first, p2.second, 8, 2));
  EXPECT_FALSE(tcam.insert(p3.first, p3.second, 8, 3));
  EXPECT_EQ(tcam.used_slices(), 4u);
}

TEST(Tcam, InsertReplacesIdenticalRow) {
  Tcam<int> tcam;
  auto p = make_v4_prefix(1, net::Ipv4Prefix::must_parse("10.0.0.0/8"));
  EXPECT_TRUE(tcam.insert(p.first, p.second, 8, 1));
  EXPECT_TRUE(tcam.insert(p.first, p.second, 8, 2));
  EXPECT_EQ(tcam.size(), 1u);
  EXPECT_EQ(tcam.lookup(make_v4_key(1, net::Ipv4Addr(10, 1, 1, 1))), 2);
}

TEST(Tcam, EraseRemovesRow) {
  Tcam<int> tcam;
  auto p = make_v4_prefix(1, net::Ipv4Prefix::must_parse("10.0.0.0/8"));
  tcam.insert(p.first, p.second, 8, 1);
  EXPECT_TRUE(tcam.erase(p.first, p.second));
  EXPECT_FALSE(tcam.erase(p.first, p.second));
  EXPECT_EQ(tcam.lookup(make_v4_key(1, net::Ipv4Addr(10, 1, 1, 1))),
            std::nullopt);
}

TEST(Tcam, UpdateCostChargesRowShifts) {
  // Physical TCAMs shift rows to open a priority slot; appending at the
  // lowest priority is free, wedging into the middle is not.
  Tcam<int> tcam;
  auto prefix_of = [](unsigned len) {
    return make_v4_prefix(1, net::Ipv4Prefix(net::Ipv4Addr(10, 0, 0, 0),
                                             len));
  };
  // Descending priority appends: zero moves.
  for (unsigned len = 24; len > 16; --len) {
    auto [key, mask] = prefix_of(len);
    tcam.insert(key, mask, static_cast<int>(len), 1);
  }
  EXPECT_EQ(tcam.update_stats().entry_moves, 0u);
  // A /20 lands mid-table: min(4 above, 4 below) = 4 moves... but /20
  // already exists; use /28 (highest priority -> position 0, 0 moves via
  // the near end) and /15 (lowest -> 0 moves), then /21 replaced...
  auto [k28, m28] = prefix_of(28);
  tcam.insert(k28, m28, 28, 1);
  EXPECT_EQ(tcam.update_stats().entry_moves, 0u);  // shifted toward top
  // Now a brand-new priority in the exact middle pays.
  auto [kmid, mmid] = make_v4_prefix(
      2, net::Ipv4Prefix(net::Ipv4Addr(20, 0, 0, 0), 20));
  tcam.insert(kmid, mmid, 20, 2);
  EXPECT_GT(tcam.update_stats().entry_moves, 0u);
  EXPECT_EQ(tcam.update_stats().inserts, 10u);
}

TEST(Tcam, ReplacementDoesNotChargeMoves) {
  Tcam<int> tcam;
  auto [key, mask] = make_v4_prefix(
      1, net::Ipv4Prefix(net::Ipv4Addr(10, 0, 0, 0), 8));
  tcam.insert(key, mask, 8, 1);
  const auto before = tcam.update_stats();
  tcam.insert(key, mask, 8, 2);  // replace in place
  EXPECT_EQ(tcam.update_stats().inserts, before.inserts);
  EXPECT_EQ(tcam.update_stats().entry_moves, before.entry_moves);
}

TEST(Tcam, TieBreaksByInsertionOrderWithinPriority) {
  Tcam<int> tcam;
  TcamKey any{};
  // Two rows with the same mask-free match: first inserted wins the tie.
  EXPECT_TRUE(tcam.insert(TcamKey{}, tcam_mask(0), 5, 1));
  EXPECT_TRUE(tcam.insert(TcamKey{{1, 0, 0}}, tcam_mask(0), 5, 2));
  EXPECT_EQ(tcam.lookup(any), 1);
}

}  // namespace
}  // namespace sf::tables
