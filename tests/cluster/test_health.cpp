#include "cluster/health.hpp"

#include <gtest/gtest.h>

namespace sf::cluster {
namespace {

struct Fixture {
  Controller controller;
  DisasterRecovery recovery;
  HealthMonitor monitor;

  Fixture()
      : controller([] {
          Controller::Config config;
          config.cluster_template.primary_devices = 2;
          config.cluster_template.backup_devices = 1;
          config.initial_clusters = 1;
          return config;
        }()),
        recovery(&controller,
                 [] {
                   DisasterRecovery::Config config;
                   config.cold_standby_pool = 0;
                   config.min_live_fraction = 0.0;
                   return config;
                 }()),
        monitor(&recovery, HealthMonitor::Config{}) {}
};

TEST(HealthMonitor, SingleMissedHeartbeatDoesNotFail) {
  Fixture f;
  f.monitor.report_heartbeat(0, 0, false, 1.0);
  f.monitor.report_heartbeat(0, 0, true, 2.0);
  EXPECT_FALSE(f.monitor.device_considered_failed(0, 0));
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 2u);
}

TEST(HealthMonitor, ThreeConsecutiveMissesFailTheDevice) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    f.monitor.report_heartbeat(0, 0, false, 1.0 + i);
  }
  EXPECT_TRUE(f.monitor.device_considered_failed(0, 0));
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 1u);
  // Further misses don't double-fail.
  f.monitor.report_heartbeat(0, 0, false, 5.0);
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 1u);
}

TEST(HealthMonitor, RecoveryNeedsTwoGoodHeartbeats) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    f.monitor.report_heartbeat(0, 0, false, 1.0 + i);
  }
  f.monitor.report_heartbeat(0, 0, true, 5.0);
  EXPECT_TRUE(f.monitor.device_considered_failed(0, 0));
  f.monitor.report_heartbeat(0, 0, true, 6.0);
  EXPECT_FALSE(f.monitor.device_considered_failed(0, 0));
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 2u);
}

TEST(HealthMonitor, FlappingHeartbeatNeverTriggers) {
  Fixture f;
  for (int i = 0; i < 20; ++i) {
    f.monitor.report_heartbeat(0, 0, i % 2 == 0, 1.0 + i);
  }
  EXPECT_FALSE(f.monitor.device_considered_failed(0, 0));
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 2u);
}

TEST(HealthMonitor, PortIsolationAfterSustainedErrors) {
  Fixture f;
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 1.0);
  EXPECT_FALSE(f.monitor.port_considered_isolated(0, 1, 3));
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 2.0);
  EXPECT_TRUE(f.monitor.port_considered_isolated(0, 1, 3));
  EXPECT_LT(f.recovery.device_capacity_fraction(0, 1), 1.0);
  // Clean observations bring it back.
  f.monitor.report_port_errors(0, 1, 3, 0.0, 3.0);
  EXPECT_FALSE(f.monitor.port_considered_isolated(0, 1, 3));
  EXPECT_DOUBLE_EQ(f.recovery.device_capacity_fraction(0, 1), 1.0);
}

TEST(HealthMonitor, PortsTrackedIndependently) {
  Fixture f;
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 1.0);
  f.monitor.report_port_errors(0, 1, 4, 1e-4, 1.0);
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 2.0);
  EXPECT_TRUE(f.monitor.port_considered_isolated(0, 1, 3));
  EXPECT_FALSE(f.monitor.port_considered_isolated(0, 1, 4));
}

TEST(HealthMonitor, ValidatesConfig) {
  Fixture f;
  HealthMonitor::Config bad;
  bad.fail_after_missed = 0;
  EXPECT_THROW(HealthMonitor(&f.recovery, bad), std::invalid_argument);
  EXPECT_THROW(HealthMonitor(nullptr, HealthMonitor::Config{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sf::cluster
