#include "cluster/health.hpp"

#include <gtest/gtest.h>

namespace sf::cluster {
namespace {

struct Fixture {
  Controller controller;
  DisasterRecovery recovery;
  HealthMonitor monitor;

  Fixture()
      : controller([] {
          Controller::Config config;
          config.cluster_template.primary_devices = 2;
          config.cluster_template.backup_devices = 1;
          config.initial_clusters = 1;
          return config;
        }()),
        recovery(&controller,
                 [] {
                   DisasterRecovery::Config config;
                   config.cold_standby_pool = 0;
                   config.min_live_fraction = 0.0;
                   return config;
                 }()),
        monitor(&recovery, HealthMonitor::Config{}) {}
};

TEST(HealthMonitor, SingleMissedHeartbeatDoesNotFail) {
  Fixture f;
  f.monitor.report_heartbeat(0, 0, false, 1.0);
  f.monitor.report_heartbeat(0, 0, true, 2.0);
  EXPECT_FALSE(f.monitor.device_considered_failed(0, 0));
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 2u);
}

TEST(HealthMonitor, ThreeConsecutiveMissesFailTheDevice) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    f.monitor.report_heartbeat(0, 0, false, 1.0 + i);
  }
  EXPECT_TRUE(f.monitor.device_considered_failed(0, 0));
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 1u);
  // Further misses don't double-fail.
  f.monitor.report_heartbeat(0, 0, false, 5.0);
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 1u);
}

TEST(HealthMonitor, RecoveryNeedsTwoGoodHeartbeats) {
  Fixture f;
  for (int i = 0; i < 3; ++i) {
    f.monitor.report_heartbeat(0, 0, false, 1.0 + i);
  }
  f.monitor.report_heartbeat(0, 0, true, 5.0);
  EXPECT_TRUE(f.monitor.device_considered_failed(0, 0));
  f.monitor.report_heartbeat(0, 0, true, 6.0);
  EXPECT_FALSE(f.monitor.device_considered_failed(0, 0));
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 2u);
}

TEST(HealthMonitor, FlappingHeartbeatNeverTriggers) {
  Fixture f;
  for (int i = 0; i < 20; ++i) {
    f.monitor.report_heartbeat(0, 0, i % 2 == 0, 1.0 + i);
  }
  EXPECT_FALSE(f.monitor.device_considered_failed(0, 0));
  EXPECT_EQ(f.controller.cluster(0).live_device_count(), 2u);
}

TEST(HealthMonitor, PortIsolationAfterSustainedErrors) {
  Fixture f;
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 1.0);
  EXPECT_FALSE(f.monitor.port_considered_isolated(0, 1, 3));
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 2.0);
  EXPECT_TRUE(f.monitor.port_considered_isolated(0, 1, 3));
  EXPECT_LT(f.recovery.device_capacity_fraction(0, 1), 1.0);
  // Recovery is hysteretic too: one clean observation is not enough...
  f.monitor.report_port_errors(0, 1, 3, 0.0, 3.0);
  EXPECT_TRUE(f.monitor.port_considered_isolated(0, 1, 3));
  EXPECT_LT(f.recovery.device_capacity_fraction(0, 1), 1.0);
  // ...two sustained clean observations bring it back.
  f.monitor.report_port_errors(0, 1, 3, 0.0, 4.0);
  EXPECT_FALSE(f.monitor.port_considered_isolated(0, 1, 3));
  EXPECT_DOUBLE_EQ(f.recovery.device_capacity_fraction(0, 1), 1.0);
}

TEST(HealthMonitor, FlappingPortDoesNotOscillate) {
  Fixture f;
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 1.0);
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 2.0);
  ASSERT_TRUE(f.monitor.port_considered_isolated(0, 1, 3));
  const std::size_t events_after_isolation = f.recovery.events().size();
  // A strict good/bad alternation never sustains recover_port_after_ok
  // clean observations, so the port must stay isolated the whole time —
  // before the recovery hysteresis existed, every single good probe
  // re-admitted the port and the next bad pair re-isolated it.
  for (int i = 0; i < 10; ++i) {
    f.monitor.report_port_errors(0, 1, 3, i % 2 == 0 ? 0.0 : 1e-4, 3.0 + i);
    EXPECT_TRUE(f.monitor.port_considered_isolated(0, 1, 3));
  }
  EXPECT_EQ(f.recovery.events().size(), events_after_isolation);
  EXPECT_LT(f.recovery.device_capacity_fraction(0, 1), 1.0);
}

TEST(HealthMonitor, PortFaultEscalationSyncsDeviceState) {
  // All ports of device 0 go dark: DisasterRecovery escalates to a
  // node-level failure on its own. The monitor must learn about it via
  // the listener so the device is not "healthy" in one state machine and
  // "failed" in the other.
  Controller controller([] {
    Controller::Config config;
    config.cluster_template.primary_devices = 2;
    config.cluster_template.backup_devices = 0;
    return config;
  }());
  DisasterRecovery recovery(&controller, [] {
    DisasterRecovery::Config config;
    config.cold_standby_pool = 0;
    config.min_live_fraction = 0.0;
    config.ports_per_device = 4;
    return config;
  }());
  HealthMonitor monitor(&recovery, HealthMonitor::Config{});

  for (unsigned port = 0; port < 4; ++port) {
    monitor.report_port_errors(0, 0, port, 1e-3, 1.0);
    monitor.report_port_errors(0, 0, port, 1e-3, 2.0);
  }
  EXPECT_TRUE(monitor.device_considered_failed(0, 0));
  EXPECT_EQ(controller.cluster(0).live_device_count(), 1u);

  // Because the monitor adopted the failure, good heartbeats now drive a
  // real recovery (previously they were ignored: devices_ never learned).
  monitor.report_heartbeat(0, 0, true, 3.0);
  monitor.report_heartbeat(0, 0, true, 4.0);
  EXPECT_FALSE(monitor.device_considered_failed(0, 0));
  EXPECT_EQ(controller.cluster(0).live_device_count(), 2u);
  EXPECT_TRUE(recovery.quiescent());
}

TEST(HealthMonitor, ColdStandbyReplacementResetsObservations) {
  // One of two primaries dies with a port already isolated; the pool has
  // a standby and the live fraction dips below threshold, so recovery
  // swaps in fresh hardware. Both the recovery ledger and the monitor's
  // observation history for the slot must reset.
  Controller controller([] {
    Controller::Config config;
    config.cluster_template.primary_devices = 2;
    config.cluster_template.backup_devices = 0;
    return config;
  }());
  DisasterRecovery recovery(&controller, [] {
    DisasterRecovery::Config config;
    config.cold_standby_pool = 1;
    config.min_live_fraction = 0.9;
    config.ports_per_device = 4;
    return config;
  }());
  HealthMonitor monitor(&recovery, HealthMonitor::Config{});

  monitor.report_port_errors(0, 0, 2, 1e-3, 1.0);
  monitor.report_port_errors(0, 0, 2, 1e-3, 2.0);
  ASSERT_TRUE(monitor.port_considered_isolated(0, 0, 2));
  ASSERT_EQ(recovery.isolated_port_count(0, 0), 1u);

  for (int i = 0; i < 3; ++i) {
    monitor.report_heartbeat(0, 0, false, 3.0 + i);
  }
  // Standby activated: slot serves, old port ledger cleared everywhere.
  EXPECT_EQ(recovery.cold_standby_available(), 0u);
  EXPECT_EQ(controller.cluster(0).live_device_count(), 2u);
  EXPECT_FALSE(monitor.device_considered_failed(0, 0));
  EXPECT_FALSE(monitor.port_considered_isolated(0, 0, 2));
  EXPECT_EQ(recovery.isolated_port_count(0, 0), 0u);
  EXPECT_DOUBLE_EQ(recovery.device_capacity_fraction(0, 0), 1.0);
  EXPECT_TRUE(recovery.quiescent());
}

TEST(HealthMonitor, PortsTrackedIndependently) {
  Fixture f;
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 1.0);
  f.monitor.report_port_errors(0, 1, 4, 1e-4, 1.0);
  f.monitor.report_port_errors(0, 1, 3, 1e-4, 2.0);
  EXPECT_TRUE(f.monitor.port_considered_isolated(0, 1, 3));
  EXPECT_FALSE(f.monitor.port_considered_isolated(0, 1, 4));
}

TEST(HealthMonitor, ValidatesConfig) {
  Fixture f;
  HealthMonitor::Config bad;
  bad.fail_after_missed = 0;
  EXPECT_THROW(HealthMonitor(&f.recovery, bad), std::invalid_argument);
  EXPECT_THROW(HealthMonitor(nullptr, HealthMonitor::Config{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sf::cluster
