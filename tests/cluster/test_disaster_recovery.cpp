#include "cluster/disaster_recovery.hpp"

#include <gtest/gtest.h>

namespace sf::cluster {
namespace {

Controller::Config small_cluster() {
  Controller::Config config;
  config.cluster_template.primary_devices = 4;
  config.cluster_template.backup_devices = 0;
  return config;
}

DisasterRecovery::Config recovery_config(std::size_t standby,
                                         double min_live_fraction) {
  DisasterRecovery::Config config;
  config.cold_standby_pool = standby;
  config.min_live_fraction = min_live_fraction;
  config.ports_per_device = 8;
  return config;
}

TEST(DisasterRecovery, PortIsolationShavesCapacity) {
  Controller controller(small_cluster());
  DisasterRecovery recovery(&controller, recovery_config(0, 0.0));
  recovery.on_port_fault(0, 1, 3, 1.0);
  recovery.on_port_fault(0, 1, 4, 2.0);
  EXPECT_EQ(recovery.isolated_port_count(0, 1), 2u);
  EXPECT_DOUBLE_EQ(recovery.device_capacity_fraction(0, 1), 1.0 - 2.0 / 8.0);
  EXPECT_FALSE(recovery.quiescent());
  recovery.on_port_recovery(0, 1, 3, 3.0);
  recovery.on_port_recovery(0, 1, 4, 4.0);
  EXPECT_EQ(recovery.isolated_port_count(0, 1), 0u);
  EXPECT_DOUBLE_EQ(recovery.device_capacity_fraction(0, 1), 1.0);
  // The last recovery must erase the slot entry, not park a zero there.
  EXPECT_TRUE(recovery.quiescent());
}

TEST(DisasterRecovery, DeviceRecoveryClearsStalePortLedger) {
  Controller controller(small_cluster());
  DisasterRecovery recovery(&controller, recovery_config(0, 0.0));
  recovery.on_port_fault(0, 2, 0, 1.0);
  recovery.on_port_fault(0, 2, 1, 1.0);
  ASSERT_EQ(recovery.isolated_port_count(0, 2), 2u);

  recovery.on_device_failure(0, 2, 2.0);
  recovery.on_device_recovery(0, 2, 3.0);
  // The slot came back on fresh (or rebooted) hardware: the old isolated
  // ports no longer exist, so the ledger must not keep shaving capacity.
  EXPECT_EQ(recovery.isolated_port_count(0, 2), 0u);
  EXPECT_DOUBLE_EQ(recovery.device_capacity_fraction(0, 2), 1.0);
  EXPECT_TRUE(recovery.quiescent());
}

TEST(DisasterRecovery, ColdStandbyActivationClearsStalePortLedger) {
  Controller controller(small_cluster());
  // min_live_fraction 0.9: any single failure dips below it.
  DisasterRecovery recovery(&controller, recovery_config(2, 0.9));
  recovery.on_port_fault(0, 0, 5, 1.0);
  ASSERT_EQ(recovery.isolated_port_count(0, 0), 1u);

  recovery.on_device_failure(0, 0, 2.0);
  EXPECT_EQ(recovery.cold_standby_available(), 1u);
  EXPECT_EQ(controller.cluster(0).live_device_count(), 4u);
  // The standby is fresh hardware: the dead device's isolated-port count
  // must not follow it into the slot.
  EXPECT_EQ(recovery.isolated_port_count(0, 0), 0u);
  EXPECT_DOUBLE_EQ(recovery.device_capacity_fraction(0, 0), 1.0);
  EXPECT_TRUE(recovery.quiescent());
}

TEST(DisasterRecovery, AllPortsGoneEscalatesToDeviceFailure) {
  Controller controller(small_cluster());
  DisasterRecovery recovery(&controller, recovery_config(0, 0.0));
  for (unsigned port = 0; port < 8; ++port) {
    recovery.on_port_fault(0, 3, port, 1.0);
  }
  EXPECT_EQ(controller.cluster(0).live_device_count(), 3u);
  EXPECT_EQ(controller.cluster(0).device_health(3), DeviceHealth::kFailed);
}

TEST(DisasterRecovery, ListenerHearsEscalationAndReplacement) {
  struct Spy : RecoveryListener {
    std::vector<std::pair<bool, std::size_t>> calls;  // (failed?, device)
    void on_device_marked_failed(std::size_t, std::size_t device,
                                 double) override {
      calls.emplace_back(true, device);
    }
    void on_device_marked_recovered(std::size_t, std::size_t device,
                                    double) override {
      calls.emplace_back(false, device);
    }
  };

  Controller controller(small_cluster());
  DisasterRecovery recovery(&controller, recovery_config(1, 0.9));
  Spy spy;
  recovery.set_listener(&spy);

  // Escalation via port faults notifies "failed", and the immediate
  // cold-standby replacement notifies "recovered" — in that order.
  for (unsigned port = 0; port < 8; ++port) {
    recovery.on_port_fault(0, 1, port, 1.0);
  }
  ASSERT_EQ(spy.calls.size(), 2u);
  EXPECT_EQ(spy.calls[0], (std::pair<bool, std::size_t>{true, 1}));
  EXPECT_EQ(spy.calls[1], (std::pair<bool, std::size_t>{false, 1}));
  EXPECT_EQ(controller.cluster(0).live_device_count(), 4u);
  recovery.set_listener(nullptr);
}

}  // namespace
}  // namespace sf::cluster
