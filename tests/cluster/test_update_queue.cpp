#include "cluster/update_queue.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sf::cluster {
namespace {

using dataplane::TableOp;
using dataplane::TableOpStatus;

/// A programmable target: rejects with kRateLimited until `accept_after`
/// attempts have been seen, and records the order entries land in.
struct ScriptedTarget : dataplane::TableProgrammer {
  std::size_t reject_next = 0;   // reject this many calls, then accept
  std::size_t calls = 0;
  std::vector<std::string> landed;

  TableOpStatus answer(const std::string& label) {
    ++calls;
    if (reject_next > 0) {
      --reject_next;
      return TableOpStatus::kRateLimited;
    }
    landed.push_back(label);
    return TableOpStatus::kOk;
  }

  dataplane::BatchResult apply(const dataplane::TableOpBatch& batch) override {
    dataplane::BatchResult result;
    for (const TableOp& op : batch.ops) {
      switch (op.kind) {
        case TableOp::Kind::kAddRoute:
          result.record(answer("add-route:" + std::to_string(op.vni)));
          break;
        case TableOp::Kind::kDelRoute:
          result.record(answer("del-route:" + std::to_string(op.vni)));
          break;
        case TableOp::Kind::kAddMapping:
          result.record(
              answer("add-map:" + std::to_string(op.mapping_key.vni)));
          break;
        case TableOp::Kind::kDelMapping:
          result.record(
              answer("del-map:" + std::to_string(op.mapping_key.vni)));
          break;
      }
    }
    return result;
  }
};

TableOp route_op(TableOp::Kind kind, net::Vni vni) {
  TableOp op;
  op.kind = kind;
  op.vni = vni;
  return op;
}

TEST(UpdateQueue, AppliesDirectlyWhenChannelClear) {
  ScriptedTarget target;
  UpdateQueue queue(target, UpdateQueue::Config{});
  EXPECT_EQ(queue.submit(route_op(TableOp::Kind::kAddRoute, 7), 0.0),
            TableOpStatus::kOk);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(target.landed, std::vector<std::string>{"add-route:7"});
}

TEST(UpdateQueue, RateLimitedOpIsParkedNotLost) {
  ScriptedTarget target;
  target.reject_next = 1;
  UpdateQueue queue(target, UpdateQueue::Config{});
  EXPECT_EQ(queue.submit(route_op(TableOp::Kind::kAddRoute, 7), 0.0),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(queue.pending(), 1u);
  // Not due yet: nothing happens.
  EXPECT_EQ(queue.advance(0.1), 0u);
  // Due: the retry lands it.
  EXPECT_EQ(queue.advance(0.5), 1u);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(target.landed, std::vector<std::string>{"add-route:7"});
  EXPECT_EQ(queue.stats().deferred, 1u);
  EXPECT_EQ(queue.stats().applied, 1u);
}

TEST(UpdateQueue, PreservesSubmissionOrderAcrossRetries) {
  // The poster-child inversion: "remove A" gets rate limited, then
  // "add A" arrives while the channel is clear again. Were later ops
  // allowed to overtake parked ones, the add would land first and the
  // delayed remove would then wipe the entry — the opposite final state.
  ScriptedTarget target;
  target.reject_next = 1;
  UpdateQueue queue(target, UpdateQueue::Config{});
  EXPECT_EQ(queue.submit(route_op(TableOp::Kind::kDelRoute, 7), 0.0),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(queue.submit(route_op(TableOp::Kind::kAddRoute, 7), 0.0),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_EQ(queue.advance(1.0), 2u);
  const std::vector<std::string> want{"del-route:7", "add-route:7"};
  EXPECT_EQ(target.landed, want);
}

TEST(UpdateQueue, BackoffGrowsAndCaps) {
  ScriptedTarget target;
  target.reject_next = 100;  // keep rejecting
  UpdateQueue::Config config;
  config.initial_backoff_s = 1.0;
  config.backoff_multiplier = 2.0;
  config.max_backoff_s = 4.0;
  UpdateQueue queue(target, config);
  queue.submit(route_op(TableOp::Kind::kAddRoute, 7), 0.0);
  ASSERT_EQ(queue.pending(), 1u);
  EXPECT_DOUBLE_EQ(queue.next_retry_at(), 1.0);
  queue.advance(1.0);  // retry fails -> backoff 2s
  EXPECT_DOUBLE_EQ(queue.next_retry_at(), 3.0);
  queue.advance(3.0);  // retry fails -> backoff 4s
  EXPECT_DOUBLE_EQ(queue.next_retry_at(), 7.0);
  queue.advance(7.0);  // retry fails -> capped at 4s
  EXPECT_DOUBLE_EQ(queue.next_retry_at(), 11.0);
  EXPECT_EQ(queue.pending(), 1u);
  // Channel finally clears: the op still lands — never silently dropped.
  target.reject_next = 0;
  EXPECT_EQ(queue.advance(11.0), 1u);
  EXPECT_EQ(target.landed, std::vector<std::string>{"add-route:7"});
}

TEST(UpdateQueue, MaxAttemptsGivesUp) {
  ScriptedTarget target;
  target.reject_next = 100;
  UpdateQueue::Config config;
  config.max_attempts = 3;
  UpdateQueue queue(target, config);
  queue.submit(route_op(TableOp::Kind::kAddRoute, 7), 0.0);
  for (double now = 1.0; now < 64.0; now += 1.0) queue.advance(now);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.stats().gave_up, 1u);
  EXPECT_TRUE(target.landed.empty());
}

TEST(UpdateQueue, ChannelOutageParksEverything) {
  ScriptedTarget target;
  UpdateQueue queue(target, UpdateQueue::Config{});
  queue.set_channel_up(false);
  EXPECT_EQ(queue.submit(route_op(TableOp::Kind::kAddRoute, 1), 0.0),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(queue.submit(route_op(TableOp::Kind::kAddRoute, 2), 0.0),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(queue.advance(10.0), 0u);  // down: nothing drains
  EXPECT_EQ(queue.pending(), 2u);
  queue.set_channel_up(true);
  EXPECT_EQ(queue.advance(10.0), 2u);
  const std::vector<std::string> want{"add-route:1", "add-route:2"};
  EXPECT_EQ(target.landed, want);
}

TEST(UpdateQueue, OverflowRejectsBeyondMaxPending) {
  ScriptedTarget target;
  UpdateQueue::Config config;
  config.max_pending = 2;
  UpdateQueue queue(target, config);
  queue.set_channel_up(false);
  queue.submit(route_op(TableOp::Kind::kAddRoute, 1), 0.0);
  queue.submit(route_op(TableOp::Kind::kAddRoute, 2), 0.0);
  queue.submit(route_op(TableOp::Kind::kAddRoute, 3), 0.0);
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_EQ(queue.stats().overflowed, 1u);
}

TEST(UpdateQueue, DeferParksWithoutAttemptingTheChannel) {
  ScriptedTarget target;
  UpdateQueue queue(target, UpdateQueue::Config{});
  EXPECT_EQ(queue.defer(route_op(TableOp::Kind::kAddRoute, 7), 0.0),
            TableOpStatus::kRateLimited);
  // Parked straight away: the target never saw a call.
  EXPECT_EQ(target.calls, 0u);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.stats().submitted, 1u);
  EXPECT_EQ(queue.stats().deferred, 1u);
  EXPECT_EQ(queue.advance(1.0), 1u);
  EXPECT_EQ(target.landed, std::vector<std::string>{"add-route:7"});
}

TEST(UpdateQueue, DeferDoesNotBurnAnAttempt) {
  // A deferred op starts at attempts = 0, so with max_attempts = 2 it
  // survives one failed retry where a submitted op would give up.
  ScriptedTarget target;
  target.reject_next = 1;
  UpdateQueue::Config config;
  config.max_attempts = 2;
  UpdateQueue queue(target, config);
  queue.defer(route_op(TableOp::Kind::kAddRoute, 7), 0.0);
  EXPECT_EQ(queue.advance(1.0), 0u);  // retry refused: attempts 0 -> 1
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.stats().gave_up, 0u);
  EXPECT_EQ(queue.advance(10.0), 1u);  // second retry lands it
  EXPECT_EQ(target.landed, std::vector<std::string>{"add-route:7"});
}

TEST(UpdateQueue, OverflowKeepsFifoOfTheAdmittedPrefix) {
  // Bounded-queue overflow at capacity: the ops that fit drain strictly
  // in arrival order, the overflowed one is reported, not reordered in.
  ScriptedTarget target;
  UpdateQueue::Config config;
  config.max_pending = 3;
  UpdateQueue queue(target, config);
  queue.set_channel_up(false);
  for (net::Vni vni = 1; vni <= 5; ++vni) {
    queue.submit(route_op(TableOp::Kind::kAddRoute, vni), 0.0);
  }
  EXPECT_EQ(queue.pending(), 3u);
  EXPECT_EQ(queue.stats().overflowed, 2u);
  queue.set_channel_up(true);
  EXPECT_EQ(queue.advance(1.0), 3u);
  const std::vector<std::string> want{"add-route:1", "add-route:2",
                                      "add-route:3"};
  EXPECT_EQ(target.landed, want);
}

TEST(UpdateQueue, BackwardClockNeverRetriesEarlyOrLosesOps) {
  // Non-monotonic clock against the backoff: a clock that steps backwards
  // must not fire retries early, must not corrupt the due times, and the
  // parked op still lands once real time passes the deadline.
  ScriptedTarget target;
  target.reject_next = 2;
  UpdateQueue::Config config;
  config.initial_backoff_s = 1.0;
  config.backoff_multiplier = 2.0;
  config.max_backoff_s = 8.0;
  UpdateQueue queue(target, config);
  queue.submit(route_op(TableOp::Kind::kAddRoute, 7), 10.0);  // due 11.0
  EXPECT_EQ(queue.advance(5.0), 0u);   // clock went backwards: nothing
  EXPECT_EQ(queue.advance(0.0), 0u);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_DOUBLE_EQ(queue.next_retry_at(), 11.0);
  EXPECT_EQ(queue.advance(11.0), 0u);  // refused: due 11 + backoff 2
  EXPECT_DOUBLE_EQ(queue.next_retry_at(), 13.0);
  EXPECT_EQ(queue.advance(4.0), 0u);   // backwards again: still parked
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.advance(13.0), 1u);
  EXPECT_EQ(target.landed, std::vector<std::string>{"add-route:7"});
}

TEST(UpdateQueue, ValidatesConfig) {
  ScriptedTarget target;
  UpdateQueue::Config bad;
  bad.initial_backoff_s = 0;
  EXPECT_THROW(UpdateQueue(target, bad), std::invalid_argument);
  bad = UpdateQueue::Config{};
  bad.backoff_multiplier = 0.5;
  EXPECT_THROW(UpdateQueue(target, bad), std::invalid_argument);
}

}  // namespace
}  // namespace sf::cluster
