// Controller operation fuzz: random sequences of VPC admissions, route
// churn, migrations, device failures/recoveries — after every burst the
// system must still satisfy its core invariants: desired state == device
// tables (consistency audit), every VNI's probes resolve, and peer groups
// stay co-located.

#include <gtest/gtest.h>

#include "cluster/controller.hpp"
#include "cluster/probe.hpp"
#include "workload/rng.hpp"
#include "workload/topology.hpp"

namespace sf::cluster {
namespace {

class ControllerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ControllerFuzzTest, InvariantsSurviveRandomOperations) {
  workload::Rng rng(GetParam());

  workload::TopologyConfig topo;
  topo.vpc_count = 24;
  topo.total_vms = 500;
  topo.nc_count = 60;
  topo.peerings_per_vpc = 0.4;
  topo.seed = GetParam() * 3 + 1;
  const workload::RegionTopology region = workload::generate_topology(topo);

  Controller::Config config;
  config.cluster_template.primary_devices = 2;
  config.cluster_template.backup_devices = 1;
  config.max_clusters = 3;
  config.initial_clusters = 3;
  config.routes_water_level = 10'000;
  Controller controller(config);
  ASSERT_EQ(controller.install_topology(region), region.vpcs.size());

  std::vector<std::pair<net::Vni, net::IpPrefix>> extra_routes;

  auto verify = [&]() {
    for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
      const auto audit = controller.check_consistency(c);
      ASSERT_EQ(audit.missing_on_device, 0u) << "cluster " << c;
    }
    ProbeCampaign campaign;
    const auto report = campaign.run_all(controller, region);
    ASSERT_TRUE(report.passed())
        << (report.failures.empty() ? "?" : report.failures.front());
    // Peer groups co-located.
    for (const auto& vpc : region.vpcs) {
      for (net::Vni peer : vpc.peers) {
        EXPECT_EQ(controller.cluster_for(vpc.vni),
                  controller.cluster_for(peer))
            << vpc.vni << " vs peer " << peer;
      }
    }
  };

  for (int burst = 0; burst < 8; ++burst) {
    for (int op = 0; op < 20; ++op) {
      const int roll = static_cast<int>(rng.uniform(10));
      const workload::VpcRecord& vpc =
          region.vpcs[rng.uniform(region.vpcs.size())];
      if (roll < 4) {
        // Add an extra route.
        const net::IpPrefix prefix = net::Ipv4Prefix(
            net::Ipv4Addr(
                (192u << 24) |
                static_cast<std::uint32_t>(rng.uniform(1u << 20)) << 4),
            28);
        if (dataplane::succeeded(controller.install_route(
                vpc.vni, prefix,
                tables::VxlanRouteAction{tables::RouteScope::kLocal, 0,
                                         {}}))) {
          extra_routes.push_back({vpc.vni, prefix});
        }
      } else if (roll < 6 && !extra_routes.empty()) {
        const std::size_t victim = rng.uniform(extra_routes.size());
        controller.remove_route(extra_routes[victim].first,
                                extra_routes[victim].second);
        extra_routes.erase(extra_routes.begin() +
                           static_cast<std::ptrdiff_t>(victim));
      } else if (roll < 8) {
        // Migrate a VPC (and its peer group) to a random cluster.
        const std::uint32_t target = static_cast<std::uint32_t>(
            rng.uniform(controller.cluster_count()));
        EXPECT_TRUE(controller.migrate_vpc(vpc.vni, target));
      } else {
        // Flap a device (never the last live one of a cluster).
        const std::size_t c = rng.uniform(controller.cluster_count());
        auto& cluster = controller.cluster(c);
        const std::size_t d = rng.uniform(cluster.device_count());
        if (cluster.device_health(d) == DeviceHealth::kHealthy &&
            cluster.live_device_count() > 1) {
          cluster.fail_device(d);
        } else if (cluster.device_health(d) == DeviceHealth::kFailed) {
          cluster.recover_device(d);
        }
      }
    }
    verify();
  }

  // Recover everything and verify once more.
  for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
    auto& cluster = controller.cluster(c);
    for (std::size_t d = 0; d < cluster.device_count(); ++d) {
      if (cluster.device_health(d) == DeviceHealth::kFailed) {
        cluster.recover_device(d);
      }
    }
  }
  verify();
}

TEST(ControllerMigration, MovesTablesAndSteering) {
  Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 0;
  config.max_clusters = 2;
  config.initial_clusters = 2;
  Controller controller(config);

  workload::VpcRecord vpc;
  vpc.vni = 500;
  vpc.family = net::IpFamily::kV4;
  vpc.routes.push_back(workload::RouteRecord{
      net::IpPrefix::must_parse("10.5.0.0/24"),
      tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, {}}});
  vpc.vms.push_back(workload::VmRecord{
      net::IpAddr::must_parse("10.5.0.2"), net::Ipv4Addr(172, 16, 0, 1)});
  ASSERT_TRUE(controller.add_vpc(vpc));
  const auto source = *controller.cluster_for(500);
  const auto target = source == 0 ? 1u : 0u;

  ASSERT_TRUE(controller.migrate_vpc(500, target));
  EXPECT_EQ(controller.cluster_for(500), target);
  EXPECT_EQ(controller.cluster(source).route_count(), 0u);
  EXPECT_EQ(controller.cluster(source).mapping_count(), 0u);
  EXPECT_EQ(controller.cluster(target).route_count(), 1u);
  EXPECT_EQ(controller.cluster(target).mapping_count(), 1u);

  net::OverlayPacket pkt;
  pkt.vni = 500;
  pkt.inner.src = net::IpAddr::must_parse("10.5.0.9");
  pkt.inner.dst = net::IpAddr::must_parse("10.5.0.2");
  pkt.payload_size = 64;
  EXPECT_EQ(controller.process(pkt).action,
            dataplane::Action::kForwardToNc);

  // Idempotent and bounds-checked.
  EXPECT_TRUE(controller.migrate_vpc(500, target));
  EXPECT_FALSE(controller.migrate_vpc(500, 99));
  EXPECT_FALSE(controller.migrate_vpc(12345, target));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzzTest,
                         ::testing::Values(601, 602, 603));

}  // namespace
}  // namespace sf::cluster
