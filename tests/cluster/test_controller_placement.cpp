// Controller -> PlacementEngine wiring: hardware-tier table ops accumulate
// into a WorkloadDelta and drive one incremental re-placement per
// TableOpBatch; software-tier (overflow) ops stay out of the placement
// workload; the engine is absent (and the controller byte-identical)
// unless placement_enabled is set.

#include "cluster/controller.hpp"

#include <gtest/gtest.h>

namespace sf::cluster {
namespace {

using net::IpAddr;
using tables::RouteScope;
using tables::VxlanRouteAction;
using workload::VpcRecord;

Controller::Config small_config() {
  Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 1;
  config.max_clusters = 3;
  config.routes_water_level = 50;
  config.mappings_water_level = 100;
  return config;
}

VpcRecord make_vpc(net::Vni vni, std::size_t subnets, std::size_t vms) {
  VpcRecord vpc;
  vpc.vni = vni;
  vpc.family = net::IpFamily::kV4;
  for (std::size_t s = 0; s < subnets; ++s) {
    vpc.routes.push_back(workload::RouteRecord{
        net::Ipv4Prefix(
            net::Ipv4Addr(10, static_cast<std::uint8_t>(vni & 0xff),
                          static_cast<std::uint8_t>(s), 0),
            24),
        VxlanRouteAction{RouteScope::kLocal, 0, {}}});
  }
  for (std::size_t v = 0; v < vms; ++v) {
    vpc.vms.push_back(workload::VmRecord{
        IpAddr(net::Ipv4Addr(10, static_cast<std::uint8_t>(vni & 0xff), 0,
                             static_cast<std::uint8_t>(2 + v))),
        net::Ipv4Addr(172, 16, 0, 1)});
  }
  return vpc;
}

std::uint64_t replaces(const Controller& controller) {
  const auto& stats = controller.placement_engine()->stats();
  return stats.delta_applies + stats.full_recomputes;
}

TEST(ControllerPlacement, EngineAbsentUnlessEnabled) {
  Controller controller(small_config());
  EXPECT_EQ(controller.placement_engine(), nullptr);
}

TEST(ControllerPlacement, HardwareInstallsGrowTheWorkload) {
  Controller::Config config = small_config();
  config.placement_enabled = true;
  Controller controller(config);
  ASSERT_NE(controller.placement_engine(), nullptr);
  const auto& workload =
      controller.placement_engine()->placement().workload();
  EXPECT_EQ(workload.vxlan_routes_v4, 0u);

  ASSERT_TRUE(controller.add_vpc(make_vpc(100, 3, 4)));
  EXPECT_EQ(workload.vxlan_routes_v4, 3u);
  EXPECT_EQ(workload.vm_maps_v4, 4u);
  EXPECT_EQ(workload.vxlan_routes_v6, 0u);
  EXPECT_GE(replaces(controller), 1u);
}

TEST(ControllerPlacement, OneReplacePerBatchAndRemovesDecrement) {
  Controller::Config config = small_config();
  config.placement_enabled = true;
  Controller controller(config);
  ASSERT_TRUE(controller.add_vpc(make_vpc(100, 2, 1)));
  const auto& workload =
      controller.placement_engine()->placement().workload();
  ASSERT_EQ(workload.vxlan_routes_v4, 2u);
  const std::uint64_t before = replaces(controller);

  dataplane::TableOpBatch batch;
  batch.add_route(100, net::Ipv4Prefix(net::Ipv4Addr(10, 100, 200, 0), 24),
                  VxlanRouteAction{RouteScope::kLocal, 0, {}});
  batch.add_route(100, net::Ipv4Prefix(net::Ipv4Addr(10, 100, 201, 0), 24),
                  VxlanRouteAction{RouteScope::kLocal, 0, {}});
  batch.add_route(100, net::Ipv4Prefix(net::Ipv4Addr(10, 100, 202, 0), 24),
                  VxlanRouteAction{RouteScope::kLocal, 0, {}});
  ASSERT_TRUE(controller.apply(batch).all_succeeded());
  EXPECT_EQ(workload.vxlan_routes_v4, 5u);
  // Three ops, one batch: exactly one re-placement.
  EXPECT_EQ(replaces(controller), before + 1);

  dataplane::TableOpBatch removes;
  removes.del_route(100, net::Ipv4Prefix(net::Ipv4Addr(10, 100, 200, 0), 24));
  removes.del_route(100, net::Ipv4Prefix(net::Ipv4Addr(10, 100, 201, 0), 24));
  ASSERT_TRUE(controller.apply(removes).all_succeeded());
  EXPECT_EQ(workload.vxlan_routes_v4, 3u);
  EXPECT_EQ(replaces(controller), before + 2);
}

TEST(ControllerPlacement, ReinstallingSameRouteDoesNotDoubleCount) {
  Controller::Config config = small_config();
  config.placement_enabled = true;
  Controller controller(config);
  ASSERT_TRUE(controller.add_vpc(make_vpc(100, 1, 0)));
  const auto& workload =
      controller.placement_engine()->placement().workload();
  ASSERT_EQ(workload.vxlan_routes_v4, 1u);

  // Same prefix again (a replace, not a new entry): no workload growth,
  // and the empty placement delta triggers no re-placement.
  const std::uint64_t before = replaces(controller);
  dataplane::TableOpBatch batch;
  batch.add_route(100, net::Ipv4Prefix(net::Ipv4Addr(10, 100, 0, 0), 24),
                  VxlanRouteAction{RouteScope::kCrossRegion, 7, {}});
  ASSERT_TRUE(controller.apply(batch).all_succeeded());
  EXPECT_EQ(workload.vxlan_routes_v4, 1u);
  EXPECT_EQ(replaces(controller), before);
}

TEST(ControllerPlacement, SoftwareTierOpsStayOutOfTheWorkload) {
  Controller::Config config = small_config();
  config.placement_enabled = true;
  config.admit_overflow = true;
  config.max_clusters = 1;
  config.routes_water_level = 4;
  Controller controller(config);
  ASSERT_TRUE(controller.add_vpc(make_vpc(100, 4, 1)));  // fills the region
  const auto& workload =
      controller.placement_engine()->placement().workload();
  ASSERT_EQ(workload.vxlan_routes_v4, 4u);

  // The next VPC lands in the software tier; its tables must not count
  // toward the hardware placement workload.
  ASSERT_TRUE(controller.add_vpc(make_vpc(101, 5, 2)));
  ASSERT_TRUE(controller.is_overflow(101));
  EXPECT_EQ(workload.vxlan_routes_v4, 4u);
  EXPECT_EQ(workload.vm_maps_v4, 1u);
}

}  // namespace
}  // namespace sf::cluster
