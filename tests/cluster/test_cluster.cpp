#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/disaster_recovery.hpp"
#include "cluster/load_balancer.hpp"

namespace sf::cluster {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;
using tables::VmNcAction;
using tables::VmNcKey;
using tables::VxlanRouteAction;

TEST(VniDirector, AssignLookupUnassign) {
  VniDirector director;
  director.assign(100, 1);
  director.assign(101, 2);
  EXPECT_EQ(director.cluster_for(100), 1u);
  EXPECT_EQ(director.cluster_for(101), 2u);
  EXPECT_EQ(director.cluster_for(102), std::nullopt);
  director.unassign(100);
  EXPECT_EQ(director.cluster_for(100), std::nullopt);
  const auto counts = director.vnis_per_cluster();
  EXPECT_EQ(counts.at(2), 1u);
}

TEST(EcmpGroup, EnforcesNextHopCap) {
  EcmpGroup group(4);
  for (std::uint32_t i = 0; i < 4; ++i) group.add(i);
  EXPECT_THROW(group.add(4), std::length_error);
  EXPECT_EQ(group.size(), 4u);
}

TEST(EcmpGroup, PickIsDeterministicAndLive) {
  EcmpGroup group(64);
  group.add(10);
  group.add(20);
  group.add(30);
  net::FiveTuple flow{IpAddr::must_parse("10.0.0.1"),
                      IpAddr::must_parse("10.0.0.2"), 6, 1234, 80};
  const auto first = group.pick(flow);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(group.pick(flow), first);
  EXPECT_TRUE(group.contains(*first));
}

TEST(EcmpGroup, RemoveRestoresBalanceOverSurvivors) {
  EcmpGroup group(64);
  group.add(0);
  group.add(1);
  EXPECT_TRUE(group.remove(0));
  EXPECT_FALSE(group.remove(0));
  for (std::uint64_t h = 0; h < 16; ++h) {
    EXPECT_EQ(group.pick_by_hash(h), 1u);
  }
  EXPECT_FALSE(EcmpGroup(8).pick_by_hash(1).has_value());
}

XgwHCluster::Config small_cluster() {
  XgwHCluster::Config config;
  config.primary_devices = 2;
  config.backup_devices = 2;
  return config;
}

net::OverlayPacket sample_packet() {
  net::OverlayPacket pkt;
  pkt.vni = 10;
  pkt.inner.src = IpAddr::must_parse("192.168.10.2");
  pkt.inner.dst = IpAddr::must_parse("192.168.10.3");
  pkt.inner.proto = 6;
  pkt.inner.src_port = 1;
  pkt.inner.dst_port = 2;
  pkt.payload_size = 100;
  return pkt;
}

void install_sample(XgwHCluster& cluster) {
  cluster.install_route(10, IpPrefix::must_parse("192.168.10.0/24"),
                        VxlanRouteAction{RouteScope::kLocal, 0, {}});
  cluster.install_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.3")},
                          VmNcAction{net::Ipv4Addr(10, 1, 1, 12)});
}

TEST(XgwHCluster, FansOutTablesToAllDevices) {
  XgwHCluster cluster(small_cluster());
  install_sample(cluster);
  for (std::size_t d = 0; d < cluster.device_count(); ++d) {
    EXPECT_EQ(cluster.device(d).route_count(), 1u) << d;
    EXPECT_EQ(cluster.device(d).mapping_count(), 1u) << d;
  }
  EXPECT_EQ(cluster.route_count(), 1u);
}

TEST(XgwHCluster, ProcessesThroughLiveDevice) {
  XgwHCluster cluster(small_cluster());
  install_sample(cluster);
  const auto result = cluster.forward(sample_packet());
  EXPECT_EQ(result.action, dataplane::Action::kForwardToNc);
}

TEST(XgwHCluster, DeviceFailureShrinksEcmp) {
  XgwHCluster cluster(small_cluster());
  install_sample(cluster);
  EXPECT_EQ(cluster.live_device_count(), 2u);
  cluster.fail_device(0);
  EXPECT_EQ(cluster.live_device_count(), 1u);
  EXPECT_FALSE(cluster.failed_over());
  // Traffic still flows via the surviving primary.
  EXPECT_EQ(cluster.forward(sample_packet()).action,
            dataplane::Action::kForwardToNc);
}

TEST(XgwHCluster, FailsOverToBackupsWhenPrimariesDie) {
  XgwHCluster cluster(small_cluster());
  install_sample(cluster);
  cluster.fail_device(0);
  cluster.fail_device(1);
  EXPECT_TRUE(cluster.failed_over());
  EXPECT_EQ(cluster.live_device_count(), 2u);  // the two backups
  // Backups hold identical tables: forwarding continues.
  EXPECT_EQ(cluster.forward(sample_packet()).action,
            dataplane::Action::kForwardToNc);
  // Recovery of a primary switches back.
  cluster.recover_device(0);
  EXPECT_FALSE(cluster.failed_over());
}

TEST(XgwHCluster, AllDevicesDownDrops) {
  XgwHCluster cluster(small_cluster());
  install_sample(cluster);
  for (std::size_t d = 0; d < cluster.device_count(); ++d) {
    cluster.fail_device(d);
  }
  const auto result = cluster.forward(sample_packet());
  EXPECT_EQ(result.action, dataplane::Action::kDrop);
}

TEST(XgwHCluster, WaterLevelsReflectLoad) {
  XgwHCluster cluster(small_cluster());
  // Empty gateways still reserve the ALPM root bucket, so the baseline is
  // tiny but nonzero; installing tables must raise it.
  const double baseline = cluster.sram_water_level();
  EXPECT_LT(baseline, 1e-4);
  install_sample(cluster);
  EXPECT_GT(cluster.sram_water_level(), baseline);
}

TEST(XgwHCluster, RejectsZeroPrimaries) {
  XgwHCluster::Config config;
  config.primary_devices = 0;
  EXPECT_THROW(XgwHCluster{config}, std::invalid_argument);
}

}  // namespace
}  // namespace sf::cluster
