#include "cluster/probe.hpp"

#include <gtest/gtest.h>

#include "workload/topology.hpp"

namespace sf::cluster {
namespace {

struct Fixture {
  workload::RegionTopology topology;
  Controller controller;

  Fixture()
      : topology(workload::generate_topology([] {
          workload::TopologyConfig config;
          config.vpc_count = 30;
          config.total_vms = 600;
          config.nc_count = 60;
          config.peerings_per_vpc = 0.5;
          config.seed = 21;
          return config;
        }())),
        controller([] {
          Controller::Config config;
          config.cluster_template.primary_devices = 2;
          config.cluster_template.backup_devices = 0;
          config.max_clusters = 2;
          config.initial_clusters = 2;
          config.routes_water_level = 1'000;
          return config;
        }()) {
    controller.install_topology(topology);
  }
};

TEST(ProbeCampaign, CleanInstallPasses) {
  Fixture fixture;
  ProbeCampaign campaign;
  const auto report =
      campaign.run_all(fixture.controller, fixture.topology);
  EXPECT_GT(report.probes_sent, fixture.topology.vpcs.size());
  EXPECT_TRUE(report.passed()) << (report.failures.empty()
                                       ? "?"
                                       : report.failures.front());
}

TEST(ProbeCampaign, PerClusterRunCoversOnlyThatCluster) {
  Fixture fixture;
  ProbeCampaign campaign;
  const auto all = campaign.run_all(fixture.controller, fixture.topology);
  std::size_t per_cluster_total = 0;
  for (std::size_t c = 0; c < fixture.controller.cluster_count(); ++c) {
    per_cluster_total +=
        campaign.run(fixture.controller, c, fixture.topology).probes_sent;
  }
  EXPECT_EQ(per_cluster_total, all.probes_sent);
}

TEST(ProbeCampaign, DetectsMissingMapping) {
  Fixture fixture;
  // Corrupt one device: drop a VM mapping from every device of its
  // cluster so the probe deterministically crosses the gap.
  const auto& vpc = fixture.topology.vpcs[2];
  const auto& vm = vpc.vms.front();
  const auto cluster_id = fixture.controller.cluster_for(vpc.vni);
  ASSERT_TRUE(cluster_id.has_value());
  fixture.controller.cluster(*cluster_id)
      .remove_mapping(tables::VmNcKey{vpc.vni, vm.ip});

  ProbeCampaign campaign;
  const auto report =
      campaign.run(fixture.controller, *cluster_id, fixture.topology);
  EXPECT_GT(report.mismatches, 0u);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures.front().find(std::to_string(vpc.vni)),
            std::string::npos);
}

TEST(ProbeCampaign, DetectsWrongRouteAction) {
  Fixture fixture;
  // Replace a VPC's default route so Internet probes stop steering to
  // the software fleet.
  const auto& vpc = fixture.topology.vpcs[1];
  const auto cluster_id = fixture.controller.cluster_for(vpc.vni);
  ASSERT_TRUE(cluster_id.has_value());
  const net::IpPrefix default_route =
      vpc.family == net::IpFamily::kV4
          ? net::IpPrefix(net::Ipv4Prefix(net::Ipv4Addr(0), 0))
          : net::IpPrefix(net::Ipv6Prefix(net::Ipv6Addr(0, 0), 0));
  fixture.controller.cluster(*cluster_id)
      .install_route(vpc.vni, default_route,
                     tables::VxlanRouteAction{
                         tables::RouteScope::kCrossRegion, 0,
                         net::Ipv4Addr(198, 18, 0, 1)});

  ProbeCampaign campaign;
  const auto report =
      campaign.run(fixture.controller, *cluster_id, fixture.topology);
  EXPECT_GT(report.mismatches, 0u);
}

TEST(ProbeCampaign, FailureDetailListIsBounded) {
  Fixture fixture;
  // Break everything: fail all devices of cluster 0 so probes drop.
  auto& cluster = fixture.controller.cluster(0);
  for (std::size_t d = 0; d < cluster.device_count(); ++d) {
    cluster.fail_device(d);
  }
  ProbeCampaign::Config config;
  config.max_failure_details = 4;
  ProbeCampaign campaign(config);
  const auto report =
      campaign.run(fixture.controller, 0, fixture.topology);
  EXPECT_GT(report.mismatches, 4u);
  EXPECT_LE(report.failures.size(), 4u);
}

}  // namespace
}  // namespace sf::cluster
