#include "cluster/controller.hpp"

#include <gtest/gtest.h>

#include "cluster/disaster_recovery.hpp"

namespace sf::cluster {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;
using tables::VmNcAction;
using tables::VmNcKey;
using tables::VxlanRouteAction;
using workload::VpcRecord;

Controller::Config small_config() {
  Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 1;
  config.max_clusters = 3;
  config.routes_water_level = 6;
  config.mappings_water_level = 100;
  return config;
}

VpcRecord make_vpc(net::Vni vni, std::size_t subnets, std::size_t vms) {
  VpcRecord vpc;
  vpc.vni = vni;
  vpc.family = net::IpFamily::kV4;
  for (std::size_t s = 0; s < subnets; ++s) {
    vpc.routes.push_back(workload::RouteRecord{
        net::Ipv4Prefix(
            net::Ipv4Addr(10, static_cast<std::uint8_t>(vni & 0xff),
                          static_cast<std::uint8_t>(s), 0),
            24),
        VxlanRouteAction{RouteScope::kLocal, 0, {}}});
  }
  for (std::size_t v = 0; v < vms; ++v) {
    vpc.vms.push_back(workload::VmRecord{
        IpAddr(net::Ipv4Addr(10, static_cast<std::uint8_t>(vni & 0xff), 0,
                             static_cast<std::uint8_t>(2 + v))),
        net::Ipv4Addr(172, 16, 0, 1)});
  }
  return vpc;
}

TEST(Controller, AdmitsVpcAndInstallsTables) {
  Controller controller(small_config());
  EXPECT_TRUE(controller.add_vpc(make_vpc(100, 2, 3)));
  ASSERT_EQ(controller.cluster_count(), 1u);
  EXPECT_EQ(controller.cluster(0).route_count(), 2u);
  EXPECT_EQ(controller.cluster(0).mapping_count(), 3u);
  EXPECT_EQ(controller.cluster_for(100), 0u);
  EXPECT_FALSE(controller.add_vpc(make_vpc(100, 1, 1)));  // duplicate
}

TEST(Controller, OpensNewClusterAtWaterLevel) {
  Controller::Config config = small_config();
  config.routes_water_level = 4;  // admission checks the current level
  Controller controller(config);
  EXPECT_TRUE(controller.add_vpc(make_vpc(100, 4, 1)));
  EXPECT_TRUE(controller.add_vpc(make_vpc(101, 4, 1)));
  EXPECT_EQ(controller.cluster_count(), 2u);
  EXPECT_NE(controller.cluster_for(100), controller.cluster_for(101));
}

TEST(Controller, ClosesSalesWhenRegionFull) {
  Controller::Config config = small_config();
  config.max_clusters = 1;
  Controller controller(config);
  EXPECT_TRUE(controller.add_vpc(make_vpc(100, 6, 1)));
  EXPECT_FALSE(controller.add_vpc(make_vpc(101, 1, 1)));
  bool alerted = false;
  for (const std::string& alert : controller.alerts()) {
    if (alert.find("admission refused") != std::string::npos) {
      alerted = true;
    }
  }
  EXPECT_TRUE(alerted);
}

TEST(Controller, RoutesPacketsToTheRightCluster) {
  Controller controller(small_config());
  controller.add_vpc(make_vpc(100, 4, 2));
  controller.add_vpc(make_vpc(101, 4, 2));
  net::OverlayPacket pkt;
  pkt.vni = 101;
  pkt.inner.src = controller.cluster(0).device(0).config().device_ip;
  pkt.inner.src = IpAddr(net::Ipv4Addr(10, 101, 0, 2));
  pkt.inner.dst = IpAddr(net::Ipv4Addr(10, 101, 0, 3));
  pkt.payload_size = 64;
  const auto result = controller.process(pkt);
  EXPECT_EQ(result.action, dataplane::Action::kForwardToNc);

  pkt.vni = 999;  // unknown tenant
  EXPECT_EQ(controller.process(pkt).action, dataplane::Action::kDrop);
}

TEST(Controller, MirrorsOpsToSoftwareFleet) {
  Controller controller(small_config());
  std::vector<TableOp> mirrored;
  controller.set_mirror([&](const TableOp& op) { mirrored.push_back(op); });
  controller.add_vpc(make_vpc(100, 2, 3));
  EXPECT_EQ(mirrored.size(), 5u);  // 2 routes + 3 mappings
  controller.remove_mapping(
      VmNcKey{100, IpAddr(net::Ipv4Addr(10, 100, 0, 2))});
  EXPECT_EQ(mirrored.size(), 6u);
  EXPECT_EQ(mirrored.back().kind, TableOp::Kind::kDelMapping);
}

TEST(Controller, IncrementalRouteUpdates) {
  Controller controller(small_config());
  controller.add_vpc(make_vpc(100, 1, 1));
  const IpPrefix extra = IpPrefix::must_parse("10.200.0.0/24");
  EXPECT_EQ(controller.install_route(
                100, extra, VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            dataplane::TableOpStatus::kOk);
  EXPECT_EQ(controller.cluster(0).route_count(), 2u);
  EXPECT_EQ(controller.remove_route(100, extra),
            dataplane::TableOpStatus::kOk);
  EXPECT_EQ(controller.cluster(0).route_count(), 1u);
  EXPECT_EQ(controller.remove_route(100, extra),
            dataplane::TableOpStatus::kNotFound);
  EXPECT_EQ(controller.install_route(
                999, extra, VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            dataplane::TableOpStatus::kNotFound);
}

TEST(Controller, ConsistencyCheckPassesCleanInstall) {
  Controller controller(small_config());
  controller.add_vpc(make_vpc(100, 2, 3));
  const auto report = controller.check_consistency(0);
  EXPECT_GT(report.entries_checked, 0u);
  EXPECT_EQ(report.missing_on_device, 0u);
}

TEST(Controller, ConsistencyCheckDetectsDeviceDrift) {
  Controller controller(small_config());
  controller.add_vpc(make_vpc(100, 2, 3));
  // Simulate a buggy device silently losing an entry (§6.1: bugs,
  // misconfiguration or insufficient gateway memory).
  controller.cluster(0).device(0).remove_route(
      100, IpPrefix::must_parse("10.100.0.0/24"));
  const auto report = controller.check_consistency(0);
  EXPECT_EQ(report.missing_on_device, 1u);
}

TEST(Controller, ClusterRouteCountsFeedFig23) {
  Controller::Config fig_config = small_config();
  fig_config.routes_water_level = 4;
  Controller controller(fig_config);
  controller.add_vpc(make_vpc(100, 4, 1));
  controller.add_vpc(make_vpc(101, 4, 1));
  const auto counts = controller.cluster_route_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 4u);
  EXPECT_EQ(counts[1], 4u);
}

TEST(DisasterRecovery, NodeFailureJournalAndColdStandby) {
  // Two primaries: losing one does not fail over, but dips below the
  // live-fraction threshold and pulls in the cold standby.
  Controller::Config controller_config = small_config();
  controller_config.cluster_template.primary_devices = 2;
  Controller controller(controller_config);
  controller.add_vpc(make_vpc(100, 1, 1));
  DisasterRecovery::Config config;
  config.cold_standby_pool = 1;
  config.min_live_fraction = 1.0;  // any loss triggers standby activation
  DisasterRecovery recovery(&controller, config);
  recovery.on_device_failure(0, 0, 10.0);
  EXPECT_EQ(recovery.cold_standby_available(), 0u);
  EXPECT_FALSE(controller.cluster(0).failed_over());
  EXPECT_EQ(controller.cluster(0).live_device_count(), 2u);
  EXPECT_GE(recovery.events().size(), 2u);
}

TEST(DisasterRecovery, FailoverWhenNoStandbyLeft) {
  Controller controller(small_config());
  controller.add_vpc(make_vpc(100, 1, 1));
  DisasterRecovery::Config config;
  config.cold_standby_pool = 0;
  DisasterRecovery recovery(&controller, config);
  recovery.on_device_failure(0, 0, 1.0);
  EXPECT_TRUE(controller.cluster(0).failed_over());
  net::OverlayPacket pkt;
  pkt.vni = 100;
  pkt.inner.src = IpAddr(net::Ipv4Addr(10, 100, 0, 2));
  pkt.inner.dst = IpAddr(net::Ipv4Addr(10, 100, 0, 2));
  pkt.payload_size = 64;
  EXPECT_EQ(controller.process(pkt).action,
            dataplane::Action::kForwardToNc);
}

TEST(DisasterRecovery, PortIsolationReducesCapacity) {
  Controller controller(small_config());
  controller.add_vpc(make_vpc(100, 1, 1));
  DisasterRecovery::Config config;
  config.ports_per_device = 4;
  DisasterRecovery recovery(&controller, config);
  recovery.on_port_fault(0, 0, 1, 1.0);
  EXPECT_DOUBLE_EQ(recovery.device_capacity_fraction(0, 0), 0.75);
  recovery.on_port_recovery(0, 0, 1, 2.0);
  EXPECT_DOUBLE_EQ(recovery.device_capacity_fraction(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(recovery.device_capacity_fraction(0, 1), 1.0);
}

TEST(DisasterRecovery, AllPortsDownEscalatesToNodeFailure) {
  Controller controller(small_config());
  controller.add_vpc(make_vpc(100, 1, 1));
  DisasterRecovery::Config config;
  config.ports_per_device = 2;
  config.cold_standby_pool = 0;
  config.min_live_fraction = 0.0;
  DisasterRecovery recovery(&controller, config);
  recovery.on_port_fault(0, 0, 0, 1.0);
  recovery.on_port_fault(0, 0, 1, 2.0);
  EXPECT_TRUE(controller.cluster(0).failed_over());
}

}  // namespace

/// Forges placement state the public API cannot produce (declared a
/// friend in controller.hpp): regression seam for decommission drift,
/// where a VPC's recorded cluster id stops naming a live cluster.
struct ControllerTestPeer {
  static void set_cluster_id(Controller& controller, net::Vni vni,
                             std::uint32_t cluster_id) {
    controller.vpcs_.at(vni).cluster_id = cluster_id;
  }
};

namespace {

TEST(Controller, RemoveRouteOnDanglingClusterIsUnknownTarget) {
  Controller controller(small_config());
  ASSERT_TRUE(controller.add_vpc(make_vpc(100, 2, 1)));
  const IpPrefix prefix(net::Ipv4Prefix(net::Ipv4Addr(10, 100, 0, 0), 24));

  ControllerTestPeer::set_cluster_id(controller, 100, 99);
  EXPECT_EQ(controller.remove_route(100, prefix),
            dataplane::TableOpStatus::kUnknownTarget);
  // Typed, not destructive: desired state is untouched, so repairing the
  // placement lets the very same op succeed.
  ControllerTestPeer::set_cluster_id(controller, 100, 0);
  EXPECT_EQ(controller.remove_route(100, prefix),
            dataplane::TableOpStatus::kOk);
}

TEST(Controller, InstallOpsOnDanglingClusterAreUnknownTarget) {
  Controller controller(small_config());
  ASSERT_TRUE(controller.add_vpc(make_vpc(100, 1, 1)));
  ControllerTestPeer::set_cluster_id(controller, 100, 42);

  EXPECT_EQ(controller.install_route(
                100, IpPrefix(net::Ipv4Prefix(net::Ipv4Addr(10, 100, 9, 0), 24)),
                VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            dataplane::TableOpStatus::kUnknownTarget);
  EXPECT_EQ(controller.install_mapping(
                {100, IpAddr(net::Ipv4Addr(10, 100, 0, 99))},
                VmNcAction{net::Ipv4Addr(172, 16, 0, 9)}),
            dataplane::TableOpStatus::kUnknownTarget);
  // Nothing was fanned out to any device.
  EXPECT_EQ(controller.cluster(0).route_count(), 1u);
  EXPECT_EQ(controller.cluster(0).mapping_count(), 1u);
}

TEST(Controller, SoftwareTierPlacementIsNeverDangling) {
  Controller::Config config = small_config();
  config.max_clusters = 1;
  config.routes_water_level = 1;
  config.admit_overflow = true;
  Controller controller(config);
  ASSERT_TRUE(controller.add_vpc(make_vpc(100, 1, 1)));  // fills cluster 0
  ASSERT_TRUE(controller.add_vpc(make_vpc(200, 1, 1)));  // software tier
  ASSERT_TRUE(controller.is_overflow(200));

  // kSoftwareTier is a live placement: ops mirror fine, no device fan-out.
  EXPECT_EQ(controller.install_route(
                200, IpPrefix(net::Ipv4Prefix(net::Ipv4Addr(10, 200, 9, 0), 24)),
                VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            dataplane::TableOpStatus::kOk);
}

TEST(Controller, DrainMidIntervalReplaysDeferredOps) {
  Controller controller(small_config());
  ASSERT_TRUE(controller.add_vpc(make_vpc(100, 1, 1)));

  controller.set_update_channel_up(false);
  TableOp op;
  op.kind = TableOp::Kind::kAddRoute;
  op.vni = 100;
  op.prefix = IpPrefix(net::Ipv4Prefix(net::Ipv4Addr(10, 100, 7, 0), 24));
  op.route_action = VxlanRouteAction{RouteScope::kLocal, 0, {}};
  EXPECT_EQ(controller.push_op(op),
            dataplane::TableOpStatus::kRateLimited);  // deferred, not lost
  EXPECT_EQ(controller.deferred_op_count(), 1u);
  EXPECT_EQ(controller.cluster(0).route_count(), 1u);

  controller.set_update_channel_up(true);
  // Sliced clock advance through the interval: the deferred push lands at
  // its backoff-due instant *inside* [0, 2), not at the interval edge.
  EXPECT_EQ(controller.drain_mid_interval(0.0, 2.0, 8), 1u);
  EXPECT_EQ(controller.deferred_op_count(), 0u);
  EXPECT_EQ(controller.cluster(0).route_count(), 2u);
}

}  // namespace
}  // namespace sf::cluster
