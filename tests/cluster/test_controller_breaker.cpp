// Update-channel circuit breaker at the controller level (sf::guard):
// consecutive channel refusals trip it, open short-circuits pushes onto
// the retry queue WITHOUT burning channel attempts, the half-open probe
// closes (or re-opens) it, and the deferred ops drain in strict FIFO —
// proven by a remove-then-re-add pair whose inversion would leave the
// opposite final table state.

#include "cluster/controller.hpp"

#include <gtest/gtest.h>

namespace sf::cluster {
namespace {

using dataplane::TableOpStatus;
using tables::RouteScope;
using tables::VxlanRouteAction;
using workload::VpcRecord;

Controller::Config breaker_config(unsigned trip_after, double cooldown_s) {
  Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 1;
  config.breaker.trip_after = trip_after;
  config.breaker.open_cooldown_s = cooldown_s;
  return config;
}

VpcRecord make_vpc(net::Vni vni, std::size_t subnets) {
  VpcRecord vpc;
  vpc.vni = vni;
  vpc.family = net::IpFamily::kV4;
  for (std::size_t s = 0; s < subnets; ++s) {
    vpc.routes.push_back(workload::RouteRecord{
        net::Ipv4Prefix(
            net::Ipv4Addr(10, static_cast<std::uint8_t>(vni & 0xff),
                          static_cast<std::uint8_t>(s), 0),
            24),
        VxlanRouteAction{RouteScope::kLocal, 0, {}}});
  }
  return vpc;
}

net::IpPrefix subnet(net::Vni vni, std::uint8_t s) {
  return net::Ipv4Prefix(
      net::Ipv4Addr(10, static_cast<std::uint8_t>(vni & 0xff), s, 0), 24);
}

TableOp route_op(TableOp::Kind kind, net::Vni vni, std::uint8_t s) {
  TableOp op;
  op.kind = kind;
  op.vni = vni;
  op.prefix = subnet(vni, s);
  op.route_action = VxlanRouteAction{RouteScope::kLocal, 0, {}};
  return op;
}

TEST(ControllerBreaker, UnconfiguredControllerHasNoBreaker) {
  Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 1;
  Controller controller(config);  // trip_after defaults to 0
  EXPECT_EQ(controller.breaker(), nullptr);
  EXPECT_FALSE(
      controller.registry().has_counter("controller.breaker_trips"));
}

TEST(ControllerBreaker, FifoSurvivesTripShortCircuitAndHalfOpenClose) {
  Controller controller(breaker_config(/*trip_after=*/2, /*cooldown_s=*/5.0));
  ASSERT_TRUE(controller.add_vpc(make_vpc(100, 2)));
  ASSERT_NE(controller.breaker(), nullptr);
  ASSERT_EQ(controller.cluster(0).route_count(), 2u);

  // Two refused direct pushes during an outage trip the breaker.
  controller.set_update_channel_up(false);
  EXPECT_EQ(controller.install_route(
                100, subnet(100, 9), VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.breaker()->stats().trips, 0u);
  EXPECT_EQ(controller.install_route(
                100, subnet(100, 9), VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.breaker()->stats().trips, 1u);
  EXPECT_EQ(controller.breaker()->state(0.0),
            guard::CircuitBreaker::State::kOpen);
  EXPECT_EQ(controller.registry().counter_value("controller.breaker_trips"),
            1u);

  // While open, pushes short-circuit straight onto the retry queue:
  // "remove subnet 0" then "re-add subnet 0". FIFO must hold — the
  // inverted order would apply the add to the still-present entry and
  // then delete it, leaving the route gone.
  EXPECT_EQ(controller.push_op(route_op(TableOp::Kind::kDelRoute, 100, 0)),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.push_op(route_op(TableOp::Kind::kAddRoute, 100, 0)),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.deferred_op_count(), 2u);
  EXPECT_EQ(controller.breaker()->stats().short_circuited, 2u);
  EXPECT_EQ(controller.registry().counter_value(
                "controller.breaker_short_circuited"),
            2u);

  // Channel restored, but the breaker is still inside its cooldown: the
  // clock advance drains nothing.
  controller.set_update_channel_up(true);
  EXPECT_EQ(controller.advance_clock(1.0), 0u);
  EXPECT_EQ(controller.deferred_op_count(), 2u);

  // Past the cooldown: half-open lets the queue head probe; it succeeds,
  // the breaker closes, and the rest of the queue drains IN ORDER.
  EXPECT_EQ(controller.breaker()->state(6.0),
            guard::CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(controller.advance_clock(6.0), 2u);
  EXPECT_EQ(controller.deferred_op_count(), 0u);
  EXPECT_EQ(controller.breaker()->state(6.0),
            guard::CircuitBreaker::State::kClosed);
  EXPECT_EQ(controller.breaker()->stats().closes, 1u);
  EXPECT_EQ(controller.registry().counter_value("controller.breaker_closes"),
            1u);
  EXPECT_EQ(
      controller.registry().counter_value("controller.table_ops_replayed"),
      2u);

  // FIFO proof: remove-then-add round-tripped, so the route is present
  // on the desired state AND on every device.
  EXPECT_EQ(controller.cluster(0).route_count(), 2u);
  const auto report = controller.check_consistency(0);
  EXPECT_GT(report.entries_checked, 0u);
  EXPECT_EQ(report.missing_on_device, 0u);
}

TEST(ControllerBreaker, HalfOpenProbeFailureReopensForAnotherCooldown) {
  Controller controller(breaker_config(/*trip_after=*/1, /*cooldown_s=*/5.0));
  ASSERT_TRUE(controller.add_vpc(make_vpc(7, 1)));

  controller.set_update_channel_up(false);
  EXPECT_EQ(controller.install_route(
                7, subnet(7, 3), VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.breaker()->stats().trips, 1u);

  // Cooldown elapses but the channel is still down: the half-open probe
  // is refused and the breaker re-opens from the probe's timestamp.
  EXPECT_EQ(controller.advance_clock(5.0), 0u);
  EXPECT_EQ(controller.breaker()->state(5.0),
            guard::CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(controller.install_route(
                7, subnet(7, 3), VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.breaker()->stats().reopens, 1u);
  EXPECT_EQ(controller.registry().counter_value("controller.breaker_reopens"),
            1u);
  EXPECT_EQ(controller.breaker()->state(9.9),
            guard::CircuitBreaker::State::kOpen);
  EXPECT_EQ(controller.breaker()->state(10.0),
            guard::CircuitBreaker::State::kHalfOpen);

  // Channel back + next probe succeeds: the breaker finally closes and
  // the install lands.
  controller.set_update_channel_up(true);
  EXPECT_EQ(controller.advance_clock(10.0), 0u);  // queue was never fed
  EXPECT_EQ(controller.install_route(
                7, subnet(7, 3), VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            TableOpStatus::kOk);
  EXPECT_EQ(controller.breaker()->stats().closes, 1u);
  EXPECT_EQ(controller.cluster(0).route_count(), 2u);
}

}  // namespace
}  // namespace sf::cluster
