#include "cluster/upgrade.hpp"

#include <gtest/gtest.h>

namespace sf::cluster {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;

XgwHCluster make_cluster(std::size_t primaries) {
  XgwHCluster::Config config;
  config.primary_devices = primaries;
  config.backup_devices = 0;
  XgwHCluster cluster(config);
  cluster.install_route(10, IpPrefix::must_parse("10.0.0.0/8"),
                        {RouteScope::kLocal, 0, {}});
  cluster.install_mapping({10, IpAddr::must_parse("10.0.0.2")},
                          {net::Ipv4Addr(172, 16, 0, 1)});
  return cluster;
}

net::OverlayPacket sample() {
  net::OverlayPacket pkt;
  pkt.vni = 10;
  pkt.inner.src = IpAddr::must_parse("10.0.0.1");
  pkt.inner.dst = IpAddr::must_parse("10.0.0.2");
  pkt.payload_size = 64;
  return pkt;
}

TEST(RollingUpgrade, UpgradesEveryPrimaryOneAtATime) {
  XgwHCluster cluster = make_cluster(3);
  RollingUpgrade roll;
  int upgrades = 0;
  std::size_t max_drained = 0;
  const auto result = roll.run(
      cluster,
      [&](xgwh::XgwH&) {
        ++upgrades;
        // While this device is drained, traffic must still flow.
        max_drained = std::max(
            max_drained, cluster.device_count() -
                             cluster.live_device_count());
        EXPECT_EQ(cluster.forward(sample()).action,
                  dataplane::Action::kForwardToNc);
        return true;
      },
      [](const XgwHCluster&) { return true; });
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(upgrades, 3);
  EXPECT_EQ(max_drained, 1u);  // never more than one device out
  EXPECT_EQ(cluster.live_device_count(), 3u);
  for (const auto& step : result.steps) {
    EXPECT_TRUE(step.upgraded);
    EXPECT_TRUE(step.health_ok);
  }
}

TEST(RollingUpgrade, AbortsOnUpgradeFailureAndRestoresFleet) {
  XgwHCluster cluster = make_cluster(3);
  RollingUpgrade roll;
  int attempts = 0;
  const auto result = roll.run(
      cluster, [&](xgwh::XgwH&) { return ++attempts != 2; },
      [](const XgwHCluster&) { return true; });
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("device 1"), std::string::npos);
  EXPECT_EQ(result.steps.size(), 2u);
  // The fleet is whole again — device 1 simply runs the old version.
  EXPECT_EQ(cluster.live_device_count(), 3u);
  EXPECT_EQ(cluster.forward(sample()).action,
            dataplane::Action::kForwardToNc);
}

TEST(RollingUpgrade, AbortsOnHealthGate) {
  XgwHCluster cluster = make_cluster(2);
  RollingUpgrade roll;
  const auto result =
      roll.run(cluster, [](xgwh::XgwH&) { return true; },
               [](const XgwHCluster&) { return false; });
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("health gate"), std::string::npos);
  EXPECT_EQ(cluster.live_device_count(), 2u);
}

TEST(RollingUpgrade, RespectsMinLiveDevices) {
  XgwHCluster cluster = make_cluster(1);
  RollingUpgrade::Config config;
  config.min_live_devices = 1;
  RollingUpgrade roll(config);
  const auto result =
      roll.run(cluster, [](xgwh::XgwH&) { return true; },
               [](const XgwHCluster&) { return true; });
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("not enough live"),
            std::string::npos);
  EXPECT_EQ(cluster.live_device_count(), 1u);
}

TEST(RollingUpgrade, SkipsRollWhenDeviceAlreadyDown) {
  XgwHCluster cluster = make_cluster(3);
  cluster.fail_device(1);
  RollingUpgrade roll;
  int upgrades = 0;
  const auto result = roll.run(
      cluster, [&](xgwh::XgwH&) { return ++upgrades > 0; },
      [](const XgwHCluster&) { return true; });
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("unhealthy before roll"),
            std::string::npos);
  EXPECT_EQ(upgrades, 1);  // device 0 done, stopped at device 1
}

}  // namespace
}  // namespace sf::cluster
