// Concurrent reader/writer contract of the RCU machinery, written to run
// under ThreadSanitizer (the CI tsan job executes this suite): genuinely
// racing threads, invariants strong enough that any stale read, premature
// free or lost wakeup shows up as a value mismatch — not just a crash.
//
// Loop structure matters on a single-core host: readers run until they
// bank a quota of *verified* reads, and the mutator keeps publishing
// until every reader is done. Fixed iteration counts on both sides let
// the scheduler finish one role before the other ever runs, silently
// testing nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "rcu/epoch.hpp"
#include "rcu/rcu_exact_table.hpp"

namespace sf::rcu {
namespace {

// One key whose value is always the seq that wrote it: a reader pinned at
// s must observe exactly s. Any torn visibility window, premature unlink
// or recycled node breaks the equality.
TEST(RcuStress, PinnedReadersSeeExactlyTheirVersion) {
  constexpr int kReaders = 2;
  constexpr std::uint64_t kReadsPerReader = 4000;

  EpochManager epoch;
  RcuExactTable<int, std::uint64_t> table(16);
  std::atomic<int> readers_done{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      EpochManager::Reader reader(epoch);
      std::uint64_t good = 0;
      while (good < kReadsPerReader && !failed.load(std::memory_order_acquire)) {
        const std::uint64_t seq = reader.pin_latest();
        if (seq >= 1) {
          const std::uint64_t* value = table.lookup(1, seq);
          if (value == nullptr || *value != seq) {
            failed.store(true, std::memory_order_release);
          } else {
            ++good;
          }
        }
        reader.unpin();
      }
      readers_done.fetch_add(1, std::memory_order_acq_rel);
    });
  }

  // Publish until every reader banked its quota; aggressive reclamation
  // (every pass promises pins >= seq) forces the pin_latest/collect_floor
  // handshake and the era grace period throughout.
  std::uint64_t seq = 0;
  while (readers_done.load(std::memory_order_acquire) < kReaders) {
    ++seq;
    table.insert(1, seq, seq);
    epoch.publish(seq);
    if (seq % 64 == 0) table.collect(seq, epoch);
  }
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(failed.load()) << "a reader observed a wrong version";
  EXPECT_GE(seq, 1u);

  // Quiescent: a final collect reclaims everything but the live node.
  table.collect(seq, epoch);
  EXPECT_EQ(table.limbo_size(), 0u);
  EXPECT_EQ(table.outstanding_nodes(), 1u);
}

// Round-robin writes across 16 keys: key k is rewritten (value = seq)
// every 16 seqs, so a reader pinned at s must find, for every key, a
// value in (s - 16, s] congruent to the key. Bounds staleness from both
// sides — a reader can neither see the future nor a version older than
// the one live at its pin.
TEST(RcuStress, RoundRobinKeysHaveBoundedStaleness) {
  constexpr std::uint64_t kKeys = 16;
  constexpr std::uint64_t kSweeps = 400;

  EpochManager epoch;
  RcuExactTable<std::uint64_t, std::uint64_t> table(64);
  std::atomic<bool> reader_done{false};
  std::atomic<bool> failed{false};
  std::string failure;

  std::thread reader_thread([&] {
    EpochManager::Reader reader(epoch);
    std::uint64_t sweeps = 0;
    while (sweeps < kSweeps && !failed.load(std::memory_order_acquire)) {
      const std::uint64_t seq = reader.pin_latest();
      if (seq >= kKeys) {
        for (std::uint64_t key = 0; key < kKeys; ++key) {
          const std::uint64_t* value = table.lookup(key, seq);
          if (value == nullptr || *value > seq || seq - *value >= kKeys ||
              *value % kKeys != key) {
            failure = "key " + std::to_string(key) + " at seq " +
                      std::to_string(seq) +
                      (value == nullptr ? " missing"
                                        : " value " + std::to_string(*value));
            failed.store(true, std::memory_order_release);
            break;
          }
        }
        ++sweeps;
      }
      reader.unpin();
    }
    reader_done.store(true, std::memory_order_release);
  });

  std::uint64_t seq = 0;
  while (!reader_done.load(std::memory_order_acquire)) {
    ++seq;
    table.insert(seq % kKeys, seq, seq);
    epoch.publish(seq);
    if (seq % 128 == 0) table.collect(seq, epoch);
  }
  reader_thread.join();

  EXPECT_FALSE(failed.load()) << failure;
  table.collect(seq, epoch);
  EXPECT_EQ(table.limbo_size(), 0u);
  EXPECT_EQ(table.outstanding_nodes(), kKeys);
}

// The deterministic-interleave rendezvous: pin(seq) must block — through
// the spin/yield/park ladder — until the writer publishes seq, and the
// writer's publish must wake a parked reader (a lost wakeup hangs this
// test rather than failing an assertion, so keep the seq count small).
TEST(RcuStress, PinBlocksUntilPublishAndWakes) {
  constexpr std::uint64_t kTarget = 500;
  EpochManager epoch;
  std::atomic<std::uint64_t> applied_at_wake{0};

  std::thread waiter([&] {
    EpochManager::Reader reader(epoch);
    reader.pin(kTarget);  // parks: nothing published yet
    applied_at_wake.store(epoch.applied(), std::memory_order_release);
    reader.unpin();
  });

  // Give the waiter time to reach the parked branch of the ladder.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (std::uint64_t seq = 1; seq <= kTarget; ++seq) epoch.publish(seq);
  waiter.join();

  EXPECT_GE(applied_at_wake.load(), kTarget);
}

// Maximal reclamation pressure: the writer collects after every single
// publish. pin_latest's floor re-check must keep each pinned version
// whole — a lookup against a reclaimed version returns null or garbage.
TEST(RcuStress, CollectFloorHandshakeUnderChurn) {
  constexpr std::uint64_t kReads = 4000;
  EpochManager epoch;
  RcuExactTable<int, std::uint64_t> table(16);
  std::atomic<bool> reader_done{false};
  std::atomic<bool> failed{false};

  std::thread reader_thread([&] {
    EpochManager::Reader reader(epoch);
    std::uint64_t good = 0;
    while (good < kReads && !failed.load(std::memory_order_acquire)) {
      const std::uint64_t seq = reader.pin_latest();
      if (seq >= 1) {
        const std::uint64_t* value = table.lookup(1, seq);
        if (value == nullptr || *value != seq) {
          failed.store(true, std::memory_order_release);
        } else {
          ++good;
        }
      }
      reader.unpin();
    }
    reader_done.store(true, std::memory_order_release);
  });

  std::uint64_t seq = 0;
  while (!reader_done.load(std::memory_order_acquire)) {
    ++seq;
    table.insert(1, seq, seq);
    epoch.publish(seq);
    table.collect(seq, epoch);  // every single seq: maximal pressure
  }
  reader_thread.join();

  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace sf::rcu
