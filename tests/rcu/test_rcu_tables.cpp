// MVCC and reclamation semantics of the RCU tables (DESIGN.md §13).
//
// Single-threaded here on purpose: every visibility window, return value
// and reclamation phase is checked deterministically. The concurrent
// contract (many readers racing one mutator) lives in test_rcu_stress.cpp.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <vector>

#include "net/ip.hpp"
#include "rcu/epoch.hpp"
#include "rcu/rcu_exact_table.hpp"
#include "rcu/rcu_lpm.hpp"
#include "tables/route_table.hpp"

namespace sf::rcu {
namespace {

using net::IpAddr;
using net::IpPrefix;

TEST(RcuExactTable, VisibilityWindowsAreDisjointPerVersion) {
  RcuExactTable<int, int> table(16);
  table.insert(1, 100, /*seq=*/1);
  table.insert(1, 200, /*seq=*/3);  // replaces: v100 dies at 3
  table.erase(1, /*seq=*/5);        // v200 dies at 5

  EXPECT_EQ(table.lookup(1, 0), nullptr);
  ASSERT_NE(table.lookup(1, 1), nullptr);
  EXPECT_EQ(*table.lookup(1, 1), 100);
  EXPECT_EQ(*table.lookup(1, 2), 100);
  EXPECT_EQ(*table.lookup(1, 3), 200);
  EXPECT_EQ(*table.lookup(1, 4), 200);
  EXPECT_EQ(table.lookup(1, 5), nullptr);
  EXPECT_EQ(table.lookup(1, 99), nullptr);
  // The mutator-side probe tracks the latest version only.
  EXPECT_EQ(table.find_latest(1), nullptr);
}

TEST(RcuExactTable, InsertAndEraseReturnValues) {
  RcuExactTable<int, int> table(16);
  EXPECT_TRUE(table.insert(7, 1, 1));    // new key
  EXPECT_FALSE(table.insert(7, 2, 2));   // replace
  EXPECT_EQ(table.live_size(), 1u);
  EXPECT_TRUE(table.erase(7, 3));
  EXPECT_FALSE(table.erase(7, 4));       // already dead
  EXPECT_FALSE(table.erase(8, 4));       // never existed
  EXPECT_EQ(table.live_size(), 0u);
  EXPECT_TRUE(table.insert(7, 3, 5));    // resurrect counts as new
}

// Random op script, then every (key, seq) lookup must match a plain
// std::map replayed to the same point.
TEST(RcuExactTable, DifferentialVsMapAtEverySeq) {
  constexpr int kKeys = 8;
  constexpr std::uint64_t kSeqs = 200;
  RcuExactTable<int, std::uint64_t> table(16);
  std::mt19937 rng(0xF00D);
  std::uniform_int_distribution<int> key_dist(0, kKeys - 1);
  std::uniform_int_distribution<int> op_dist(0, 2);

  // snapshots[s] = reference state at seq s (index 0 = empty table).
  std::vector<std::map<int, std::uint64_t>> snapshots(1);
  for (std::uint64_t seq = 1; seq <= kSeqs; ++seq) {
    std::map<int, std::uint64_t> state = snapshots.back();
    const int key = key_dist(rng);
    if (op_dist(rng) == 0) {
      table.erase(key, seq);
      state.erase(key);
    } else {
      table.insert(key, seq, seq);
      state[key] = seq;
    }
    snapshots.push_back(std::move(state));
  }

  for (std::uint64_t seq = 0; seq <= kSeqs; ++seq) {
    for (int key = 0; key < kKeys; ++key) {
      const std::uint64_t* got = table.lookup(key, seq);
      const auto want = snapshots[seq].find(key);
      if (want == snapshots[seq].end()) {
        EXPECT_EQ(got, nullptr) << "key " << key << " seq " << seq;
      } else {
        ASSERT_NE(got, nullptr) << "key " << key << " seq " << seq;
        EXPECT_EQ(*got, want->second) << "key " << key << " seq " << seq;
      }
    }
  }
}

TEST(RcuExactTable, CollectFreesDeadNodesWhenNoReaderIsPinned) {
  EpochManager epoch;
  RcuExactTable<int, int> table(16);
  table.insert(1, 10, 1);
  table.insert(1, 20, 2);  // first version dead at 2
  table.erase(1, 3);       // second dead at 3
  EXPECT_EQ(table.outstanding_nodes(), 2u);

  // keep_from = 3: no future pin below 3, both versions invisible there.
  table.collect(3, epoch);
  EXPECT_EQ(table.limbo_size(), 0u);  // grace trivially over: no readers
  EXPECT_EQ(table.outstanding_nodes(), 0u);
}

TEST(RcuExactTable, CollectHonorsAPinnedReader) {
  EpochManager epoch;
  RcuExactTable<int, int> table(16);
  table.insert(1, 10, 1);
  epoch.publish(1);

  EpochManager::Reader reader(epoch);
  reader.pin(1);
  table.erase(1, 2);
  epoch.publish(2);

  // The pin at 1 keeps the version alive through any collect.
  table.collect(2, epoch);
  ASSERT_NE(table.lookup(1, 1), nullptr);
  EXPECT_EQ(*table.lookup(1, 1), 10);
  EXPECT_EQ(table.outstanding_nodes(), 1u);

  reader.unpin();
  table.collect(2, epoch);
  EXPECT_EQ(table.outstanding_nodes(), 0u);
}

// The era grace period: a reader pinned at a seq where a node is already
// invisible still holds its *memory* in limbo until the reader
// re-announces — it may be mid-traversal of a chain that linked the node.
TEST(RcuExactTable, EraGraceHoldsLimboUntilReaderReannounces) {
  EpochManager epoch;
  RcuExactTable<int, int> table(16);
  table.insert(1, 10, 1);
  epoch.publish(1);

  EpochManager::Reader reader(epoch);
  reader.pin(1);
  table.erase(1, 2);
  epoch.publish(2);
  reader.unpin();
  reader.pin(2);  // node invisible at 2, but era announced pre-collect

  table.collect(2, epoch);
  EXPECT_EQ(table.lookup(1, 2), nullptr);  // unlinked (or just invisible)
  EXPECT_EQ(table.limbo_size(), 1u);       // …but the memory is held
  EXPECT_EQ(table.outstanding_nodes(), 1u);

  reader.unpin();
  reader.pin(2);  // re-announce: traversal now postdates the unlink
  table.collect(2, epoch);
  EXPECT_EQ(table.limbo_size(), 0u);
  EXPECT_EQ(table.outstanding_nodes(), 0u);
  reader.unpin();
}

// ---- RcuLpm ----------------------------------------------------------

struct LpmOp {
  bool insert = true;
  net::Vni vni = 0;
  const char* prefix = nullptr;
  int value = 0;
};

// Byte-for-byte agreement with tables::SoftwareLpm at *every* version is
// what lets XGW-x86 swap its route table for the RCU one without
// disturbing a single verdict.
TEST(RcuLpm, DifferentialVsSoftwareLpmAtEverySeq) {
  const LpmOp ops[] = {
      {true, 5, "0.0.0.0/0", 1},    {true, 5, "10.0.0.0/8", 2},
      {true, 5, "10.1.0.0/16", 3},  {true, 5, "10.1.2.0/24", 4},
      {true, 5, "10.1.2.3/32", 5},  {false, 5, "10.1.0.0/16", 0},
      {true, 6, "10.0.0.0/8", 7},   {true, 5, "10.0.0.0/8", 8},
      {false, 5, "10.1.2.3/32", 0}, {false, 5, "0.0.0.0/0", 0},
  };
  const char* probes[] = {"10.1.2.3", "10.1.2.9", "10.1.9.9",
                          "10.200.0.1", "8.8.8.8"};

  EpochManager epoch;
  RcuLpm<int> rcu(64);
  std::uint64_t seq = 0;
  for (const LpmOp& op : ops) {
    ++seq;
    if (op.insert) {
      rcu.insert(op.vni, IpPrefix::must_parse(op.prefix), op.value, seq);
    } else {
      EXPECT_TRUE(rcu.erase(op.vni, IpPrefix::must_parse(op.prefix), seq));
    }
    epoch.publish(seq);
  }

  EpochManager::Reader reader(epoch);
  for (std::uint64_t at = 0; at <= seq; ++at) {
    // Reference: a fresh SoftwareLpm replayed to the same point.
    tables::SoftwareLpm<int> ref;
    for (std::uint64_t k = 0; k < at; ++k) {
      if (ops[k].insert) {
        ref.insert(ops[k].vni, IpPrefix::must_parse(ops[k].prefix),
                   ops[k].value);
      } else {
        ref.erase(ops[k].vni, IpPrefix::must_parse(ops[k].prefix));
      }
    }
    EpochManager::PinGuard pin(reader, at);
    for (net::Vni vni : {net::Vni{5}, net::Vni{6}}) {
      for (const char* probe : probes) {
        const IpAddr ip = IpAddr::must_parse(probe);
        const std::optional<int> want = ref.lookup(vni, ip);
        const int* got = rcu.lookup(vni, ip, at);
        if (!want.has_value()) {
          EXPECT_EQ(got, nullptr) << "vni " << vni << " " << probe
                                  << " at seq " << at;
        } else {
          ASSERT_NE(got, nullptr) << "vni " << vni << " " << probe
                                  << " at seq " << at;
          EXPECT_EQ(*got, *want) << "vni " << vni << " " << probe
                                 << " at seq " << at;
        }
      }
    }
  }
}

TEST(RcuLpm, ReplacementIsInvisibleToEarlierPins) {
  EpochManager epoch;
  RcuLpm<int> lpm(64);
  const IpPrefix prefix = IpPrefix::must_parse("10.0.0.0/16");
  lpm.insert(9, prefix, 1, 1);
  lpm.insert(9, prefix, 2, 2);
  epoch.publish(2);

  EpochManager::Reader reader(epoch);
  const IpAddr ip = IpAddr::must_parse("10.0.3.4");
  {
    EpochManager::PinGuard pin(reader, 1);
    ASSERT_NE(lpm.lookup(9, ip, 1), nullptr);
    EXPECT_EQ(*lpm.lookup(9, ip, 1), 1);
  }
  {
    EpochManager::PinGuard pin(reader, 2);
    ASSERT_NE(lpm.lookup(9, ip, 2), nullptr);
    EXPECT_EQ(*lpm.lookup(9, ip, 2), 2);
  }
  EXPECT_EQ(*lpm.find_latest(9, prefix), 2);
}

}  // namespace
}  // namespace sf::rcu
