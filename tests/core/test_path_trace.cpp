#include "core/path_trace.hpp"

#include <gtest/gtest.h>

#include "core/sailfish.hpp"

namespace sf::core {
namespace {

SailfishSystem make_small() {
  auto options = quickstart_options();
  options.flows.flow_count = 400;
  return make_system(options);
}

net::OverlayPacket packet_for(const workload::Flow& flow) {
  net::OverlayPacket pkt;
  pkt.vni = flow.vni;
  pkt.inner = flow.tuple;
  pkt.payload_size = 128;
  return pkt;
}

TEST(PathTrace, HardwarePathTellsTheWholeStory) {
  SailfishSystem system = make_small();
  const workload::Flow* east_west = nullptr;
  for (const auto& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kLocal) {
      east_west = &flow;
      break;
    }
  }
  ASSERT_NE(east_west, nullptr);
  const PathTrace trace =
      trace_packet(*system.region, packet_for(*east_west));
  EXPECT_EQ(dataplane::path_label(trace.result), "hardware-forwarded");
  ASSERT_GE(trace.hops.size(), 4u);
  EXPECT_EQ(trace.hops[0].where, "vni-director");
  EXPECT_NE(trace.hops[1].where.find("ecmp"), std::string::npos);
  EXPECT_EQ(trace.hops[2].where, "xgw-h");
  EXPECT_NE(trace.hops[2].detail.find("2 pipeline pass(es)"),
            std::string::npos);
  EXPECT_NE(trace.hops[3].detail.find(east_west->dst_nc.to_string()),
            std::string::npos);
}

TEST(PathTrace, MatchesProcessOutcome) {
  SailfishSystem system = make_small();
  for (std::size_t i = 0; i < system.flows.size(); i += 23) {
    const auto pkt = packet_for(system.flows[i]);
    const auto traced = trace_packet(*system.region, pkt, 1.0);
    const auto processed = system.region->process(pkt, 1.0);
    EXPECT_EQ(dataplane::path_label(traced.result),
              dataplane::path_label(processed));
    EXPECT_EQ(traced.result.packet.outer_dst_ip,
              processed.packet.outer_dst_ip);
  }
}

TEST(PathTrace, SnatPathRecordsBinding) {
  SailfishSystem system = make_small();
  const workload::Flow* internet = nullptr;
  for (const auto& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kInternet) {
      internet = &flow;
      break;
    }
  }
  ASSERT_NE(internet, nullptr);
  const PathTrace trace =
      trace_packet(*system.region, packet_for(*internet), 1.0);
  EXPECT_EQ(dataplane::path_label(trace.result), "software-snat");
  bool saw_snat = false;
  for (const auto& hop : trace.hops) {
    if (hop.where == "xgw-x86" &&
        hop.detail.find("SNAT") != std::string::npos) {
      saw_snat = true;
    }
  }
  EXPECT_TRUE(saw_snat);
}

TEST(PathTrace, UnknownVniStopsAtDirector) {
  SailfishSystem system = make_small();
  net::OverlayPacket pkt;
  pkt.vni = 0xabcdef;
  pkt.inner.src = net::IpAddr::must_parse("10.0.0.1");
  pkt.inner.dst = net::IpAddr::must_parse("10.0.0.2");
  const PathTrace trace = trace_packet(*system.region, pkt);
  EXPECT_TRUE(trace.result.dropped());
  ASSERT_EQ(trace.hops.size(), 1u);
  EXPECT_EQ(trace.hops[0].where, "vni-director");
}

TEST(PathTrace, RendersReadableText) {
  SailfishSystem system = make_small();
  const PathTrace trace =
      trace_packet(*system.region, packet_for(system.flows.front()));
  const std::string text = trace.to_string();
  EXPECT_NE(text.find("[1] vni-director"), std::string::npos);
  EXPECT_NE(text.find("=>"), std::string::npos);
}

TEST(PathTrace, FailedOverClusterIsVisible) {
  SailfishSystem system = make_small();
  auto& cluster = system.region->controller().cluster(0);
  for (std::size_t d = 0; d < cluster.config().primary_devices; ++d) {
    cluster.fail_device(d);
  }
  const workload::Flow* east_west = nullptr;
  for (const auto& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kLocal &&
        system.region->controller().cluster_for(flow.vni) == 0u) {
      east_west = &flow;
      break;
    }
  }
  ASSERT_NE(east_west, nullptr);
  const PathTrace trace =
      trace_packet(*system.region, packet_for(*east_west));
  bool noted = false;
  for (const auto& hop : trace.hops) {
    if (hop.detail.find("serving from backups") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
  EXPECT_EQ(dataplane::path_label(trace.result), "hardware-forwarded");
}

}  // namespace
}  // namespace sf::core
