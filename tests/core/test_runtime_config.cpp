// sf::core::RuntimeConfig — the consolidated runtime gates. from_env()
// re-parses on every call (unlike the latched process() view), so these
// tests can drive the parser with setenv in-process. The latched
// semantics themselves are covered by the dedicated env-off binaries
// (sf_test_dpu_env_off, sf_test_guard_env_off) and CI's byte-diff run.

#include "core/runtime_config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/region.hpp"

namespace sf::core {
namespace {

// Sets one variable for the scope, restoring the prior value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* prior = std::getenv(name);
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_prior_) {
      ::setenv(name_, prior_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  bool had_prior_ = false;
  std::string prior_;
};

TEST(RuntimeConfig, DefaultsMatchUnsetEnvironment) {
  EnvGuard cache("SF_FLOW_CACHE", nullptr);
  EnvGuard guard("SF_GUARD", nullptr);
  EnvGuard dpu("SF_DPU", nullptr);
  const RuntimeConfig parsed = RuntimeConfig::from_env();
  const RuntimeConfig defaults;
  EXPECT_EQ(parsed.flow_cache_entries, defaults.flow_cache_entries);
  EXPECT_EQ(parsed.flow_cache_entries, std::size_t{1} << 12);
  EXPECT_EQ(parsed.guard_enabled, defaults.guard_enabled);
  EXPECT_EQ(parsed.dpu_enabled, defaults.dpu_enabled);
  EXPECT_TRUE(parsed.guard_enabled);
  EXPECT_TRUE(parsed.dpu_enabled);
}

TEST(RuntimeConfig, FlowCacheParsesLegacySemantics) {
  const auto entries_for = [](const char* value) {
    EnvGuard cache("SF_FLOW_CACHE", value);
    return RuntimeConfig::from_env().flow_cache_entries;
  };
  EXPECT_EQ(entries_for("0"), 0u);        // disabled
  EXPECT_EQ(entries_for("off"), 0u);
  EXPECT_EQ(entries_for("OFF"), 0u);
  EXPECT_EQ(entries_for("512"), 512u);
  EXPECT_EQ(entries_for("1048576"), 1u << 20);
  EXPECT_EQ(entries_for("banana"), 1u << 12);  // garbage -> default
  EXPECT_EQ(entries_for(""), 1u << 12);
}

TEST(RuntimeConfig, GuardAndDpuKillSwitches) {
  {
    EnvGuard guard("SF_GUARD", "0");
    EXPECT_FALSE(RuntimeConfig::from_env().guard_enabled);
  }
  {
    EnvGuard guard("SF_GUARD", "off");
    EXPECT_FALSE(RuntimeConfig::from_env().guard_enabled);
  }
  {
    EnvGuard guard("SF_GUARD", "1");
    EXPECT_TRUE(RuntimeConfig::from_env().guard_enabled);
  }
  {
    EnvGuard dpu("SF_DPU", "OFF");
    EXPECT_FALSE(RuntimeConfig::from_env().dpu_enabled);
  }
  {
    EnvGuard dpu("SF_DPU", "anything-else");
    EXPECT_TRUE(RuntimeConfig::from_env().dpu_enabled);
  }
}

// Gates set independently: parsing one variable never disturbs another.
TEST(RuntimeConfig, GatesAreIndependent) {
  EnvGuard cache("SF_FLOW_CACHE", "0");
  EnvGuard guard("SF_GUARD", nullptr);
  EnvGuard dpu("SF_DPU", "off");
  const RuntimeConfig parsed = RuntimeConfig::from_env();
  EXPECT_EQ(parsed.flow_cache_entries, 0u);
  EXPECT_TRUE(parsed.guard_enabled);
  EXPECT_FALSE(parsed.dpu_enabled);
}

// Construction-time injection: a region built with an explicit
// RuntimeConfig follows it — not the environment, not the process latch.
TEST(RuntimeConfig, RegionHonorsExplicitRuntimeOverride) {
  SailfishRegion::Config config;
  config.enable_guard = true;
  config.enable_dpu = true;
  config.dpu_nodes = 1;

  RuntimeConfig off;
  off.guard_enabled = false;
  off.dpu_enabled = false;
  config.runtime = off;
  SailfishRegion gated(config);
  EXPECT_EQ(gated.tenant_guard(), nullptr);
  EXPECT_EQ(gated.dpu_node_count(), 0u);

  config.runtime = RuntimeConfig{};  // defaults: everything on
  SailfishRegion open(config);
  EXPECT_NE(open.tenant_guard(), nullptr);
  EXPECT_EQ(open.dpu_node_count(), 1u);
}

}  // namespace
}  // namespace sf::core
