// End-to-end checks that the telemetry subsystem is actually wired into
// every layer: packets flowing through the region must show up in the
// gateways' registries, the controller's journal records provisioning
// and failovers, traffic share follows the VNI split, and path traces
// carry counter context.

#include <gtest/gtest.h>

#include "core/path_trace.hpp"
#include "core/region.hpp"
#include "core/sailfish.hpp"
#include "telemetry/registry.hpp"

namespace sf::core {
namespace {

SailfishSystem small_system() {
  SailfishOptions options = quickstart_options();
  options.flows.flow_count = 400;
  return make_system(options);
}

net::OverlayPacket packet_for_flow(const workload::Flow& flow) {
  net::OverlayPacket pkt;
  pkt.vni = flow.vni;
  pkt.inner = flow.tuple;
  pkt.payload_size = 200;
  return pkt;
}

TEST(TelemetryWiring, ProcessedPacketsLandInEveryLayersRegistry) {
  SailfishSystem system = small_system();
  std::size_t sent = 0;
  for (const workload::Flow& flow : system.flows) {
    system.region->process(packet_for_flow(flow), 1.0);
    if (++sent >= 100) break;
  }

  const auto& region_reg = system.region->registry();
  EXPECT_EQ(region_reg.counter_value("region.packets"), sent);
  EXPECT_GT(region_reg.counter_value("region.hw_forwarded"), 0u);

  const auto& controller = system.region->controller();
  EXPECT_EQ(controller.registry().counter_value("controller.packets_steered"),
            sent);
  EXPECT_GT(
      controller.registry().counter_value("controller.routes_added"), 0u);

  // Device-level: the sum of per-device packets equals what the region
  // steered into hardware; the asic walker counted pipeline passes too.
  std::uint64_t device_packets = 0;
  std::uint64_t ingress_pipe_packets = 0;
  for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
    for (std::size_t d = 0; d < controller.cluster(c).device_count(); ++d) {
      const auto& reg = controller.cluster(c).device(d).registry();
      device_packets += reg.counter_value("xgwh.packets_in");
      ingress_pipe_packets += reg.counter_value("asic.pipe0.ingress.packets");
      ingress_pipe_packets += reg.counter_value("asic.pipe2.ingress.packets");
    }
  }
  EXPECT_EQ(device_packets, sent);
  // Folded mode: every packet entered through an entry pipe (0 or 2).
  EXPECT_EQ(ingress_pipe_packets, sent);

  // Route lookups hit (the topology was installed).
  const telemetry::Snapshot fleet = system.region->telemetry_snapshot();
  std::uint64_t route_hits = 0;
  for (const auto& [name, value] : fleet.counters) {
    if (name.find("xgwh.table.route.hit") != std::string::npos) {
      route_hits += value;
    }
  }
  EXPECT_GT(route_hits, 0u);
}

TEST(TelemetryWiring, SoftwarePathCountsSnatSessions) {
  SailfishSystem system = small_system();
  std::size_t internet = 0;
  for (const workload::Flow& flow : system.flows) {
    if (flow.scope != tables::RouteScope::kInternet) continue;
    system.region->process(packet_for_flow(flow), 1.0);
    if (++internet >= 10) break;
  }
  ASSERT_GT(internet, 0u);

  std::uint64_t snat = 0;
  std::uint64_t x86_in = 0;
  for (std::size_t n = 0; n < system.region->x86_node_count(); ++n) {
    const auto& reg = system.region->x86_node(n).registry();
    snat += reg.counter_value("x86.packets_snat");
    x86_in += reg.counter_value("x86.packets_in");
  }
  EXPECT_EQ(snat, internet);
  EXPECT_EQ(x86_in, internet);
  EXPECT_EQ(system.region->registry().counter_value("region.sw_snat"),
            internet);
}

TEST(TelemetryWiring, ClusterTrafficShareFollowsTheVniSplit) {
  SailfishSystem system = small_system();
  const auto& controller = system.region->controller();

  const auto before = controller.cluster_traffic_share();
  for (double share : before) EXPECT_EQ(share, 0.0);

  std::size_t sent = 0;
  for (const workload::Flow& flow : system.flows) {
    system.region->process(packet_for_flow(flow), 1.0);
    if (++sent >= 200) break;
  }

  const auto share = controller.cluster_traffic_share();
  ASSERT_EQ(share.size(), controller.cluster_count());
  double total = 0;
  for (double s : share) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TelemetryWiring, IntervalSimulationAccumulatesRateSums) {
  SailfishSystem system = small_system();
  const double total_bps = 1e12;
  const auto report =
      system.region->simulate_interval(system.flows, total_bps, 1);

  const auto& reg = system.region->registry();
  EXPECT_EQ(reg.counter_value("region.intervals"), 1u);
  EXPECT_EQ(reg.counter_value("region.offered_bps_sum"),
            static_cast<std::uint64_t>(report.offered_bps));
  EXPECT_EQ(reg.counter_value("region.fallback_bps_sum"),
            static_cast<std::uint64_t>(report.fallback_bps));
  EXPECT_EQ(reg.counter_value("region.pipe1_bps_sum"),
            static_cast<std::uint64_t>(report.shard_pipe_bps[1]));
  // Micro-pps scaling keeps the tiny loss-floor drop rate visible.
  EXPECT_GT(reg.counter_value("region.dropped_upps_sum"), 0u);
}

TEST(TelemetryWiring, JournalRecordsProvisioningAndFailover) {
  SailfishSystem system = small_system();
  auto& controller = system.region->controller();

  const auto provisioning = controller.journal().events("provisioning");
  EXPECT_EQ(provisioning.size(),
            controller.registry().counter_value("controller.clusters_opened"));

  system.region->disaster_recovery().on_device_failure(0, 0, 5.0);
  const auto failovers = controller.journal().events("failover");
  ASSERT_FALSE(failovers.empty());
  EXPECT_NE(failovers.front().message.find("device 0"), std::string::npos);
  EXPECT_DOUBLE_EQ(failovers.front().time, 5.0);
}

TEST(TelemetryWiring, PathTraceAttachesCounterContext) {
  SailfishSystem system = small_system();
  // Warm the counters so the trace shows non-trivial context.
  std::size_t sent = 0;
  for (const workload::Flow& flow : system.flows) {
    system.region->process(packet_for_flow(flow), 1.0);
    if (++sent >= 20) break;
  }

  const auto trace =
      trace_packet(*system.region, packet_for_flow(system.flows.front()), 2.0);
  bool found = false;
  for (const auto& hop : trace.hops) {
    if (hop.where != "xgw-h") continue;
    found = true;
    ASSERT_FALSE(hop.counters.empty());
    bool has_packets_in = false;
    for (const auto& [name, value] : hop.counters) {
      if (name == "xgwh.packets_in") {
        has_packets_in = true;
        EXPECT_GT(value, 0u);
      }
    }
    EXPECT_TRUE(has_packets_in);
  }
  EXPECT_TRUE(found);
  EXPECT_NE(trace.to_string().find("counters:"), std::string::npos);
}

}  // namespace
}  // namespace sf::core
