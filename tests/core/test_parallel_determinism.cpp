// The sharded interval engine's determinism contract: for any worker
// count, simulate_interval produces bit-identical reports and identical
// telemetry. The FP reductions must not merely be close — double addition
// is non-associative, so this only holds if the engine really performs
// the same additions in the same order regardless of threads.

#include <cstring>

#include <gtest/gtest.h>

#include "core/region.hpp"
#include "core/sailfish.hpp"

namespace sf::core {
namespace {

bool bit_identical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_reports_bit_identical(const SailfishRegion::IntervalReport& a,
                                  const SailfishRegion::IntervalReport& b) {
  EXPECT_TRUE(bit_identical(a.offered_bps, b.offered_bps));
  EXPECT_TRUE(bit_identical(a.offered_pps, b.offered_pps));
  EXPECT_TRUE(bit_identical(a.dropped_pps, b.dropped_pps));
  EXPECT_TRUE(bit_identical(a.drop_rate, b.drop_rate));
  EXPECT_TRUE(bit_identical(a.fallback_bps, b.fallback_bps));
  EXPECT_TRUE(bit_identical(a.fallback_ratio, b.fallback_ratio));
  for (std::size_t pipe = 0; pipe < 4; ++pipe) {
    EXPECT_TRUE(bit_identical(a.shard_pipe_bps[pipe],
                              b.shard_pipe_bps[pipe]))
        << "pipe " << pipe;
  }
  EXPECT_TRUE(bit_identical(a.x86_max_core_utilization,
                            b.x86_max_core_utilization));
}

SailfishSystem make_fixture() {
  SailfishOptions options = quickstart_options();
  options.flows.flow_count = 1200;
  return make_system(options);
}

TEST(ParallelDeterminism, OneAndEightThreadsBitIdentical) {
  SailfishSystem single = make_fixture();
  SailfishSystem parallel = make_fixture();
  single.region->set_interval_threads(1);
  parallel.region->set_interval_threads(8);

  for (std::uint64_t interval = 0; interval < 4; ++interval) {
    const auto a = single.region->simulate_interval(single.flows, 2.5e12,
                                                    interval);
    const auto b = parallel.region->simulate_interval(parallel.flows,
                                                      2.5e12, interval);
    expect_reports_bit_identical(a, b);
  }

  // The whole telemetry tree agrees too — per-device, per-node and
  // region counters, including the engine's own counters.
  const auto snap_a = single.region->telemetry_snapshot();
  const auto snap_b = parallel.region->telemetry_snapshot();
  EXPECT_EQ(snap_a.counters, snap_b.counters);
}

TEST(ParallelDeterminism, ThreadCountSweepsAgree) {
  SailfishSystem reference = make_fixture();
  reference.region->set_interval_threads(1);
  const auto expected =
      reference.region->simulate_interval(reference.flows, 1.8e12, 42);

  for (std::size_t threads : {2, 3, 5, 16}) {
    SailfishSystem system = make_fixture();
    system.region->set_interval_threads(threads);
    const auto report =
        system.region->simulate_interval(system.flows, 1.8e12, 42);
    SCOPED_TRACE(threads);
    expect_reports_bit_identical(expected, report);
  }
}

TEST(ParallelDeterminism, ResizingThePoolMidStreamChangesNothing) {
  SailfishSystem a = make_fixture();
  SailfishSystem b = make_fixture();
  a.region->set_interval_threads(1);
  const auto r1 = a.region->simulate_interval(a.flows, 2e12, 7);
  const auto r2 = a.region->simulate_interval(a.flows, 2e12, 8);

  b.region->set_interval_threads(4);
  const auto s1 = b.region->simulate_interval(b.flows, 2e12, 7);
  b.region->set_interval_threads(2);
  const auto s2 = b.region->simulate_interval(b.flows, 2e12, 8);

  expect_reports_bit_identical(r1, s1);
  expect_reports_bit_identical(r2, s2);
}

TEST(ParallelDeterminism, EngineCountersMatchTheFlowPopulation) {
  SailfishSystem system = make_fixture();
  system.region->set_interval_threads(4);
  system.region->simulate_interval(system.flows, 2e12, 1);
  const auto snap = system.region->registry().snapshot();
  EXPECT_EQ(snap.counter("region.engine.flows"), system.flows.size());
  EXPECT_EQ(snap.counter("region.engine.hw_flows") +
                snap.counter("region.engine.sw_flows") +
                snap.counter("region.engine.unknown_vni_flows"),
            system.flows.size());
}

TEST(ParallelDeterminism, PlanShapeIsStableUnderResizes) {
  SailfishSystem system = make_fixture();
  const std::size_t shards = system.region->interval_plan().shards;
  system.region->set_interval_threads(8);
  EXPECT_EQ(system.region->interval_plan().shards, shards);
  EXPECT_EQ(system.region->interval_plan().threads, 8u);
}

}  // namespace
}  // namespace sf::core
