#include "core/capacity_planner.hpp"

#include <gtest/gtest.h>

namespace sf::core {
namespace {

TEST(CapacityPlanner, ReproducesPaperWorkedExample) {
  // §2.3: 15 Tbps / 100 Gbps at 50% water level, doubled for 1:1 backup
  // -> 600 boxes at O($10K) -> O($10M)... then §4.2: ~10 XGW-H + ~4
  // XGW-x86, > 90% cheaper.
  const auto plan = plan_region(RegionRequirements{}, NodeEconomics{});
  EXPECT_EQ(plan.x86_only.nodes, 600u);
  EXPECT_NEAR(plan.x86_only.cost, 6e6, 1);
  EXPECT_EQ(plan.sailfish_hardware.nodes, 20u);  // 10 primaries + backup
  EXPECT_EQ(plan.sailfish_software.nodes, 4u);   // 2 + backup
  EXPECT_GT(plan.cost_reduction, 0.9);
}

TEST(CapacityPlanner, EcmpCapPartitionsTheX86Fleet) {
  const auto plan = plan_region(RegionRequirements{}, NodeEconomics{});
  // 300 primaries / 64 next-hops -> 5 clusters (§2.3's "partitioned into
  // multiple smaller clusters behind different load balancers").
  EXPECT_EQ(plan.x86_only.clusters, 5u);
  EXPECT_EQ(plan.sailfish_hardware.clusters, 1u);
}

TEST(CapacityPlanner, TableCapacityCanDominateSizing) {
  // §6.2 "long-term viability": entries growing without traffic growth
  // erode the advantage — the hardware fleet is then sized by memory.
  RegionRequirements requirements;
  requirements.traffic_bps = 5e12;
  requirements.table_entries = 20'000'000;  // 10 clusters' worth
  const auto plan = plan_region(requirements, NodeEconomics{});
  // Traffic alone needs ceil(5T / 1.6T) = 4 primaries; entries need 10.
  EXPECT_EQ(plan.sailfish_hardware.nodes, 20u);
}

TEST(CapacityPlanner, BackupDoublingIsOptional) {
  RegionRequirements requirements;
  requirements.backup_1_to_1 = false;
  const auto plan = plan_region(requirements, NodeEconomics{});
  EXPECT_EQ(plan.x86_only.nodes, 300u);
}

TEST(CapacityPlanner, CostReductionShrinksIfHardwarePricier) {
  NodeEconomics economics;
  economics.xgwh_unit_cost = 100'000;  // 10x an x86 box
  const auto plan = plan_region(RegionRequirements{}, economics);
  EXPECT_LT(plan.cost_reduction, 0.9);
  EXPECT_GT(plan.cost_reduction, 0.0);
}

TEST(CapacityPlanner, RejectsBadRequirements) {
  RegionRequirements bad;
  bad.water_level = 0;
  EXPECT_THROW(plan_region(bad, NodeEconomics{}), std::invalid_argument);
  bad.water_level = 1.5;
  EXPECT_THROW(plan_region(bad, NodeEconomics{}), std::invalid_argument);
}

}  // namespace
}  // namespace sf::core
