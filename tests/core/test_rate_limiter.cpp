// Satellite coverage for the update-channel budget: TokenBucket behavior
// under non-monotonic clocks, and the controller's retry semantics when
// the budget answers kRateLimited.

#include <gtest/gtest.h>

#include "cluster/controller.hpp"
#include "core/rate_limiter.hpp"

namespace sf {
namespace {

TEST(TokenBucket, BackwardsTimestampDoesNotMintTokens) {
  core::TokenBucket bucket(10.0, 10.0);
  EXPECT_TRUE(bucket.try_consume(10.0, 100.0));  // drain the burst
  EXPECT_DOUBLE_EQ(bucket.available(100.0), 0.0);
  // A stale (earlier) timestamp — reordered probes, clock slew — must not
  // refill the bucket, and must not move the refill cursor backwards.
  EXPECT_DOUBLE_EQ(bucket.available(50.0), 0.0);
  EXPECT_FALSE(bucket.try_consume(1.0, 50.0));
  // Nor may the excursion poison future refills: after one real second
  // past the high-water mark, exactly `rate` tokens exist.
  EXPECT_DOUBLE_EQ(bucket.available(101.0), 10.0);
}

TEST(TokenBucket, RepeatedIdenticalTimestampRefillsOnce) {
  core::TokenBucket bucket(10.0, 10.0);
  ASSERT_TRUE(bucket.try_consume(10.0, 0.0));
  ASSERT_DOUBLE_EQ(bucket.available(1.0), 10.0);
  ASSERT_TRUE(bucket.try_consume(10.0, 1.0));
  // Hammering the same instant never accumulates anything.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(bucket.try_consume(1.0, 1.0));
  }
  EXPECT_EQ(bucket.rejected(), 5u);
}

TEST(TokenBucket, AccountingSurvivesNonMonotonicMix) {
  core::TokenBucket bucket(100.0, 50.0);
  std::uint64_t accepted = 0;
  // Interleave forward and stale timestamps; total acceptances must be
  // bounded by burst + rate * (max forward time), never inflated by the
  // backwards jumps.
  const double times[] = {0.0, 1.0, 0.5, 1.0, 2.0, 1.5, 2.0, 3.0};
  for (double now : times) {
    for (int i = 0; i < 100; ++i) {
      if (bucket.try_consume(1.0, now)) ++accepted;
    }
  }
  EXPECT_LE(accepted, static_cast<std::uint64_t>(50 + 100 * 3));
  EXPECT_EQ(accepted, bucket.accepted());
}

TEST(ControllerRetry, RateLimitedProvisioningConvergesViaRetryQueue) {
  cluster::Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 0;
  // A budget small enough that a burst of VPC installs overruns it.
  config.table_op_rate_limit = 4.0;
  config.table_op_burst = 4;
  cluster::Controller controller(config);

  std::size_t admitted = 0;
  for (net::Vni vni = 1; vni <= 8; ++vni) {
    workload::VpcRecord vpc;
    vpc.vni = vni;
    workload::RouteRecord route;
    route.prefix = net::Ipv4Prefix(net::Ipv4Addr(10, 0, vni, 0), 24);
    route.action = tables::VxlanRouteAction{tables::RouteScope::kLocal, 0,
                                            net::Ipv4Addr()};
    vpc.routes.push_back(route);
    workload::VmRecord vm;
    vm.ip = net::IpAddr(net::Ipv4Addr(10, 0, vni, 1));
    vm.nc_ip = net::Ipv4Addr(172, 16, 0, vni);
    vpc.vms.push_back(vm);
    if (controller.add_vpc(vpc)) ++admitted;
  }
  EXPECT_EQ(admitted, 8u);
  // 16 ops against a 4-op burst: most of them were rate limited. Before
  // the retry queue existed they vanished here — admitted VPCs whose
  // routes never reached any device.
  EXPECT_GT(controller.deferred_op_count(), 0u);
  EXPECT_LT(controller.cluster(0).route_count(), 8u);

  // Advancing the clock redelivers under the refilled budget until the
  // desired state and the devices agree exactly.
  std::size_t replayed = 0;
  for (double now = 1.0; now <= 64.0; now += 1.0) {
    replayed += controller.advance_clock(now);
    if (controller.deferred_op_count() == 0) break;
  }
  EXPECT_EQ(controller.deferred_op_count(), 0u);
  EXPECT_GT(replayed, 0u);
  EXPECT_EQ(controller.cluster(0).route_count(), 8u);
  EXPECT_EQ(controller.cluster(0).mapping_count(), 8u);
  const auto audit = controller.check_consistency(0);
  EXPECT_EQ(audit.missing_on_device, 0u);
  EXPECT_GT(audit.entries_checked, 0u);
  EXPECT_EQ(controller.retry_stats().gave_up, 0u);
}

TEST(ControllerRetry, ChannelOutageDefersAndDrains) {
  cluster::Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 0;
  cluster::Controller controller(config);

  workload::VpcRecord vpc;
  vpc.vni = 42;
  workload::RouteRecord route;
  route.prefix = net::Ipv4Prefix(net::Ipv4Addr(10, 0, 1, 0), 24);
  route.action = tables::VxlanRouteAction{tables::RouteScope::kLocal, 0,
                                          net::Ipv4Addr()};
  vpc.routes.push_back(route);
  ASSERT_TRUE(controller.add_vpc(vpc));
  ASSERT_EQ(controller.deferred_op_count(), 0u);

  controller.set_update_channel_up(false);
  // Direct programming while the channel is down is refused...
  EXPECT_EQ(controller.install_route(
                42, net::Ipv4Prefix(net::Ipv4Addr(10, 0, 2, 0), 24),
                tables::VxlanRouteAction{tables::RouteScope::kLocal, 0,
                                         net::Ipv4Addr()}),
            dataplane::TableOpStatus::kRateLimited);
  // ...but the reliable push path parks the op instead of losing it.
  dataplane::TableOp op;
  op.kind = dataplane::TableOp::Kind::kAddRoute;
  op.vni = 42;
  op.prefix = net::Ipv4Prefix(net::Ipv4Addr(10, 0, 3, 0), 24);
  op.route_action = tables::VxlanRouteAction{tables::RouteScope::kLocal, 0,
                                             net::Ipv4Addr()};
  EXPECT_EQ(controller.push_op(op), dataplane::TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.deferred_op_count(), 1u);
  EXPECT_EQ(controller.advance_clock(1.0), 0u);  // still down

  controller.set_update_channel_up(true);
  EXPECT_EQ(controller.advance_clock(2.0), 1u);
  EXPECT_EQ(controller.deferred_op_count(), 0u);
  EXPECT_EQ(controller.check_consistency(0).missing_on_device, 0u);
}

}  // namespace
}  // namespace sf
