#include <gtest/gtest.h>

#include "core/cache_cluster.hpp"
#include "core/rate_limiter.hpp"
#include "core/table_sharing.hpp"

namespace sf::core {
namespace {

TEST(TokenBucket, AllowsBurstThenRate) {
  TokenBucket bucket(1000.0, 500.0);
  EXPECT_TRUE(bucket.try_consume(500, 0.0));
  EXPECT_FALSE(bucket.try_consume(1, 0.0));
  // 0.1s refills 100 tokens.
  EXPECT_TRUE(bucket.try_consume(100, 0.1));
  EXPECT_FALSE(bucket.try_consume(1, 0.1));
  EXPECT_EQ(bucket.accepted(), 2u);
  EXPECT_EQ(bucket.rejected(), 2u);
}

TEST(TokenBucket, BurstCapsIdleAccumulation) {
  TokenBucket bucket(1000.0, 500.0);
  EXPECT_NEAR(bucket.available(100.0), 500.0, 1e-9);
}

TEST(TokenBucket, RejectsBadConfig) {
  EXPECT_THROW(TokenBucket(0, 1), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1, 0), std::invalid_argument);
}

TEST(TableSharing, StatefulTablesGoToSoftware) {
  ServiceProfile snat{"snat", 0.5, 1.0, 1000, true, 900};
  EXPECT_EQ(decide_placement(snat, SharingPolicy{}), Placement::kSoftware);
}

TEST(TableSharing, HugeTablesGoToSoftware) {
  ServiceProfile huge{"huge", 0.5, 1.0, 500'000'000, false, 900};
  EXPECT_EQ(decide_placement(huge, SharingPolicy{}), Placement::kSoftware);
}

TEST(TableSharing, VolatileTablesGoToSoftware) {
  ServiceProfile churny{"churny", 0.5, 1000.0, 1000, false, 900};
  EXPECT_EQ(decide_placement(churny, SharingPolicy{}),
            Placement::kSoftware);
}

TEST(TableSharing, NewbornServicesGoToSoftware) {
  ServiceProfile newborn{"beta", 0.5, 1.0, 1000, false, 2};
  EXPECT_EQ(decide_placement(newborn, SharingPolicy{}),
            Placement::kSoftware);
}

TEST(TableSharing, StableHotTablesGoToHardware) {
  ServiceProfile routing{"routing", 0.9, 1.0, 1'000'000, false, 900};
  EXPECT_EQ(decide_placement(routing, SharingPolicy{}),
            Placement::kHardware);
}

TEST(TableSharing, DefaultCatalogKeepsSoftwareShareUnderPaperBound) {
  const auto catalog = default_service_catalog();
  const auto placements = decide_catalog(catalog, SharingPolicy{});
  const double share = software_traffic_share(catalog, placements);
  // Fig. 22: the software path carries < 0.2 per mille of traffic.
  EXPECT_LT(share, 0.002);
  EXPECT_GT(share, 0.0);
  // The major forwarding services land in hardware.
  EXPECT_EQ(placements[0], Placement::kHardware);
  EXPECT_EQ(placements[1], Placement::kHardware);  // cross-region
  EXPECT_EQ(placements[2], Placement::kHardware);  // IDC
}

TEST(TableSharing, MismatchedSpansThrow) {
  const auto catalog = default_service_catalog();
  std::vector<Placement> short_placements(2);
  EXPECT_THROW(software_traffic_share(catalog, short_placements),
               std::invalid_argument);
}

TEST(CacheCluster, PaperArithmetic) {
  // §8: 25% active entries, 4 cache clusters + 1 backup -> 4x performance
  // at 2x cost, provided the active set's traffic share is high enough.
  CacheClusterPlan plan({4, 0.25});
  std::vector<TenantActivity> tenants;
  // 10 hot tenants: 2.5% of entries each, 9% of traffic each.
  for (int i = 0; i < 10; ++i) tenants.push_back({0.025, 0.09});
  // Cold tail: 75% of entries, 10% of traffic.
  for (int i = 0; i < 30; ++i) tenants.push_back({0.025, 0.10 / 30});
  const auto analysis = plan.analyze(tenants);
  EXPECT_NEAR(analysis.hit_rate, 0.9, 1e-9);
  EXPECT_NEAR(analysis.cost_ratio, 2.0, 1e-9);
  EXPECT_NEAR(analysis.load_multiplier, 4.0 / 0.9, 1e-6);
  EXPECT_EQ(analysis.active_tenants, 10u);
}

TEST(CacheCluster, BackupBoundsLowHitRates) {
  CacheClusterPlan plan({4, 0.25});
  std::vector<TenantActivity> tenants = {{0.25, 0.5}, {0.75, 0.5}};
  const auto analysis = plan.analyze(tenants);
  EXPECT_NEAR(analysis.hit_rate, 0.5, 1e-9);
  // Backup becomes the bottleneck: 1/(1-0.5) = 2 < 4/0.5 = 8.
  EXPECT_NEAR(analysis.load_multiplier, 2.0, 1e-9);
}

TEST(CacheCluster, GreedyPicksDensestTenants) {
  CacheClusterPlan plan({2, 0.3});
  std::vector<TenantActivity> tenants = {
      {0.3, 0.1},   // big, lukewarm
      {0.1, 0.5},   // small, hot -> picked first
      {0.2, 0.35},  // medium, hot -> picked second
  };
  const auto analysis = plan.analyze(tenants);
  EXPECT_NEAR(analysis.hit_rate, 0.85, 1e-9);
  EXPECT_EQ(analysis.active_tenants, 2u);
}

TEST(CacheCluster, SteerSendsMissesToBackup) {
  CacheClusterPlan plan({4, 0.25});
  std::vector<bool> active = {true, false, true};
  EXPECT_LT(plan.steer(0, active), 4u);
  EXPECT_EQ(plan.steer(1, active), 4u);  // backup index
  EXPECT_LT(plan.steer(2, active), 4u);
}

TEST(CacheCluster, RejectsBadConfig) {
  EXPECT_THROW(CacheClusterPlan({0, 0.25}), std::invalid_argument);
  EXPECT_THROW(CacheClusterPlan({4, 0.0}), std::invalid_argument);
  EXPECT_THROW(CacheClusterPlan({4, 1.5}), std::invalid_argument);
}

}  // namespace
}  // namespace sf::core
