#include "core/region.hpp"

#include <gtest/gtest.h>

#include "core/sailfish.hpp"

namespace sf::core {
namespace {

using net::IpAddr;

SailfishSystem small_system() {
  SailfishOptions options = quickstart_options();
  options.flows.flow_count = 800;
  return make_system(options);
}

net::OverlayPacket packet_for_flow(const workload::Flow& flow) {
  net::OverlayPacket pkt;
  pkt.vni = flow.vni;
  pkt.inner = flow.tuple;
  pkt.payload_size = 200;
  return pkt;
}

TEST(SailfishRegion, InstallsWholeTopology) {
  const SailfishSystem system = small_system();
  EXPECT_EQ(system.admitted_vpcs, system.topology.vpcs.size());
  EXPECT_GE(system.region->controller().cluster_count(), 1u);
  // Software mirror received everything.
  EXPECT_EQ(system.region->x86_node(0).route_count(),
            system.topology.total_routes());
  EXPECT_EQ(system.region->x86_node(0).mapping_count(),
            system.topology.total_vms());
}

TEST(SailfishRegion, EastWestFlowsForwardInHardware) {
  SailfishSystem system = small_system();
  std::size_t checked = 0;
  for (const workload::Flow& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kInternet) continue;
    const auto result = system.region->process(packet_for_flow(flow));
    ASSERT_EQ(dataplane::path_label(result), "hardware-forwarded")
        << dataplane::to_string(result.drop_reason);
    EXPECT_EQ(result.packet.outer_dst_ip, IpAddr(flow.dst_nc));
    if (++checked > 60) break;
  }
  EXPECT_GT(checked, 10u);
}

TEST(SailfishRegion, InternetFlowsTakeSoftwareSnatPath) {
  SailfishSystem system = small_system();
  std::size_t checked = 0;
  for (const workload::Flow& flow : system.flows) {
    if (flow.scope != tables::RouteScope::kInternet) continue;
    const auto result = system.region->process(packet_for_flow(flow), 1.0);
    ASSERT_EQ(dataplane::path_label(result), "software-snat")
        << dataplane::to_string(result.drop_reason);
    // SNAT decapsulated the packet and rewrote the source.
    EXPECT_EQ(result.packet.vni, 0u);
    if (++checked > 20) break;
  }
  EXPECT_GT(checked, 2u);
}

TEST(SailfishRegion, SoftwarePathIsSlowerThanHardware) {
  SailfishSystem system = small_system();
  double hw_latency = 0;
  double sw_latency = 0;
  for (const workload::Flow& flow : system.flows) {
    const auto result = system.region->process(packet_for_flow(flow), 2.0);
    if (result.action == dataplane::Action::kForwardToNc &&
        !result.software_path) {
      hw_latency = result.latency_us;
    } else if (result.action == dataplane::Action::kSnatToInternet) {
      sw_latency = result.latency_us;
    }
    if (hw_latency > 0 && sw_latency > 0) break;
  }
  // Fig. 18c: ~2us hardware vs ~40us software (the software path also
  // pays the hardware pass that steered it).
  EXPECT_NEAR(hw_latency, 2.2, 0.2);
  EXPECT_GT(sw_latency, 35.0);
}

TEST(SailfishRegion, UnknownVniDrops) {
  SailfishSystem system = small_system();
  net::OverlayPacket pkt;
  pkt.vni = 0xfffff;
  pkt.inner.src = IpAddr::must_parse("10.0.0.1");
  pkt.inner.dst = IpAddr::must_parse("10.0.0.2");
  pkt.payload_size = 64;
  const auto result = system.region->process(pkt);
  EXPECT_TRUE(result.dropped());
  EXPECT_EQ(result.drop_reason, dataplane::DropReason::kUnknownVni);
}

TEST(SailfishRegion, IntervalReportSplitsHardwareAndSoftware) {
  SailfishSystem system = small_system();
  // Quickstart scale: one small cluster, so offer a load it can carry.
  const auto report = system.region->simulate_interval(
      system.flows, /*total_bps=*/1.5e12, /*jitter_key=*/1);
  EXPECT_NEAR(report.offered_bps, 1.5e12, 1);
  EXPECT_GT(report.offered_pps, 0);
  // Fallback ratio matches the generator's configured share (~0.15 per
  // mille), the Fig. 22 quantity.
  EXPECT_NEAR(report.fallback_ratio, 0.00015, 0.00002);
  // Drop rate sits at the hardware loss floor (Fig. 19 band).
  EXPECT_GT(report.drop_rate, 1e-12);
  EXPECT_LT(report.drop_rate, 1e-9);
  // The software fleet is far from overload on a thin fallback stream.
  EXPECT_LT(report.x86_max_core_utilization, 1.0);
}

TEST(SailfishRegion, PipeBalanceIsEven) {
  SailfishSystem system = small_system();
  const auto report =
      system.region->simulate_interval(system.flows, 1.5e12, 2);
  const double pipe1 = report.shard_pipe_bps[1];
  const double pipe3 = report.shard_pipe_bps[3];
  EXPECT_GT(pipe1, 0);
  EXPECT_GT(pipe3, 0);
  // Figs. 20/21: an even split between the loopback pipes. At this small
  // sample (500 Zipf flows) the split is approximate; the Fig. 20/21
  // bench runs at region scale where it tightens.
  const double imbalance =
      std::abs(pipe1 - pipe3) / (pipe1 + pipe3);
  EXPECT_LT(imbalance, 0.5);
  // Pipes 0/2 are entry/exit pipes, not shard pipes.
  EXPECT_EQ(report.shard_pipe_bps[0], 0);
  EXPECT_EQ(report.shard_pipe_bps[2], 0);
}

TEST(SailfishRegion, JitterKeyVariesLossWithinBand) {
  SailfishSystem system = small_system();
  const auto a =
      system.region->simulate_interval(system.flows, 1.5e12, 1);
  const auto b =
      system.region->simulate_interval(system.flows, 1.5e12, 2);
  EXPECT_NE(a.drop_rate, b.drop_rate);
  EXPECT_LT(std::max(a.drop_rate, b.drop_rate), 1e-9);
}

TEST(SailfishRegion, RejectsZeroX86Nodes) {
  SailfishRegion::Config config;
  config.x86_nodes = 0;
  EXPECT_THROW(SailfishRegion{config}, std::invalid_argument);
}

TEST(SailfishRegion, PlacementGaugesAreOptIn) {
  // Default region: no placement engine, no placement gauges.
  SailfishRegion::Config config;
  {
    SailfishRegion region(config);
    region.publish_pressure_gauges(1.0);
    EXPECT_FALSE(
        region.registry().has_gauge("region.placement.pipe0.sram_words"));
  }

  config.controller.placement_enabled = true;
  SailfishRegion region(config);
  workload::VpcRecord vpc;
  vpc.vni = 77;
  vpc.family = net::IpFamily::kV4;
  vpc.routes.push_back(workload::RouteRecord{
      net::Ipv4Prefix(net::Ipv4Addr(10, 77, 0, 0), 24),
      tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, {}}});
  ASSERT_TRUE(region.controller().add_vpc(vpc));
  region.publish_pressure_gauges(1.0);
  const auto& registry = region.registry();
  EXPECT_TRUE(registry.has_gauge("region.placement.pipe0.sram_words"));
  EXPECT_TRUE(registry.has_gauge("region.placement.pipe0.tcam_slices"));
  double sram_total = 0;
  for (unsigned p = 0; p < 4; ++p) {
    sram_total += registry.gauge_value("region.placement.pipe" +
                                       std::to_string(p) + ".sram_words");
  }
  EXPECT_GT(sram_total, 0.0);
  EXPECT_EQ(registry.gauge_value("region.placement.feasible"), 1.0);
  EXPECT_GE(registry.gauge_value("region.placement.delta_applies") +
                registry.gauge_value("region.placement.full_recomputes"),
            1.0);
}

TEST(Sailfish, VersionString) {
  EXPECT_NE(std::string(version()).find("sailfish"), std::string::npos);
}

}  // namespace
}  // namespace sf::core
