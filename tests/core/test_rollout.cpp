#include "core/rollout.hpp"

#include <gtest/gtest.h>

#include "core/sailfish.hpp"

namespace sf::core {
namespace {

TEST(FleetInstall, SoftwareFleetTakesHoursHardwareMinutes) {
  // §2.3: > 10 minutes per XGW-x86 at ~3000 entries/s for a 2M-entry set;
  // a 600-box fleet with 20 parallel install streams takes hours, while
  // the ten-XGW-H Sailfish fleet converges in minutes.
  const double per_x86_node = fleet_install_seconds(1, 2'000'000, 3000, 1);
  EXPECT_GT(per_x86_node, 600.0);  // the paper's ">10 minutes"

  const double x86_fleet = fleet_install_seconds(600, 2'000'000, 3000, 20);
  const double sailfish_fleet = fleet_install_seconds(10, 2'000'000, 3000, 10);
  EXPECT_GT(x86_fleet, 4 * 3600.0);
  EXPECT_LT(sailfish_fleet, 3600.0);
  EXPECT_GT(x86_fleet / sailfish_fleet, 10.0);
}

TEST(FleetInstall, RejectsDegenerateArguments) {
  EXPECT_THROW(fleet_install_seconds(0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(fleet_install_seconds(1, 1, 0, 1), std::invalid_argument);
  EXPECT_THROW(fleet_install_seconds(1, 1, 1, 0), std::invalid_argument);
}

TEST(RolloutManager, HealthyRegionAdmitsFully) {
  SailfishSystem system = make_system(quickstart_options());
  RolloutManager rollout;
  const auto stages =
      rollout.admit_traffic(*system.region, system.flows, 1e12);
  ASSERT_EQ(stages.size(), rollout.config().admission_steps.size());
  for (const auto& stage : stages) {
    EXPECT_TRUE(stage.passed) << stage.fraction;
  }
  EXPECT_TRUE(
      RolloutManager::fully_admitted(stages, rollout.config()));
  // Fractions ramp as configured.
  EXPECT_DOUBLE_EQ(stages.front().fraction, 0.01);
  EXPECT_DOUBLE_EQ(stages.back().fraction, 1.0);
}

TEST(RolloutManager, HaltsWhenHealthGateFails) {
  SailfishSystem system = make_system(quickstart_options());
  RolloutManager::Config config;
  config.admission_steps = {0.1, 1.0, 2.0, 4.0};
  // A gate below the hardware loss floor fails immediately after the
  // region starts dropping for real (overload at absurd multiples).
  config.max_drop_rate = 1e-9;
  RolloutManager rollout(config);
  // Offer far beyond the quickstart region's capacity so late stages drop.
  const auto stages =
      rollout.admit_traffic(*system.region, system.flows, 40e12);
  ASSERT_FALSE(stages.empty());
  EXPECT_LT(stages.size(), config.admission_steps.size());
  EXPECT_FALSE(stages.back().passed);
  EXPECT_FALSE(RolloutManager::fully_admitted(stages, config));
  // Every stage before the failing one passed.
  for (std::size_t i = 0; i + 1 < stages.size(); ++i) {
    EXPECT_TRUE(stages[i].passed);
  }
}

TEST(RolloutManager, OfferedLoadScalesWithFraction) {
  SailfishSystem system = make_system(quickstart_options());
  RolloutManager rollout;
  const auto stages =
      rollout.admit_traffic(*system.region, system.flows, 2e12);
  for (const auto& stage : stages) {
    EXPECT_DOUBLE_EQ(stage.offered_bps, 2e12 * stage.fraction);
  }
}

}  // namespace
}  // namespace sf::core
