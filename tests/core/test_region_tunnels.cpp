// Cross-region / IDC tunnel paths through the region (Table 1's
// "VM-Cross-region" and "VM-IDC" service rows), which the synthetic
// topology does not generate by default.

#include <gtest/gtest.h>

#include "core/path_trace.hpp"
#include "core/sailfish.hpp"

namespace sf::core {
namespace {

net::Vni first_v4_vni(const SailfishSystem& system) {
  for (const auto& vpc : system.topology.vpcs) {
    if (vpc.family == net::IpFamily::kV4) return vpc.vni;
  }
  return system.topology.vpcs.front().vni;
}

SailfishSystem system_with_tunnels() {
  SailfishSystem system = make_system(quickstart_options());
  auto& controller = system.region->controller();
  const net::Vni vni = first_v4_vni(system);
  // Cross-region route (CEN to another region's gateway).
  controller.install_route(
      vni, net::IpPrefix::must_parse("172.30.0.0/16"),
      {tables::RouteScope::kCrossRegion, 0, net::Ipv4Addr(198, 18, 0, 7)});
  // IDC route over the leased line.
  controller.install_route(
      vni, net::IpPrefix::must_parse("172.31.0.0/16"),
      {tables::RouteScope::kIdc, 0, net::Ipv4Addr(198, 19, 0, 9)});
  return system;
}

net::OverlayPacket to(net::Vni vni, const char* dst) {
  net::OverlayPacket pkt;
  pkt.vni = vni;
  pkt.inner.src = net::IpAddr::must_parse("10.0.1.2");
  pkt.inner.dst = net::IpAddr::must_parse(dst);
  pkt.payload_size = 80;
  return pkt;
}

TEST(RegionTunnels, CrossRegionTrafficTakesHardwareTunnel) {
  SailfishSystem system = system_with_tunnels();
  const net::Vni vni = first_v4_vni(system);
  const auto result = system.region->process(to(vni, "172.30.5.5"));
  EXPECT_EQ(dataplane::path_label(result), "hardware-tunnel");
  EXPECT_EQ(result.packet.outer_dst_ip,
            net::IpAddr(net::Ipv4Addr(198, 18, 0, 7)));
}

TEST(RegionTunnels, IdcTrafficTakesHardwareTunnel) {
  SailfishSystem system = system_with_tunnels();
  const net::Vni vni = first_v4_vni(system);
  const auto result = system.region->process(to(vni, "172.31.9.9"));
  EXPECT_EQ(dataplane::path_label(result), "hardware-tunnel");
  EXPECT_EQ(result.packet.outer_dst_ip,
            net::IpAddr(net::Ipv4Addr(198, 19, 0, 9)));
}

TEST(RegionTunnels, TunnelRoutesStayInHardware) {
  // The default table-sharing policy keeps tunnel routes in XGW-H: the
  // x86 path must not be touched (its telemetry stays clean).
  SailfishSystem system = system_with_tunnels();
  const net::Vni vni = first_v4_vni(system);
  const auto before =
      system.region->x86_node(0).telemetry().packets_in;
  system.region->process(to(vni, "172.30.5.5"));
  EXPECT_EQ(system.region->x86_node(0).telemetry().packets_in, before);
}

TEST(RegionTunnels, PathTraceShowsTunnelHop) {
  SailfishSystem system = system_with_tunnels();
  const net::Vni vni = first_v4_vni(system);
  const auto trace = trace_packet(*system.region, to(vni, "172.30.5.5"));
  EXPECT_EQ(dataplane::path_label(trace.result), "hardware-tunnel");
  bool tunnel_hop = false;
  for (const auto& hop : trace.hops) {
    if (hop.detail.find("tunnel to 198.18.0.7") != std::string::npos) {
      tunnel_hop = true;
    }
  }
  EXPECT_TRUE(tunnel_hop);
}

TEST(RegionTunnels, RemovingTunnelFallsToDefaultRoute) {
  SailfishSystem system = system_with_tunnels();
  auto& controller = system.region->controller();
  const net::Vni vni = first_v4_vni(system);
  ASSERT_TRUE(dataplane::succeeded(controller.remove_route(
      vni, net::IpPrefix::must_parse("172.30.0.0/16"))));
  // Now covered by the VPC's default Internet route -> software SNAT.
  const auto result = system.region->process(to(vni, "172.30.5.5"), 1.0);
  EXPECT_EQ(dataplane::path_label(result), "software-snat");
}

}  // namespace
}  // namespace sf::core
