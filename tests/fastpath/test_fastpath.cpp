// Fast-path micro-contracts, checked with real instrumentation rather
// than inspection:
//
//   * a warmed cache hit performs ZERO heap allocations end to end
//     (counting global operator new/delete overrides below);
//   * the packet path performs no string-keyed PHV lookups at all — the
//     compiled FieldId handles carry every stage (Phv::string_lookups()).
//
// This lives in its own binary because the operator new/delete overrides
// are global: they must not contaminate the other test suites.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "asic/phv.hpp"
#include "x86/xgw_x86.hpp"
#include "xgwh/xgwh.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sf {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;
using tables::VmNcAction;
using tables::VmNcKey;
using tables::VxlanRouteAction;

void install_tables(dataplane::TableProgrammer& gw) {
  gw.install_route(10, IpPrefix::must_parse("192.168.10.0/24"),
                   VxlanRouteAction{RouteScope::kLocal, 0, {}});
  gw.install_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")},
                     VmNcAction{net::Ipv4Addr(10, 1, 1, 11)});
}

net::OverlayPacket sample_packet(std::uint16_t src_port = 40000) {
  net::OverlayPacket pkt;
  pkt.vni = 10;
  pkt.inner.src = IpAddr::must_parse("192.168.10.3");
  pkt.inner.dst = IpAddr::must_parse("192.168.10.2");
  pkt.inner.proto = 6;
  pkt.inner.src_port = src_port;
  pkt.inner.dst_port = 80;
  pkt.payload_size = 200;
  return pkt;
}

TEST(FastPath, XgwHCacheHitMakesZeroHeapAllocations) {
  xgwh::XgwH::Config config;
  config.flow_cache_entries = 1 << 10;
  xgwh::XgwH gw(config);
  install_tables(gw);
  const net::OverlayPacket pkt = sample_packet();

  // Warm-up: fill the cache AND saturate the histogram reservoirs
  // (latency keeps 256 samples, passes 128) so steady state is reached.
  for (int i = 0; i < 400; ++i) gw.forward(pkt, i * 1e-6);
  ASSERT_GT(gw.flow_cache_stats().hits, 0u);
  ASSERT_EQ(gw.forward(pkt, 1.0).action, dataplane::Action::kForwardToNc);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) gw.forward(pkt, 2.0 + i * 1e-6);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "a warmed cache hit must not touch the heap";
}

TEST(FastPath, XgwX86CacheHitMakesZeroHeapAllocations) {
  x86::XgwX86::Config config;
  config.flow_cache_entries = 1 << 10;
  x86::XgwX86 gw(config);
  install_tables(gw);
  const net::OverlayPacket pkt = sample_packet();

  for (int i = 0; i < 400; ++i) gw.forward(pkt, i * 1e-6);
  ASSERT_GT(gw.flow_cache_stats().hits, 0u);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) gw.forward(pkt, 2.0 + i * 1e-6);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(FastPath, NoStringKeyedPhvLookupsOnThePacketPath) {
  // Misses walk the full pipeline; hits replay. NEITHER may fall back to
  // string-keyed PHV access — every stage runs on interned FieldIds.
  xgwh::XgwH::Config config;
  config.flow_cache_entries = 1 << 10;
  xgwh::XgwH gw(config);
  install_tables(gw);

  const std::uint64_t before = asic::Phv::string_lookups();
  for (int i = 0; i < 200; ++i) {
    // Rotate ports: a mix of cold flows (walks) and repeats (hits).
    gw.forward(sample_packet(static_cast<std::uint16_t>(40000 + i % 8)),
               i * 1e-6);
  }
  EXPECT_EQ(asic::Phv::string_lookups(), before)
      << "a stage regressed to Phv string access on the packet path";
}

TEST(FastPath, FrozenLayoutRejectsRuntimeInterning) {
  // The program's layout freezes at build time: a typo'd field name in a
  // stage must fail loudly instead of silently interning a new slot.
  auto shared = std::make_shared<asic::PhvLayout>();
  shared->intern("known");
  shared->freeze();
  EXPECT_TRUE(shared->frozen());
  EXPECT_THROW(shared->intern("late"), std::logic_error);
  asic::Phv phv(256, shared);
  EXPECT_THROW(phv.set("unknown", 1, 8), std::logic_error);
  phv.set("known", 5, 8);
  EXPECT_EQ(phv.get("known"), 5u);
}

}  // namespace
}  // namespace sf
