// sf::dpu threaded through a full SailfishRegion — the three-tier
// overflow scenario: sketch-driven promotion in the interval model, the
// functional path serving placed flows at DPU latency, failover to x86
// on node failure with re-promotion on recovery, thread-count byte
// identity, and the pressure gauges.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/sailfish.hpp"
#include "dpu/xgw_dpu.hpp"

namespace sf::core {
namespace {

constexpr double kIntervalBps = 1e11;

/// Warms the placer: enough intervals for promotions to reach steady
/// state under the per-interval budget.
SailfishRegion::IntervalReport warm(SailfishSystem& system, int intervals,
                                    std::uint64_t key_base = 0) {
  SailfishRegion::IntervalReport report;
  for (int k = 0; k < intervals; ++k) {
    report = system.region->simulate_interval(
        system.flows, kIntervalBps, key_base + static_cast<std::uint64_t>(k));
  }
  return report;
}

std::string render(const SailfishRegion::IntervalReport& report) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "%.17e %.17e %.17e %.17e %.17e %.17e %zu %zu %zu\n",
                report.offered_pps, report.dropped_pps, report.dpu_pps,
                report.overflow_x86_pps, report.punt_queue_occupancy,
                report.p99_latency_us, report.dpu_flow_entries,
                report.dpu_promotions, report.dpu_demotions);
  return line;
}

TEST(DpuRegion, TierAbsorbsOverflowElephants) {
  ASSERT_TRUE(dpu::dpu_enabled());
  SailfishSystem baseline = make_system(overflow_options(4.0, false));
  SailfishSystem tiered = make_system(overflow_options(4.0, true));
  ASSERT_GT(tiered.region->controller().overflow_count(), 0u);
  ASSERT_EQ(tiered.region->dpu_node_count(), 2u);
  ASSERT_NE(tiered.region->tier_placer(), nullptr);

  const auto off = warm(baseline, 8);
  const auto on = warm(tiered, 8);

  // The DPU tier takes the overflow elephants off the punt lanes.
  EXPECT_GT(on.dpu_pps, 0.0);
  EXPECT_GT(on.dpu_flow_entries, 0u);
  EXPECT_LT(on.punt_queue_occupancy, off.punt_queue_occupancy);
  EXPECT_LT(on.p99_latency_us, off.p99_latency_us);
  EXPECT_LT(on.drop_rate, off.drop_rate);

  // Reported entries match the devices' actual tables, and the placer
  // agrees with what it installed.
  std::size_t device_entries = 0;
  for (std::size_t n = 0; n < tiered.region->dpu_node_count(); ++n) {
    device_entries += tiered.region->dpu_node(n).flow_count();
  }
  EXPECT_EQ(device_entries, on.dpu_flow_entries);
  EXPECT_EQ(tiered.region->tier_placer()->placed_count(), device_entries);

  // The baseline region reports inert three-tier fields.
  EXPECT_EQ(baseline.region->dpu_node_count(), 0u);
  EXPECT_EQ(baseline.region->tier_placer(), nullptr);
  EXPECT_EQ(off.dpu_pps, 0.0);
  EXPECT_EQ(off.dpu_flow_entries, 0u);
}

TEST(DpuRegion, FunctionalPathServesPlacedFlowsAtDpuLatency) {
  SailfishSystem system = make_system(overflow_options(4.0, true));
  warm(system, 8);

  const dpu::TierPlacer& placer = *system.region->tier_placer();
  const workload::Flow* placed = nullptr;
  for (const workload::Flow& flow : system.flows) {
    if (placer.placement({flow.vni, flow.tuple}).has_value()) {
      placed = &flow;
      break;
    }
  }
  ASSERT_NE(placed, nullptr) << "no flow promoted after warmup";

  net::OverlayPacket packet;
  packet.vni = placed->vni;
  packet.inner = placed->tuple;
  packet.payload_size = 256;

  const std::uint64_t served_before =
      system.region->registry().counter_value("region.dpu.served");
  const auto verdict = system.region->process(packet, 100.0);
  EXPECT_FALSE(verdict.dropped());
  EXPECT_DOUBLE_EQ(
      verdict.latency_us,
      system.region->config().dpu_template.base_latency_us);
  EXPECT_EQ(system.region->registry().counter_value("region.dpu.served"),
            served_before + 1);
}

TEST(DpuRegion, NodeFailureFailsOverToX86AndRepromotesOnRecovery) {
  SailfishSystem system = make_system(overflow_options(4.0, true));
  const auto steady = warm(system, 8);
  ASSERT_GT(steady.dpu_pps, 0.0);

  system.region->set_dpu_failed(0, true);
  system.region->set_dpu_failed(1, true);
  EXPECT_EQ(system.region->tier_placer()->placed_count(), 0u);

  // With the tier dark, the overflow rides the punt lanes again (no
  // re-promotion: installs are refused while failed).
  const auto dark = warm(system, 2, 100);
  EXPECT_EQ(dark.dpu_pps, 0.0);
  EXPECT_EQ(dark.dpu_flow_entries, 0u);
  EXPECT_GT(dark.punt_queue_occupancy, steady.punt_queue_occupancy);

  system.region->set_dpu_failed(0, false);
  system.region->set_dpu_failed(1, false);
  const auto recovered = warm(system, 8, 200);
  EXPECT_GT(recovered.dpu_pps, 0.0);
  EXPECT_GT(recovered.dpu_flow_entries, 0u);
}

TEST(DpuRegion, IntervalSeriesIsByteIdenticalAcrossThreadCounts) {
  SailfishSystem one = make_system(overflow_options(4.0, true));
  SailfishSystem eight = make_system(overflow_options(4.0, true));
  one.region->set_interval_threads(1);
  eight.region->set_interval_threads(8);

  std::string series_one;
  std::string series_eight;
  for (int k = 0; k < 6; ++k) {
    series_one += render(one.region->simulate_interval(
        one.flows, kIntervalBps, static_cast<std::uint64_t>(k)));
    series_eight += render(eight.region->simulate_interval(
        eight.flows, kIntervalBps, static_cast<std::uint64_t>(k)));
  }
  EXPECT_EQ(series_one, series_eight);
}

TEST(DpuRegion, PressureGaugesArePublishedOnDemandOnly) {
  SailfishSystem system = make_system(overflow_options(4.0, true));
  warm(system, 4);

  // Opt-in: a region that never publishes keeps gauge-free snapshots.
  EXPECT_TRUE(system.region->telemetry_snapshot().gauges.empty());

  system.region->publish_pressure_gauges(10.0);
  const auto snapshot = system.region->telemetry_snapshot();
  EXPECT_TRUE(snapshot.gauges.contains("region.punt_queue.occupancy"));
  EXPECT_TRUE(snapshot.gauges.contains("region.punt_queue.high_watermark"));
  EXPECT_TRUE(snapshot.gauges.contains("region.flow_cache.occupied"));
  EXPECT_TRUE(snapshot.gauges.contains("region.flow_cache.high_watermark"));
  EXPECT_TRUE(snapshot.gauges.contains("region.dpu.flow_entries"));
  EXPECT_TRUE(snapshot.gauges.contains("region.dpu.table_occupancy"));
  EXPECT_GT(snapshot.gauge("region.dpu.flow_entries"), 0.0);
  EXPECT_GT(snapshot.gauge("region.dpu.table_occupancy"), 0.0);
}

TEST(DpuRegion, ConfigOffBuildsNothingAndRegistersNoCounters) {
  SailfishSystem system = make_system(overflow_options(4.0, false));
  EXPECT_EQ(system.region->dpu_node_count(), 0u);
  EXPECT_EQ(system.region->tier_placer(), nullptr);
  warm(system, 2);
  for (const auto& [name, value] : system.region->telemetry_snapshot().counters) {
    EXPECT_EQ(name.find("dpu"), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace sf::core
