// sf::dpu::XgwDpu — the simulated DPU gateway: bounded exact-match flow
// table with pre-resolved verdicts, typed placement statuses, the
// controller-mirror invalidation surface, and the failure contract (a
// dead box is a transparent wire to x86).

#include <gtest/gtest.h>

#include "dpu/xgw_dpu.hpp"

namespace sf::dpu {
namespace {

net::FiveTuple tuple_n(std::uint16_t n) {
  net::FiveTuple tuple;
  tuple.src = net::IpAddr(net::Ipv4Addr(10, 1, 0, 1));
  tuple.dst = net::IpAddr(net::Ipv4Addr(10, 1, 0, 2));
  tuple.proto = 6;
  tuple.src_port = n;
  tuple.dst_port = 443;
  return tuple;
}

net::OverlayPacket packet_for(net::Vni vni, const net::FiveTuple& tuple) {
  net::OverlayPacket packet;
  packet.vni = vni;
  packet.inner = tuple;
  packet.payload_size = 256;
  return packet;
}

XgwDpu::FlowEntry entry_to(net::Ipv4Addr nc) {
  return XgwDpu::FlowEntry{dataplane::Action::kForwardToNc,
                           net::IpAddr(nc)};
}

TEST(XgwDpu, PlacedFlowReplaysVerdictAtDpuLatency) {
  XgwDpu::Config config;
  config.base_latency_us = 8.0;
  XgwDpu dpu(config);
  const net::FiveTuple tuple = tuple_n(1);
  const net::Ipv4Addr nc(172, 16, 0, 9);
  ASSERT_EQ(dpu.install_flow(7, tuple, entry_to(nc)),
            dataplane::TableOpStatus::kOk);
  EXPECT_TRUE(dpu.has_flow(7, tuple));

  const dataplane::Verdict verdict = dpu.process(packet_for(7, tuple), 0.0);
  EXPECT_EQ(verdict.action, dataplane::Action::kForwardToNc);
  EXPECT_EQ(verdict.packet.outer_src_ip, net::IpAddr(config.device_ip));
  EXPECT_EQ(verdict.packet.outer_dst_ip, net::IpAddr(nc));
  EXPECT_DOUBLE_EQ(verdict.latency_us, 8.0);
  EXPECT_EQ(dpu.registry().counter("dpu.packets_forwarded").value(), 1u);
}

TEST(XgwDpu, MissFallsBackToX86) {
  XgwDpu dpu;
  const dataplane::Verdict verdict =
      dpu.process(packet_for(7, tuple_n(1)), 0.0);
  EXPECT_EQ(verdict.action, dataplane::Action::kFallbackToX86);
  EXPECT_FALSE(verdict.dropped());
  EXPECT_EQ(dpu.registry().counter("dpu.misses").value(), 1u);

  // Same tuple under another tenant's VNI is a distinct flow: placing
  // tenant 7 must not serve tenant 8.
  ASSERT_EQ(dpu.install_flow(7, tuple_n(1), entry_to({172, 16, 0, 1})),
            dataplane::TableOpStatus::kOk);
  EXPECT_EQ(dpu.process(packet_for(8, tuple_n(1)), 0.0).action,
            dataplane::Action::kFallbackToX86);
}

TEST(XgwDpu, TypedStatusesDuplicateCapacityNotFound) {
  XgwDpu::Config config;
  config.flow_table_entries = 2;
  XgwDpu dpu(config);
  EXPECT_EQ(dpu.install_flow(1, tuple_n(1), entry_to({172, 16, 0, 1})),
            dataplane::TableOpStatus::kOk);
  // Duplicate refreshes the entry in place.
  EXPECT_EQ(dpu.install_flow(1, tuple_n(1), entry_to({172, 16, 0, 2})),
            dataplane::TableOpStatus::kDuplicate);
  EXPECT_EQ(dpu.process(packet_for(1, tuple_n(1)), 0.0).packet.outer_dst_ip,
            net::IpAddr(net::Ipv4Addr(172, 16, 0, 2)));

  EXPECT_EQ(dpu.install_flow(1, tuple_n(2), entry_to({172, 16, 0, 1})),
            dataplane::TableOpStatus::kOk);
  EXPECT_EQ(dpu.install_flow(1, tuple_n(3), entry_to({172, 16, 0, 1})),
            dataplane::TableOpStatus::kCapacityExceeded);
  EXPECT_DOUBLE_EQ(dpu.occupancy(), 1.0);
  EXPECT_TRUE(dataplane::succeeded(
      dataplane::TableOpStatus::kDuplicate));
  EXPECT_FALSE(dataplane::succeeded(
      dataplane::TableOpStatus::kCapacityExceeded));

  EXPECT_EQ(dpu.remove_flow(1, tuple_n(2)), dataplane::TableOpStatus::kOk);
  EXPECT_EQ(dpu.remove_flow(1, tuple_n(2)),
            dataplane::TableOpStatus::kNotFound);
  EXPECT_EQ(dpu.flow_count(), 1u);
}

TEST(XgwDpu, ControllerMirrorInvalidatesOnlyThatTenant) {
  XgwDpu dpu;
  ASSERT_EQ(dpu.install_flow(1, tuple_n(1), entry_to({172, 16, 0, 1})),
            dataplane::TableOpStatus::kOk);
  ASSERT_EQ(dpu.install_flow(1, tuple_n(2), entry_to({172, 16, 0, 1})),
            dataplane::TableOpStatus::kOk);
  ASSERT_EQ(dpu.install_flow(2, tuple_n(1), entry_to({172, 16, 0, 2})),
            dataplane::TableOpStatus::kOk);

  // A mirrored mapping mutation for tenant 1 evicts tenant 1's placed
  // flows (their cached verdicts may be stale) and leaves tenant 2 alone.
  tables::VmNcKey key;
  key.vni = 1;
  key.vm_ip = net::IpAddr(net::Ipv4Addr(10, 1, 0, 2));
  EXPECT_EQ(dpu.install_mapping(key, tables::VmNcAction{}),
            dataplane::TableOpStatus::kOk);
  EXPECT_FALSE(dpu.has_flow(1, tuple_n(1)));
  EXPECT_FALSE(dpu.has_flow(1, tuple_n(2)));
  EXPECT_TRUE(dpu.has_flow(2, tuple_n(1)));
  EXPECT_EQ(dpu.registry().counter("dpu.invalidations").value(), 2u);
}

TEST(XgwDpu, FailureClearsSramAndRefusesInstalls) {
  XgwDpu dpu;
  ASSERT_EQ(dpu.install_flow(1, tuple_n(1), entry_to({172, 16, 0, 1})),
            dataplane::TableOpStatus::kOk);
  dpu.set_failed(true);
  EXPECT_TRUE(dpu.failed());
  EXPECT_EQ(dpu.flow_count(), 0u);  // SRAM state is gone
  EXPECT_FALSE(dpu.has_flow(1, tuple_n(1)));
  EXPECT_EQ(dpu.process(packet_for(1, tuple_n(1)), 0.0).action,
            dataplane::Action::kFallbackToX86);
  EXPECT_EQ(dpu.install_flow(1, tuple_n(1), entry_to({172, 16, 0, 1})),
            dataplane::TableOpStatus::kRateLimited);

  // Recovery brings back an *empty* table that accepts placements again.
  dpu.set_failed(false);
  EXPECT_EQ(dpu.flow_count(), 0u);
  EXPECT_EQ(dpu.install_flow(1, tuple_n(1), entry_to({172, 16, 0, 1})),
            dataplane::TableOpStatus::kOk);
  EXPECT_EQ(dpu.process(packet_for(1, tuple_n(1)), 0.0).action,
            dataplane::Action::kForwardToNc);
}

}  // namespace
}  // namespace sf::dpu
