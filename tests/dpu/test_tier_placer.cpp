// sf::dpu::TierPlacer — the promotion/demotion policy in isolation:
// elephants promote in estimate order under the per-interval budget, idle
// flows demote after the configured patience, refused installs leave
// flows unplaced, and the whole pass is a deterministic function of the
// observations regardless of shard feed order.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "dpu/tier_placer.hpp"

namespace sf::dpu {
namespace {

telemetry::FlowKey key_n(net::Vni vni, std::uint16_t n) {
  telemetry::FlowKey key;
  key.vni = vni;
  key.tuple.src = net::IpAddr(net::Ipv4Addr(10, 1, 0, 1));
  key.tuple.dst = net::IpAddr(net::Ipv4Addr(10, 1, 0, 2));
  key.tuple.proto = 17;
  key.tuple.src_port = n;
  key.tuple.dst_port = 4789;
  return key;
}

TierPlacer::Config small_config() {
  TierPlacer::Config config;
  config.tracker.capacity = 16;
  config.promote_min_pps = 1000;
  config.max_promote_per_interval = 64;
  config.demote_after_idle = 2;
  return config;
}

/// Feeds one interval of observations (each key into its owner shard) and
/// applies with always-succeeding callbacks, returning the pass result.
TierPlacer::ApplyResult run_interval(
    TierPlacer& placer,
    const std::vector<std::pair<telemetry::FlowKey, std::uint64_t>>& obs) {
  for (std::size_t shard = 0; shard < placer.shards(); ++shard) {
    placer.begin_interval(shard);
  }
  for (const auto& [key, pps] : obs) {
    placer.observe(placer.shard_of(key.vni), key, pps);
  }
  return placer.apply(
      [](const telemetry::FlowKey&, std::size_t) { return true; },
      [](const telemetry::FlowKey&, std::size_t) {});
}

TEST(TierPlacer, PromotesElephantsNotMice) {
  TierPlacer placer(small_config(), 4, 2);
  const auto result = run_interval(placer, {{key_n(1, 1), 50'000},
                                            {key_n(1, 2), 40'000},
                                            {key_n(2, 3), 300}});
  EXPECT_EQ(result.promoted, 2u);
  EXPECT_EQ(result.demoted, 0u);
  EXPECT_TRUE(placer.placement(key_n(1, 1)).has_value());
  EXPECT_TRUE(placer.placement(key_n(1, 2)).has_value());
  EXPECT_FALSE(placer.placement(key_n(2, 3)).has_value());  // mouse
  EXPECT_EQ(placer.placed_count(), 2u);
}

TEST(TierPlacer, BudgetTakesHeaviestFirst) {
  TierPlacer::Config config = small_config();
  config.max_promote_per_interval = 2;
  TierPlacer placer(config, 4, 2);
  const auto result = run_interval(placer, {{key_n(1, 1), 10'000},
                                            {key_n(1, 2), 90'000},
                                            {key_n(1, 3), 50'000}});
  EXPECT_EQ(result.promoted, 2u);
  EXPECT_TRUE(placer.placement(key_n(1, 2)).has_value());
  EXPECT_TRUE(placer.placement(key_n(1, 3)).has_value());
  EXPECT_FALSE(placer.placement(key_n(1, 1)).has_value());

  // The lightest elephant gets its entry on the next interval.
  const auto next = run_interval(placer, {{key_n(1, 1), 10'000},
                                          {key_n(1, 2), 90'000},
                                          {key_n(1, 3), 50'000}});
  EXPECT_EQ(next.promoted, 1u);
  EXPECT_TRUE(placer.placement(key_n(1, 1)).has_value());
}

TEST(TierPlacer, DemotesAfterIdlePatience) {
  TierPlacer placer(small_config(), 4, 2);
  run_interval(placer, {{key_n(1, 1), 50'000}});
  ASSERT_TRUE(placer.placement(key_n(1, 1)).has_value());

  std::vector<telemetry::FlowKey> removed;
  // Interval with no traffic for the flow: sketch decays, estimate falls
  // below the threshold — one idle strike, still placed.
  for (std::size_t shard = 0; shard < placer.shards(); ++shard) {
    placer.begin_interval(shard);
  }
  auto result = placer.apply(
      [](const telemetry::FlowKey&, std::size_t) { return true; },
      [&](const telemetry::FlowKey& key, std::size_t) {
        removed.push_back(key);
      });
  // The decayed estimate may still sit above the threshold after one
  // interval; demotion must land within the configured patience.
  for (int interval = 0;
       interval < 8 && placer.placement(key_n(1, 1)).has_value();
       ++interval) {
    for (std::size_t shard = 0; shard < placer.shards(); ++shard) {
      placer.begin_interval(shard);
    }
    result = placer.apply(
        [](const telemetry::FlowKey&, std::size_t) { return true; },
        [&](const telemetry::FlowKey& key, std::size_t) {
          removed.push_back(key);
        });
  }
  EXPECT_FALSE(placer.placement(key_n(1, 1)).has_value());
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], key_n(1, 1));
  EXPECT_EQ(placer.placed_count(), 0u);
}

TEST(TierPlacer, RefusedInstallLeavesFlowUnplaced) {
  TierPlacer placer(small_config(), 4, 2);
  const auto refused_all = [&] {
    for (std::size_t shard = 0; shard < placer.shards(); ++shard) {
      placer.begin_interval(shard);
    }
    placer.observe(placer.shard_of(1), key_n(1, 1), 50'000);
    return placer.apply(
        [](const telemetry::FlowKey&, std::size_t) { return false; },
        [](const telemetry::FlowKey&, std::size_t) {});
  }();
  EXPECT_EQ(refused_all.promoted, 0u);
  EXPECT_EQ(refused_all.refused, 1u);
  EXPECT_EQ(placer.placed_count(), 0u);
}

TEST(TierPlacer, EvictNodeAndVniForgetPlacements) {
  TierPlacer placer(small_config(), 4, 2);
  run_interval(placer, {{key_n(1, 1), 50'000},
                        {key_n(2, 2), 60'000},
                        {key_n(3, 3), 70'000}});
  ASSERT_EQ(placer.placed_count(), 3u);
  const std::size_t node = *placer.placement(key_n(1, 1));
  const std::size_t on_node = placer.placed_on(node);
  EXPECT_EQ(placer.evict_node(node), on_node);
  EXPECT_FALSE(placer.placement(key_n(1, 1)).has_value());
  EXPECT_EQ(placer.placed_on(node), 0u);

  const std::size_t rest = placer.placed_count();
  if (placer.placement(key_n(2, 2)).has_value()) {
    EXPECT_EQ(placer.evict_vni(2), 1u);
    EXPECT_EQ(placer.placed_count(), rest - 1);
  }
}

TEST(TierPlacer, ApplyIsIndependentOfObservationOrder) {
  // Same observations fed in opposite orders across shards must yield the
  // same placements and the same node assignments — the byte-identity
  // property the interval engine's thread pool relies on.
  std::vector<std::pair<telemetry::FlowKey, std::uint64_t>> obs;
  for (std::uint16_t n = 0; n < 32; ++n) {
    obs.emplace_back(key_n(1 + n % 7, n), 1'000 + 7'000ull * n);
  }
  TierPlacer forward(small_config(), 8, 3);
  TierPlacer backward(small_config(), 8, 3);
  run_interval(forward, obs);
  std::reverse(obs.begin(), obs.end());
  run_interval(backward, obs);

  ASSERT_EQ(forward.placed_count(), backward.placed_count());
  std::string render_forward;
  std::string render_backward;
  for (const auto& [key, pps] : obs) {
    const auto a = forward.placement(key);
    const auto b = backward.placement(key);
    render_forward += a ? std::to_string(*a) : "-";
    render_backward += b ? std::to_string(*b) : "-";
  }
  EXPECT_EQ(render_forward, render_backward);
}

}  // namespace
}  // namespace sf::dpu
