// SF_DPU gate: with the environment variable set to "off", a region
// configured with the DPU tier must not build it — the process behaves
// byte-identically to a DPU-less build. Lives in its own test binary
// because dpu_enabled() latches on first use, so the gate must be set
// before anything in the process consults it.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/sailfish.hpp"
#include "dpu/xgw_dpu.hpp"

namespace sf::core {
namespace {

// Latch the gate before main() — and before any other code in this binary
// can touch dpu_enabled().
const bool kGateOff = [] {
  setenv("SF_DPU", "off", 1);
  return dpu::dpu_enabled();
}();

TEST(DpuEnvOff, GateReadsOff) { EXPECT_FALSE(kGateOff); }

TEST(DpuEnvOff, RegionBuildsNoDpuTierDespiteConfig) {
  SailfishSystem gated = make_system(overflow_options(4.0, true));
  EXPECT_EQ(gated.region->dpu_node_count(), 0u);
  EXPECT_EQ(gated.region->tier_placer(), nullptr);

  // No DPU counters leak into telemetry.
  for (const auto& [name, value] :
       gated.region->telemetry_snapshot().counters) {
    EXPECT_EQ(name.find("dpu"), std::string::npos) << name;
  }
}

TEST(DpuEnvOff, GatedRegionMatchesDpulessBuildByteForByte) {
  // Same overflow scenario, DPU configured-but-gated vs never configured:
  // every interval number and the telemetry key set must match exactly.
  SailfishSystem gated = make_system(overflow_options(4.0, true));
  SailfishSystem plain = make_system(overflow_options(4.0, false));

  for (int k = 0; k < 4; ++k) {
    const auto a = gated.region->simulate_interval(
        gated.flows, 1e11, static_cast<std::uint64_t>(k));
    const auto b = plain.region->simulate_interval(
        plain.flows, 1e11, static_cast<std::uint64_t>(k));
    EXPECT_EQ(a.offered_pps, b.offered_pps);
    EXPECT_EQ(a.dropped_pps, b.dropped_pps);
    EXPECT_EQ(a.fallback_bps, b.fallback_bps);
    EXPECT_EQ(a.overflow_x86_pps, b.overflow_x86_pps);
    EXPECT_EQ(a.punt_queue_occupancy, b.punt_queue_occupancy);
    EXPECT_EQ(a.p99_latency_us, b.p99_latency_us);
    EXPECT_EQ(a.dpu_pps, 0.0);
    EXPECT_EQ(a.dpu_flow_entries, 0u);
  }

  const auto sa = gated.region->telemetry_snapshot();
  const auto sb = plain.region->telemetry_snapshot();
  EXPECT_EQ(sa.counters, sb.counters);
}

}  // namespace
}  // namespace sf::core
