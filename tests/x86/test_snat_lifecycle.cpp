// SNAT port-block lifecycle under soak-style interval driving (DESIGN.md
// §17): sessions created across many intervals expire on their own
// schedule, freed ports recycle in strict FIFO order while the pool runs
// at exhaustion, and the whole history conserves the pool — every port is
// either free or backing a live session (allocated == recycled + live).

#include "x86/snat.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

namespace sf::x86 {
namespace {

constexpr double kInterval = 600.0;

net::FiveTuple session(std::uint32_t id) {
  net::FiveTuple tuple;
  tuple.src = net::IpAddr(net::Ipv4Addr(0x64400000u | (id & 0xfffffu)));
  tuple.dst = net::IpAddr(net::Ipv4Addr(192, 0, 2, 10));
  tuple.proto = 6;
  tuple.src_port = static_cast<std::uint16_t>(1024 + (id >> 20) % 60000);
  tuple.dst_port = 443;
  return tuple;
}

std::size_t total_free(const SnatEngine& snat,
                       const SnatEngine::Config& config) {
  std::size_t free = 0;
  for (const net::Ipv4Addr& ip : config.public_ips) {
    free += snat.free_ports(ip);
  }
  return free;
}

TEST(SnatLifecycle, MultiIntervalExpiry) {
  SnatEngine::Config config;
  config.public_ips = {net::Ipv4Addr(198, 51, 100, 1)};
  config.port_min = 1024;
  config.port_max = 1123;  // 100 ports
  config.session_timeout_s = 1.5 * kInterval;
  SnatEngine snat(config);

  // Ten sessions per interval for four intervals; each batch must expire
  // exactly one timeout after its own interval, not the latest one.
  std::uint32_t next_id = 0;
  for (int interval = 0; interval < 4; ++interval) {
    const double t = kInterval * interval;
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(snat.translate(session(next_id++), t).has_value());
    }
    // Expiry sweep at the end of each interval, soak-style: batches 0..k-2
    // are older than timeout (1.5 intervals) by the end of interval k.
    const std::size_t reclaimed = snat.expire(t + kInterval);
    if (interval == 0) {
      EXPECT_EQ(reclaimed, 0u);  // only 1.0 interval old
    } else {
      EXPECT_EQ(reclaimed, 10u) << "batch " << interval - 1;
    }
  }
  EXPECT_EQ(snat.stats().active_sessions, 10u);  // only the last batch
  EXPECT_EQ(snat.stats().expired_sessions, 30u);

  // A touched session survives sweeps that reclaim its batch-mates.
  const auto kept = snat.translate(session(30), 4.0 * kInterval);
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(snat.expire(5.0 * kInterval), 9u);
  EXPECT_EQ(snat.stats().active_sessions, 1u);
  EXPECT_TRUE(snat.translate(session(30), 5.0 * kInterval).has_value());
  EXPECT_EQ(snat.stats().active_sessions, 1u);
}

TEST(SnatLifecycle, FifoRecyclingUnderExhaustion) {
  SnatEngine::Config config;
  config.public_ips = {net::Ipv4Addr(198, 51, 100, 2)};
  config.port_min = 2000;
  config.port_max = 2003;  // four ports
  config.session_timeout_s = kInterval;
  SnatEngine snat(config);

  // Fill the pool with staggered creation times so later sweeps can age
  // out exactly one session each (bulk expiry walks a hash map, so only
  // single-expiry sweeps give a determined freed order).
  std::vector<std::uint16_t> port(4);
  for (std::uint32_t id = 0; id < 4; ++id) {
    const auto binding = snat.translate(session(id), 10.0 * id);
    ASSERT_TRUE(binding.has_value());
    port[id] = binding->public_port;
  }
  EXPECT_EQ(total_free(snat, config), 0u);

  // Pool dry: a new session fails typed, existing ones keep translating.
  AllocFailure failure = AllocFailure::kNone;
  EXPECT_FALSE(snat.translate(session(900), 100.0, &failure));
  EXPECT_EQ(failure, AllocFailure::kPortBlockExhausted);
  EXPECT_TRUE(snat.translate(session(0), 100.0).has_value());
  // (The touch above refreshed session 0: it now outlives its batch.)

  // One-at-a-time aging: each replacement session must get the port that
  // was freed longest ago — strict FIFO through the free list.
  EXPECT_EQ(snat.expire(kInterval + 15.0), 1u);  // frees session 1
  EXPECT_EQ(snat.expire(kInterval + 25.0), 1u);  // frees session 2
  // Two ports free, freed in the order [port1, port2]: a LIFO free list
  // would hand out port2 first.
  const auto first = snat.translate(session(1000), kInterval + 30.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->public_port, port[1]);
  const auto second = snat.translate(session(1001), kInterval + 31.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->public_port, port[2]);
  EXPECT_EQ(total_free(snat, config), 0u);

  // Under continued pressure the cycle repeats: session 3 ages out, its
  // port is recycled to the next arrival.
  EXPECT_EQ(snat.expire(kInterval + 45.0), 1u);
  const auto third = snat.translate(session(1002), kInterval + 50.0);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->public_port, port[3]);
}

TEST(SnatLifecycle, LeakAuditAllocatedEqualsRecycledPlusLive) {
  SnatEngine::Config config;
  config.public_ips = {net::Ipv4Addr(198, 51, 100, 3),
                       net::Ipv4Addr(198, 51, 100, 4)};
  config.port_min = 3000;
  config.port_max = 3049;  // 50 ports x 2 IPs
  config.session_timeout_s = 1.5 * kInterval;
  SnatEngine snat(config);
  const std::size_t capacity = snat.capacity();
  ASSERT_EQ(capacity, 100u);

  // A compressed soak: 40 intervals of allocations — 60 attempts against
  // a pool whose ~2-interval session lifetime sustains at most 100 live,
  // so exhaustion refusals are guaranteed — an expiry sweep per interval,
  // reverse-path touches. The conservation invariant the soak auditor
  // checks between intervals must hold at every boundary:
  // free + live == capacity.
  std::uint32_t next_id = 0;
  std::vector<SnatBinding> bindings;
  for (int interval = 0; interval < 40; ++interval) {
    const double t0 = kInterval * interval;
    for (int i = 0; i < 60; ++i) {
      const auto binding = snat.translate(session(next_id++), t0 + i);
      if (binding) bindings.push_back(*binding);
    }
    // Exercise the reverse path on a recent binding (refreshes idle time
    // through the same conservation-relevant bookkeeping).
    if (!bindings.empty()) {
      snat.reverse(bindings.back(), net::IpAddr(net::Ipv4Addr(192, 0, 2, 10)),
                   443, t0 + 10.0);
    }
    snat.expire(t0 + kInterval);
    EXPECT_EQ(total_free(snat, config) + snat.stats().active_sessions,
              capacity)
        << "interval " << interval;
  }
  const SnatEngine::Stats stats = snat.stats();
  EXPECT_GT(stats.expired_sessions, 0u);
  EXPECT_GT(stats.port_block_exhaustions, 0u);
  // Global ledger: every allocation ever made is either still live or was
  // recycled by expiry. (Allocations = attempts - failures.)
  const std::size_t attempts = 40u * 60u;
  EXPECT_EQ(attempts - stats.allocation_failures,
            stats.active_sessions + stats.expired_sessions);
  // Drain everything: the pool must return to pristine.
  snat.expire(1e9);
  EXPECT_EQ(snat.stats().active_sessions, 0u);
  EXPECT_EQ(total_free(snat, config), capacity);
}

}  // namespace
}  // namespace sf::x86
