#include <gtest/gtest.h>

#include "x86/cost_model.hpp"
#include "x86/rss.hpp"
#include "x86/snat.hpp"
#include "x86/xgw_x86.hpp"

namespace sf::x86 {
namespace {

using net::FiveTuple;
using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;
using tables::VmNcAction;
using tables::VmNcKey;
using tables::VxlanRouteAction;

TEST(CostModel, PaperCalibration) {
  const X86CostModel model;
  EXPECT_NEAR(model.core_pps(), 0.78e6, 0.05e6);  // ~1 Mpps/core (§2.2)
  EXPECT_NEAR(model.max_pps(), 25e6, 1e6);        // Fig. 18b: 25 Mpps
  // Line rate (100G) needs packets >= ~512B (Fig. 18 discussion).
  EXPECT_LT(model.throughput_bps(256), model.nic_bps);
  EXPECT_NEAR(model.throughput_bps(512), model.nic_bps, 3e9);
  EXPECT_DOUBLE_EQ(model.throughput_bps(1500), model.nic_bps);
  EXPECT_NEAR(model.latency_us(0.2), 38, 1);      // Fig. 18c: ~40us
  // Full table install: 2M entries at 3k/s > 10 minutes (§2.3).
  EXPECT_GT(model.table_install_seconds(2'000'000), 600.0);
}

TEST(Rss, DeterministicPerFlow) {
  RssIndirection rss(32);
  FiveTuple flow{IpAddr::must_parse("10.0.0.1"),
                 IpAddr::must_parse("10.0.0.2"), 6, 1234, 80};
  EXPECT_EQ(rss.queue_for(flow), rss.queue_for(flow));
  EXPECT_LT(rss.queue_for(flow), 32u);
}

TEST(Rss, SpreadsFlowsAcrossQueues) {
  RssIndirection rss(32);
  std::vector<int> counts(32, 0);
  for (std::uint16_t port = 1; port <= 2000; ++port) {
    FiveTuple flow{IpAddr::must_parse("10.0.0.1"),
                   IpAddr::must_parse("10.0.0.2"), 6, port, 80};
    ++counts[rss.queue_for(flow)];
  }
  int busy_queues = 0;
  for (int count : counts) {
    if (count > 0) ++busy_queues;
  }
  EXPECT_EQ(busy_queues, 32);
}

TEST(Rss, ReseedReshufflesSomeFlows) {
  RssIndirection a(32, 128, 0);
  RssIndirection b(32, 128, 12345);
  int moved = 0;
  for (std::uint16_t port = 1; port <= 200; ++port) {
    FiveTuple flow{IpAddr::must_parse("10.0.0.1"),
                   IpAddr::must_parse("10.0.0.2"), 6, port, 80};
    if (a.queue_for(flow) != b.queue_for(flow)) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(Rss, RejectsZeroQueues) {
  EXPECT_THROW(RssIndirection(0), std::invalid_argument);
}

SnatEngine::Config small_snat() {
  return SnatEngine::Config{{net::Ipv4Addr(203, 0, 113, 1)}, 1000, 1003,
                            60.0};
}

FiveTuple session(std::uint16_t sport) {
  return FiveTuple{IpAddr::must_parse("192.168.1.2"),
                   IpAddr::must_parse("93.184.216.34"), 6, sport, 443};
}

TEST(Snat, TranslateIsStablePerSession) {
  SnatEngine snat(small_snat());
  auto b1 = snat.translate(session(1111), 0);
  auto b2 = snat.translate(session(1111), 1);
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(*b1, *b2);
  EXPECT_EQ(snat.stats().active_sessions, 1u);
}

TEST(Snat, DistinctSessionsGetDistinctBindings) {
  SnatEngine snat(small_snat());
  auto b1 = snat.translate(session(1111), 0);
  auto b2 = snat.translate(session(2222), 0);
  ASSERT_TRUE(b1 && b2);
  EXPECT_NE(*b1, *b2);
}

TEST(Snat, PoolExhaustionFailsGracefully) {
  SnatEngine snat(small_snat());  // capacity 4
  EXPECT_EQ(snat.capacity(), 4u);
  for (std::uint16_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(snat.translate(session(1000 + i), 0).has_value());
  }
  EXPECT_FALSE(snat.translate(session(9999), 0).has_value());
  EXPECT_EQ(snat.stats().allocation_failures, 1u);
}

TEST(Snat, ReversePathRequiresMatchingPeer) {
  SnatEngine snat(small_snat());
  auto binding = snat.translate(session(1111), 0);
  ASSERT_TRUE(binding.has_value());
  auto tuple = snat.reverse(*binding, IpAddr::must_parse("93.184.216.34"),
                            443, 1.0);
  ASSERT_TRUE(tuple.has_value());
  EXPECT_EQ(tuple->src_port, 1111);
  // A different peer (spoofed response) is refused.
  EXPECT_FALSE(snat.reverse(*binding, IpAddr::must_parse("8.8.8.8"), 443,
                            1.0));
  EXPECT_FALSE(snat.reverse(SnatBinding{net::Ipv4Addr(1), 1},
                            IpAddr::must_parse("93.184.216.34"), 443, 1.0));
}

TEST(Snat, ExpiryReclaimsBindings) {
  SnatEngine snat(small_snat());  // 60s timeout
  for (std::uint16_t i = 0; i < 4; ++i) {
    snat.translate(session(1000 + i), 0);
  }
  EXPECT_EQ(snat.expire(30.0), 0u);
  EXPECT_EQ(snat.expire(100.0), 4u);
  EXPECT_EQ(snat.stats().active_sessions, 0u);
  // Reclaimed bindings are reusable.
  EXPECT_TRUE(snat.translate(session(5000), 101.0).has_value());
}

TEST(Snat, RejectsBadConfig) {
  EXPECT_THROW(SnatEngine(SnatEngine::Config{{}, 1, 2, 1}),
               std::invalid_argument);
  EXPECT_THROW(
      SnatEngine(SnatEngine::Config{{net::Ipv4Addr(1)}, 2000, 1000, 1}),
      std::invalid_argument);
}

// XgwX86 pins epoch/RCU state (atomics, a claimed reader slot) and is
// immovable; tests hold it behind a unique_ptr.
std::unique_ptr<XgwX86> make_gateway() {
  auto gw = std::make_unique<XgwX86>(XgwX86::Config{});
  gw->install_route(10, IpPrefix::must_parse("192.168.10.0/24"),
                    VxlanRouteAction{RouteScope::kLocal, 0, {}});
  gw->install_route(10, IpPrefix::must_parse("0.0.0.0/0"),
                    VxlanRouteAction{RouteScope::kInternet, 0, {}});
  gw->install_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")},
                      VmNcAction{net::Ipv4Addr(10, 1, 1, 11)});
  gw->install_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.3")},
                      VmNcAction{net::Ipv4Addr(10, 1, 1, 12)});
  return gw;
}

net::OverlayPacket packet_to(net::Vni vni, const char* dst) {
  net::OverlayPacket pkt;
  pkt.vni = vni;
  pkt.inner.src = IpAddr::must_parse("192.168.10.2");
  pkt.inner.dst = IpAddr::must_parse(dst);
  pkt.inner.proto = 6;
  pkt.inner.src_port = 40000;
  pkt.inner.dst_port = 443;
  pkt.payload_size = 100;
  return pkt;
}

TEST(XgwX86, ForwardsLocalTraffic) {
  auto gw_owner = make_gateway();
  XgwX86& gw = *gw_owner;
  const auto result = gw.forward(packet_to(10, "192.168.10.3"));
  EXPECT_EQ(result.action, dataplane::Action::kForwardToNc);
  EXPECT_EQ(result.packet.outer_dst_ip,
            IpAddr(net::Ipv4Addr(10, 1, 1, 12)));
}

TEST(XgwX86, SnatRewritesSourceAndDecapsulates) {
  auto gw_owner = make_gateway();
  XgwX86& gw = *gw_owner;
  const auto result = gw.forward(packet_to(10, "93.184.216.34"), 1.0);
  EXPECT_EQ(result.action, dataplane::Action::kSnatToInternet);
  ASSERT_TRUE(result.snat.has_value());
  EXPECT_EQ(result.packet.inner.src, IpAddr(result.snat->public_ip));
  EXPECT_EQ(result.packet.inner.src_port, result.snat->public_port);
  EXPECT_EQ(result.packet.vni, 0u);  // decapsulated
}

TEST(XgwX86, ResponsePathReencapsulatesTowardNc) {
  auto gw_owner = make_gateway();
  XgwX86& gw = *gw_owner;
  const auto out = gw.forward(packet_to(10, "93.184.216.34"), 1.0);
  ASSERT_TRUE(out.snat.has_value());
  auto back = gw.process_response(*out.snat,
                                  IpAddr::must_parse("93.184.216.34"), 443,
                                  256, 2.0);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->vni, 10u);
  EXPECT_EQ(back->inner.dst, IpAddr::must_parse("192.168.10.2"));
  EXPECT_EQ(back->outer_dst_ip, IpAddr(net::Ipv4Addr(10, 1, 1, 11)));
}

TEST(XgwX86, DropsUnknownVni) {
  auto gw_owner = make_gateway();
  XgwX86& gw = *gw_owner;
  const auto result = gw.forward(packet_to(99, "192.168.10.3"));
  EXPECT_EQ(result.action, dataplane::Action::kDrop);
  EXPECT_EQ(result.drop_reason, dataplane::DropReason::kNoRoute);
}

TEST(XgwX86, IntervalSimConcentratesHeavyHitterOnOneCore) {
  XgwX86 gw{XgwX86::Config{}};
  std::vector<FlowRate> flows;
  // One elephant plus 500 mice.
  FiveTuple elephant{IpAddr::must_parse("10.0.0.1"),
                     IpAddr::must_parse("10.0.0.2"), 6, 1, 2};
  flows.push_back({elephant, 2e6, 10e9});  // 2 Mpps on one flow
  for (std::uint16_t port = 1; port <= 500; ++port) {
    FiveTuple mouse{IpAddr::must_parse("10.1.0.1"),
                    IpAddr::must_parse("10.1.0.2"), 6, port, 80};
    flows.push_back({mouse, 1e3, 5e6});
  }
  const IntervalReport report = gw.simulate_interval(flows);
  // The elephant's core saturates (2 Mpps > ~0.78 Mpps capacity) while
  // total offered load is far below box capacity: the §2.3 pathology.
  EXPECT_GT(report.max_core_utilization, 2.0);
  EXPECT_GT(report.dropped_pps, 1e6);
  EXPECT_LT(report.offered_pps, gw.config().model.max_pps());
  // The overloaded core's top-1 flow dominates it (Fig. 7).
  double top1 = 0;
  double offered = 0;
  for (const CoreLoad& core : report.cores) {
    if (core.utilization > 1.0) {
      top1 = core.top1_pps;
      offered = core.offered_pps;
    }
  }
  EXPECT_GT(top1 / offered, 0.9);
}

TEST(XgwX86, IntervalSimBalancedMiceDoNotDrop) {
  XgwX86 gw{XgwX86::Config{}};
  std::vector<FlowRate> flows;
  for (std::uint16_t port = 1; port <= 2000; ++port) {
    FiveTuple mouse{IpAddr::must_parse("10.1.0.1"),
                    IpAddr::must_parse("10.1.0.2"), 6, port,
                    static_cast<std::uint16_t>(port ^ 7)};
    flows.push_back({mouse, 5e3, 20e6});  // 10 Mpps total over 2000 flows
  }
  const IntervalReport report = gw.simulate_interval(flows);
  EXPECT_EQ(report.dropped_pps, 0);
  EXPECT_LT(report.max_core_utilization, 1.0);
}

TEST(XgwX86, FullInstallTakesMinutes) {
  auto gw_owner = make_gateway();
  XgwX86& gw = *gw_owner;
  // §2.3: ">10 minutes" for a full production table set. Scale: the
  // model's install rate applied to this gateway's small tables.
  EXPECT_NEAR(gw.full_install_seconds(),
              (gw.route_count() + gw.mapping_count()) / 3000.0, 1e-9);
}

}  // namespace
}  // namespace sf::x86
