// SNAT engine invariants under randomized churn: bindings stay unique
// while live, the pool never leaks or double-frees, reverse() always
// inverts translate(), and expiry returns exactly the idle sessions.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/rng.hpp"
#include "x86/snat.hpp"

namespace sf::x86 {
namespace {

net::FiveTuple session_n(std::uint32_t n) {
  return net::FiveTuple{
      net::IpAddr(net::Ipv4Addr((10u << 24) | n)),
      net::IpAddr(net::Ipv4Addr(93, 184, 216, 34)), 6,
      static_cast<std::uint16_t>(1024 + (n % 60000)), 443};
}

TEST(SnatFuzz, InvariantsUnderChurn) {
  SnatEngine snat({{net::Ipv4Addr(203, 0, 113, 1)}, 1000, 1199, 50.0});
  const std::size_t capacity = snat.capacity();  // 200 bindings
  workload::Rng rng(61);

  std::map<std::uint32_t, SnatBinding> live;  // session n -> binding
  double now = 0;

  for (int op = 0; op < 5'000; ++op) {
    now += 0.5;
    const std::uint32_t n = static_cast<std::uint32_t>(rng.uniform(400));
    const int roll = static_cast<int>(rng.uniform(10));

    if (roll < 6) {
      const auto binding = snat.translate(session_n(n), now);
      if (live.contains(n)) {
        // Existing session: binding must be stable.
        ASSERT_TRUE(binding.has_value());
        EXPECT_EQ(*binding, live[n]);
      } else if (binding) {
        live[n] = *binding;
      } else {
        // Refused only when the pool is genuinely full.
        EXPECT_EQ(live.size(), capacity);
      }
    } else if (roll < 8 && live.contains(n)) {
      // Reverse path keeps the session alive and inverts correctly.
      const auto tuple =
          snat.reverse(live[n], session_n(n).dst, 443, now);
      ASSERT_TRUE(tuple.has_value());
      EXPECT_EQ(*tuple, session_n(n));
    } else if (roll == 8) {
      // Expire aggressively: everything idle > 50s goes away. The
      // reference can't track idle times exactly without mirroring the
      // engine, so just validate the accounting afterwards.
      snat.expire(now);
      live.clear();
      for (std::uint32_t probe = 0; probe < 400; ++probe) {
        // Rebuild the reference from observable behavior: a session that
        // still resolves without allocating kept its binding. (translate
        // on a live session does not allocate.)
        const auto before = snat.stats().active_sessions;
        const auto binding = snat.translate(session_n(probe), now);
        if (binding && snat.stats().active_sessions == before) {
          live[probe] = *binding;
        } else if (binding) {
          live[probe] = *binding;  // new allocation — also live now
        }
      }
    }

    // Bindings of live sessions are pairwise distinct.
    if (op % 500 == 0) {
      std::set<std::pair<std::uint32_t, std::uint16_t>> seen;
      for (const auto& [key, binding] : live) {
        EXPECT_TRUE(seen.insert({binding.public_ip.value(),
                                 binding.public_port})
                        .second);
      }
      EXPECT_EQ(snat.stats().active_sessions, live.size());
      EXPECT_LE(live.size(), capacity);
    }
  }
}

TEST(SnatFuzz, PoolFullyRecoversAfterMassExpiry) {
  SnatEngine snat({{net::Ipv4Addr(203, 0, 113, 1)}, 1000, 1063, 10.0});
  const std::size_t capacity = snat.capacity();  // 64
  for (std::uint32_t n = 0; n < capacity; ++n) {
    ASSERT_TRUE(snat.translate(session_n(n), 0.0).has_value());
  }
  EXPECT_FALSE(snat.translate(session_n(9999), 1.0).has_value());
  EXPECT_EQ(snat.expire(100.0), capacity);
  // Every binding is reusable again.
  for (std::uint32_t n = 1000; n < 1000 + capacity; ++n) {
    ASSERT_TRUE(snat.translate(session_n(n), 101.0).has_value()) << n;
  }
  EXPECT_EQ(snat.stats().active_sessions, capacity);
}

}  // namespace
}  // namespace sf::x86
