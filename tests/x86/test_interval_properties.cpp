// Conservation and monotonicity properties of the interval simulator:
// packets are neither created nor destroyed (offered == processed +
// dropped, per core and in aggregate), capacity is respected exactly, and
// reports are monotone in offered load — over randomized flow sets.

#include <gtest/gtest.h>

#include "workload/rng.hpp"
#include "x86/xgw_x86.hpp"

namespace sf::x86 {
namespace {

class IntervalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<FlowRate> random_flows(workload::Rng& rng, double scale) {
    std::vector<FlowRate> flows;
    const std::size_t count = 100 + rng.uniform(900);
    for (std::size_t i = 0; i < count; ++i) {
      net::FiveTuple tuple{
          net::IpAddr(net::Ipv4Addr(
              static_cast<std::uint32_t>(rng.next_u64()))),
          net::IpAddr(net::Ipv4Addr(
              static_cast<std::uint32_t>(rng.next_u64()))),
          static_cast<std::uint8_t>(rng.chance(0.5) ? 6 : 17),
          static_cast<std::uint16_t>(rng.uniform(65536)),
          static_cast<std::uint16_t>(rng.uniform(65536))};
      const double pps = rng.exponential(scale);
      flows.push_back({tuple, pps, pps * 8 * 700});
    }
    return flows;
  }
};

TEST_P(IntervalPropertyTest, PacketsAreConserved) {
  workload::Rng rng(GetParam());
  XgwX86 gw{XgwX86::Config{}};
  const auto flows = random_flows(rng, 50'000);
  const auto report = gw.simulate_interval(flows);

  double offered_sum = 0;
  for (const auto& flow : flows) offered_sum += flow.pps;
  EXPECT_NEAR(report.offered_pps, offered_sum, offered_sum * 1e-9);

  double cores_offered = 0;
  double cores_processed = 0;
  double cores_dropped = 0;
  const double capacity = gw.config().model.core_pps();
  for (const auto& core : report.cores) {
    EXPECT_NEAR(core.offered_pps, core.processed_pps + core.dropped_pps,
                1e-6);
    EXPECT_LE(core.processed_pps, capacity + 1e-6);
    EXPECT_GE(core.dropped_pps, 0.0);
    EXPECT_GE(core.top1_pps, core.top2_pps);
    EXPECT_LE(core.top1_pps + core.top2_pps, core.offered_pps + 1e-6);
    cores_offered += core.offered_pps;
    cores_processed += core.processed_pps;
    cores_dropped += core.dropped_pps;
  }
  EXPECT_NEAR(cores_offered, report.offered_pps, 1e-6);
  EXPECT_NEAR(cores_dropped, report.dropped_pps, 1e-6);
  EXPECT_NEAR(cores_processed + cores_dropped, report.offered_pps, 1e-6);
}

TEST_P(IntervalPropertyTest, DropsAreMonotoneInLoad) {
  workload::Rng rng(GetParam() + 100);
  XgwX86 gw{XgwX86::Config{}};
  const auto base = random_flows(rng, 30'000);
  double previous_drop = -1;
  for (double scale : {1.0, 2.0, 4.0, 8.0}) {
    std::vector<FlowRate> scaled = base;
    for (auto& flow : scaled) {
      flow.pps *= scale;
      flow.bps *= scale;
    }
    const auto report = gw.simulate_interval(scaled);
    EXPECT_GE(report.dropped_pps, previous_drop);
    previous_drop = report.dropped_pps;
  }
}

TEST_P(IntervalPropertyTest, FlowPlacementIsStable) {
  // The same flow set yields the identical report (RSS is stateless).
  workload::Rng rng(GetParam() + 200);
  XgwX86 gw{XgwX86::Config{}};
  const auto flows = random_flows(rng, 40'000);
  const auto a = gw.simulate_interval(flows);
  const auto b = gw.simulate_interval(flows);
  EXPECT_EQ(a.offered_pps, b.offered_pps);
  EXPECT_EQ(a.dropped_pps, b.dropped_pps);
  EXPECT_EQ(a.max_core_utilization, b.max_core_utilization);
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    EXPECT_EQ(a.cores[c].offered_pps, b.cores[c].offered_pps);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Values(901, 902, 903, 904));

}  // namespace
}  // namespace sf::x86
