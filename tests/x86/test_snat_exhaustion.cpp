// SNAT per-IP port-block exhaustion: a /32 pool's block runs dry, the
// failure is *typed* (AllocFailure::kPortBlockExhausted), sessions never
// spill to another IP's block, and expiry returns ports to the owning
// block in FIFO order.

#include "x86/snat.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sf::x86 {
namespace {

net::FiveTuple session(std::uint32_t host, std::uint16_t port) {
  net::FiveTuple tuple;
  tuple.src = net::IpAddr(net::Ipv4Addr(10, 0, 0, 1));
  tuple.dst = net::IpAddr(net::Ipv4Addr(0x08080800u | (host & 0xff)));
  tuple.proto = 6;
  tuple.src_port = port;
  tuple.dst_port = 443;
  return tuple;
}

TEST(SnatExhaustion, SingleIpBlockExhaustsWithTypedFailure) {
  SnatEngine::Config config;
  config.public_ips = {net::Ipv4Addr(203, 0, 113, 7)};  // a /32 pool
  config.port_min = 1024;
  config.port_max = 1027;  // four ports total
  SnatEngine snat(config);
  ASSERT_EQ(snat.capacity(), 4u);

  for (std::uint16_t i = 0; i < 4; ++i) {
    AllocFailure failure = AllocFailure::kPortBlockExhausted;
    const auto binding = snat.translate(session(1, 1000 + i), 0.0, &failure);
    ASSERT_TRUE(binding.has_value()) << i;
    EXPECT_EQ(failure, AllocFailure::kNone);
  }
  EXPECT_EQ(snat.free_ports(config.public_ips[0]), 0u);

  // The fifth distinct session finds the block dry.
  AllocFailure failure = AllocFailure::kNone;
  const auto binding = snat.translate(session(1, 2000), 0.0, &failure);
  EXPECT_FALSE(binding.has_value());
  EXPECT_EQ(failure, AllocFailure::kPortBlockExhausted);
  EXPECT_EQ(snat.stats().allocation_failures, 1u);
  EXPECT_EQ(snat.stats().port_block_exhaustions, 1u);

  // An EXISTING session still translates while the block is dry.
  AllocFailure existing_failure = AllocFailure::kPortBlockExhausted;
  const auto existing =
      snat.translate(session(1, 1000), 1.0, &existing_failure);
  EXPECT_TRUE(existing.has_value());
  EXPECT_EQ(existing_failure, AllocFailure::kNone);

  // Expiry frees the ports; allocation works again.
  EXPECT_EQ(snat.expire(1000.0), 4u);
  EXPECT_EQ(snat.free_ports(config.public_ips[0]), 4u);
  const auto fresh = snat.translate(session(1, 2000), 1000.0, &failure);
  EXPECT_TRUE(fresh.has_value());
  EXPECT_EQ(failure, AllocFailure::kNone);
}

TEST(SnatExhaustion, NoSpillAcrossIpBlocks) {
  SnatEngine::Config config;
  config.public_ips = {net::Ipv4Addr(203, 0, 113, 1),
                       net::Ipv4Addr(203, 0, 113, 2)};
  config.port_min = 1024;
  config.port_max = 1025;  // two ports per IP
  SnatEngine snat(config);

  // Find sessions pinned to IP 0 until its block is dry.
  const net::Ipv4Addr ip0 = config.public_ips[0];
  std::uint16_t port = 1;
  std::size_t pinned = 0;
  std::size_t exhausted = 0;
  while (exhausted == 0 && port < 2000) {
    const net::FiveTuple tuple = session(2, port++);
    if (snat.ip_for(tuple) != ip0) continue;
    AllocFailure failure = AllocFailure::kNone;
    const auto binding = snat.translate(tuple, 0.0, &failure);
    if (binding.has_value()) {
      ++pinned;
      // Pinned sessions always land on their hash-chosen IP.
      EXPECT_EQ(binding->public_ip, ip0);
    } else {
      EXPECT_EQ(failure, AllocFailure::kPortBlockExhausted);
      ++exhausted;
    }
  }
  EXPECT_EQ(pinned, 2u);
  EXPECT_EQ(exhausted, 1u);
  // The other IP's block was never touched: no cross-IP spill.
  EXPECT_EQ(snat.free_ports(config.public_ips[1]), 2u);
  EXPECT_EQ(snat.free_ports(ip0), 0u);
}

TEST(SnatExhaustion, ReleasedPortsRecycleFifo) {
  SnatEngine::Config config;
  config.public_ips = {net::Ipv4Addr(203, 0, 113, 7)};
  config.port_min = 1024;
  config.port_max = 1026;
  SnatEngine snat(config);

  const auto a = snat.translate(session(3, 1), 0.0);
  const auto b = snat.translate(session(3, 2), 0.0);
  const auto c = snat.translate(session(3, 3), 0.0);
  ASSERT_TRUE(a && b && c);
  // Ascending allocation from the block head.
  EXPECT_EQ(a->public_port, 1024);
  EXPECT_EQ(b->public_port, 1025);
  EXPECT_EQ(c->public_port, 1026);

  // Keep b and c warm; only a ages out. Its port rejoins the (empty)
  // block, so the next allocation recycles exactly 1024.
  snat.translate(session(3, 2), 800.0);
  snat.translate(session(3, 3), 800.0);
  EXPECT_EQ(snat.expire(900.0), 1u);
  EXPECT_EQ(snat.free_ports(config.public_ips[0]), 1u);
  const auto d = snat.translate(session(3, 4), 900.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->public_port, 1024);
}

}  // namespace
}  // namespace sf::x86
