#include "x86/queue_sim.hpp"

#include <gtest/gtest.h>

#include "x86/cost_model.hpp"

namespace sf::x86 {
namespace {

CoreQueueSim::Config fast_config() {
  CoreQueueSim::Config config;
  config.service_pps = 100'000;  // cheap to simulate
  config.ring_slots = 512;
  config.base_latency_us = 30;
  return config;
}

TEST(CoreQueueSim, LightLoadSitsAtBaseLatency) {
  CoreQueueSim sim(fast_config());
  const auto result = sim.run(/*offered_pps=*/10'000, /*duration_s=*/5);
  EXPECT_EQ(result.packets_dropped, 0u);
  // Service time is 10 us; at rho=0.1 queueing adds ~0.5 us on average.
  EXPECT_NEAR(result.mean_latency_us, 30 + 10 + 0.6, 1.0);
}

TEST(CoreQueueSim, MatchesMd1MeanAtHalfLoad) {
  // M/D/1 mean wait: W = rho / (2 (1 - rho)) * service_time.
  CoreQueueSim sim(fast_config());
  const double service_us = 1e6 / fast_config().service_pps;
  const double rho = 0.5;
  const auto result = sim.run(rho * fast_config().service_pps, 30);
  const double expected_wait = rho / (2 * (1 - rho)) * service_us;
  EXPECT_NEAR(result.mean_latency_us - 30 - service_us, expected_wait,
              expected_wait * 0.25);
  EXPECT_EQ(result.packets_dropped, 0u);
}

TEST(CoreQueueSim, LatencyGrowsWithUtilization) {
  CoreQueueSim sim(fast_config());
  double previous = 0;
  for (double rho : {0.3, 0.6, 0.9}) {
    const auto result = sim.run(rho * fast_config().service_pps, 20);
    EXPECT_GT(result.mean_latency_us, previous) << rho;
    previous = result.mean_latency_us;
  }
}

TEST(CoreQueueSim, TailIsHeavierThanMedian) {
  CoreQueueSim sim(fast_config());
  const auto result = sim.run(0.8 * fast_config().service_pps, 20);
  EXPECT_GE(result.p99_latency_us, result.p50_latency_us);
  EXPECT_GE(result.p50_latency_us, 30.0);
}

TEST(CoreQueueSim, OverloadDropsAtTheExpectedRate) {
  CoreQueueSim sim(fast_config());
  // 1.5x the core's capacity: ~1/3 of packets must drop once the ring
  // fills (§2.3's overloaded heavy-hitter core).
  const auto result = sim.run(1.5 * fast_config().service_pps, 30);
  EXPECT_NEAR(result.drop_rate, 1.0 / 3.0, 0.05);
}

TEST(CoreQueueSim, SmallRingDropsOnBursts) {
  CoreQueueSim::Config tiny = fast_config();
  tiny.ring_slots = 4;
  CoreQueueSim sim(tiny);
  // Below capacity on average, but Poisson bursts overflow a 4-slot ring.
  const auto result = sim.run(0.9 * tiny.service_pps, 30);
  EXPECT_GT(result.drop_rate, 0.0);
  EXPECT_LT(result.drop_rate, 0.2);
}

TEST(CoreQueueSim, DeterministicPerSeed) {
  CoreQueueSim sim(fast_config());
  const auto a = sim.run(50'000, 5, 7);
  const auto b = sim.run(50'000, 5, 7);
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us);
  const auto c = sim.run(50'000, 5, 8);
  EXPECT_NE(a.packets_offered, c.packets_offered);
}

TEST(CoreQueueSim, ValidatesConfigAndArguments) {
  CoreQueueSim::Config bad = fast_config();
  bad.service_pps = 0;
  EXPECT_THROW(CoreQueueSim{bad}, std::invalid_argument);
  CoreQueueSim sim(fast_config());
  EXPECT_THROW(sim.run(0, 1), std::invalid_argument);
  EXPECT_THROW(sim.run(1000, 0), std::invalid_argument);
}

TEST(CoreQueueSim, ConsistentWithClosedFormModel) {
  // The cost model's latency_us() approximates this sim's mean at the
  // calibrated operating points.
  const X86CostModel model;
  CoreQueueSim::Config config;
  config.service_pps = model.core_pps();
  config.ring_slots = 1024;
  config.base_latency_us = model.base_latency_us - 2;
  CoreQueueSim sim(config);
  const auto light = sim.run(0.2 * model.core_pps(), 2);
  EXPECT_NEAR(light.mean_latency_us, model.latency_us(0.2), 6.0);
}

}  // namespace
}  // namespace sf::x86
