#include "xgwh/xgwh.hpp"

#include <gtest/gtest.h>

#include "xgwh/gateway_program.hpp"

namespace sf::xgwh {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;
using tables::VmNcKey;
using tables::VmNcAction;
using tables::VxlanRouteAction;

XgwH::Config folded_config() { return XgwH::Config{}; }

XgwH::Config unfolded_config() {
  XgwH::Config config;
  config.compression = asic::CompressionConfig::none();
  return config;
}

// Installs the Fig. 2 example: VPC A (vni 10) with two VMs, VPC B (vni 11)
// peered with A.
void install_fig2(XgwH& gw) {
  gw.install_route(10, IpPrefix::must_parse("192.168.10.0/24"),
                   VxlanRouteAction{RouteScope::kLocal, 0, {}});
  gw.install_route(10, IpPrefix::must_parse("192.168.30.0/24"),
                   VxlanRouteAction{RouteScope::kPeer, 11, {}});
  gw.install_route(11, IpPrefix::must_parse("192.168.30.0/24"),
                   VxlanRouteAction{RouteScope::kLocal, 0, {}});
  gw.install_route(11, IpPrefix::must_parse("192.168.10.0/24"),
                   VxlanRouteAction{RouteScope::kPeer, 10, {}});
  gw.install_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")},
                     VmNcAction{net::Ipv4Addr(10, 1, 1, 11)});
  gw.install_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.3")},
                     VmNcAction{net::Ipv4Addr(10, 1, 1, 12)});
  gw.install_mapping(VmNcKey{11, IpAddr::must_parse("192.168.30.5")},
                     VmNcAction{net::Ipv4Addr(10, 1, 1, 15)});
}

net::OverlayPacket packet_to(net::Vni vni, const char* src,
                             const char* dst) {
  net::OverlayPacket pkt;
  pkt.vni = vni;
  pkt.inner.src = IpAddr::must_parse(src);
  pkt.inner.dst = IpAddr::must_parse(dst);
  pkt.inner.proto = 6;
  pkt.inner.src_port = 40000;
  pkt.inner.dst_port = 80;
  pkt.payload_size = 200;
  return pkt;
}

TEST(XgwH, SameVpcForwarding) {
  // Fig. 2 left: VM-VM, same VPC, different vSwitches.
  XgwH gw(folded_config());
  install_fig2(gw);
  const auto result =
      gw.forward(packet_to(10, "192.168.10.2", "192.168.10.3"));
  EXPECT_EQ(result.action, dataplane::Action::kForwardToNc);
  EXPECT_EQ(result.packet.outer_dst_ip,
            IpAddr(net::Ipv4Addr(10, 1, 1, 12)));
  EXPECT_EQ(result.packet.outer_src_ip,
            IpAddr(gw.config().device_ip));
}

TEST(XgwH, CrossVpcPeerForwarding) {
  // Fig. 2 right: the packet re-resolves through VPC B's table.
  XgwH gw(folded_config());
  install_fig2(gw);
  const auto result =
      gw.forward(packet_to(10, "192.168.10.2", "192.168.30.5"));
  EXPECT_EQ(result.action, dataplane::Action::kForwardToNc);
  EXPECT_EQ(result.packet.outer_dst_ip,
            IpAddr(net::Ipv4Addr(10, 1, 1, 15)));
}

TEST(XgwH, UnfoldedModeForwardsIdentically) {
  XgwH folded(folded_config());
  XgwH unfolded(unfolded_config());
  install_fig2(folded);
  install_fig2(unfolded);
  const auto packet = packet_to(10, "192.168.10.2", "192.168.30.5");
  const auto a = folded.forward(packet);
  const auto b = unfolded.forward(packet);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.packet.outer_dst_ip, b.packet.outer_dst_ip);
}

TEST(XgwH, FoldingDoublesPassesAndLatency) {
  XgwH folded(folded_config());
  XgwH unfolded(unfolded_config());
  install_fig2(folded);
  install_fig2(unfolded);
  const auto packet = packet_to(10, "192.168.10.2", "192.168.10.3");
  const auto a = folded.forward(packet);
  const auto b = unfolded.forward(packet);
  EXPECT_EQ(a.passes, 2u);
  EXPECT_EQ(b.passes, 1u);
  EXPECT_GT(a.latency_us, b.latency_us);
  // The folded latency lands in the paper's ~2.2us band.
  EXPECT_NEAR(a.latency_us, 2.2, 0.15);
}

TEST(XgwH, FoldingHalvesThroughputEnvelope) {
  XgwH folded(folded_config());
  XgwH unfolded(unfolded_config());
  EXPECT_DOUBLE_EQ(folded.max_throughput_bps(),
                   unfolded.max_throughput_bps() / 2);
  EXPECT_NEAR(folded.max_throughput_bps(), 3.2e12, 1e9);   // paper: 3.2T
  EXPECT_NEAR(folded.max_packet_rate_pps(), 1.8e9, 1e6);   // paper: 1.8G
}

TEST(XgwH, TunnelScopesRewriteToRemoteEndpoint) {
  XgwH gw(folded_config());
  gw.install_route(
      20, IpPrefix::must_parse("172.30.0.0/16"),
      VxlanRouteAction{RouteScope::kCrossRegion, 0,
                       net::Ipv4Addr(198, 18, 0, 7)});
  const auto result = gw.forward(packet_to(20, "10.0.0.1", "172.30.1.1"));
  EXPECT_EQ(result.action, dataplane::Action::kForwardTunnel);
  EXPECT_EQ(result.packet.outer_dst_ip,
            IpAddr(net::Ipv4Addr(198, 18, 0, 7)));
}

TEST(XgwH, InternetScopeFallsBackToX86) {
  XgwH gw(folded_config());
  gw.install_route(30, IpPrefix::must_parse("0.0.0.0/0"),
                   VxlanRouteAction{RouteScope::kInternet, 0, {}});
  const auto result = gw.forward(packet_to(30, "10.0.0.1", "93.184.216.34"));
  EXPECT_EQ(result.action, dataplane::Action::kFallbackToX86);
  EXPECT_EQ(result.packet.outer_dst_ip,
            IpAddr(gw.config().x86_next_hop));
}

TEST(XgwH, RouteMissFallsBackInsteadOfDropping) {
  XgwH gw(folded_config());
  const auto result = gw.forward(packet_to(99, "10.0.0.1", "10.0.0.2"));
  EXPECT_EQ(result.action, dataplane::Action::kFallbackToX86);
}

TEST(XgwH, MappingMissFallsBack) {
  XgwH gw(folded_config());
  gw.install_route(10, IpPrefix::must_parse("192.168.10.0/24"),
                   VxlanRouteAction{RouteScope::kLocal, 0, {}});
  const auto result =
      gw.forward(packet_to(10, "192.168.10.2", "192.168.10.3"));
  EXPECT_EQ(result.action, dataplane::Action::kFallbackToX86);
}

TEST(XgwH, PeerLoopIsDropped) {
  XgwH gw(folded_config());
  gw.install_route(1, IpPrefix::must_parse("10.0.0.0/8"),
                   VxlanRouteAction{RouteScope::kPeer, 2, {}});
  gw.install_route(2, IpPrefix::must_parse("10.0.0.0/8"),
                   VxlanRouteAction{RouteScope::kPeer, 1, {}});
  const auto result = gw.forward(packet_to(1, "10.0.0.1", "10.0.0.2"));
  EXPECT_EQ(result.action, dataplane::Action::kDrop);
  EXPECT_EQ(result.drop_reason, dataplane::DropReason::kPeerResolutionLoop);
}

TEST(XgwH, AclDeniesTraffic) {
  XgwH gw(folded_config());
  install_fig2(gw);
  tables::AclRule rule;
  rule.vni = 10;
  rule.dst_port = 80;
  rule.verdict = tables::AclVerdict::kDeny;
  gw.add_acl_rule(rule);
  const auto result =
      gw.forward(packet_to(10, "192.168.10.2", "192.168.10.3"));
  EXPECT_EQ(result.action, dataplane::Action::kDrop);
  EXPECT_EQ(result.drop_reason, dataplane::DropReason::kAclDeny);
}

TEST(XgwH, FallbackRateLimiterDropsExcess) {
  XgwH::Config config = folded_config();
  config.fallback_rate_bps = 8000;     // 1 KB/s
  config.fallback_burst_bytes = 400;   // roughly one packet's worth
  XgwH gw(config);
  gw.install_route(30, IpPrefix::must_parse("0.0.0.0/0"),
                   VxlanRouteAction{RouteScope::kInternet, 0, {}});
  const auto packet = packet_to(30, "10.0.0.1", "93.184.216.34");
  const auto first = gw.forward(packet, /*now=*/0);
  const auto second = gw.forward(packet, /*now=*/0);
  EXPECT_EQ(first.action, dataplane::Action::kFallbackToX86);
  EXPECT_EQ(second.action, dataplane::Action::kDrop);
  EXPECT_EQ(gw.telemetry().fallback_rate_limited, 1u);
}

TEST(XgwH, ShardPipesSplitByVniHash) {
  XgwH gw(folded_config());
  // Find two VNIs landing on opposite shards under the split hash.
  net::Vni vni0 = 0;
  net::Vni vni1 = 0;
  for (net::Vni v = 40;; ++v) {
    if (XgwH::shard_of_vni(v) == 0 && vni0 == 0) vni0 = v;
    if (XgwH::shard_of_vni(v) == 1 && vni1 == 0) vni1 = v;
    if (vni0 != 0 && vni1 != 0) break;
  }
  for (net::Vni v : {vni0, vni1}) {
    gw.install_route(v, IpPrefix::must_parse("10.0.0.0/8"),
                     VxlanRouteAction{RouteScope::kLocal, 0, {}});
    gw.install_mapping(VmNcKey{v, IpAddr::must_parse("10.0.0.2")},
                       VmNcAction{net::Ipv4Addr(10, 1, 1, 1)});
  }
  const auto shard0 = gw.forward(packet_to(vni0, "10.0.0.1", "10.0.0.2"));
  const auto shard1 = gw.forward(packet_to(vni1, "10.0.0.1", "10.0.0.2"));
  EXPECT_EQ(shard0.shard_pipe, 1u);
  EXPECT_EQ(shard1.shard_pipe, 3u);
  EXPECT_GT(gw.shard_pipe_bytes()[1], 0u);
  EXPECT_GT(gw.shard_pipe_bytes()[3], 0u);
}

TEST(XgwH, TableCountsAndConsistencyHelpers) {
  XgwH gw(folded_config());
  install_fig2(gw);
  EXPECT_EQ(gw.route_count(), 4u);
  EXPECT_EQ(gw.mapping_count(), 3u);
  EXPECT_TRUE(gw.has_route(10, IpPrefix::must_parse("192.168.10.0/24")));
  EXPECT_FALSE(gw.has_route(10, IpPrefix::must_parse("192.168.99.0/24")));
  EXPECT_TRUE(
      gw.has_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")}));
  EXPECT_EQ(gw.remove_route(10, IpPrefix::must_parse("192.168.10.0/24")),
            dataplane::TableOpStatus::kOk);
  EXPECT_EQ(gw.route_count(), 3u);
  EXPECT_EQ(gw.remove_mapping(
                VmNcKey{10, IpAddr::must_parse("192.168.10.2")}),
            dataplane::TableOpStatus::kOk);
  EXPECT_EQ(gw.mapping_count(), 2u);
}

TEST(XgwH, OccupancyReportTracksLiveTables) {
  XgwH gw(folded_config());
  const auto empty = gw.occupancy_report();
  install_fig2(gw);
  const auto loaded = gw.occupancy_report();
  EXPECT_GT(loaded.sram_path_worst, empty.sram_path_worst);
  EXPECT_TRUE(loaded.feasible);
  const auto workload = gw.live_workload();
  EXPECT_EQ(workload.vxlan_routes_v4, 4u);
  EXPECT_EQ(workload.vm_maps_v4, 3u);
}

TEST(XgwH, GatewayLayoutDescribesAllSlots) {
  const auto layout = gateway_table_layout();
  EXPECT_GE(layout.size(), 8u);
  const std::string description = describe_gateway_layout();
  EXPECT_NE(description.find("Ingress 0/2"), std::string::npos);
  EXPECT_NE(description.find("Egress 1/3"), std::string::npos);
}

TEST(XgwH, RejectsNonFourPipeChip) {
  XgwH::Config config;
  config.chip.pipelines = 2;
  EXPECT_THROW(XgwH{config}, std::invalid_argument);
}

}  // namespace
}  // namespace sf::xgwh
