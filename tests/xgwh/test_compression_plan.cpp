// Compression-step parsing: letter -> config mapping, the dependency
// rules (b and f both need folding), and the cumulativity of the Fig. 17
// step sequence.

#include "xgwh/compression_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sf::xgwh {
namespace {

TEST(CompressionPlan, LettersMapToConfigFlags) {
  const asic::CompressionConfig all = config_for_steps("abcdef");
  EXPECT_TRUE(all.fold);
  EXPECT_TRUE(all.split);
  EXPECT_TRUE(all.pool);
  EXPECT_TRUE(all.compress);
  EXPECT_TRUE(all.alpm);
  EXPECT_TRUE(all.cross_path_spill);

  const asic::CompressionConfig none = config_for_steps("");
  EXPECT_FALSE(none.fold);
  EXPECT_FALSE(none.split);
  EXPECT_FALSE(none.pool);
  EXPECT_FALSE(none.compress);
  EXPECT_FALSE(none.alpm);
  EXPECT_FALSE(none.cross_path_spill);

  // Order does not matter; 'f' alone toggles only cross-path spill.
  const asic::CompressionConfig fa = config_for_steps("fa");
  EXPECT_TRUE(fa.fold);
  EXPECT_TRUE(fa.cross_path_spill);
  EXPECT_FALSE(fa.split);
}

TEST(CompressionPlan, UnknownLettersThrow) {
  EXPECT_THROW(config_for_steps("g"), std::invalid_argument);
  EXPECT_THROW(config_for_steps("abz"), std::invalid_argument);
  EXPECT_THROW(config_for_steps("A"), std::invalid_argument);
  EXPECT_THROW(config_for_steps(" a"), std::invalid_argument);
}

TEST(CompressionPlan, SplitRequiresFolding) {
  EXPECT_THROW(config_for_steps("b"), std::invalid_argument);
  EXPECT_THROW(config_for_steps("bcde"), std::invalid_argument);
  EXPECT_NO_THROW(config_for_steps("ab"));
}

TEST(CompressionPlan, CrossPathSpillRequiresFolding) {
  EXPECT_THROW(config_for_steps("f"), std::invalid_argument);
  EXPECT_THROW(config_for_steps("fb"), std::invalid_argument);
  EXPECT_NO_THROW(config_for_steps("af"));
}

TEST(CompressionPlan, Fig17StepsAreCumulative) {
  const auto steps = fig17_steps();
  ASSERT_EQ(steps.size(), 5u);
  EXPECT_EQ(steps.front().first, "Initial");

  // Each step keeps everything the previous one enabled.
  const auto enabled = [](const asic::CompressionConfig& c) {
    int n = 0;
    n += c.fold;
    n += c.split;
    n += c.pool;
    n += c.compress;
    n += c.alpm;
    n += c.cross_path_spill;
    return n;
  };
  for (std::size_t i = 1; i < steps.size(); ++i) {
    const auto& prev = steps[i - 1].second;
    const auto& cur = steps[i].second;
    EXPECT_GE(enabled(cur), enabled(prev)) << steps[i].first;
    EXPECT_TRUE(!prev.fold || cur.fold) << steps[i].first;
    EXPECT_TRUE(!prev.split || cur.split) << steps[i].first;
    EXPECT_TRUE(!prev.pool || cur.pool) << steps[i].first;
    EXPECT_TRUE(!prev.compress || cur.compress) << steps[i].first;
    EXPECT_TRUE(!prev.alpm || cur.alpm) << steps[i].first;
  }
  const auto& last = steps.back().second;
  EXPECT_TRUE(last.fold && last.split && last.pool && last.compress &&
              last.alpm);
  // Fig. 17 predates (f); the figure's sequence never enables it.
  for (const auto& [name, config] : steps) {
    EXPECT_FALSE(config.cross_path_spill) << name;
  }
}

TEST(CompressionPlan, StepDescriptionsCoverEveryLetter) {
  for (char step : {'a', 'b', 'c', 'd', 'e', 'f'}) {
    EXPECT_NE(step_description(step), "?") << step;
  }
  EXPECT_EQ(step_description('z'), "?");
}

}  // namespace
}  // namespace sf::xgwh
