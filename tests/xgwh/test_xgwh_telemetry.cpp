#include <gtest/gtest.h>

#include "xgwh/xgwh.hpp"

namespace sf::xgwh {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;

net::OverlayPacket pkt(net::Vni vni, const char* dst) {
  net::OverlayPacket p;
  p.vni = vni;
  p.inner.src = IpAddr::must_parse("10.0.0.1");
  p.inner.dst = IpAddr::must_parse(dst);
  p.inner.proto = 6;
  p.payload_size = 64;
  return p;
}

TEST(XgwHTelemetry, CountersTrackOutcomes) {
  XgwH gw{XgwH::Config{}};
  gw.install_route(2, IpPrefix::must_parse("10.0.0.0/8"),
                   {RouteScope::kLocal, 0, {}});
  gw.install_mapping({2, IpAddr::must_parse("10.0.0.9")},
                     {net::Ipv4Addr(172, 16, 0, 1)});
  gw.install_route(3, IpPrefix::must_parse("0.0.0.0/0"),
                   {RouteScope::kInternet, 0, {}});

  gw.forward(pkt(2, "10.0.0.9"));          // forwarded
  gw.forward(pkt(3, "93.184.216.34"), 1);  // fallback
  gw.forward(pkt(9, "10.0.0.9"), 1);       // route miss -> fallback

  const auto& telemetry = gw.telemetry();
  EXPECT_EQ(telemetry.packets_in, 3u);
  EXPECT_EQ(telemetry.packets_forwarded, 1u);
  EXPECT_EQ(telemetry.packets_fallback, 2u);
  EXPECT_EQ(telemetry.packets_dropped, 0u);
  EXPECT_GT(telemetry.bytes_in, 0u);
}

TEST(XgwHTelemetry, RegistryMirrorsTheTelemetryStruct) {
  XgwH gw{XgwH::Config{}};
  gw.install_route(2, IpPrefix::must_parse("10.0.0.0/8"),
                   {RouteScope::kLocal, 0, {}});
  gw.install_mapping({2, IpAddr::must_parse("10.0.0.9")},
                     {net::Ipv4Addr(172, 16, 0, 1)});

  gw.forward(pkt(2, "10.0.0.9"));     // forwarded (route + vm hit)
  gw.forward(pkt(9, "10.0.0.9"), 1);  // route miss -> fallback

  const auto& reg = gw.registry();
  EXPECT_EQ(reg.counter_value("xgwh.packets_in"), gw.telemetry().packets_in);
  EXPECT_EQ(reg.counter_value("xgwh.packets_forwarded"),
            gw.telemetry().packets_forwarded);
  EXPECT_EQ(reg.counter_value("xgwh.packets_fallback"),
            gw.telemetry().packets_fallback);
  EXPECT_EQ(reg.counter_value("xgwh.bytes_in"), gw.telemetry().bytes_in);

  // Per-table hit/miss counters.
  EXPECT_GT(reg.counter_value("xgwh.table.route.hit"), 0u);
  EXPECT_GT(reg.counter_value("xgwh.table.route.miss"), 0u);
  EXPECT_GT(reg.counter_value("xgwh.table.vm_nc.hit"), 0u);

  // The asic walker feeds the same registry: both packets entered a
  // pipeline, and the latency histogram saw both.
  EXPECT_EQ(reg.counter_value("asic.packets"), 2u);
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.histogram("xgwh.latency_us"), nullptr);
  EXPECT_EQ(snap.histogram("xgwh.latency_us")->count, 2u);

  // Loopback pipe bytes mirror the shard_pipe_bytes() array.
  EXPECT_EQ(reg.counter_value("xgwh.pipe1.loopback_bytes"),
            gw.shard_pipe_bytes()[1]);
  EXPECT_EQ(reg.counter_value("xgwh.pipe3.loopback_bytes"),
            gw.shard_pipe_bytes()[3]);
}

TEST(XgwHTelemetry, AclRangeRowsReachOccupancyModel) {
  XgwH gw{XgwH::Config{}};
  tables::AclRule ranged;
  ranged.dst_port_range = {{1, 65534}};  // 30 TCAM rows
  gw.add_acl_rule(ranged);
  tables::AclRule exact;
  exact.dst_port = 443;
  gw.add_acl_rule(exact);
  // live_workload() must charge the *expanded* row count.
  EXPECT_EQ(gw.live_workload().acl_rules, 31u);
}

TEST(XgwHTelemetry, InstallIsIdempotentOnCounts) {
  XgwH gw{XgwH::Config{}};
  const IpPrefix prefix = IpPrefix::must_parse("10.0.0.0/8");
  EXPECT_EQ(gw.install_route(5, prefix, {RouteScope::kLocal, 0, {}}),
            dataplane::TableOpStatus::kOk);
  EXPECT_EQ(gw.install_route(5, prefix, {RouteScope::kLocal, 0, {}}),
            dataplane::TableOpStatus::kDuplicate);
  EXPECT_EQ(gw.route_count(), 1u);
  EXPECT_EQ(gw.live_workload().vxlan_routes_v4, 1u);

  const tables::VmNcKey key{5, IpAddr::must_parse("10.0.0.2")};
  EXPECT_EQ(gw.install_mapping(key, {net::Ipv4Addr(1)}),
            dataplane::TableOpStatus::kOk);
  // Replacing in place is an idempotent success, reported as kDuplicate.
  EXPECT_TRUE(dataplane::succeeded(gw.install_mapping(key, {net::Ipv4Addr(2)})));
  EXPECT_EQ(gw.mapping_count(), 1u);
  EXPECT_EQ(gw.live_workload().vm_maps_v4, 1u);
}

TEST(XgwHTelemetry, ProcessIsDeterministic) {
  XgwH a{XgwH::Config{}};
  XgwH b{XgwH::Config{}};
  for (XgwH* gw : {&a, &b}) {
    gw->install_route(2, IpPrefix::must_parse("10.0.0.0/8"),
                      {RouteScope::kLocal, 0, {}});
    gw->install_mapping({2, IpAddr::must_parse("10.0.0.9")},
                        {net::Ipv4Addr(172, 16, 0, 1)});
  }
  const auto ra = a.forward(pkt(2, "10.0.0.9"));
  const auto rb = b.forward(pkt(2, "10.0.0.9"));
  EXPECT_EQ(ra.action, rb.action);
  EXPECT_EQ(ra.latency_us, rb.latency_us);
  EXPECT_EQ(ra.egress_pipe, rb.egress_pipe);
}

TEST(XgwHTelemetry, LatencyGrowsWithPayload) {
  XgwH gw{XgwH::Config{}};
  gw.install_route(2, IpPrefix::must_parse("10.0.0.0/8"),
                   {RouteScope::kLocal, 0, {}});
  gw.install_mapping({2, IpAddr::must_parse("10.0.0.9")},
                     {net::Ipv4Addr(172, 16, 0, 1)});
  auto small = pkt(2, "10.0.0.9");
  small.payload_size = 32;
  auto large = pkt(2, "10.0.0.9");
  large.payload_size = 1400;
  EXPECT_LT(gw.forward(small).latency_us, gw.forward(large).latency_us);
}

}  // namespace
}  // namespace sf::xgwh
