// The HW/SW co-design contract, tested as a property: for any random
// topology, the hardware gateway (folded pipelines, ALPM, digest
// compression) and the software gateway (DRAM tables) must produce the
// same forwarding verdict and the same rewritten outer header for every
// east-west destination — parameterized over topology seeds and
// compression configurations.

#include <gtest/gtest.h>

#include "workload/topology.hpp"
#include "x86/xgw_x86.hpp"
#include "xgwh/xgwh.hpp"

namespace sf {
namespace {

struct EquivalenceParam {
  std::uint64_t seed;
  const char* steps;  // compression steps for the hardware gateway
  double ipv6_fraction = 0.3;
};

class HwSwEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

asic::CompressionConfig config_from(const char* steps) {
  asic::CompressionConfig config;
  for (const char* s = steps; *s; ++s) {
    switch (*s) {
      case 'a': config.fold = true; break;
      case 'b': config.split = true; break;
      case 'c': config.pool = true; break;
      case 'd': config.compress = true; break;
      case 'e': config.alpm = true; break;
    }
  }
  return config;
}

TEST_P(HwSwEquivalenceTest, SameVerdictsAndRewrites) {
  const EquivalenceParam param = GetParam();

  workload::TopologyConfig topo;
  topo.vpc_count = 40;
  topo.total_vms = 800;
  topo.nc_count = 120;
  topo.peerings_per_vpc = 0.6;
  topo.ipv6_fraction = param.ipv6_fraction;
  topo.seed = param.seed;
  const workload::RegionTopology region = workload::generate_topology(topo);

  xgwh::XgwH::Config hw_config;
  hw_config.compression = config_from(param.steps);
  xgwh::XgwH hw(hw_config);
  x86::XgwX86 sw{x86::XgwX86::Config{}};

  for (const auto& [key, action] : region.vxlan_routes()) {
    hw.install_route(key.vni, key.prefix, action);
    sw.install_route(key.vni, key.prefix, action);
  }
  for (const auto& [key, action] : region.vm_mappings()) {
    hw.install_mapping(key, action);
    sw.install_mapping(key, action);
  }

  // Probe every 7th VM of every VPC, from every VPC's first VM, plus the
  // peer paths.
  std::size_t probes = 0;
  for (const workload::VpcRecord& vpc : region.vpcs) {
    const std::size_t stride = std::max<std::size_t>(1, vpc.vms.size() / 4);
    for (std::size_t i = 0; i < vpc.vms.size(); i += stride) {
      net::OverlayPacket pkt;
      pkt.vni = vpc.vni;
      pkt.inner.src = vpc.vms.front().ip;
      pkt.inner.dst = vpc.vms[i].ip;
      pkt.inner.proto = 6;
      pkt.payload_size = 128;

      const auto hw_result = hw.forward(pkt);
      const auto sw_result = sw.forward(pkt);
      ASSERT_EQ(hw_result.action, dataplane::Action::kForwardToNc)
          << dataplane::to_string(hw_result.drop_reason);
      ASSERT_EQ(sw_result.action, dataplane::Action::kForwardToNc)
          << dataplane::to_string(sw_result.drop_reason);
      EXPECT_EQ(hw_result.packet.outer_dst_ip,
                sw_result.packet.outer_dst_ip)
          << vpc.vni << " -> " << pkt.inner.dst.to_string();
      ++probes;
    }
  }
  EXPECT_GT(probes, region.vpcs.size());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCompression, HwSwEquivalenceTest,
    ::testing::Values(EquivalenceParam{501, "abcde", 0.3},
                      EquivalenceParam{502, "abcde", 0.3},
                      EquivalenceParam{503, "a", 0.3},
                      EquivalenceParam{504, "", 0.3},
                      EquivalenceParam{505, "ab", 0.3},
                      EquivalenceParam{506, "abcd", 0.3},
                      EquivalenceParam{507, "abcde", 1.0},
                      EquivalenceParam{508, "abcde", 0.0}));

}  // namespace
}  // namespace sf
