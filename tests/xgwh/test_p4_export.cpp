#include "xgwh/p4_export.hpp"

#include <gtest/gtest.h>

#include "xgwh/gateway_program.hpp"

namespace sf::xgwh {
namespace {

TEST(P4Export, EmitsEveryLogicalTable) {
  const std::string program = export_p4_program(P4ExportOptions{});
  for (const LogicalTableInfo& info : gateway_table_layout()) {
    EXPECT_NE(program.find("table " + info.name + " {"),
              std::string::npos)
        << info.name;
  }
}

TEST(P4Export, EmitsHeadersMetadataAndParser) {
  const std::string program = export_p4_program(P4ExportOptions{});
  for (const char* fragment :
       {"header vxlan_t", "bit<24> vni", "header bridged_meta_t",
        "parser SailfishParser", "4789: vxlan"}) {
    EXPECT_NE(program.find(fragment), std::string::npos) << fragment;
  }
}

TEST(P4Export, FoldedModeEmitsLoopbackControls) {
  const std::string program = export_p4_program(P4ExportOptions{});
  EXPECT_NE(program.find("EgressRoute /* pipes 1/3, loopback */"),
            std::string::npos);
  EXPECT_NE(program.find("IngressEntry /* pipes 0/2 */"),
            std::string::npos);
}

TEST(P4Export, UnfoldedModeEmitsSinglePassControls) {
  P4ExportOptions options;
  options.compression = asic::CompressionConfig::none();
  const std::string program = export_p4_program(options);
  EXPECT_NE(program.find("IngressFull /* all pipes */"),
            std::string::npos);
  EXPECT_EQ(program.find("EgressRoute"), std::string::npos);
}

TEST(P4Export, StagePragmasRespectLookupOrder) {
  const std::string program = export_p4_program(P4ExportOptions{});
  // The ALPM directory must be staged before its buckets, which precede
  // the VM-NC table (match dependencies).
  auto stage_for = [&](const std::string& table) {
    const std::size_t at = program.find("table " + table + " {");
    EXPECT_NE(at, std::string::npos) << table;
    const std::size_t pragma = program.rfind("@pragma stage ", at);
    EXPECT_NE(pragma, std::string::npos) << table;
    return std::stoi(program.substr(pragma + 14, 3));
  };
  const int dir = stage_for("vxlan_route_alpm_dir");
  const int buckets = stage_for("vxlan_route_alpm_buckets");
  const int vm_nc = stage_for("vm_nc_pooled");
  EXPECT_LT(dir, buckets);
  EXPECT_LT(buckets, vm_nc);
}

TEST(P4Export, ReportsStagePlanFits) {
  const std::string program = export_p4_program(P4ExportOptions{});
  EXPECT_NE(program.find("stage plan: fits"), std::string::npos);
}

TEST(P4Export, PragmasCanBeDisabled) {
  P4ExportOptions options;
  options.stage_pragmas = false;
  const std::string program = export_p4_program(options);
  EXPECT_EQ(program.find("@pragma stage"), std::string::npos);
}

}  // namespace
}  // namespace sf::xgwh
