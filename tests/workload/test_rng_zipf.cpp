#include <gtest/gtest.h>

#include "workload/rng.hpp"
#include "workload/zipf.hpp"

namespace sf::workload {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    const std::uint64_t v = rng.uniform_range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_real();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 4.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(42);
  Rng fork1 = base.fork(1);
  Rng fork2 = base.fork(2);
  Rng fork1_again = Rng(42).fork(1);
  EXPECT_EQ(fork1.next_u64(), fork1_again.next_u64());
  EXPECT_NE(fork1.next_u64(), fork2.next_u64());
}

TEST(Zipf, PmfDecreasesWithRank) {
  ZipfSampler zipf(100, 1.0);
  for (std::size_t rank = 1; rank < 100; ++rank) {
    EXPECT_GT(zipf.pmf(rank - 1), zipf.pmf(rank));
  }
  EXPECT_EQ(zipf.pmf(100), 0.0);
}

TEST(Zipf, SamplesFavorTheHead) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(3);
  std::size_t head_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample(rng) < 10) ++head_hits;
  }
  // Top 1% of ranks should draw far more than 1% of samples.
  EXPECT_GT(static_cast<double>(head_hits) / n, 0.3);
}

TEST(Zipf, WeightsNormalized) {
  const std::vector<double> weights = zipf_weights(500, 1.1);
  double sum = 0;
  for (double w : weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(weights.front(), weights.back());
}

TEST(Zipf, FitExponentReproducesHeadMass) {
  // Find s such that the top 5% of ranks carry 95% of mass, then verify.
  const std::size_t n = 2000;
  const double s = fit_zipf_exponent(n, 0.05, 0.95);
  const std::vector<double> weights = zipf_weights(n, s);
  double head = 0;
  for (std::size_t i = 0; i < n / 20; ++i) head += weights[i];
  EXPECT_NEAR(head, 0.95, 0.01);
  EXPECT_GT(s, 1.0);  // 80/20-style skews need s > 1
}

TEST(Zipf, FitRejectsBadArguments) {
  EXPECT_THROW(fit_zipf_exponent(1, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(fit_zipf_exponent(100, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(fit_zipf_exponent(100, 0.5, 1.0), std::invalid_argument);
}

TEST(Zipf, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace sf::workload
