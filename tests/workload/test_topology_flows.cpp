#include <gtest/gtest.h>

#include <set>

#include "workload/flowgen.hpp"
#include "workload/topology.hpp"

namespace sf::workload {
namespace {

TopologyConfig small_config() {
  TopologyConfig config;
  config.vpc_count = 50;
  config.total_vms = 1500;
  config.nc_count = 100;
  config.ipv6_fraction = 0.3;
  config.peerings_per_vpc = 0.5;
  config.seed = 5;
  return config;
}

TEST(Topology, GeneratesRequestedShape) {
  const RegionTopology region = generate_topology(small_config());
  EXPECT_EQ(region.vpcs.size(), 50u);
  EXPECT_EQ(region.ncs.size(), 100u);
  EXPECT_GE(region.total_vms(), 50u);  // every VPC gets >= 1 VM
  EXPECT_GT(region.total_routes(), region.vpcs.size());  // subnets + default
}

TEST(Topology, DeterministicFromSeed) {
  const RegionTopology a = generate_topology(small_config());
  const RegionTopology b = generate_topology(small_config());
  ASSERT_EQ(a.total_vms(), b.total_vms());
  ASSERT_EQ(a.total_routes(), b.total_routes());
  EXPECT_EQ(a.vpcs[7].vms[0].ip, b.vpcs[7].vms[0].ip);
}

TEST(Topology, VmCountsFollowZipfHead) {
  const RegionTopology region = generate_topology(small_config());
  // Rank-0 VPC (top customer) holds many more VMs than the median one.
  EXPECT_GT(region.vpcs.front().vms.size(),
            5 * region.vpcs[25].vms.size());
}

TEST(Topology, FamiliesMatchConfiguredMix) {
  const RegionTopology region = generate_topology(small_config());
  EXPECT_EQ(region.vm_count(net::IpFamily::kV6) +
                region.vm_count(net::IpFamily::kV4),
            region.total_vms());
  // The 30% v6 share applies per VPC (VM counts are Zipf-skewed, so the
  // per-VM split can tilt either way when a top customer lands on v6).
  std::size_t v6_vpcs = 0;
  for (const VpcRecord& vpc : region.vpcs) {
    if (vpc.family == net::IpFamily::kV6) ++v6_vpcs;
  }
  EXPECT_GT(v6_vpcs, 5u);
  EXPECT_LT(v6_vpcs, 30u);
}

TEST(Topology, TableKeysAreUnique) {
  const RegionTopology region = generate_topology(small_config());
  std::set<std::pair<net::Vni, std::string>> route_keys;
  for (const auto& [key, action] : region.vxlan_routes()) {
    EXPECT_TRUE(
        route_keys.insert({key.vni, key.prefix.to_string()}).second)
        << key.prefix.to_string();
  }
  std::set<std::pair<net::Vni, std::string>> vm_keys;
  for (const auto& [key, action] : region.vm_mappings()) {
    EXPECT_TRUE(vm_keys.insert({key.vni, key.vm_ip.to_string()}).second)
        << key.vm_ip.to_string();
  }
}

TEST(Topology, EveryVmResolvesThroughItsVpcRoutes) {
  const RegionTopology region = generate_topology(small_config());
  for (const VpcRecord& vpc : region.vpcs) {
    for (std::size_t i = 0; i < vpc.vms.size(); i += 17) {
      const VmRecord& vm = vpc.vms[i];
      bool covered = false;
      for (const RouteRecord& route : vpc.routes) {
        if (route.action.scope == tables::RouteScope::kLocal &&
            route.prefix.contains(vm.ip)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << vm.ip.to_string();
    }
  }
}

TEST(Topology, PeeringsAreSymmetricAndSameFamily) {
  const RegionTopology region = generate_topology(small_config());
  for (const VpcRecord& vpc : region.vpcs) {
    for (net::Vni peer_vni : vpc.peers) {
      const auto peer = std::find_if(
          region.vpcs.begin(), region.vpcs.end(),
          [&](const VpcRecord& v) { return v.vni == peer_vni; });
      ASSERT_NE(peer, region.vpcs.end());
      EXPECT_EQ(peer->family, vpc.family);
      EXPECT_NE(std::find(peer->peers.begin(), peer->peers.end(), vpc.vni),
                peer->peers.end());
    }
  }
}

TEST(Topology, RejectsEmptyConfig) {
  TopologyConfig config = small_config();
  config.vpc_count = 0;
  EXPECT_THROW(generate_topology(config), std::invalid_argument);
}

TEST(FlowGen, WeightsSumToOne) {
  const RegionTopology region = generate_topology(small_config());
  FlowGenConfig config;
  config.flow_count = 2000;
  const std::vector<Flow> flows = generate_flows(region, config);
  ASSERT_EQ(flows.size(), 2000u);
  double sum = 0;
  for (const Flow& flow : flows) sum += flow.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FlowGen, InternetShareMatchesConfig) {
  const RegionTopology region = generate_topology(small_config());
  FlowGenConfig config;
  config.flow_count = 2000;
  config.internet_fraction = 0.1;
  config.internet_weight_share = 0.0002;
  const std::vector<Flow> flows = generate_flows(region, config);
  EXPECT_NEAR(scope_weight(flows, tables::RouteScope::kInternet), 0.0002,
              1e-9);
  // Flow *count* share is much larger than weight share.
  std::size_t internet_count = 0;
  for (const Flow& flow : flows) {
    if (flow.scope == tables::RouteScope::kInternet) ++internet_count;
  }
  EXPECT_GT(internet_count, 100u);
}

TEST(FlowGen, HeavyHittersExist) {
  const RegionTopology region = generate_topology(small_config());
  FlowGenConfig config;
  config.flow_count = 5000;
  const std::vector<Flow> flows = generate_flows(region, config);
  double top = 0;
  for (const Flow& flow : flows) top = std::max(top, flow.weight);
  // Zipf 1.25 over 5000 flows: the top flow carries several percent.
  EXPECT_GT(top, 0.02);
}

TEST(FlowGen, EastWestFlowsResolveToNc) {
  const RegionTopology region = generate_topology(small_config());
  const std::vector<Flow> flows = generate_flows(region, FlowGenConfig{});
  for (const Flow& flow : flows) {
    if (flow.scope != tables::RouteScope::kInternet) {
      EXPECT_NE(flow.dst_nc, net::Ipv4Addr()) << flow.tuple.dst.to_string();
    }
  }
}

TEST(FlowGen, Deterministic) {
  const RegionTopology region = generate_topology(small_config());
  const std::vector<Flow> a = generate_flows(region, FlowGenConfig{});
  const std::vector<Flow> b = generate_flows(region, FlowGenConfig{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 37) {
    EXPECT_EQ(a[i].tuple, b[i].tuple);
    EXPECT_EQ(a[i].weight, b[i].weight);
  }
}

}  // namespace
}  // namespace sf::workload
