#include <gtest/gtest.h>

#include "workload/traffic_pattern.hpp"
#include "workload/update_events.hpp"

namespace sf::workload {
namespace {

TEST(TrafficPattern, PeaksAtConfiguredHour) {
  TrafficPattern pattern;
  pattern.jitter = 0;  // isolate the diurnal term
  pattern.festival_multiplier = 1.0;
  const double peak = rate_at(pattern, hours(pattern.peak_hour));
  const double trough = rate_at(pattern, hours(pattern.peak_hour + 12));
  EXPECT_GT(peak, trough);
  EXPECT_NEAR(peak / pattern.base_bps, 1.0 + pattern.diurnal_amplitude,
              1e-6);
}

TEST(TrafficPattern, FestivalMultipliesRate) {
  TrafficPattern pattern;
  pattern.jitter = 0;
  pattern.diurnal_amplitude = 0;
  // Mid-festival (well past the ramp).
  const double festival = rate_at(pattern, days(5.5));
  const double normal = rate_at(pattern, days(4.5));
  EXPECT_NEAR(festival / normal, pattern.festival_multiplier, 1e-6);
}

TEST(TrafficPattern, FestivalRampsInAndOut) {
  TrafficPattern pattern;
  pattern.jitter = 0;
  pattern.diurnal_amplitude = 0;
  const double start = rate_at(pattern, days(5.0) + 60.0);
  const double mid = rate_at(pattern, days(5.5));
  EXPECT_LT(start, mid);
}

TEST(TrafficPattern, DeterministicJitter) {
  TrafficPattern pattern;
  EXPECT_EQ(rate_at(pattern, 12345.0), rate_at(pattern, 12345.0));
  // Jitter varies between minutes but stays within the configured band.
  const double a = rate_at(pattern, 0.0);
  const double b = rate_at(pattern, 61.0);
  EXPECT_NE(a, b);
}

TEST(TrafficPattern, JitterBandRespected) {
  TrafficPattern pattern;
  pattern.diurnal_amplitude = 0;
  pattern.festival_multiplier = 1.0;
  for (int minute = 0; minute < 500; ++minute) {
    const double rate = rate_at(pattern, minute * 60.0);
    EXPECT_GE(rate, pattern.base_bps * (1.0 - pattern.jitter) * 0.999);
    EXPECT_LE(rate, pattern.base_bps * (1.0 + pattern.jitter) * 1.001);
  }
}

TEST(UpdateEvents, SortedAndWithinSpan) {
  const std::vector<UpdateEvent> events =
      generate_update_events(UpdateEventConfig{});
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].day, events[i].day);
  }
  EXPECT_GE(events.front().day, 0.0);
  EXPECT_LE(events.back().day, 30.0);
}

TEST(UpdateEvents, SuddenEventsAreLargeAndCounted) {
  UpdateEventConfig config;
  config.sudden_events = 3;
  const std::vector<UpdateEvent> events = generate_update_events(config);
  std::size_t sudden = 0;
  for (const UpdateEvent& event : events) {
    if (event.sudden) {
      ++sudden;
      EXPECT_GE(event.delta_entries, config.sudden_delta_min);
      EXPECT_LE(event.delta_entries, config.sudden_delta_max);
    } else {
      EXPECT_LE(std::abs(event.delta_entries), config.regular_delta_max);
    }
  }
  EXPECT_EQ(sudden, 3u);
}

TEST(UpdateEvents, RegularChurnRateRoughlyMatches) {
  UpdateEventConfig config;
  config.regular_events_per_day = 100;
  config.sudden_events = 0;
  const std::vector<UpdateEvent> events = generate_update_events(config);
  EXPECT_NEAR(static_cast<double>(events.size()),
              100.0 * config.span_days, 400.0);
}

TEST(UpdateEvents, CumulativeSeriesIntegratesDeltas) {
  std::vector<UpdateEvent> events = {
      {1.0, +100, false}, {2.0, -30, false}, {10.0, +50000, true}};
  const auto series = cumulative_entries(1000, events, 30.0, 1.0);
  ASSERT_EQ(series.size(), 31u);
  EXPECT_EQ(series[0].second, 1000);
  EXPECT_EQ(series[1].second, 1100);
  EXPECT_EQ(series[2].second, 1070);
  EXPECT_EQ(series[9].second, 1070);
  EXPECT_EQ(series[10].second, 51070);
  EXPECT_EQ(series[30].second, 51070);
}

TEST(UpdateEvents, CumulativeNeverGoesNegative) {
  std::vector<UpdateEvent> events = {{1.0, -100, false}};
  const auto series = cumulative_entries(10, events, 5.0, 1.0);
  for (const auto& [day, entries] : series) EXPECT_GE(entries, 0);
}

}  // namespace
}  // namespace sf::workload
