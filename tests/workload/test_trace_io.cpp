#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include "workload/topology.hpp"

namespace sf::workload {
namespace {

std::vector<Flow> sample_flows() {
  TopologyConfig topo;
  topo.vpc_count = 20;
  topo.total_vms = 400;
  topo.nc_count = 50;
  topo.seed = 9;
  const RegionTopology region = generate_topology(topo);
  FlowGenConfig config;
  config.flow_count = 200;
  return generate_flows(region, config);
}

TEST(TraceIo, RoundTripsGeneratedFlows) {
  const std::vector<Flow> flows = sample_flows();
  const std::string csv = flows_to_csv(flows);
  const TraceParseResult parsed = parse_flows_csv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front().reason;
  ASSERT_EQ(parsed.flows.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(parsed.flows[i].vni, flows[i].vni);
    EXPECT_EQ(parsed.flows[i].tuple, flows[i].tuple);
    EXPECT_EQ(parsed.flows[i].scope, flows[i].scope);
    EXPECT_EQ(parsed.flows[i].dst_nc, flows[i].dst_nc);
    EXPECT_EQ(parsed.flows[i].packet_size, flows[i].packet_size);
    EXPECT_NEAR(parsed.flows[i].weight, flows[i].weight,
                flows[i].weight * 1e-12 + 1e-15);
  }
}

TEST(TraceIo, HandlesIpv6AndCommentsAndBlankLines) {
  const std::string csv =
      "# a comment\n"
      "\n"
      "5001,2001:db8::1,2001:db8::2,6,1000,443,0.25,local,172.16.0.1,512\n";
  const TraceParseResult parsed = parse_flows_csv(csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.flows.size(), 1u);
  EXPECT_TRUE(parsed.flows[0].tuple.src.is_v6());
  EXPECT_EQ(parsed.flows[0].scope, tables::RouteScope::kLocal);
}

TEST(TraceIo, ReportsMalformedLinesWithNumbers) {
  const std::string csv =
      "1,10.0.0.1,10.0.0.2,6,1,2,0.5,local,172.16.0.1,512\n"
      "not-a-flow\n"
      "2,10.0.0.1,10.0.0.2,6,1,2,0.5,warp,172.16.0.1,512\n"
      "99999999,10.0.0.1,10.0.0.2,6,1,2,0.5,local,172.16.0.1,512\n";
  const TraceParseResult parsed = parse_flows_csv(csv);
  EXPECT_EQ(parsed.flows.size(), 1u);
  ASSERT_EQ(parsed.errors.size(), 3u);
  EXPECT_EQ(parsed.errors[0].line, 2u);
  EXPECT_EQ(parsed.errors[1].line, 3u);   // unknown scope
  EXPECT_EQ(parsed.errors[2].line, 4u);   // vni > 24 bits
}

TEST(TraceIo, RejectsNegativeWeightAndBadProto) {
  const std::string csv =
      "1,10.0.0.1,10.0.0.2,6,1,2,-0.5,local,172.16.0.1,512\n"
      "1,10.0.0.1,10.0.0.2,999,1,2,0.5,local,172.16.0.1,512\n";
  const TraceParseResult parsed = parse_flows_csv(csv);
  EXPECT_TRUE(parsed.flows.empty());
  EXPECT_EQ(parsed.errors.size(), 2u);
}

TEST(TraceIo, AllScopesRoundTrip) {
  std::vector<Flow> flows;
  for (auto scope :
       {tables::RouteScope::kLocal, tables::RouteScope::kPeer,
        tables::RouteScope::kIdc, tables::RouteScope::kCrossRegion,
        tables::RouteScope::kInternet}) {
    Flow flow;
    flow.vni = 7;
    flow.tuple.src = net::IpAddr::must_parse("10.0.0.1");
    flow.tuple.dst = net::IpAddr::must_parse("10.0.0.2");
    flow.tuple.proto = 17;
    flow.weight = 0.2;
    flow.scope = scope;
    flow.dst_nc = net::Ipv4Addr(172, 16, 0, 9);
    flows.push_back(flow);
  }
  const TraceParseResult parsed = parse_flows_csv(flows_to_csv(flows));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.flows.size(), 5u);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(parsed.flows[i].scope, flows[i].scope);
  }
}

}  // namespace
}  // namespace sf::workload
