// Flow-population invariants across generator seeds: every generated flow
// must be *servable* by the tables its topology installs — east-west
// destinations resolve through a Local route of the resolved VNI to the
// recorded NC; Internet destinations are outside every Local prefix.

#include <gtest/gtest.h>

#include "tables/route_table.hpp"
#include "workload/flowgen.hpp"
#include "workload/topology.hpp"

namespace sf::workload {
namespace {

class FlowInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowInvariantTest, EveryFlowIsServable) {
  TopologyConfig topo;
  topo.vpc_count = 60;
  topo.total_vms = 1'200;
  topo.nc_count = 150;
  topo.peerings_per_vpc = 0.5;
  topo.ipv6_fraction = 0.3;
  topo.seed = GetParam();
  const RegionTopology region = generate_topology(topo);

  FlowGenConfig flowgen;
  flowgen.flow_count = 1'500;
  flowgen.seed = GetParam() + 1;
  const std::vector<Flow> flows = generate_flows(region, flowgen);

  // Reference tables built exactly as a gateway would.
  tables::SoftwareLpm<tables::VxlanRouteAction> routes;
  for (const auto& [key, action] : region.vxlan_routes()) {
    routes.insert(key.vni, key.prefix, action);
  }
  std::unordered_map<std::string, net::Ipv4Addr> nc_of;
  for (const auto& [key, action] : region.vm_mappings()) {
    nc_of[std::to_string(key.vni) + "/" + key.vm_ip.to_string()] =
        action.nc_ip;
  }

  for (const Flow& flow : flows) {
    net::Vni vni = flow.vni;
    auto route = routes.lookup(vni, flow.tuple.dst);
    ASSERT_TRUE(route.has_value()) << flow.tuple.dst.to_string();
    if (route->scope == tables::RouteScope::kPeer) {
      vni = route->next_hop_vni;
      route = routes.lookup(vni, flow.tuple.dst);
      ASSERT_TRUE(route.has_value());
    }
    if (flow.scope == tables::RouteScope::kInternet) {
      EXPECT_EQ(route->scope, tables::RouteScope::kInternet)
          << flow.tuple.dst.to_string();
      continue;
    }
    ASSERT_EQ(route->scope, tables::RouteScope::kLocal)
        << flow.tuple.dst.to_string();
    auto it =
        nc_of.find(std::to_string(vni) + "/" + flow.tuple.dst.to_string());
    ASSERT_NE(it, nc_of.end()) << flow.tuple.dst.to_string();
    EXPECT_EQ(it->second, flow.dst_nc);
  }
}

TEST_P(FlowInvariantTest, WeightsFormADistribution) {
  TopologyConfig topo;
  topo.vpc_count = 30;
  topo.total_vms = 600;
  topo.nc_count = 80;
  topo.seed = GetParam();
  const RegionTopology region = generate_topology(topo);
  FlowGenConfig flowgen;
  flowgen.flow_count = 2'000;
  flowgen.seed = GetParam() + 7;
  const std::vector<Flow> flows = generate_flows(region, flowgen);

  double sum = 0;
  for (const Flow& flow : flows) {
    EXPECT_GE(flow.weight, 0.0);
    sum += flow.weight;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(scope_weight(flows, tables::RouteScope::kInternet),
              flowgen.internet_weight_share, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowInvariantTest,
                         ::testing::Values(71, 72, 73, 74, 75));

}  // namespace
}  // namespace sf::workload
