#include <gtest/gtest.h>

#include "asic/memory.hpp"
#include "asic/phv.hpp"

namespace sf::asic {
namespace {

TEST(ChipConfig, DerivedGeometryMatchesCalibration) {
  const ChipConfig chip;
  EXPECT_EQ(chip.sram_words_per_pipeline(), 12u * 70 * 2048);
  EXPECT_EQ(chip.tcam_slices_per_pipeline(), 12u * 26 * 2048);
}

TEST(ChipConfig, TcamCostFollowsSliceWidth) {
  const ChipConfig chip;
  EXPECT_EQ(chip.tcam_slices_per_entry(56), 2u);    // VNI + v4
  EXPECT_EQ(chip.tcam_slices_per_entry(152), 4u);   // VNI + v6
  EXPECT_EQ(chip.tcam_slices_per_entry(153), 4u);   // pooled
  EXPECT_EQ(chip.tcam_slices_per_entry(44), 1u);
  EXPECT_EQ(chip.tcam_slices_per_entry(45), 2u);
}

TEST(ChipConfig, SramCostAppliesWideKeyRule) {
  const ChipConfig chip;
  EXPECT_EQ(chip.sram_words_per_entry(56, 32), 1u);    // v4 VM-NC
  EXPECT_EQ(chip.sram_words_per_entry(152, 32), 4u);   // v6 VM-NC: 2x2
  EXPECT_EQ(chip.sram_words_per_entry(57, 32), 1u);    // pooled digest
}

TEST(ChipConfig, LatencyModel) {
  const ChipConfig chip;
  // One pass ~1.08us; folded (2 passes) lands in the paper's 2.17-2.31us
  // band across 128..1024B packets.
  EXPECT_NEAR(chip.latency_us(2, 128), 2.18, 0.05);
  EXPECT_NEAR(chip.latency_us(2, 1024), 2.31, 0.05);
  EXPECT_LT(chip.latency_us(1, 256), chip.latency_us(2, 256));
}

TEST(ChipMemory, AllocatesAcrossStages) {
  const ChipConfig chip;
  ChipMemory memory(chip);
  // Two stages' worth of SRAM must split into two extents.
  const std::size_t request = chip.sram_words_per_stage() + 100;
  auto extents = memory.allocate(0, MemoryKind::kSram, request, "t");
  ASSERT_TRUE(extents.has_value());
  ASSERT_EQ(extents->size(), 2u);
  EXPECT_EQ((*extents)[0].units, chip.sram_words_per_stage());
  EXPECT_EQ((*extents)[1].units, 100u);
  EXPECT_EQ(memory.used_units(0, MemoryKind::kSram), request);
}

TEST(ChipMemory, PipelinesAreIsolated) {
  const ChipConfig chip;
  ChipMemory memory(chip);
  ASSERT_TRUE(memory.allocate(0, MemoryKind::kSram,
                              chip.sram_words_per_pipeline(), "fill"));
  // Pipeline 0 is full; pipeline 1 is untouched.
  EXPECT_FALSE(
      memory.allocate(0, MemoryKind::kSram, 1, "overflow").has_value());
  EXPECT_TRUE(memory.allocate(1, MemoryKind::kSram, 1, "ok").has_value());
}

TEST(ChipMemory, ReleaseReturnsUnits) {
  const ChipConfig chip;
  ChipMemory memory(chip);
  auto extents = memory.allocate(2, MemoryKind::kTcam, 5000, "t");
  ASSERT_TRUE(extents.has_value());
  EXPECT_EQ(memory.used_units(2, MemoryKind::kTcam), 5000u);
  memory.release(*extents);
  EXPECT_EQ(memory.used_units(2, MemoryKind::kTcam), 0u);
  EXPECT_EQ(memory.free_units(2, MemoryKind::kTcam),
            chip.tcam_slices_per_pipeline());
}

TEST(ChipMemory, OccupancyFraction) {
  const ChipConfig chip;
  ChipMemory memory(chip);
  memory.allocate(0, MemoryKind::kSram, chip.sram_words_per_pipeline() / 2,
                  "half");
  EXPECT_NEAR(memory.occupancy(0, MemoryKind::kSram), 0.5, 1e-9);
}

TEST(ChipMemory, ZeroAllocationSucceedsEmpty) {
  ChipMemory memory{ChipConfig{}};
  auto extents = memory.allocate(0, MemoryKind::kSram, 0, "empty");
  ASSERT_TRUE(extents.has_value());
  EXPECT_TRUE(extents->empty());
}

TEST(ChipMemory, BadPipelineThrows) {
  ChipMemory memory{ChipConfig{}};
  EXPECT_THROW(memory.allocate(99, MemoryKind::kSram, 1, "x"),
               std::out_of_range);
}

TEST(Phv, SetGetAndBudget) {
  Phv phv(64);
  phv.set("a", 42, 32);
  EXPECT_EQ(phv.get("a"), 42u);
  EXPECT_EQ(phv.used_bits(), 32u);
  phv.set("b", 7, 32);
  EXPECT_THROW(phv.set("c", 1, 1), std::length_error);
  // Rewriting an existing field does not double-charge.
  phv.set("a", 43, 32);
  EXPECT_EQ(phv.used_bits(), 64u);
  EXPECT_EQ(phv.get("a"), 43u);
}

TEST(Phv, CrossGressDropsUnbridgedFields) {
  Phv phv(256);
  phv.set("keep", 1, 8, /*bridged=*/true);
  phv.set("lose", 2, 8);
  const unsigned bridged = phv.cross_gress();
  EXPECT_EQ(bridged, 8u);
  EXPECT_TRUE(phv.has("keep"));
  EXPECT_FALSE(phv.has("lose"));
}

TEST(Phv, BridgingLastsOneCrossing) {
  Phv phv(256);
  phv.set("field", 1, 16, /*bridged=*/true);
  phv.cross_gress();
  ASSERT_TRUE(phv.has("field"));
  // Without re-bridging, the next crossing drops it.
  phv.cross_gress();
  EXPECT_FALSE(phv.has("field"));
}

TEST(Phv, BridgedBitsAccumulate) {
  Phv phv(256);
  phv.set("a", 1, 24, true);
  phv.cross_gress();
  phv.bridge("a");
  phv.cross_gress();
  EXPECT_EQ(phv.bridged_bits_total(), 48u);
}

TEST(Phv, RejectsBadWidths) {
  Phv phv(256);
  EXPECT_THROW(phv.set("zero", 0, 0), std::invalid_argument);
  EXPECT_THROW(phv.set("wide", 0, 65), std::invalid_argument);
}

}  // namespace
}  // namespace sf::asic
