// Differential placement verification (DESIGN.md §16): seeded random
// workloads evolve through Placer::replace() while every step is checked
// against (1) a from-scratch placement and (2) the naive reference
// interpreter in placement_reference.hpp — an independent coding of the
// §4.4 rules. Packets are replayed through the lookup order
// (xgwh::lookup_table_names) and their unit->pipe verdicts compared.
// Any divergence is fatal: occupancy accounting must match exactly, and
// fresh layouts must agree with the reference segment for segment.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asic/placement.hpp"
#include "asic/placer.hpp"
#include "placement_reference.hpp"
#include "workload/rng.hpp"
#include "xgwh/gateway_program.hpp"

namespace sf::asic {
namespace {

using testref::NaiveLayout;

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

GatewayWorkload random_workload(workload::Rng& rng) {
  GatewayWorkload w = empty_gateway_workload();
  w.vxlan_routes_v4 = 100'000 + rng.uniform(800'000);
  w.vxlan_routes_v6 = 50'000 + rng.uniform(250'000);
  w.vm_maps_v4 = 100'000 + rng.uniform(800'000);
  w.vm_maps_v6 = 50'000 + rng.uniform(250'000);
  w.digest_conflicts = 8;
  w.acl_rules = rng.uniform(100'000);
  w.meters = rng.uniform(200'000);
  w.counters = rng.uniform(500'000);
  w.steering_entries = 64;
  return w;
}

WorkloadDelta random_delta(workload::Rng& rng) {
  WorkloadDelta delta;
  const auto signed_step = [&](std::uint64_t bound) {
    const std::int64_t size = static_cast<std::int64_t>(rng.uniform(bound));
    return rng.uniform(2) == 0 ? size : -size;
  };
  delta.vxlan_routes_v4 = signed_step(30'000);
  delta.vxlan_routes_v6 = signed_step(10'000);
  delta.vm_maps_v4 = signed_step(30'000);
  delta.vm_maps_v6 = signed_step(10'000);
  delta.acl_rules = signed_step(5'000);
  delta.meters = signed_step(8'000);
  delta.counters = signed_step(20'000);
  if (delta.empty()) delta.vxlan_routes_v4 = 1;
  return delta;
}

// The spill order a chain may legally follow (mirror of the documented
// chain_pipes rule, computed from public layout state).
std::vector<unsigned> allowed_pipes(const Placement& layout,
                                    std::size_t path_index, PathSlot slot) {
  const auto& paths = layout.paths();
  const bool back_slot =
      slot == PathSlot::kBackEgress || slot == PathSlot::kBackIngress;
  std::vector<unsigned> order;
  const auto push_path = [&](const std::vector<unsigned>& pipes) {
    order.push_back(pipes[back_slot && pipes.size() > 1 ? 1 : 0]);
    if (pipes.size() > 1) order.push_back(pipes[back_slot ? 0 : 1]);
  };
  push_path(paths[path_index]);
  if (layout.compression().cross_path_spill) {
    for (std::size_t offset = 1; offset < paths.size(); ++offset) {
      push_path(paths[(path_index + offset) % paths.size()]);
    }
  }
  return order;
}

// Fresh engine layout vs the naive reference: exact structural equality —
// pipe accounting, feasibility, and every chain segment for segment.
void expect_matches_reference(const Placement& layout,
                              const NaiveLayout& naive) {
  for (unsigned p = 0; p < layout.chip().pipelines; ++p) {
    ASSERT_EQ(layout.pipe_units(p, MemoryKind::kSram), naive.sram_pipe[p])
        << "SRAM pipe " << p;
    ASSERT_EQ(layout.pipe_units(p, MemoryKind::kTcam), naive.tcam_pipe[p])
        << "TCAM pipe " << p;
  }
  ASSERT_EQ(layout.feasible(), naive.feasible);
  ASSERT_EQ(layout.table_count(), naive.demands.size());
  ASSERT_EQ(layout.paths(), naive.paths);
  for (std::size_t t = 0; t < layout.table_count(); ++t) {
    ASSERT_EQ(layout.demand(t).name, naive.demands[t].name);
    for (MemoryKind kind : {MemoryKind::kSram, MemoryKind::kTcam}) {
      ASSERT_EQ(layout.sharded_units(t, kind), naive.bill(t, kind))
          << naive.demands[t].name;
      for (std::size_t path = 0; path < naive.paths.size(); ++path) {
        const auto& ref = naive.chain(t, path, kind);
        ASSERT_EQ(layout.placed_units(t, path, kind), ref.placed)
            << naive.demands[t].name << " path " << path;
        ASSERT_EQ(layout.unplaced_units(t, path, kind), ref.unplaced)
            << naive.demands[t].name << " path " << path;
        const auto segments = layout.segments(t, path, kind);
        ASSERT_EQ(segments.size(), ref.spans.size())
            << naive.demands[t].name << " path " << path;
        for (std::size_t i = 0; i < segments.size(); ++i) {
          ASSERT_EQ(segments[i].pipe, ref.spans[i].pipe)
              << naive.demands[t].name << " seg " << i;
          ASSERT_EQ(segments[i].units, ref.spans[i].units)
              << naive.demands[t].name << " seg " << i;
        }
      }
    }
  }
}

// Replay packets through the lookup order and compare unit->pipe
// verdicts between the engine layout and the reference.
void replay_packets(const Placement& layout, const NaiveLayout& naive,
                    const CompressionConfig& config, std::uint64_t seed,
                    std::size_t packets) {
  for (std::size_t i = 0; i < packets; ++i) {
    const std::uint64_t h = mix(seed * 1'000'003 + i);
    const net::IpFamily family =
        (h & 3) == 0 ? net::IpFamily::kV6 : net::IpFamily::kV4;
    const std::size_t path = (h >> 2) % layout.paths().size();
    for (const std::string& name :
         xgwh::lookup_table_names(config, family)) {
      const auto table = layout.table_index(name);
      if (!table) continue;  // not part of this workload's program
      for (MemoryKind kind : {MemoryKind::kSram, MemoryKind::kTcam}) {
        const std::size_t bill = layout.sharded_units(*table, kind);
        if (bill == 0) continue;
        const std::size_t unit =
            mix(h ^ (*table * 2 + (kind == MemoryKind::kSram ? 0 : 1))) %
            bill;
        ASSERT_EQ(layout.locate_unit(*table, path, kind, unit),
                  naive.locate(*table, path, kind, unit))
            << name << " unit " << unit << " path " << path;
      }
    }
  }
}

// The evolved (incremental) layout vs a fresh one: exact occupancy
// accounting, and verdicts that stay inside the legal spill order.
// Segment extents may legally differ (bounded fragmentation), so chains
// that diverged structurally are checked for membership, equal chains
// for exact verdicts.
void expect_evolved_parity(const Placement& live, const Placement& fresh) {
  for (unsigned p = 0; p < live.chip().pipelines; ++p) {
    ASSERT_EQ(live.pipe_units(p, MemoryKind::kSram),
              fresh.pipe_units(p, MemoryKind::kSram))
        << "SRAM pipe " << p;
    ASSERT_EQ(live.pipe_units(p, MemoryKind::kTcam),
              fresh.pipe_units(p, MemoryKind::kTcam))
        << "TCAM pipe " << p;
  }
  ASSERT_EQ(live.feasible(), fresh.feasible());
  ASSERT_EQ(live.table_count(), fresh.table_count());
  for (std::size_t t = 0; t < live.table_count(); ++t) {
    ASSERT_EQ(live.demand(t).name, fresh.demand(t).name);
    for (MemoryKind kind : {MemoryKind::kSram, MemoryKind::kTcam}) {
      ASSERT_EQ(live.sharded_units(t, kind), fresh.sharded_units(t, kind));
      for (std::size_t path = 0; path < live.paths().size(); ++path) {
        ASSERT_EQ(live.placed_units(t, path, kind),
                  fresh.placed_units(t, path, kind))
            << live.demand(t).name << " path " << path;
        ASSERT_EQ(live.unplaced_units(t, path, kind),
                  fresh.unplaced_units(t, path, kind))
            << live.demand(t).name << " path " << path;
        const std::vector<unsigned> legal =
            allowed_pipes(live, path, live.demand(t).slot);
        for (const Placement::Segment& segment :
             live.segments(t, path, kind)) {
          bool ok = false;
          for (unsigned pipe : legal) ok = ok || pipe == segment.pipe;
          ASSERT_TRUE(ok) << live.demand(t).name << " spilled to pipe "
                          << segment.pipe << " outside its chain order";
        }
      }
    }
  }
}

struct Scenario {
  unsigned pipelines;
  bool cross_path_spill;
};

void run_differential(std::uint64_t seed, const Scenario& scenario) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " pipes " +
               std::to_string(scenario.pipelines));
  ChipConfig chip;
  chip.pipelines = scenario.pipelines;
  CompressionConfig config = CompressionConfig::all();
  config.cross_path_spill = scenario.cross_path_spill;
  const Placer placer(chip);

  workload::Rng rng(seed);
  GatewayWorkload w = random_workload(rng);
  Placement live = placer.place_layout(w, config);
  {
    const NaiveLayout naive =
        testref::naive_place(chip, compute_demands(chip, w, config), config);
    expect_matches_reference(live, naive);
    replay_packets(live, naive, config, seed, 64);
  }

  for (int step = 0; step < 10; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    WorkloadDelta delta = random_delta(rng);
    if (step == 5) delta.counters = 40'000'000;   // overflow burst
    if (step == 6) delta.counters = -40'000'000;  // and recovery
    live = placer.replace(live, delta);
    w = delta.applied_to(w);

    const Placement fresh = placer.place_layout(w, config);
    const NaiveLayout naive =
        testref::naive_place(chip, compute_demands(chip, w, config), config);
    expect_matches_reference(fresh, naive);
    replay_packets(fresh, naive, config, seed * 31 + step, 64);
    expect_evolved_parity(live, fresh);
  }
  const PlacementStats& stats = live.stats();
  EXPECT_EQ(stats.delta_applies + stats.full_recomputes, 10u);
}

TEST(PlacementDifferential, Seed1FourPipes) {
  run_differential(1, {4, false});
}
TEST(PlacementDifferential, Seed2FourPipes) {
  run_differential(2, {4, false});
}
TEST(PlacementDifferential, Seed3FourPipes) {
  run_differential(3, {4, false});
}
TEST(PlacementDifferential, Seed1EightPipesCrossSpill) {
  run_differential(1, {8, true});
}
TEST(PlacementDifferential, Seed2EightPipesCrossSpill) {
  run_differential(2, {8, true});
}
TEST(PlacementDifferential, Seed3EightPipesCrossSpill) {
  run_differential(3, {8, true});
}

}  // namespace
}  // namespace sf::asic
