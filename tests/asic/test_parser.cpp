#include "asic/parser.hpp"

#include <gtest/gtest.h>

namespace sf::asic {
namespace {

TEST(ParserGraph, SailfishGraphValidates) {
  const ParserGraph graph = sailfish_parser_graph();
  const auto validation = graph.validate();
  EXPECT_TRUE(validation.ok) << validation.error;
  EXPECT_LE(graph.state_count(), graph.budget().max_states);
  EXPECT_LE(graph.transition_count(), graph.budget().max_transitions);
}

TEST(ParserGraph, AllFourOverlayCombinationsParse) {
  const ParserGraph graph = sailfish_parser_graph();
  for (bool outer_v6 : {false, true}) {
    for (bool inner_v6 : {false, true}) {
      const auto walk = graph.walk(sailfish_selects(outer_v6, inner_v6));
      EXPECT_TRUE(walk.accepted) << walk.error;
      // Ethernet + outer IP + UDP + VXLAN + inner Ethernet + inner IP +
      // inner L4.
      const std::size_t expected = 14u + (outer_v6 ? 40 : 20) + 8 + 8 +
                                   14 + (inner_v6 ? 40 : 20) + 20;
      EXPECT_EQ(walk.extracted_bytes, expected);
    }
  }
}

TEST(ParserGraph, NonVxlanTrafficIsRejected) {
  const ParserGraph graph = sailfish_parser_graph();
  // TCP outer (proto 6): no transition at outer_ipv4's select.
  const auto walk = graph.walk({0x0800, 6});
  EXPECT_FALSE(walk.accepted);
  EXPECT_NE(walk.error.find("rejected"), std::string::npos);
  // Wrong UDP port.
  const auto walk2 = graph.walk({0x0800, 17, 53});
  EXPECT_FALSE(walk2.accepted);
}

TEST(ParserGraph, UnknownEtherTypeHitsDefaultReject) {
  const ParserGraph graph = sailfish_parser_graph();
  const auto walk = graph.walk({0x0806});  // ARP
  EXPECT_FALSE(walk.accepted);
  ASSERT_FALSE(walk.path.empty());
  EXPECT_EQ(walk.path.front(), "start");
}

TEST(ParserGraph, StateBudgetIsEnforced) {
  ParserGraph::Budget tiny;
  tiny.max_states = 2;
  ParserGraph graph(tiny);
  EXPECT_TRUE(graph.add_state("start", 10));
  EXPECT_TRUE(graph.add_state("next", 10));
  EXPECT_FALSE(graph.add_state("too_many", 10));
  EXPECT_FALSE(graph.add_state("start", 10));   // duplicate
  EXPECT_FALSE(graph.add_state("accept", 0));   // reserved
}

TEST(ParserGraph, TransitionBudgetIsEnforced) {
  ParserGraph::Budget tiny;
  tiny.max_transitions = 1;
  ParserGraph graph(tiny);
  graph.add_state("start", 1);
  EXPECT_TRUE(graph.add_transition("start", {std::nullopt, "accept"}));
  EXPECT_FALSE(graph.add_transition("start", {1u, "accept"}));
  EXPECT_FALSE(graph.add_transition("ghost", {std::nullopt, "accept"}));
}

TEST(ParserGraph, ValidateCatchesStructuralBugs) {
  {
    ParserGraph graph;
    graph.add_state("start", 1);
    // No way out of start.
    EXPECT_FALSE(graph.validate().ok);
  }
  {
    ParserGraph graph;
    graph.add_state("start", 1);
    graph.add_transition("start", {std::nullopt, "nowhere"});
    const auto v = graph.validate();
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("nowhere"), std::string::npos);
  }
  {
    ParserGraph graph;
    graph.add_state("start", 1);
    graph.add_state("island", 1);
    graph.add_transition("start", {std::nullopt, "accept"});
    graph.add_transition("island", {std::nullopt, "accept"});
    const auto v = graph.validate();
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.error.find("unreachable"), std::string::npos);
  }
  {
    // A cycle re-extracts forever: caught by the cycle/extract check.
    ParserGraph graph;
    graph.add_state("start", 1);
    graph.add_state("loop", 1);
    graph.add_transition("start", {std::nullopt, "loop"});
    graph.add_transition("loop", {std::nullopt, "start"});
    EXPECT_FALSE(graph.validate().ok);
  }
}

TEST(ParserGraph, ExtractBudgetCaughtAtValidation) {
  ParserGraph::Budget tiny;
  tiny.max_extract_bytes = 20;
  ParserGraph graph(tiny);
  graph.add_state("start", 14);
  graph.add_state("deep", 14);
  graph.add_transition("start", {std::nullopt, "deep"});
  graph.add_transition("deep", {std::nullopt, "accept"});
  const auto v = graph.validate();
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("extract"), std::string::npos);
}

}  // namespace
}  // namespace sf::asic
