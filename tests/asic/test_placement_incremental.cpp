// Incremental re-placement (DESIGN.md §16): retained layouts, the
// replace() parity invariant, spill-chain ordering and the fragmentation
// fallback.

#include "asic/placement.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "asic/placer.hpp"

namespace sf::asic {
namespace {

GatewayWorkload small_workload() {
  GatewayWorkload w = empty_gateway_workload();
  w.vxlan_routes_v4 = 150'000;
  w.vxlan_routes_v6 = 50'000;
  w.vm_maps_v4 = 150'000;
  w.vm_maps_v6 = 50'000;
  w.digest_conflicts = 8;
  w.meters = 40'000;
  w.counters = 120'000;
  w.steering_entries = 64;
  return w;
}

void expect_accounting_parity(const Placement& got, const Placement& want) {
  ASSERT_EQ(got.chip().pipelines, want.chip().pipelines);
  for (unsigned p = 0; p < got.chip().pipelines; ++p) {
    EXPECT_EQ(got.pipe_units(p, MemoryKind::kSram),
              want.pipe_units(p, MemoryKind::kSram))
        << "SRAM pipe " << p;
    EXPECT_EQ(got.pipe_units(p, MemoryKind::kTcam),
              want.pipe_units(p, MemoryKind::kTcam))
        << "TCAM pipe " << p;
  }
  EXPECT_EQ(got.feasible(), want.feasible());
  ASSERT_EQ(got.table_count(), want.table_count());
  for (std::size_t t = 0; t < got.table_count(); ++t) {
    EXPECT_EQ(got.demand(t).name, want.demand(t).name);
    for (MemoryKind kind : {MemoryKind::kSram, MemoryKind::kTcam}) {
      EXPECT_EQ(got.sharded_units(t, kind), want.sharded_units(t, kind))
          << got.demand(t).name;
      for (std::size_t path = 0; path < got.paths().size(); ++path) {
        EXPECT_EQ(got.placed_units(t, path, kind),
                  want.placed_units(t, path, kind))
            << got.demand(t).name << " path " << path;
        EXPECT_EQ(got.unplaced_units(t, path, kind),
                  want.unplaced_units(t, path, kind))
            << got.demand(t).name << " path " << path;
      }
    }
  }
  const OccupancyReport a = got.report();
  const OccupancyReport b = want.report();
  for (unsigned p = 0; p < got.chip().pipelines; ++p) {
    EXPECT_DOUBLE_EQ(a.pipes[p].sram, b.pipes[p].sram);
    EXPECT_DOUBLE_EQ(a.pipes[p].tcam, b.pipes[p].tcam);
  }
  EXPECT_DOUBLE_EQ(a.sram_path_worst, b.sram_path_worst);
  EXPECT_DOUBLE_EQ(a.tcam_path_worst, b.tcam_path_worst);
  EXPECT_EQ(a.feasible, b.feasible);
}

TEST(WorkloadDelta, EmptyMagnitudeAndClamp) {
  WorkloadDelta delta;
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.magnitude(), 0u);

  delta.vxlan_routes_v4 = 10;
  delta.meters = -4;
  EXPECT_FALSE(delta.empty());
  EXPECT_EQ(delta.magnitude(), 14u);

  GatewayWorkload w = empty_gateway_workload();
  w.meters = 1;  // shrinking by 4 clamps at zero
  const GatewayWorkload next = delta.applied_to(w);
  EXPECT_EQ(next.vxlan_routes_v4, 10u);
  EXPECT_EQ(next.meters, 0u);

  WorkloadDelta other;
  other.vxlan_routes_v4 = -3;
  delta += other;
  EXPECT_EQ(delta.vxlan_routes_v4, 7);
}

TEST(Placement, RetainedLayoutReportMatchesEvaluate) {
  const Placer placer{ChipConfig{}};
  const GatewayWorkload w = small_workload();
  for (const CompressionConfig& config :
       {CompressionConfig::none(), CompressionConfig::all()}) {
    const OccupancyReport direct = placer.evaluate(w, config);
    const OccupancyReport retained =
        placer.place_layout(w, config).report();
    ASSERT_EQ(direct.pipes.size(), retained.pipes.size());
    for (std::size_t p = 0; p < direct.pipes.size(); ++p) {
      EXPECT_DOUBLE_EQ(direct.pipes[p].sram, retained.pipes[p].sram);
      EXPECT_DOUBLE_EQ(direct.pipes[p].tcam, retained.pipes[p].tcam);
    }
    EXPECT_DOUBLE_EQ(direct.sram_path_worst, retained.sram_path_worst);
    EXPECT_DOUBLE_EQ(direct.tcam_path_worst, retained.tcam_path_worst);
    EXPECT_EQ(direct.feasible, retained.feasible);
    ASSERT_EQ(direct.demands.size(), retained.demands.size());
  }
}

// Spill-ordering invariant: a slotted table overflowing its preferred
// pipe spills to the path's *other* pipe — front slots run first pipe ->
// second, back slots second -> first (the §4.4 lookup order Ingress
// front -> Egress back -> Ingress back -> Egress front).
TEST(Placement, SlotSpillOrdering) {
  const ChipConfig chip;
  const Placer placer(chip);
  CompressionConfig config;
  config.fold = true;

  struct Case {
    PathSlot slot;
    unsigned want_first;   // pipe of the chain's first segment on path 0
    unsigned want_second;  // spill pipe
  };
  const Case cases[] = {
      {PathSlot::kFrontIngress, 0, 1},
      {PathSlot::kBackEgress, 1, 0},
      {PathSlot::kBackIngress, 1, 0},
      {PathSlot::kFrontEgress, 0, 1},
  };
  const std::size_t cap = chip.sram_words_per_pipeline();
  for (const Case& c : cases) {
    std::vector<TableDemand> demands{
        {"big", cap + cap / 2, 0, false, c.slot}};
    const Placement layout =
        placer.place_layout(demands, config, empty_gateway_workload());
    const auto segments = layout.segments(0, 0, MemoryKind::kSram);
    ASSERT_EQ(segments.size(), 2u) << static_cast<int>(c.slot);
    EXPECT_EQ(segments[0].pipe, c.want_first);
    EXPECT_EQ(segments[0].units, cap);
    EXPECT_EQ(segments[1].pipe, c.want_second);
    EXPECT_EQ(segments[1].units, cap / 2);
    EXPECT_EQ(layout.spill_segment_count(), 2u);  // one per path
    EXPECT_TRUE(layout.feasible());
  }
}

TEST(Placement, BalancedSplitsHalfAndHalf) {
  const ChipConfig chip;
  const Placer placer(chip);
  CompressionConfig config;
  config.fold = true;
  std::vector<TableDemand> demands{
      {"bal", 100'001, 0, false, PathSlot::kBalanced}};
  const Placement layout =
      placer.place_layout(demands, config, empty_gateway_workload());
  const auto segments = layout.segments(0, 0, MemoryKind::kSram);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].pipe, 0u);
  EXPECT_EQ(segments[0].units, 50'001u);
  EXPECT_EQ(segments[1].pipe, 1u);
  EXPECT_EQ(segments[1].units, 50'000u);
}

// Cross-path spill (technique f): after both pipes of the home path, the
// chain continues into the *other* paths' pipes, same slot position
// first, then their sibling.
TEST(Placement, CrossPathSpillOrdering) {
  const ChipConfig chip;
  const Placer placer(chip);
  CompressionConfig config;
  config.fold = true;
  config.cross_path_spill = true;

  const std::size_t cap = chip.sram_words_per_pipeline();
  std::vector<TableDemand> demands{
      {"huge", 2 * cap + cap / 2, 0, false, PathSlot::kBackIngress}};
  const Placement layout =
      placer.place_layout(demands, config, empty_gateway_workload());

  // Path 0 = {0,1}, back slot: preferred 1, sibling 0, then path 1's
  // back pipe 3, then its sibling 2.
  const auto path0 = layout.segments(0, 0, MemoryKind::kSram);
  ASSERT_EQ(path0.size(), 3u);
  EXPECT_EQ(path0[0].pipe, 1u);
  EXPECT_EQ(path0[0].units, cap);
  EXPECT_EQ(path0[1].pipe, 0u);
  EXPECT_EQ(path0[1].units, cap);
  EXPECT_EQ(path0[2].pipe, 3u);
  EXPECT_EQ(path0[2].units, cap / 2);

  // Path 1 replicates the bill but only half of pipe 3 plus pipe 2 are
  // left — the rest is unplaced and the layout infeasible.
  const auto path1 = layout.segments(0, 1, MemoryKind::kSram);
  ASSERT_EQ(path1.size(), 2u);
  EXPECT_EQ(path1[0].pipe, 3u);
  EXPECT_EQ(path1[0].units, cap / 2);
  EXPECT_EQ(path1[1].pipe, 2u);
  EXPECT_EQ(path1[1].units, cap);
  EXPECT_EQ(layout.unplaced_units(0, 1, MemoryKind::kSram), cap);
  EXPECT_FALSE(layout.feasible());

  // Without (f) the same demand stops at the home path.
  config.cross_path_spill = false;
  const Placement gated =
      placer.place_layout(demands, config, empty_gateway_workload());
  EXPECT_EQ(gated.segments(0, 0, MemoryKind::kSram).size(), 2u);
  EXPECT_EQ(gated.unplaced_units(0, 0, MemoryKind::kSram), cap / 2);
}

TEST(Placement, ReplaceGrowMatchesFreshPlacement) {
  const Placer placer{ChipConfig{}};
  const CompressionConfig config = CompressionConfig::all();
  const GatewayWorkload base_workload = small_workload();
  const Placement base = placer.place_layout(base_workload, config);

  WorkloadDelta delta;
  delta.vxlan_routes_v4 = 60'000;
  delta.vm_maps_v6 = 20'000;
  const Placement next = placer.replace(base, delta);
  EXPECT_EQ(next.workload().vxlan_routes_v4,
            base_workload.vxlan_routes_v4 + 60'000);

  const Placement fresh =
      placer.place_layout(delta.applied_to(base_workload), config);
  expect_accounting_parity(next, fresh);
  EXPECT_EQ(next.stats().delta_applies + next.stats().full_recomputes, 1u);
}

TEST(Placement, ReplaceShrinkMatchesFreshPlacement) {
  const Placer placer{ChipConfig{}};
  const CompressionConfig config = CompressionConfig::all();
  const Placement base = placer.place_layout(small_workload(), config);

  WorkloadDelta delta;
  delta.vxlan_routes_v4 = -100'000;
  delta.meters = -40'000;  // table drops to zero entries entirely
  const Placement next = placer.replace(base, delta);
  const Placement fresh =
      placer.place_layout(delta.applied_to(small_workload()), config);
  expect_accounting_parity(next, fresh);
  EXPECT_EQ(next.table_index("meters"), std::nullopt);
}

TEST(Placement, ReplaceAddsServiceTable) {
  const Placer placer{ChipConfig{}};
  const CompressionConfig config = CompressionConfig::all();
  const Placement base = placer.place_layout(small_workload(), config);
  EXPECT_EQ(base.table_index("acl"), std::nullopt);

  WorkloadDelta delta;
  delta.acl_rules = 15'000;
  const Placement next = placer.replace(base, delta);
  EXPECT_NE(next.table_index("acl"), std::nullopt);
  const Placement fresh =
      placer.place_layout(delta.applied_to(small_workload()), config);
  expect_accounting_parity(next, fresh);
}

TEST(Placement, ReplaceLeavesUntouchedChainsAlone) {
  const Placer placer{ChipConfig{}};
  const CompressionConfig config = CompressionConfig::all();
  const Placement base = placer.place_layout(small_workload(), config);
  const auto counters = base.table_index("counters");
  ASSERT_TRUE(counters.has_value());
  const auto before = base.segments(*counters, 0, MemoryKind::kSram);

  WorkloadDelta delta;
  delta.meters = 5'000;  // only the meters chain should move
  const Placement next = placer.replace(base, delta);
  ASSERT_EQ(next.stats().delta_applies, 1u);
  const auto counters_after = next.table_index("counters");
  ASSERT_TRUE(counters_after.has_value());
  const auto after = next.segments(*counters_after, 0, MemoryKind::kSram);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].pipe, after[i].pipe);
    EXPECT_EQ(before[i].units, after[i].units);
  }
  EXPECT_EQ(next.stats().touched_tables, 1u);
}

TEST(Placement, FragmentationLimitForcesFullRecompute) {
  const Placer placer{ChipConfig{}};
  CompressionConfig config = CompressionConfig::all();
  config.replace_fragmentation_limit = 0;  // always past the limit
  const Placement base = placer.place_layout(small_workload(), config);

  WorkloadDelta delta;
  delta.vxlan_routes_v4 = 1'000;
  const Placement next = placer.replace(base, delta);
  EXPECT_EQ(next.stats().full_recomputes, 1u);
  EXPECT_EQ(next.stats().delta_applies, 0u);
  EXPECT_EQ(next.stats().fragmentation_events, 0u);  // compaction resets
  const Placement fresh =
      placer.place_layout(delta.applied_to(small_workload()), config);
  expect_accounting_parity(next, fresh);
}

TEST(Placement, ReplaceRecoversFeasibilityAcrossOverflowAndBack) {
  const Placer placer{ChipConfig{}};
  const CompressionConfig config = CompressionConfig::all();
  GatewayWorkload w = small_workload();
  Placement live = placer.place_layout(w, config);
  ASSERT_TRUE(live.feasible());

  WorkloadDelta burst;
  burst.counters = 30'000'000;  // way past any pipe's SRAM
  live = placer.replace(live, burst);
  w = burst.applied_to(w);
  EXPECT_FALSE(live.feasible());
  expect_accounting_parity(live, placer.place_layout(w, config));

  WorkloadDelta relief;
  relief.counters = -30'000'000;
  live = placer.replace(live, relief);
  w = relief.applied_to(w);
  EXPECT_TRUE(live.feasible());
  expect_accounting_parity(live, placer.place_layout(w, config));
}

TEST(PlacementEngine, AppliesDeltasAndIgnoresEmptyOnes) {
  PlacementEngine::Config config;
  config.initial = small_workload();
  PlacementEngine engine(config);
  const std::uint64_t before = engine.stats().delta_applies +
                               engine.stats().full_recomputes;
  engine.apply(WorkloadDelta{});  // no-op
  EXPECT_EQ(engine.stats().delta_applies + engine.stats().full_recomputes,
            before);

  WorkloadDelta delta;
  delta.vm_maps_v4 = 1'000;
  engine.apply(delta);
  EXPECT_EQ(engine.stats().delta_applies + engine.stats().full_recomputes,
            before + 1);
  EXPECT_EQ(engine.placement().workload().vm_maps_v4,
            small_workload().vm_maps_v4 + 1'000);
}

TEST(Placement, LocateUnitWalksTheChainInOrder) {
  const ChipConfig chip;
  const Placer placer(chip);
  CompressionConfig config;
  config.fold = true;
  const std::size_t cap = chip.sram_words_per_pipeline();
  std::vector<TableDemand> demands{
      {"big", cap + 10, 0, false, PathSlot::kFrontIngress}};
  const Placement layout =
      placer.place_layout(demands, config, empty_gateway_workload());
  EXPECT_EQ(layout.locate_unit(0, 0, MemoryKind::kSram, 0), 0u);
  EXPECT_EQ(layout.locate_unit(0, 0, MemoryKind::kSram, cap - 1), 0u);
  EXPECT_EQ(layout.locate_unit(0, 0, MemoryKind::kSram, cap), 1u);
  EXPECT_EQ(layout.locate_unit(0, 0, MemoryKind::kSram, cap + 9), 1u);
  EXPECT_EQ(layout.locate_unit(0, 0, MemoryKind::kSram, cap + 10),
            std::nullopt);
}

}  // namespace
}  // namespace sf::asic
