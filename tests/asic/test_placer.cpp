// Placer tests: the Table 2 / Fig. 17 arithmetic, placement feasibility,
// sharding vs replication, and the cross-pipeline spill behavior.

#include "asic/placer.hpp"

#include <gtest/gtest.h>

#include "xgwh/compression_plan.hpp"

namespace sf::asic {
namespace {

constexpr double kPct = 100.0;

GatewayWorkload paper_workload() {
  return GatewayWorkload{};  // defaults are the 75/25 1M+1M mix
}

TEST(Placer, Table2NaiveOccupancy) {
  Placer placer{ChipConfig{}};
  // IPv4-only scenario.
  GatewayWorkload v4{1'000'000, 0, 1'000'000, 0};
  auto rv4 = placer.evaluate(v4, CompressionConfig::none());
  EXPECT_NEAR(rv4.tcam_path_worst * kPct, 311, 5);  // paper: 311%
  EXPECT_NEAR(rv4.sram_path_worst * kPct, 58, 2);   // paper: 58%
  EXPECT_FALSE(rv4.feasible);

  // IPv6-only scenario.
  GatewayWorkload v6{0, 1'000'000, 0, 1'000'000};
  auto rv6 = placer.evaluate(v6, CompressionConfig::none());
  EXPECT_NEAR(rv6.tcam_path_worst * kPct, 622, 8);  // paper: 622%
  EXPECT_NEAR(rv6.sram_path_worst * kPct, 233, 4);  // paper: 233%

  // Mixed 75/25.
  auto mixed = placer.evaluate(paper_workload(), CompressionConfig::none());
  EXPECT_NEAR(mixed.sram_path_worst * kPct, 102, 2);   // paper: 102%
  EXPECT_NEAR(mixed.tcam_path_worst * kPct, 389, 6);   // paper: 388.75%
}

TEST(Placer, Fig17StepsShrinkMemory) {
  Placer placer{ChipConfig{}};
  const auto steps = xgwh::fig17_steps();
  std::vector<double> sram;
  std::vector<double> tcam;
  for (const auto& [name, config] : steps) {
    const auto report = placer.evaluate(paper_workload(), config);
    sram.push_back(report.sram_path_worst * kPct);
    tcam.push_back(report.tcam_path_worst * kPct);
  }
  // Paper: SRAM 102 -> 51 -> 26 -> 18 -> 36.
  EXPECT_NEAR(sram[0], 102, 3);
  EXPECT_NEAR(sram[1], 51, 2);
  EXPECT_NEAR(sram[2], 26, 2);
  EXPECT_NEAR(sram[3], 15, 4);   // model: 14.5 (paper 18)
  EXPECT_NEAR(sram[4], 36, 6);   // paper 36
  // Paper: TCAM 389 -> 194 -> 97 -> 156 -> 11.
  EXPECT_NEAR(tcam[0], 389, 6);
  EXPECT_NEAR(tcam[1], 195, 4);
  EXPECT_NEAR(tcam[2], 98, 3);
  EXPECT_NEAR(tcam[3], 156, 3);
  EXPECT_LT(tcam[4], 15);        // paper 11; model ~7 analytic
  // Only the fully compressed config is actually placeable... and a+b.
  EXPECT_TRUE(placer.evaluate(paper_workload(), steps.back().second)
                  .feasible);
  EXPECT_FALSE(
      placer.evaluate(paper_workload(), steps.front().second).feasible);
}

TEST(Placer, FoldingHalvesPathOccupancy) {
  Placer placer{ChipConfig{}};
  GatewayWorkload small{10'000, 0, 10'000, 0};
  auto unfolded = placer.evaluate(small, xgwh::config_for_steps(""));
  auto folded = placer.evaluate(small, xgwh::config_for_steps("a"));
  EXPECT_NEAR(folded.sram_path_worst, unfolded.sram_path_worst / 2, 1e-6);
  EXPECT_NEAR(folded.tcam_path_worst, unfolded.tcam_path_worst / 2, 1e-6);
}

TEST(Placer, SplitRequiresFold) {
  Placer placer{ChipConfig{}};
  CompressionConfig bad;
  bad.split = true;
  EXPECT_THROW(placer.evaluate(paper_workload(), bad),
               std::invalid_argument);
}

TEST(Placer, NonShardableTablesReplicateUnderSplit) {
  Placer placer{ChipConfig{}};
  std::vector<TableDemand> demands = {
      {"sharded", 100'000, 0, true, PathSlot::kBackIngress},
      {"replicated", 100'000, 0, false, PathSlot::kBackIngress},
  };
  auto report = placer.place(demands, xgwh::config_for_steps("ab"));
  // Two paths: sharded contributes 50k per path, replicated 100k per path.
  const double expected_per_path =
      (50'000.0 + 100'000.0) /
      (2.0 * static_cast<double>(ChipConfig{}.sram_words_per_pipeline()));
  EXPECT_NEAR(report.sram_path_worst, expected_per_path, 1e-9);
}

TEST(Placer, SlotAssignmentSeparatesPipes) {
  Placer placer{ChipConfig{}};
  std::vector<TableDemand> demands = {
      {"front", 0, 1000, true, PathSlot::kFrontIngress},
      {"back", 2000, 0, true, PathSlot::kBackIngress},
  };
  auto report = placer.place(demands, xgwh::config_for_steps("a"));
  // TCAM demand lands on pipes 0/2 (front), SRAM on pipes 1/3 (back).
  EXPECT_GT(report.pipes[0].tcam, 0.0);
  EXPECT_EQ(report.pipes[1].tcam, 0.0);
  EXPECT_EQ(report.pipes[0].sram, 0.0);
  EXPECT_GT(report.pipes[1].sram, 0.0);
  EXPECT_EQ(report.pipes[0].tcam, report.pipes[2].tcam);
  EXPECT_EQ(report.pipes[1].sram, report.pipes[3].sram);
}

TEST(Placer, OverflowSpillsToOtherPipeOfPath) {
  // A single table bigger than one pipeline must straddle both pipes of
  // the folded path — "mapping large tables across pipelines".
  Placer placer{ChipConfig{}};
  const std::size_t words = ChipConfig{}.sram_words_per_pipeline() + 1000;
  std::vector<TableDemand> demands = {
      {"huge", words, 0, true, PathSlot::kBackIngress}};
  auto report = placer.place(demands, xgwh::config_for_steps("a"));
  EXPECT_TRUE(report.feasible);
  EXPECT_GT(report.pipes[0].sram, 0.0);  // spill landed on the front pipe
  EXPECT_NEAR(report.pipes[1].sram, 1.0, 1e-9);
}

TEST(Placer, UnfoldedReplicatesAcrossAllPipes) {
  Placer placer{ChipConfig{}};
  std::vector<TableDemand> demands = {
      {"t", 1000, 0, true, PathSlot::kBackIngress}};
  auto report = placer.place(demands, CompressionConfig::none());
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_GT(report.pipes[p].sram, 0.0) << p;
  }
}

TEST(Placer, MeasuredAlpmOverridesEstimate) {
  Placer placer{ChipConfig{}};
  CompressionConfig config = xgwh::config_for_steps("abcde");
  config.measured_alpm = AlpmDemand{40'000, 800'000};
  auto report = placer.evaluate(paper_workload(), config);
  // Directory slices: 40k sharded over 2 paths, spread over 2 pipes,
  // against the per-pipe capacity.
  const double expected_tcam =
      40'000.0 / 2.0 /
      (2.0 * static_cast<double>(ChipConfig{}.tcam_slices_per_pipeline()));
  EXPECT_NEAR(report.tcam_path_worst, expected_tcam, 1e-9);
}

TEST(Placer, ServiceTablesAppearInDemands) {
  GatewayWorkload workload = paper_workload();
  workload.acl_rules = 1000;
  workload.meters = 2000;
  workload.counters = 3000;
  workload.steering_entries = 10;
  const auto demands = compute_demands(ChipConfig{}, workload,
                                       xgwh::config_for_steps("abcde"));
  std::size_t found = 0;
  for (const auto& demand : demands) {
    if (demand.name == "acl" || demand.name == "meters" ||
        demand.name == "counters" || demand.name == "fallback_steering") {
      ++found;
    }
  }
  EXPECT_EQ(found, 4u);
}

TEST(CompressionPlan, StepParsing) {
  EXPECT_TRUE(xgwh::config_for_steps("abcde").alpm);
  EXPECT_FALSE(xgwh::config_for_steps("abcd").alpm);
  EXPECT_THROW(xgwh::config_for_steps("z"), std::invalid_argument);
  EXPECT_THROW(xgwh::config_for_steps("b"), std::invalid_argument);
  EXPECT_EQ(xgwh::fig17_steps().size(), 5u);
  EXPECT_FALSE(xgwh::step_description('a').empty());
}

}  // namespace
}  // namespace sf::asic
