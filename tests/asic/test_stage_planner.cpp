#include "asic/stage_planner.hpp"

#include <gtest/gtest.h>

namespace sf::asic {
namespace {

ChipConfig small_chip() {
  ChipConfig chip;
  chip.stages_per_pipeline = 4;
  chip.sram_blocks_per_stage = 1;
  chip.sram_block_words = 100;  // 100 words per stage
  chip.tcam_blocks_per_stage = 1;
  chip.tcam_block_rows = 10;  // 10 slices per stage
  return chip;
}

TEST(StagePlanner, IndependentTablesShareAStage) {
  StagePlanner planner(small_chip());
  const auto plan = planner.plan({
      {"a", MemoryKind::kSram, 40, {}},
      {"b", MemoryKind::kSram, 40, {}},
  });
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.tables[0].first_stage, 0u);
  EXPECT_EQ(plan.tables[1].first_stage, 0u);
  EXPECT_EQ(plan.stages[0].sram_words, 80u);
  EXPECT_EQ(plan.stages_used, 1u);
}

TEST(StagePlanner, MatchDependencyForcesLaterStage) {
  StagePlanner planner(small_chip());
  const auto plan = planner.plan({
      {"route", MemoryKind::kTcam, 5, {}},
      {"vm_nc", MemoryKind::kSram, 10, {"route"}},
      {"rewrite", MemoryKind::kSram, 1, {"vm_nc"}},
  });
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.tables[0].last_stage, 0u);
  EXPECT_EQ(plan.tables[1].first_stage, 1u);
  EXPECT_EQ(plan.tables[2].first_stage, 2u);
  EXPECT_EQ(plan.stages_used, 3u);
}

TEST(StagePlanner, WideTableSplitsAcrossStages) {
  // 250 words > 100/stage: spans three stages, like the compiler-split
  // tables §3.3 describes.
  StagePlanner planner(small_chip());
  const auto plan = planner.plan({
      {"big", MemoryKind::kSram, 250, {}},
      {"after", MemoryKind::kSram, 10, {"big"}},
  });
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.tables[0].chunks.size(), 3u);
  EXPECT_EQ(plan.tables[0].last_stage, 2u);
  // The dependent table starts after the *last* chunk.
  EXPECT_EQ(plan.tables[1].first_stage, 3u);
}

TEST(StagePlanner, DependencyChainDeeperThanStagesIsInfeasible) {
  StagePlanner planner(small_chip());  // 4 stages
  std::vector<StageTable> chain;
  for (int i = 0; i < 5; ++i) {
    StageTable table{"t" + std::to_string(i), MemoryKind::kSram, 1, {}};
    if (i > 0) table.depends_on = {"t" + std::to_string(i - 1)};
    chain.push_back(table);
  }
  const auto plan = planner.plan(chain);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.infeasible_reason.find("stage budget"),
            std::string::npos);
}

TEST(StagePlanner, OutOfMemoryIsInfeasibleWithReason) {
  StagePlanner planner(small_chip());  // 400 words total
  const auto plan =
      planner.plan({{"huge", MemoryKind::kSram, 500, {}}});
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.infeasible_reason.find("out of stage memory"),
            std::string::npos);
}

TEST(StagePlanner, UnknownDependencyIsAnError) {
  StagePlanner planner(small_chip());
  const auto plan =
      planner.plan({{"t", MemoryKind::kSram, 1, {"ghost"}}});
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.infeasible_reason.find("ghost"), std::string::npos);
}

TEST(StagePlanner, SramAndTcamBudgetsAreIndependent) {
  StagePlanner planner(small_chip());
  const auto plan = planner.plan({
      {"acl", MemoryKind::kTcam, 10, {}},     // fills stage 0 TCAM
      {"exact", MemoryKind::kSram, 100, {}},  // fills stage 0 SRAM
      {"more_tcam", MemoryKind::kTcam, 5, {}},
  });
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.tables[0].first_stage, 0u);
  EXPECT_EQ(plan.tables[1].first_stage, 0u);
  // Stage 0's TCAM is full; the next ternary table spills to stage 1.
  EXPECT_EQ(plan.tables[2].first_stage, 1u);
}

TEST(StagePlanner, ZeroWidthTableStillOrdersDependents) {
  StagePlanner planner(small_chip());
  const auto plan = planner.plan({
      {"gateway", MemoryKind::kSram, 0, {}},
      {"action", MemoryKind::kSram, 1, {"gateway"}},
  });
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.tables[1].first_stage, 1u);
}

TEST(StagePlanner, GatewayProgramFitsRealChip) {
  // The Sailfish loopback-pipe program at per-path scale: ALPM directory,
  // buckets, pooled VM-NC, meters — must fit 12 stages with room.
  StagePlanner planner{ChipConfig{}};
  const auto plan = planner.plan({
      {"alpm_dir", MemoryKind::kTcam, 60'000, {}},
      {"alpm_buckets", MemoryKind::kSram, 460'000, {"alpm_dir"}},
      {"vm_nc", MemoryKind::kSram, 250'000, {"alpm_buckets"}},
      {"meters", MemoryKind::kSram, 110'000, {}},
  });
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  EXPECT_LE(plan.stages_used, ChipConfig{}.stages_per_pipeline);
}

}  // namespace
}  // namespace sf::asic
