// Naive reference interpreter for the placer (DESIGN.md §16).
//
// An independent, deliberately simple re-implementation of the §4.4
// placement rules: per-pipe free-unit counters only (no stages, no
// ChipMemory), tables walked path-major in demand order, each chain built
// by the documented spill sequence — preferred pipe, path sibling, back on
// the preferred pipe (balanced overflow), then cross-path pipes when (f)
// is enabled, remainder unplaced and charged to the preferred pipe. The
// differential tests replay workloads and packets through this and
// through the real placer and FATAL on any divergence, so the hot path
// can be refactored without fear.

#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "asic/chip_config.hpp"
#include "asic/memory.hpp"
#include "asic/placer.hpp"

namespace sf::asic::testref {

struct Span {
  unsigned pipe = 0;
  std::size_t units = 0;
};

struct NaiveChain {
  std::vector<Span> spans;  // allocation (= lookup fallback) order
  std::size_t placed = 0;
  std::size_t unplaced = 0;
};

struct NaiveLayout {
  std::vector<std::vector<unsigned>> paths;
  std::vector<TableDemand> demands;       // unsharded bills
  std::vector<std::size_t> sram_bill;     // per-path bill after sharding
  std::vector<std::size_t> tcam_bill;
  std::vector<std::vector<NaiveChain>> sram;  // [table][path]
  std::vector<std::vector<NaiveChain>> tcam;
  std::vector<std::size_t> sram_pipe;  // demand incl. unplaced overflow
  std::vector<std::size_t> tcam_pipe;
  bool feasible = true;

  const NaiveChain& chain(std::size_t table, std::size_t path,
                          MemoryKind kind) const {
    return kind == MemoryKind::kSram ? sram[table][path] : tcam[table][path];
  }
  std::size_t bill(std::size_t table, MemoryKind kind) const {
    return kind == MemoryKind::kSram ? sram_bill[table] : tcam_bill[table];
  }
  std::optional<unsigned> locate(std::size_t table, std::size_t path,
                                 MemoryKind kind, std::size_t unit) const {
    const NaiveChain& c = chain(table, path, kind);
    if (unit >= c.placed) return std::nullopt;
    for (const Span& span : c.spans) {
      if (unit < span.units) return span.pipe;
      unit -= span.units;
    }
    return std::nullopt;
  }
};

inline NaiveLayout naive_place(const ChipConfig& chip,
                               const std::vector<TableDemand>& demands,
                               const CompressionConfig& config) {
  NaiveLayout out;
  if (config.fold) {
    for (unsigned p = 0; p + 1 < chip.pipelines; p += 2) {
      out.paths.push_back({p, p + 1});
    }
  } else {
    for (unsigned p = 0; p < chip.pipelines; ++p) out.paths.push_back({p});
  }
  const std::size_t npaths = out.paths.size();

  out.demands = demands;
  out.sram_bill.reserve(demands.size());
  out.tcam_bill.reserve(demands.size());
  for (const TableDemand& d : demands) {
    std::size_t sram = d.sram_words;
    std::size_t tcam = d.tcam_slices;
    if (config.split && d.shardable && npaths > 1) {
      sram = (sram + npaths - 1) / npaths;
      tcam = (tcam + npaths - 1) / npaths;
    }
    out.sram_bill.push_back(sram);
    out.tcam_bill.push_back(tcam);
  }
  out.sram.assign(demands.size(), std::vector<NaiveChain>(npaths));
  out.tcam.assign(demands.size(), std::vector<NaiveChain>(npaths));
  out.sram_pipe.assign(chip.pipelines, 0);
  out.tcam_pipe.assign(chip.pipelines, 0);

  std::vector<std::size_t> free_sram(chip.pipelines,
                                     chip.sram_words_per_pipeline());
  std::vector<std::size_t> free_tcam(chip.pipelines,
                                     chip.tcam_slices_per_pipeline());

  for (std::size_t path = 0; path < npaths; ++path) {
    const std::vector<unsigned>& pipes = out.paths[path];
    for (std::size_t t = 0; t < demands.size(); ++t) {
      const TableDemand& d = demands[t];
      const bool back_slot = d.slot == PathSlot::kBackEgress ||
                             d.slot == PathSlot::kBackIngress;
      const unsigned preferred = pipes[back_slot && pipes.size() > 1 ? 1 : 0];
      const unsigned other = pipes[pipes.size() > 1 ? (back_slot ? 0 : 1) : 0];
      const bool balanced =
          d.slot == PathSlot::kBalanced && pipes.size() > 1;

      for (auto [kind, units] :
           {std::pair{MemoryKind::kSram, out.sram_bill[t]},
            std::pair{MemoryKind::kTcam, out.tcam_bill[t]}}) {
        if (units == 0) continue;
        std::vector<std::size_t>& free =
            kind == MemoryKind::kSram ? free_sram : free_tcam;
        std::vector<std::size_t>& pipe_demand =
            kind == MemoryKind::kSram ? out.sram_pipe : out.tcam_pipe;
        NaiveChain& chain = kind == MemoryKind::kSram ? out.sram[t][path]
                                                      : out.tcam[t][path];
        const auto take_from = [&](unsigned pipe, std::size_t want) {
          const std::size_t taken = want < free[pipe] ? want : free[pipe];
          if (taken == 0) return std::size_t{0};
          free[pipe] -= taken;
          pipe_demand[pipe] += taken;
          chain.placed += taken;
          if (!chain.spans.empty() && chain.spans.back().pipe == pipe) {
            chain.spans.back().units += taken;
          } else {
            chain.spans.push_back({pipe, taken});
          }
          return taken;
        };

        const std::size_t want_first = balanced ? (units + 1) / 2 : units;
        std::size_t rest = units - take_from(preferred, want_first);
        if (rest > 0 && other != preferred) {
          rest -= take_from(other, rest);
          // A balanced table's own overflow may still fit back on the
          // first pipe.
          if (rest > 0) rest -= take_from(preferred, rest);
        }
        if (rest > 0 && config.cross_path_spill && npaths > 1) {
          for (std::size_t offset = 1; offset < npaths && rest > 0;
               ++offset) {
            const std::vector<unsigned>& cross =
                out.paths[(path + offset) % npaths];
            const unsigned same =
                cross[back_slot && cross.size() > 1 ? 1 : 0];
            rest -= take_from(same, rest);
            if (rest > 0 && cross.size() > 1) {
              rest -= take_from(cross[back_slot ? 0 : 1], rest);
            }
          }
        }
        if (rest > 0) {
          pipe_demand[preferred] += rest;
          chain.unplaced = rest;
          out.feasible = false;
        }
      }
    }
  }
  return out;
}

}  // namespace sf::asic::testref
