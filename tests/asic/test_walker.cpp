#include "asic/walker.hpp"

#include <gtest/gtest.h>

namespace sf::asic {
namespace {

net::OverlayPacket sample_packet() {
  net::OverlayPacket pkt;
  pkt.vni = 100;
  pkt.inner.src = net::IpAddr::must_parse("10.0.0.1");
  pkt.inner.dst = net::IpAddr::must_parse("10.0.0.2");
  pkt.payload_size = 64;
  return pkt;
}

TEST(Walker, SinglePassWithoutLoopback) {
  PipelineProgram program(4);
  int ingress_runs = 0;
  int egress_runs = 0;
  program.set_ingress(0, {"in", {[&](PacketContext&) { ++ingress_runs; }}});
  program.set_egress(0, {"out", {[&](PacketContext&) { ++egress_runs; }}});
  const ChipConfig chip;
  Walker walker{chip, &program};
  const WalkResult result = walker.run(sample_packet(), 0);
  EXPECT_FALSE(result.dropped);
  EXPECT_EQ(result.passes, 1u);
  EXPECT_EQ(result.egress_pipe, 0u);
  EXPECT_EQ(ingress_runs, 1);
  EXPECT_EQ(egress_runs, 1);
}

TEST(Walker, SteeringToAnotherEgressPipe) {
  PipelineProgram program(4);
  program.set_ingress(
      0, {"in", {[](PacketContext& ctx) { ctx.egress_pipe = 3; }}});
  int pipe3_egress = 0;
  program.set_egress(3, {"out", {[&](PacketContext&) { ++pipe3_egress; }}});
  const ChipConfig chip;
  Walker walker{chip, &program};
  const WalkResult result = walker.run(sample_packet(), 0);
  EXPECT_EQ(result.egress_pipe, 3u);
  EXPECT_EQ(pipe3_egress, 1);
}

TEST(Walker, FoldedPathMakesTwoPasses) {
  PipelineProgram program(4);
  std::vector<std::string> trace;
  program.set_ingress(0, {"in0", {[&](PacketContext& ctx) {
                            trace.push_back("I0");
                            ctx.egress_pipe = 1;
                          }}});
  program.set_egress(1, {"eg1", {[&](PacketContext&) {
                           trace.push_back("E1");
                         }}});
  program.set_loopback(1, true);
  program.set_ingress(1, {"in1", {[&](PacketContext& ctx) {
                            trace.push_back("I1");
                            ctx.egress_pipe = 0;
                          }}});
  program.set_egress(0, {"eg0", {[&](PacketContext&) {
                           trace.push_back("E0");
                         }}});
  const ChipConfig chip;
  Walker walker{chip, &program};
  const WalkResult result = walker.run(sample_packet(), 0);
  EXPECT_FALSE(result.dropped);
  EXPECT_EQ(result.passes, 2u);
  EXPECT_EQ(result.egress_pipe, 0u);
  EXPECT_EQ(trace, (std::vector<std::string>{"I0", "E1", "I1", "E0"}));
  // Folded latency is roughly twice the single-pass latency.
  const double one_pass = ChipConfig{}.latency_us(1, 0);
  EXPECT_GT(result.latency_us, 1.9 * one_pass);
}

TEST(Walker, MetadataDoesNotCrossGressUnbridged) {
  PipelineProgram program(4);
  std::optional<std::uint64_t> seen;
  program.set_ingress(0, {"in", {[](PacketContext& ctx) {
                            ctx.meta.set("secret", 42, 8);  // not bridged
                          }}});
  program.set_egress(0, {"out", {[&](PacketContext& ctx) {
                           seen = ctx.meta.get("secret");
                         }}});
  const ChipConfig chip;
  Walker walker{chip, &program};
  walker.run(sample_packet(), 0);
  EXPECT_FALSE(seen.has_value());
}

TEST(Walker, BridgedMetadataSurvivesAndIsCharged) {
  PipelineProgram program(4);
  std::optional<std::uint64_t> seen;
  program.set_ingress(0, {"in", {[](PacketContext& ctx) {
                            ctx.meta.set("carry", 7, 24, /*bridged=*/true);
                          }}});
  program.set_egress(0, {"out", {[&](PacketContext& ctx) {
                           seen = ctx.meta.get("carry");
                         }}});
  const ChipConfig chip;
  Walker walker{chip, &program};
  const WalkResult result = walker.run(sample_packet(), 0);
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(result.bridged_bits, 24u);
}

TEST(Walker, DropInIngressSkipsEgress) {
  PipelineProgram program(4);
  int egress_runs = 0;
  program.set_ingress(
      0, {"in", {[](PacketContext& ctx) { ctx.drop("test drop"); }}});
  program.set_egress(0, {"out", {[&](PacketContext&) { ++egress_runs; }}});
  const ChipConfig chip;
  Walker walker{chip, &program};
  const WalkResult result = walker.run(sample_packet(), 0);
  EXPECT_TRUE(result.dropped);
  EXPECT_STREQ(result.drop_note, "test drop");
  EXPECT_EQ(egress_runs, 0);
}

TEST(Walker, LoopbackCycleIsBounded) {
  PipelineProgram program(4);
  // Every pipe loops back forever: the walker must abort.
  for (unsigned p = 0; p < 4; ++p) program.set_loopback(p, true);
  const ChipConfig chip;
  Walker walker{chip, &program};
  const WalkResult result = walker.run(sample_packet(), 0);
  EXPECT_TRUE(result.dropped);
  ASSERT_NE(result.drop_note, nullptr);
  EXPECT_NE(std::string(result.drop_note).find("loopback"),
            std::string::npos);
  EXPECT_LE(result.passes, Walker::kMaxPasses);
}

TEST(Walker, StagesRunInOrder) {
  PipelineProgram program(4);
  std::vector<int> order;
  program.set_ingress(0, {"in",
                          {[&](PacketContext&) { order.push_back(1); },
                           [&](PacketContext&) { order.push_back(2); },
                           [&](PacketContext&) { order.push_back(3); }}});
  program.set_egress(0, {"out", {}});
  const ChipConfig chip;
  Walker walker{chip, &program};
  walker.run(sample_packet(), 0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace sf::asic
