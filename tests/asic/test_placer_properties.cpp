// Placer invariants over randomized workloads (parameterized): the claims
// §4.4 and §5.1 make about the compression stack, checked as properties
// rather than at one calibration point.

#include <gtest/gtest.h>

#include "asic/placer.hpp"
#include "workload/rng.hpp"
#include "xgwh/compression_plan.hpp"

namespace sf::asic {
namespace {

class PlacerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  GatewayWorkload random_workload(workload::Rng& rng) const {
    GatewayWorkload w{};
    const std::size_t routes = 100'000 + rng.uniform(1'500'000);
    const std::size_t maps = 100'000 + rng.uniform(1'500'000);
    const double v6 = rng.uniform_real();
    w.vxlan_routes_v6 =
        static_cast<std::size_t>(static_cast<double>(routes) * v6);
    w.vxlan_routes_v4 = routes - w.vxlan_routes_v6;
    w.vm_maps_v6 =
        static_cast<std::size_t>(static_cast<double>(maps) * v6);
    w.vm_maps_v4 = maps - w.vm_maps_v6;
    return w;
  }
};

TEST_P(PlacerPropertyTest, FoldingExactlyHalvesPathOccupancy) {
  workload::Rng rng(GetParam());
  Placer placer{ChipConfig{}};
  const GatewayWorkload w = random_workload(rng);
  const auto base = placer.evaluate(w, xgwh::config_for_steps(""));
  const auto folded = placer.evaluate(w, xgwh::config_for_steps("a"));
  EXPECT_NEAR(folded.sram_path_worst, base.sram_path_worst / 2, 1e-9);
  EXPECT_NEAR(folded.tcam_path_worst, base.tcam_path_worst / 2, 1e-9);
}

TEST_P(PlacerPropertyTest, SplittingRoughlyHalvesAgain) {
  workload::Rng rng(GetParam());
  Placer placer{ChipConfig{}};
  const GatewayWorkload w = random_workload(rng);
  const auto folded = placer.evaluate(w, xgwh::config_for_steps("a"));
  const auto split = placer.evaluate(w, xgwh::config_for_steps("ab"));
  // Rounding of odd shard counts allows a sliver above exactly half.
  EXPECT_LE(split.sram_path_worst, folded.sram_path_worst / 2 + 1e-6);
  EXPECT_LE(split.tcam_path_worst, folded.tcam_path_worst / 2 + 1e-6);
}

TEST_P(PlacerPropertyTest, PoolingMakesOccupancyRatioInvariant) {
  // §4.4: "Since we have conducted IPv4/IPv6 table pooling, the memory
  // occupancy will not further change with the traffic ratio of
  // IPv4/IPv6." Same totals, different mixes -> identical occupancy.
  workload::Rng rng(GetParam());
  Placer placer{ChipConfig{}};
  const std::size_t routes = 200'000 + rng.uniform(800'000);
  const std::size_t maps = 200'000 + rng.uniform(800'000);
  const auto config = xgwh::config_for_steps("abcd");

  std::optional<double> sram;
  std::optional<double> tcam;
  for (double v6 : {0.0, 0.25, 0.5, 1.0}) {
    GatewayWorkload w{};
    w.vxlan_routes_v6 =
        static_cast<std::size_t>(static_cast<double>(routes) * v6);
    w.vxlan_routes_v4 = routes - w.vxlan_routes_v6;
    w.vm_maps_v6 = static_cast<std::size_t>(static_cast<double>(maps) * v6);
    w.vm_maps_v4 = maps - w.vm_maps_v6;
    const auto report = placer.evaluate(w, config);
    if (!sram) {
      sram = report.sram_path_worst;
      tcam = report.tcam_path_worst;
    } else {
      EXPECT_NEAR(report.sram_path_worst, *sram, 1e-9) << "v6=" << v6;
      EXPECT_NEAR(report.tcam_path_worst, *tcam, 1e-9) << "v6=" << v6;
    }
  }
}

TEST_P(PlacerPropertyTest, AlpmTradesTcamForSram) {
  workload::Rng rng(GetParam());
  Placer placer{ChipConfig{}};
  const GatewayWorkload w = random_workload(rng);
  const auto pooled = placer.evaluate(w, xgwh::config_for_steps("abcd"));
  const auto alpm = placer.evaluate(w, xgwh::config_for_steps("abcde"));
  EXPECT_LT(alpm.tcam_path_worst, pooled.tcam_path_worst * 0.2);
  EXPECT_GT(alpm.sram_path_worst, pooled.sram_path_worst);
}

TEST_P(PlacerPropertyTest, PipeAccountingIsConsistentWithPaths) {
  // Total demand charged to pipes equals total charged to paths.
  workload::Rng rng(GetParam());
  Placer placer{ChipConfig{}};
  const GatewayWorkload w = random_workload(rng);
  const auto report = placer.evaluate(w, xgwh::config_for_steps("abcde"));
  double pipes_sram = 0;
  for (const auto& pipe : report.pipes) pipes_sram += pipe.sram;
  double paths_sram = 0;
  for (const auto& path : report.paths) paths_sram += 2 * path.sram;
  EXPECT_NEAR(pipes_sram, paths_sram, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Workloads, PlacerPropertyTest,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005));

}  // namespace
}  // namespace sf::asic
