// sf::guard unit tests: the token-bucket meters and degradation ladder,
// the bounded punt queue, and the update-channel circuit breaker.

#include "guard/guard.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "guard/circuit_breaker.hpp"
#include "guard/punt_queue.hpp"
#include "telemetry/registry.hpp"

namespace sf::guard {
namespace {

constexpr net::Vni kVni = 42;

TenantGuard::Config limited_config(double rate_bps, double rate_pps) {
  TenantGuard::Config config;
  config.tenants.push_back(TenantLimit{kVni, rate_bps, rate_pps});
  return config;
}

const std::function<bool()> kNeverEstablished = [] { return false; };
const std::function<bool()> kAlwaysEstablished = [] { return true; };

TEST(TenantGuard, UnmeteredTenantIsTransparent) {
  TenantGuard guard(limited_config(8000, 0), 4);
  EXPECT_TRUE(guard.metered(kVni));
  EXPECT_FALSE(guard.metered(kVni + 1));
  // The other tenant is never throttled no matter the offered load.
  for (int i = 0; i < 1000; ++i) {
    const auto decision =
        guard.admit_packet(kVni + 1, 1500, 0.0, kNeverEstablished);
    EXPECT_TRUE(decision.admit);
    EXPECT_EQ(decision.tier, Tier::kFull);
  }
}

TEST(TenantGuard, ConformingTenantStaysFullService) {
  // 8000 bps = 1000 bytes/s; one 100-byte packet every 0.2 s conforms.
  TenantGuard guard(limited_config(8000, 0), 4);
  for (int i = 0; i < 50; ++i) {
    const auto decision = guard.admit_packet(kVni, 100, 0.2 * i,
                                             kNeverEstablished);
    EXPECT_TRUE(decision.admit) << "packet " << i;
    EXPECT_EQ(decision.tier, Tier::kFull);
  }
  EXPECT_EQ(guard.tier_of(kVni), Tier::kFull);
  EXPECT_EQ(guard.stats().admitted, 50u);
}

TEST(TenantGuard, FloodWalksTheLadderTierByTier) {
  TenantGuard::Config config = limited_config(8000, 0);
  config.escalate_after = 3;
  TenantGuard guard(config, 4);

  // Flood at one instant: the burst allowance (0.1 s = 100 bytes) admits
  // the first packet, then every packet is over-limit.
  std::vector<Tier> tiers;
  for (int i = 0; i < 8; ++i) {
    tiers.push_back(
        guard.admit_packet(kVni, 100, 0.0, kNeverEstablished).tier);
  }
  // Packet 0 admitted at tier 0; packets 1-3 over (escalate on the 3rd);
  // at tier 1 the streak restarts: packets 4-6 over, escalate on the 6th.
  EXPECT_EQ(tiers[0], Tier::kFull);
  EXPECT_EQ(tiers[3], Tier::kShedNewFlows);
  EXPECT_EQ(tiers[6], Tier::kShedTenant);
  EXPECT_EQ(guard.tier_of(kVni), Tier::kShedTenant);
  EXPECT_EQ(guard.stats().escalations, 2u);
}

TEST(TenantGuard, TierOneServesEstablishedPuntsTheRest) {
  TenantGuard::Config config = limited_config(8000, 0);
  config.escalate_after = 1;
  config.deescalate_after = 100;  // stay at tier 1 for the whole test
  TenantGuard guard(config, 4);
  guard.admit_packet(kVni, 100, 0.0, kNeverEstablished);  // burst
  guard.admit_packet(kVni, 100, 0.0, kNeverEstablished);  // over -> tier 1

  // Conforming established packet at tier 1: served.
  auto established =
      guard.admit_packet(kVni, 50, 10.0, kAlwaysEstablished);
  EXPECT_TRUE(established.admit);
  EXPECT_EQ(established.tier, Tier::kShedNewFlows);

  // Conforming NEW flow at tier 1: punted, not dropped.
  auto fresh = guard.admit_packet(kVni, 50, 10.1, kNeverEstablished);
  EXPECT_FALSE(fresh.admit);
  EXPECT_TRUE(fresh.punt);
  EXPECT_EQ(fresh.drop_reason, dataplane::DropReason::kTenantNewFlowShed);
  EXPECT_EQ(guard.stats().established_served, 1u);
  // The escalating packet itself was also punted (tier 1, not established).
  EXPECT_EQ(guard.stats().punted, 2u);
}

TEST(TenantGuard, TierTwoShedsTheTenantOutright) {
  TenantGuard::Config config = limited_config(8000, 0);
  config.escalate_after = 1;
  TenantGuard guard(config, 4);
  guard.admit_packet(kVni, 200, 0.0, kNeverEstablished);  // burst spent
  guard.admit_packet(kVni, 200, 0.0, kNeverEstablished);  // -> tier 1
  guard.admit_packet(kVni, 200, 0.0, kNeverEstablished);  // -> tier 2

  auto decision = guard.admit_packet(kVni, 50, 10.0, kAlwaysEstablished);
  EXPECT_FALSE(decision.admit);
  EXPECT_FALSE(decision.punt);
  EXPECT_EQ(decision.drop_reason, dataplane::DropReason::kTenantShed);
  EXPECT_GE(guard.stats().shed_tenant, 1u);
}

TEST(TenantGuard, ConformingStreakDeescalates) {
  TenantGuard::Config config = limited_config(8000, 0);
  config.escalate_after = 1;
  config.deescalate_after = 2;
  TenantGuard guard(config, 4);
  // A 200-byte packet against a 100-byte burst is over-limit at once.
  guard.admit_packet(kVni, 200, 0.0, kNeverEstablished);  // -> tier 1
  ASSERT_EQ(guard.tier_of(kVni), Tier::kShedNewFlows);

  // Two conforming established packets, well spaced: back to tier 0.
  guard.admit_packet(kVni, 50, 10.0, kAlwaysEstablished);
  guard.admit_packet(kVni, 50, 20.0, kAlwaysEstablished);
  EXPECT_EQ(guard.tier_of(kVni), Tier::kFull);
  EXPECT_EQ(guard.stats().deescalations, 1u);
}

TEST(TenantGuard, IntervalStepShedsOverLimitFractionally) {
  TenantGuard::Config config = limited_config(1e6, 0);  // 1 Mbps budget
  config.escalate_after = 1;
  TenantGuard guard(config, 4);
  const std::size_t shard = guard.shard_of(kVni);

  telemetry::Registry registry;
  std::vector<TenantGuard::TenantInterval> out;
  std::map<net::Vni, TenantGuard::Offered> offered;
  offered[kVni] = TenantGuard::Offered{1000.0, 4e6};  // 4x over budget

  const auto fractions =
      guard.interval_step(shard, offered, out, registry);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vni, kVni);
  EXPECT_EQ(out[0].tier, Tier::kShedNewFlows);
  // Tier 1 admits the in-budget fraction: 1/4 of the offered rate.
  EXPECT_DOUBLE_EQ(fractions.at(kVni), 0.25);
  EXPECT_DOUBLE_EQ(out[0].shed_pps, 750.0);
}

TEST(TenantGuard, IntervalAbsenceWalksBackDown) {
  TenantGuard::Config config = limited_config(1e6, 0);
  config.escalate_after = 1;
  config.deescalate_after = 2;
  TenantGuard guard(config, 4);
  const std::size_t shard = guard.shard_of(kVni);

  telemetry::Registry registry;
  std::vector<TenantGuard::TenantInterval> out;
  std::map<net::Vni, TenantGuard::Offered> storm;
  storm[kVni] = TenantGuard::Offered{1000.0, 8e6};
  guard.interval_step(shard, storm, out, registry);  // -> tier 1
  guard.interval_step(shard, storm, out, registry);  // -> tier 2
  EXPECT_EQ(guard.tier_of(kVni), Tier::kShedTenant);

  // The storm stops: the tenant vanishes from the offered map, and every
  // quiet interval counts as conforming.
  const std::map<net::Vni, TenantGuard::Offered> quiet;
  for (int i = 0; i < 4; ++i) {
    out.clear();
    guard.interval_step(shard, quiet, out, registry);
    ASSERT_EQ(out.size(), 1u);  // still reported while walking down
  }
  EXPECT_EQ(guard.tier_of(kVni), Tier::kFull);
}

TEST(TenantGuard, SetLimitResetsLadderState) {
  TenantGuard::Config config = limited_config(8000, 0);
  config.escalate_after = 1;
  TenantGuard guard(config, 4);
  guard.admit_packet(kVni, 200, 0.0, kNeverEstablished);
  guard.admit_packet(kVni, 200, 0.0, kNeverEstablished);
  ASSERT_NE(guard.tier_of(kVni), Tier::kFull);
  guard.set_limit(TenantLimit{kVni, 1e9, 0});
  EXPECT_EQ(guard.tier_of(kVni), Tier::kFull);
}

TEST(TenantGuard, ShardOfIsStableAndInRange) {
  TenantGuard guard(limited_config(1, 0), 16);
  for (net::Vni vni = 0; vni < 256; ++vni) {
    const std::size_t shard = guard.shard_of(vni);
    EXPECT_LT(shard, 16u);
    EXPECT_EQ(shard, guard.shard_of(vni));
  }
}

TEST(TenantGuard, ValidatesConfig) {
  TenantGuard::Config bad;
  bad.burst_seconds = 0;
  EXPECT_THROW(TenantGuard(bad, 4), std::invalid_argument);
  bad = TenantGuard::Config{};
  bad.escalate_after = 0;
  EXPECT_THROW(TenantGuard(bad, 4), std::invalid_argument);
}

// ---- PuntQueue -----------------------------------------------------------

TEST(PuntQueue, AdmitsUntilDepthThenOverflows) {
  PuntQueue::Config config;
  config.depth_packets = 3;
  config.drain_pps = 1.0;  // effectively no drain within one instant
  PuntQueue queue(config);
  EXPECT_TRUE(queue.offer(0, 0, 0.0).admitted);
  EXPECT_TRUE(queue.offer(0, 0, 0.0).admitted);
  EXPECT_TRUE(queue.offer(0, 0, 0.0).admitted);
  EXPECT_FALSE(queue.offer(0, 0, 0.0).admitted);
  EXPECT_EQ(queue.stats().admitted, 3u);
  EXPECT_EQ(queue.stats().overflowed, 1u);
}

TEST(PuntQueue, DrainsOverTimeAndChargesQueueingDelay) {
  PuntQueue::Config config;
  config.depth_packets = 10;
  config.drain_pps = 2.0;
  PuntQueue queue(config);
  const auto first = queue.offer(0, 0, 0.0);
  EXPECT_TRUE(first.admitted);
  // Occupancy 1 at 2 pps: 0.5 s = 500000 us of modeled delay.
  EXPECT_DOUBLE_EQ(first.queue_delay_us, 5e5);
  // After 10 s the lane has fully drained.
  EXPECT_DOUBLE_EQ(queue.occupancy(0, 0, 10.0), 0.0);
  const auto later = queue.offer(0, 0, 10.0);
  EXPECT_DOUBLE_EQ(later.queue_delay_us, 5e5);
}

TEST(PuntQueue, LanesAreIndependent) {
  PuntQueue::Config config;
  config.depth_packets = 1;
  config.drain_pps = 1e-6;
  PuntQueue queue(config);
  EXPECT_TRUE(queue.offer(0, 0, 0.0).admitted);
  EXPECT_FALSE(queue.offer(0, 0, 0.0).admitted);  // lane (0,0) full
  EXPECT_TRUE(queue.offer(0, 1, 0.0).admitted);   // lane (0,1) untouched
  EXPECT_TRUE(queue.offer(1, 0, 0.0).admitted);
}

TEST(PuntQueue, BackwardClockDrainsNothing) {
  PuntQueue::Config config;
  config.depth_packets = 2;
  config.drain_pps = 1000.0;
  PuntQueue queue(config);
  EXPECT_TRUE(queue.offer(0, 0, 5.0).admitted);
  // Clock steps backwards (replayed schedule): occupancy must not go
  // negative or spuriously drain.
  EXPECT_DOUBLE_EQ(queue.occupancy(0, 0, 1.0), 1.0);
  EXPECT_TRUE(queue.offer(0, 0, 1.0).admitted);
  EXPECT_FALSE(queue.offer(0, 0, 1.0).admitted);
}

TEST(PuntQueue, HighWatermarkRemembersTheDeepestLane) {
  PuntQueue::Config config;
  config.depth_packets = 10;
  config.drain_pps = 1.0;
  PuntQueue queue(config);
  queue.offer(0, 0, 0.0);
  queue.offer(0, 0, 0.0);
  queue.offer(0, 0, 0.0);
  queue.offer(0, 1, 0.0);  // a shallower lane must not lower the mark
  EXPECT_DOUBLE_EQ(queue.stats().high_watermark, 3.0);
  EXPECT_DOUBLE_EQ(queue.max_occupancy(0.0), 3.0);

  // Draining pulls the live occupancy down, but the watermark is sticky.
  EXPECT_DOUBLE_EQ(queue.max_occupancy(2.0), 1.0);
  EXPECT_DOUBLE_EQ(queue.stats().high_watermark, 3.0);
}

TEST(PuntQueue, ValidatesConfig) {
  PuntQueue::Config bad;
  bad.depth_packets = 0;
  EXPECT_THROW(PuntQueue{bad}, std::invalid_argument);
  bad = PuntQueue::Config{};
  bad.drain_pps = 0;
  EXPECT_THROW(PuntQueue{bad}, std::invalid_argument);
}

// ---- CircuitBreaker ------------------------------------------------------

TEST(CircuitBreaker, DisabledBreakerAlwaysAllows) {
  CircuitBreaker breaker;  // trip_after = 0
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) breaker.record_failure(0.0);
  EXPECT_TRUE(breaker.allow(0.0));
  EXPECT_EQ(breaker.stats().trips, 0u);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresOnly) {
  CircuitBreaker breaker(CircuitBreaker::Config{3, 1.0});
  breaker.record_failure(0.0);
  breaker.record_failure(0.1);
  breaker.record_success(0.2);  // streak broken
  breaker.record_failure(0.3);
  breaker.record_failure(0.4);
  EXPECT_TRUE(breaker.allow(0.5));
  breaker.record_failure(0.5);  // third consecutive
  EXPECT_EQ(breaker.state(0.5), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(0.5));
  EXPECT_EQ(breaker.stats().trips, 1u);
}

TEST(CircuitBreaker, HalfOpenProbeClosesOnSuccess) {
  CircuitBreaker breaker(CircuitBreaker::Config{1, 2.0});
  breaker.record_failure(0.0);
  EXPECT_EQ(breaker.state(1.0), CircuitBreaker::State::kOpen);
  // Cooldown elapses: half-open lets the probe through.
  EXPECT_EQ(breaker.state(2.0), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(2.0));
  breaker.record_success(2.0);
  EXPECT_EQ(breaker.state(2.0), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().closes, 1u);
}

TEST(CircuitBreaker, HalfOpenProbeReopensOnFailure) {
  CircuitBreaker breaker(CircuitBreaker::Config{1, 2.0});
  breaker.record_failure(0.0);
  ASSERT_EQ(breaker.state(2.0), CircuitBreaker::State::kHalfOpen);
  breaker.record_failure(2.0);
  EXPECT_EQ(breaker.state(2.0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(3.9), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(4.0), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.stats().reopens, 1u);
}

TEST(CircuitBreaker, TierNamesAreStable) {
  EXPECT_STREQ(name(CircuitBreaker::State::kClosed), "closed");
  EXPECT_STREQ(name(CircuitBreaker::State::kOpen), "open");
  EXPECT_STREQ(name(CircuitBreaker::State::kHalfOpen), "half-open");
  EXPECT_STREQ(name(Tier::kFull), "full-service");
  EXPECT_STREQ(name(Tier::kShedNewFlows), "shed-new-flows");
  EXPECT_STREQ(name(Tier::kShedTenant), "shed-tenant");
}

}  // namespace
}  // namespace sf::guard
