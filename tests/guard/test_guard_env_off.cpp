// SF_GUARD gate: with the environment variable set to "off", a region (or
// controller) configured with guard features must not build them — the
// process behaves byte-identically to a guard-less build. Lives in its own
// test binary because guard_enabled() latches on first use, so the gate
// must be set before anything in the process consults it.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/sailfish.hpp"
#include "guard/guard.hpp"

namespace sf::core {
namespace {

// Latch the gate before main() — and before any other code in this binary
// can touch guard_enabled().
const bool kGateOff = [] {
  setenv("SF_GUARD", "off", 1);
  return guard::guard_enabled();
}();

TEST(GuardEnvOff, GateReadsOff) { EXPECT_FALSE(kGateOff); }

TEST(GuardEnvOff, RegionBuildsNoGuardDespiteConfig) {
  SailfishOptions options = quickstart_options();
  options.region.enable_guard = true;
  options.region.guard.tenants.push_back(guard::TenantLimit{1, 1.0, 0.0});
  options.region.enable_punt_path = true;
  SailfishSystem system = make_system(options);

  EXPECT_EQ(system.region->tenant_guard(), nullptr);
  EXPECT_EQ(system.region->punt_queue(), nullptr);

  // No guard counters leak into telemetry — snapshots match a guard-less
  // region's key set exactly.
  const auto snapshot = system.region->telemetry_snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_EQ(name.find("guard"), std::string::npos) << name;
  }

  // And the limited tenant's traffic flows untouched.
  net::OverlayPacket packet;
  packet.vni = system.flows.front().vni;
  packet.inner = system.flows.front().tuple;
  packet.payload_size = 256;
  const auto verdict = system.region->process(packet, 0.0);
  EXPECT_NE(verdict.drop_reason, dataplane::DropReason::kTenantShed);
  EXPECT_NE(verdict.drop_reason, dataplane::DropReason::kTenantNewFlowShed);
}

TEST(GuardEnvOff, ControllerBuildsNoBreakerDespiteConfig) {
  cluster::Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 1;
  config.breaker.trip_after = 3;
  cluster::Controller controller(config);
  EXPECT_EQ(controller.breaker(), nullptr);
}

}  // namespace
}  // namespace sf::core
