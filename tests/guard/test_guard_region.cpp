// sf::guard integration: the tenant guard and punt path threaded through a
// full SailfishRegion — the degradation ladder on the functional path, the
// interval pre-pass, punt-queue backpressure, the x86-cache hygiene rule
// for meter-degraded spillover, and the transparency contract (a guard
// with no limits changes nothing).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/sailfish.hpp"
#include "guard/guard.hpp"

namespace sf::core {
namespace {

/// First local-scope (hardware-path) flow of the generated population.
const workload::Flow& local_flow(const SailfishSystem& system) {
  for (const workload::Flow& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kLocal) return flow;
  }
  ADD_FAILURE() << "no local flow in population";
  return system.flows.front();
}

net::OverlayPacket packet_for(const workload::Flow& flow) {
  net::OverlayPacket packet;
  packet.vni = flow.vni;
  packet.inner = flow.tuple;
  packet.payload_size = 256;
  return packet;
}

SailfishOptions guarded_options(net::Vni limited_vni, bool punt_path) {
  SailfishOptions options = quickstart_options();
  options.region.enable_guard = true;
  options.region.guard.escalate_after = 1;
  options.region.guard.deescalate_after = 1000;  // one-way ladder here
  // 8 bps = 1 byte/s: every real packet is instantly over budget.
  options.region.guard.tenants.push_back(
      guard::TenantLimit{limited_vni, 8.0, 0.0});
  options.region.enable_punt_path = punt_path;
  return options;
}

TEST(GuardRegion, GuardWithoutLimitsIsFullyTransparent) {
  SailfishOptions plain = quickstart_options();
  SailfishOptions guarded = quickstart_options();
  guarded.region.enable_guard = true;  // built, but no limits anywhere
  SailfishSystem a = make_system(plain);
  SailfishSystem b = make_system(guarded);

  const auto ra = a.region->simulate_interval(a.flows, 100e9, 1);
  const auto rb = b.region->simulate_interval(b.flows, 100e9, 1);
  EXPECT_EQ(ra.offered_pps, rb.offered_pps);
  EXPECT_EQ(ra.dropped_pps, rb.dropped_pps);
  EXPECT_EQ(ra.fallback_bps, rb.fallback_bps);
  EXPECT_EQ(rb.guard_shed_pps, 0.0);
  EXPECT_TRUE(rb.guard_tenants.empty());

  for (std::size_t f = 0; f < 16; ++f) {
    const net::OverlayPacket packet = packet_for(a.flows[f]);
    const auto va = a.region->process(packet, 0.0);
    const auto vb = b.region->process(packet, 0.0);
    EXPECT_EQ(va.action, vb.action);
    EXPECT_EQ(va.drop_reason, vb.drop_reason);
  }
}

TEST(GuardRegion, FunctionalPathWalksLadderToTypedShed) {
  SailfishSystem probe = make_system(quickstart_options());
  const net::Vni vni = local_flow(probe).vni;
  SailfishSystem system = make_system(guarded_options(vni, false));
  const net::OverlayPacket packet = packet_for(local_flow(system));

  // Packet 1: over budget immediately -> tier 1; no punt path, so the
  // non-established packet is shed with the new-flow reason.
  const auto first = system.region->process(packet, 0.0);
  EXPECT_TRUE(first.dropped());
  EXPECT_EQ(first.drop_reason, dataplane::DropReason::kTenantNewFlowShed);

  // Packet 2: still over -> tier 2; the tenant is shed outright.
  const auto second = system.region->process(packet, 0.0);
  EXPECT_TRUE(second.dropped());
  EXPECT_EQ(second.drop_reason, dataplane::DropReason::kTenantShed);
  EXPECT_EQ(system.region->tenant_guard()->tier_of(vni),
            guard::Tier::kShedTenant);

  // Other tenants are untouched the whole time.
  for (const workload::Flow& flow : system.flows) {
    if (flow.vni == vni || flow.scope != tables::RouteScope::kLocal) continue;
    const auto verdict = system.region->process(packet_for(flow), 0.0);
    EXPECT_FALSE(verdict.dropped());
    break;
  }

  const auto snapshot = system.region->telemetry_snapshot();
  EXPECT_EQ(snapshot.counters.at("region.guard.shed_tenant"), 1u);
  EXPECT_EQ(snapshot.counters.at("region.guard.shed_new_flow"), 1u);
  EXPECT_EQ(snapshot.counters.at(
                "region.drop." +
                dataplane::to_string(dataplane::DropReason::kTenantShed)),
            1u);
}

TEST(GuardRegion, MeterPuntServesViaX86WithoutCachePollution) {
  SailfishSystem probe = make_system(quickstart_options());
  const net::Vni vni = local_flow(probe).vni;
  SailfishOptions options = guarded_options(vni, true);
  options.region.punt_queue.depth_packets = 1024;
  options.region.punt_queue.drain_pps = 1e6;
  SailfishSystem system = make_system(options);
  const net::OverlayPacket packet = packet_for(local_flow(system));

  // Over budget -> tier 1 -> punted to the paired XGW-x86 and SERVED.
  const auto verdict = system.region->process(packet, 0.0);
  EXPECT_FALSE(verdict.dropped());
  EXPECT_TRUE(verdict.software_path);
  EXPECT_GT(verdict.latency_us, 0.0);  // the punt queue charges delay

  // The meter-degraded packet must never earn an x86 flow-cache entry.
  std::uint64_t insertions = 0;
  for (std::size_t n = 0; n < system.region->x86_node_count(); ++n) {
    insertions += system.region->x86_node(n).flow_cache_stats().insertions;
  }
  EXPECT_EQ(insertions, 0u);

  const auto snapshot = system.region->telemetry_snapshot();
  EXPECT_EQ(snapshot.counters.at("region.guard.punted"), 1u);
}

TEST(GuardRegion, PuntQueueOverflowIsTypedBackpressure) {
  SailfishSystem probe = make_system(quickstart_options());
  const net::Vni vni = local_flow(probe).vni;
  SailfishOptions options = guarded_options(vni, true);
  // Two over-budget packets per tier step: the tenant sits at tier 1
  // (punting) long enough to fill the one-slot lane instead of racing
  // straight to tier 2.
  options.region.guard.escalate_after = 2;
  options.region.punt_queue.depth_packets = 1;
  options.region.punt_queue.drain_pps = 1e-3;  // effectively never drains
  SailfishSystem system = make_system(options);
  const net::OverlayPacket packet = packet_for(local_flow(system));

  const auto first = system.region->process(packet, 0.0);
  EXPECT_FALSE(first.dropped());  // still tier 0: served by hardware
  const auto second = system.region->process(packet, 0.0);
  EXPECT_FALSE(second.dropped());  // tier 1: punted, lane had room
  EXPECT_TRUE(second.software_path);
  const auto third = system.region->process(packet, 0.0);
  EXPECT_TRUE(third.dropped());
  EXPECT_EQ(third.drop_reason, dataplane::DropReason::kPuntQueueFull);

  const auto snapshot = system.region->telemetry_snapshot();
  EXPECT_EQ(snapshot.counters.at("region.guard.punt_queue_full"), 1u);
  EXPECT_EQ(snapshot.counters.at(
                "region.drop." +
                dataplane::to_string(dataplane::DropReason::kPuntQueueFull)),
            1u);
}

TEST(GuardRegion, IntervalPrePassShedsStormTenantOnly) {
  SailfishSystem probe = make_system(quickstart_options());
  const net::Vni vni = local_flow(probe).vni;

  SailfishOptions options = quickstart_options();
  options.region.enable_guard = true;
  options.region.guard.escalate_after = 1;
  options.region.guard.deescalate_after = 2;
  SailfishSystem system = make_system(options);
  const double total_bps = 100e9;

  // Give the storm tenant 1% of the region rate as budget; its flows
  // carry far more than that in the generated Zipf population... unless
  // they don't — so compute its actual share and set the budget to an
  // eighth of it.
  double storm_share = 0;
  for (const workload::Flow& flow : system.flows) {
    if (flow.vni == vni) storm_share += flow.weight;
  }
  ASSERT_GT(storm_share, 0.0);
  system.region->tenant_guard()->set_limit(
      guard::TenantLimit{vni, storm_share * total_bps / 8.0, 0.0});

  // Interval 1: over budget -> tier 1, shed down to the budgeted rate.
  const auto r1 = system.region->simulate_interval(system.flows, total_bps, 1);
  ASSERT_EQ(r1.guard_tenants.size(), 1u);
  EXPECT_EQ(r1.guard_tenants[0].vni, vni);
  EXPECT_EQ(r1.guard_tenants[0].tier, guard::Tier::kShedNewFlows);
  EXPECT_GT(r1.guard_shed_pps, 0.0);
  EXPECT_NEAR(r1.guard_tenants[0].shed_pps / r1.guard_tenants[0].offered_pps,
              1.0 - 1.0 / 8.0, 1e-9);

  // Interval 2: still over -> tier 2, the whole tenant is shed.
  const auto r2 = system.region->simulate_interval(system.flows, total_bps, 2);
  ASSERT_EQ(r2.guard_tenants.size(), 1u);
  EXPECT_EQ(r2.guard_tenants[0].tier, guard::Tier::kShedTenant);
  EXPECT_NEAR(r2.guard_tenants[0].shed_pps, r2.guard_tenants[0].offered_pps,
              1e-9);
  // Offered is accounted pre-shed: the two intervals offer the same load
  // (up to summation-order rounding between the shed fractions).
  EXPECT_NEAR(r1.offered_pps, r2.offered_pps, 1e-6 * r1.offered_pps);
}

TEST(GuardRegion, IntervalReportByteIdenticalAcrossThreadCounts) {
  SailfishSystem probe = make_system(quickstart_options());
  const net::Vni vni = local_flow(probe).vni;

  const auto run = [&](std::size_t threads) {
    SailfishOptions options = quickstart_options();
    options.region.enable_guard = true;
    options.region.guard.escalate_after = 1;
    options.region.guard.tenants.push_back(
        guard::TenantLimit{vni, 1e6, 0.0});
    SailfishSystem system = make_system(options);
    system.region->set_interval_threads(threads);
    SailfishRegion::IntervalReport last;
    for (std::uint64_t i = 0; i < 4; ++i) {
      last = system.region->simulate_interval(system.flows, 100e9, i);
    }
    return last;
  };

  const auto one = run(1);
  const auto eight = run(8);
  EXPECT_EQ(one.offered_pps, eight.offered_pps);
  EXPECT_EQ(one.dropped_pps, eight.dropped_pps);
  EXPECT_EQ(one.guard_shed_pps, eight.guard_shed_pps);
  ASSERT_EQ(one.guard_tenants.size(), eight.guard_tenants.size());
  for (std::size_t i = 0; i < one.guard_tenants.size(); ++i) {
    EXPECT_EQ(one.guard_tenants[i].vni, eight.guard_tenants[i].vni);
    EXPECT_EQ(one.guard_tenants[i].tier, eight.guard_tenants[i].tier);
    EXPECT_EQ(one.guard_tenants[i].shed_pps, eight.guard_tenants[i].shed_pps);
  }
}

}  // namespace
}  // namespace sf::core
