// Executable record of the paper's headline claims (EXPERIMENTS.md):
// every number the README advertises is re-derived here through the same
// code paths the benches use, so a regression in any subsystem that would
// change a published comparison fails CI — not just a bench's stdout.

#include <gtest/gtest.h>

#include "asic/placer.hpp"
#include "core/cache_cluster.hpp"
#include "core/capacity_planner.hpp"
#include "core/table_sharing.hpp"
#include "workload/zipf.hpp"
#include "x86/cost_model.hpp"
#include "xgwh/compression_plan.hpp"
#include "xgwh/xgwh.hpp"

namespace sf {
namespace {

TEST(PaperClaims, Abstract_LatencyReducedBy95Percent) {
  // "Sailfish reduces latency by 95% (2µs)".
  xgwh::XgwH hw{xgwh::XgwH::Config{}};
  hw.install_route(1, net::IpPrefix::must_parse("10.0.0.0/8"),
                   {tables::RouteScope::kLocal, 0, {}});
  hw.install_mapping({1, net::IpAddr::must_parse("10.0.0.2")},
                     {net::Ipv4Addr(172, 16, 0, 1)});
  net::OverlayPacket pkt;
  pkt.vni = 1;
  pkt.inner.src = net::IpAddr::must_parse("10.0.0.1");
  pkt.inner.dst = net::IpAddr::must_parse("10.0.0.2");
  pkt.payload_size = 128;
  const double hw_latency = hw.forward(pkt).latency_us;
  const double sw_latency = x86::X86CostModel{}.latency_us(0.3);
  EXPECT_NEAR(hw_latency, 2.2, 0.2);
  EXPECT_GT(1.0 - hw_latency / sw_latency, 0.90);
}

TEST(PaperClaims, Abstract_ThroughputAndPacketRateMultipliers) {
  // ">20x in bps (3.2Tbps) and 71x in pps (1.8Gpps)".
  const xgwh::XgwH hw{xgwh::XgwH::Config{}};
  const x86::X86CostModel sw;
  EXPECT_GT(hw.max_throughput_bps() / sw.nic_bps, 20.0);
  EXPECT_NEAR(hw.max_throughput_bps(), 3.2e12, 1e9);
  EXPECT_NEAR(hw.max_packet_rate_pps() / sw.max_pps(), 71.0, 5.0);
}

TEST(PaperClaims, Contribution_Ipv4ScenarioReductions) {
  // "decreases SRAM occupancy by 38% and TCAM occupancy by 96% in the
  // IPv4 scenario" — our model: 33% / 97% (EXPERIMENTS.md).
  const asic::Placer placer{asic::ChipConfig{}};
  const asic::GatewayWorkload v4{1'000'000, 0, 1'000'000, 0};
  const auto before = placer.evaluate(v4, xgwh::config_for_steps(""));
  const auto after = placer.evaluate(v4, xgwh::config_for_steps("abcde"));
  EXPECT_NEAR(1.0 - after.sram_path_worst / before.sram_path_worst, 0.38,
              0.08);
  EXPECT_NEAR(1.0 - after.tcam_path_worst / before.tcam_path_worst, 0.96,
              0.02);
}

TEST(PaperClaims, Contribution_Ipv6ScenarioReductions) {
  // "In the IPv6 scenario, it decreases SRAM occupancy by 85% and TCAM
  // occupancy by 98%."
  const asic::Placer placer{asic::ChipConfig{}};
  const asic::GatewayWorkload v6{0, 1'000'000, 0, 1'000'000};
  const auto before = placer.evaluate(v6, xgwh::config_for_steps(""));
  const auto after = placer.evaluate(v6, xgwh::config_for_steps("abcde"));
  EXPECT_NEAR(1.0 - after.sram_path_worst / before.sram_path_worst, 0.85,
              0.04);
  EXPECT_NEAR(1.0 - after.tcam_path_worst / before.tcam_path_worst, 0.98,
              0.02);
}

TEST(PaperClaims, Contribution_CostReductionOver90Percent) {
  // "reduces the total hardware acquisition cost by more than 90%".
  const auto plan =
      core::plan_region(core::RegionRequirements{}, core::NodeEconomics{});
  EXPECT_GT(plan.cost_reduction, 0.9);
  EXPECT_EQ(plan.x86_only.nodes, 600u);  // §2.3's own arithmetic
}

TEST(PaperClaims, Section42_EightyTwentyRule) {
  // "5% of the table entries carry 95% of the traffic" — the exponent the
  // workload generators are calibrated with must reproduce it.
  const std::size_t n = 10'000;
  const double s = workload::fit_zipf_exponent(n, 0.05, 0.95);
  const auto weights = workload::zipf_weights(n, s);
  double head = 0;
  for (std::size_t i = 0; i < n / 20; ++i) head += weights[i];
  EXPECT_NEAR(head, 0.95, 0.01);
}

TEST(PaperClaims, Section42_SoftwareShareBelowTwoPermille) {
  const auto catalog = core::default_service_catalog();
  const auto placements =
      core::decide_catalog(catalog, core::SharingPolicy{});
  EXPECT_LT(core::software_traffic_share(catalog, placements), 0.002);
}

TEST(PaperClaims, Section8_FourTimesCapabilityAtTwiceCost) {
  core::CacheClusterPlan plan({4, 0.25});
  // The paper's premise: the active quarter of entries serves ~all
  // traffic. Under that premise the arithmetic must give >= 4x at 2x.
  std::vector<core::TenantActivity> tenants;
  for (int i = 0; i < 25; ++i) tenants.push_back({0.01, 0.98 / 25});
  for (int i = 0; i < 75; ++i) tenants.push_back({0.01, 0.02 / 75});
  const auto analysis = plan.analyze(tenants);
  EXPECT_NEAR(analysis.cost_ratio, 2.0, 1e-9);
  EXPECT_GE(analysis.load_multiplier, 4.0);
}

}  // namespace
}  // namespace sf
