// Cross-module integration tests: wire-format packets through the whole
// region, hardware/software forwarding equivalence, cluster-level
// consistency audits after churn, and determinism of a full simulation.

#include <gtest/gtest.h>

#include "core/sailfish.hpp"
#include "net/packet.hpp"

namespace sf {
namespace {

using core::SailfishRegion;
using core::SailfishSystem;

SailfishSystem system_under_test() {
  auto options = core::quickstart_options();
  options.flows.flow_count = 600;
  return core::make_system(options);
}

net::OverlayPacket packet_for_flow(const workload::Flow& flow) {
  net::OverlayPacket pkt;
  pkt.vni = flow.vni;
  pkt.inner = flow.tuple;
  pkt.inner_src_mac = net::MacAddr::must_parse("02:00:00:00:00:01");
  pkt.inner_dst_mac = net::MacAddr::must_parse("02:00:00:00:00:02");
  pkt.outer_src_mac = net::MacAddr::must_parse("02:00:00:00:00:03");
  pkt.outer_dst_mac = net::MacAddr::must_parse("02:00:00:00:00:04");
  pkt.outer_src_ip = net::IpAddr::must_parse("10.200.0.1");
  pkt.outer_dst_ip = net::IpAddr::must_parse("10.200.0.2");
  pkt.payload_size = 300;
  return pkt;
}

TEST(EndToEnd, WireBytesThroughTheRegion) {
  SailfishSystem system = system_under_test();
  std::size_t forwarded = 0;
  for (const workload::Flow& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kInternet) continue;
    // Serialize to real VXLAN-in-UDP bytes, re-parse, then forward.
    const auto bytes = encode(packet_for_flow(flow));
    auto parsed = net::decode(bytes);
    ASSERT_TRUE(parsed.has_value());
    const auto result = system.region->process(*parsed);
    ASSERT_EQ(dataplane::path_label(result), "hardware-forwarded")
        << dataplane::to_string(result.drop_reason);
    // The rewritten packet re-encodes to valid bytes addressed to the NC.
    const auto out_bytes = encode(result.packet);
    auto out = net::decode(out_bytes);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->outer_dst_ip, net::IpAddr(flow.dst_nc));
    EXPECT_EQ(out->vni, flow.vni);
    EXPECT_EQ(out->inner.dst, flow.tuple.dst);
    if (++forwarded >= 40) break;
  }
  EXPECT_GE(forwarded, 40u);
}

TEST(EndToEnd, HardwareAndSoftwareAgreeOnForwarding) {
  // Every east-west flow must resolve to the same NC whether the lookup
  // runs in the XGW-H (ALPM + digest tables) or the XGW-x86 (DRAM maps):
  // the HW/SW co-design depends on this equivalence.
  SailfishSystem system = system_under_test();
  std::size_t checked = 0;
  for (const workload::Flow& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kInternet) continue;
    const auto pkt = packet_for_flow(flow);
    const auto hw = system.region->controller().process(pkt);
    const auto sw = system.region->x86_node(0).forward(pkt);
    ASSERT_EQ(hw.action, dataplane::Action::kForwardToNc)
        << dataplane::to_string(hw.drop_reason);
    ASSERT_EQ(sw.action, dataplane::Action::kForwardToNc)
        << dataplane::to_string(sw.drop_reason);
    EXPECT_EQ(hw.packet.outer_dst_ip, sw.packet.outer_dst_ip);
    if (++checked >= 80) break;
  }
  EXPECT_GE(checked, 80u);
}

TEST(EndToEnd, ConsistencyAuditSurvivesChurn) {
  SailfishSystem system = system_under_test();
  auto& controller = system.region->controller();
  // Churn: drop and re-add some routes through the controller.
  const auto& vpc = system.topology.vpcs[3];
  for (const auto& route : vpc.routes) {
    ASSERT_TRUE(dataplane::succeeded(
        controller.remove_route(vpc.vni, route.prefix)));
  }
  for (const auto& route : vpc.routes) {
    ASSERT_TRUE(dataplane::succeeded(
        controller.install_route(vpc.vni, route.prefix, route.action)));
  }
  for (std::size_t c = 0; c < controller.cluster_count(); ++c) {
    const auto report = controller.check_consistency(c);
    EXPECT_EQ(report.missing_on_device, 0u) << "cluster " << c;
  }
}

TEST(EndToEnd, FailoverPreservesForwarding) {
  SailfishSystem system = system_under_test();
  auto& controller = system.region->controller();
  // Kill every primary in cluster 0; backups must carry the traffic.
  auto& cluster = controller.cluster(0);
  for (std::size_t d = 0; d < cluster.config().primary_devices; ++d) {
    system.region->disaster_recovery().on_device_failure(0, d, 5.0);
  }
  EXPECT_TRUE(cluster.failed_over() ||
              cluster.live_device_count() > 0);
  std::size_t checked = 0;
  for (const workload::Flow& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kInternet) continue;
    if (system.region->controller().cluster_for(flow.vni) != 0u) continue;
    const auto result = system.region->process(packet_for_flow(flow));
    EXPECT_EQ(dataplane::path_label(result), "hardware-forwarded")
        << dataplane::to_string(result.drop_reason);
    if (++checked >= 10) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST(EndToEnd, WholeSimulationIsDeterministic) {
  SailfishSystem a = system_under_test();
  SailfishSystem b = system_under_test();
  const auto ra = a.region->simulate_interval(a.flows, 3e12, 7);
  const auto rb = b.region->simulate_interval(b.flows, 3e12, 7);
  EXPECT_EQ(ra.offered_pps, rb.offered_pps);
  EXPECT_EQ(ra.dropped_pps, rb.dropped_pps);
  EXPECT_EQ(ra.fallback_bps, rb.fallback_bps);
  EXPECT_EQ(ra.shard_pipe_bps[1], rb.shard_pipe_bps[1]);
}

TEST(EndToEnd, SnatRoundTripThroughRegion) {
  SailfishSystem system = system_under_test();
  const workload::Flow* internet_flow = nullptr;
  for (const workload::Flow& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kInternet) {
      internet_flow = &flow;
      break;
    }
  }
  ASSERT_NE(internet_flow, nullptr);
  const auto out =
      system.region->process(packet_for_flow(*internet_flow), 1.0);
  ASSERT_EQ(dataplane::path_label(out), "software-snat")
      << dataplane::to_string(out.drop_reason);
  // Response from the Internet peer returns through the same x86 node
  // and is re-encapsulated toward the VM's NC.
  auto& node = system.region->x86_node(0);
  bool found = false;
  for (std::size_t n = 0; n < system.region->x86_node_count(); ++n) {
    auto& candidate = system.region->x86_node(n);
    auto back = candidate.process_response(
        x86::SnatBinding{out.packet.inner.src.v4(),
                         out.packet.inner.src_port},
        internet_flow->tuple.dst, internet_flow->tuple.dst_port, 100, 2.0);
    if (back.has_value()) {
      EXPECT_EQ(back->inner.dst, internet_flow->tuple.src);
      found = true;
      break;
    }
  }
  (void)node;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sf
