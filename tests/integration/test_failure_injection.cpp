// Failure-injection properties over the whole region: under any sequence
// of device failures/recoveries that leaves at least one live device per
// cluster, forwarding stays correct (right NC, no false drops) and the
// consistency audit keeps passing. Parameterized over injection seeds.

#include <gtest/gtest.h>

#include "core/sailfish.hpp"
#include "workload/rng.hpp"

namespace sf {
namespace {

class FailureInjectionTest : public ::testing::TestWithParam<std::uint64_t> {
};

core::SailfishSystem make_system_under_test() {
  auto options = core::quickstart_options();
  options.region.controller.cluster_template.primary_devices = 3;
  options.region.controller.cluster_template.backup_devices = 3;
  options.flows.flow_count = 500;
  return core::make_system(options);
}

net::OverlayPacket packet_for(const workload::Flow& flow) {
  net::OverlayPacket pkt;
  pkt.vni = flow.vni;
  pkt.inner = flow.tuple;
  pkt.payload_size = 96;
  return pkt;
}

void verify_forwarding(core::SailfishSystem& system, int samples) {
  int checked = 0;
  for (const workload::Flow& flow : system.flows) {
    if (flow.scope == tables::RouteScope::kInternet) continue;
    const auto result = system.region->process(packet_for(flow));
    ASSERT_EQ(dataplane::path_label(result), "hardware-forwarded")
        << dataplane::to_string(result.drop_reason);
    ASSERT_EQ(result.packet.outer_dst_ip, net::IpAddr(flow.dst_nc));
    if (++checked >= samples) break;
  }
  ASSERT_GT(checked, 0);
}

TEST_P(FailureInjectionTest, ForwardingSurvivesChaoticFailures) {
  core::SailfishSystem system = make_system_under_test();
  workload::Rng rng(GetParam());
  auto& controller = system.region->controller();
  auto& recovery = system.region->disaster_recovery();

  // Track health so we never exceed what the design tolerates (some
  // device must serve each cluster — primaries or hot-standby backups).
  const std::size_t clusters = controller.cluster_count();
  std::vector<std::vector<bool>> down(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    down[c].resize(controller.cluster(c).device_count(), false);
  }

  for (int step = 0; step < 60; ++step) {
    const std::size_t c = rng.uniform(clusters);
    auto& cluster_down = down[c];
    const std::size_t d = rng.uniform(cluster_down.size());
    const std::size_t down_count = static_cast<std::size_t>(
        std::count(cluster_down.begin(), cluster_down.end(), true));
    if (!cluster_down[d] && down_count + 1 < cluster_down.size()) {
      recovery.on_device_failure(c, d, step);
      cluster_down[d] = true;
    } else if (cluster_down[d]) {
      recovery.on_device_recovery(c, d, step);
      cluster_down[d] = false;
    }
    if (step % 10 == 0) verify_forwarding(system, 15);
  }

  // Full recovery restores the primary serving set.
  for (std::size_t c = 0; c < clusters; ++c) {
    for (std::size_t d = 0; d < down[c].size(); ++d) {
      if (down[c][d]) recovery.on_device_recovery(c, d, 1000);
    }
    EXPECT_FALSE(controller.cluster(c).failed_over());
  }
  verify_forwarding(system, 40);

  // Tables never drifted through all the churn.
  for (std::size_t c = 0; c < clusters; ++c) {
    EXPECT_EQ(controller.check_consistency(c).missing_on_device, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjectionTest,
                         ::testing::Values(81, 82, 83));

}  // namespace
}  // namespace sf
