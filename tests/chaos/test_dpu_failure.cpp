// kDpuFailure — a DPU node goes dark mid-run: its placed elephants must
// fail over to x86 immediately, the run must converge with the node
// restored and serving again (re-promotion), and the whole report must
// replay byte-identically across interval-engine thread counts.

#include <gtest/gtest.h>

#include <string>

#include "chaos/injector.hpp"
#include "core/sailfish.hpp"
#include "dpu/xgw_dpu.hpp"

namespace sf::chaos {
namespace {

core::SailfishOptions tiered_options(bool with_dpu = true) {
  return core::overflow_options(4.0, with_dpu);
}

ChaosInjector::Config injector_config() {
  ChaosInjector::Config config;
  config.interval_bps = 1e11;
  config.interval_every = 4;
  config.settle_s = 30.0;
  return config;
}

ChaosSchedule scripted_dpu_failure() {
  ChaosEvent event;
  event.time = 4.0;  // after a couple of interval samples warm the placer
  event.kind = FaultKind::kDpuFailure;
  event.device = 0;
  event.duration = 4.0;
  ChaosSchedule schedule;
  schedule.add(event);
  return schedule;
}

TEST(ChaosDpuFailure, ElephantsFailOverAndRepromoteOnRecovery) {
  ASSERT_TRUE(sf::dpu::dpu_enabled());
  core::SailfishSystem system = core::make_system(tiered_options());
  ChaosInjector injector(*system.region, system.flows, injector_config());
  const ChaosReport report = injector.run(scripted_dpu_failure());

  ASSERT_EQ(report.events_applied, 1u);
  EXPECT_TRUE(report.converged()) << report.to_json();
  ASSERT_EQ(report.faults.size(), 1u);
  const FaultRecord& fault = report.faults[0];
  EXPECT_DOUBLE_EQ(fault.detected_at, 4.0);
  EXPECT_DOUBLE_EQ(fault.rerouted_at, 4.0);
  // Recovery needs the restore (t=8) plus a post-restore interval sample
  // showing the tier serving again.
  EXPECT_GE(fault.recovered_at, 8.0);

  // The sample series shows the dip and the re-promotion: the tier keeps
  // serving on the surviving node during the fault, and is back above its
  // single-node share after recovery.
  ASSERT_FALSE(report.dpu_samples.empty());
  double dpu_before = -1;
  double dpu_during = -1;
  double dpu_after = -1;
  for (const auto& sample : report.dpu_samples) {
    if (sample.time < 4.0) {
      dpu_before = sample.dpu_pps;
    } else if (sample.time < 8.0) {
      dpu_during = sample.dpu_pps;
    } else {
      if (dpu_after < 0) dpu_after = sample.dpu_pps;
    }
  }
  ASSERT_GE(dpu_before, 0.0);
  EXPECT_GT(dpu_before, 0.0);
  EXPECT_LT(dpu_during, dpu_before);  // node 0's placements are gone
  EXPECT_GT(dpu_after, 0.0);          // re-promoted after restore

  // Neither node may be left failed, and the JSON carries the conditional
  // dpu_samples section.
  for (std::size_t n = 0; n < system.region->dpu_node_count(); ++n) {
    EXPECT_FALSE(system.region->dpu_node(n).failed());
  }
  EXPECT_NE(report.to_json().find("\"dpu_samples\""), std::string::npos);
}

TEST(ChaosDpuFailure, ReplayIsByteIdenticalAcrossThreadCounts) {
  core::SailfishSystem one = core::make_system(tiered_options());
  core::SailfishSystem eight = core::make_system(tiered_options());
  one.region->set_interval_threads(1);
  eight.region->set_interval_threads(8);
  ChaosInjector injector_one(*one.region, one.flows, injector_config());
  ChaosInjector injector_eight(*eight.region, eight.flows,
                               injector_config());
  const ChaosReport a = injector_one.run(scripted_dpu_failure());
  const ChaosReport b = injector_eight.run(scripted_dpu_failure());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(injector_one.log().to_string(),
            injector_eight.log().to_string());
}

TEST(ChaosDpuFailure, RegionWithoutDpuTierSkipsGracefully) {
  core::SailfishSystem system = core::make_system(tiered_options(false));
  ChaosInjector injector(*system.region, system.flows, injector_config());
  const ChaosReport report = injector.run(scripted_dpu_failure());
  EXPECT_TRUE(report.converged()) << report.to_json();
  ASSERT_EQ(report.faults.size(), 1u);
  EXPECT_DOUBLE_EQ(report.faults[0].recovered_at, 4.0);  // retired at inject
  EXPECT_TRUE(report.dpu_samples.empty());
  EXPECT_EQ(report.to_json().find("\"dpu_samples\""), std::string::npos);
}

TEST(ChaosDpuFailure, RandomSchedulesDrawDpuFaultsOnlyWhenEnabled) {
  ChaosSchedule::RandomConfig shape;
  shape.events = 32;
  shape.horizon_s = 20.0;
  shape.dpu_faults = true;
  bool drew_dpu_fault = false;
  for (std::uint64_t seed = 1; seed <= 16 && !drew_dpu_fault; ++seed) {
    drew_dpu_fault = ChaosSchedule::random(seed, shape)
                         .to_string()
                         .find("dpu-failure") != std::string::npos;
  }
  EXPECT_TRUE(drew_dpu_fault);

  // And the face stays out of schedules that don't opt in.
  shape.dpu_faults = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_EQ(ChaosSchedule::random(seed, shape)
                  .to_string()
                  .find("dpu-failure"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace sf::chaos
