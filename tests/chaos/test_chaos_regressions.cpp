// The three failure-recovery regressions this harness was built to catch,
// each driven end to end through sf::chaos against a full region, plus
// the injector's own determinism contract (seeded schedules replay
// byte-identically at any interval-engine thread count).

#include "chaos/injector.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/sailfish.hpp"

namespace sf::chaos {
namespace {

core::SailfishOptions chaos_options() {
  core::SailfishOptions options = core::quickstart_options();
  options.region.recovery.ports_per_device = 4;
  options.region.recovery.cold_standby_pool = 0;
  options.region.recovery.min_live_fraction = 0.0;
  return options;
}

ChaosInjector::Config injector_config() {
  ChaosInjector::Config config;
  config.settle_s = 20.0;
  return config;
}

std::size_t count_events_containing(const cluster::DisasterRecovery& recovery,
                                    const std::string& needle) {
  std::size_t count = 0;
  for (const auto& event : recovery.events()) {
    if (event.description.find(needle) != std::string::npos) ++count;
  }
  return count;
}

// Satellite 1: recovery-side port hysteresis. Two error bursts with a
// single clean probe between them must produce exactly ONE isolate/
// recover cycle. Before the fix a lone clean observation re-admitted the
// port, so the second burst re-isolated it — the port oscillated in and
// out of the ECMP spread.
TEST(ChaosRegressions, FlappingPortIsolatesExactlyOnce) {
  core::SailfishSystem system = core::make_system(chaos_options());
  ChaosInjector injector(*system.region, system.flows, injector_config());

  ChaosSchedule schedule;
  schedule.add(ChaosEvent{0.0, FaultKind::kPortErrorBurst, 0, 0, 3, 3, 0,
                          1e-3});
  schedule.add(ChaosEvent{2.0, FaultKind::kPortErrorBurst, 0, 0, 3, 3, 0,
                          1e-3});
  const ChaosReport report = injector.run(schedule);

  EXPECT_TRUE(report.converged()) << report.to_json();
  const auto& recovery = system.region->disaster_recovery();
  EXPECT_EQ(count_events_containing(recovery, "port 3 isolated"), 1u);
  EXPECT_EQ(count_events_containing(recovery, "port 3 recovered"), 1u);
  EXPECT_GE(report.faults[0].time_to_detect(), 0.0);
  EXPECT_GT(report.faults[0].recovered_at, 0.0);
  EXPECT_TRUE(recovery.quiescent());
}

// Satellite 2: a cold standby replacing a dead device must not inherit
// the dead hardware's isolated-port ledger. Before the fix the stale
// count kept shaving the fresh device's reported capacity forever and
// quiescent() never returned true — the run ends with a leak.
TEST(ChaosRegressions, ColdStandbyReplacementLeavesNoStaleState) {
  core::SailfishOptions options = chaos_options();
  options.region.recovery.cold_standby_pool = 1;
  options.region.recovery.min_live_fraction = 0.9;
  core::SailfishSystem system = core::make_system(options);
  ChaosInjector injector(*system.region, system.flows, injector_config());

  ChaosSchedule schedule;
  // Keep port 2 erroring right up to the crash so its isolation is still
  // on the books when the standby takes the slot.
  schedule.add(ChaosEvent{0.0, FaultKind::kPortErrorBurst, 0, 0, 2, 6, 0,
                          1e-3});
  schedule.add(ChaosEvent{2.0, FaultKind::kDeviceCrash, 0, 0, 0, 0, 10.0,
                          1e-3});
  const ChaosReport report = injector.run(schedule);

  EXPECT_TRUE(report.converged()) << report.to_json();
  EXPECT_TRUE(report.faults[1].replaced);
  const auto& recovery = system.region->disaster_recovery();
  EXPECT_EQ(recovery.cold_standby_available(), 0u);
  EXPECT_EQ(recovery.isolated_port_count(0, 0), 0u);
  EXPECT_DOUBLE_EQ(recovery.device_capacity_fraction(0, 0), 1.0);
  EXPECT_TRUE(recovery.quiescent());
}

// Satellite 3: when every port of a device is lost, DisasterRecovery
// escalates to a node-level failure on its own. The HealthMonitor must
// adopt that state, or the clean heartbeats that follow are ignored and
// the device never rejoins the ECMP set — before the fix this run ended
// with the device still out and the report listing leaks.
TEST(ChaosRegressions, PortEscalationRecoversViaHeartbeats) {
  core::SailfishSystem system = core::make_system(chaos_options());
  ChaosInjector injector(*system.region, system.flows, injector_config());

  ChaosSchedule schedule;
  // Four of four ports die together: a cut trunk, not flaky optics.
  schedule.add(ChaosEvent{0.0, FaultKind::kLinkLoss, 0, 0, 0, 4, 0, 1e-3});
  const ChaosReport report = injector.run(schedule);

  EXPECT_TRUE(report.converged()) << report.to_json();
  EXPECT_TRUE(report.faults[0].escalated);
  EXPECT_GE(report.faults[0].time_to_detect(), 0.0);
  EXPECT_GE(report.faults[0].time_to_reroute(), 0.0);
  EXPECT_GT(report.faults[0].recovered_at, 0.0);
  const auto& cluster = system.region->controller().cluster(0);
  for (std::size_t d = 0; d < cluster.device_count(); ++d) {
    EXPECT_EQ(cluster.device_health(d), cluster::DeviceHealth::kHealthy);
  }
  EXPECT_TRUE(system.region->disaster_recovery().quiescent());
}

// Tentpole: a crashed device blackholes traffic until detection fails it
// out of the ECMP set; the report accounts for those packets and the
// convergence latencies line up with the health thresholds.
TEST(ChaosRegressions, CrashConvergenceMetricsAreMeasured) {
  core::SailfishSystem system = core::make_system(chaos_options());
  ChaosInjector injector(*system.region, system.flows, injector_config());

  ChaosSchedule schedule;
  schedule.add(ChaosEvent{1.0, FaultKind::kDeviceCrash, 0, 0, 0, 0, 6.0,
                          1e-3});
  const ChaosReport report = injector.run(schedule);

  EXPECT_TRUE(report.converged()) << report.to_json();
  const FaultRecord& fault = report.faults[0];
  // fail_after_missed=3 probes at 0.5s: detection lands at +1.0s.
  EXPECT_DOUBLE_EQ(fault.time_to_detect(), 1.0);
  EXPECT_DOUBLE_EQ(fault.time_to_reroute(), 1.0);
  EXPECT_GT(fault.recovered_at, fault.event.time + fault.event.duration);
  // Probes kept flowing into the dead device until it was failed out.
  EXPECT_GT(fault.blackholed, 0u);
  EXPECT_GT(report.probes_sent, 0u);
  EXPECT_GE(report.probe_drops, fault.blackholed);
}

// Control plane: an update-channel outage plus a provisioning storm must
// drain completely through the retry queue once the channel returns —
// nothing silently lost, devices consistent with desired state.
TEST(ChaosRegressions, ChannelOutageAndStormDrain) {
  core::SailfishSystem system = core::make_system(chaos_options());
  ChaosInjector injector(*system.region, system.flows, injector_config());

  ChaosSchedule schedule;
  schedule.add(ChaosEvent{0.0, FaultKind::kChannelOutage, 0, 0, 0, 0, 3.0,
                          1e-3});
  schedule.add(ChaosEvent{1.0, FaultKind::kUpdateStorm, 0, 0, 0, 6, 0,
                          1e-3});
  const ChaosReport report = injector.run(schedule);

  EXPECT_TRUE(report.converged()) << report.to_json();
  const auto& controller = system.region->controller();
  EXPECT_EQ(controller.deferred_op_count(), 0u);
  // 6 storm VPCs x (1 route + 2 mappings) all landed eventually.
  EXPECT_GE(controller.retry_stats().applied, 18u);
  EXPECT_EQ(controller.retry_stats().gave_up, 0u);
}

// Mid-upgrade failure: the roll aborts, the fleet keeps serving on the
// old version, and nothing leaks.
TEST(ChaosRegressions, MidUpgradeFailureAbortsCleanly) {
  core::SailfishSystem system = core::make_system(chaos_options());
  ChaosInjector injector(*system.region, system.flows, injector_config());

  ChaosSchedule schedule;
  schedule.add(ChaosEvent{0.5, FaultKind::kMidUpgradeFailure, 0, 1, 0, 0, 0,
                          1e-3});
  const ChaosReport report = injector.run(schedule);

  EXPECT_TRUE(report.converged()) << report.to_json();
  EXPECT_EQ(injector.log().count("upgrade"), 1u);
}

// Determinism contract: a seeded schedule replays byte-identically —
// same event log, same convergence-metrics JSON — whether the interval
// engine runs on 1 thread or 8.
TEST(ChaosDeterminism, SeededRunByteIdenticalAcrossThreadCounts) {
  ChaosSchedule::RandomConfig random;
  random.events = 8;
  random.horizon_s = 20.0;
  random.devices_per_cluster = 4;  // primaries + backups in quickstart
  random.ports_per_device = 4;
  const ChaosSchedule schedule = ChaosSchedule::random(0x5eedULL, random);

  ChaosInjector::Config config = injector_config();
  config.interval_bps = 1e11;
  config.interval_every = 4;

  core::SailfishSystem one = core::make_system(chaos_options());
  core::SailfishSystem eight = core::make_system(chaos_options());
  one.region->set_interval_threads(1);
  eight.region->set_interval_threads(8);

  ChaosInjector injector_one(*one.region, one.flows, config);
  ChaosInjector injector_eight(*eight.region, eight.flows, config);
  const ChaosReport report_one = injector_one.run(schedule);
  const ChaosReport report_eight = injector_eight.run(schedule);

  EXPECT_EQ(injector_one.log().to_string(), injector_eight.log().to_string());
  EXPECT_EQ(injector_one.log().fingerprint(),
            injector_eight.log().fingerprint());
  EXPECT_EQ(report_one.to_json(), report_eight.to_json());
  EXPECT_FALSE(report_one.drop_rate_series.empty());
}

// And the same (seed, region) pair re-run from scratch reproduces itself.
TEST(ChaosDeterminism, SameSeedSameRun) {
  ChaosSchedule::RandomConfig random;
  random.events = 6;
  random.horizon_s = 15.0;
  random.devices_per_cluster = 4;
  random.ports_per_device = 4;

  std::string first;
  for (int round = 0; round < 2; ++round) {
    core::SailfishSystem system = core::make_system(chaos_options());
    ChaosInjector injector(*system.region, system.flows, injector_config());
    const ChaosReport report =
        injector.run(ChaosSchedule::random(0xabcdULL, random));
    const std::string rendered =
        report.to_json() + injector.log().to_string();
    if (round == 0) {
      first = rendered;
    } else {
      EXPECT_EQ(rendered, first);
    }
  }
}

}  // namespace
}  // namespace sf::chaos
