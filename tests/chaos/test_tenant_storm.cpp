// kTenantStorm end to end: one tenant floods a multiple of the region
// rate, the guard walks it down the degradation ladder tier by tier, the
// other tenants' drop rate stays bounded the whole time, and the tenant
// recovers to full service after the flood — all replayable byte for byte
// from the schedule at any interval-engine thread count.

#include "chaos/injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/sailfish.hpp"
#include "guard/guard.hpp"

namespace sf::chaos {
namespace {

core::SailfishOptions storm_options() {
  core::SailfishOptions options = core::quickstart_options();
  options.region.enable_guard = true;
  options.region.guard.escalate_after = 1;
  options.region.guard.deescalate_after = 2;
  options.region.enable_punt_path = true;
  return options;
}

ChaosInjector::Config storm_injector_config() {
  ChaosInjector::Config config;
  config.settle_s = 30.0;
  config.interval_bps = 1e11;
  config.interval_every = 4;  // an interval sample every 2s of probe time
  return config;
}

ChaosEvent storm_event(double time, double magnitude, double duration) {
  ChaosEvent event;
  event.time = time;
  event.kind = FaultKind::kTenantStorm;
  event.count = 16;           // Zipf-skewed flood flows
  event.duration = duration;  // seconds
  event.error_rate = magnitude;  // x region rate
  return event;
}

TEST(ChaosTenantStorm, StormTenantDegradesTierByTierAndVictimsStayBounded) {
  core::SailfishSystem system = core::make_system(storm_options());
  ChaosInjector injector(*system.region, system.flows,
                         storm_injector_config());

  ChaosSchedule schedule;
  schedule.add(storm_event(2.0, /*magnitude=*/4.0, /*duration=*/8.0));
  const ChaosReport report = injector.run(schedule);

  EXPECT_TRUE(report.converged()) << report.to_json();
  ASSERT_FALSE(report.storm_samples.empty());

  // The ladder descends monotonically while the flood lasts, and the
  // storm reaches the shed-tenant tier.
  int max_tier = 0;
  for (std::size_t i = 0; i < report.storm_samples.size(); ++i) {
    const auto& sample = report.storm_samples[i];
    EXPECT_GT(sample.storm_offered_pps, 0.0);
    if (i > 0) EXPECT_GE(sample.tier, report.storm_samples[i - 1].tier);
    max_tier = std::max(max_tier, sample.tier);
  }
  EXPECT_EQ(max_tier, 2);
  // Once degraded past full service, the guard sheds storm traffic.
  EXPECT_GT(report.storm_samples.back().storm_shed_pps, 0.0);

  // Isolation: the non-storm population's drop rate stays under 1% at
  // every sample, even with the flood at 4x the region's rate.
  EXPECT_LT(report.peak_victim_drop_rate, 0.01) << report.to_json();

  // The fault record captured the full lifecycle: armed at the event,
  // rerouted when the tenant first degraded, recovered after the flood
  // when the tenant walked back to full service.
  ASSERT_EQ(report.faults.size(), 1u);
  const FaultRecord& fault = report.faults[0];
  EXPECT_DOUBLE_EQ(fault.detected_at, 2.0);
  EXPECT_GE(fault.rerouted_at, 2.0);
  EXPECT_GT(fault.recovered_at, 10.0);  // strictly after the flood end
  const net::Vni storm_vni = report.storm_samples.front().vni;
  EXPECT_EQ(system.region->tenant_guard()->tier_of(storm_vni),
            guard::Tier::kFull);
  EXPECT_EQ(injector.log().count("tenant-storm"), 1u);
}

TEST(ChaosTenantStorm, RegionWithoutGuardSkipsTheStormCleanly) {
  core::SailfishOptions options = core::quickstart_options();  // no guard
  core::SailfishSystem system = core::make_system(options);
  ChaosInjector injector(*system.region, system.flows,
                         storm_injector_config());

  ChaosSchedule schedule;
  schedule.add(storm_event(1.0, 4.0, 4.0));
  const ChaosReport report = injector.run(schedule);

  EXPECT_TRUE(report.converged()) << report.to_json();
  EXPECT_TRUE(report.storm_samples.empty());
  EXPECT_DOUBLE_EQ(report.peak_victim_drop_rate, 0.0);
  ASSERT_EQ(report.faults.size(), 1u);
  EXPECT_DOUBLE_EQ(report.faults[0].recovered_at,
                   report.faults[0].detected_at);
  // The JSON carries no storm section for storm-less runs.
  EXPECT_EQ(report.to_json().find("tenant_storms"), std::string::npos);
}

TEST(ChaosTenantStorm, ScriptedStormByteIdenticalAcrossThreadCounts) {
  ChaosSchedule schedule;
  schedule.add(storm_event(2.0, 3.0, 6.0));

  core::SailfishSystem one = core::make_system(storm_options());
  core::SailfishSystem eight = core::make_system(storm_options());
  one.region->set_interval_threads(1);
  eight.region->set_interval_threads(8);

  ChaosInjector injector_one(*one.region, one.flows, storm_injector_config());
  ChaosInjector injector_eight(*eight.region, eight.flows,
                               storm_injector_config());
  const ChaosReport report_one = injector_one.run(schedule);
  const ChaosReport report_eight = injector_eight.run(schedule);

  EXPECT_EQ(report_one.to_json(), report_eight.to_json());
  EXPECT_EQ(injector_one.log().to_string(), injector_eight.log().to_string());
  EXPECT_FALSE(report_one.storm_samples.empty());
}

TEST(ChaosTenantStorm, SeededStormScheduleReplaysItself) {
  // Find a seed whose random schedule actually draws a tenant storm
  // (opt-in face), then replay it twice on fresh regions.
  ChaosSchedule::RandomConfig shape;
  shape.events = 10;
  shape.horizon_s = 12.0;
  shape.devices_per_cluster = 4;
  shape.ports_per_device = 4;
  shape.tenant_storms = true;

  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate <= 64; ++candidate) {
    const ChaosSchedule probe = ChaosSchedule::random(candidate, shape);
    if (probe.to_string().find("tenant-storm") != std::string::npos) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed in 1..64 drew a tenant storm";

  std::string first;
  for (int round = 0; round < 2; ++round) {
    core::SailfishSystem system = core::make_system(storm_options());
    ChaosInjector injector(*system.region, system.flows,
                           storm_injector_config());
    const ChaosReport report =
        injector.run(ChaosSchedule::random(seed, shape));
    EXPECT_TRUE(report.converged()) << report.to_json();
    const std::string rendered = report.to_json() + injector.log().to_string();
    if (round == 0) {
      first = rendered;
    } else {
      EXPECT_EQ(rendered, first);
    }
  }
}

TEST(ChaosTenantStorm, RandomSchedulesGateStormsBehindOptIn) {
  ChaosSchedule::RandomConfig off;
  off.events = 80;
  for (const ChaosEvent& event : ChaosSchedule::random(9, off).events()) {
    EXPECT_NE(event.kind, FaultKind::kTenantStorm);
  }

  ChaosSchedule::RandomConfig on = off;
  on.tenant_storms = true;
  std::size_t storms = 0;
  for (const ChaosEvent& event : ChaosSchedule::random(9, on).events()) {
    if (event.kind != FaultKind::kTenantStorm) continue;
    ++storms;
    EXPECT_GE(event.count, 16u);
    EXPECT_LT(event.count, 32u);
    EXPECT_GE(event.duration, 3.0);
    EXPECT_LT(event.duration, 8.0);
    EXPECT_GE(event.error_rate, 2.0);
    EXPECT_LT(event.error_rate, 6.0);
  }
  EXPECT_GT(storms, 0u);
}

}  // namespace
}  // namespace sf::chaos
