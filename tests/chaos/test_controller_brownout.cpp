// kControllerBrownout — the update channel stays nominally up but refuses
// every attempt, so a configured circuit breaker must walk the whole
// ladder: consecutive refusals trip it open, pushes arriving while open
// short-circuit onto the retry queue, the half-open probe re-opens against
// the still-degraded channel, and the first post-brownout probe closes it
// and drains the queue. The chaos layer must track the transitions in the
// report, and the new schedule face must stay out of pre-existing seeds.

#include <gtest/gtest.h>

#include <string>

#include "chaos/injector.hpp"
#include "cluster/controller.hpp"
#include "core/sailfish.hpp"

namespace sf::chaos {
namespace {

using cluster::Controller;
using dataplane::TableOp;
using dataplane::TableOpStatus;
using guard::CircuitBreaker;
using tables::RouteScope;
using tables::VxlanRouteAction;

// ---------------------------------------------------------------------------
// Direct controller ladder: the degraded channel (unlike a hard outage,
// covered by test_controller_breaker.cpp) keeps attempting and refusing.

workload::VpcRecord two_subnet_vpc(net::Vni vni) {
  workload::VpcRecord vpc;
  vpc.vni = vni;
  for (std::uint8_t s = 0; s < 2; ++s) {
    vpc.routes.push_back(workload::RouteRecord{
        net::Ipv4Prefix(net::Ipv4Addr(10, 50, s, 0), 24),
        VxlanRouteAction{RouteScope::kLocal, 0, {}}});
  }
  return vpc;
}

net::IpPrefix extra_subnet() {
  return net::Ipv4Prefix(net::Ipv4Addr(10, 50, 9, 0), 24);
}

TEST(ControllerBrownout, DegradedChannelWalksTheBreakerLadder) {
  Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 1;
  config.breaker.trip_after = 2;
  config.breaker.open_cooldown_s = 5.0;
  Controller controller(config);
  ASSERT_TRUE(controller.add_vpc(two_subnet_vpc(100)));
  ASSERT_NE(controller.breaker(), nullptr);

  // Brownout: the channel reports up but refuses every attempt. Two
  // refused direct installs trip the breaker.
  controller.set_update_channel_degraded(true);
  EXPECT_TRUE(controller.update_channel_degraded());
  EXPECT_EQ(controller.install_route(100, extra_subnet(),
                                     VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.breaker()->stats().trips, 0u);
  EXPECT_EQ(controller.install_route(100, extra_subnet(),
                                     VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.breaker()->stats().trips, 1u);
  EXPECT_EQ(controller.breaker()->state(0.0), CircuitBreaker::State::kOpen);

  // While open, a push parks without burning a channel attempt.
  TableOp op;
  op.kind = TableOp::Kind::kAddRoute;
  op.vni = 100;
  op.prefix = extra_subnet();
  op.route_action = VxlanRouteAction{RouteScope::kLocal, 0, {}};
  EXPECT_EQ(controller.push_op(op), TableOpStatus::kRateLimited);
  EXPECT_EQ(controller.deferred_op_count(), 1u);
  EXPECT_EQ(controller.breaker()->stats().short_circuited, 1u);
  EXPECT_EQ(controller.advance_clock(1.0), 0u);  // still open: no attempts

  // Cooldown elapses with the brownout still on: the half-open probe is
  // refused (the degraded channel, not the token bucket) and re-opens.
  EXPECT_EQ(controller.breaker()->state(5.0),
            CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(controller.advance_clock(5.0), 0u);
  EXPECT_EQ(controller.breaker()->stats().reopens, 1u);
  EXPECT_EQ(controller.breaker()->state(9.9), CircuitBreaker::State::kOpen);
  EXPECT_EQ(controller.deferred_op_count(), 1u);

  // Brownout lifts: the next probe succeeds, the breaker closes, and the
  // parked op finally lands on the device.
  controller.set_update_channel_degraded(false);
  EXPECT_EQ(controller.advance_clock(10.0), 1u);
  EXPECT_EQ(controller.breaker()->state(10.0),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(controller.breaker()->stats().closes, 1u);
  EXPECT_EQ(controller.deferred_op_count(), 0u);
  EXPECT_EQ(controller.cluster(0).route_count(), 3u);
}

// ---------------------------------------------------------------------------
// Chaos-layer integration: a scripted brownout against a full region.

core::SailfishOptions breaker_region_options(unsigned trip_after) {
  core::SailfishOptions options = core::quickstart_options();
  options.region.controller.breaker.trip_after = trip_after;
  options.region.controller.breaker.open_cooldown_s = 2.0;
  return options;
}

ChaosSchedule scripted_brownouts() {
  // Two overlapping brownout windows (both lift at t=10): the second
  // event's provisioning wave arrives while the breaker is already open,
  // so its pushes must short-circuit.
  ChaosEvent first;
  first.time = 2.0;
  first.kind = FaultKind::kControllerBrownout;
  first.count = 4;
  first.duration = 8.0;
  ChaosEvent second = first;
  second.time = 4.0;
  second.duration = 6.0;
  ChaosSchedule schedule;
  schedule.add(first);
  schedule.add(second);
  return schedule;
}

TEST(ControllerBrownout, InjectorTracksTransitionsAndConverges) {
  core::SailfishSystem system =
      core::make_system(breaker_region_options(/*trip_after=*/2));
  ChaosInjector injector(*system.region, system.flows, ChaosInjector::Config{});
  const ChaosReport report = injector.run(scripted_brownouts());

  EXPECT_EQ(report.events_applied, 2u);
  EXPECT_TRUE(report.converged()) << report.to_json();
  ASSERT_TRUE(report.breaker_tracked);
  EXPECT_GE(report.breaker_trips, 1u);
  EXPECT_GE(report.breaker_closes, 1u);
  EXPECT_GE(report.breaker_short_circuited, 1u);
  ASSERT_FALSE(report.breaker_transitions.empty());
  EXPECT_EQ(report.breaker_transitions.front().second, "open");
  EXPECT_EQ(report.breaker_transitions.back().second, "close");
  // The breaker can only close after the brownout lifts at t=10.
  EXPECT_GE(report.breaker_transitions.back().first, 10.0);
  for (const FaultRecord& fault : report.faults) {
    EXPECT_GE(fault.recovered_at, 10.0) << report.to_json();
  }
  // The channel and breaker must be left clean.
  EXPECT_FALSE(system.region->controller().update_channel_degraded());
  EXPECT_EQ(system.region->controller().deferred_op_count(), 0u);

  // The JSON carries the conditional breaker section.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"breaker\""), std::string::npos);
  EXPECT_NE(json.find("\"breaker_transitions\""), std::string::npos);
}

TEST(ControllerBrownout, InjectorReplayIsDeterministic) {
  core::SailfishSystem a =
      core::make_system(breaker_region_options(/*trip_after=*/2));
  core::SailfishSystem b =
      core::make_system(breaker_region_options(/*trip_after=*/2));
  ChaosInjector injector_a(*a.region, a.flows, ChaosInjector::Config{});
  ChaosInjector injector_b(*b.region, b.flows, ChaosInjector::Config{});
  const ChaosReport ra = injector_a.run(scripted_brownouts());
  const ChaosReport rb = injector_b.run(scripted_brownouts());
  EXPECT_EQ(ra.to_json(), rb.to_json());
  EXPECT_EQ(injector_a.log().to_string(), injector_b.log().to_string());
}

TEST(ControllerBrownout, BreakerlessControllerRidesTheRetryQueue) {
  // No breaker configured: the wave piles onto the retry queue, the
  // brownout lifts, and the queue drains — converged, and the report's
  // JSON must render without the breaker section (byte-stability for
  // pre-breaker consumers).
  core::SailfishSystem system = core::make_system(core::quickstart_options());
  ASSERT_EQ(system.region->controller().breaker(), nullptr);
  ChaosInjector injector(*system.region, system.flows, ChaosInjector::Config{});
  const ChaosReport report = injector.run(scripted_brownouts());
  EXPECT_TRUE(report.converged()) << report.to_json();
  EXPECT_FALSE(report.breaker_tracked);
  EXPECT_EQ(system.region->controller().deferred_op_count(), 0u);
  EXPECT_EQ(report.to_json().find("\"breaker\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Schedule face: drawn only on opt-in, so pre-existing seeds stay
// byte-identical.

TEST(ControllerBrownout, FaultKindRendersStably) {
  EXPECT_EQ(to_string(FaultKind::kControllerBrownout), "controller-brownout");
  ChaosEvent event;
  event.time = 3.5;
  event.kind = FaultKind::kControllerBrownout;
  event.duration = 8.0;
  EXPECT_NE(event.to_string().find("controller-brownout"), std::string::npos);
}

TEST(ControllerBrownout, RandomSchedulesGateTheBrownoutFace) {
  ChaosSchedule::RandomConfig shape;
  shape.events = 32;
  shape.horizon_s = 20.0;
  shape.controller_brownouts = true;
  bool drew_brownout = false;
  for (std::uint64_t seed = 1; seed <= 16 && !drew_brownout; ++seed) {
    drew_brownout = ChaosSchedule::random(seed, shape)
                        .to_string()
                        .find("controller-brownout") != std::string::npos;
  }
  EXPECT_TRUE(drew_brownout);

  // And schedules that don't opt in — every pre-existing (seed, config)
  // pair — keep drawing byte-identical events without the face.
  shape.controller_brownouts = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_EQ(ChaosSchedule::random(seed, shape)
                  .to_string()
                  .find("controller-brownout"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace sf::chaos
