// The flow cache under fire: a fixed-seed chaos schedule replayed against
// two identically built regions — flow caches ON in one, OFF in the other
// — must produce byte-identical reports and event logs. Health reroutes,
// cold-standby swaps and provisioning storms all bump the caches' epochs,
// so a cached gateway can never serve a verdict its uncached twin would
// not compute.

#include "chaos/injector.hpp"

#include <gtest/gtest.h>

#include "core/sailfish.hpp"
#include "telemetry/export.hpp"

namespace sf::chaos {
namespace {

core::SailfishOptions options_with_cache(std::size_t cache_entries) {
  core::SailfishOptions options = core::quickstart_options();
  options.region.recovery.ports_per_device = 4;
  options.region.recovery.cold_standby_pool = 1;
  options.region.recovery.min_live_fraction = 0.9;
  options.region.controller.cluster_template.device.flow_cache_entries =
      cache_entries;
  options.region.x86_template.flow_cache_entries = cache_entries;
  return options;
}

ChaosInjector::Config injector_config() {
  ChaosInjector::Config config;
  config.settle_s = 20.0;
  config.interval_bps = 5e12;
  return config;
}

TEST(ChaosCacheIdentity, FixedSeedScheduleReplaysIdenticallyCacheOnOrOff) {
  const ChaosSchedule::RandomConfig shape{
      /*horizon_s=*/30.0, /*events=*/6, /*clusters=*/1,
      /*devices_per_cluster=*/4, /*ports_per_device=*/4,
      /*control_plane_faults=*/true, /*upgrade_faults=*/true};
  const ChaosSchedule schedule = ChaosSchedule::random(20260807, shape);

  auto run = [&](std::size_t cache_entries) {
    core::SailfishSystem system =
        core::make_system(options_with_cache(cache_entries));
    ChaosInjector injector(*system.region, system.flows, injector_config());
    const ChaosReport report = injector.run(schedule);
    return std::pair<std::string, std::string>(report.to_json(),
                                               injector.log().to_string());
  };

  const auto cached = run(/*cache_entries=*/1 << 12);
  const auto uncached = run(/*cache_entries=*/0);
  EXPECT_EQ(cached.first, uncached.first);    // report JSON, byte for byte
  EXPECT_EQ(cached.second, uncached.second);  // full replay log
}

TEST(ChaosCacheIdentity, RegionTelemetryMatchesAfterScriptedFailover) {
  // A scripted device crash + recovery: afterwards the cached and
  // uncached regions' merged registries must render identically.
  ChaosSchedule schedule;
  schedule.add(ChaosEvent{/*time=*/1.0, FaultKind::kDeviceCrash,
                          /*cluster=*/0, /*device=*/0, /*port=*/0,
                          /*count=*/0, /*duration=*/5.0,
                          /*error_rate=*/0});

  auto run = [&](std::size_t cache_entries) {
    core::SailfishSystem system =
        core::make_system(options_with_cache(cache_entries));
    ChaosInjector injector(*system.region, system.flows, injector_config());
    const ChaosReport report = injector.run(schedule);
    EXPECT_TRUE(report.converged()) << report.to_json();
    return telemetry::to_json(system.region->telemetry_snapshot());
  };

  EXPECT_EQ(run(1 << 12), run(0));
}

}  // namespace
}  // namespace sf::chaos
