#include "chaos/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sf::chaos {
namespace {

TEST(ChaosSchedule, SameSeedSameSchedule) {
  ChaosSchedule::RandomConfig config;
  config.events = 20;
  const ChaosSchedule a = ChaosSchedule::random(0xfeedULL, config);
  const ChaosSchedule b = ChaosSchedule::random(0xfeedULL, config);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.seed(), 0xfeedULL);
}

TEST(ChaosSchedule, DifferentSeedsDiffer) {
  ChaosSchedule::RandomConfig config;
  config.events = 20;
  const ChaosSchedule a = ChaosSchedule::random(1, config);
  const ChaosSchedule b = ChaosSchedule::random(2, config);
  EXPECT_NE(a.to_string(), b.to_string());
}

TEST(ChaosSchedule, EventsSortedAndBounded) {
  ChaosSchedule::RandomConfig config;
  config.events = 50;
  config.clusters = 2;
  config.devices_per_cluster = 3;
  config.ports_per_device = 8;
  const ChaosSchedule schedule = ChaosSchedule::random(7, config);
  ASSERT_EQ(schedule.size(), 50u);
  double last = 0;
  for (const ChaosEvent& event : schedule.events()) {
    EXPECT_GE(event.time, last);
    last = event.time;
    EXPECT_LE(event.time, config.horizon_s);
    EXPECT_LT(event.cluster, config.clusters);
    EXPECT_LT(event.device, config.devices_per_cluster);
    EXPECT_LT(event.port, config.ports_per_device);
    // Times are quantized to the probe tick so replays observe fault
    // fronts in a fixed order.
    EXPECT_DOUBLE_EQ(event.time, 0.5 * std::round(event.time / 0.5));
  }
}

TEST(ChaosSchedule, ControlPlaneFaultsCanBeDisabled) {
  ChaosSchedule::RandomConfig config;
  config.events = 60;
  config.control_plane_faults = false;
  config.upgrade_faults = false;
  const ChaosSchedule schedule = ChaosSchedule::random(11, config);
  for (const ChaosEvent& event : schedule.events()) {
    EXPECT_NE(event.kind, FaultKind::kChannelOutage);
    EXPECT_NE(event.kind, FaultKind::kUpdateStorm);
    EXPECT_NE(event.kind, FaultKind::kMidUpgradeFailure);
  }
}

TEST(ChaosSchedule, AddKeepsTimeOrderStableForTies) {
  ChaosSchedule schedule;
  ChaosEvent a{2.0, FaultKind::kDeviceCrash, 0, 0, 0, 0, 1.0, 1e-3};
  ChaosEvent b{1.0, FaultKind::kPortErrorBurst, 0, 1, 2, 3, 0, 1e-3};
  ChaosEvent c{2.0, FaultKind::kChannelOutage, 0, 2, 0, 0, 4.0, 1e-3};
  schedule.add(a).add(b).add(c);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule.events()[0].kind, FaultKind::kPortErrorBurst);
  // a arrived before c with the same time: stable order keeps a first.
  EXPECT_EQ(schedule.events()[1].kind, FaultKind::kDeviceCrash);
  EXPECT_EQ(schedule.events()[2].kind, FaultKind::kChannelOutage);
}

TEST(ChaosSchedule, HorizonCoversEventTails) {
  ChaosSchedule schedule;
  schedule.add(ChaosEvent{1.0, FaultKind::kDeviceCrash, 0, 0, 0, 0, 6.0,
                          1e-3});
  schedule.add(ChaosEvent{2.0, FaultKind::kDeviceFlap, 0, 1, 0, 3, 1.0,
                          1e-3});
  // Crash ends at 7.0; the flap's three 1s-down/1s-up cycles end at 8.0.
  EXPECT_DOUBLE_EQ(schedule.horizon(), 8.0);
}

TEST(ChaosEvent, RenderingIsStable) {
  ChaosEvent event{1.5, FaultKind::kLinkLoss, 0, 2, 4, 8, 0.0, 1e-3};
  EXPECT_EQ(event.to_string(),
            "t=1.500 link-loss cluster=0 device=2 port=4 count=8 "
            "duration=0.000 error_rate=1.000e-03");
}

}  // namespace
}  // namespace sf::chaos
