#include "dataplane/verdict.hpp"

#include <gtest/gtest.h>

namespace sf::dataplane {
namespace {

TEST(Verdict, DefaultIsDropWithoutReason) {
  Verdict verdict;
  EXPECT_EQ(verdict.action, Action::kDrop);
  EXPECT_EQ(verdict.drop_reason, DropReason::kNone);
  EXPECT_FALSE(verdict.software_path);
  EXPECT_TRUE(verdict.dropped());
  EXPECT_FALSE(verdict.forwarded());
}

TEST(Verdict, DropFactoryCarriesReason) {
  const Verdict verdict = Verdict::drop(DropReason::kAclDeny);
  EXPECT_TRUE(verdict.dropped());
  EXPECT_EQ(verdict.drop_reason, DropReason::kAclDeny);
}

TEST(Verdict, ForwardedCoversEveryDeliveringAction) {
  for (Action action : {Action::kForwardToNc, Action::kForwardTunnel,
                        Action::kSnatToInternet}) {
    Verdict verdict;
    verdict.action = action;
    EXPECT_TRUE(verdict.forwarded()) << to_string(action);
    EXPECT_FALSE(verdict.dropped());
  }
  Verdict fallback;
  fallback.action = Action::kFallbackToX86;
  EXPECT_FALSE(fallback.forwarded());
  EXPECT_FALSE(fallback.dropped());
}

TEST(Verdict, ActionNamesAreStable) {
  EXPECT_EQ(to_string(Action::kForwardToNc), "forward-to-nc");
  EXPECT_EQ(to_string(Action::kForwardTunnel), "forward-tunnel");
  EXPECT_EQ(to_string(Action::kFallbackToX86), "fallback-to-x86");
  EXPECT_EQ(to_string(Action::kSnatToInternet), "snat-to-internet");
  EXPECT_EQ(to_string(Action::kDrop), "drop");
}

TEST(Verdict, DropReasonNamesKeepTheLegacyStrings) {
  // These strings appear in traces and operator tooling; renames here are
  // user-visible breaks.
  EXPECT_EQ(to_string(DropReason::kAclDeny), "acl deny");
  EXPECT_EQ(to_string(DropReason::kNoRoute), "no route");
  EXPECT_EQ(to_string(DropReason::kNoVmNcMapping), "no VM-NC mapping");
  EXPECT_EQ(to_string(DropReason::kPeerResolutionLoop),
            "peer VNI resolution loop");
  EXPECT_EQ(to_string(DropReason::kSnatPoolExhausted),
            "SNAT pool exhausted");
  EXPECT_EQ(to_string(DropReason::kFallbackRateLimited),
            "fallback rate limited");
  EXPECT_EQ(to_string(DropReason::kUnknownVni),
            "VNI not assigned to any cluster");
  EXPECT_EQ(to_string(DropReason::kNoLiveDevice),
            "cluster has no live devices");
  EXPECT_EQ(to_string(DropReason::kTenantShed),
            "tenant shed by overload guard");
  EXPECT_EQ(to_string(DropReason::kTenantNewFlowShed),
            "tenant new-flow setup shed");
  EXPECT_EQ(to_string(DropReason::kPuntQueueFull), "punt queue full");
  EXPECT_EQ(to_string(DropReason::kSnatPortBlockExhausted),
            "SNAT port block exhausted for external IP");
}

TEST(Verdict, PathLabelDistinguishesHardwareAndSoftware) {
  Verdict verdict;
  verdict.action = Action::kForwardToNc;
  EXPECT_EQ(path_label(verdict), "hardware-forwarded");
  verdict.software_path = true;
  EXPECT_EQ(path_label(verdict), "software-forwarded");

  verdict.software_path = false;
  verdict.action = Action::kForwardTunnel;
  EXPECT_EQ(path_label(verdict), "hardware-tunnel");

  verdict.action = Action::kSnatToInternet;
  EXPECT_EQ(path_label(verdict), "software-snat");

  verdict.action = Action::kDrop;
  EXPECT_EQ(path_label(verdict), "dropped");
}

}  // namespace
}  // namespace sf::dataplane
