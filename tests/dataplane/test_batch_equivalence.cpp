// Every Gateway implementation must keep process_batch() equivalent to
// looping process(): same verdicts, same telemetry. These tests hold
// XGW-H, XGW-x86 and the cluster wrapper to that contract through the
// base-class interface alone.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "dataplane/gateway.hpp"
#include "x86/xgw_x86.hpp"
#include "xgwh/xgwh.hpp"

namespace sf::dataplane {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;

template <typename Programmer>
void install_tables(Programmer& gw) {
  gw.install_route(7, IpPrefix::must_parse("10.7.0.0/16"),
                   {RouteScope::kLocal, 0, {}});
  gw.install_route(7, IpPrefix::must_parse("0.0.0.0/0"),
                   {RouteScope::kInternet, 0, {}});
  gw.install_mapping({7, IpAddr::must_parse("10.7.0.2")},
                     {net::Ipv4Addr(172, 16, 0, 1)});
}

std::vector<net::OverlayPacket> mixed_batch() {
  std::vector<net::OverlayPacket> packets;
  const char* dsts[] = {"10.7.0.2",       // local hit
                        "10.7.0.99",      // mapping miss
                        "93.184.216.34",  // internet
                        "10.7.0.2"};      // local hit again
  std::uint16_t port = 40000;
  for (const char* dst : dsts) {
    net::OverlayPacket pkt;
    pkt.vni = 7;
    pkt.inner.src = IpAddr::must_parse("10.7.0.3");
    pkt.inner.dst = IpAddr::must_parse(dst);
    pkt.inner.proto = 6;
    pkt.inner.src_port = port++;
    pkt.inner.dst_port = 443;
    pkt.payload_size = 200;
    packets.push_back(pkt);
  }
  // An unknown tenant rides along.
  net::OverlayPacket stray = packets.front();
  stray.vni = 999;
  packets.push_back(stray);
  return packets;
}

void expect_equivalent(const Verdict& batch, const Verdict& single,
                       std::size_t index) {
  EXPECT_EQ(batch.action, single.action) << index;
  EXPECT_EQ(batch.drop_reason, single.drop_reason) << index;
  EXPECT_EQ(batch.software_path, single.software_path) << index;
  EXPECT_EQ(batch.latency_us, single.latency_us) << index;
  EXPECT_EQ(batch.packet.outer_dst_ip, single.packet.outer_dst_ip) << index;
}

// Runs the batch through `batch_gw` and the same packets one by one
// through `single_gw` (two identically-programmed instances so telemetry
// comparisons stay clean).
void check_gateway_pair(Gateway& batch_gw, Gateway& single_gw) {
  const auto packets = mixed_batch();
  const auto batch = batch_gw.process_batch(packets, /*now=*/1.0);
  ASSERT_EQ(batch.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const Verdict single = single_gw.process(packets[i], /*now=*/1.0);
    expect_equivalent(batch[i], single, i);
  }
}

TEST(BatchEquivalence, XgwH) {
  xgwh::XgwH a{xgwh::XgwH::Config{}};
  xgwh::XgwH b{xgwh::XgwH::Config{}};
  install_tables(a);
  install_tables(b);
  check_gateway_pair(a, b);
  EXPECT_EQ(a.telemetry().packets_in, b.telemetry().packets_in);
  EXPECT_EQ(a.telemetry().packets_forwarded, b.telemetry().packets_forwarded);
  EXPECT_EQ(a.telemetry().packets_fallback, b.telemetry().packets_fallback);
}

TEST(BatchEquivalence, XgwX86) {
  x86::XgwX86 a{x86::XgwX86::Config{}};
  x86::XgwX86 b{x86::XgwX86::Config{}};
  install_tables(a);
  install_tables(b);
  check_gateway_pair(a, b);
  EXPECT_EQ(a.telemetry().packets_in, b.telemetry().packets_in);
  EXPECT_EQ(a.telemetry().packets_dropped, b.telemetry().packets_dropped);
}

TEST(BatchEquivalence, Cluster) {
  cluster::XgwHCluster::Config config;
  config.primary_devices = 2;
  cluster::XgwHCluster a(config);
  cluster::XgwHCluster b(config);
  install_tables(a);
  install_tables(b);
  check_gateway_pair(a, b);
}

TEST(BatchEquivalence, SpanFormWritesIntoCallerStorage) {
  xgwh::XgwH gw{xgwh::XgwH::Config{}};
  install_tables(gw);
  const auto packets = mixed_batch();
  std::vector<Verdict> out(packets.size() + 3);  // oversized is fine
  gw.process_batch(packets, /*now=*/1.0, out);
  EXPECT_EQ(out[0].action, Action::kForwardToNc);
  EXPECT_EQ(out[2].action, Action::kFallbackToX86);
}

TEST(BatchEquivalence, SpanFormRejectsShortOutput) {
  xgwh::XgwH gw{xgwh::XgwH::Config{}};
  install_tables(gw);
  const auto packets = mixed_batch();
  std::vector<Verdict> out(packets.size() - 1);
  EXPECT_THROW(gw.process_batch(packets, 1.0, out), std::invalid_argument);
}

TEST(BatchEquivalence, EmptyBatch) {
  xgwh::XgwH gw{xgwh::XgwH::Config{}};
  EXPECT_TRUE(gw.process_batch(std::span<const net::OverlayPacket>{})
                  .empty());
}

}  // namespace
}  // namespace sf::dataplane
