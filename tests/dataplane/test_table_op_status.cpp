// TableOpStatus error paths across every TableProgrammer implementation:
// device-level duplicates and misses, digest-table capacity, and the
// controller's update-channel rate limiter.

#include "dataplane/table_programmer.hpp"

#include <gtest/gtest.h>

#include "cluster/controller.hpp"
#include "x86/xgw_x86.hpp"
#include "xgwh/xgwh.hpp"

namespace sf::dataplane {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;
using tables::VmNcAction;
using tables::VmNcKey;
using tables::VxlanRouteAction;

TEST(TableOpStatus, NamesAndSuccessPredicate) {
  EXPECT_EQ(to_string(TableOpStatus::kOk), "ok");
  EXPECT_EQ(to_string(TableOpStatus::kDuplicate), "duplicate");
  EXPECT_EQ(to_string(TableOpStatus::kNotFound), "not-found");
  EXPECT_EQ(to_string(TableOpStatus::kCapacityExceeded),
            "capacity-exceeded");
  EXPECT_EQ(to_string(TableOpStatus::kRateLimited), "rate-limited");
  EXPECT_TRUE(succeeded(TableOpStatus::kOk));
  EXPECT_TRUE(succeeded(TableOpStatus::kDuplicate));
  EXPECT_FALSE(succeeded(TableOpStatus::kNotFound));
  EXPECT_FALSE(succeeded(TableOpStatus::kCapacityExceeded));
  EXPECT_FALSE(succeeded(TableOpStatus::kRateLimited));
}

template <typename Programmer>
void check_device_status_codes(Programmer& gw) {
  const IpPrefix prefix = IpPrefix::must_parse("10.1.0.0/16");
  const VxlanRouteAction route{RouteScope::kLocal, 0, {}};
  EXPECT_EQ(gw.install_route(9, prefix, route), TableOpStatus::kOk);
  EXPECT_EQ(gw.install_route(9, prefix, route), TableOpStatus::kDuplicate);
  EXPECT_EQ(gw.remove_route(9, prefix), TableOpStatus::kOk);
  EXPECT_EQ(gw.remove_route(9, prefix), TableOpStatus::kNotFound);

  const VmNcKey key{9, IpAddr::must_parse("10.1.0.2")};
  EXPECT_EQ(gw.install_mapping(key, VmNcAction{net::Ipv4Addr(1)}),
            TableOpStatus::kOk);
  EXPECT_EQ(gw.remove_mapping(key), TableOpStatus::kOk);
  EXPECT_EQ(gw.remove_mapping(key), TableOpStatus::kNotFound);
}

TEST(TableOpStatus, XgwHDeviceCodes) {
  xgwh::XgwH gw{xgwh::XgwH::Config{}};
  check_device_status_codes(gw);
}

TEST(TableOpStatus, XgwX86DeviceCodes) {
  x86::XgwX86 gw{x86::XgwX86::Config{}};
  check_device_status_codes(gw);
}

TEST(TableOpStatus, ApplyFansOutEveryOpKind) {
  xgwh::XgwH gw{xgwh::XgwH::Config{}};
  TableOp add_route;
  add_route.kind = TableOp::Kind::kAddRoute;
  add_route.vni = 4;
  add_route.prefix = IpPrefix::must_parse("10.4.0.0/16");
  add_route.route_action = {RouteScope::kLocal, 0, {}};
  EXPECT_EQ(apply(gw, add_route), TableOpStatus::kOk);

  TableOp add_map;
  add_map.kind = TableOp::Kind::kAddMapping;
  add_map.mapping_key = {4, IpAddr::must_parse("10.4.0.2")};
  add_map.mapping_action = {net::Ipv4Addr(172, 16, 0, 9)};
  EXPECT_EQ(apply(gw, add_map), TableOpStatus::kOk);
  EXPECT_EQ(gw.route_count(), 1u);
  EXPECT_EQ(gw.mapping_count(), 1u);

  TableOp del_map = add_map;
  del_map.kind = TableOp::Kind::kDelMapping;
  EXPECT_EQ(apply(gw, del_map), TableOpStatus::kOk);
  TableOp del_route = add_route;
  del_route.kind = TableOp::Kind::kDelRoute;
  EXPECT_EQ(apply(gw, del_route), TableOpStatus::kOk);
  EXPECT_EQ(apply(gw, del_route), TableOpStatus::kNotFound);
}

workload::VpcRecord one_vm_vpc(net::Vni vni) {
  workload::VpcRecord vpc;
  vpc.vni = vni;
  vpc.family = net::IpFamily::kV4;
  vpc.routes.push_back(workload::RouteRecord{
      net::IpPrefix::must_parse("10.9.0.0/24"),
      VxlanRouteAction{RouteScope::kLocal, 0, {}}});
  vpc.vms.push_back(workload::VmRecord{IpAddr::must_parse("10.9.0.2"),
                                       net::Ipv4Addr(172, 16, 0, 1)});
  return vpc;
}

TEST(TableOpStatus, ControllerRejectsUnknownVni) {
  cluster::Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 0;
  cluster::Controller controller(config);
  EXPECT_EQ(controller.install_route(
                77, IpPrefix::must_parse("10.0.0.0/8"),
                VxlanRouteAction{RouteScope::kLocal, 0, {}}),
            TableOpStatus::kNotFound);
  EXPECT_EQ(controller.install_mapping(
                VmNcKey{77, IpAddr::must_parse("10.0.0.2")},
                VmNcAction{net::Ipv4Addr(1)}),
            TableOpStatus::kNotFound);
}

TEST(TableOpStatus, ControllerRateLimitsTheUpdateChannel) {
  cluster::Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 0;
  config.table_op_rate_limit = 10;  // 10 ops/s
  config.table_op_burst = 2;
  cluster::Controller controller(config);
  ASSERT_TRUE(controller.add_vpc(one_vm_vpc(50)));  // consumes the burst

  const VxlanRouteAction route{RouteScope::kLocal, 0, {}};
  EXPECT_EQ(controller.install_route(
                50, IpPrefix::must_parse("10.50.0.0/24"), route),
            TableOpStatus::kRateLimited);
  EXPECT_GT(controller.registry().counter_value(
                "controller.table_ops_rate_limited"),
            0u);

  // Time passes; the token bucket refills at 10 ops/s.
  controller.advance_clock(1.0);
  EXPECT_EQ(controller.install_route(
                50, IpPrefix::must_parse("10.50.0.0/24"), route),
            TableOpStatus::kOk);

  // Nothing was changed by the limited op: desired state holds exactly
  // the admitted route plus the one successful addition.
  EXPECT_EQ(controller.cluster(0).route_count(), 2u);
}

TEST(TableOpStatus, ControllerRemoveMissesBeforeSpendingTokens) {
  cluster::Controller::Config config;
  config.cluster_template.primary_devices = 1;
  config.cluster_template.backup_devices = 0;
  config.table_op_rate_limit = 1000;
  config.table_op_burst = 8;
  cluster::Controller controller(config);
  ASSERT_TRUE(controller.add_vpc(one_vm_vpc(60)));
  // A remove of an absent entry reports kNotFound (and must not consume
  // the channel budget — the op never reaches a device).
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(controller.remove_route(
                  60, IpPrefix::must_parse("10.99.0.0/24")),
              TableOpStatus::kNotFound);
  }
  EXPECT_EQ(controller.remove_route(
                60, IpPrefix::must_parse("10.9.0.0/24")),
            TableOpStatus::kOk);
}

}  // namespace
}  // namespace sf::dataplane
