// FlowCache unit behavior: exact-match round trips, epoch-based lazy
// invalidation (the coherence primitive every gateway mutation leans on),
// deterministic eviction, the disabled mode, and the packed key digest.

#include "dataplane/flow_cache.hpp"

#include <gtest/gtest.h>

namespace sf::dataplane {
namespace {

net::FiveTuple tuple(std::uint8_t last_octet, std::uint16_t src_port = 40000) {
  net::FiveTuple t;
  t.src = net::IpAddr(net::Ipv4Addr(10, 0, 0, 1));
  t.dst = net::IpAddr(net::Ipv4Addr(192, 168, 0, last_octet));
  t.proto = 6;
  t.src_port = src_port;
  t.dst_port = 80;
  return t;
}

TEST(FlowCache, InsertFindRoundTrip) {
  FlowCache<int> cache;
  const FlowKey key = make_flow_key(10, tuple(2));
  EXPECT_EQ(cache.find(key, 0), nullptr);
  cache.insert(key, 0, 42);
  int* hit = cache.find(key, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(FlowCache, StaleGenerationIsAMissAndReclaimsTheSlot) {
  FlowCache<int> cache;
  const FlowKey key = make_flow_key(10, tuple(2));
  cache.insert(key, /*generation=*/0, 42);

  // A mutation bumped the epoch: the entry must not replay.
  EXPECT_EQ(cache.find(key, /*generation=*/1), nullptr);
  EXPECT_EQ(cache.stats().stale_reclaims, 1u);
  // The slot was reclaimed outright — even the old epoch misses now.
  EXPECT_EQ(cache.find(key, /*generation=*/0), nullptr);
  EXPECT_EQ(cache.size(0), 0u);

  // Refill under the new epoch works as usual.
  cache.insert(key, 1, 43);
  int* hit = cache.find(key, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 43);
}

TEST(FlowCache, OverwriteSameKeyUpdatesInPlace) {
  FlowCache<int> cache;
  const FlowKey key = make_flow_key(10, tuple(2));
  cache.insert(key, 0, 1);
  cache.insert(key, 0, 2);
  ASSERT_NE(cache.find(key, 0), nullptr);
  EXPECT_EQ(*cache.find(key, 0), 2);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(0), 1u);
}

TEST(FlowCache, ZeroEntriesDisablesTheCache) {
  FlowCache<int> cache(FlowCache<int>::Config{/*entries=*/0});
  EXPECT_FALSE(cache.enabled());
  const FlowKey key = make_flow_key(10, tuple(2));
  cache.insert(key, 0, 42);  // no-op
  EXPECT_EQ(cache.find(key, 0), nullptr);
  EXPECT_EQ(cache.capacity(), 0u);
}

TEST(FlowCache, CapacityRoundsUpToPowerOfTwo) {
  FlowCache<int> cache(FlowCache<int>::Config{/*entries=*/1000});
  EXPECT_EQ(cache.capacity(), 1024u);
}

TEST(FlowCache, EvictionIsBoundedAndTheNewestKeyAlwaysLands) {
  // A deliberately tiny cache under a flood of distinct flows: occupancy
  // never exceeds capacity, evictions are counted, and the most recent
  // insert is always immediately findable (the hot flow wins its window).
  FlowCache<int> cache(FlowCache<int>::Config{/*entries=*/64});
  for (int i = 0; i < 10'000; ++i) {
    const FlowKey key =
        make_flow_key(static_cast<std::uint32_t>(i), tuple(5));
    cache.insert(key, 0, i);
    ASSERT_NE(cache.find(key, 0), nullptr) << i;
  }
  EXPECT_LE(cache.size(0), cache.capacity());
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(FlowCache, ClearDropsEverything) {
  FlowCache<int> cache;
  const FlowKey key = make_flow_key(10, tuple(2));
  cache.insert(key, 0, 42);
  cache.clear();
  EXPECT_EQ(cache.find(key, 0), nullptr);
  EXPECT_EQ(cache.size(0), 0u);
}

TEST(FlowCache, ContainsTracksLiveEntriesOnly) {
  FlowCache<int> cache;
  const FlowKey key = make_flow_key(10, tuple(2));
  EXPECT_FALSE(cache.contains(key, 0));
  cache.insert(key, 0, 42);
  EXPECT_TRUE(cache.contains(key, 0));
  EXPECT_FALSE(cache.contains(make_flow_key(10, tuple(3)), 0));
  // A stale generation reads as absent, but the slot is NOT reclaimed —
  // contains() is a pure observer; find() still sees the stale entry.
  EXPECT_FALSE(cache.contains(key, 1));
  EXPECT_EQ(cache.stats().stale_reclaims, 0u);
  EXPECT_EQ(cache.size(0), 1u);

  const FlowCache<int> disabled{FlowCache<int>::Config{/*entries=*/0}};
  EXPECT_FALSE(disabled.contains(key, 0));
}

TEST(FlowCache, ContainsNeverPerturbsHitMissAccounting) {
  // The guard's established-flow probe rides on contains(); if it bumped
  // hits/misses the cache-on/off byte-identity contract would break.
  FlowCache<int> cache;
  const FlowKey key = make_flow_key(10, tuple(2));
  cache.insert(key, 0, 42);
  const FlowCacheStats before = cache.stats();
  for (int i = 0; i < 100; ++i) {
    cache.contains(key, 0);                       // live hit
    cache.contains(key, 7);                       // stale generation
    cache.contains(make_flow_key(99, tuple(9)), 0);  // absent
  }
  EXPECT_EQ(cache.stats().hits, before.hits);
  EXPECT_EQ(cache.stats().misses, before.misses);
  EXPECT_EQ(cache.stats().insertions, before.insertions);
  EXPECT_EQ(cache.stats().evictions, before.evictions);
  EXPECT_EQ(cache.stats().stale_reclaims, before.stale_reclaims);
}

TEST(FlowCache, OccupancyCountsSlotsAndTheWatermarkIsSticky) {
  FlowCache<int> cache;
  cache.insert(make_flow_key(1, tuple(2)), 0, 1);
  cache.insert(make_flow_key(2, tuple(3)), 0, 2);
  EXPECT_EQ(cache.stats().occupied, 2u);
  EXPECT_EQ(cache.stats().high_watermark, 2u);

  // A stale-generation probe reclaims its slot: live occupancy falls,
  // the high watermark does not.
  EXPECT_EQ(cache.find(make_flow_key(1, tuple(2)), 1), nullptr);
  EXPECT_EQ(cache.stats().occupied, 1u);
  EXPECT_EQ(cache.stats().high_watermark, 2u);

  // Overwriting a live key in place claims no new slot.
  cache.insert(make_flow_key(2, tuple(3)), 0, 5);
  EXPECT_EQ(cache.stats().occupied, 1u);
  EXPECT_EQ(cache.stats().high_watermark, 2u);

  cache.clear();
  EXPECT_EQ(cache.stats().occupied, 0u);
  EXPECT_EQ(cache.stats().high_watermark, 0u);
}

TEST(FlowKeyDigest, DistinguishesEveryKeyField) {
  const FlowKey base = make_flow_key(10, tuple(2));
  EXPECT_EQ(base, make_flow_key(10, tuple(2)));  // deterministic

  EXPECT_FALSE(base == make_flow_key(11, tuple(2)));        // vni
  EXPECT_FALSE(base == make_flow_key(10, tuple(3)));        // dst ip
  EXPECT_FALSE(base == make_flow_key(10, tuple(2, 40001)))  // src port
      << "src_port must feed the digest";
  net::FiveTuple udp = tuple(2);
  udp.proto = 17;
  EXPECT_FALSE(base == make_flow_key(10, udp));  // proto
  net::FiveTuple other_src = tuple(2);
  other_src.src = net::IpAddr(net::Ipv4Addr(10, 0, 0, 2));
  EXPECT_FALSE(base == make_flow_key(10, other_src));  // src ip
  net::FiveTuple other_dport = tuple(2);
  other_dport.dst_port = 443;
  EXPECT_FALSE(base == make_flow_key(10, other_dport));  // dst port
}

TEST(FlowCacheDefaults, DefaultEntriesIsAPowerOfTwoOrDisabled) {
  const std::size_t entries = default_flow_cache_entries();
  // Honors SF_FLOW_CACHE when set; either way the FlowCache built from it
  // must be internally consistent.
  FlowCache<int> cache(FlowCache<int>::Config{entries});
  EXPECT_EQ(cache.enabled(), entries != 0);
  EXPECT_GE(cache.capacity(), entries);
}

}  // namespace
}  // namespace sf::dataplane
