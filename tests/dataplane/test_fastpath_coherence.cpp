// Flow-cache coherence: a cached gateway must be observationally
// indistinguishable from an uncached one — identical verdict streams AND
// identical telemetry registries — across table inserts/removes/updates,
// ACL changes, DR standby swaps and health reroutes. The epoch-based lazy
// invalidation makes this hold by construction; these tests drive every
// mutation source against paired cached/uncached twins to prove it.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "dataplane/shard_engine.hpp"
#include "telemetry/export.hpp"
#include "x86/xgw_x86.hpp"
#include "xgwh/xgwh.hpp"

namespace sf {
namespace {

using dataplane::Verdict;
using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;
using tables::VmNcAction;
using tables::VmNcKey;
using tables::VxlanRouteAction;

xgwh::XgwH::Config hw_config(std::size_t cache_entries) {
  xgwh::XgwH::Config config;
  config.flow_cache_entries = cache_entries;
  return config;
}

void install_tables(dataplane::TableProgrammer& gw) {
  gw.install_route(10, IpPrefix::must_parse("192.168.10.0/24"),
                   VxlanRouteAction{RouteScope::kLocal, 0, {}});
  gw.install_route(10, IpPrefix::must_parse("192.168.30.0/24"),
                   VxlanRouteAction{RouteScope::kPeer, 11, {}});
  gw.install_route(11, IpPrefix::must_parse("192.168.30.0/24"),
                   VxlanRouteAction{RouteScope::kLocal, 0, {}});
  gw.install_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")},
                     VmNcAction{net::Ipv4Addr(10, 1, 1, 11)});
  gw.install_mapping(VmNcKey{11, IpAddr::must_parse("192.168.30.5")},
                     VmNcAction{net::Ipv4Addr(10, 1, 1, 15)});
}

net::OverlayPacket flow_packet(net::Vni vni, std::uint8_t src_octet,
                               const char* dst, std::uint16_t src_port,
                               std::uint16_t payload = 200) {
  net::OverlayPacket pkt;
  pkt.vni = vni;
  pkt.inner.src = IpAddr(net::Ipv4Addr(192, 168, 10, src_octet));
  pkt.inner.dst = IpAddr::must_parse(dst);
  pkt.inner.proto = 6;
  pkt.inner.src_port = src_port;
  pkt.inner.dst_port = 80;
  pkt.payload_size = payload;
  return pkt;
}

/// A small mixed workload: local hits, peered hits, fallback (unresolved
/// NC), no-route drops — revisited repeatedly so the cache actually
/// replays.
std::vector<net::OverlayPacket> workload() {
  std::vector<net::OverlayPacket> packets;
  for (int round = 0; round < 6; ++round) {
    packets.push_back(flow_packet(10, 3, "192.168.10.2", 40000));
    packets.push_back(flow_packet(10, 3, "192.168.30.5", 40001));
    packets.push_back(flow_packet(10, 3, "192.168.30.9", 40002));
    packets.push_back(flow_packet(10, 3, "10.99.0.1", 40003));
    packets.push_back(flow_packet(11, 7, "192.168.30.5", 40004, 900));
    packets.push_back(flow_packet(12, 1, "192.168.10.2", 40005));
  }
  return packets;
}

void expect_same_verdict(const Verdict& a, const Verdict& b,
                         std::size_t index) {
  EXPECT_EQ(a.action, b.action) << index;
  EXPECT_EQ(a.drop_reason, b.drop_reason) << index;
  EXPECT_EQ(a.software_path, b.software_path) << index;
  EXPECT_EQ(a.latency_us, b.latency_us) << index;
  EXPECT_EQ(a.packet.vni, b.packet.vni) << index;
  EXPECT_EQ(a.packet.inner, b.packet.inner) << index;
  EXPECT_EQ(a.packet.outer_src_ip, b.packet.outer_src_ip) << index;
  EXPECT_EQ(a.packet.outer_dst_ip, b.packet.outer_dst_ip) << index;
  EXPECT_EQ(a.packet.payload_size, b.packet.payload_size) << index;
}

void expect_same_hw_result(const xgwh::ForwardResult& a,
                           const xgwh::ForwardResult& b, std::size_t index) {
  expect_same_verdict(a, b, index);
  EXPECT_EQ(a.passes, b.passes) << index;
  EXPECT_EQ(a.egress_pipe, b.egress_pipe) << index;
  EXPECT_EQ(a.shard_pipe, b.shard_pipe) << index;
}

TEST(FastPathCoherence, XgwHTableMutationsKeepTwinsIdentical) {
  xgwh::XgwH cached(hw_config(1 << 10));
  xgwh::XgwH uncached(hw_config(0));
  install_tables(cached);
  install_tables(uncached);

  const auto packets = workload();
  double now = 0;
  std::size_t index = 0;
  auto run_stream = [&] {
    for (const auto& pkt : packets) {
      expect_same_hw_result(cached.forward(pkt, now), uncached.forward(pkt, now),
                            index);
      now += 1e-6;
      ++index;
    }
  };

  run_stream();  // warm: every flow cached
  EXPECT_GT(cached.flow_cache_stats().hits, 0u);

  // Update: re-install a route with a DIFFERENT action payload. The
  // cached verdict for 192.168.30.* flows must not survive.
  ASSERT_EQ(cached.install_route(10, IpPrefix::must_parse("192.168.30.0/24"),
                                 VxlanRouteAction{RouteScope::kIdc, 0,
                                                  net::Ipv4Addr(9, 9, 9, 9)}),
            uncached.install_route(
                10, IpPrefix::must_parse("192.168.30.0/24"),
                VxlanRouteAction{RouteScope::kIdc, 0,
                                 net::Ipv4Addr(9, 9, 9, 9)}));
  run_stream();

  // Remove: the local route disappears -> cached forwards must flip to
  // the same drop the uncached twin computes.
  cached.remove_route(10, IpPrefix::must_parse("192.168.10.0/24"));
  uncached.remove_route(10, IpPrefix::must_parse("192.168.10.0/24"));
  run_stream();

  // Insert: a brand-new VNI starts routing mid-stream.
  install_tables(cached);  // re-install (duplicates also bump the epoch)
  install_tables(uncached);
  cached.install_route(12, IpPrefix::must_parse("192.168.10.0/24"),
                       VxlanRouteAction{RouteScope::kLocal, 0, {}});
  uncached.install_route(12, IpPrefix::must_parse("192.168.10.0/24"),
                         VxlanRouteAction{RouteScope::kLocal, 0, {}});
  cached.install_mapping(VmNcKey{12, IpAddr::must_parse("192.168.10.2")},
                         VmNcAction{net::Ipv4Addr(10, 1, 1, 77)});
  uncached.install_mapping(VmNcKey{12, IpAddr::must_parse("192.168.10.2")},
                           VmNcAction{net::Ipv4Addr(10, 1, 1, 77)});
  run_stream();

  // Mapping removal.
  cached.remove_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")});
  uncached.remove_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")});
  run_stream();

  // ACL rules are a table mutation too.
  tables::AclRule rule;
  rule.vni = 10;
  rule.verdict = tables::AclVerdict::kDeny;
  rule.priority = 5;
  cached.add_acl_rule(rule);
  uncached.add_acl_rule(rule);
  run_stream();

  // The full registries — every counter and histogram, including the
  // walker's per-pipe stage counters a cache hit skips and replays —
  // must be byte-identical.
  EXPECT_EQ(telemetry::to_json(cached.registry().snapshot()),
            telemetry::to_json(uncached.registry().snapshot()));
  EXPECT_EQ(cached.telemetry().packets_in, uncached.telemetry().packets_in);
  EXPECT_EQ(cached.telemetry().packets_forwarded,
            uncached.telemetry().packets_forwarded);
  EXPECT_EQ(cached.telemetry().packets_dropped,
            uncached.telemetry().packets_dropped);
  EXPECT_EQ(cached.shard_pipe_bytes(), uncached.shard_pipe_bytes());
}

TEST(FastPathCoherence, XgwHGenerationBumpsOnEveryMutation) {
  xgwh::XgwH gw(hw_config(1 << 10));
  const auto gen0 = gw.fast_path_generation();
  gw.install_route(10, IpPrefix::must_parse("192.168.10.0/24"),
                   VxlanRouteAction{RouteScope::kLocal, 0, {}});
  EXPECT_GT(gw.fast_path_generation(), gen0);
  const auto gen1 = gw.fast_path_generation();
  gw.install_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")},
                     VmNcAction{net::Ipv4Addr(10, 1, 1, 11)});
  EXPECT_GT(gw.fast_path_generation(), gen1);
  const auto gen2 = gw.fast_path_generation();
  gw.remove_route(10, IpPrefix::must_parse("192.168.10.0/24"));
  EXPECT_GT(gw.fast_path_generation(), gen2);
  const auto gen3 = gw.fast_path_generation();
  gw.remove_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")});
  EXPECT_GT(gw.fast_path_generation(), gen3);
}

TEST(FastPathCoherence, XgwX86TwinsStayIdenticalAcrossMutations) {
  x86::XgwX86::Config cached_cfg;
  cached_cfg.flow_cache_entries = 1 << 10;
  x86::XgwX86::Config uncached_cfg;
  uncached_cfg.flow_cache_entries = 0;
  x86::XgwX86 cached(cached_cfg);
  x86::XgwX86 uncached(uncached_cfg);
  install_tables(cached);
  install_tables(uncached);

  const auto packets = workload();
  double now = 0;
  std::size_t index = 0;
  auto run_stream = [&] {
    for (const auto& pkt : packets) {
      const auto a = cached.forward(pkt, now);
      const auto b = uncached.forward(pkt, now);
      expect_same_verdict(a, b, index);
      EXPECT_EQ(a.snat.has_value(), b.snat.has_value()) << index;
      now += 1e-6;
      ++index;
    }
  };

  run_stream();
  EXPECT_GT(cached.flow_cache_stats().hits, 0u);

  cached.install_route(10, IpPrefix::must_parse("192.168.30.0/24"),
                       VxlanRouteAction{RouteScope::kCrossRegion, 0,
                                        net::Ipv4Addr(8, 8, 8, 8)});
  uncached.install_route(10, IpPrefix::must_parse("192.168.30.0/24"),
                         VxlanRouteAction{RouteScope::kCrossRegion, 0,
                                          net::Ipv4Addr(8, 8, 8, 8)});
  run_stream();

  cached.remove_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")});
  uncached.remove_mapping(VmNcKey{10, IpAddr::must_parse("192.168.10.2")});
  run_stream();

  EXPECT_EQ(telemetry::to_json(cached.registry().snapshot()),
            telemetry::to_json(uncached.registry().snapshot()));
}

TEST(FastPathCoherence, SnatVerdictsNeverReplayFromTheCache) {
  // SNAT allocates per-flow state (port bindings with timeouts); replaying
  // it from a cache would skip the engine. The kInternet path must stay
  // uncached: twins agree AND the cached gateway records no hit for it.
  x86::XgwX86::Config cfg;
  cfg.flow_cache_entries = 1 << 10;
  x86::XgwX86 cached(cfg);
  cfg.flow_cache_entries = 0;
  x86::XgwX86 uncached(cfg);
  for (auto* gw : {&cached, &uncached}) {
    gw->install_route(10, IpPrefix::must_parse("0.0.0.0/0"),
                      VxlanRouteAction{RouteScope::kInternet, 0, {}});
  }
  const auto pkt = flow_packet(10, 3, "1.2.3.4", 50000);
  for (int i = 0; i < 5; ++i) {
    const auto a = cached.forward(pkt, i * 1e-3);
    const auto b = uncached.forward(pkt, i * 1e-3);
    expect_same_verdict(a, b, static_cast<std::size_t>(i));
    ASSERT_TRUE(a.snat.has_value());
    EXPECT_EQ(a.snat->public_port, b.snat->public_port) << i;
  }
  EXPECT_EQ(cached.flow_cache_stats().hits, 0u);
}

TEST(FastPathCoherence, ClusterFailoverInvalidatesEveryDeviceCache) {
  cluster::XgwHCluster::Config cfg;
  cfg.primary_devices = 2;
  cfg.backup_devices = 2;
  cfg.device = hw_config(1 << 10);
  cluster::XgwHCluster cached(cfg);
  cfg.device = hw_config(0);
  cluster::XgwHCluster uncached(cfg);
  install_tables(cached);
  install_tables(uncached);

  const auto packets = workload();
  double now = 0;
  std::size_t index = 0;
  auto run_stream = [&] {
    for (const auto& pkt : packets) {
      expect_same_hw_result(cached.forward(pkt, now),
                            uncached.forward(pkt, now), index);
      now += 1e-6;
      ++index;
    }
  };

  run_stream();  // warm every device the ECMP spread touches

  const auto gen_before = cached.device(0).fast_path_generation();

  // Health reroute: primary 0 dies, flows re-steer to primary 1.
  cached.fail_device(0);
  uncached.fail_device(0);
  EXPECT_GT(cached.device(0).fast_path_generation(), gen_before);
  EXPECT_GT(cached.device(1).fast_path_generation(), gen_before);
  run_stream();

  // DR standby swap: the last primary goes too -> backups take over.
  cached.fail_device(1);
  uncached.fail_device(1);
  ASSERT_TRUE(cached.failed_over());
  ASSERT_TRUE(uncached.failed_over());
  run_stream();

  // Recovery re-steers again.
  cached.recover_device(0);
  uncached.recover_device(0);
  ASSERT_FALSE(cached.failed_over());
  run_stream();

  for (std::size_t d = 0; d < cached.device_count(); ++d) {
    EXPECT_EQ(telemetry::to_json(cached.device(d).registry().snapshot()),
              telemetry::to_json(uncached.device(d).registry().snapshot()))
        << "device " << d;
  }
}

TEST(FastPathCoherence, ShardedBatchMatchesSequentialAtAnyThreadCount) {
  // One gateway per shard (shard-private flow cache, no locks): the
  // parallel batch path must reproduce, bit for bit, what one thread
  // computes — and a fleet of UNCACHED gateways computes the same again.
  constexpr std::size_t kShards = 4;
  auto make_fleet = [&](std::size_t cache_entries) {
    std::vector<std::unique_ptr<xgwh::XgwH>> fleet;
    for (std::size_t s = 0; s < kShards; ++s) {
      fleet.push_back(std::make_unique<xgwh::XgwH>(hw_config(cache_entries)));
      install_tables(*fleet.back());
    }
    return fleet;
  };

  std::vector<net::OverlayPacket> packets;
  for (int i = 0; i < 400; ++i) {
    packets.push_back(flow_packet(10, static_cast<std::uint8_t>(i % 16),
                                  i % 3 ? "192.168.10.2" : "192.168.30.5",
                                  static_cast<std::uint16_t>(40000 + i % 32)));
  }

  auto run = [&](std::size_t threads, std::size_t cache_entries) {
    auto fleet = make_fleet(cache_entries);
    dataplane::ShardEngine engine({kShards, threads});
    return engine.process_packets(
        packets, /*now=*/0.0,
        [&](std::size_t shard) -> dataplane::Gateway& {
          return *fleet[shard];
        });
  };

  const auto reference = run(1, 1 << 10);
  for (const std::size_t threads : {2u, 8u}) {
    const auto verdicts = run(threads, 1 << 10);
    ASSERT_EQ(verdicts.size(), reference.size());
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      expect_same_verdict(verdicts[i], reference[i], i);
    }
  }
  const auto uncached = run(8, 0);
  for (std::size_t i = 0; i < uncached.size(); ++i) {
    expect_same_verdict(uncached[i], reference[i], i);
  }
}

}  // namespace
}  // namespace sf
