#include "dataplane/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "dataplane/shard_engine.hpp"

namespace sf::dataplane {
namespace {

TEST(ThreadPool, InlineModeRunsEveryTask) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  int ran = 0;
  pool.run_all({[&] { ++ran; }, [&] { ++ran; }, [&] { ++ran; }});
  EXPECT_EQ(ran, 3);
}

TEST(ThreadPool, ZeroThreadsAlsoMeansInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  bool ran = false;
  pool.run_all({[&] { ran = true; }});
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, WorkersRunAllTasksExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.run_all({[&] { total.fetch_add(1); }, [&] { total.fetch_add(1); }});
  }
  EXPECT_EQ(total.load(), 40);
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  pool.run_all({});
}

TEST(ShardEngine, OwnerHashDecidesShardMembership) {
  ShardEngine engine(ShardPlan{4, 2});
  std::vector<std::vector<std::uint32_t>> seen(4);
  engine.run_sharded(
      40, [](std::size_t i) { return i; },  // owner = index mod shards
      [&](std::size_t shard, std::span<const std::uint32_t> indices,
          telemetry::Registry&) {
        seen[shard].assign(indices.begin(), indices.end());
      });
  for (std::size_t shard = 0; shard < 4; ++shard) {
    ASSERT_EQ(seen[shard].size(), 10u) << shard;
    for (std::uint32_t index : seen[shard]) {
      EXPECT_EQ(index % 4, shard);
    }
    // Ascending order — the contract the deterministic reduce leans on.
    EXPECT_TRUE(std::is_sorted(seen[shard].begin(), seen[shard].end()));
  }
}

TEST(ShardEngine, PartitionIsIndependentOfThreadCount) {
  auto partition = [](std::size_t threads) {
    ShardEngine engine(ShardPlan{8, threads});
    std::vector<std::vector<std::uint32_t>> shards(8);
    engine.run_sharded(
        1000, [](std::size_t i) { return i * 2654435761u; },
        [&](std::size_t shard, std::span<const std::uint32_t> indices,
            telemetry::Registry&) {
          shards[shard].assign(indices.begin(), indices.end());
        });
    return shards;
  };
  EXPECT_EQ(partition(1), partition(4));
  EXPECT_EQ(partition(1), partition(8));
}

TEST(ShardEngine, MergesPerShardRegistriesInShardOrder) {
  ShardEngine engine(ShardPlan{4, 3});
  const auto snapshot = engine.run_sharded(
      16, [](std::size_t i) { return i; },
      [](std::size_t shard, std::span<const std::uint32_t> indices,
         telemetry::Registry& registry) {
        registry.counter("engine.items").add(indices.size());
        if (shard == 2) registry.counter("engine.special").add(7);
      });
  EXPECT_EQ(snapshot.counter("engine.items"), 16u);
  EXPECT_EQ(snapshot.counter("engine.special"), 7u);
}

TEST(ShardEngine, SetThreadsPreservesResults) {
  ShardEngine engine(ShardPlan{4, 1});
  auto run = [&] {
    std::vector<double> sums(4, 0);
    engine.run_sharded(
        100, [](std::size_t i) { return i % 4; },
        [&](std::size_t shard, std::span<const std::uint32_t> indices,
            telemetry::Registry&) {
          for (std::uint32_t index : indices) {
            sums[shard] += 0.1 * static_cast<double>(index);
          }
        });
    return std::accumulate(sums.begin(), sums.end(), 0.0);
  };
  const double single = run();
  engine.set_threads(8);
  EXPECT_EQ(engine.plan().shards, 4u);
  const double parallel = run();
  EXPECT_EQ(single, parallel);  // bit-identical, not just close
}

}  // namespace
}  // namespace sf::dataplane
