// Batch-identity differential suite (DESIGN.md §15): the sharded
// engine's burst size and thread count are pure throughput knobs. For a
// random packet stream hitting every verdict class, the engine at every
// sweep batch size (1/8/32/128/512) x thread count (1/8) x flow-cache
// setting (off/on) must reproduce the scalar ground truth — each packet
// processed one at a time on its hash-picked shard — verdict-for-verdict
// AND counter-for-counter (full per-device registry snapshots, compared
// as serialized JSON).
//
// A second group pins the single-hash contract (the 5-tuple used to be
// hashed two to three times per packet): the engine's precomputed hashes
// must equal FiveTuple::hash(), agree with the shard steering, and
// derive the same flow-cache key as the scalar tuple overload.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataplane/flow_cache.hpp"
#include "dataplane/shard_engine.hpp"
#include "net/hash.hpp"
#include "telemetry/export.hpp"
#include "x86/xgw_x86.hpp"
#include "xgwh/xgwh.hpp"

namespace sf::dataplane {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;

constexpr std::size_t kShards = 4;
constexpr std::size_t kPackets = 4096;
constexpr std::size_t kVnis = 8;
constexpr std::size_t kHosts = 8;

/// Tables reaching every verdict class: local forwards, VM-mapping
/// misses, internet routes on even tenants (odd tenants route-miss), and
/// the unknown tenant 999 left uninstalled.
template <typename Node>
std::vector<std::unique_ptr<Node>> make_fleet(std::size_t cache_entries) {
  std::vector<std::unique_ptr<Node>> fleet;
  for (std::size_t s = 0; s < kShards; ++s) {
    typename Node::Config config;
    config.flow_cache_entries = cache_entries;
    fleet.push_back(std::make_unique<Node>(config));
  }
  for (auto& node : fleet) {
    for (std::size_t v = 0; v < kVnis; ++v) {
      const net::Vni vni = static_cast<net::Vni>(100 + v);
      node->install_route(
          vni,
          IpPrefix(net::Ipv4Prefix(
              net::Ipv4Addr(10, static_cast<std::uint8_t>(v), 0, 0), 16)),
          {RouteScope::kLocal, 0, {}});
      if (v % 2 == 0) {
        node->install_route(vni, IpPrefix::must_parse("0.0.0.0/0"),
                            {RouteScope::kInternet, 0, {}});
      }
      for (std::size_t h = 1; h <= kHosts; ++h) {
        node->install_mapping(
            {vni, IpAddr(net::Ipv4Addr(10, static_cast<std::uint8_t>(v), 1,
                                       static_cast<std::uint8_t>(h)))},
            {net::Ipv4Addr(172, 16, static_cast<std::uint8_t>(v),
                           static_cast<std::uint8_t>(h))});
      }
    }
  }
  return fleet;
}

/// Deterministic pseudo-random stream: ~10% unknown tenant, ~20%
/// VM-mapping miss, ~10% off-subnet dst, the rest mapped VMs drawn from
/// a small flow space so the cache sees plenty of repeats.
std::vector<net::OverlayPacket> make_stream(std::uint64_t seed) {
  std::vector<net::OverlayPacket> packets;
  packets.reserve(kPackets);
  for (std::size_t i = 0; i < kPackets; ++i) {
    const std::uint64_t r = net::mix64(seed + i);
    const auto v = static_cast<std::uint8_t>(r % kVnis);
    net::OverlayPacket pkt;
    pkt.vni = static_cast<net::Vni>(100 + v);
    pkt.inner.proto = 6;
    pkt.inner.src =
        IpAddr(net::Ipv4Addr(10, v, 2,
                             static_cast<std::uint8_t>(1 + (r >> 8) % 200)));
    pkt.inner.src_port =
        static_cast<std::uint16_t>(1024 + (r >> 16) % 40000);
    pkt.inner.dst_port = 80;
    pkt.payload_size = static_cast<std::uint16_t>(64 + (r >> 24) % 1200);
    switch ((r >> 32) % 10) {
      case 0:  // unknown tenant
        pkt.vni = 999;
        pkt.inner.dst = IpAddr(net::Ipv4Addr(10, 0, 1, 1));
        break;
      case 1:
      case 2:  // inside the local /16 but no VM mapping
        pkt.inner.dst = IpAddr(net::Ipv4Addr(10, v, 9, 9));
        break;
      case 3:  // off-subnet: internet route on even tenants, miss on odd
        pkt.inner.dst = IpAddr(net::Ipv4Addr(93, 184, 216, 34));
        break;
      default:  // mapped VM, narrow flow space -> repeats -> cache hits
        pkt.inner.dst = IpAddr(
            net::Ipv4Addr(10, v, 1,
                          static_cast<std::uint8_t>(1 + (r >> 40) % kHosts)));
        pkt.inner.src = IpAddr(net::Ipv4Addr(
            10, v, 2, static_cast<std::uint8_t>(1 + (r >> 8) % 4)));
        pkt.inner.src_port =
            static_cast<std::uint16_t>(40000 + (r >> 48) % 64);
        break;
    }
    packets.push_back(pkt);
  }
  return packets;
}

/// Ground truth: the packets one at a time, each on the shard its tuple
/// hash picks — no engine, no bursts, no threads.
template <typename Node>
std::vector<Verdict> run_scalar(
    std::vector<std::unique_ptr<Node>>& fleet,
    std::span<const net::OverlayPacket> packets) {
  std::vector<Verdict> out(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const std::size_t shard =
        static_cast<std::size_t>(packets[i].inner.hash()) % kShards;
    out[i] = fleet[shard]->process(packets[i], /*now=*/0.0);
  }
  return out;
}

template <typename Node>
std::vector<Verdict> run_engine(std::size_t threads, std::size_t batch,
                                std::vector<std::unique_ptr<Node>>& fleet,
                                std::span<const net::OverlayPacket> packets) {
  ShardEngine engine({kShards, threads, batch});
  std::vector<Verdict> out(packets.size());
  engine.process_packets(
      packets, /*now=*/0.0,
      [&](std::size_t s) -> Gateway& { return *fleet[s]; }, out);
  return out;
}

template <typename Node>
std::vector<std::string> fleet_registries(
    const std::vector<std::unique_ptr<Node>>& fleet) {
  std::vector<std::string> out;
  out.reserve(fleet.size());
  for (const auto& node : fleet) {
    out.push_back(telemetry::to_json(node->registry().snapshot()));
  }
  return out;
}

void expect_identical(const std::vector<Verdict>& got,
                      const std::vector<Verdict>& truth,
                      std::size_t threads, std::size_t batch) {
  ASSERT_EQ(got.size(), truth.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].action, truth[i].action)
        << "packet " << i << " threads " << threads << " batch " << batch;
    ASSERT_EQ(got[i].drop_reason, truth[i].drop_reason) << "packet " << i;
    ASSERT_EQ(got[i].software_path, truth[i].software_path) << "packet " << i;
    ASSERT_EQ(got[i].latency_us, truth[i].latency_us) << "packet " << i;
    ASSERT_EQ(got[i].packet.outer_src_ip, truth[i].packet.outer_src_ip)
        << "packet " << i;
    ASSERT_EQ(got[i].packet.outer_dst_ip, truth[i].packet.outer_dst_ip)
        << "packet " << i;
  }
}

template <typename Node>
void check_batch_identity(std::size_t cache_entries) {
  const auto packets = make_stream(0x5a11f15bULL);

  auto truth_fleet = make_fleet<Node>(cache_entries);
  const auto truth = run_scalar(truth_fleet, packets);
  const auto truth_regs = fleet_registries(truth_fleet);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{8}, std::size_t{32}, std::size_t{128},
          std::size_t{512}}) {
      auto fleet = make_fleet<Node>(cache_entries);
      const auto got = run_engine(threads, batch, fleet, packets);
      expect_identical(got, truth, threads, batch);
      const auto regs = fleet_registries(fleet);
      for (std::size_t s = 0; s < kShards; ++s) {
        EXPECT_EQ(regs[s], truth_regs[s])
            << "registry diverged on shard " << s << " threads " << threads
            << " batch " << batch;
      }
    }
  }
}

TEST(BatchIdentity, XgwHUncached) { check_batch_identity<xgwh::XgwH>(0); }

TEST(BatchIdentity, XgwHCached) {
  check_batch_identity<xgwh::XgwH>(1 << 10);
}

TEST(BatchIdentity, XgwX86Uncached) {
  check_batch_identity<x86::XgwX86>(0);
}

TEST(BatchIdentity, XgwX86Cached) {
  check_batch_identity<x86::XgwX86>(1 << 10);
}

// ---- single-hash contract --------------------------------------------------

/// Probe gateway: records what the engine feeds process_batch_indexed and
/// asserts the precomputed hash per packet equals FiveTuple::hash() and
/// lands on this very shard.
class HashProbe : public Gateway {
 public:
  HashProbe(std::size_t shard, std::size_t shards)
      : shard_(shard), shards_(shards) {}

  Verdict process(const net::OverlayPacket&, double) override {
    return Verdict{};
  }

  void process_batch_indexed(std::span<const net::OverlayPacket> packets,
                             std::span<const std::uint64_t> flow_hashes,
                             std::span<const std::uint32_t> indices,
                             double, std::span<Verdict> out) override {
    EXPECT_EQ(flow_hashes.size(), packets.size());
    for (const std::uint32_t i : indices) {
      EXPECT_EQ(flow_hashes[i], packets[i].inner.hash()) << "packet " << i;
      EXPECT_EQ(static_cast<std::size_t>(flow_hashes[i]) % shards_, shard_)
          << "packet " << i;
      out[i] = Verdict{};
      ++seen_;
    }
  }

  std::size_t seen() const { return seen_; }

 private:
  std::size_t shard_;
  std::size_t shards_;
  std::size_t seen_ = 0;
};

TEST(BatchIdentity, EngineHashesAgreeWithShardSteering) {
  const auto packets = make_stream(0xfeedULL);
  std::vector<std::unique_ptr<HashProbe>> probes;
  for (std::size_t s = 0; s < kShards; ++s) {
    probes.push_back(std::make_unique<HashProbe>(s, kShards));
  }
  ShardEngine engine({kShards, /*threads=*/2, /*batch=*/32});
  std::vector<Verdict> out(packets.size());
  engine.process_packets(
      packets, /*now=*/0.0,
      [&](std::size_t s) -> Gateway& { return *probes[s]; }, out);
  std::size_t total = 0;
  for (const auto& probe : probes) total += probe->seen();
  EXPECT_EQ(total, packets.size());
}

TEST(BatchIdentity, FlowKeyDerivationsAgree) {
  // The batched path derives cache keys from the precomputed hash; the
  // scalar path from the tuple. Both overloads must agree, or a cache
  // entry written by one path would be invisible to the other.
  const auto packets = make_stream(0xabcdULL);
  for (const auto& pkt : packets) {
    const FlowKey from_tuple = make_flow_key(pkt.vni, pkt.inner);
    const FlowKey from_hash = make_flow_key(pkt.vni, pkt.inner.hash());
    EXPECT_EQ(from_tuple, from_hash);
  }
}

}  // namespace
}  // namespace sf::dataplane
