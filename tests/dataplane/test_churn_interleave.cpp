// Deterministic mid-interval table updates (ShardEngine::UpdatePlan +
// XGW-x86 RCU tables): a miniature of bench_churn small enough for the
// test suite. Three properties are held:
//
//  1. Thread-count identity — the verdict stream with a concurrent
//     mutator is byte-identical at 1 worker and at 4.
//  2. Ground truth — it equals a sequential replay that applies each op
//     between packets exactly at its stamped apply_index (no threads, no
//     RCU pins, just "process packet, maybe apply ops").
//  3. The updates are actually visible mid-interval: verdicts differ
//     from a static (no-churn) run.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "dataplane/shard_engine.hpp"
#include "dataplane/table_programmer.hpp"
#include "x86/xgw_x86.hpp"

namespace sf::dataplane {
namespace {

using net::IpAddr;
using net::IpPrefix;
using tables::RouteScope;

constexpr std::size_t kShards = 4;
constexpr std::size_t kPackets = 2048;
constexpr std::size_t kOps = 32;
constexpr net::Vni kVni = 7;
constexpr std::size_t kHosts = 8;

using Fleet = std::vector<std::unique_ptr<x86::XgwX86>>;

Fleet make_fleet(std::size_t cache_entries) {
  Fleet fleet;
  for (std::size_t s = 0; s < kShards; ++s) {
    x86::XgwX86::Config config;
    config.flow_cache_entries = cache_entries;
    fleet.push_back(std::make_unique<x86::XgwX86>(config));
  }
  for (auto& node : fleet) {
    node->install_route(kVni, IpPrefix::must_parse("10.7.0.0/16"),
                        {RouteScope::kLocal, 0, {}});
    for (std::size_t h = 1; h <= kHosts; ++h) {
      node->install_mapping(
          {kVni, IpAddr(net::Ipv4Addr(10, 7, 1, static_cast<std::uint8_t>(h)))},
          {net::Ipv4Addr(172, 16, 7, static_cast<std::uint8_t>(h))});
    }
  }
  return fleet;
}

std::vector<net::OverlayPacket> make_stream() {
  std::vector<net::OverlayPacket> packets;
  packets.reserve(kPackets);
  for (std::size_t i = 0; i < kPackets; ++i) {
    net::OverlayPacket pkt;
    pkt.vni = kVni;
    pkt.inner.src =
        IpAddr(net::Ipv4Addr(10, 7, 2, static_cast<std::uint8_t>(1 + i % 50)));
    pkt.inner.dst = IpAddr(
        net::Ipv4Addr(10, 7, 1, static_cast<std::uint8_t>(1 + i % kHosts)));
    pkt.inner.proto = 6;
    pkt.inner.src_port = static_cast<std::uint16_t>(40000 + i % 500);
    pkt.inner.dst_port = 80;
    pkt.payload_size = 200;
    packets.push_back(pkt);
  }
  return packets;
}

// Live migrations: re-target each VM mapping round-robin to a new NC, so
// every applied op flips the outer_dst_ip of all later packets to that
// host. apply_index spreads the ops evenly across the interval.
std::vector<TimedTableOp> make_updates() {
  std::vector<TimedTableOp> updates;
  updates.reserve(kOps);
  for (std::size_t k = 0; k < kOps; ++k) {
    const auto host = static_cast<std::uint8_t>(1 + k % kHosts);
    TableOp op;
    op.kind = TableOp::Kind::kAddMapping;
    op.vni = kVni;
    op.mapping_key = {kVni, IpAddr(net::Ipv4Addr(10, 7, 1, host))};
    op.mapping_action = {
        net::Ipv4Addr(static_cast<std::uint8_t>(172 + 1 + k / kHosts), 16, 7,
                      host)};
    updates.push_back({op, k * kPackets / kOps});
  }
  return updates;
}

std::size_t shard_of(const net::OverlayPacket& pkt) {
  return static_cast<std::size_t>(pkt.inner.hash()) % kShards;
}

// The interleaved run under test: dedicated mutator thread, per-shard
// visibility advanced by stamped apply_index (see bench/bench_churn.cpp
// for the full-size version).
std::vector<Verdict> run_with_plan(std::size_t threads, Fleet& fleet,
                                   std::span<const net::OverlayPacket> packets,
                                   std::span<const TimedTableOp> updates) {
  ShardEngine engine({kShards, threads});
  std::vector<std::uint64_t> base(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    base[s] = fleet[s]->table_version();
  }
  ShardEngine::UpdatePlan plan;
  plan.updates = updates;
  plan.apply = [&](std::size_t k) {
    const TableOpBatch batch = TableOpBatch::single(updates[k].op);
    for (auto& node : fleet) node->apply(batch);
  };
  plan.advance = [&](std::size_t shard, std::size_t visible) {
    fleet[shard]->set_lookup_seq(base[shard] + visible);
  };
  std::vector<Verdict> out(packets.size());
  engine.process_packets(packets, /*now=*/0.0,
                         [&](std::size_t s) -> Gateway& { return *fleet[s]; },
                         out, plan);
  for (auto& node : fleet) node->set_lookup_seq(std::nullopt);
  return out;
}

// Ground truth: one thread, no pins — walk the packets in order and apply
// each op the moment its apply_index passes.
std::vector<Verdict> run_sequential(Fleet& fleet,
                                    std::span<const net::OverlayPacket> packets,
                                    std::span<const TimedTableOp> updates) {
  std::vector<Verdict> out(packets.size());
  std::size_t next = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    while (next < updates.size() && updates[next].apply_index < i) {
      const TableOpBatch batch = TableOpBatch::single(updates[next].op);
      for (auto& node : fleet) node->apply(batch);
      ++next;
    }
    out[i] = fleet[shard_of(packets[i])]->process(packets[i], /*now=*/0.0);
  }
  return out;
}

void expect_identical(const std::vector<Verdict>& a,
                      const std::vector<Verdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].action, b[i].action) << "packet " << i;
    ASSERT_EQ(a[i].drop_reason, b[i].drop_reason) << "packet " << i;
    ASSERT_EQ(a[i].latency_us, b[i].latency_us) << "packet " << i;
    ASSERT_EQ(a[i].packet.outer_dst_ip, b[i].packet.outer_dst_ip)
        << "packet " << i;
  }
}

TEST(ChurnInterleave, ByteIdenticalAcrossThreadCounts) {
  const auto packets = make_stream();
  const auto updates = make_updates();

  Fleet fleet_1 = make_fleet(0);
  Fleet fleet_4 = make_fleet(0);
  const auto verdicts_1 = run_with_plan(1, fleet_1, packets, updates);
  const auto verdicts_4 = run_with_plan(4, fleet_4, packets, updates);
  expect_identical(verdicts_1, verdicts_4);
}

TEST(ChurnInterleave, FlowCacheInvisibleUnderChurn) {
  const auto packets = make_stream();
  const auto updates = make_updates();

  Fleet uncached = make_fleet(0);
  Fleet cached = make_fleet(1 << 10);
  const auto plain = run_with_plan(4, uncached, packets, updates);
  const auto fast = run_with_plan(4, cached, packets, updates);
  expect_identical(plain, fast);
}

TEST(ChurnInterleave, MatchesSequentialGroundTruth) {
  const auto packets = make_stream();
  const auto updates = make_updates();

  Fleet concurrent = make_fleet(0);
  Fleet sequential = make_fleet(0);
  const auto interleaved = run_with_plan(4, concurrent, packets, updates);
  const auto truth = run_sequential(sequential, packets, updates);
  expect_identical(interleaved, truth);
}

TEST(ChurnInterleave, UpdatesAreVisibleMidInterval) {
  const auto packets = make_stream();
  const auto updates = make_updates();

  Fleet churned = make_fleet(0);
  Fleet static_fleet = make_fleet(0);
  const auto with_churn = run_with_plan(4, churned, packets, updates);
  const auto without = run_with_plan(4, static_fleet, packets, {});
  std::size_t changed = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (with_churn[i].packet.outer_dst_ip != without[i].packet.outer_dst_ip) {
      ++changed;
    }
  }
  // Every migration retargets a hot mapping: later packets to that VM
  // must leave toward the new NC.
  EXPECT_GT(changed, kPackets / 4);
}

}  // namespace
}  // namespace sf::dataplane
