file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_gateway_balance.dir/bench_fig06_gateway_balance.cpp.o"
  "CMakeFiles/bench_fig06_gateway_balance.dir/bench_fig06_gateway_balance.cpp.o.d"
  "bench_fig06_gateway_balance"
  "bench_fig06_gateway_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_gateway_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
