# Empty compiler generated dependencies file for bench_fig06_gateway_balance.
# This may be replaced when dependencies are built.
