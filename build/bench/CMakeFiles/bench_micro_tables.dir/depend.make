# Empty dependencies file for bench_micro_tables.
# This may be replaced when dependencies are built.
