file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tables.dir/bench_micro_tables.cpp.o"
  "CMakeFiles/bench_micro_tables.dir/bench_micro_tables.cpp.o.d"
  "bench_micro_tables"
  "bench_micro_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
