# Empty compiler generated dependencies file for bench_fig22_hw_sw_traffic_share.
# This may be replaced when dependencies are built.
