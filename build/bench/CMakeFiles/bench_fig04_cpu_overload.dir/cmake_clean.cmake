file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_cpu_overload.dir/bench_fig04_cpu_overload.cpp.o"
  "CMakeFiles/bench_fig04_cpu_overload.dir/bench_fig04_cpu_overload.cpp.o.d"
  "bench_fig04_cpu_overload"
  "bench_fig04_cpu_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_cpu_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
