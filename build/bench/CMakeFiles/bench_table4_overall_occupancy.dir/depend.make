# Empty dependencies file for bench_table4_overall_occupancy.
# This may be replaced when dependencies are built.
