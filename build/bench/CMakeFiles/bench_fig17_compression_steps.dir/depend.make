# Empty dependencies file for bench_fig17_compression_steps.
# This may be replaced when dependencies are built.
