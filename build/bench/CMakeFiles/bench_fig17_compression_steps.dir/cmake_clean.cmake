file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_compression_steps.dir/bench_fig17_compression_steps.cpp.o"
  "CMakeFiles/bench_fig17_compression_steps.dir/bench_fig17_compression_steps.cpp.o.d"
  "bench_fig17_compression_steps"
  "bench_fig17_compression_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_compression_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
