# Empty dependencies file for bench_fig08_cpu_vs_port_trend.
# This may be replaced when dependencies are built.
