file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_cpu_vs_port_trend.dir/bench_fig08_cpu_vs_port_trend.cpp.o"
  "CMakeFiles/bench_fig08_cpu_vs_port_trend.dir/bench_fig08_cpu_vs_port_trend.cpp.o.d"
  "bench_fig08_cpu_vs_port_trend"
  "bench_fig08_cpu_vs_port_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_cpu_vs_port_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
