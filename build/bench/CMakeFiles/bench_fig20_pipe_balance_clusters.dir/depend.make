# Empty dependencies file for bench_fig20_pipe_balance_clusters.
# This may be replaced when dependencies are built.
