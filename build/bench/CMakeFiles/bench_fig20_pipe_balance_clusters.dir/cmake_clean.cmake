file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_pipe_balance_clusters.dir/bench_fig20_pipe_balance_clusters.cpp.o"
  "CMakeFiles/bench_fig20_pipe_balance_clusters.dir/bench_fig20_pipe_balance_clusters.cpp.o.d"
  "bench_fig20_pipe_balance_clusters"
  "bench_fig20_pipe_balance_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_pipe_balance_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
