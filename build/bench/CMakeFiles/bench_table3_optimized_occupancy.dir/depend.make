# Empty dependencies file for bench_table3_optimized_occupancy.
# This may be replaced when dependencies are built.
