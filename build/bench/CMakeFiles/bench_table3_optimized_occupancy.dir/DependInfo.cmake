
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_optimized_occupancy.cpp" "bench/CMakeFiles/bench_table3_optimized_occupancy.dir/bench_table3_optimized_occupancy.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_optimized_occupancy.dir/bench_table3_optimized_occupancy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_xgwh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
