file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_optimized_occupancy.dir/bench_table3_optimized_occupancy.cpp.o"
  "CMakeFiles/bench_table3_optimized_occupancy.dir/bench_table3_optimized_occupancy.cpp.o.d"
  "bench_table3_optimized_occupancy"
  "bench_table3_optimized_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_optimized_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
