# Empty compiler generated dependencies file for bench_s8_cache_clusters.
# This may be replaced when dependencies are built.
