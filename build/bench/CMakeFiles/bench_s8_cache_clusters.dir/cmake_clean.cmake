file(REMOVE_RECURSE
  "CMakeFiles/bench_s8_cache_clusters.dir/bench_s8_cache_clusters.cpp.o"
  "CMakeFiles/bench_s8_cache_clusters.dir/bench_s8_cache_clusters.cpp.o.d"
  "bench_s8_cache_clusters"
  "bench_s8_cache_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s8_cache_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
