# Empty dependencies file for bench_fig07_heavy_hitters.
# This may be replaced when dependencies are built.
