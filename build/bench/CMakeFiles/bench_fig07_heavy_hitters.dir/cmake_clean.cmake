file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_heavy_hitters.dir/bench_fig07_heavy_hitters.cpp.o"
  "CMakeFiles/bench_fig07_heavy_hitters.dir/bench_fig07_heavy_hitters.cpp.o.d"
  "bench_fig07_heavy_hitters"
  "bench_fig07_heavy_hitters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_heavy_hitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
