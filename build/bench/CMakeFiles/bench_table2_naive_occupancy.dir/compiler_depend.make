# Empty compiler generated dependencies file for bench_table2_naive_occupancy.
# This may be replaced when dependencies are built.
