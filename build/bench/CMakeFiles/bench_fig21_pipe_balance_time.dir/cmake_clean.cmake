file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_pipe_balance_time.dir/bench_fig21_pipe_balance_time.cpp.o"
  "CMakeFiles/bench_fig21_pipe_balance_time.dir/bench_fig21_pipe_balance_time.cpp.o.d"
  "bench_fig21_pipe_balance_time"
  "bench_fig21_pipe_balance_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_pipe_balance_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
