# Empty dependencies file for bench_fig21_pipe_balance_time.
# This may be replaced when dependencies are built.
