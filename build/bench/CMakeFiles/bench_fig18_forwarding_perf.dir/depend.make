# Empty dependencies file for bench_fig18_forwarding_perf.
# This may be replaced when dependencies are built.
