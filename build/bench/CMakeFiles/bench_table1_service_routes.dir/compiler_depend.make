# Empty compiler generated dependencies file for bench_table1_service_routes.
# This may be replaced when dependencies are built.
