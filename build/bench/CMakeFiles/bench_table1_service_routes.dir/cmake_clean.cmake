file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_service_routes.dir/bench_table1_service_routes.cpp.o"
  "CMakeFiles/bench_table1_service_routes.dir/bench_table1_service_routes.cpp.o.d"
  "bench_table1_service_routes"
  "bench_table1_service_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_service_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
