# Empty dependencies file for bench_fig19_region_drop_rate.
# This may be replaced when dependencies are built.
