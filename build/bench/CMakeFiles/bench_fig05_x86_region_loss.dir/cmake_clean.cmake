file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_x86_region_loss.dir/bench_fig05_x86_region_loss.cpp.o"
  "CMakeFiles/bench_fig05_x86_region_loss.dir/bench_fig05_x86_region_loss.cpp.o.d"
  "bench_fig05_x86_region_loss"
  "bench_fig05_x86_region_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_x86_region_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
