# Empty dependencies file for bench_fig05_x86_region_loss.
# This may be replaced when dependencies are built.
