file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_table_update_freq.dir/bench_fig23_table_update_freq.cpp.o"
  "CMakeFiles/bench_fig23_table_update_freq.dir/bench_fig23_table_update_freq.cpp.o.d"
  "bench_fig23_table_update_freq"
  "bench_fig23_table_update_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_table_update_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
