# Empty compiler generated dependencies file for bench_fig23_table_update_freq.
# This may be replaced when dependencies are built.
