# Empty compiler generated dependencies file for sf_test_integration.
# This may be replaced when dependencies are built.
