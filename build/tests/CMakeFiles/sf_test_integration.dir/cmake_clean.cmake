file(REMOVE_RECURSE
  "CMakeFiles/sf_test_integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/sf_test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/sf_test_integration.dir/integration/test_failure_injection.cpp.o"
  "CMakeFiles/sf_test_integration.dir/integration/test_failure_injection.cpp.o.d"
  "CMakeFiles/sf_test_integration.dir/integration/test_paper_claims.cpp.o"
  "CMakeFiles/sf_test_integration.dir/integration/test_paper_claims.cpp.o.d"
  "sf_test_integration"
  "sf_test_integration.pdb"
  "sf_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
