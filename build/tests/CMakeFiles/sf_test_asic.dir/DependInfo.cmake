
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asic/test_memory_phv.cpp" "tests/CMakeFiles/sf_test_asic.dir/asic/test_memory_phv.cpp.o" "gcc" "tests/CMakeFiles/sf_test_asic.dir/asic/test_memory_phv.cpp.o.d"
  "/root/repo/tests/asic/test_parser.cpp" "tests/CMakeFiles/sf_test_asic.dir/asic/test_parser.cpp.o" "gcc" "tests/CMakeFiles/sf_test_asic.dir/asic/test_parser.cpp.o.d"
  "/root/repo/tests/asic/test_placer.cpp" "tests/CMakeFiles/sf_test_asic.dir/asic/test_placer.cpp.o" "gcc" "tests/CMakeFiles/sf_test_asic.dir/asic/test_placer.cpp.o.d"
  "/root/repo/tests/asic/test_placer_properties.cpp" "tests/CMakeFiles/sf_test_asic.dir/asic/test_placer_properties.cpp.o" "gcc" "tests/CMakeFiles/sf_test_asic.dir/asic/test_placer_properties.cpp.o.d"
  "/root/repo/tests/asic/test_stage_planner.cpp" "tests/CMakeFiles/sf_test_asic.dir/asic/test_stage_planner.cpp.o" "gcc" "tests/CMakeFiles/sf_test_asic.dir/asic/test_stage_planner.cpp.o.d"
  "/root/repo/tests/asic/test_walker.cpp" "tests/CMakeFiles/sf_test_asic.dir/asic/test_walker.cpp.o" "gcc" "tests/CMakeFiles/sf_test_asic.dir/asic/test_walker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_xgwh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
