file(REMOVE_RECURSE
  "CMakeFiles/sf_test_asic.dir/asic/test_memory_phv.cpp.o"
  "CMakeFiles/sf_test_asic.dir/asic/test_memory_phv.cpp.o.d"
  "CMakeFiles/sf_test_asic.dir/asic/test_parser.cpp.o"
  "CMakeFiles/sf_test_asic.dir/asic/test_parser.cpp.o.d"
  "CMakeFiles/sf_test_asic.dir/asic/test_placer.cpp.o"
  "CMakeFiles/sf_test_asic.dir/asic/test_placer.cpp.o.d"
  "CMakeFiles/sf_test_asic.dir/asic/test_placer_properties.cpp.o"
  "CMakeFiles/sf_test_asic.dir/asic/test_placer_properties.cpp.o.d"
  "CMakeFiles/sf_test_asic.dir/asic/test_stage_planner.cpp.o"
  "CMakeFiles/sf_test_asic.dir/asic/test_stage_planner.cpp.o.d"
  "CMakeFiles/sf_test_asic.dir/asic/test_walker.cpp.o"
  "CMakeFiles/sf_test_asic.dir/asic/test_walker.cpp.o.d"
  "sf_test_asic"
  "sf_test_asic.pdb"
  "sf_test_asic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
