# Empty compiler generated dependencies file for sf_test_asic.
# This may be replaced when dependencies are built.
