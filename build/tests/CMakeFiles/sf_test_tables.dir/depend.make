# Empty dependencies file for sf_test_tables.
# This may be replaced when dependencies are built.
