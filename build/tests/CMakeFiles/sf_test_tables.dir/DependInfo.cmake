
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tables/test_alpm.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_alpm.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_alpm.cpp.o.d"
  "/root/repo/tests/tables/test_digest_table.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_digest_table.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_digest_table.cpp.o.d"
  "/root/repo/tests/tables/test_dir24_8.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_dir24_8.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_dir24_8.cpp.o.d"
  "/root/repo/tests/tables/test_exact_and_masked.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_exact_and_masked.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_exact_and_masked.cpp.o.d"
  "/root/repo/tests/tables/test_lpm_equivalence.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_lpm_equivalence.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_lpm_equivalence.cpp.o.d"
  "/root/repo/tests/tables/test_lpm_trie.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_lpm_trie.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_lpm_trie.cpp.o.d"
  "/root/repo/tests/tables/test_range_expansion.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_range_expansion.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_range_expansion.cpp.o.d"
  "/root/repo/tests/tables/test_reference_fuzz.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_reference_fuzz.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_reference_fuzz.cpp.o.d"
  "/root/repo/tests/tables/test_service_tables.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_service_tables.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_service_tables.cpp.o.d"
  "/root/repo/tests/tables/test_tcam.cpp" "tests/CMakeFiles/sf_test_tables.dir/tables/test_tcam.cpp.o" "gcc" "tests/CMakeFiles/sf_test_tables.dir/tables/test_tcam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
