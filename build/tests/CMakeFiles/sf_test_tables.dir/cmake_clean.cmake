file(REMOVE_RECURSE
  "CMakeFiles/sf_test_tables.dir/tables/test_alpm.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_alpm.cpp.o.d"
  "CMakeFiles/sf_test_tables.dir/tables/test_digest_table.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_digest_table.cpp.o.d"
  "CMakeFiles/sf_test_tables.dir/tables/test_dir24_8.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_dir24_8.cpp.o.d"
  "CMakeFiles/sf_test_tables.dir/tables/test_exact_and_masked.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_exact_and_masked.cpp.o.d"
  "CMakeFiles/sf_test_tables.dir/tables/test_lpm_equivalence.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_lpm_equivalence.cpp.o.d"
  "CMakeFiles/sf_test_tables.dir/tables/test_lpm_trie.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_lpm_trie.cpp.o.d"
  "CMakeFiles/sf_test_tables.dir/tables/test_range_expansion.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_range_expansion.cpp.o.d"
  "CMakeFiles/sf_test_tables.dir/tables/test_reference_fuzz.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_reference_fuzz.cpp.o.d"
  "CMakeFiles/sf_test_tables.dir/tables/test_service_tables.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_service_tables.cpp.o.d"
  "CMakeFiles/sf_test_tables.dir/tables/test_tcam.cpp.o"
  "CMakeFiles/sf_test_tables.dir/tables/test_tcam.cpp.o.d"
  "sf_test_tables"
  "sf_test_tables.pdb"
  "sf_test_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
