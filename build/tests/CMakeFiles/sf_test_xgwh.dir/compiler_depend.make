# Empty compiler generated dependencies file for sf_test_xgwh.
# This may be replaced when dependencies are built.
