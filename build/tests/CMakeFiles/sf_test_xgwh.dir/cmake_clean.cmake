file(REMOVE_RECURSE
  "CMakeFiles/sf_test_xgwh.dir/xgwh/test_hw_sw_equivalence.cpp.o"
  "CMakeFiles/sf_test_xgwh.dir/xgwh/test_hw_sw_equivalence.cpp.o.d"
  "CMakeFiles/sf_test_xgwh.dir/xgwh/test_p4_export.cpp.o"
  "CMakeFiles/sf_test_xgwh.dir/xgwh/test_p4_export.cpp.o.d"
  "CMakeFiles/sf_test_xgwh.dir/xgwh/test_xgwh.cpp.o"
  "CMakeFiles/sf_test_xgwh.dir/xgwh/test_xgwh.cpp.o.d"
  "CMakeFiles/sf_test_xgwh.dir/xgwh/test_xgwh_telemetry.cpp.o"
  "CMakeFiles/sf_test_xgwh.dir/xgwh/test_xgwh_telemetry.cpp.o.d"
  "sf_test_xgwh"
  "sf_test_xgwh.pdb"
  "sf_test_xgwh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_xgwh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
