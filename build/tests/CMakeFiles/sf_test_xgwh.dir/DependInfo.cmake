
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xgwh/test_hw_sw_equivalence.cpp" "tests/CMakeFiles/sf_test_xgwh.dir/xgwh/test_hw_sw_equivalence.cpp.o" "gcc" "tests/CMakeFiles/sf_test_xgwh.dir/xgwh/test_hw_sw_equivalence.cpp.o.d"
  "/root/repo/tests/xgwh/test_p4_export.cpp" "tests/CMakeFiles/sf_test_xgwh.dir/xgwh/test_p4_export.cpp.o" "gcc" "tests/CMakeFiles/sf_test_xgwh.dir/xgwh/test_p4_export.cpp.o.d"
  "/root/repo/tests/xgwh/test_xgwh.cpp" "tests/CMakeFiles/sf_test_xgwh.dir/xgwh/test_xgwh.cpp.o" "gcc" "tests/CMakeFiles/sf_test_xgwh.dir/xgwh/test_xgwh.cpp.o.d"
  "/root/repo/tests/xgwh/test_xgwh_telemetry.cpp" "tests/CMakeFiles/sf_test_xgwh.dir/xgwh/test_xgwh_telemetry.cpp.o" "gcc" "tests/CMakeFiles/sf_test_xgwh.dir/xgwh/test_xgwh_telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_xgwh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
