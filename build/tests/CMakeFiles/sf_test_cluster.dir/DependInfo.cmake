
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/test_cluster.cpp" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_cluster.cpp.o.d"
  "/root/repo/tests/cluster/test_controller.cpp" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_controller.cpp.o" "gcc" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_controller.cpp.o.d"
  "/root/repo/tests/cluster/test_controller_fuzz.cpp" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_controller_fuzz.cpp.o" "gcc" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_controller_fuzz.cpp.o.d"
  "/root/repo/tests/cluster/test_health.cpp" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_health.cpp.o" "gcc" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_health.cpp.o.d"
  "/root/repo/tests/cluster/test_probe.cpp" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_probe.cpp.o" "gcc" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_probe.cpp.o.d"
  "/root/repo/tests/cluster/test_upgrade.cpp" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_upgrade.cpp.o" "gcc" "tests/CMakeFiles/sf_test_cluster.dir/cluster/test_upgrade.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_xgwh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
