file(REMOVE_RECURSE
  "CMakeFiles/sf_test_cluster.dir/cluster/test_cluster.cpp.o"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_cluster.cpp.o.d"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_controller.cpp.o"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_controller.cpp.o.d"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_controller_fuzz.cpp.o"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_controller_fuzz.cpp.o.d"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_health.cpp.o"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_health.cpp.o.d"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_probe.cpp.o"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_probe.cpp.o.d"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_upgrade.cpp.o"
  "CMakeFiles/sf_test_cluster.dir/cluster/test_upgrade.cpp.o.d"
  "sf_test_cluster"
  "sf_test_cluster.pdb"
  "sf_test_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
