# Empty dependencies file for sf_test_cluster.
# This may be replaced when dependencies are built.
