
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/x86/test_interval_properties.cpp" "tests/CMakeFiles/sf_test_x86.dir/x86/test_interval_properties.cpp.o" "gcc" "tests/CMakeFiles/sf_test_x86.dir/x86/test_interval_properties.cpp.o.d"
  "/root/repo/tests/x86/test_queue_sim.cpp" "tests/CMakeFiles/sf_test_x86.dir/x86/test_queue_sim.cpp.o" "gcc" "tests/CMakeFiles/sf_test_x86.dir/x86/test_queue_sim.cpp.o.d"
  "/root/repo/tests/x86/test_snat_fuzz.cpp" "tests/CMakeFiles/sf_test_x86.dir/x86/test_snat_fuzz.cpp.o" "gcc" "tests/CMakeFiles/sf_test_x86.dir/x86/test_snat_fuzz.cpp.o.d"
  "/root/repo/tests/x86/test_x86.cpp" "tests/CMakeFiles/sf_test_x86.dir/x86/test_x86.cpp.o" "gcc" "tests/CMakeFiles/sf_test_x86.dir/x86/test_x86.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
