file(REMOVE_RECURSE
  "CMakeFiles/sf_test_x86.dir/x86/test_interval_properties.cpp.o"
  "CMakeFiles/sf_test_x86.dir/x86/test_interval_properties.cpp.o.d"
  "CMakeFiles/sf_test_x86.dir/x86/test_queue_sim.cpp.o"
  "CMakeFiles/sf_test_x86.dir/x86/test_queue_sim.cpp.o.d"
  "CMakeFiles/sf_test_x86.dir/x86/test_snat_fuzz.cpp.o"
  "CMakeFiles/sf_test_x86.dir/x86/test_snat_fuzz.cpp.o.d"
  "CMakeFiles/sf_test_x86.dir/x86/test_x86.cpp.o"
  "CMakeFiles/sf_test_x86.dir/x86/test_x86.cpp.o.d"
  "sf_test_x86"
  "sf_test_x86.pdb"
  "sf_test_x86[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
