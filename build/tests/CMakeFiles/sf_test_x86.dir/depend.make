# Empty dependencies file for sf_test_x86.
# This may be replaced when dependencies are built.
