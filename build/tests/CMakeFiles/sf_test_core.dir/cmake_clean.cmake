file(REMOVE_RECURSE
  "CMakeFiles/sf_test_core.dir/core/test_capacity_planner.cpp.o"
  "CMakeFiles/sf_test_core.dir/core/test_capacity_planner.cpp.o.d"
  "CMakeFiles/sf_test_core.dir/core/test_core.cpp.o"
  "CMakeFiles/sf_test_core.dir/core/test_core.cpp.o.d"
  "CMakeFiles/sf_test_core.dir/core/test_path_trace.cpp.o"
  "CMakeFiles/sf_test_core.dir/core/test_path_trace.cpp.o.d"
  "CMakeFiles/sf_test_core.dir/core/test_region.cpp.o"
  "CMakeFiles/sf_test_core.dir/core/test_region.cpp.o.d"
  "CMakeFiles/sf_test_core.dir/core/test_region_tunnels.cpp.o"
  "CMakeFiles/sf_test_core.dir/core/test_region_tunnels.cpp.o.d"
  "CMakeFiles/sf_test_core.dir/core/test_rollout.cpp.o"
  "CMakeFiles/sf_test_core.dir/core/test_rollout.cpp.o.d"
  "sf_test_core"
  "sf_test_core.pdb"
  "sf_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
