
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_capacity_planner.cpp" "tests/CMakeFiles/sf_test_core.dir/core/test_capacity_planner.cpp.o" "gcc" "tests/CMakeFiles/sf_test_core.dir/core/test_capacity_planner.cpp.o.d"
  "/root/repo/tests/core/test_core.cpp" "tests/CMakeFiles/sf_test_core.dir/core/test_core.cpp.o" "gcc" "tests/CMakeFiles/sf_test_core.dir/core/test_core.cpp.o.d"
  "/root/repo/tests/core/test_path_trace.cpp" "tests/CMakeFiles/sf_test_core.dir/core/test_path_trace.cpp.o" "gcc" "tests/CMakeFiles/sf_test_core.dir/core/test_path_trace.cpp.o.d"
  "/root/repo/tests/core/test_region.cpp" "tests/CMakeFiles/sf_test_core.dir/core/test_region.cpp.o" "gcc" "tests/CMakeFiles/sf_test_core.dir/core/test_region.cpp.o.d"
  "/root/repo/tests/core/test_region_tunnels.cpp" "tests/CMakeFiles/sf_test_core.dir/core/test_region_tunnels.cpp.o" "gcc" "tests/CMakeFiles/sf_test_core.dir/core/test_region_tunnels.cpp.o.d"
  "/root/repo/tests/core/test_rollout.cpp" "tests/CMakeFiles/sf_test_core.dir/core/test_rollout.cpp.o" "gcc" "tests/CMakeFiles/sf_test_core.dir/core/test_rollout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_xgwh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
