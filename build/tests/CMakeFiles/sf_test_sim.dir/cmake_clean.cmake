file(REMOVE_RECURSE
  "CMakeFiles/sf_test_sim.dir/sim/test_sim.cpp.o"
  "CMakeFiles/sf_test_sim.dir/sim/test_sim.cpp.o.d"
  "sf_test_sim"
  "sf_test_sim.pdb"
  "sf_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
