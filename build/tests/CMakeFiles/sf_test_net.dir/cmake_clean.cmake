file(REMOVE_RECURSE
  "CMakeFiles/sf_test_net.dir/net/test_fuzz_roundtrip.cpp.o"
  "CMakeFiles/sf_test_net.dir/net/test_fuzz_roundtrip.cpp.o.d"
  "CMakeFiles/sf_test_net.dir/net/test_ip.cpp.o"
  "CMakeFiles/sf_test_net.dir/net/test_ip.cpp.o.d"
  "CMakeFiles/sf_test_net.dir/net/test_mac_hash_checksum.cpp.o"
  "CMakeFiles/sf_test_net.dir/net/test_mac_hash_checksum.cpp.o.d"
  "CMakeFiles/sf_test_net.dir/net/test_packet.cpp.o"
  "CMakeFiles/sf_test_net.dir/net/test_packet.cpp.o.d"
  "sf_test_net"
  "sf_test_net.pdb"
  "sf_test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
