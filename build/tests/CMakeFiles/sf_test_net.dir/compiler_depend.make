# Empty compiler generated dependencies file for sf_test_net.
# This may be replaced when dependencies are built.
