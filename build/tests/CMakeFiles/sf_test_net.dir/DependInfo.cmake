
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_fuzz_roundtrip.cpp" "tests/CMakeFiles/sf_test_net.dir/net/test_fuzz_roundtrip.cpp.o" "gcc" "tests/CMakeFiles/sf_test_net.dir/net/test_fuzz_roundtrip.cpp.o.d"
  "/root/repo/tests/net/test_ip.cpp" "tests/CMakeFiles/sf_test_net.dir/net/test_ip.cpp.o" "gcc" "tests/CMakeFiles/sf_test_net.dir/net/test_ip.cpp.o.d"
  "/root/repo/tests/net/test_mac_hash_checksum.cpp" "tests/CMakeFiles/sf_test_net.dir/net/test_mac_hash_checksum.cpp.o" "gcc" "tests/CMakeFiles/sf_test_net.dir/net/test_mac_hash_checksum.cpp.o.d"
  "/root/repo/tests/net/test_packet.cpp" "tests/CMakeFiles/sf_test_net.dir/net/test_packet.cpp.o" "gcc" "tests/CMakeFiles/sf_test_net.dir/net/test_packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
