file(REMOVE_RECURSE
  "CMakeFiles/sf_test_workload.dir/workload/test_flow_invariants.cpp.o"
  "CMakeFiles/sf_test_workload.dir/workload/test_flow_invariants.cpp.o.d"
  "CMakeFiles/sf_test_workload.dir/workload/test_patterns_updates.cpp.o"
  "CMakeFiles/sf_test_workload.dir/workload/test_patterns_updates.cpp.o.d"
  "CMakeFiles/sf_test_workload.dir/workload/test_rng_zipf.cpp.o"
  "CMakeFiles/sf_test_workload.dir/workload/test_rng_zipf.cpp.o.d"
  "CMakeFiles/sf_test_workload.dir/workload/test_topology_flows.cpp.o"
  "CMakeFiles/sf_test_workload.dir/workload/test_topology_flows.cpp.o.d"
  "CMakeFiles/sf_test_workload.dir/workload/test_trace_io.cpp.o"
  "CMakeFiles/sf_test_workload.dir/workload/test_trace_io.cpp.o.d"
  "sf_test_workload"
  "sf_test_workload.pdb"
  "sf_test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
