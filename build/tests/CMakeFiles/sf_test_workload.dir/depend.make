# Empty dependencies file for sf_test_workload.
# This may be replaced when dependencies are built.
