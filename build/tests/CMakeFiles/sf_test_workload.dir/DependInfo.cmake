
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_flow_invariants.cpp" "tests/CMakeFiles/sf_test_workload.dir/workload/test_flow_invariants.cpp.o" "gcc" "tests/CMakeFiles/sf_test_workload.dir/workload/test_flow_invariants.cpp.o.d"
  "/root/repo/tests/workload/test_patterns_updates.cpp" "tests/CMakeFiles/sf_test_workload.dir/workload/test_patterns_updates.cpp.o" "gcc" "tests/CMakeFiles/sf_test_workload.dir/workload/test_patterns_updates.cpp.o.d"
  "/root/repo/tests/workload/test_rng_zipf.cpp" "tests/CMakeFiles/sf_test_workload.dir/workload/test_rng_zipf.cpp.o" "gcc" "tests/CMakeFiles/sf_test_workload.dir/workload/test_rng_zipf.cpp.o.d"
  "/root/repo/tests/workload/test_topology_flows.cpp" "tests/CMakeFiles/sf_test_workload.dir/workload/test_topology_flows.cpp.o" "gcc" "tests/CMakeFiles/sf_test_workload.dir/workload/test_topology_flows.cpp.o.d"
  "/root/repo/tests/workload/test_trace_io.cpp" "tests/CMakeFiles/sf_test_workload.dir/workload/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/sf_test_workload.dir/workload/test_trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
