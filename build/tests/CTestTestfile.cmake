# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sf_test_net[1]_include.cmake")
include("/root/repo/build/tests/sf_test_tables[1]_include.cmake")
include("/root/repo/build/tests/sf_test_workload[1]_include.cmake")
include("/root/repo/build/tests/sf_test_sim[1]_include.cmake")
include("/root/repo/build/tests/sf_test_asic[1]_include.cmake")
include("/root/repo/build/tests/sf_test_xgwh[1]_include.cmake")
include("/root/repo/build/tests/sf_test_x86[1]_include.cmake")
include("/root/repo/build/tests/sf_test_cluster[1]_include.cmake")
include("/root/repo/build/tests/sf_test_core[1]_include.cmake")
include("/root/repo/build/tests/sf_test_integration[1]_include.cmake")
