# Empty dependencies file for vpc_peering.
# This may be replaced when dependencies are built.
