file(REMOVE_RECURSE
  "CMakeFiles/vpc_peering.dir/vpc_peering.cpp.o"
  "CMakeFiles/vpc_peering.dir/vpc_peering.cpp.o.d"
  "vpc_peering"
  "vpc_peering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_peering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
