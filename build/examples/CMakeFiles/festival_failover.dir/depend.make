# Empty dependencies file for festival_failover.
# This may be replaced when dependencies are built.
