file(REMOVE_RECURSE
  "CMakeFiles/festival_failover.dir/festival_failover.cpp.o"
  "CMakeFiles/festival_failover.dir/festival_failover.cpp.o.d"
  "festival_failover"
  "festival_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/festival_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
