file(REMOVE_RECURSE
  "CMakeFiles/export_p4.dir/export_p4.cpp.o"
  "CMakeFiles/export_p4.dir/export_p4.cpp.o.d"
  "export_p4"
  "export_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
