# Empty dependencies file for export_p4.
# This may be replaced when dependencies are built.
