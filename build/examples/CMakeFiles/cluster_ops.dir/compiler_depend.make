# Empty compiler generated dependencies file for cluster_ops.
# This may be replaced when dependencies are built.
