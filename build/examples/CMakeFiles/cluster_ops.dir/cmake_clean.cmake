file(REMOVE_RECURSE
  "CMakeFiles/cluster_ops.dir/cluster_ops.cpp.o"
  "CMakeFiles/cluster_ops.dir/cluster_ops.cpp.o.d"
  "cluster_ops"
  "cluster_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
