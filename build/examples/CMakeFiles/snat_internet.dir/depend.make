# Empty dependencies file for snat_internet.
# This may be replaced when dependencies are built.
