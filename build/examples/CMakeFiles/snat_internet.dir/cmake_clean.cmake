file(REMOVE_RECURSE
  "CMakeFiles/snat_internet.dir/snat_internet.cpp.o"
  "CMakeFiles/snat_internet.dir/snat_internet.cpp.o.d"
  "snat_internet"
  "snat_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snat_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
