file(REMOVE_RECURSE
  "CMakeFiles/sf_workload.dir/workload/flowgen.cpp.o"
  "CMakeFiles/sf_workload.dir/workload/flowgen.cpp.o.d"
  "CMakeFiles/sf_workload.dir/workload/rng.cpp.o"
  "CMakeFiles/sf_workload.dir/workload/rng.cpp.o.d"
  "CMakeFiles/sf_workload.dir/workload/topology.cpp.o"
  "CMakeFiles/sf_workload.dir/workload/topology.cpp.o.d"
  "CMakeFiles/sf_workload.dir/workload/trace_io.cpp.o"
  "CMakeFiles/sf_workload.dir/workload/trace_io.cpp.o.d"
  "CMakeFiles/sf_workload.dir/workload/traffic_pattern.cpp.o"
  "CMakeFiles/sf_workload.dir/workload/traffic_pattern.cpp.o.d"
  "CMakeFiles/sf_workload.dir/workload/update_events.cpp.o"
  "CMakeFiles/sf_workload.dir/workload/update_events.cpp.o.d"
  "CMakeFiles/sf_workload.dir/workload/zipf.cpp.o"
  "CMakeFiles/sf_workload.dir/workload/zipf.cpp.o.d"
  "libsf_workload.a"
  "libsf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
