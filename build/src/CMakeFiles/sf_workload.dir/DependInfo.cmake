
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flowgen.cpp" "src/CMakeFiles/sf_workload.dir/workload/flowgen.cpp.o" "gcc" "src/CMakeFiles/sf_workload.dir/workload/flowgen.cpp.o.d"
  "/root/repo/src/workload/rng.cpp" "src/CMakeFiles/sf_workload.dir/workload/rng.cpp.o" "gcc" "src/CMakeFiles/sf_workload.dir/workload/rng.cpp.o.d"
  "/root/repo/src/workload/topology.cpp" "src/CMakeFiles/sf_workload.dir/workload/topology.cpp.o" "gcc" "src/CMakeFiles/sf_workload.dir/workload/topology.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/CMakeFiles/sf_workload.dir/workload/trace_io.cpp.o" "gcc" "src/CMakeFiles/sf_workload.dir/workload/trace_io.cpp.o.d"
  "/root/repo/src/workload/traffic_pattern.cpp" "src/CMakeFiles/sf_workload.dir/workload/traffic_pattern.cpp.o" "gcc" "src/CMakeFiles/sf_workload.dir/workload/traffic_pattern.cpp.o.d"
  "/root/repo/src/workload/update_events.cpp" "src/CMakeFiles/sf_workload.dir/workload/update_events.cpp.o" "gcc" "src/CMakeFiles/sf_workload.dir/workload/update_events.cpp.o.d"
  "/root/repo/src/workload/zipf.cpp" "src/CMakeFiles/sf_workload.dir/workload/zipf.cpp.o" "gcc" "src/CMakeFiles/sf_workload.dir/workload/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
