# Empty compiler generated dependencies file for sf_workload.
# This may be replaced when dependencies are built.
