
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cpp" "src/CMakeFiles/sf_net.dir/net/checksum.cpp.o" "gcc" "src/CMakeFiles/sf_net.dir/net/checksum.cpp.o.d"
  "/root/repo/src/net/hash.cpp" "src/CMakeFiles/sf_net.dir/net/hash.cpp.o" "gcc" "src/CMakeFiles/sf_net.dir/net/hash.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/CMakeFiles/sf_net.dir/net/headers.cpp.o" "gcc" "src/CMakeFiles/sf_net.dir/net/headers.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/CMakeFiles/sf_net.dir/net/ip.cpp.o" "gcc" "src/CMakeFiles/sf_net.dir/net/ip.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/CMakeFiles/sf_net.dir/net/mac.cpp.o" "gcc" "src/CMakeFiles/sf_net.dir/net/mac.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/sf_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/sf_net.dir/net/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
