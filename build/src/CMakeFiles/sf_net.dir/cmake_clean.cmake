file(REMOVE_RECURSE
  "CMakeFiles/sf_net.dir/net/checksum.cpp.o"
  "CMakeFiles/sf_net.dir/net/checksum.cpp.o.d"
  "CMakeFiles/sf_net.dir/net/hash.cpp.o"
  "CMakeFiles/sf_net.dir/net/hash.cpp.o.d"
  "CMakeFiles/sf_net.dir/net/headers.cpp.o"
  "CMakeFiles/sf_net.dir/net/headers.cpp.o.d"
  "CMakeFiles/sf_net.dir/net/ip.cpp.o"
  "CMakeFiles/sf_net.dir/net/ip.cpp.o.d"
  "CMakeFiles/sf_net.dir/net/mac.cpp.o"
  "CMakeFiles/sf_net.dir/net/mac.cpp.o.d"
  "CMakeFiles/sf_net.dir/net/packet.cpp.o"
  "CMakeFiles/sf_net.dir/net/packet.cpp.o.d"
  "libsf_net.a"
  "libsf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
