file(REMOVE_RECURSE
  "CMakeFiles/sf_tables.dir/tables/alpm.cpp.o"
  "CMakeFiles/sf_tables.dir/tables/alpm.cpp.o.d"
  "CMakeFiles/sf_tables.dir/tables/digest_table.cpp.o"
  "CMakeFiles/sf_tables.dir/tables/digest_table.cpp.o.d"
  "CMakeFiles/sf_tables.dir/tables/dir24_8.cpp.o"
  "CMakeFiles/sf_tables.dir/tables/dir24_8.cpp.o.d"
  "CMakeFiles/sf_tables.dir/tables/entry.cpp.o"
  "CMakeFiles/sf_tables.dir/tables/entry.cpp.o.d"
  "CMakeFiles/sf_tables.dir/tables/exact_table.cpp.o"
  "CMakeFiles/sf_tables.dir/tables/exact_table.cpp.o.d"
  "CMakeFiles/sf_tables.dir/tables/lpm_trie.cpp.o"
  "CMakeFiles/sf_tables.dir/tables/lpm_trie.cpp.o.d"
  "CMakeFiles/sf_tables.dir/tables/range_expansion.cpp.o"
  "CMakeFiles/sf_tables.dir/tables/range_expansion.cpp.o.d"
  "CMakeFiles/sf_tables.dir/tables/service_tables.cpp.o"
  "CMakeFiles/sf_tables.dir/tables/service_tables.cpp.o.d"
  "CMakeFiles/sf_tables.dir/tables/tcam.cpp.o"
  "CMakeFiles/sf_tables.dir/tables/tcam.cpp.o.d"
  "libsf_tables.a"
  "libsf_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
