file(REMOVE_RECURSE
  "libsf_tables.a"
)
