# Empty compiler generated dependencies file for sf_tables.
# This may be replaced when dependencies are built.
