
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tables/alpm.cpp" "src/CMakeFiles/sf_tables.dir/tables/alpm.cpp.o" "gcc" "src/CMakeFiles/sf_tables.dir/tables/alpm.cpp.o.d"
  "/root/repo/src/tables/digest_table.cpp" "src/CMakeFiles/sf_tables.dir/tables/digest_table.cpp.o" "gcc" "src/CMakeFiles/sf_tables.dir/tables/digest_table.cpp.o.d"
  "/root/repo/src/tables/dir24_8.cpp" "src/CMakeFiles/sf_tables.dir/tables/dir24_8.cpp.o" "gcc" "src/CMakeFiles/sf_tables.dir/tables/dir24_8.cpp.o.d"
  "/root/repo/src/tables/entry.cpp" "src/CMakeFiles/sf_tables.dir/tables/entry.cpp.o" "gcc" "src/CMakeFiles/sf_tables.dir/tables/entry.cpp.o.d"
  "/root/repo/src/tables/exact_table.cpp" "src/CMakeFiles/sf_tables.dir/tables/exact_table.cpp.o" "gcc" "src/CMakeFiles/sf_tables.dir/tables/exact_table.cpp.o.d"
  "/root/repo/src/tables/lpm_trie.cpp" "src/CMakeFiles/sf_tables.dir/tables/lpm_trie.cpp.o" "gcc" "src/CMakeFiles/sf_tables.dir/tables/lpm_trie.cpp.o.d"
  "/root/repo/src/tables/range_expansion.cpp" "src/CMakeFiles/sf_tables.dir/tables/range_expansion.cpp.o" "gcc" "src/CMakeFiles/sf_tables.dir/tables/range_expansion.cpp.o.d"
  "/root/repo/src/tables/service_tables.cpp" "src/CMakeFiles/sf_tables.dir/tables/service_tables.cpp.o" "gcc" "src/CMakeFiles/sf_tables.dir/tables/service_tables.cpp.o.d"
  "/root/repo/src/tables/tcam.cpp" "src/CMakeFiles/sf_tables.dir/tables/tcam.cpp.o" "gcc" "src/CMakeFiles/sf_tables.dir/tables/tcam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
