
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_cluster.cpp" "src/CMakeFiles/sf_core.dir/core/cache_cluster.cpp.o" "gcc" "src/CMakeFiles/sf_core.dir/core/cache_cluster.cpp.o.d"
  "/root/repo/src/core/capacity_planner.cpp" "src/CMakeFiles/sf_core.dir/core/capacity_planner.cpp.o" "gcc" "src/CMakeFiles/sf_core.dir/core/capacity_planner.cpp.o.d"
  "/root/repo/src/core/path_trace.cpp" "src/CMakeFiles/sf_core.dir/core/path_trace.cpp.o" "gcc" "src/CMakeFiles/sf_core.dir/core/path_trace.cpp.o.d"
  "/root/repo/src/core/rate_limiter.cpp" "src/CMakeFiles/sf_core.dir/core/rate_limiter.cpp.o" "gcc" "src/CMakeFiles/sf_core.dir/core/rate_limiter.cpp.o.d"
  "/root/repo/src/core/region.cpp" "src/CMakeFiles/sf_core.dir/core/region.cpp.o" "gcc" "src/CMakeFiles/sf_core.dir/core/region.cpp.o.d"
  "/root/repo/src/core/rollout.cpp" "src/CMakeFiles/sf_core.dir/core/rollout.cpp.o" "gcc" "src/CMakeFiles/sf_core.dir/core/rollout.cpp.o.d"
  "/root/repo/src/core/sailfish.cpp" "src/CMakeFiles/sf_core.dir/core/sailfish.cpp.o" "gcc" "src/CMakeFiles/sf_core.dir/core/sailfish.cpp.o.d"
  "/root/repo/src/core/table_sharing.cpp" "src/CMakeFiles/sf_core.dir/core/table_sharing.cpp.o" "gcc" "src/CMakeFiles/sf_core.dir/core/table_sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_xgwh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
