file(REMOVE_RECURSE
  "CMakeFiles/sf_core.dir/core/cache_cluster.cpp.o"
  "CMakeFiles/sf_core.dir/core/cache_cluster.cpp.o.d"
  "CMakeFiles/sf_core.dir/core/capacity_planner.cpp.o"
  "CMakeFiles/sf_core.dir/core/capacity_planner.cpp.o.d"
  "CMakeFiles/sf_core.dir/core/path_trace.cpp.o"
  "CMakeFiles/sf_core.dir/core/path_trace.cpp.o.d"
  "CMakeFiles/sf_core.dir/core/rate_limiter.cpp.o"
  "CMakeFiles/sf_core.dir/core/rate_limiter.cpp.o.d"
  "CMakeFiles/sf_core.dir/core/region.cpp.o"
  "CMakeFiles/sf_core.dir/core/region.cpp.o.d"
  "CMakeFiles/sf_core.dir/core/rollout.cpp.o"
  "CMakeFiles/sf_core.dir/core/rollout.cpp.o.d"
  "CMakeFiles/sf_core.dir/core/sailfish.cpp.o"
  "CMakeFiles/sf_core.dir/core/sailfish.cpp.o.d"
  "CMakeFiles/sf_core.dir/core/table_sharing.cpp.o"
  "CMakeFiles/sf_core.dir/core/table_sharing.cpp.o.d"
  "libsf_core.a"
  "libsf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
