file(REMOVE_RECURSE
  "CMakeFiles/sf_asic.dir/asic/chip_config.cpp.o"
  "CMakeFiles/sf_asic.dir/asic/chip_config.cpp.o.d"
  "CMakeFiles/sf_asic.dir/asic/memory.cpp.o"
  "CMakeFiles/sf_asic.dir/asic/memory.cpp.o.d"
  "CMakeFiles/sf_asic.dir/asic/parser.cpp.o"
  "CMakeFiles/sf_asic.dir/asic/parser.cpp.o.d"
  "CMakeFiles/sf_asic.dir/asic/phv.cpp.o"
  "CMakeFiles/sf_asic.dir/asic/phv.cpp.o.d"
  "CMakeFiles/sf_asic.dir/asic/pipeline.cpp.o"
  "CMakeFiles/sf_asic.dir/asic/pipeline.cpp.o.d"
  "CMakeFiles/sf_asic.dir/asic/placer.cpp.o"
  "CMakeFiles/sf_asic.dir/asic/placer.cpp.o.d"
  "CMakeFiles/sf_asic.dir/asic/stage_planner.cpp.o"
  "CMakeFiles/sf_asic.dir/asic/stage_planner.cpp.o.d"
  "CMakeFiles/sf_asic.dir/asic/walker.cpp.o"
  "CMakeFiles/sf_asic.dir/asic/walker.cpp.o.d"
  "libsf_asic.a"
  "libsf_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
