
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asic/chip_config.cpp" "src/CMakeFiles/sf_asic.dir/asic/chip_config.cpp.o" "gcc" "src/CMakeFiles/sf_asic.dir/asic/chip_config.cpp.o.d"
  "/root/repo/src/asic/memory.cpp" "src/CMakeFiles/sf_asic.dir/asic/memory.cpp.o" "gcc" "src/CMakeFiles/sf_asic.dir/asic/memory.cpp.o.d"
  "/root/repo/src/asic/parser.cpp" "src/CMakeFiles/sf_asic.dir/asic/parser.cpp.o" "gcc" "src/CMakeFiles/sf_asic.dir/asic/parser.cpp.o.d"
  "/root/repo/src/asic/phv.cpp" "src/CMakeFiles/sf_asic.dir/asic/phv.cpp.o" "gcc" "src/CMakeFiles/sf_asic.dir/asic/phv.cpp.o.d"
  "/root/repo/src/asic/pipeline.cpp" "src/CMakeFiles/sf_asic.dir/asic/pipeline.cpp.o" "gcc" "src/CMakeFiles/sf_asic.dir/asic/pipeline.cpp.o.d"
  "/root/repo/src/asic/placer.cpp" "src/CMakeFiles/sf_asic.dir/asic/placer.cpp.o" "gcc" "src/CMakeFiles/sf_asic.dir/asic/placer.cpp.o.d"
  "/root/repo/src/asic/stage_planner.cpp" "src/CMakeFiles/sf_asic.dir/asic/stage_planner.cpp.o" "gcc" "src/CMakeFiles/sf_asic.dir/asic/stage_planner.cpp.o.d"
  "/root/repo/src/asic/walker.cpp" "src/CMakeFiles/sf_asic.dir/asic/walker.cpp.o" "gcc" "src/CMakeFiles/sf_asic.dir/asic/walker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
