file(REMOVE_RECURSE
  "libsf_asic.a"
)
