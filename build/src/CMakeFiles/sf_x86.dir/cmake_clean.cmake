file(REMOVE_RECURSE
  "CMakeFiles/sf_x86.dir/x86/cost_model.cpp.o"
  "CMakeFiles/sf_x86.dir/x86/cost_model.cpp.o.d"
  "CMakeFiles/sf_x86.dir/x86/queue_sim.cpp.o"
  "CMakeFiles/sf_x86.dir/x86/queue_sim.cpp.o.d"
  "CMakeFiles/sf_x86.dir/x86/rss.cpp.o"
  "CMakeFiles/sf_x86.dir/x86/rss.cpp.o.d"
  "CMakeFiles/sf_x86.dir/x86/snat.cpp.o"
  "CMakeFiles/sf_x86.dir/x86/snat.cpp.o.d"
  "CMakeFiles/sf_x86.dir/x86/xgw_x86.cpp.o"
  "CMakeFiles/sf_x86.dir/x86/xgw_x86.cpp.o.d"
  "libsf_x86.a"
  "libsf_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
