file(REMOVE_RECURSE
  "libsf_x86.a"
)
