
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/cost_model.cpp" "src/CMakeFiles/sf_x86.dir/x86/cost_model.cpp.o" "gcc" "src/CMakeFiles/sf_x86.dir/x86/cost_model.cpp.o.d"
  "/root/repo/src/x86/queue_sim.cpp" "src/CMakeFiles/sf_x86.dir/x86/queue_sim.cpp.o" "gcc" "src/CMakeFiles/sf_x86.dir/x86/queue_sim.cpp.o.d"
  "/root/repo/src/x86/rss.cpp" "src/CMakeFiles/sf_x86.dir/x86/rss.cpp.o" "gcc" "src/CMakeFiles/sf_x86.dir/x86/rss.cpp.o.d"
  "/root/repo/src/x86/snat.cpp" "src/CMakeFiles/sf_x86.dir/x86/snat.cpp.o" "gcc" "src/CMakeFiles/sf_x86.dir/x86/snat.cpp.o.d"
  "/root/repo/src/x86/xgw_x86.cpp" "src/CMakeFiles/sf_x86.dir/x86/xgw_x86.cpp.o" "gcc" "src/CMakeFiles/sf_x86.dir/x86/xgw_x86.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
