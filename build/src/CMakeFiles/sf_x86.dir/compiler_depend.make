# Empty compiler generated dependencies file for sf_x86.
# This may be replaced when dependencies are built.
