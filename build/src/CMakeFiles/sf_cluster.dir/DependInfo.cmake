
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/sf_cluster.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/sf_cluster.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/controller.cpp" "src/CMakeFiles/sf_cluster.dir/cluster/controller.cpp.o" "gcc" "src/CMakeFiles/sf_cluster.dir/cluster/controller.cpp.o.d"
  "/root/repo/src/cluster/disaster_recovery.cpp" "src/CMakeFiles/sf_cluster.dir/cluster/disaster_recovery.cpp.o" "gcc" "src/CMakeFiles/sf_cluster.dir/cluster/disaster_recovery.cpp.o.d"
  "/root/repo/src/cluster/health.cpp" "src/CMakeFiles/sf_cluster.dir/cluster/health.cpp.o" "gcc" "src/CMakeFiles/sf_cluster.dir/cluster/health.cpp.o.d"
  "/root/repo/src/cluster/load_balancer.cpp" "src/CMakeFiles/sf_cluster.dir/cluster/load_balancer.cpp.o" "gcc" "src/CMakeFiles/sf_cluster.dir/cluster/load_balancer.cpp.o.d"
  "/root/repo/src/cluster/probe.cpp" "src/CMakeFiles/sf_cluster.dir/cluster/probe.cpp.o" "gcc" "src/CMakeFiles/sf_cluster.dir/cluster/probe.cpp.o.d"
  "/root/repo/src/cluster/upgrade.cpp" "src/CMakeFiles/sf_cluster.dir/cluster/upgrade.cpp.o" "gcc" "src/CMakeFiles/sf_cluster.dir/cluster/upgrade.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_xgwh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
