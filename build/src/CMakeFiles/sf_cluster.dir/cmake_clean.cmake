file(REMOVE_RECURSE
  "CMakeFiles/sf_cluster.dir/cluster/cluster.cpp.o"
  "CMakeFiles/sf_cluster.dir/cluster/cluster.cpp.o.d"
  "CMakeFiles/sf_cluster.dir/cluster/controller.cpp.o"
  "CMakeFiles/sf_cluster.dir/cluster/controller.cpp.o.d"
  "CMakeFiles/sf_cluster.dir/cluster/disaster_recovery.cpp.o"
  "CMakeFiles/sf_cluster.dir/cluster/disaster_recovery.cpp.o.d"
  "CMakeFiles/sf_cluster.dir/cluster/health.cpp.o"
  "CMakeFiles/sf_cluster.dir/cluster/health.cpp.o.d"
  "CMakeFiles/sf_cluster.dir/cluster/load_balancer.cpp.o"
  "CMakeFiles/sf_cluster.dir/cluster/load_balancer.cpp.o.d"
  "CMakeFiles/sf_cluster.dir/cluster/probe.cpp.o"
  "CMakeFiles/sf_cluster.dir/cluster/probe.cpp.o.d"
  "CMakeFiles/sf_cluster.dir/cluster/upgrade.cpp.o"
  "CMakeFiles/sf_cluster.dir/cluster/upgrade.cpp.o.d"
  "libsf_cluster.a"
  "libsf_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
