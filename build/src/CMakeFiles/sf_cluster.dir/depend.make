# Empty dependencies file for sf_cluster.
# This may be replaced when dependencies are built.
