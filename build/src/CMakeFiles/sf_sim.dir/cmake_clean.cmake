file(REMOVE_RECURSE
  "CMakeFiles/sf_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/sf_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/sf_sim.dir/sim/table_printer.cpp.o"
  "CMakeFiles/sf_sim.dir/sim/table_printer.cpp.o.d"
  "CMakeFiles/sf_sim.dir/sim/timeseries.cpp.o"
  "CMakeFiles/sf_sim.dir/sim/timeseries.cpp.o.d"
  "libsf_sim.a"
  "libsf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
