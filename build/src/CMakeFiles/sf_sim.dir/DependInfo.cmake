
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/sf_sim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/sf_sim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/table_printer.cpp" "src/CMakeFiles/sf_sim.dir/sim/table_printer.cpp.o" "gcc" "src/CMakeFiles/sf_sim.dir/sim/table_printer.cpp.o.d"
  "/root/repo/src/sim/timeseries.cpp" "src/CMakeFiles/sf_sim.dir/sim/timeseries.cpp.o" "gcc" "src/CMakeFiles/sf_sim.dir/sim/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
