file(REMOVE_RECURSE
  "CMakeFiles/sf_xgwh.dir/xgwh/compression_plan.cpp.o"
  "CMakeFiles/sf_xgwh.dir/xgwh/compression_plan.cpp.o.d"
  "CMakeFiles/sf_xgwh.dir/xgwh/gateway_program.cpp.o"
  "CMakeFiles/sf_xgwh.dir/xgwh/gateway_program.cpp.o.d"
  "CMakeFiles/sf_xgwh.dir/xgwh/p4_export.cpp.o"
  "CMakeFiles/sf_xgwh.dir/xgwh/p4_export.cpp.o.d"
  "CMakeFiles/sf_xgwh.dir/xgwh/xgwh.cpp.o"
  "CMakeFiles/sf_xgwh.dir/xgwh/xgwh.cpp.o.d"
  "libsf_xgwh.a"
  "libsf_xgwh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_xgwh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
