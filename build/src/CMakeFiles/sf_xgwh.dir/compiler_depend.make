# Empty compiler generated dependencies file for sf_xgwh.
# This may be replaced when dependencies are built.
