file(REMOVE_RECURSE
  "libsf_xgwh.a"
)
