
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xgwh/compression_plan.cpp" "src/CMakeFiles/sf_xgwh.dir/xgwh/compression_plan.cpp.o" "gcc" "src/CMakeFiles/sf_xgwh.dir/xgwh/compression_plan.cpp.o.d"
  "/root/repo/src/xgwh/gateway_program.cpp" "src/CMakeFiles/sf_xgwh.dir/xgwh/gateway_program.cpp.o" "gcc" "src/CMakeFiles/sf_xgwh.dir/xgwh/gateway_program.cpp.o.d"
  "/root/repo/src/xgwh/p4_export.cpp" "src/CMakeFiles/sf_xgwh.dir/xgwh/p4_export.cpp.o" "gcc" "src/CMakeFiles/sf_xgwh.dir/xgwh/p4_export.cpp.o.d"
  "/root/repo/src/xgwh/xgwh.cpp" "src/CMakeFiles/sf_xgwh.dir/xgwh/xgwh.cpp.o" "gcc" "src/CMakeFiles/sf_xgwh.dir/xgwh/xgwh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sf_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sf_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
