// Trace replay: run the region simulator over a user-supplied flow trace
// (CSV; format in src/workload/trace_io.hpp). With no argument, a sample
// trace is generated, written next to the binary, and replayed — showing
// the full path from "bring your own traffic" to a region report.
//
//   ./build/examples/trace_replay [trace.csv] [total_tbps]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/sailfish.hpp"
#include "workload/trace_io.hpp"

using namespace sf;

int main(int argc, char** argv) {
  const double total_tbps = argc > 2 ? std::strtod(argv[2], nullptr) : 1.0;

  core::SailfishOptions options = core::quickstart_options();
  core::SailfishSystem system = core::make_system(options);

  std::vector<workload::Flow> flows;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    const auto parsed = workload::parse_flows_csv(in);
    for (const auto& error : parsed.errors) {
      std::fprintf(stderr, "%s:%zu: %s\n", argv[1], error.line,
                   error.reason.c_str());
    }
    if (parsed.flows.empty()) {
      std::fprintf(stderr, "no usable flows in %s\n", argv[1]);
      return 1;
    }
    flows = parsed.flows;
    std::printf("loaded %zu flows from %s (%zu bad lines skipped)\n",
                flows.size(), argv[1], parsed.errors.size());
  } else {
    // Demonstrate the round trip: export the synthetic population, then
    // read it back as if it were a user trace.
    const std::string path = "trace_replay_sample.csv";
    std::ofstream out(path);
    workload::write_flows_csv(out, system.flows);
    out.close();
    std::ifstream in(path);
    flows = workload::parse_flows_csv(in).flows;
    std::printf("no trace given; wrote and re-loaded %zu sample flows "
                "(%s)\n",
                flows.size(), path.c_str());
  }

  const auto report =
      system.region->simulate_interval(flows, total_tbps * 1e12, 1);
  std::printf("\nreplay at %.2f Tbps over %zu flows:\n", total_tbps,
              flows.size());
  std::printf("  offered        %.3g pps\n", report.offered_pps);
  std::printf("  drop rate      %.3g\n", report.drop_rate);
  std::printf("  software path  %.3g Gbps (%.3f permille)\n",
              report.fallback_bps / 1e9, report.fallback_ratio * 1000);
  std::printf("  loopback pipes %.3g / %.3g Gbps\n",
              report.shard_pipe_bps[1] / 1e9,
              report.shard_pipe_bps[3] / 1e9);
  std::printf("  x86 max core   %.1f%%\n",
              report.x86_max_core_utilization * 100);
  return 0;
}
