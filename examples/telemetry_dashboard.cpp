// Telemetry dashboard: build a region, replay a flowgen workload through
// the functional datapath, then read everything back out of the telemetry
// subsystem — the merged registry snapshot in all three export formats,
// the sketch-backed heavy-hitter board, and the controller's event
// journal.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/telemetry_dashboard

#include <cstdio>

#include "core/sailfish.hpp"
#include "telemetry/telemetry.hpp"

using namespace sf;

int main() {
  std::printf("%s telemetry dashboard\n\n", core::version());

  core::SailfishSystem system =
      core::make_system(core::quickstart_options());
  std::printf("region: %zu VPCs, %zu XGW-H cluster(s), %zu XGW-x86 "
              "node(s), %zu flows\n\n",
              system.topology.vpcs.size(),
              system.region->controller().cluster_count(),
              system.region->x86_node_count(), system.flows.size());

  // Replay the workload: every flow sends packets proportional to its
  // weight, and a dataplane-style sketch watches the stream.
  telemetry::HeavyHitterTracker::Config hh;
  hh.sketch.width = 1024;
  hh.capacity = 8;
  telemetry::HeavyHitterTracker hitters(hh);

  double now = 1.0;
  for (const workload::Flow& flow : system.flows) {
    const auto packets =
        1 + static_cast<std::uint64_t>(flow.weight * 20000.0);
    net::OverlayPacket pkt;
    pkt.vni = flow.vni;
    pkt.inner = flow.tuple;
    pkt.payload_size = static_cast<std::uint16_t>(flow.packet_size);
    for (std::uint64_t p = 0; p < packets; ++p) {
      system.region->process(pkt, now);
      now += 1e-6;
    }
    hitters.add(telemetry::FlowKey{flow.vni, flow.tuple}, packets);
  }

  // The merged region snapshot is large (every device's registry); the
  // console table shows the region/controller level, the machine formats
  // are printed in full length summary.
  const telemetry::Snapshot region_level =
      system.region->registry().snapshot();
  const telemetry::Snapshot everything =
      system.region->telemetry_snapshot();

  std::printf("== region counters (console table) ==\n%s\n",
              telemetry::to_table(region_level).c_str());

  std::printf("== heavy hitters (sketch top-%zu of %llu packets) ==\n%s\n",
              hh.capacity,
              static_cast<unsigned long long>(hitters.total()),
              telemetry::to_table(hitters.top(hh.capacity), hitters.total())
                  .c_str());

  const std::string json = telemetry::to_json(everything);
  const std::string prom = telemetry::to_prometheus(everything);
  std::printf("== fleet snapshot, machine formats ==\n");
  std::printf("JSON export: %zu bytes, %zu instruments\n", json.size(),
              everything.counters.size() + everything.histograms.size());
  std::printf("Prometheus export: %zu bytes\n\n", prom.size());

  // A taste of each format, on the compact region-level snapshot.
  std::printf("JSON (region level):\n%s\n\n",
              telemetry::to_json(region_level).c_str());
  std::printf("Prometheus (region level):\n%s\n",
              telemetry::to_prometheus(region_level).c_str());

  std::printf("== controller event journal ==\n%s\n",
              system.region->controller().journal().to_string().c_str());
  return 0;
}
