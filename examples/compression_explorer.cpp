// Compression explorer: apply any subset of the paper's §4.4 techniques to
// a workload of your choosing and see the chip occupancy.
//
//   ./build/examples/compression_explorer [steps] [routes] [maps] [v6%]
//
//   steps   subset of "abcde" (default "abcde"); "-" for none
//           a=folding b=splitting c=pooling d=entry compression e=ALPM
//   routes  VXLAN route count (default 1000000)
//   maps    VM-NC mapping count (default 1000000)
//   v6%     IPv6 share of entries, 0..100 (default 25)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "asic/placer.hpp"
#include "sim/table_printer.hpp"
#include "xgwh/compression_plan.hpp"

using namespace sf;

int main(int argc, char** argv) {
  std::string steps = argc > 1 ? argv[1] : "abcde";
  if (steps == "-") steps.clear();
  const std::size_t routes =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000'000;
  const std::size_t maps =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'000'000;
  const double v6 =
      (argc > 4 ? std::strtod(argv[4], nullptr) : 25.0) / 100.0;

  asic::GatewayWorkload workload;
  workload.vxlan_routes_v6 =
      static_cast<std::size_t>(static_cast<double>(routes) * v6);
  workload.vxlan_routes_v4 = routes - workload.vxlan_routes_v6;
  workload.vm_maps_v6 =
      static_cast<std::size_t>(static_cast<double>(maps) * v6);
  workload.vm_maps_v4 = maps - workload.vm_maps_v6;

  asic::CompressionConfig config;
  try {
    config = xgwh::config_for_steps(steps);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  std::printf("workload: %zu routes + %zu mappings, %.0f%% IPv6\n", routes,
              maps, v6 * 100);
  std::printf("steps enabled:%s\n", steps.empty() ? " (none)" : "");
  for (char step : steps) {
    std::printf("  %c. %s\n", step, xgwh::step_description(step).c_str());
  }

  const asic::Placer placer{asic::ChipConfig{}};
  const auto report = placer.evaluate(workload, config);

  sim::TablePrinter table({"table", "SRAM words", "TCAM slices"});
  for (const auto& demand : report.demands) {
    table.add_row({demand.name, std::to_string(demand.sram_words),
                   std::to_string(demand.tcam_slices)});
  }
  table.print();

  std::printf("\npath occupancy: SRAM %s, TCAM %s -> %s\n",
              sim::format_percent(report.sram_path_worst, 1).c_str(),
              sim::format_percent(report.tcam_path_worst, 1).c_str(),
              report.feasible ? "FITS on the chip"
                              : "DOES NOT FIT (over capacity)");
  return 0;
}
