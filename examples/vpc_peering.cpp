// VPC peering walkthrough — the paper's Fig. 2 example, on real wire
// bytes: VPC A (vni 10) and VPC B (vni 11) are peered; a packet from VM
// 192.168.10.2 in A reaches VM 192.168.30.5 in B after an iterative VXLAN
// routing lookup ("Peer" -> re-lookup with VPC B -> "Local").

#include <cstdio>

#include "net/packet.hpp"
#include "xgwh/xgwh.hpp"

using namespace sf;

int main() {
  std::printf("Fig. 2 walkthrough: VM-VM forwarding at the cloud gateway\n\n");

  xgwh::XgwH gateway{xgwh::XgwH::Config{}};

  // The VXLAN routing table of Fig. 2.
  gateway.install_route(10, net::IpPrefix::must_parse("192.168.10.0/24"),
                        {tables::RouteScope::kLocal, 0, {}});
  gateway.install_route(10, net::IpPrefix::must_parse("192.168.30.0/24"),
                        {tables::RouteScope::kPeer, 11, {}});
  gateway.install_route(11, net::IpPrefix::must_parse("192.168.30.0/24"),
                        {tables::RouteScope::kLocal, 0, {}});
  gateway.install_route(11, net::IpPrefix::must_parse("192.168.10.0/24"),
                        {tables::RouteScope::kPeer, 10, {}});

  // The VM-NC mapping table of Fig. 2.
  gateway.install_mapping({10, net::IpAddr::must_parse("192.168.10.2")},
                          {net::Ipv4Addr(10, 1, 1, 11)});
  gateway.install_mapping({10, net::IpAddr::must_parse("192.168.10.3")},
                          {net::Ipv4Addr(10, 1, 1, 12)});
  gateway.install_mapping({11, net::IpAddr::must_parse("192.168.30.5")},
                          {net::Ipv4Addr(10, 1, 1, 15)});

  struct Case {
    const char* title;
    const char* dst;
    const char* paper_expectation;
  };
  const Case cases[] = {
      {"VM-VM, same VPC, different vSwitches", "192.168.10.3",
       "outer DIP = 10.1.1.12"},
      {"VM-VM, different VPCs (peered)", "192.168.30.5",
       "outer DIP = 10.1.1.15"},
  };

  for (const Case& c : cases) {
    net::OverlayPacket pkt;
    pkt.vni = 10;
    pkt.inner.src = net::IpAddr::must_parse("192.168.10.2");
    pkt.inner.dst = net::IpAddr::must_parse(c.dst);
    pkt.inner.proto = 6;
    pkt.inner.src_port = 53211;
    pkt.inner.dst_port = 22;
    pkt.payload_size = 120;

    // Serialize to real VXLAN-in-UDP bytes and re-parse, as the gateway's
    // parser would.
    const std::vector<std::uint8_t> wire = net::encode(pkt);
    const auto parsed = net::decode(wire);
    if (!parsed) {
      std::printf("parse failed!\n");
      return 1;
    }

    const auto result = gateway.forward(*parsed);
    std::printf("%s\n", c.title);
    std::printf("  in : vni=%u  inner %s -> %s  (%zu wire bytes)\n",
                pkt.vni, pkt.inner.src.to_string().c_str(),
                pkt.inner.dst.to_string().c_str(), wire.size());
    std::printf("  out: %s, outer %s -> %s, %u pipeline passes, %.3f us\n",
                to_string(result.action).c_str(),
                result.packet.outer_src_ip.to_string().c_str(),
                result.packet.outer_dst_ip.to_string().c_str(),
                result.passes, result.latency_us);
    std::printf("  paper: %s\n\n", c.paper_expectation);
  }
  return 0;
}
