// Emits the gateway's P4-16 program sketch (src/xgwh/p4_export.hpp) to a
// file or stdout — the reviewable artifact corresponding to the paper's
// production P4 program.
//
//   ./build/examples/export_p4 [steps] [output.p4]
//   steps: subset of "abcde" (default "abcde"); "-" for none.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "xgwh/compression_plan.hpp"
#include "xgwh/p4_export.hpp"

using namespace sf;

int main(int argc, char** argv) {
  std::string steps = argc > 1 ? argv[1] : "abcde";
  if (steps == "-") steps.clear();

  xgwh::P4ExportOptions options;
  try {
    options.compression = xgwh::config_for_steps(steps);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  const std::string program = export_p4_program(options);

  if (argc > 2) {
    std::ofstream out(argv[2]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[2]);
      return 1;
    }
    out << program;
    std::printf("wrote %zu bytes of P4 to %s (steps: %s)\n",
                program.size(), argv[2],
                steps.empty() ? "(none)" : steps.c_str());
  } else {
    std::cout << program;
  }
  return 0;
}
