// Operations playbook — §6.1 "Cluster construction" end to end:
//   1. build clusters and download tables from the controller,
//   2. run the consistency audit (controller state vs device tables),
//   3. run a probe campaign covering local / peer / Internet scenarios,
//   4. admit user traffic incrementally with health gates,
//   5. show the fleet install-time math that motivated hardware (§2.3).

#include <cstdio>

#include "cluster/health.hpp"
#include "cluster/probe.hpp"
#include "core/path_trace.hpp"
#include "core/rollout.hpp"
#include "core/sailfish.hpp"

using namespace sf;

int main() {
  std::printf("Sailfish cluster construction playbook (§6.1)\n\n");

  // 1. Build and provision.
  core::SailfishOptions options = core::quickstart_options();
  options.topology.vpc_count = 80;
  options.topology.total_vms = 2500;
  options.flows.flow_count = 1500;
  core::SailfishSystem system = core::make_system(options);
  std::printf("step 1: %zu VPCs installed into %zu cluster(s) + %zu "
              "XGW-x86 node(s)\n",
              system.admitted_vpcs,
              system.region->controller().cluster_count(),
              system.region->x86_node_count());

  // 2. Consistency check before anything touches user traffic.
  for (std::size_t c = 0; c < system.region->controller().cluster_count();
       ++c) {
    const auto audit = system.region->controller().check_consistency(c);
    std::printf("step 2: cluster %zu consistency: %zu entries checked, %zu "
                "missing -> %s\n",
                c, audit.entries_checked, audit.missing_on_device,
                audit.missing_on_device == 0 ? "PASS" : "FAIL");
    if (audit.missing_on_device != 0) return 1;
  }

  // 3. Probe campaign: synthetic packets over every service scenario.
  cluster::ProbeCampaign campaign;
  const auto probe_report =
      campaign.run_all(system.region->controller(), system.topology);
  std::printf("step 3: probe campaign: %zu probes, %zu mismatches -> %s\n",
              probe_report.probes_sent, probe_report.mismatches,
              probe_report.passed() ? "PASS" : "FAIL");
  if (!probe_report.passed()) {
    for (const std::string& failure : probe_report.failures) {
      std::printf("        %s\n", failure.c_str());
    }
    return 1;
  }

  // 4. Incremental traffic admission with a drop-rate gate.
  core::RolloutManager rollout;
  const auto stages =
      rollout.admit_traffic(*system.region, system.flows, 1.5e12);
  for (const auto& stage : stages) {
    std::printf(
        "step 4: admit %5.1f%% -> %6.2f Tbps, drop rate %.2e  [%s]\n",
        stage.fraction * 100, stage.offered_bps / 1e12, stage.drop_rate,
        stage.passed ? "healthy" : "HALT");
  }
  if (!core::RolloutManager::fully_admitted(stages, rollout.config())) {
    std::printf("rollout halted — traffic NOT fully admitted\n");
    return 1;
  }
  std::printf("        traffic fully admitted\n");

  // 5. Runtime monitoring: debounced health checks drive the disaster-
  //    recovery coordinator; a flap is absorbed, a sustained failure acts.
  cluster::HealthMonitor monitor(&system.region->disaster_recovery(),
                                 cluster::HealthMonitor::Config{});
  monitor.report_heartbeat(0, 0, false, 100.0);  // one blip: ignored
  monitor.report_heartbeat(0, 0, true, 101.0);
  for (double t = 102; t < 105; t += 1.0) {
    monitor.report_heartbeat(0, 1, false, t);     // sustained: acts
  }
  std::printf("\nstep 5: health monitor: device 0 flap absorbed; device 1 "
              "failed after 3 misses -> %zu/%zu devices live\n",
              system.region->controller().cluster(0).live_device_count(),
              system.region->controller().cluster(0).config()
                  .primary_devices);

  // 6. Diagnose one flow end to end (Vtrace-style path trace).
  const workload::Flow& flow = system.flows.front();
  net::OverlayPacket probe_pkt;
  probe_pkt.vni = flow.vni;
  probe_pkt.inner = flow.tuple;
  probe_pkt.payload_size = 100;
  const auto trace =
      core::trace_packet(*system.region, probe_pkt, 200.0);
  std::printf("step 6: path trace for vni %u -> %s:\n%s\n", flow.vni,
              flow.tuple.dst.to_string().c_str(),
              trace.to_string().c_str());

  // 7. Why hardware: time-to-coherence for table pushes (§2.3).
  const double x86_fleet_s =
      core::fleet_install_seconds(600, 2'000'000, 3000, 20);
  const double sailfish_fleet_s =
      core::fleet_install_seconds(10, 2'000'000, 3000, 10);
  std::printf(
      "\nstep 7: full-table push, 2M entries: 600-box XGW-x86 fleet %.1f h "
      "vs 10-box Sailfish fleet %.1f min (%.0fx faster to coherence)\n",
      x86_fleet_s / 3600.0, sailfish_fleet_s / 60.0,
      x86_fleet_s / sailfish_fleet_s);
  return 0;
}
