// Operations scenario: a festival traffic surge with a mid-peak gateway
// failure. Shows the region absorbing both — the §6.1 disaster-recovery
// story: ECMP shrinks around the failed node, the cold standby steps in,
// and when all primaries die the 1:1 hot-standby backup set takes over.

#include <cstdio>

#include "core/sailfish.hpp"
#include "workload/traffic_pattern.hpp"

using namespace sf;

int main() {
  std::printf("festival week with a device failure\n\n");

  core::SailfishOptions options = core::quickstart_options();
  options.region.controller.cluster_template.primary_devices = 4;
  options.region.controller.cluster_template.backup_devices = 4;
  options.flows.flow_count = 1200;
  core::SailfishSystem system = core::make_system(options);

  workload::TrafficPattern pattern;
  pattern.base_bps = 2e12;
  pattern.festival_start_day = 2.0;
  pattern.festival_end_day = 3.0;

  auto& recovery = system.region->disaster_recovery();
  auto& cluster = system.region->controller().cluster(0);

  const double step = 3600.0 * 6;  // 6-hour ticks for a compact log
  for (double t = 0; t < workload::days(4); t += step) {
    const double day = t / 86400.0;
    // Scripted incidents at festival peak.
    if (day == 2.25) recovery.on_device_failure(0, 0, t);
    if (day == 2.5) recovery.on_port_fault(0, 1, 7, t);
    if (day == 3.0) recovery.on_device_recovery(0, 0, t);

    const double offered = workload::rate_at(pattern, t);
    const auto report = system.region->simulate_interval(
        system.flows, offered, static_cast<std::uint64_t>(t));
    std::printf(
        "day %4.2f  rate %6.2f Tbps  drop %.2e  live devices %zu/%zu%s\n",
        day, offered / 1e12, report.drop_rate, cluster.live_device_count(),
        cluster.config().primary_devices,
        cluster.failed_over() ? "  [FAILED OVER TO BACKUPS]" : "");
  }

  std::printf("\ndisaster-recovery journal:\n");
  for (const auto& event : recovery.events()) {
    std::printf("  day %4.2f  %s\n", event.time / 86400.0,
                event.description.c_str());
  }
  std::printf("\ncold standby gateways remaining: %zu\n",
              recovery.cold_standby_available());

  // The controller's consistency audit still passes after the churn.
  const auto audit = system.region->controller().check_consistency(0);
  std::printf("consistency audit: %zu entries checked, %zu missing\n",
              audit.entries_checked, audit.missing_on_device);
  return audit.missing_on_device == 0 ? 0 : 1;
}
