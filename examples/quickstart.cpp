// Quickstart: build a complete Sailfish region over a synthetic topology,
// send a few packets end to end, and print where they went.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/sailfish.hpp"

using namespace sf;

namespace {

const char* path_name(const dataplane::Verdict& verdict) {
  switch (verdict.action) {
    case dataplane::Action::kForwardToNc:
      return verdict.software_path ? "XGW-H -> XGW-x86 -> NC"
                                   : "XGW-H -> NC";
    case dataplane::Action::kForwardTunnel:
      return verdict.software_path ? "XGW-H -> XGW-x86 -> NC"
                                   : "XGW-H -> remote region";
    case dataplane::Action::kSnatToInternet:
      return "XGW-H -> XGW-x86 -> Internet (SNAT)";
    case dataplane::Action::kDrop:
    case dataplane::Action::kFallbackToX86:
      return "dropped";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("%s quickstart\n\n", core::version());

  // One call builds the topology, the XGW-H clusters, the controller, the
  // XGW-x86 fleet — and installs every table.
  core::SailfishSystem system =
      core::make_system(core::quickstart_options());
  std::printf("region: %zu VPCs, %zu VMs, %zu routes; %zu XGW-H cluster(s), "
              "%zu XGW-x86 node(s)\n",
              system.topology.vpcs.size(), system.topology.total_vms(),
              system.topology.total_routes(),
              system.region->controller().cluster_count(),
              system.region->x86_node_count());

  // Send one packet per traffic class through the region.
  int shown_local = 0;
  int shown_internet = 0;
  for (const workload::Flow& flow : system.flows) {
    const bool internet = flow.scope == tables::RouteScope::kInternet;
    if (internet ? shown_internet >= 2 : shown_local >= 3) continue;
    (internet ? shown_internet : shown_local)++;

    net::OverlayPacket pkt;
    pkt.vni = flow.vni;
    pkt.inner = flow.tuple;
    pkt.payload_size = 400;
    const auto result = system.region->process(pkt, /*now=*/1.0);
    std::printf(
        "  vni %-6u %-22s -> %-22s  %-36s  %5.1f us\n", flow.vni,
        flow.tuple.src.to_string().c_str(),
        flow.tuple.dst.to_string().c_str(), path_name(result),
        result.latency_us);
    if (shown_local >= 3 && shown_internet >= 2) break;
  }

  // Show what the hardware gateways look like inside.
  const auto& device = system.region->controller().cluster(0).device(0);
  const auto report = device.occupancy_report();
  std::printf(
      "\nXGW-H device 0: %zu routes, %zu mappings; SRAM %.2f%%, TCAM "
      "%.2f%% of one pipeline (all compression steps on)\n",
      device.route_count(), device.mapping_count(),
      report.sram_path_worst * 100, report.tcam_path_worst * 100);
  std::printf("envelope: %.1f Tbps, %.2f Gpps (folded pipelines)\n",
              device.max_throughput_bps() / 1e12,
              device.max_packet_rate_pps() / 1e9);
  return 0;
}
