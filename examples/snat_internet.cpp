// Stateful SNAT cooperation between XGW-H and XGW-x86 — the paper's
// Fig. 11: a VM without a public address reaches the Internet through the
// software gateway's SNAT; the response returns through the same binding
// and is re-encapsulated toward the VM's NC.

#include <cstdio>

#include "x86/xgw_x86.hpp"
#include "xgwh/xgwh.hpp"

using namespace sf;

int main() {
  std::printf("Fig. 11 walkthrough: SNAT via XGW-H -> XGW-x86\n\n");

  // Hardware gateway: knows the VPC's routes; Internet scope steers to
  // the software fleet.
  xgwh::XgwH hw{xgwh::XgwH::Config{}};
  hw.install_route(42, net::IpPrefix::must_parse("192.168.0.0/16"),
                   {tables::RouteScope::kLocal, 0, {}});
  hw.install_route(42, net::IpPrefix::must_parse("0.0.0.0/0"),
                   {tables::RouteScope::kInternet, 0, {}});
  hw.install_mapping({42, net::IpAddr::must_parse("192.168.1.9")},
                     {net::Ipv4Addr(10, 1, 1, 30)});

  // Software gateway: full tables plus the O(100M)-entry-class session
  // table (scaled down here).
  x86::XgwX86::Config sw_config;
  sw_config.snat.public_ips = {net::Ipv4Addr(203, 0, 113, 7)};
  x86::XgwX86 sw(sw_config);
  sw.install_route(42, net::IpPrefix::must_parse("0.0.0.0/0"),
                   {tables::RouteScope::kInternet, 0, {}});
  sw.install_route(42, net::IpPrefix::must_parse("192.168.0.0/16"),
                   {tables::RouteScope::kLocal, 0, {}});
  sw.install_mapping({42, net::IpAddr::must_parse("192.168.1.9")},
                     {net::Ipv4Addr(10, 1, 1, 30)});

  // Request: VM 192.168.1.9 fetches a web page.
  net::OverlayPacket request;
  request.vni = 42;
  request.inner.src = net::IpAddr::must_parse("192.168.1.9");
  request.inner.dst = net::IpAddr::must_parse("93.184.216.34");
  request.inner.proto = 6;
  request.inner.src_port = 48000;
  request.inner.dst_port = 443;
  request.payload_size = 300;

  const auto hw_result = hw.forward(request, /*now=*/1.0);
  std::printf("XGW-H: %s (outer DIP -> %s)\n",
              to_string(hw_result.action).c_str(),
              hw_result.packet.outer_dst_ip.to_string().c_str());

  const auto sw_result = sw.forward(request, /*now=*/1.0);
  std::printf("XGW-x86: %s\n", to_string(sw_result.action).c_str());
  if (!sw_result.snat) {
    std::printf("SNAT failed!\n");
    return 1;
  }
  std::printf("  session %s:%u -> %s:%u\n",
              request.inner.src.to_string().c_str(),
              request.inner.src_port,
              request.inner.dst.to_string().c_str(),
              request.inner.dst_port);
  std::printf("  translated source: %s:%u (public)\n",
              sw_result.snat->public_ip.to_string().c_str(),
              sw_result.snat->public_port);
  const auto stats = sw.snat().stats();
  std::printf("  active sessions: %zu / pool capacity %zu\n",
              stats.active_sessions, sw.snat().capacity());

  // Response from the Internet peer: arrives at XGW-x86 (the public IP is
  // its), reverses the binding, re-encapsulates toward the VM's NC.
  auto response = sw.process_response(
      *sw_result.snat, request.inner.dst, request.inner.dst_port,
      /*payload_size=*/900, /*now=*/1.2);
  if (!response) {
    std::printf("reverse translation failed!\n");
    return 1;
  }
  std::printf(
      "\nresponse path: public %s:%u -> VM %s (VXLAN vni %u, outer DIP "
      "%s = the VM's NC)\n",
      sw_result.snat->public_ip.to_string().c_str(),
      sw_result.snat->public_port, response->inner.dst.to_string().c_str(),
      response->vni, response->outer_dst_ip.to_string().c_str());

  // Idle sessions expire and their bindings return to the pool.
  const std::size_t reclaimed = sw.snat().expire(/*now=*/1000.0);
  std::printf("after timeout: %zu session(s) reclaimed\n", reclaimed);
  return 0;
}
