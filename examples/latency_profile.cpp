// Latency deep-dive: where the paper's "2 µs vs 40 µs" (Fig. 18c) comes
// from. The XGW-H side is measured through the pipeline walker at several
// packet sizes; the XGW-x86 side runs the per-core queueing simulator
// across utilizations, showing the M/D/1 blow-up and the p99 tail that a
// mean-only model hides.

#include <cstdio>

#include "x86/cost_model.hpp"
#include "x86/queue_sim.hpp"
#include "xgwh/xgwh.hpp"

using namespace sf;

int main() {
  std::printf("latency profile: XGW-H pipeline vs XGW-x86 core queue\n\n");

  // Hardware: deterministic pipeline latency, folded (2 passes).
  xgwh::XgwH hw{xgwh::XgwH::Config{}};
  hw.install_route(10, net::IpPrefix::must_parse("10.0.0.0/8"),
                   {tables::RouteScope::kLocal, 0, {}});
  hw.install_mapping({10, net::IpAddr::must_parse("10.0.0.9")},
                     {net::Ipv4Addr(172, 16, 0, 1)});
  std::printf("XGW-H (folded, 2 passes):\n");
  std::printf("  %8s %12s\n", "payload", "latency");
  for (std::uint16_t payload : {32, 128, 384, 928, 1380}) {
    net::OverlayPacket pkt;
    pkt.vni = 10;
    pkt.inner.src = net::IpAddr::must_parse("10.0.0.1");
    pkt.inner.dst = net::IpAddr::must_parse("10.0.0.9");
    pkt.payload_size = payload;
    const auto result = hw.forward(pkt);
    std::printf("  %7uB %9.3f us\n", payload, result.latency_us);
  }

  // Software: queueing latency vs core utilization.
  const x86::X86CostModel model;
  x86::CoreQueueSim::Config config;
  config.service_pps = model.core_pps();
  config.base_latency_us = model.base_latency_us - 2;
  x86::CoreQueueSim sim(config);
  std::printf("\nXGW-x86 core (service %.2f Mpps):\n",
              model.core_pps() / 1e6);
  std::printf("  %6s %10s %10s %10s %10s\n", "util", "mean", "p50", "p99",
              "drops");
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.98, 1.2}) {
    const auto result = sim.run(rho * model.core_pps(), 3.0);
    std::printf("  %5.0f%% %7.1f us %7.1f us %7.1f us %9.2e\n", rho * 100,
                result.mean_latency_us, result.p50_latency_us,
                result.p99_latency_us, result.drop_rate);
  }
  std::printf(
      "\nthe heavy-hitter core (Fig. 4) lives on the right edge of this "
      "table — latency and loss explode exactly when a tenant's flow "
      "peaks. The pipeline's %0.1f us is load-independent until line "
      "rate.\n",
      2.2);
  return 0;
}
