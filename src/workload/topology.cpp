#include "workload/topology.hpp"

#include <algorithm>
#include <stdexcept>

#include "workload/zipf.hpp"

namespace sf::workload {
namespace {

// Overlay addressing. VPC address plans are tenant-chosen and may overlap
// across VPCs in general; this generator assigns globally distinct subnet
// ids so that peered VPCs (which must not overlap) stay disjoint. The v4
// subnet id wraps at 16 bits — fine at simulation scales, and still safe
// for table keys because the VNI scopes them.
net::IpAddr make_vm_ip(net::IpFamily family, std::size_t subnet,
                       std::size_t host) {
  if (family == net::IpFamily::kV4) {
    // 10.s.s'.host from the subnet id's 16 bits.
    return net::Ipv4Addr(static_cast<std::uint32_t>(
        (10u << 24) | ((subnet >> 8 & 0xff) << 16) | ((subnet & 0xff) << 8) |
        (host & 0xff)));
  }
  // 2001:db8:<subnet-hi>:<subnet-lo>::host
  return net::Ipv6Addr((0x20010db8ULL << 32) | (subnet & 0xffffffff),
                       host + 1);
}

net::IpPrefix make_subnet_prefix(net::IpFamily family, std::size_t subnet) {
  if (family == net::IpFamily::kV4) {
    return net::Ipv4Prefix(
        net::Ipv4Addr(static_cast<std::uint32_t>(
            (10u << 24) | ((subnet >> 8 & 0xff) << 16) |
            ((subnet & 0xff) << 8))),
        24);
  }
  return net::Ipv6Prefix(
      net::Ipv6Addr((0x20010db8ULL << 32) | (subnet & 0xffffffff), 0), 64);
}

}  // namespace

std::size_t RegionTopology::total_vms() const {
  std::size_t count = 0;
  for (const VpcRecord& vpc : vpcs) count += vpc.vms.size();
  return count;
}

std::size_t RegionTopology::total_routes() const {
  std::size_t count = 0;
  for (const VpcRecord& vpc : vpcs) count += vpc.routes.size();
  return count;
}

std::size_t RegionTopology::route_count(net::IpFamily family) const {
  std::size_t count = 0;
  for (const VpcRecord& vpc : vpcs) {
    if (vpc.family == family) count += vpc.routes.size();
  }
  return count;
}

std::size_t RegionTopology::vm_count(net::IpFamily family) const {
  std::size_t count = 0;
  for (const VpcRecord& vpc : vpcs) {
    if (vpc.family == family) count += vpc.vms.size();
  }
  return count;
}

std::vector<std::pair<tables::VxlanRouteKey, tables::VxlanRouteAction>>
RegionTopology::vxlan_routes() const {
  std::vector<std::pair<tables::VxlanRouteKey, tables::VxlanRouteAction>> out;
  out.reserve(total_routes());
  for (const VpcRecord& vpc : vpcs) {
    for (const RouteRecord& route : vpc.routes) {
      out.push_back({tables::VxlanRouteKey{vpc.vni, route.prefix},
                     route.action});
    }
  }
  return out;
}

std::vector<std::pair<tables::VmNcKey, tables::VmNcAction>>
RegionTopology::vm_mappings() const {
  std::vector<std::pair<tables::VmNcKey, tables::VmNcAction>> out;
  out.reserve(total_vms());
  for (const VpcRecord& vpc : vpcs) {
    for (const VmRecord& vm : vpc.vms) {
      out.push_back(
          {tables::VmNcKey{vpc.vni, vm.ip}, tables::VmNcAction{vm.nc_ip}});
    }
  }
  return out;
}

RegionTopology generate_topology(const TopologyConfig& config) {
  if (config.vpc_count == 0 || config.nc_count == 0) {
    throw std::invalid_argument("topology needs VPCs and NCs");
  }
  Rng rng(config.seed);
  RegionTopology region;

  region.ncs.reserve(config.nc_count);
  for (std::size_t i = 0; i < config.nc_count; ++i) {
    // Underlay servers in 172.16.0.0/12.
    region.ncs.push_back(net::Ipv4Addr(static_cast<std::uint32_t>(
        (172u << 24) | (16u << 16) | (i << 2) | 1)));
  }

  // Zipf VM counts: rank r gets a share of total_vms, at least 1.
  const std::vector<double> shares =
      zipf_weights(config.vpc_count, config.vm_zipf_exponent);

  region.vpcs.resize(config.vpc_count);
  std::size_t next_subnet_id = 1;
  for (std::size_t i = 0; i < config.vpc_count; ++i) {
    VpcRecord& vpc = region.vpcs[i];
    vpc.vni = static_cast<net::Vni>(1000 + i);
    vpc.family = rng.chance(config.ipv6_fraction) ? net::IpFamily::kV6
                                                  : net::IpFamily::kV4;
    const std::size_t vm_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               shares[i] * static_cast<double>(config.total_vms)));
    const std::size_t subnets = std::max<std::size_t>(
        config.subnets_per_vpc, 1 + vm_count / 200);
    const std::size_t subnet_base = next_subnet_id;
    next_subnet_id += subnets;

    vpc.vms.reserve(vm_count);
    for (std::size_t vm = 0; vm < vm_count; ++vm) {
      const std::size_t subnet = subnet_base + vm % subnets;
      const std::size_t host = 2 + vm / subnets;
      const net::Ipv4Addr nc =
          region.ncs[rng.uniform(region.ncs.size())];
      vpc.vms.push_back(VmRecord{make_vm_ip(vpc.family, subnet, host), nc});
    }

    // Local routes: one per subnet.
    for (std::size_t subnet = 0; subnet < subnets; ++subnet) {
      vpc.routes.push_back(RouteRecord{
          make_subnet_prefix(vpc.family, subnet_base + subnet),
          tables::VxlanRouteAction{tables::RouteScope::kLocal, 0, {}}});
    }
    // Default route to the Internet (served via SNAT at XGW-x86).
    vpc.routes.push_back(RouteRecord{
        vpc.family == net::IpFamily::kV4
            ? net::IpPrefix(net::Ipv4Prefix(net::Ipv4Addr(0), 0))
            : net::IpPrefix(net::Ipv6Prefix(net::Ipv6Addr(0, 0), 0)),
        tables::VxlanRouteAction{tables::RouteScope::kInternet, 0, {}}});
  }

  // Peerings: Peer routes in both directions for same-family VPC pairs.
  const std::size_t peerings = static_cast<std::size_t>(
      config.peerings_per_vpc * static_cast<double>(config.vpc_count));
  for (std::size_t p = 0; p < peerings; ++p) {
    VpcRecord& a = region.vpcs[rng.uniform(config.vpc_count)];
    VpcRecord& b = region.vpcs[rng.uniform(config.vpc_count)];
    if (a.vni == b.vni || a.family != b.family) continue;
    if (std::find(a.peers.begin(), a.peers.end(), b.vni) != a.peers.end()) {
      continue;
    }
    a.peers.push_back(b.vni);
    b.peers.push_back(a.vni);
    // Each side imports the other's first (Local) subnet prefix.
    a.routes.push_back(RouteRecord{
        b.routes.front().prefix,
        tables::VxlanRouteAction{tables::RouteScope::kPeer, b.vni, {}}});
    b.routes.push_back(RouteRecord{
        a.routes.front().prefix,
        tables::VxlanRouteAction{tables::RouteScope::kPeer, a.vni, {}}});
  }

  return region;
}

}  // namespace sf::workload
