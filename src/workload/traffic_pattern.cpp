#include "workload/traffic_pattern.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "net/hash.hpp"

namespace sf::workload {

double rate_at(const TrafficPattern& pattern, double t_seconds) {
  const double day = t_seconds / 86400.0;
  const double hour = std::fmod(t_seconds, 86400.0) / 3600.0;

  const double diurnal =
      1.0 + pattern.diurnal_amplitude *
                std::cos((hour - pattern.peak_hour) / 24.0 * 2.0 *
                         std::numbers::pi);

  double festival = 1.0;
  if (day >= pattern.festival_start_day && day < pattern.festival_end_day) {
    // Ramp up over the first two hours, hold, ramp down over the last two.
    const double into = (day - pattern.festival_start_day) * 24.0;
    const double left = (pattern.festival_end_day - day) * 24.0;
    const double ramp = std::min({into / 2.0, left / 2.0, 1.0});
    festival = 1.0 + (pattern.festival_multiplier - 1.0) * ramp;
  }

  const std::uint64_t minute = static_cast<std::uint64_t>(t_seconds / 60.0);
  const double noise =
      1.0 + pattern.jitter *
                (2.0 * (static_cast<double>(net::mix64(minute) >> 11) *
                        0x1.0p-53) -
                 1.0);

  return pattern.base_bps * diurnal * festival * noise;
}

}  // namespace sf::workload
