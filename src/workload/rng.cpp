#include "workload/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sf::workload {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return value % bound;
}

std::uint64_t Rng::uniform_range(std::uint64_t lo, std::uint64_t hi) {
  return lo + uniform(hi - lo + 1);
}

double Rng::uniform_real() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniform_real();
  while (u == 0.0) u = uniform_real();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform_real();
  while (u1 == 0.0) u1 = uniform_real();
  const double u2 = uniform_real();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

bool Rng::chance(double p) { return uniform_real() < p; }

Rng Rng::fork(std::uint64_t stream) const {
  std::uint64_t sm = seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return Rng(splitmix64(sm));
}

}  // namespace sf::workload
