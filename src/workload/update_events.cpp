#include "workload/update_events.hpp"

#include <algorithm>

namespace sf::workload {

std::vector<UpdateEvent> generate_update_events(
    const UpdateEventConfig& config) {
  Rng rng(config.seed);
  std::vector<UpdateEvent> events;

  // Regular churn: Poisson arrivals, small signed deltas.
  double t = 0;
  while (true) {
    t += rng.exponential(1.0 / config.regular_events_per_day);
    if (t >= config.span_days) break;
    const bool removal = rng.chance(config.regular_remove_probability);
    const std::int64_t magnitude = static_cast<std::int64_t>(
        rng.uniform_range(1,
                          static_cast<std::uint64_t>(
                              config.regular_delta_max)));
    events.push_back(UpdateEvent{t, removal ? -magnitude : magnitude, false});
  }

  // Sudden batches at uniformly random days (not in the first day, so the
  // series shows a quiet baseline first).
  for (std::size_t i = 0; i < config.sudden_events; ++i) {
    const double day =
        1.0 + rng.uniform_real() * (config.span_days - 1.0);
    const std::int64_t delta = static_cast<std::int64_t>(rng.uniform_range(
        static_cast<std::uint64_t>(config.sudden_delta_min),
        static_cast<std::uint64_t>(config.sudden_delta_max)));
    events.push_back(UpdateEvent{day, delta, true});
  }

  std::sort(events.begin(), events.end(),
            [](const UpdateEvent& a, const UpdateEvent& b) {
              return a.day < b.day;
            });
  return events;
}

std::vector<std::pair<double, std::int64_t>> cumulative_entries(
    std::int64_t initial_entries, const std::vector<UpdateEvent>& events,
    double span_days, double step_days) {
  std::vector<std::pair<double, std::int64_t>> series;
  std::int64_t entries = initial_entries;
  std::size_t next = 0;
  for (double day = 0; day <= span_days; day += step_days) {
    while (next < events.size() && events[next].day <= day) {
      entries = std::max<std::int64_t>(0, entries + events[next].delta_entries);
      ++next;
    }
    series.push_back({day, entries});
  }
  return series;
}

}  // namespace sf::workload
