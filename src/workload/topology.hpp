// Synthetic region topology: tenants (VPCs), their VMs, subnets, peerings
// and the physical servers (NCs) hosting them.
//
// Stands in for Alibaba's production inventory (DESIGN.md §1): the paper's
// occupancy numbers depend only on entry counts, key widths and the v4/v6
// mix, all of which are config knobs here. VM counts follow a Zipf across
// VPCs ("some top customers can purchase millions of VMs even in a single
// VPC", §1).

#pragma once

#include <cstddef>
#include <vector>

#include "net/ip.hpp"
#include "net/packet.hpp"
#include "tables/entry.hpp"
#include "workload/rng.hpp"

namespace sf::workload {

struct VmRecord {
  net::IpAddr ip;
  net::Ipv4Addr nc_ip;
};

struct RouteRecord {
  net::IpPrefix prefix;
  tables::VxlanRouteAction action;
};

struct VpcRecord {
  net::Vni vni = 0;
  net::IpFamily family = net::IpFamily::kV4;
  std::vector<VmRecord> vms;
  std::vector<RouteRecord> routes;
  std::vector<net::Vni> peers;
};

struct TopologyConfig {
  std::size_t vpc_count = 1000;
  /// Total VMs in the region, Zipf-distributed across VPCs.
  std::size_t total_vms = 20000;
  double vm_zipf_exponent = 1.0;
  std::size_t nc_count = 2000;
  /// Fraction of VPCs provisioned with IPv6 addressing (entry mix of
  /// Table 2: 75% IPv4 / 25% IPv6 by default).
  double ipv6_fraction = 0.25;
  /// Expected peerings per VPC (each adds Peer routes both ways).
  double peerings_per_vpc = 0.2;
  /// Subnets (/24 or /64) allocated per VPC.
  std::size_t subnets_per_vpc = 2;
  std::uint64_t seed = 1;
};

struct RegionTopology {
  std::vector<VpcRecord> vpcs;
  std::vector<net::Ipv4Addr> ncs;

  std::size_t total_vms() const;
  std::size_t total_routes() const;
  std::size_t route_count(net::IpFamily family) const;
  std::size_t vm_count(net::IpFamily family) const;

  /// Flattened table contents, ready for installation into a gateway.
  std::vector<std::pair<tables::VxlanRouteKey, tables::VxlanRouteAction>>
  vxlan_routes() const;
  std::vector<std::pair<tables::VmNcKey, tables::VmNcAction>> vm_mappings()
      const;
};

/// Deterministically generates a region from the config.
RegionTopology generate_topology(const TopologyConfig& config);

}  // namespace sf::workload
