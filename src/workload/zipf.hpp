// Zipf (power-law) sampling — the shape of cloud traffic.
//
// The paper's data mining found the "80/20 rule" (5% of table entries carry
// 95% of traffic, §4.2) and heavy-hitter flows dominating overloaded CPU
// cores (Fig. 7). Both are power laws; this sampler and its weight helper
// generate them deterministically.

#pragma once

#include <cstddef>
#include <vector>

#include "workload/rng.hpp"

namespace sf::workload {

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

  /// Probability mass of a rank.
  double pmf(std::size_t rank) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

/// Normalized Zipf weights for n ranks (weight[0] largest). Useful when a
/// workload needs the whole distribution, e.g. assigning rates to flows.
std::vector<double> zipf_weights(std::size_t n, double exponent);

/// The exponent that makes the top `head_fraction` of ranks carry about
/// `mass_fraction` of the weight, found by bisection. Calibrates the
/// paper's "5% of entries carry 95% of traffic".
double fit_zipf_exponent(std::size_t n, double head_fraction,
                         double mass_fraction);

}  // namespace sf::workload
