// Table-update event streams (Fig. 23): for most of the month the VXLAN
// routing table drifts slowly (tenants add/remove a few routes), with rare
// sudden jumps when a top customer onboards a large VM fleet or pushes a
// batch route update — announced ahead of time in production (§5.2).

#pragma once

#include <cstdint>
#include <vector>

#include "workload/rng.hpp"

namespace sf::workload {

struct UpdateEvent {
  double day = 0;               // event time in days
  std::int64_t delta_entries = 0;
  bool sudden = false;          // top-customer batch vs regular churn
};

struct UpdateEventConfig {
  double span_days = 30.0;
  /// Regular churn: Poisson arrivals per day, each a small +/- delta.
  double regular_events_per_day = 48.0;
  std::int64_t regular_delta_max = 40;
  /// Probability that a regular event removes entries.
  double regular_remove_probability = 0.4;
  /// Sudden top-customer batches across the span.
  std::size_t sudden_events = 2;
  std::int64_t sudden_delta_min = 20000;
  std::int64_t sudden_delta_max = 60000;
  std::uint64_t seed = 11;
};

/// Generates a time-sorted event stream.
std::vector<UpdateEvent> generate_update_events(
    const UpdateEventConfig& config);

/// Integrates events into a (day, entry-count) series sampled every
/// `step_days`, starting from `initial_entries`.
std::vector<std::pair<double, std::int64_t>> cumulative_entries(
    std::int64_t initial_entries, const std::vector<UpdateEvent>& events,
    double span_days, double step_days);

}  // namespace sf::workload
