// Flow-trace import/export: a small CSV format so downstream users can run
// the simulators and benches over their own measured flow populations
// instead of the synthetic generators.
//
// Columns: vni,src,dst,proto,src_port,dst_port,weight,scope,dst_nc,
//          packet_size — one flow per line, '#' comments allowed.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/flowgen.hpp"

namespace sf::workload {

/// Serializes flows as CSV (with a header comment).
std::string flows_to_csv(const std::vector<Flow>& flows);
void write_flows_csv(std::ostream& out, const std::vector<Flow>& flows);

/// Parse errors carry the line number and reason.
struct TraceParseError {
  std::size_t line = 0;
  std::string reason;
};

struct TraceParseResult {
  std::vector<Flow> flows;
  std::vector<TraceParseError> errors;

  bool ok() const { return errors.empty(); }
};

/// Parses a CSV flow trace. Malformed lines are reported, well-formed
/// lines are kept (robust bulk import).
TraceParseResult parse_flows_csv(std::istream& in);
TraceParseResult parse_flows_csv(const std::string& text);

}  // namespace sf::workload
