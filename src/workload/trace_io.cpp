#include "workload/trace_io.hpp"

#include <charconv>
#include <sstream>

namespace sf::workload {
namespace {

const char* scope_token(tables::RouteScope scope) {
  switch (scope) {
    case tables::RouteScope::kLocal:
      return "local";
    case tables::RouteScope::kPeer:
      return "peer";
    case tables::RouteScope::kIdc:
      return "idc";
    case tables::RouteScope::kCrossRegion:
      return "cross-region";
    case tables::RouteScope::kInternet:
      return "internet";
  }
  return "?";
}

std::optional<tables::RouteScope> parse_scope(std::string_view token) {
  if (token == "local") return tables::RouteScope::kLocal;
  if (token == "peer") return tables::RouteScope::kPeer;
  if (token == "idc") return tables::RouteScope::kIdc;
  if (token == "cross-region") return tables::RouteScope::kCrossRegion;
  if (token == "internet") return tables::RouteScope::kInternet;
  return std::nullopt;
}

std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

template <typename T>
std::optional<T> parse_number(std::string_view token) {
  T value{};
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_real(std::string_view token) {
  // from_chars for double is not universally available; strtod via string.
  const std::string text(token);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

void write_flows_csv(std::ostream& out, const std::vector<Flow>& flows) {
  out << "# vni,src,dst,proto,src_port,dst_port,weight,scope,dst_nc,"
         "packet_size\n";
  for (const Flow& flow : flows) {
    out << flow.vni << ',' << flow.tuple.src.to_string() << ','
        << flow.tuple.dst.to_string() << ','
        << static_cast<unsigned>(flow.tuple.proto) << ','
        << flow.tuple.src_port << ',' << flow.tuple.dst_port << ','
        << flow.weight << ',' << scope_token(flow.scope) << ','
        << flow.dst_nc.to_string() << ',' << flow.packet_size << '\n';
  }
}

std::string flows_to_csv(const std::vector<Flow>& flows) {
  std::ostringstream out;
  out.precision(17);
  write_flows_csv(out, flows);
  return out.str();
}

TraceParseResult parse_flows_csv(std::istream& in) {
  TraceParseResult result;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_csv(line);
    if (fields.size() != 10) {
      result.errors.push_back(
          {line_number, "expected 10 fields, got " +
                            std::to_string(fields.size())});
      continue;
    }
    Flow flow;
    const auto vni = parse_number<std::uint32_t>(fields[0]);
    const auto src = net::IpAddr::parse(fields[1]);
    const auto dst = net::IpAddr::parse(fields[2]);
    const auto proto = parse_number<unsigned>(fields[3]);
    const auto sport = parse_number<std::uint16_t>(fields[4]);
    const auto dport = parse_number<std::uint16_t>(fields[5]);
    const auto weight = parse_real(fields[6]);
    const auto scope = parse_scope(fields[7]);
    const auto nc = net::Ipv4Addr::parse(fields[8]);
    const auto size = parse_number<std::uint16_t>(fields[9]);
    if (!vni || *vni > net::kMaxVni) {
      result.errors.push_back({line_number, "bad vni"});
      continue;
    }
    if (!src || !dst || !proto || *proto > 255 || !sport || !dport ||
        !weight || *weight < 0 || !scope || !nc || !size) {
      result.errors.push_back({line_number, "malformed field"});
      continue;
    }
    flow.vni = *vni;
    flow.tuple.src = *src;
    flow.tuple.dst = *dst;
    flow.tuple.proto = static_cast<std::uint8_t>(*proto);
    flow.tuple.src_port = *sport;
    flow.tuple.dst_port = *dport;
    flow.weight = *weight;
    flow.scope = *scope;
    flow.dst_nc = *nc;
    flow.packet_size = *size;
    result.flows.push_back(flow);
  }
  return result;
}

TraceParseResult parse_flows_csv(const std::string& text) {
  std::istringstream in(text);
  return parse_flows_csv(in);
}

}  // namespace sf::workload
