#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sf::workload {

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : exponent_(exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler needs n > 0");
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    sum += std::pow(static_cast<double>(rank + 1), -exponent);
    cdf_[rank] = sum;
  }
  for (double& value : cdf_) value /= sum;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform_real();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

std::vector<double> zipf_weights(std::size_t n, double exponent) {
  std::vector<double> weights(n);
  double sum = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    weights[rank] = std::pow(static_cast<double>(rank + 1), -exponent);
    sum += weights[rank];
  }
  for (double& w : weights) w /= sum;
  return weights;
}

double fit_zipf_exponent(std::size_t n, double head_fraction,
                         double mass_fraction) {
  if (n < 2 || head_fraction <= 0 || head_fraction >= 1 ||
      mass_fraction <= 0 || mass_fraction >= 1) {
    throw std::invalid_argument("fit_zipf_exponent: bad arguments");
  }
  const std::size_t head =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   head_fraction * static_cast<double>(n)));
  auto head_mass = [&](double s) {
    double total = 0;
    double in_head = 0;
    for (std::size_t rank = 0; rank < n; ++rank) {
      const double w = std::pow(static_cast<double>(rank + 1), -s);
      total += w;
      if (rank < head) in_head += w;
    }
    return in_head / total;
  };
  double lo = 0.0;
  double hi = 4.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (head_mass(mid) < mass_fraction) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace sf::workload
