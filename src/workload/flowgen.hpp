// Flow population generator.
//
// Produces a fixed set of flows whose rate shares follow a Zipf power law —
// the traffic shape behind the paper's CPU-overload story (Figs. 4–7: one
// or two heavy-hitter flows dominate a core) and the 80/20 table-sharing
// rule (§4.2). Flow tuples are drawn from the region topology so that every
// flow resolves through the real forwarding tables.

#pragma once

#include <cstddef>
#include <vector>

#include "net/headers.hpp"
#include "tables/entry.hpp"
#include "workload/rng.hpp"
#include "workload/topology.hpp"

namespace sf::workload {

struct Flow {
  net::Vni vni = 0;               // VNI the packet arrives with
  net::FiveTuple tuple;           // inner 5-tuple
  double weight = 0;              // share of region traffic (sums to 1)
  tables::RouteScope scope = tables::RouteScope::kLocal;
  net::Ipv4Addr dst_nc;           // resolved NC for Local/Peer flows
  std::uint16_t packet_size = 512;  // mean wire size in bytes
};

struct FlowGenConfig {
  std::size_t flow_count = 10000;
  /// Zipf exponent of flow-rate shares. ~1.25 reproduces "top-1/top-2
  /// flows dominate" on an overloaded core.
  double zipf_exponent = 1.25;
  /// Fraction of flows that are south-north (Internet scope, handled by
  /// XGW-x86 via SNAT).
  double internet_fraction = 0.05;
  /// Combined traffic share of the Internet flows. Production data mining
  /// (Fig. 22) puts the software-path share below 0.2 per mille; the
  /// generator assigns the Zipf head to east-west flows and scales the
  /// Internet flows' weights to sum to exactly this share.
  double internet_weight_share = 0.00015;
  /// Fraction of east-west flows that cross VPC boundaries (Peer scope).
  double peer_fraction = 0.1;
  std::uint64_t seed = 7;
};

/// Generates a deterministic flow set over the topology. Weights are Zipf
/// by a random permutation of ranks, so heavy hitters land on arbitrary
/// tuples rather than the first VPCs.
std::vector<Flow> generate_flows(const RegionTopology& region,
                                 const FlowGenConfig& config);

/// Sum of weights for flows with the given scope.
double scope_weight(const std::vector<Flow>& flows, tables::RouteScope scope);

}  // namespace sf::workload
