// Region traffic-rate envelopes: diurnal cycle plus online-shopping-festival
// surges. These drive the week-long operational figures (Figs. 4-6, 19-22).

#pragma once

#include <cstdint>

namespace sf::workload {

struct TrafficPattern {
  /// Mean region traffic in bits per second.
  double base_bps = 10e12;
  /// Peak-to-mean swing of the diurnal cycle (0..1).
  double diurnal_amplitude = 0.35;
  /// Local hour of the daily peak.
  double peak_hour = 21.0;
  /// Festival window (days are 0-based within the simulated span).
  double festival_start_day = 5.0;
  double festival_end_day = 6.0;
  /// Rate multiplier during the festival window.
  double festival_multiplier = 2.2;
  /// Relative amplitude of deterministic minute-scale jitter.
  double jitter = 0.05;
};

/// The region rate at time t (seconds since day 0). Deterministic: jitter
/// is hashed from the minute index, not drawn from an RNG.
double rate_at(const TrafficPattern& pattern, double t_seconds);

/// Convenience: days to seconds.
constexpr double days(double d) { return d * 86400.0; }
constexpr double hours(double h) { return h * 3600.0; }

}  // namespace sf::workload
