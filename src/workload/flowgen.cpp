#include "workload/flowgen.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "workload/zipf.hpp"

namespace sf::workload {
namespace {

const VmRecord& random_vm(const VpcRecord& vpc, Rng& rng) {
  return vpc.vms[rng.uniform(vpc.vms.size())];
}

std::uint16_t random_packet_size(Rng& rng) {
  // Cloud packet mix (IMIX-like, ~700B mean): mice at 128-256B,
  // bulk transfers near MTU.
  static constexpr std::uint16_t kSizes[] = {128, 256, 512, 1024, 1500};
  static constexpr double kCdf[] = {0.15, 0.35, 0.6, 0.8, 1.0};
  const double u = rng.uniform_real();
  for (std::size_t i = 0; i < std::size(kSizes); ++i) {
    if (u <= kCdf[i]) return kSizes[i];
  }
  return 1500;
}

}  // namespace

std::vector<Flow> generate_flows(const RegionTopology& region,
                                 const FlowGenConfig& config) {
  if (region.vpcs.empty()) {
    throw std::invalid_argument("flow generation needs a topology");
  }
  Rng rng(config.seed);
  std::vector<Flow> flows;
  flows.reserve(config.flow_count);

  for (std::size_t i = 0; i < config.flow_count; ++i) {
    const VpcRecord& src_vpc = region.vpcs[rng.uniform(region.vpcs.size())];
    const VmRecord& src_vm = random_vm(src_vpc, rng);

    Flow flow;
    flow.vni = src_vpc.vni;
    flow.tuple.src = src_vm.ip;
    flow.tuple.proto = rng.chance(0.8)
                           ? static_cast<std::uint8_t>(net::IpProto::kTcp)
                           : static_cast<std::uint8_t>(net::IpProto::kUdp);
    flow.tuple.src_port = static_cast<std::uint16_t>(
        rng.uniform_range(1024, 65535));
    flow.tuple.dst_port =
        static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 443);
    flow.packet_size = random_packet_size(rng);

    const bool internet = rng.chance(config.internet_fraction);
    const bool peer =
        !internet && !src_vpc.peers.empty() && rng.chance(config.peer_fraction);
    if (internet) {
      flow.scope = tables::RouteScope::kInternet;
      // A public address outside the VPC's space, in the VPC's family
      // (the default route that steers to SNAT is family-specific).
      if (src_vpc.family == net::IpFamily::kV4) {
        flow.tuple.dst = net::Ipv4Addr(
            static_cast<std::uint32_t>((93u << 24) | rng.uniform(1u << 24)));
      } else {
        flow.tuple.dst =
            net::Ipv6Addr(0x2600'0000'0000'0000ULL | rng.uniform(1u << 20),
                          rng.next_u64());
      }
    } else if (peer) {
      const net::Vni peer_vni =
          src_vpc.peers[rng.uniform(src_vpc.peers.size())];
      auto it = std::find_if(region.vpcs.begin(), region.vpcs.end(),
                             [&](const VpcRecord& vpc) {
                               return vpc.vni == peer_vni;
                             });
      // The peering imports only the peer's first Local prefix; pick a
      // destination VM that prefix actually covers.
      const net::IpPrefix& exported = it->routes.front().prefix;
      const VmRecord* dst_vm = nullptr;
      for (int attempt = 0; attempt < 16 && dst_vm == nullptr; ++attempt) {
        const VmRecord& candidate = random_vm(*it, rng);
        if (exported.contains(candidate.ip)) dst_vm = &candidate;
      }
      if (dst_vm == nullptr) {
        for (const VmRecord& candidate : it->vms) {
          if (exported.contains(candidate.ip)) {
            dst_vm = &candidate;
            break;
          }
        }
      }
      if (dst_vm == nullptr) dst_vm = &it->vms.front();
      flow.scope = tables::RouteScope::kPeer;
      flow.tuple.dst = dst_vm->ip;
      flow.dst_nc = dst_vm->nc_ip;
    } else {
      const VmRecord& dst_vm = random_vm(src_vpc, rng);
      flow.scope = tables::RouteScope::kLocal;
      flow.tuple.dst = dst_vm.ip;
      flow.dst_nc = dst_vm.nc_ip;
    }
    flows.push_back(flow);
  }

  // Zipf weights, assigned through a random permutation of ranks — but
  // only over the east-west flows; Internet (software-path) flows share a
  // fixed thin slice of the total (Fig. 22's < 0.2 per-mille share).
  std::vector<std::size_t> east_west;
  std::vector<std::size_t> internet;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    (flows[i].scope == tables::RouteScope::kInternet ? internet : east_west)
        .push_back(i);
  }
  const double internet_share =
      internet.empty() ? 0.0
                       : std::min(0.5, config.internet_weight_share);
  if (!east_west.empty()) {
    std::vector<double> weights =
        zipf_weights(east_west.size(), config.zipf_exponent);
    std::vector<std::size_t> ranks(east_west.size());
    std::iota(ranks.begin(), ranks.end(), std::size_t{0});
    for (std::size_t i = ranks.size(); i > 1; --i) {
      std::swap(ranks[i - 1], ranks[rng.uniform(i)]);
    }
    for (std::size_t i = 0; i < east_west.size(); ++i) {
      flows[east_west[i]].weight =
          weights[ranks[i]] * (1.0 - internet_share);
    }
  }
  for (std::size_t index : internet) {
    flows[index].weight =
        internet_share / static_cast<double>(internet.size());
  }
  return flows;
}

double scope_weight(const std::vector<Flow>& flows,
                    tables::RouteScope scope) {
  double total = 0;
  for (const Flow& flow : flows) {
    if (flow.scope == scope) total += flow.weight;
  }
  return total;
}

}  // namespace sf::workload
