// Deterministic random number generation for workloads and simulations.
//
// Everything stochastic in the repository draws from this Rng (xoshiro256**
// seeded via splitmix64), so every bench and test is reproducible from a
// single seed. fork() derives independent substreams for subsystems without
// coupling their consumption order.

#pragma once

#include <cstdint>

namespace sf::workload {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5a11f15bdeadbeefULL);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be positive.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi].
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// Exponential with the given mean.
  double exponential(double mean);

  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// True with probability p.
  bool chance(double p);

  /// Derives an independent substream labeled by `stream`.
  Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace sf::workload
