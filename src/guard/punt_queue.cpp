#include "guard/punt_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace sf::guard {

PuntQueue::PuntQueue(Config config) : config_(config) {
  if (config_.depth_packets == 0) {
    throw std::invalid_argument("punt queue depth must be >= 1");
  }
  if (config_.drain_pps <= 0) {
    throw std::invalid_argument("punt queue drain rate must be positive");
  }
}

void PuntQueue::drain(Lane& lane, double now, double drain_pps) {
  if (!lane.primed) {
    lane.last_time = now;
    lane.primed = true;
    return;
  }
  const double dt = std::max(0.0, now - lane.last_time);
  lane.occupancy = std::max(0.0, lane.occupancy - dt * drain_pps);
  lane.last_time = std::max(lane.last_time, now);
}

PuntQueue::Admit PuntQueue::offer(std::size_t cluster, std::size_t device,
                                  double now) {
  Lane& lane = lanes_[{cluster, device}];
  drain(lane, now, config_.drain_pps);
  Admit result;
  if (lane.occupancy + 1.0 > static_cast<double>(config_.depth_packets)) {
    ++stats_.overflowed;
    return result;  // backpressure: caller drops with kPuntQueueFull
  }
  lane.occupancy += 1.0;
  result.admitted = true;
  result.queue_delay_us = lane.occupancy / config_.drain_pps * 1e6;
  ++stats_.admitted;
  stats_.high_watermark = std::max(stats_.high_watermark, lane.occupancy);
  return result;
}

double PuntQueue::occupancy(std::size_t cluster, std::size_t device,
                            double now) const {
  auto it = lanes_.find({cluster, device});
  if (it == lanes_.end()) return 0;
  const Lane& lane = it->second;
  if (!lane.primed) return lane.occupancy;
  const double dt = std::max(0.0, now - lane.last_time);
  return std::max(0.0, lane.occupancy - dt * config_.drain_pps);
}

double PuntQueue::max_occupancy(double now) const {
  double deepest = 0;
  for (const auto& [key, lane] : lanes_) {
    deepest = std::max(deepest, occupancy(key.first, key.second, now));
  }
  return deepest;
}

}  // namespace sf::guard
