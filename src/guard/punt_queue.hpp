// sf::guard::PuntQueue — the hardware→x86 punt path (DESIGN.md §10).
//
// When XGW-H cannot serve a packet itself — a SNAT flow, a table-placement
// miss steered by the fallback meter, or a meter-degraded tier-1 tenant —
// the region punts it to the paired XGW-x86 instead of dropping it. Real
// switches do this over a bounded per-device queue toward the software
// fleet; when the queue is full the hardware has no choice but to drop,
// and that drop must be *typed* (kPuntQueueFull), never silent.
//
// This models each (cluster, device) punt lane as a fluid queue: occupancy
// drains at `drain_pps` continuously and grows by one per admitted punt.
// An admit that would push occupancy past `depth_packets` is refused.
// Admitted packets pay a queueing delay of occupancy / drain_pps — the
// punt path is slower than the ASIC by construction, which the latency
// histograms show.
//
// Single-writer like everything else on the functional path; the interval
// engine never touches it (interval-path shedding is modeled fluidly by
// the guard itself).

#pragma once

#include <cstdint>
#include <map>
#include <utility>

namespace sf::guard {

class PuntQueue {
 public:
  struct Config {
    /// Bounded queue depth per (cluster, device) lane.
    std::size_t depth_packets = 1024;
    /// Drain rate toward the paired XGW-x86.
    double drain_pps = 500e3;
  };

  struct Admit {
    bool admitted = false;
    /// Modeled queueing delay for an admitted packet.
    double queue_delay_us = 0;
  };

  /// Plain-struct observability (kept out of any registry so an idle
  /// punt path never perturbs telemetry snapshots; the region publishes
  /// these as gauges only when asked — publish_pressure_gauges()).
  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t overflowed = 0;
    /// Highest post-admit occupancy any lane ever reached (packets).
    double high_watermark = 0;
  };

  PuntQueue() : PuntQueue(Config{}) {}
  explicit PuntQueue(Config config);

  /// Offers one packet to the (cluster, device) lane at time `now`.
  Admit offer(std::size_t cluster, std::size_t device, double now);

  /// Current occupancy of one lane at time `now` (drains lazily).
  double occupancy(std::size_t cluster, std::size_t device, double now) const;

  /// Deepest current occupancy across all lanes at time `now`.
  double max_occupancy(double now) const;

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct Lane {
    double occupancy = 0;
    double last_time = 0;
    bool primed = false;
  };

  /// Drains `lane` up to `now`. The clock may step backwards in replayed
  /// scenarios; a negative dt drains nothing.
  static void drain(Lane& lane, double now, double drain_pps);

  Config config_;
  std::map<std::pair<std::size_t, std::size_t>, Lane> lanes_;
  Stats stats_;
};

}  // namespace sf::guard
