// sf::guard::CircuitBreaker — protects the controller update channel
// (DESIGN.md §10).
//
// During a control-plane outage or rate-limit storm every table op the
// controller pushes comes back kRateLimited, and each refused attempt
// burns a slot in the shared op-token bucket — retries amplify exactly the
// pressure that caused the refusals. A circuit breaker watches the refusal
// stream: `trip_after` CONSECUTIVE refusals open the circuit, and while
// open the controller parks new ops directly into the UpdateQueue without
// attempting them (short-circuit, zero channel pressure). After
// `open_cooldown_s` the breaker is half-open: exactly one probe op is
// allowed through; success closes the circuit and the queue drains
// normally, failure re-opens it for another cooldown.
//
// The breaker cooperates with the UpdateQueue's strict-FIFO at-least-once
// contract: ops deferred while open keep their arrival order and are never
// lost — the breaker only decides *when* the channel is worth trying.
//
// Disabled by default (trip_after == 0): a controller without a breaker
// config behaves byte-identically to one compiled before this class
// existed.

#pragma once

#include <cstdint>

namespace sf::guard {

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Config {
    /// Consecutive channel refusals that open the circuit. 0 disables the
    /// breaker entirely (allow() is always true, nothing is counted).
    unsigned trip_after = 0;
    /// Seconds the circuit stays open before a half-open probe.
    double open_cooldown_s = 1.0;
  };

  struct Stats {
    std::uint64_t trips = 0;         // closed -> open
    std::uint64_t reopens = 0;       // half-open probe failed
    std::uint64_t closes = 0;        // half-open probe succeeded
    std::uint64_t short_circuited = 0;  // ops parked without an attempt
  };

  CircuitBreaker() : CircuitBreaker(Config{}) {}
  explicit CircuitBreaker(Config config) : config_(config) {}

  bool enabled() const { return config_.trip_after > 0; }

  /// Current state at time `now` (open flips to half-open once the
  /// cooldown elapses; const — observation never mutates).
  State state(double now) const;

  /// True when an op attempt is allowed at `now`: closed, or half-open
  /// (the probe). While plain-open the caller must park the op instead
  /// (and call note_short_circuit()).
  bool allow(double now) const;

  /// A channel refusal at `now` (rate-limited or outage). Trips a closed
  /// circuit after `trip_after` consecutive refusals; re-opens a
  /// half-open circuit immediately.
  void record_failure(double now);

  /// A successful attempt: closes a half-open circuit, clears the
  /// refusal streak of a closed one.
  void record_success(double now);

  void note_short_circuit() { ++stats_.short_circuited; }

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  State state_ = State::kClosed;
  unsigned failure_streak_ = 0;
  double opened_at_ = 0;
  Stats stats_;
};

const char* name(CircuitBreaker::State state);

}  // namespace sf::guard
