// sf::guard — per-tenant overload protection (DESIGN.md §10).
//
// One ASIC serves millions of tenants; nothing in the hardware stops a
// single tenant from flooding the region and starving everyone else.
// TenantGuard is the noisy-neighbor defense in front of Gateway::process:
// token-bucket byte/pps meters per tenant (VNI) driving a three-tier
// degradation ladder —
//
//   tier 0 (full service)     every packet served normally;
//   tier 1 (shed new flows)   packets of ESTABLISHED flows (present in the
//                             serving device's FlowCache) are served;
//                             everything else is punted to the paired
//                             XGW-x86 or, with no punt path, shed with a
//                             typed reason;
//   tier 2 (shed tenant)      the tenant is shed outright.
//
// Escalation is hysteretic: `escalate_after` consecutive over-limit
// observations move a tenant one tier up, `deescalate_after` consecutive
// conforming observations move it one tier down. On the functional path an
// observation is a packet against the token buckets; on the interval path
// it is one simulate_interval() step comparing the tenant's offered rate
// to its budget.
//
// Determinism: all guard state is per-shard — a tenant's ladder lives
// wholly in shard mix64(vni) % shards, the same pure-hash partition the
// interval engine uses — so the interval pre-pass mutates each shard's
// tenants from exactly one worker, with no locks, and results are
// byte-identical at any thread count. Tenants inside a shard are kept in
// an ordered map so iteration (and therefore every merge) has one fixed
// order.
//
// The SF_GUARD environment gate ("0"/"off") disables the subsystem
// process-wide: a region configured with a guard simply does not build
// one, so every bench is byte-identical with the guard compiled in or
// gated off (the CI perf-smoke job diffs exactly that).

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dataplane/verdict.hpp"
#include "net/headers.hpp"
#include "telemetry/registry.hpp"

namespace sf::guard {

/// Process-wide gate: false when SF_GUARD is "0"/"off". Read once.
bool guard_enabled();

/// The degradation ladder.
enum class Tier : std::uint8_t {
  kFull = 0,
  kShedNewFlows = 1,
  kShedTenant = 2,
};

const char* name(Tier tier);
std::string to_string(Tier tier);

/// One tenant's sustained budget. A zero rate means "unlimited" on that
/// axis; a tenant with both rates zero is never metered (the guard is
/// transparent for it).
struct TenantLimit {
  net::Vni vni = 0;
  double rate_bps = 0;
  double rate_pps = 0;
};

class TenantGuard {
 public:
  struct Config {
    /// Budgets applied to every tenant not listed in `tenants` (0 = that
    /// axis unlimited; both zero = unlisted tenants unmetered).
    double default_rate_bps = 0;
    double default_rate_pps = 0;
    /// Token-bucket depth, in seconds of sustained budget.
    double burst_seconds = 0.1;
    /// Consecutive over-limit observations before a tenant climbs one
    /// tier, and consecutive conforming observations before it descends
    /// one. Functional path: packets; interval path: intervals.
    unsigned escalate_after = 1;
    unsigned deescalate_after = 2;
    /// Explicit per-tenant budgets.
    std::vector<TenantLimit> tenants;
  };

  /// What to do with one packet (functional path).
  struct PacketDecision {
    Tier tier = Tier::kFull;
    /// Serve on the normal (hardware-first) path.
    bool admit = true;
    /// Tier-1 non-established packet: serve via the punt path instead.
    bool punt = false;
    /// Set when neither admitted nor punted.
    dataplane::DropReason drop_reason = dataplane::DropReason::kNone;
  };

  /// One metered tenant's interval summary (interval path).
  struct TenantInterval {
    net::Vni vni = 0;
    double offered_pps = 0;
    double offered_bps = 0;
    double shed_pps = 0;
    Tier tier = Tier::kFull;
  };

  /// Offered rate of one tenant inside one interval.
  struct Offered {
    double pps = 0;
    double bps = 0;
  };

  /// Plain-struct observability (functional path). Kept outside any
  /// registry so an idle guard never perturbs telemetry snapshots.
  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t established_served = 0;
    std::uint64_t punted = 0;
    std::uint64_t shed_new_flow = 0;
    std::uint64_t shed_tenant = 0;
    std::uint64_t escalations = 0;
    std::uint64_t deescalations = 0;
  };

  TenantGuard(Config config, std::size_t shards);

  /// Adds or replaces one tenant's budget at runtime (chaos storms arm the
  /// storm tenant this way). Ladder state for the VNI is reset.
  void set_limit(const TenantLimit& limit);

  /// True when any tenant could ever be metered — false means the guard is
  /// fully transparent and callers skip it outright.
  bool any_limits() const;

  bool metered(net::Vni vni) const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(net::Vni vni) const;

  /// Functional path: meters one packet. `established` is consulted only
  /// when a tier-1 decision needs it (it probes the serving device's flow
  /// cache, which costs a hash).
  PacketDecision admit_packet(net::Vni vni, std::size_t wire_bytes,
                              double now,
                              const std::function<bool()>& established);

  /// Interval path, called once per simulate_interval per shard, from the
  /// engine worker that owns `shard` (touches only that shard's state).
  /// `offered` carries this interval's offered rates for the shard's
  /// tenants; tenants known to the shard but absent from the map are
  /// stepped as conforming (that is how a storm tenant walks back down the
  /// ladder after its flows vanish). Appends one TenantInterval per
  /// metered tenant to `out` (ascending VNI), records ladder moves and
  /// shed totals into `registry` ("guard.*" counters, merged shard-order
  /// by the engine), and returns each tenant's admit fraction in [0, 1].
  std::map<net::Vni, double> interval_step(
      std::size_t shard, const std::map<net::Vni, Offered>& offered,
      std::vector<TenantInterval>& out, telemetry::Registry& registry);

  Tier tier_of(net::Vni vni) const;
  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct TenantState {
    double rate_bps = 0;
    double rate_pps = 0;
    // Functional-path token buckets.
    double byte_tokens = 0;
    double packet_tokens = 0;
    double tokens_time = 0;
    bool primed = false;
    Tier tier = Tier::kFull;
    unsigned over_streak = 0;
    unsigned conform_streak = 0;
  };

  struct Shard {
    std::map<net::Vni, TenantState> tenants;  // ordered: stable iteration
  };

  TenantState* state_for(net::Vni vni);
  const TenantState* state_for(net::Vni vni) const;
  /// Steps the ladder with one observation; returns +1/-1/0 tier delta.
  int observe(TenantState& state, bool over);

  Config config_;
  std::vector<Shard> shards_;
  bool has_default_limit_ = false;
  Stats stats_;
};

}  // namespace sf::guard
