#include "guard/circuit_breaker.hpp"

namespace sf::guard {

const char* name(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::State CircuitBreaker::state(double now) const {
  if (state_ != State::kOpen) return state_;
  return now - opened_at_ >= config_.open_cooldown_s ? State::kHalfOpen
                                                     : State::kOpen;
}

bool CircuitBreaker::allow(double now) const {
  if (!enabled()) return true;
  return state(now) != State::kOpen;
}

void CircuitBreaker::record_failure(double now) {
  if (!enabled()) return;
  switch (state(now)) {
    case State::kClosed:
      if (++failure_streak_ >= config_.trip_after) {
        state_ = State::kOpen;
        opened_at_ = now;
        failure_streak_ = 0;
        ++stats_.trips;
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to a full cooldown.
      state_ = State::kOpen;
      opened_at_ = now;
      ++stats_.reopens;
      break;
    case State::kOpen:
      break;  // nothing should be attempting, but stay open regardless
  }
}

void CircuitBreaker::record_success(double now) {
  if (!enabled()) return;
  switch (state(now)) {
    case State::kHalfOpen:
      state_ = State::kClosed;
      failure_streak_ = 0;
      ++stats_.closes;
      break;
    case State::kClosed:
      failure_streak_ = 0;
      break;
    case State::kOpen:
      break;
  }
}

}  // namespace sf::guard
