#include "guard/guard.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/runtime_config.hpp"
#include "net/hash.hpp"

namespace sf::guard {

bool guard_enabled() {
  // Delegates to the consolidated runtime gates; semantics unchanged
  // (SF_GUARD, latched once per process).
  return core::RuntimeConfig::process().guard_enabled;
}

const char* name(Tier tier) {
  switch (tier) {
    case Tier::kFull:
      return "full-service";
    case Tier::kShedNewFlows:
      return "shed-new-flows";
    case Tier::kShedTenant:
      return "shed-tenant";
  }
  return "?";
}

std::string to_string(Tier tier) { return name(tier); }

TenantGuard::TenantGuard(Config config, std::size_t shards)
    : config_(std::move(config)),
      shards_(std::max<std::size_t>(1, shards)) {
  if (config_.burst_seconds <= 0) {
    throw std::invalid_argument("guard burst_seconds must be positive");
  }
  if (config_.escalate_after == 0 || config_.deescalate_after == 0) {
    throw std::invalid_argument("guard ladder thresholds must be >= 1");
  }
  has_default_limit_ =
      config_.default_rate_bps > 0 || config_.default_rate_pps > 0;
  for (const TenantLimit& limit : config_.tenants) set_limit(limit);
}

std::size_t TenantGuard::shard_of(net::Vni vni) const {
  return static_cast<std::size_t>(net::mix64(vni)) % shards_.size();
}

void TenantGuard::set_limit(const TenantLimit& limit) {
  TenantState state;
  state.rate_bps = limit.rate_bps;
  state.rate_pps = limit.rate_pps;
  shards_[shard_of(limit.vni)].tenants[limit.vni] = state;
}

bool TenantGuard::any_limits() const {
  if (has_default_limit_) return true;
  for (const Shard& shard : shards_) {
    for (const auto& [vni, state] : shard.tenants) {
      if (state.rate_bps > 0 || state.rate_pps > 0) return true;
    }
  }
  return false;
}

TenantGuard::TenantState* TenantGuard::state_for(net::Vni vni) {
  Shard& shard = shards_[shard_of(vni)];
  auto it = shard.tenants.find(vni);
  if (it != shard.tenants.end()) return &it->second;
  if (!has_default_limit_) return nullptr;
  TenantState state;
  state.rate_bps = config_.default_rate_bps;
  state.rate_pps = config_.default_rate_pps;
  return &shard.tenants.emplace(vni, state).first->second;
}

const TenantGuard::TenantState* TenantGuard::state_for(net::Vni vni) const {
  const Shard& shard = shards_[shard_of(vni)];
  auto it = shard.tenants.find(vni);
  return it == shard.tenants.end() ? nullptr : &it->second;
}

bool TenantGuard::metered(net::Vni vni) const {
  const TenantState* state = state_for(vni);
  if (state != nullptr) return state->rate_bps > 0 || state->rate_pps > 0;
  return has_default_limit_;
}

Tier TenantGuard::tier_of(net::Vni vni) const {
  const TenantState* state = state_for(vni);
  return state == nullptr ? Tier::kFull : state->tier;
}

int TenantGuard::observe(TenantState& state, bool over) {
  if (over) {
    state.conform_streak = 0;
    if (++state.over_streak >= config_.escalate_after &&
        state.tier != Tier::kShedTenant) {
      state.tier = static_cast<Tier>(static_cast<std::uint8_t>(state.tier) + 1);
      state.over_streak = 0;
      return +1;
    }
    return 0;
  }
  state.over_streak = 0;
  if (++state.conform_streak >= config_.deescalate_after &&
      state.tier != Tier::kFull) {
    state.tier = static_cast<Tier>(static_cast<std::uint8_t>(state.tier) - 1);
    state.conform_streak = 0;
    return -1;
  }
  return 0;
}

TenantGuard::PacketDecision TenantGuard::admit_packet(
    net::Vni vni, std::size_t wire_bytes, double now,
    const std::function<bool()>& established) {
  PacketDecision decision;
  TenantState* state = state_for(vni);
  if (state == nullptr || (state->rate_bps <= 0 && state->rate_pps <= 0)) {
    ++stats_.admitted;
    return decision;  // unmetered tenant: full service, no ladder
  }

  // Refill the token buckets. The clock may step backwards in replayed
  // scenarios; a negative dt refills nothing rather than draining.
  if (!state->primed) {
    state->byte_tokens = state->rate_bps / 8.0 * config_.burst_seconds;
    state->packet_tokens = state->rate_pps * config_.burst_seconds;
    state->tokens_time = now;
    state->primed = true;
  }
  const double dt = std::max(0.0, now - state->tokens_time);
  state->tokens_time = std::max(state->tokens_time, now);
  if (state->rate_bps > 0) {
    state->byte_tokens =
        std::min(state->byte_tokens + dt * state->rate_bps / 8.0,
                 state->rate_bps / 8.0 * config_.burst_seconds);
  }
  if (state->rate_pps > 0) {
    state->packet_tokens =
        std::min(state->packet_tokens + dt * state->rate_pps,
                 state->rate_pps * config_.burst_seconds);
  }

  const bool over =
      (state->rate_bps > 0 &&
       state->byte_tokens < static_cast<double>(wire_bytes)) ||
      (state->rate_pps > 0 && state->packet_tokens < 1.0);
  if (!over) {
    if (state->rate_bps > 0) {
      state->byte_tokens -= static_cast<double>(wire_bytes);
    }
    if (state->rate_pps > 0) state->packet_tokens -= 1.0;
  }
  const int moved = observe(*state, over);
  if (moved > 0) ++stats_.escalations;
  if (moved < 0) ++stats_.deescalations;

  decision.tier = state->tier;
  switch (state->tier) {
    case Tier::kFull:
      // Full service — the ladder, not the packet, absorbs the first
      // over-limit observations.
      decision.admit = true;
      ++stats_.admitted;
      return decision;
    case Tier::kShedNewFlows:
      if (established && established()) {
        decision.admit = true;
        ++stats_.established_served;
        return decision;
      }
      decision.admit = false;
      decision.punt = true;
      decision.drop_reason = dataplane::DropReason::kTenantNewFlowShed;
      ++stats_.punted;
      return decision;
    case Tier::kShedTenant:
      decision.admit = false;
      decision.drop_reason = dataplane::DropReason::kTenantShed;
      ++stats_.shed_tenant;
      return decision;
  }
  return decision;
}

std::map<net::Vni, double> TenantGuard::interval_step(
    std::size_t shard_index, const std::map<net::Vni, Offered>& offered,
    std::vector<TenantInterval>& out, telemetry::Registry& registry) {
  std::map<net::Vni, double> fractions;
  Shard& shard = shards_[shard_index];
  if (shard.tenants.empty()) return fractions;

  telemetry::Counter& ctr_over = registry.counter("guard.interval.over");
  telemetry::Counter& ctr_esc =
      registry.counter("guard.interval.escalations");
  telemetry::Counter& ctr_deesc =
      registry.counter("guard.interval.deescalations");
  telemetry::Counter& ctr_shed_kpps =
      registry.counter("guard.interval.shed_kpps_sum");

  for (auto& [vni, state] : shard.tenants) {
    if (state.rate_bps <= 0 && state.rate_pps <= 0) continue;
    Offered load;
    if (auto it = offered.find(vni); it != offered.end()) load = it->second;

    const bool over = (state.rate_bps > 0 && load.bps > state.rate_bps) ||
                      (state.rate_pps > 0 && load.pps > state.rate_pps);
    const int moved = observe(state, over);
    if (over) ctr_over.add();
    if (moved > 0) ctr_esc.add();
    if (moved < 0) ctr_deesc.add();

    double fraction = 1.0;
    switch (state.tier) {
      case Tier::kFull:
        break;
      case Tier::kShedNewFlows: {
        // Clamp the tenant to its budget: the excess models the new-flow
        // setup load tier 1 sheds while established flows keep flowing.
        double f_bps = 1.0;
        double f_pps = 1.0;
        if (state.rate_bps > 0 && load.bps > state.rate_bps) {
          f_bps = state.rate_bps / load.bps;
        }
        if (state.rate_pps > 0 && load.pps > state.rate_pps) {
          f_pps = state.rate_pps / load.pps;
        }
        fraction = std::min(f_bps, f_pps);
        break;
      }
      case Tier::kShedTenant:
        fraction = 0.0;
        break;
    }
    fractions[vni] = fraction;

    TenantInterval summary;
    summary.vni = vni;
    summary.offered_pps = load.pps;
    summary.offered_bps = load.bps;
    summary.shed_pps = load.pps * (1.0 - fraction);
    summary.tier = state.tier;
    out.push_back(summary);
    ctr_shed_kpps.add(static_cast<std::uint64_t>(summary.shed_pps / 1e3));
  }
  return fractions;
}

}  // namespace sf::guard
