// sf::dataplane — the unified dataplane API every gateway implements.
//
// Before this subsystem the three packet-processing layers (XGW-H, XGW-x86
// and the whole region) each had an ad-hoc result struct with its own
// action enum and a free-form `std::string drop_reason`. A fleet simulator
// cannot aggregate, compare or branch on strings cheaply, and the structs
// even disagreed on default-drop semantics. `Verdict` is the one result
// type: a typed action, a typed drop reason, the rewritten packet and the
// modeled latency. Layer-specific extras (pipeline passes, SNAT bindings)
// live in thin subclasses; the common fields are what the region, the
// traces and the figures consume.

#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"

namespace sf::dataplane {

/// What a gateway decided to do with a packet.
enum class Action : std::uint8_t {
  kForwardToNc,     // rewritten toward the destination server
  kForwardTunnel,   // rewritten toward a remote region/IDC endpoint
  kFallbackToX86,   // steered from XGW-H to the software gateway
  kSnatToInternet,  // translated and decapped toward the Internet
  kDrop,
};

/// Static-storage name — the allocation-free spelling for hot paths
/// (drop notes, cached verdicts). to_string() wraps it.
const char* name(Action action);
std::string to_string(Action action);

/// Why a packet was dropped. `kNone` means "not dropped" — every verdict
/// whose action is kDrop carries a reason other than kNone.
enum class DropReason : std::uint8_t {
  kNone = 0,
  kPipelineFault,        // walker abort (misconfigured loopback/pass loop)
  kInvalidVni,
  kAclDeny,
  kNoRoute,
  kNoVmNcMapping,
  kNoNcResolved,
  kPeerResolutionLoop,
  kSnatPoolExhausted,
  kFallbackRateLimited,
  kUnknownVni,           // VNI not assigned to any cluster
  kNoLiveDevice,         // cluster ECMP set is empty
  kUnhandledScope,
  // ---- sf::guard overload protection (never emitted by asic stages; the
  // walker's drop codes stop at kUnhandledScope) ----------------------------
  kTenantShed,            // tier-2 degradation: the whole tenant is shed
  kTenantNewFlowShed,     // tier-1 degradation: new-flow setup shed
  kPuntQueueFull,         // hardware→x86 punt queue backpressure
  kSnatPortBlockExhausted,  // the session's external IP has no free port
};

/// Static-storage name; byte-identical to to_string(). Gateways stamp this
/// into PacketContext::drop_note so a drop never allocates.
const char* name(DropReason reason);
std::string to_string(DropReason reason);

/// The unified per-packet result.
struct Verdict {
  Action action = Action::kDrop;
  /// kNone unless action == kDrop; a dropping gateway always sets it.
  DropReason drop_reason = DropReason::kNone;
  /// Region level: the verdict was produced by the XGW-x86 fleet (the
  /// packet crossed the fallback path) rather than by XGW-H alone.
  bool software_path = false;
  net::OverlayPacket packet;  // with rewritten outer header
  double latency_us = 0;

  bool dropped() const { return action == Action::kDrop; }
  bool forwarded() const {
    return action == Action::kForwardToNc ||
           action == Action::kForwardTunnel ||
           action == Action::kSnatToInternet;
  }

  /// A drop verdict with its reason — keeps the invariant in one place.
  static Verdict drop(DropReason reason) {
    Verdict verdict;
    verdict.action = Action::kDrop;
    verdict.drop_reason = reason;
    return verdict;
  }
};

/// Region-path label of a verdict ("hardware-forwarded", "software-snat",
/// "dropped", ...) — the vocabulary of Fig. 10 and the path traces.
std::string path_label(const Verdict& verdict);

}  // namespace sf::dataplane
