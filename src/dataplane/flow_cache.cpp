#include "dataplane/flow_cache.hpp"

#include "core/runtime_config.hpp"
#include "net/hash.hpp"

namespace sf::dataplane {

FlowKey make_flow_key(std::uint32_t vni, std::uint64_t tuple_hash) {
  // Two independently seeded 64-bit digests derived from the flow's RSS
  // hash; both halves must collide for two flows to alias in the cache.
  // Deriving from the hash (instead of re-digesting the tuple) lets the
  // batch path reuse the shard-steering hash — the tuple is hashed exactly
  // once per packet anywhere in the system.
  FlowKey key;
  key.hi = net::hash_combine(0x5a11f15bf10c4a1eULL ^ vni, tuple_hash);
  key.lo = net::hash_combine(0xc0ffee0ddfa57e57ULL + vni,
                             net::mix64(tuple_hash ^ 0x9e3779b97f4a7c15ULL));
  return key;
}

FlowKey make_flow_key(std::uint32_t vni, const net::FiveTuple& tuple) {
  return make_flow_key(vni, tuple.hash());
}

std::size_t default_flow_cache_entries() {
  // Delegates to the consolidated runtime gates; semantics unchanged
  // (SF_FLOW_CACHE, latched once per process).
  return core::RuntimeConfig::process().flow_cache_entries;
}

}  // namespace sf::dataplane
