#include "dataplane/flow_cache.hpp"

#include "core/runtime_config.hpp"
#include "net/hash.hpp"

namespace sf::dataplane {

FlowKey make_flow_key(std::uint32_t vni, const net::FiveTuple& tuple) {
  // Two independently seeded 64-bit digests over the same material; both
  // halves must collide for two flows to alias in the cache. The address
  // and port digests are computed once and remixed for the second half —
  // this runs on every cacheable packet, so it stays lean.
  const std::uint64_t ports = (std::uint64_t{tuple.src_port} << 32) |
                              (std::uint64_t{tuple.dst_port} << 16) |
                              tuple.proto;
  const std::uint64_t src = net::hash_ip(tuple.src);
  const std::uint64_t dst = net::hash_ip(tuple.dst);
  const std::uint64_t p = net::mix64(ports);
  FlowKey key;
  key.hi = net::hash_combine(0x5a11f15bf10c4a1eULL ^ vni,
                             net::hash_combine(src, dst ^ p));
  key.lo = net::hash_combine(0xc0ffee0ddfa57e57ULL + vni,
                             net::hash_combine(dst ^ ~p, src));
  return key;
}

std::size_t default_flow_cache_entries() {
  // Delegates to the consolidated runtime gates; semantics unchanged
  // (SF_FLOW_CACHE, latched once per process).
  return core::RuntimeConfig::process().flow_cache_entries;
}

}  // namespace sf::dataplane
