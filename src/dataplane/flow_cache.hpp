// sf::dataplane::FlowCache — the exact-match fast path in front of a
// gateway's full pipeline walk (DESIGN.md §9).
//
// Real multi-tenant gateways put a flow cache in front of the slow lookup
// chain: the first packet of a flow pays the full multi-stage resolution,
// and the millions that follow replay the cached result. This is the
// simulator's equivalent: an open-addressing, linear-probe table keyed on
// a packed (VNI, 5-tuple) 128-bit digest, storing whatever per-flow
// summary the gateway chooses (verdict + mutation summary + counter
// deltas).
//
// Coherence is epoch-based. The cache never invalidates eagerly: every
// control-plane mutation (TableProgrammer ops, DR standby swaps, health
// reroutes) bumps the owner's generation counter, and entries are stamped
// with the generation they were filled under. A probe that lands on a
// stale generation treats the slot as empty (and reclaims it), so a
// lookup after any mutation falls back to the full walk — which is
// exactly what an uncached gateway would compute. That makes cache-on
// vs. cache-off byte-identical by construction, which the coherence tests
// and the CI perf-smoke byte-diff enforce.
//
// Single-writer by design: one cache per gateway, one gateway per shard in
// the parallel interval engine. No locks anywhere.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/headers.hpp"

namespace sf::dataplane {

/// Packed 128-bit exact-match key: two independently seeded digests of
/// (VNI, 5-tuple). A collision needs both 64-bit halves to collide
/// (~2^-64 per flow pair) — below the noise floor of the simulation.
struct FlowKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// Derives the cache key from the flow's 64-bit RSS hash
/// (FiveTuple::hash()). The sharded engine computes that hash once per
/// packet to pick a shard and threads it down through
/// Gateway::process_batch, so the gateways never rehash the tuple; the
/// tuple overload below is the scalar-path convenience that feeds the same
/// derivation. Both halves remix the hash under independent seeds, so a
/// cache collision still needs two 64-bit digests to agree.
FlowKey make_flow_key(std::uint32_t vni, std::uint64_t tuple_hash);
FlowKey make_flow_key(std::uint32_t vni, const net::FiveTuple& tuple);

/// Cache observability. Deliberately a plain struct, not registry
/// counters: registering these would make telemetry snapshots differ
/// between cache-on and cache-off runs, breaking the byte-identity
/// contract.
struct FlowCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t stale_reclaims = 0;
  /// Slots currently holding an entry (any generation; stale slots count
  /// until a probe reclaims them — they still consume table space).
  std::uint64_t occupied = 0;
  /// Highest `occupied` ever reached.
  std::uint64_t high_watermark = 0;
};

/// Default entry count for gateway flow caches: 1 << 12 unless the
/// SF_FLOW_CACHE environment variable overrides it ("0"/"off" disables —
/// the CI byte-diff runs every bench both ways; any other value is an
/// entry count). Read once per process.
std::size_t default_flow_cache_entries();

template <typename Value>
class FlowCache {
 public:
  struct Config {
    /// Slot count; rounded up to a power of two. 0 disables the cache.
    std::size_t entries = 1 << 12;
    /// Linear-probe window. Past it, insert evicts deterministically.
    std::size_t max_probes = 8;
  };

  using Stats = FlowCacheStats;

  FlowCache() : FlowCache(Config{}) {}
  explicit FlowCache(Config config) : config_(config) {
    capacity_ = 1;
    if (config_.entries == 0) {
      capacity_ = 0;
      return;
    }
    while (capacity_ < config_.entries) capacity_ <<= 1;
    mask_ = capacity_ - 1;
    if (config_.max_probes == 0) config_.max_probes = 1;
  }

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

  /// Hints `key`'s home slot into cache ahead of a find(). No-op while the
  /// table is lazily unallocated.
  void prefetch(const FlowKey& key) const {
    if (!table_.empty()) {
      __builtin_prefetch(table_.data() +
                         (static_cast<std::size_t>(key.hi) & mask_));
    }
  }

  /// Looks up `key`; entries stamped with a different generation are
  /// treated as absent and their slot reclaimed (lazy invalidation).
  /// Returns a pointer into the table, valid until the next insert.
  Value* find(const FlowKey& key, std::uint64_t generation) {
    if (capacity_ == 0 || table_.empty()) {
      ++stats_.misses;
      return nullptr;
    }
    std::size_t slot = static_cast<std::size_t>(key.hi) & mask_;
    for (std::size_t probe = 0; probe < config_.max_probes; ++probe) {
      Entry& entry = table_[slot];
      if (!entry.occupied) break;  // no tombstones: empty ends the window
      if (entry.key == key) {
        if (entry.generation == generation) {
          ++stats_.hits;
          return &entry.value;
        }
        entry.occupied = false;  // stale epoch: reclaim, force a full walk
        ++stats_.stale_reclaims;
        --stats_.occupied;
        break;
      }
      slot = (slot + 1) & mask_;
    }
    ++stats_.misses;
    return nullptr;
  }

  /// Const presence probe: true when `key` holds a live entry for
  /// `generation`. Unlike find(), this never mutates the table or the
  /// stats — stale slots are left for the next find() to reclaim — so
  /// outside observers (the guard's "is this flow established?" check)
  /// can ask without perturbing hit/miss accounting or byte-identity.
  bool contains(const FlowKey& key, std::uint64_t generation) const {
    if (capacity_ == 0 || table_.empty()) return false;
    std::size_t slot = static_cast<std::size_t>(key.hi) & mask_;
    for (std::size_t probe = 0; probe < config_.max_probes; ++probe) {
      const Entry& entry = table_[slot];
      if (!entry.occupied) return false;
      if (entry.key == key) return entry.generation == generation;
      slot = (slot + 1) & mask_;
    }
    return false;
  }

  /// Admission check, called on a miss: a flow earns a cache entry on its
  /// SECOND miss, not its first (microflow promotion). One-packet flows —
  /// the bulk of a realistic mix — then cost a single filter write instead
  /// of a full capture + insert, which keeps a 0%-hit workload at parity
  /// with an uncached gateway. Returns true when the caller should capture
  /// and insert this flow now. Purely key-driven, so behaviour stays
  /// deterministic and cache-on/off byte-identity is unaffected (admission
  /// only delays when an entry appears, never what it replays).
  /// The filter is 2-way set-associative: with one tag per bucket, two
  /// flows sharing a bucket alternate overwriting each other and neither
  /// is ever admitted — a permanent miss. Two ways let a colliding pair
  /// coexist; the empty way is preferred, then a per-key victim.
  bool note_miss(const FlowKey& key) {
    if (capacity_ == 0) return false;
    if (seen_.empty()) seen_.resize(capacity_ * 2);
    const std::size_t bucket =
        (static_cast<std::size_t>(key.hi) & mask_) * 2;
    const std::uint64_t tag = key.lo | 1;  // 0 is the empty sentinel
    if (seen_[bucket] == tag || seen_[bucket + 1] == tag) return true;
    if (seen_[bucket] == 0) {
      seen_[bucket] = tag;
    } else if (seen_[bucket + 1] == 0) {
      seen_[bucket + 1] = tag;
    } else {
      seen_[bucket + ((key.lo >> 1) & 1)] = tag;
    }
    return false;
  }

  /// Inserts (or overwrites) `key`. Prefers the key's own slot, then an
  /// empty or stale slot in the probe window, else deterministically
  /// evicts the window's first slot.
  void insert(const FlowKey& key, std::uint64_t generation, Value value) {
    if (capacity_ == 0) return;
    if (table_.empty()) table_.resize(capacity_);  // lazy: idle caches cost 0
    const std::size_t home = static_cast<std::size_t>(key.hi) & mask_;
    std::size_t victim = home;
    bool found_victim = false;
    std::size_t slot = home;
    for (std::size_t probe = 0; probe < config_.max_probes; ++probe) {
      Entry& entry = table_[slot];
      if (entry.occupied && entry.key == key) {
        victim = slot;
        found_victim = true;
        break;
      }
      if (!found_victim &&
          (!entry.occupied || entry.generation != generation)) {
        victim = slot;
        found_victim = true;
        // Keep scanning: an existing slot for `key` still wins.
      }
      slot = (slot + 1) & mask_;
    }
    Entry& entry = table_[victim];
    if (entry.occupied && !(entry.key == key)) ++stats_.evictions;
    if (!entry.occupied) {
      ++stats_.occupied;
      stats_.high_watermark = std::max(stats_.high_watermark, stats_.occupied);
    }
    entry.key = key;
    entry.generation = generation;
    entry.value = std::move(value);
    entry.occupied = true;
    ++stats_.insertions;
  }

  void clear() {
    table_.clear();
    seen_.clear();
    stats_ = Stats{};
  }

  /// Live entries for the current generation (O(capacity); test/debug).
  std::size_t size(std::uint64_t generation) const {
    std::size_t live = 0;
    for (const Entry& entry : table_) {
      if (entry.occupied && entry.generation == generation) ++live;
    }
    return live;
  }

 private:
  struct Entry {
    FlowKey key;
    std::uint64_t generation = 0;
    Value value{};
    bool occupied = false;
  };

  Config config_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::vector<Entry> table_;
  std::vector<std::uint64_t> seen_;  // admission filter (key.lo tags)
  Stats stats_;
};

}  // namespace sf::dataplane
