#include "dataplane/shard_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "core/runtime_config.hpp"

namespace sf::dataplane {

ShardEngine::ShardEngine(ShardPlan plan)
    : plan_(plan),
      pool_(std::make_unique<ThreadPool>(std::max<std::size_t>(
          1, plan.threads))) {
  if (plan_.shards == 0) plan_.shards = 1;
}

void ShardEngine::set_threads(std::size_t threads) {
  plan_.threads = std::max<std::size_t>(1, threads);
  pool_ = std::make_unique<ThreadPool>(plan_.threads);
}

telemetry::Snapshot ShardEngine::run_sharded(
    std::size_t count, const std::function<std::size_t(std::size_t)>& owner,
    const std::function<void(std::size_t, std::span<const std::uint32_t>,
                             telemetry::Registry&)>& shard_fn) {
  const std::size_t shards = plan_.shards;

  // Phase 1 — hash-partition item indices, in parallel over contiguous
  // chunks. Per-(chunk, shard) buckets concatenated in chunk order keep
  // each shard's index list ascending for ANY chunk count, so the chunk
  // count (a throughput knob) cannot influence results.
  const std::size_t chunks =
      count == 0 ? 0 : std::min(count, pool_->thread_count() * 4);
  std::vector<std::vector<std::vector<std::uint32_t>>> buckets(chunks);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      buckets[c].resize(shards);
      const std::size_t begin = count * c / chunks;
      const std::size_t end = count * (c + 1) / chunks;
      tasks.push_back([&, c, begin, end] {
        // Pre-size for the uniform-hash expectation (plus slack) so the
        // partition loop almost never reallocates mid-run.
        const std::size_t expect = (end - begin) / shards + 8;
        for (auto& bucket : buckets[c]) bucket.reserve(expect);
        for (std::size_t i = begin; i < end; ++i) {
          buckets[c][owner(i) % shards].push_back(
              static_cast<std::uint32_t>(i));
        }
      });
    }
    pool_->run_all(std::move(tasks));
  }

  std::vector<std::vector<std::uint32_t>> shard_items(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    std::size_t total = 0;
    for (std::size_t c = 0; c < chunks; ++c) total += buckets[c][s].size();
    shard_items[s].reserve(total);
    for (std::size_t c = 0; c < chunks; ++c) {
      shard_items[s].insert(shard_items[s].end(), buckets[c][s].begin(),
                            buckets[c][s].end());
    }
  }

  // Phase 2 — run the shards across the pool, each against its own
  // private registry (no shared mutable counters on the hot path).
  std::vector<telemetry::Registry> registries(shards);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      tasks.push_back(
          [&, s] { shard_fn(s, shard_items[s], registries[s]); });
    }
    pool_->run_all(std::move(tasks));
  }

  // Reduce: merge per-shard snapshots in shard order.
  telemetry::Snapshot merged;
  for (std::size_t s = 0; s < shards; ++s) {
    merged.merge(registries[s].snapshot());
  }
  return merged;
}

void ShardEngine::run_tasks(std::vector<std::function<void()>> tasks) {
  pool_->run_all(std::move(tasks));
}

void ShardEngine::process_packets(
    std::span<const net::OverlayPacket> packets, double now,
    const std::function<Gateway&(std::size_t)>& gateway_for,
    std::span<Verdict> out) {
  // One implementation for every shape: an empty update plan has no
  // visibility boundaries, so the burst loop below never splits a burst.
  process_packets(packets, now, gateway_for, out, UpdatePlan{});
}

std::vector<Verdict> ShardEngine::process_packets(
    std::span<const net::OverlayPacket> packets, double now,
    const std::function<Gateway&(std::size_t)>& gateway_for) {
  std::vector<Verdict> verdicts(packets.size());
  process_packets(packets, now, gateway_for, verdicts);
  return verdicts;
}

void ShardEngine::process_packets(
    std::span<const net::OverlayPacket> packets, double now,
    const std::function<Gateway&(std::size_t)>& gateway_for,
    std::span<Verdict> out, const UpdatePlan& updates) {
  if (out.size() != packets.size()) {
    throw std::invalid_argument(
        "process_packets: out.size() must equal packets.size()");
  }
  for (std::size_t k = 1; k < updates.updates.size(); ++k) {
    if (updates.updates[k].apply_index < updates.updates[k - 1].apply_index) {
      throw std::invalid_argument(
          "process_packets: updates must be ascending by apply_index");
    }
  }

  // Every shard's visibility floor is announced BEFORE the mutator
  // starts: gateways reclaim table versions below their announced floor,
  // so a mutator racing ahead of a shard's first advance() could
  // otherwise collect versions that shard is about to pin.
  if (updates.advance) {
    for (std::size_t s = 0; s < plan_.shards; ++s) updates.advance(s, 0);
  }

  // The mutator is a real concurrent thread even at threads == 1: the
  // whole point is that worker/mutator scheduling CANNOT matter. It
  // publishes versions as fast as it likes; each packet's visibility is
  // fixed by the stamped apply_index, enforced by the advance() pin.
  std::thread mutator;
  if (!updates.updates.empty() && updates.apply) {
    mutator = std::thread([&updates] {
      for (std::size_t k = 0; k < updates.updates.size(); ++k) {
        updates.apply(k);
      }
    });
  }

  const std::span<const TimedTableOp> stream = updates.updates;
  const auto& advance = updates.advance;
  const std::size_t batch = std::max<std::size_t>(
      1, plan_.batch != 0 ? plan_.batch
                          : core::RuntimeConfig::process().batch_size);

  // The 5-tuple hash is computed exactly once per packet, in a tight
  // pre-pass (chunked across the pool) rather than through the opaque
  // owner() callback: independent per-packet mix chains overlap in the
  // out-of-order window, and the same values thread into every gateway's
  // hash-aware batch path for cache keys and pipe picks — the scalar path
  // used to hash two to three times per packet.
  std::vector<std::uint64_t> hashes(packets.size());
  {
    const std::size_t chunks = packets.size() == 0
                                   ? 0
                                   : std::min(packets.size(),
                                              plan_.threads * 4);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = packets.size() * c / chunks;
      const std::size_t end = packets.size() * (c + 1) / chunks;
      tasks.push_back([&, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          hashes[i] = packets[i].inner.hash();
        }
      });
    }
    run_tasks(std::move(tasks));
  }

  run_sharded(
      packets.size(),
      [&](std::size_t i) { return static_cast<std::size_t>(hashes[i]); },
      [&](std::size_t shard, std::span<const std::uint32_t> indices,
          telemetry::Registry&) {
        Gateway& gateway = gateway_for(shard);
        std::size_t cursor = 0;
        // Feed the gateway sub-spans of this shard's (ascending) index
        // list — whole bursts, no per-burst gather/scatter copies. The
        // gateway's stateful pieces (meters, caches) see the same packet
        // sequence regardless of thread count or burst size, so verdicts
        // and telemetry are byte-identical at any ShardPlan.
        std::size_t start = 0;
        const auto flush = [&](std::size_t end_pos) {
          if (start >= end_pos) return;
          gateway.process_batch_indexed(
              packets, hashes, indices.subspan(start, end_pos - start), now,
              out);
          start = end_pos;
        };

        for (std::size_t k = 0; k < indices.size(); ++k) {
          const std::uint32_t i = indices[k];
          // Monotone per-shard cursor: `visible` for packet i is the
          // count of updates with apply_index < i. A table-visibility
          // boundary splits the burst — every packet inside one
          // process_batch_indexed call reads one table version.
          if (cursor < stream.size() && stream[cursor].apply_index < i) {
            flush(k);
            while (cursor < stream.size() &&
                   stream[cursor].apply_index < i) {
              ++cursor;
            }
            if (advance) advance(shard, cursor);
          }
          if (k - start + 1 >= batch) flush(k + 1);
        }
        flush(indices.size());
      });

  if (mutator.joinable()) mutator.join();
}

}  // namespace sf::dataplane
