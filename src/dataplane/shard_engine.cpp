#include "dataplane/shard_engine.hpp"

#include <algorithm>

namespace sf::dataplane {

ShardEngine::ShardEngine(ShardPlan plan)
    : plan_(plan),
      pool_(std::make_unique<ThreadPool>(std::max<std::size_t>(
          1, plan.threads))) {
  if (plan_.shards == 0) plan_.shards = 1;
}

void ShardEngine::set_threads(std::size_t threads) {
  plan_.threads = std::max<std::size_t>(1, threads);
  pool_ = std::make_unique<ThreadPool>(plan_.threads);
}

telemetry::Snapshot ShardEngine::run_sharded(
    std::size_t count, const std::function<std::size_t(std::size_t)>& owner,
    const std::function<void(std::size_t, std::span<const std::uint32_t>,
                             telemetry::Registry&)>& shard_fn) {
  const std::size_t shards = plan_.shards;

  // Phase 1 — hash-partition item indices, in parallel over contiguous
  // chunks. Per-(chunk, shard) buckets concatenated in chunk order keep
  // each shard's index list ascending for ANY chunk count, so the chunk
  // count (a throughput knob) cannot influence results.
  const std::size_t chunks =
      count == 0 ? 0 : std::min(count, pool_->thread_count() * 4);
  std::vector<std::vector<std::vector<std::uint32_t>>> buckets(chunks);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      buckets[c].resize(shards);
      const std::size_t begin = count * c / chunks;
      const std::size_t end = count * (c + 1) / chunks;
      tasks.push_back([&, c, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          buckets[c][owner(i) % shards].push_back(
              static_cast<std::uint32_t>(i));
        }
      });
    }
    pool_->run_all(std::move(tasks));
  }

  std::vector<std::vector<std::uint32_t>> shard_items(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    std::size_t total = 0;
    for (std::size_t c = 0; c < chunks; ++c) total += buckets[c][s].size();
    shard_items[s].reserve(total);
    for (std::size_t c = 0; c < chunks; ++c) {
      shard_items[s].insert(shard_items[s].end(), buckets[c][s].begin(),
                            buckets[c][s].end());
    }
  }

  // Phase 2 — run the shards across the pool, each against its own
  // private registry (no shared mutable counters on the hot path).
  std::vector<telemetry::Registry> registries(shards);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      tasks.push_back(
          [&, s] { shard_fn(s, shard_items[s], registries[s]); });
    }
    pool_->run_all(std::move(tasks));
  }

  // Reduce: merge per-shard snapshots in shard order.
  telemetry::Snapshot merged;
  for (std::size_t s = 0; s < shards; ++s) {
    merged.merge(registries[s].snapshot());
  }
  return merged;
}

void ShardEngine::run_tasks(std::vector<std::function<void()>> tasks) {
  pool_->run_all(std::move(tasks));
}

}  // namespace sf::dataplane
