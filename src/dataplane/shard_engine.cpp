#include "dataplane/shard_engine.hpp"

#include <algorithm>

namespace sf::dataplane {

ShardEngine::ShardEngine(ShardPlan plan)
    : plan_(plan),
      pool_(std::make_unique<ThreadPool>(std::max<std::size_t>(
          1, plan.threads))) {
  if (plan_.shards == 0) plan_.shards = 1;
}

void ShardEngine::set_threads(std::size_t threads) {
  plan_.threads = std::max<std::size_t>(1, threads);
  pool_ = std::make_unique<ThreadPool>(plan_.threads);
}

telemetry::Snapshot ShardEngine::run_sharded(
    std::size_t count, const std::function<std::size_t(std::size_t)>& owner,
    const std::function<void(std::size_t, std::span<const std::uint32_t>,
                             telemetry::Registry&)>& shard_fn) {
  const std::size_t shards = plan_.shards;

  // Phase 1 — hash-partition item indices, in parallel over contiguous
  // chunks. Per-(chunk, shard) buckets concatenated in chunk order keep
  // each shard's index list ascending for ANY chunk count, so the chunk
  // count (a throughput knob) cannot influence results.
  const std::size_t chunks =
      count == 0 ? 0 : std::min(count, pool_->thread_count() * 4);
  std::vector<std::vector<std::vector<std::uint32_t>>> buckets(chunks);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      buckets[c].resize(shards);
      const std::size_t begin = count * c / chunks;
      const std::size_t end = count * (c + 1) / chunks;
      tasks.push_back([&, c, begin, end] {
        // Pre-size for the uniform-hash expectation (plus slack) so the
        // partition loop almost never reallocates mid-run.
        const std::size_t expect = (end - begin) / shards + 8;
        for (auto& bucket : buckets[c]) bucket.reserve(expect);
        for (std::size_t i = begin; i < end; ++i) {
          buckets[c][owner(i) % shards].push_back(
              static_cast<std::uint32_t>(i));
        }
      });
    }
    pool_->run_all(std::move(tasks));
  }

  std::vector<std::vector<std::uint32_t>> shard_items(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    std::size_t total = 0;
    for (std::size_t c = 0; c < chunks; ++c) total += buckets[c][s].size();
    shard_items[s].reserve(total);
    for (std::size_t c = 0; c < chunks; ++c) {
      shard_items[s].insert(shard_items[s].end(), buckets[c][s].begin(),
                            buckets[c][s].end());
    }
  }

  // Phase 2 — run the shards across the pool, each against its own
  // private registry (no shared mutable counters on the hot path).
  std::vector<telemetry::Registry> registries(shards);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      tasks.push_back(
          [&, s] { shard_fn(s, shard_items[s], registries[s]); });
    }
    pool_->run_all(std::move(tasks));
  }

  // Reduce: merge per-shard snapshots in shard order.
  telemetry::Snapshot merged;
  for (std::size_t s = 0; s < shards; ++s) {
    merged.merge(registries[s].snapshot());
  }
  return merged;
}

void ShardEngine::run_tasks(std::vector<std::function<void()>> tasks) {
  pool_->run_all(std::move(tasks));
}

void ShardEngine::process_packets(
    std::span<const net::OverlayPacket> packets, double now,
    const std::function<Gateway&(std::size_t)>& gateway_for,
    std::span<Verdict> out) {
  if (out.size() != packets.size()) {
    throw std::invalid_argument(
        "process_packets: out.size() must equal packets.size()");
  }

  // Single-thread fast path: one ascending sweep dispatching each packet
  // to its owner shard. Every gateway still sees exactly the packets with
  // owner % shards == its shard, in ascending index order — the same
  // sequence the bucketed path below feeds it — so results are identical
  // at any thread count. What changes is the memory pattern: packets and
  // verdicts stream sequentially instead of stride-hopping through
  // per-shard index lists.
  if (plan_.threads <= 1) {
    const std::size_t shards = plan_.shards;
    std::vector<Gateway*> gateways(shards);
    for (std::size_t s = 0; s < shards; ++s) gateways[s] = &gateway_for(s);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const std::size_t shard =
          static_cast<std::size_t>(packets[i].inner.hash()) % shards;
      out[i] = gateways[shard]->process(packets[i], now);
    }
    return;
  }

  run_sharded(
      packets.size(),
      [&](std::size_t i) {
        return static_cast<std::size_t>(packets[i].inner.hash());
      },
      [&](std::size_t shard, std::span<const std::uint32_t> indices,
          telemetry::Registry&) {
        Gateway& gateway = gateway_for(shard);
        // Ascending input order within the shard: the gateway's stateful
        // pieces (meters, caches) see the same packet sequence regardless
        // of thread count. Output slots are disjoint by index.
        constexpr std::size_t kPrefetch = 8;
        for (std::size_t k = 0; k < indices.size(); ++k) {
          if (k + kPrefetch < indices.size()) {
            // A shard's indices stride ~shards-wide through the batch —
            // past what hardware prefetchers track — so fetch the packet
            // and verdict slot a few iterations ahead.
            const std::uint32_t ahead = indices[k + kPrefetch];
            const char* pkt = reinterpret_cast<const char*>(&packets[ahead]);
            __builtin_prefetch(pkt);
            __builtin_prefetch(pkt + 64);  // OverlayPacket spans >1 line
            __builtin_prefetch(&out[ahead], 1);
          }
          const std::uint32_t i = indices[k];
          out[i] = gateway.process(packets[i], now);
        }
      });
}

std::vector<Verdict> ShardEngine::process_packets(
    std::span<const net::OverlayPacket> packets, double now,
    const std::function<Gateway&(std::size_t)>& gateway_for) {
  std::vector<Verdict> verdicts(packets.size());
  process_packets(packets, now, gateway_for, verdicts);
  return verdicts;
}

}  // namespace sf::dataplane
