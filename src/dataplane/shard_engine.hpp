// The sharded parallel work engine behind SailfishRegion::simulate_interval.
//
// Determinism contract: results are byte-identical for every thread count.
// Two properties make that hold by construction:
//
//   * the shard partition is a pure hash of the work item (the same
//     RSS/VNI-style flow hash the steering uses) modulo a FIXED shard
//     count — never the thread count — so which shard owns which item is a
//     property of the workload, not of the machine;
//   * shard work writes only shard-private state (per-item output slots,
//     per-shard registries), and every floating-point reduction runs in a
//     fixed order (shard 0..S-1, item index ascending) on one thread.
//
// Threads only decide which worker executes which shard; they never change
// what is computed or in which order it is summed.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dataplane/gateway.hpp"
#include "dataplane/table_programmer.hpp"
#include "dataplane/thread_pool.hpp"
#include "telemetry/registry.hpp"

namespace sf::dataplane {

/// Shape of a sharded run: a fixed shard count (the determinism unit) and
/// the worker parallelism to spread shards over.
struct ShardPlan {
  std::size_t shards = 16;
  std::size_t threads = 1;
  /// Burst size fed to each shard's gateway in process_packets (0 → the
  /// process-wide SF_BATCH default). Purely a throughput knob: verdicts
  /// and telemetry are byte-identical at any value.
  std::size_t batch = 0;
};

class ShardEngine {
 public:
  explicit ShardEngine(ShardPlan plan);

  const ShardPlan& plan() const { return plan_; }

  /// Re-sizes the worker pool (shard count stays fixed, so results are
  /// unchanged). Used by the scaling bench and operators tuning a host.
  void set_threads(std::size_t threads);

  /// Partitions items [0, count) by `owner` (a pure hash -> shard index,
  /// values >= shards are reduced modulo shards), then runs
  /// `shard_fn(shard, indices, registry)` across the pool. Each shard gets
  /// a fresh private telemetry registry; after the barrier the per-shard
  /// snapshots are merged (shard order) into the returned snapshot via the
  /// standard snapshot-merge machinery. The index lists are ascending, so
  /// a shard that processes its items in list order sees them in the
  /// original sequence.
  telemetry::Snapshot run_sharded(
      std::size_t count,
      const std::function<std::size_t(std::size_t)>& owner,
      const std::function<void(std::size_t shard,
                               std::span<const std::uint32_t> indices,
                               telemetry::Registry& registry)>& shard_fn);

  /// Runs independent tasks on the pool; returns after all finish.
  void run_tasks(std::vector<std::function<void()>> tasks);

  /// Deterministic parallel packet-batch path. Packets are partitioned by
  /// their flow hash modulo the FIXED shard count; each shard then feeds
  /// its packets to the gateway `gateway_for(shard)` returns in whole
  /// bursts (ShardPlan::batch), in ascending input order — one gateway
  /// (and thus one flow cache) per shard, touched only by its owning
  /// worker, so the fast path needs no locks. The 5-tuple hash is computed
  /// exactly once per packet here and threaded into the gateways'
  /// hash-aware process_batch, which derives cache keys and pipe steering
  /// from it. Verdicts land in `out` at the packet's original index;
  /// `out.size()` must equal `packets.size()`. Identical verdict streams
  /// at any thread count and burst size, provided the per-shard gateways
  /// start in identical states.
  void process_packets(std::span<const net::OverlayPacket> packets,
                       double now,
                       const std::function<Gateway&(std::size_t)>& gateway_for,
                       std::span<Verdict> out);

  /// Convenience overload: allocates the verdict vector once up front
  /// (pre-sized, no mid-loop reallocation) and returns it.
  std::vector<Verdict> process_packets(
      std::span<const net::OverlayPacket> packets, double now,
      const std::function<Gateway&(std::size_t)>& gateway_for);

  /// A batch's control-plane update stream, interleaved with forwarding at
  /// *virtual* apply times. `updates` must be ascending by apply_index; an
  /// update with apply_index `a` is visible to exactly the packets with
  /// index > a — a pure property of the stamped stream, never of thread
  /// timing, so interleaved runs stay byte-identical at any thread count.
  ///
  /// `apply(k)` runs on a dedicated mutator thread, once per update in
  /// stream order; it performs the actual table mutation (e.g. publishing
  /// a new table version under RCU). `advance(shard, visible)` runs on the
  /// shard's worker immediately before the first packet that requires the
  /// first `visible` updates to be readable — the callback pins that
  /// shard's gateway to the corresponding table version (e.g.
  /// XgwX86::set_lookup_seq). Readers that reach a version before the
  /// mutator publishes it wait inside their epoch pin; readers behind the
  /// mutator read the *older* version out of the table's history. Either
  /// way the verdict stream is a function of the op stream alone.
  struct UpdatePlan {
    std::span<const TimedTableOp> updates;
    std::function<void(std::size_t k)> apply;
    std::function<void(std::size_t shard, std::size_t visible)> advance;
  };

  /// process_packets with a concurrent, deterministically interleaved
  /// update stream (see UpdatePlan). `advance(shard, 0)` is always issued
  /// before a shard's first packet so every shard starts pinned at the
  /// batch's base version.
  void process_packets(std::span<const net::OverlayPacket> packets,
                       double now,
                       const std::function<Gateway&(std::size_t)>& gateway_for,
                       std::span<Verdict> out, const UpdatePlan& updates);

 private:
  ShardPlan plan_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace sf::dataplane
