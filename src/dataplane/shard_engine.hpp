// The sharded parallel work engine behind SailfishRegion::simulate_interval.
//
// Determinism contract: results are byte-identical for every thread count.
// Two properties make that hold by construction:
//
//   * the shard partition is a pure hash of the work item (the same
//     RSS/VNI-style flow hash the steering uses) modulo a FIXED shard
//     count — never the thread count — so which shard owns which item is a
//     property of the workload, not of the machine;
//   * shard work writes only shard-private state (per-item output slots,
//     per-shard registries), and every floating-point reduction runs in a
//     fixed order (shard 0..S-1, item index ascending) on one thread.
//
// Threads only decide which worker executes which shard; they never change
// what is computed or in which order it is summed.

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dataplane/gateway.hpp"
#include "dataplane/thread_pool.hpp"
#include "telemetry/registry.hpp"

namespace sf::dataplane {

/// Shape of a sharded run: a fixed shard count (the determinism unit) and
/// the worker parallelism to spread shards over.
struct ShardPlan {
  std::size_t shards = 16;
  std::size_t threads = 1;
};

class ShardEngine {
 public:
  explicit ShardEngine(ShardPlan plan);

  const ShardPlan& plan() const { return plan_; }

  /// Re-sizes the worker pool (shard count stays fixed, so results are
  /// unchanged). Used by the scaling bench and operators tuning a host.
  void set_threads(std::size_t threads);

  /// Partitions items [0, count) by `owner` (a pure hash -> shard index,
  /// values >= shards are reduced modulo shards), then runs
  /// `shard_fn(shard, indices, registry)` across the pool. Each shard gets
  /// a fresh private telemetry registry; after the barrier the per-shard
  /// snapshots are merged (shard order) into the returned snapshot via the
  /// standard snapshot-merge machinery. The index lists are ascending, so
  /// a shard that processes its items in list order sees them in the
  /// original sequence.
  telemetry::Snapshot run_sharded(
      std::size_t count,
      const std::function<std::size_t(std::size_t)>& owner,
      const std::function<void(std::size_t shard,
                               std::span<const std::uint32_t> indices,
                               telemetry::Registry& registry)>& shard_fn);

  /// Runs independent tasks on the pool; returns after all finish.
  void run_tasks(std::vector<std::function<void()>> tasks);

  /// Deterministic parallel packet-batch path. Packets are partitioned by
  /// their flow hash modulo the FIXED shard count; each shard then
  /// processes its packets in ascending input order against the gateway
  /// `gateway_for(shard)` returns — one gateway (and thus one flow cache)
  /// per shard, touched only by its owning worker, so the fast path needs
  /// no locks. Verdicts land in `out` at the packet's original index;
  /// `out.size()` must equal `packets.size()`. Identical verdict streams
  /// at any thread count, provided the per-shard gateways start in
  /// identical states.
  void process_packets(std::span<const net::OverlayPacket> packets,
                       double now,
                       const std::function<Gateway&(std::size_t)>& gateway_for,
                       std::span<Verdict> out);

  /// Convenience overload: allocates the verdict vector once up front
  /// (pre-sized, no mid-loop reallocation) and returns it.
  std::vector<Verdict> process_packets(
      std::span<const net::OverlayPacket> packets, double now,
      const std::function<Gateway&(std::size_t)>& gateway_for);

 private:
  ShardPlan plan_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace sf::dataplane
