#include "dataplane/table_programmer.hpp"

namespace sf::dataplane {

std::string to_string(TableOpStatus status) {
  switch (status) {
    case TableOpStatus::kOk:
      return "ok";
    case TableOpStatus::kDuplicate:
      return "duplicate";
    case TableOpStatus::kNotFound:
      return "not-found";
    case TableOpStatus::kCapacityExceeded:
      return "capacity-exceeded";
    case TableOpStatus::kRateLimited:
      return "rate-limited";
  }
  return "?";
}

TableOpStatus apply(TableProgrammer& target, const TableOp& op) {
  switch (op.kind) {
    case TableOp::Kind::kAddRoute:
      return target.install_route(op.vni, op.prefix, op.route_action);
    case TableOp::Kind::kDelRoute:
      return target.remove_route(op.vni, op.prefix);
    case TableOp::Kind::kAddMapping:
      return target.install_mapping(op.mapping_key, op.mapping_action);
    case TableOp::Kind::kDelMapping:
      return target.remove_mapping(op.mapping_key);
  }
  return TableOpStatus::kNotFound;
}

}  // namespace sf::dataplane
