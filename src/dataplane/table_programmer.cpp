#include "dataplane/table_programmer.hpp"

namespace sf::dataplane {

std::string to_string(TableOpStatus status) {
  switch (status) {
    case TableOpStatus::kOk:
      return "ok";
    case TableOpStatus::kDuplicate:
      return "duplicate";
    case TableOpStatus::kNotFound:
      return "not-found";
    case TableOpStatus::kCapacityExceeded:
      return "capacity-exceeded";
    case TableOpStatus::kRateLimited:
      return "rate-limited";
    case TableOpStatus::kUnknownTarget:
      return "unknown-target";
  }
  return "?";
}

TableOpStatus apply(TableProgrammer& target, const TableOp& op) {
  return target.apply(TableOpBatch::single(op)).status();
}

}  // namespace sf::dataplane
