#include "dataplane/thread_pool.hpp"

namespace sf::dataplane {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (auto& task : tasks) task();
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  tasks_ = std::move(tasks);
  next_task_ = 0;
  unfinished_ = tasks_.size();
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
  tasks_.clear();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock,
                  [this] { return stop_ || next_task_ < tasks_.size(); });
    if (stop_) return;
    while (next_task_ < tasks_.size()) {
      const std::size_t index = next_task_++;
      lock.unlock();
      tasks_[index]();
      lock.lock();
      if (--unfinished_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace sf::dataplane
