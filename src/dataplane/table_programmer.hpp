// The controller-facing table-programming interface.
//
// XGW-H, XGW-x86 (and the fan-out wrappers above them) used to declare the
// same four install/remove methods independently, each returning a bare
// `bool` whose meaning drifted per layer ("newly inserted"? "accepted"?
// "found"?). This header is the single declaration: a `TableProgrammer`
// interface with a `TableOpStatus` enum that distinguishes the failure
// modes a real controller must react to — duplicates are idempotent
// successes, capacity means "close the sale" (§6.1), rate limiting
// protects the device's update channel (§2.3's install-speed pain).

#pragma once

#include <cstdint>
#include <string>

#include "net/headers.hpp"
#include "net/ip.hpp"
#include "tables/entry.hpp"

namespace sf::dataplane {

enum class TableOpStatus : std::uint8_t {
  kOk = 0,            // state changed as requested
  kDuplicate,         // entry already present; action refreshed in place
  kNotFound,          // remove/update target absent (or unknown VNI)
  kCapacityExceeded,  // table full / digest conflict unresolvable
  kRateLimited,       // update channel budget exhausted; retry later
};

std::string to_string(TableOpStatus status);

/// True when the desired entry is present (install) or absent (remove)
/// after the call — the idempotent notion of success callers usually want.
constexpr bool succeeded(TableOpStatus status) {
  return status == TableOpStatus::kOk || status == TableOpStatus::kDuplicate;
}

/// The controller-facing table API every gateway implements. The two
/// tables are the paper's Fig. 2 pair: VXLAN routes (LPM) and VM-NC
/// mappings (exact).
class TableProgrammer {
 public:
  virtual ~TableProgrammer() = default;

  virtual TableOpStatus install_route(net::Vni vni,
                                      const net::IpPrefix& prefix,
                                      tables::VxlanRouteAction action) = 0;
  virtual TableOpStatus remove_route(net::Vni vni,
                                     const net::IpPrefix& prefix) = 0;
  virtual TableOpStatus install_mapping(const tables::VmNcKey& key,
                                        tables::VmNcAction action) = 0;
  virtual TableOpStatus remove_mapping(const tables::VmNcKey& key) = 0;
};

/// One table operation, as the controller fans it out to install targets
/// (devices, mirrors, recovery replays).
struct TableOp {
  enum class Kind : std::uint8_t {
    kAddRoute,
    kDelRoute,
    kAddMapping,
    kDelMapping,
  };
  Kind kind = Kind::kAddRoute;
  net::Vni vni = 0;
  net::IpPrefix prefix;                    // routes
  tables::VxlanRouteAction route_action;   // routes
  tables::VmNcKey mapping_key;             // mappings
  tables::VmNcAction mapping_action;       // mappings
};

/// Applies one fanned-out op to a target through the interface.
TableOpStatus apply(TableProgrammer& target, const TableOp& op);

}  // namespace sf::dataplane
