// The controller-facing table-programming interface, v2.
//
// v1 declared four install/remove virtuals; every layer (device, cluster
// fan-out, controller) re-implemented the same dispatch, and callers had
// no way to learn *when* an op became visible to forwarding. v2 narrows
// the virtual surface to a single `apply(TableOpBatch) -> BatchResult`:
// one override per implementation, typed per-op `TableOpStatus`, and the
// publish epoch — the table version at which the op took effect — so the
// epoch/RCU read path (rcu/epoch.hpp, DESIGN.md §13) can pin exactly the
// version a replay requires. Batching also matches the real control
// plane: the update channel moves coalesced transactions, not single
// entries (§2.3's install-speed pain).
//
// The v1 methods survive one release as thin non-virtual wrappers that
// build a one-op batch; call sites migrate at leisure, implementations
// override only `apply`.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/headers.hpp"
#include "net/ip.hpp"
#include "tables/entry.hpp"

namespace sf::dataplane {

enum class TableOpStatus : std::uint8_t {
  kOk = 0,            // state changed as requested
  kDuplicate,         // entry already present; action refreshed in place
  kNotFound,          // remove/update target absent (or unknown VNI)
  kCapacityExceeded,  // table full / digest conflict unresolvable
  kRateLimited,       // update channel budget exhausted; retry later
  kUnknownTarget,     // install target does not exist (decommission drift)
};

std::string to_string(TableOpStatus status);

/// True when the desired entry is present (install) or absent (remove)
/// after the call — the idempotent notion of success callers usually want.
constexpr bool succeeded(TableOpStatus status) {
  return status == TableOpStatus::kOk || status == TableOpStatus::kDuplicate;
}

/// One table operation, as the controller fans it out to install targets
/// (devices, mirrors, recovery replays).
struct TableOp {
  enum class Kind : std::uint8_t {
    kAddRoute,
    kDelRoute,
    kAddMapping,
    kDelMapping,
  };
  Kind kind = Kind::kAddRoute;
  net::Vni vni = 0;
  net::IpPrefix prefix;                    // routes
  tables::VxlanRouteAction route_action;   // routes
  tables::VmNcKey mapping_key;             // mappings
  tables::VmNcAction mapping_action;       // mappings
};

/// A table op stamped with its virtual apply-time: the index of the last
/// packet that must NOT yet observe it. Replaying the same stamped stream
/// yields the same per-packet table version at any thread count — the
/// deterministic mid-interval interleave (DESIGN.md §13).
struct TimedTableOp {
  TableOp op;
  std::uint64_t apply_index = 0;  // op visible to packets with index > this
};

/// An ordered transaction of table operations.
struct TableOpBatch {
  std::vector<TableOp> ops;

  TableOpBatch() = default;
  static TableOpBatch single(TableOp op) {
    TableOpBatch batch;
    batch.ops.push_back(std::move(op));
    return batch;
  }

  TableOpBatch& add(TableOp op) {
    ops.push_back(std::move(op));
    return *this;
  }
  TableOpBatch& add_route(net::Vni vni, const net::IpPrefix& prefix,
                          tables::VxlanRouteAction action) {
    TableOp op;
    op.kind = TableOp::Kind::kAddRoute;
    op.vni = vni;
    op.prefix = prefix;
    op.route_action = action;
    return add(op);
  }
  TableOpBatch& del_route(net::Vni vni, const net::IpPrefix& prefix) {
    TableOp op;
    op.kind = TableOp::Kind::kDelRoute;
    op.vni = vni;
    op.prefix = prefix;
    return add(op);
  }
  TableOpBatch& add_mapping(const tables::VmNcKey& key,
                            tables::VmNcAction action) {
    TableOp op;
    op.kind = TableOp::Kind::kAddMapping;
    op.vni = key.vni;
    op.mapping_key = key;
    op.mapping_action = action;
    return add(op);
  }
  TableOpBatch& del_mapping(const tables::VmNcKey& key) {
    TableOp op;
    op.kind = TableOp::Kind::kDelMapping;
    op.vni = key.vni;
    op.mapping_key = key;
    return add(op);
  }

  std::size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
};

/// Outcome of one op within a batch.
struct TableOpResult {
  TableOpStatus status = TableOpStatus::kOk;
  /// Table version at which the op became visible to forwarding; 0 for
  /// targets without a versioned read path.
  std::uint64_t publish_epoch = 0;
};

/// Outcome of a whole batch, op-by-op in submission order.
struct BatchResult {
  std::vector<TableOpResult> results;
  /// Latest table version the batch published (0 when unversioned).
  std::uint64_t publish_epoch = 0;
  /// Count of ops whose status did not satisfy succeeded().
  std::size_t failed = 0;

  bool all_succeeded() const { return failed == 0; }

  /// Appends one op outcome, tracking failure count and publish epoch.
  void record(TableOpStatus status, std::uint64_t epoch = 0) {
    results.push_back(TableOpResult{status, epoch});
    if (!dataplane::succeeded(status)) ++failed;
    if (epoch > publish_epoch) publish_epoch = epoch;
  }

  /// Status of the only op of a single-op batch.
  TableOpStatus status() const {
    return results.empty() ? TableOpStatus::kNotFound
                           : results.front().status;
  }
};

/// The controller-facing table API every gateway implements. The two
/// tables are the paper's Fig. 2 pair: VXLAN routes (LPM) and VM-NC
/// mappings (exact). Implementations override `apply` only; the batch is
/// applied in order and never stops early — per-op statuses report
/// partial failure.
class TableProgrammer {
 public:
  virtual ~TableProgrammer() = default;

  virtual BatchResult apply(const TableOpBatch& batch) = 0;

  // ---- v1 compatibility wrappers (one release; prefer apply()) ------

  TableOpStatus install_route(net::Vni vni, const net::IpPrefix& prefix,
                              tables::VxlanRouteAction action) {
    return apply(TableOpBatch().add_route(vni, prefix, action)).status();
  }
  TableOpStatus remove_route(net::Vni vni, const net::IpPrefix& prefix) {
    return apply(TableOpBatch().del_route(vni, prefix)).status();
  }
  TableOpStatus install_mapping(const tables::VmNcKey& key,
                                tables::VmNcAction action) {
    return apply(TableOpBatch().add_mapping(key, action)).status();
  }
  TableOpStatus remove_mapping(const tables::VmNcKey& key) {
    return apply(TableOpBatch().del_mapping(key)).status();
  }
};

/// Applies one fanned-out op to a target through the interface.
TableOpStatus apply(TableProgrammer& target, const TableOp& op);

}  // namespace sf::dataplane
