#include "dataplane/verdict.hpp"

namespace sf::dataplane {

const char* name(Action action) {
  switch (action) {
    case Action::kForwardToNc:
      return "forward-to-nc";
    case Action::kForwardTunnel:
      return "forward-tunnel";
    case Action::kFallbackToX86:
      return "fallback-to-x86";
    case Action::kSnatToInternet:
      return "snat-to-internet";
    case Action::kDrop:
      return "drop";
  }
  return "?";
}

std::string to_string(Action action) { return name(action); }

const char* name(DropReason reason) {
  // The strings keep the exact phrasing of the pre-enum free-form reasons
  // so traces and logs read the same as before the API migration.
  switch (reason) {
    case DropReason::kNone:
      return "none";
    case DropReason::kPipelineFault:
      return "pipeline fault";
    case DropReason::kInvalidVni:
      return "invalid VNI";
    case DropReason::kAclDeny:
      return "acl deny";
    case DropReason::kNoRoute:
      return "no route";
    case DropReason::kNoVmNcMapping:
      return "no VM-NC mapping";
    case DropReason::kNoNcResolved:
      return "no NC resolved for local scope";
    case DropReason::kPeerResolutionLoop:
      return "peer VNI resolution loop";
    case DropReason::kSnatPoolExhausted:
      return "SNAT pool exhausted";
    case DropReason::kFallbackRateLimited:
      return "fallback rate limited";
    case DropReason::kUnknownVni:
      return "VNI not assigned to any cluster";
    case DropReason::kNoLiveDevice:
      return "cluster has no live devices";
    case DropReason::kUnhandledScope:
      return "unhandled scope";
    case DropReason::kTenantShed:
      return "tenant shed by overload guard";
    case DropReason::kTenantNewFlowShed:
      return "tenant new-flow setup shed";
    case DropReason::kPuntQueueFull:
      return "punt queue full";
    case DropReason::kSnatPortBlockExhausted:
      return "SNAT port block exhausted for external IP";
  }
  return "?";
}

std::string to_string(DropReason reason) { return name(reason); }

std::string path_label(const Verdict& verdict) {
  switch (verdict.action) {
    case Action::kForwardToNc:
      return verdict.software_path ? "software-forwarded"
                                   : "hardware-forwarded";
    case Action::kForwardTunnel:
      return verdict.software_path ? "software-forwarded"
                                   : "hardware-tunnel";
    case Action::kSnatToInternet:
      return "software-snat";
    case Action::kFallbackToX86:
      return "fallback-to-x86";
    case Action::kDrop:
      return "dropped";
  }
  return "?";
}

}  // namespace sf::dataplane
