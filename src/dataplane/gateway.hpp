// The common packet-processing interface: one packet or a batch.
//
// The batch form is the API the region engine and the benches feed;
// `std::span` keeps callers free to batch from any contiguous storage. The
// default implementation walks the batch through process() in order, so an
// implementation that does nothing special is automatically equivalent to
// the single-packet path — verdicts and telemetry included (the batch
// equivalence tests hold every implementation to that).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataplane/verdict.hpp"

namespace sf::dataplane {

class Gateway {
 public:
  virtual ~Gateway() = default;

  /// Processes one packet. `now` is the simulation clock (seconds), used
  /// by rate limiters and session tables.
  virtual Verdict process(const net::OverlayPacket& packet, double now) = 0;

  /// Batch form: writes packets.size() verdicts into `out` (which must be
  /// at least that large). Implementations must keep verdicts and
  /// telemetry identical to looping process().
  virtual void process_batch(std::span<const net::OverlayPacket> packets,
                             double now, std::span<Verdict> out);

  /// Hash-threaded batch form: `flow_hashes[i]` must equal
  /// `packets[i].inner.hash()` — the sharded engine computes the RSS hash
  /// once per packet to pick a shard and passes it down, so batch-aware
  /// gateways derive their flow-cache keys and pipe steering from it
  /// without rehashing. The default ignores the hashes and defers to the
  /// 3-arg overload, so plain gateways stay correct automatically.
  virtual void process_batch(std::span<const net::OverlayPacket> packets,
                             std::span<const std::uint64_t> flow_hashes,
                             double now, std::span<Verdict> out);

  /// Indexed batch: processes `packets[k]` for each k in `indices` (in
  /// order) and writes `out[k]`. All three parallel spans are BASE arrays
  /// indexed by the same positions — the sharded engine hands each shard
  /// sub-spans of one shared index list, so no per-burst gather/scatter
  /// copies of packets or verdicts ever happen. `flow_hashes[k]` must
  /// equal `packets[k].inner.hash()` for every referenced k (it may be
  /// empty for gateways that do not use it). The default loops process().
  virtual void process_batch_indexed(
      std::span<const net::OverlayPacket> packets,
      std::span<const std::uint64_t> flow_hashes,
      std::span<const std::uint32_t> indices, double now,
      std::span<Verdict> out);

  /// Allocating convenience wrapper around the span form.
  std::vector<Verdict> process_batch(
      std::span<const net::OverlayPacket> packets, double now = 0);
};

}  // namespace sf::dataplane
