// The common packet-processing interface: one packet or a batch.
//
// The batch form is the API the region engine and the benches feed;
// `std::span` keeps callers free to batch from any contiguous storage. The
// default implementation walks the batch through process() in order, so an
// implementation that does nothing special is automatically equivalent to
// the single-packet path — verdicts and telemetry included (the batch
// equivalence tests hold every implementation to that).

#pragma once

#include <span>
#include <vector>

#include "dataplane/verdict.hpp"

namespace sf::dataplane {

class Gateway {
 public:
  virtual ~Gateway() = default;

  /// Processes one packet. `now` is the simulation clock (seconds), used
  /// by rate limiters and session tables.
  virtual Verdict process(const net::OverlayPacket& packet, double now) = 0;

  /// Batch form: writes packets.size() verdicts into `out` (which must be
  /// at least that large). Implementations must keep verdicts and
  /// telemetry identical to looping process().
  virtual void process_batch(std::span<const net::OverlayPacket> packets,
                             double now, std::span<Verdict> out);

  /// Allocating convenience wrapper around the span form.
  std::vector<Verdict> process_batch(
      std::span<const net::OverlayPacket> packets, double now = 0);
};

}  // namespace sf::dataplane
