// A fixed worker pool for the sharded interval engine.
//
// Deliberately minimal: one blocking primitive — run a batch of tasks and
// wait for all of them. Workers are created once (the "fixed thread pool"
// of the region engine) and reused across intervals; a pool built with 0
// or 1 threads executes inline on the caller, so the single-threaded
// configuration has no synchronization on its path at all.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sf::dataplane {

class ThreadPool {
 public:
  /// `threads` is the total worker parallelism; 0 and 1 both mean "no
  /// worker threads, run inline".
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Degree of parallelism run_all() can reach (>= 1).
  std::size_t thread_count() const {
    return workers_.empty() ? 1 : workers_.size();
  }

  /// Runs every task, returning when all have finished. Tasks must not
  /// throw. Not reentrant: one run_all() at a time.
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>> tasks_;
  std::size_t next_task_ = 0;
  std::size_t unfinished_ = 0;
  bool stop_ = false;
};

}  // namespace sf::dataplane
