#include "dataplane/gateway.hpp"

#include <stdexcept>

namespace sf::dataplane {

void Gateway::process_batch(std::span<const net::OverlayPacket> packets,
                            double now, std::span<Verdict> out) {
  if (out.size() < packets.size()) {
    throw std::invalid_argument(
        "process_batch: output span smaller than the batch");
  }
  for (std::size_t i = 0; i < packets.size(); ++i) {
    out[i] = process(packets[i], now);
  }
}

void Gateway::process_batch(std::span<const net::OverlayPacket> packets,
                            std::span<const std::uint64_t> flow_hashes,
                            double now, std::span<Verdict> out) {
  if (flow_hashes.size() != packets.size()) {
    throw std::invalid_argument(
        "process_batch: flow_hashes.size() must equal packets.size()");
  }
  process_batch(packets, now, out);
}

void Gateway::process_batch_indexed(
    std::span<const net::OverlayPacket> packets,
    std::span<const std::uint64_t> flow_hashes,
    std::span<const std::uint32_t> indices, double now,
    std::span<Verdict> out) {
  (void)flow_hashes;
  if (out.size() < packets.size()) {
    throw std::invalid_argument(
        "process_batch_indexed: output span smaller than the packet array");
  }
  for (const std::uint32_t i : indices) {
    out[i] = process(packets[i], now);
  }
}

std::vector<Verdict> Gateway::process_batch(
    std::span<const net::OverlayPacket> packets, double now) {
  std::vector<Verdict> verdicts(packets.size());
  process_batch(packets, now, verdicts);
  return verdicts;
}

}  // namespace sf::dataplane
