#include "dataplane/gateway.hpp"

#include <stdexcept>

namespace sf::dataplane {

void Gateway::process_batch(std::span<const net::OverlayPacket> packets,
                            double now, std::span<Verdict> out) {
  if (out.size() < packets.size()) {
    throw std::invalid_argument(
        "process_batch: output span smaller than the batch");
  }
  for (std::size_t i = 0; i < packets.size(); ++i) {
    out[i] = process(packets[i], now);
  }
}

std::vector<Verdict> Gateway::process_batch(
    std::span<const net::OverlayPacket> packets, double now) {
  std::vector<Verdict> verdicts(packets.size());
  process_batch(packets, now, verdicts);
  return verdicts;
}

}  // namespace sf::dataplane
