// Retained placement layouts and incremental re-placement (DESIGN.md §16).
//
// Placer::place()/evaluate() answer "does this workload fit" in one shot;
// a controller pushing thousands of route deltas per interval through
// TableProgrammer v2 cannot afford to recompute the layout (let alone the
// O(N) demand recount behind it) on every batch. A Placement is the
// placer's full output kept alive: per-table spill chains (the ordered
// extents each table occupies on each path), the chip memory they came
// from, and the per-pipe demand accounting. Placer::replace() edits that
// state under a WorkloadDelta, touching only the affected tables' chains.
//
// Parity invariant: every Placement returned by replace() has per-pipe
// demand accounting, per-path bills and feasibility identical to a
// from-scratch placement of the same workload. The incremental path is
// adopted only when it provably lands on that same accounting (checked
// against a cheap shadow placement); otherwise — and once fragmentation
// crosses CompressionConfig::replace_fragmentation_limit — the engine
// falls back to the shadow, which *is* the from-scratch layout. Stage-level
// extents may differ (incremental growth extends chain tails instead of
// repacking), which is exactly the fragmentation the limit bounds.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asic/memory.hpp"
#include "asic/placer.hpp"

namespace sf::asic {

/// Signed entry-count change of a GatewayWorkload — the placement-level
/// view of a TableOpBatch.
struct WorkloadDelta {
  std::int64_t vxlan_routes_v4 = 0;
  std::int64_t vxlan_routes_v6 = 0;
  std::int64_t vm_maps_v4 = 0;
  std::int64_t vm_maps_v6 = 0;
  std::int64_t digest_conflicts = 0;
  std::int64_t acl_rules = 0;
  std::int64_t meters = 0;
  std::int64_t counters = 0;
  std::int64_t steering_entries = 0;

  bool empty() const;
  /// Sum of absolute field changes (the "delta size" latency targets are
  /// quoted against).
  std::size_t magnitude() const;
  WorkloadDelta& operator+=(const WorkloadDelta& other);
  /// The delta applied to a workload, clamped at zero per field.
  GatewayWorkload applied_to(GatewayWorkload base) const;
};

/// Lifetime counters of a layout maintained through replace().
struct PlacementStats {
  std::uint64_t delta_applies = 0;    // incremental path adopted
  std::uint64_t full_recomputes = 0;  // shadow (from-scratch) adopted
  std::uint64_t moved_units = 0;      // units allocated/released by deltas
  std::uint64_t touched_tables = 0;   // table chains edited by deltas
  /// Off-plan spill segments opened or emptied by incremental moves; the
  /// replace() compaction trigger.
  std::uint64_t fragmentation_events = 0;
};

/// A placed layout: everything Placer::place() computed, kept alive.
class Placement {
 public:
  /// One merged run of a table's spill chain on a single pipe.
  struct Segment {
    unsigned pipe = 0;
    std::size_t units = 0;
  };

  Placement() = default;

  const ChipConfig& chip() const { return chip_; }
  const CompressionConfig& compression() const { return config_; }
  const GatewayWorkload& workload() const { return workload_; }
  /// Gateway paths: folded -> pipe pairs, unfolded -> single pipes.
  const std::vector<std::vector<unsigned>>& paths() const { return paths_; }

  std::size_t table_count() const { return tables_.size(); }
  std::optional<std::size_t> table_index(std::string_view name) const;
  const TableDemand& demand(std::size_t table) const {
    return tables_[table].demand;
  }
  /// Per-path bill of one table (after sharding under technique (b)).
  std::size_t sharded_units(std::size_t table, MemoryKind kind) const;

  /// The table's spill chain on one path, adjacent same-pipe extents
  /// merged, in allocation (= lookup fallback) order.
  std::vector<Segment> segments(std::size_t table, std::size_t path,
                                MemoryKind kind) const;
  std::size_t placed_units(std::size_t table, std::size_t path,
                           MemoryKind kind) const;
  std::size_t unplaced_units(std::size_t table, std::size_t path,
                             MemoryKind kind) const;
  /// Which pipe holds the `unit`-th unit of the table's per-path bill;
  /// nullopt when that unit overflowed (unplaced).
  std::optional<unsigned> locate_unit(std::size_t table, std::size_t path,
                                      MemoryKind kind,
                                      std::size_t unit) const;

  /// Demand-based per-pipe accounting (includes unplaced overflow charged
  /// to the preferred pipe — same accounting the OccupancyReport shows).
  std::size_t pipe_units(unsigned pipe, MemoryKind kind) const;
  /// Segments beyond each chain's first — how much spill the layout holds.
  std::size_t spill_segment_count() const;

  bool feasible() const { return feasible_; }
  const PlacementStats& stats() const { return stats_; }
  std::size_t fragmentation_score() const {
    return static_cast<std::size_t>(stats_.fragmentation_events);
  }

  /// The occupancy report a plain place() of this layout's demands yields.
  OccupancyReport report() const;

 private:
  friend class Placer;

  /// Allocation-ordered extents of one (table, path, kind) — the spill
  /// chain. `placed + unplaced` equals the sharded per-path bill.
  struct KindChain {
    std::vector<Extent> extents;
    std::size_t placed = 0;
    std::size_t unplaced = 0;
  };
  struct PlacedTable {
    TableDemand demand;          // unsharded bill
    std::size_t sram_units = 0;  // per-path bill after sharding
    std::size_t tcam_units = 0;
    std::vector<KindChain> sram;  // one chain per path
    std::vector<KindChain> tcam;
  };

  KindChain& chain(std::size_t table, std::size_t path, MemoryKind kind) {
    return kind == MemoryKind::kSram ? tables_[table].sram[path]
                                     : tables_[table].tcam[path];
  }
  const KindChain& chain(std::size_t table, std::size_t path,
                         MemoryKind kind) const {
    return kind == MemoryKind::kSram ? tables_[table].sram[path]
                                     : tables_[table].tcam[path];
  }

  /// Pipes to try, in order, for a table in `slot` on `path_index`:
  /// preferred pipe, path sibling, then (cross_path_spill) every other
  /// path's same-position pipe and its sibling.
  std::vector<unsigned> chain_pipes(std::size_t path_index,
                                    PathSlot slot) const;
  unsigned preferred_pipe(std::size_t path_index, PathSlot slot) const;

  /// Grows/shrinks one chain to `target` units, spilling along
  /// chain_pipes(); returns false when the edit cannot keep the layout's
  /// accounting coherent (caller falls back to the shadow).
  bool adjust_chain(std::size_t table, std::size_t path, MemoryKind kind,
                    std::size_t target);
  /// Balanced tables re-balance toward the fresh per-pipe targets.
  bool adjust_balanced(std::size_t table, std::size_t path, MemoryKind kind,
                       std::size_t target);
  /// Applies a fresh demand list to this layout in place; false → bail.
  bool apply_demands(const std::vector<TableDemand>& next);
  void grow_on_pipe(std::size_t table, std::size_t path, MemoryKind kind,
                    unsigned pipe, std::size_t units);
  std::size_t shrink_on_pipe(std::size_t table, std::size_t path,
                             MemoryKind kind, unsigned pipe,
                             std::size_t units);
  void recount_feasible();
  /// True when per-pipe accounting and feasibility match `other` — the
  /// parity gate replace() adopts incremental layouts through.
  bool accounting_matches(const Placement& other) const;

  ChipConfig chip_{};
  CompressionConfig config_{};
  GatewayWorkload workload_{};
  std::vector<std::vector<unsigned>> paths_;
  std::vector<PlacedTable> tables_;
  std::optional<ChipMemory> memory_;
  std::vector<std::size_t> sram_demand_;  // per-pipe, incl. overflow
  std::vector<std::size_t> tcam_demand_;
  bool feasible_ = true;
  PlacementStats stats_{};
};

/// All-zero entry counts (GatewayWorkload defaults to the paper's 1M
/// scale) — the starting point for delta-driven layouts.
inline GatewayWorkload empty_gateway_workload() {
  GatewayWorkload workload;
  workload.vxlan_routes_v4 = workload.vxlan_routes_v6 = 0;
  workload.vm_maps_v4 = workload.vm_maps_v6 = 0;
  workload.digest_conflicts = 0;
  workload.acl_rules = workload.meters = 0;
  workload.counters = workload.steering_entries = 0;
  return workload;
}

/// Owns a Placer plus the live Placement it maintains — the controller's
/// view of incremental re-placement: accumulate a WorkloadDelta per
/// TableOpBatch, apply() it here, read the layout and stats back.
class PlacementEngine {
 public:
  struct Config {
    ChipConfig chip;
    CompressionConfig compression = CompressionConfig::all();
    /// Workload the layout starts from; the delta stream grows it.
    GatewayWorkload initial = empty_gateway_workload();
  };

  explicit PlacementEngine(const Config& config)
      : placer_(config.chip),
        placement_(placer_.place_layout(config.initial, config.compression)) {
  }

  /// Applies a delta to the live layout. Empty deltas are a no-op.
  void apply(const WorkloadDelta& delta) {
    if (delta.empty()) return;
    placement_ = placer_.replace(placement_, delta);
  }

  const Placement& placement() const { return placement_; }
  const Placer& placer() const { return placer_; }
  const PlacementStats& stats() const { return placement_.stats(); }

 private:
  Placer placer_;
  Placement placement_;
};

}  // namespace sf::asic
