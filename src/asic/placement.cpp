#include "asic/placement.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sf::asic {
namespace {

std::size_t clamped_add(std::size_t base, std::int64_t delta) {
  if (delta >= 0) return base + static_cast<std::size_t>(delta);
  const std::size_t drop = static_cast<std::size_t>(-delta);
  return drop >= base ? 0 : base - drop;
}

std::size_t abs_size(std::int64_t v) {
  return static_cast<std::size_t>(v < 0 ? -v : v);
}

}  // namespace

// ---- WorkloadDelta ---------------------------------------------------------

bool WorkloadDelta::empty() const { return magnitude() == 0; }

std::size_t WorkloadDelta::magnitude() const {
  return abs_size(vxlan_routes_v4) + abs_size(vxlan_routes_v6) +
         abs_size(vm_maps_v4) + abs_size(vm_maps_v6) +
         abs_size(digest_conflicts) + abs_size(acl_rules) +
         abs_size(meters) + abs_size(counters) + abs_size(steering_entries);
}

WorkloadDelta& WorkloadDelta::operator+=(const WorkloadDelta& other) {
  vxlan_routes_v4 += other.vxlan_routes_v4;
  vxlan_routes_v6 += other.vxlan_routes_v6;
  vm_maps_v4 += other.vm_maps_v4;
  vm_maps_v6 += other.vm_maps_v6;
  digest_conflicts += other.digest_conflicts;
  acl_rules += other.acl_rules;
  meters += other.meters;
  counters += other.counters;
  steering_entries += other.steering_entries;
  return *this;
}

GatewayWorkload WorkloadDelta::applied_to(GatewayWorkload base) const {
  base.vxlan_routes_v4 = clamped_add(base.vxlan_routes_v4, vxlan_routes_v4);
  base.vxlan_routes_v6 = clamped_add(base.vxlan_routes_v6, vxlan_routes_v6);
  base.vm_maps_v4 = clamped_add(base.vm_maps_v4, vm_maps_v4);
  base.vm_maps_v6 = clamped_add(base.vm_maps_v6, vm_maps_v6);
  base.digest_conflicts = clamped_add(base.digest_conflicts, digest_conflicts);
  base.acl_rules = clamped_add(base.acl_rules, acl_rules);
  base.meters = clamped_add(base.meters, meters);
  base.counters = clamped_add(base.counters, counters);
  base.steering_entries =
      clamped_add(base.steering_entries, steering_entries);
  return base;
}

// ---- Placement: read side --------------------------------------------------

std::optional<std::size_t> Placement::table_index(
    std::string_view name) const {
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].demand.name == name) return i;
  }
  return std::nullopt;
}

std::size_t Placement::sharded_units(std::size_t table,
                                     MemoryKind kind) const {
  return kind == MemoryKind::kSram ? tables_[table].sram_units
                                   : tables_[table].tcam_units;
}

std::vector<Placement::Segment> Placement::segments(std::size_t table,
                                                    std::size_t path,
                                                    MemoryKind kind) const {
  std::vector<Segment> merged;
  for (const Extent& extent : chain(table, path, kind).extents) {
    if (!merged.empty() && merged.back().pipe == extent.pipeline) {
      merged.back().units += extent.units;
    } else {
      merged.push_back(Segment{extent.pipeline, extent.units});
    }
  }
  return merged;
}

std::size_t Placement::placed_units(std::size_t table, std::size_t path,
                                    MemoryKind kind) const {
  return chain(table, path, kind).placed;
}

std::size_t Placement::unplaced_units(std::size_t table, std::size_t path,
                                      MemoryKind kind) const {
  return chain(table, path, kind).unplaced;
}

std::optional<unsigned> Placement::locate_unit(std::size_t table,
                                               std::size_t path,
                                               MemoryKind kind,
                                               std::size_t unit) const {
  const KindChain& c = chain(table, path, kind);
  if (unit >= c.placed) return std::nullopt;  // unplaced (or out of bill)
  std::size_t offset = 0;
  for (const Extent& extent : c.extents) {
    if (unit < offset + extent.units) return extent.pipeline;
    offset += extent.units;
  }
  return std::nullopt;
}

std::size_t Placement::pipe_units(unsigned pipe, MemoryKind kind) const {
  return kind == MemoryKind::kSram ? sram_demand_[pipe] : tcam_demand_[pipe];
}

std::size_t Placement::spill_segment_count() const {
  std::size_t count = 0;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    for (std::size_t path = 0; path < paths_.size(); ++path) {
      for (MemoryKind kind : {MemoryKind::kSram, MemoryKind::kTcam}) {
        const std::size_t segs = segments(t, path, kind).size();
        if (segs > 1) count += segs - 1;
      }
    }
  }
  return count;
}

OccupancyReport Placement::report() const {
  OccupancyReport report;
  report.demands.reserve(tables_.size());
  for (const PlacedTable& table : tables_) {
    report.demands.push_back(table.demand);
  }
  report.pipes.resize(chip_.pipelines);
  report.paths.resize(paths_.size());

  // Every path carries the same sharded bill sum (replicated or 1/paths
  // shards of each table) — identical to the accumulation place() does.
  std::size_t path_sram = 0;
  std::size_t path_tcam = 0;
  for (const PlacedTable& table : tables_) {
    path_sram += table.sram_units;
    path_tcam += table.tcam_units;
  }
  for (std::size_t path_index = 0; path_index < paths_.size(); ++path_index) {
    const double path_capacity_scale =
        static_cast<double>(paths_[path_index].size());
    report.paths[path_index].sram =
        static_cast<double>(path_sram) /
        (path_capacity_scale *
         static_cast<double>(chip_.sram_words_per_pipeline()));
    report.paths[path_index].tcam =
        static_cast<double>(path_tcam) /
        (path_capacity_scale *
         static_cast<double>(chip_.tcam_slices_per_pipeline()));
    report.sram_path_worst =
        std::max(report.sram_path_worst, report.paths[path_index].sram);
    report.tcam_path_worst =
        std::max(report.tcam_path_worst, report.paths[path_index].tcam);
  }
  for (unsigned p = 0; p < chip_.pipelines; ++p) {
    report.pipes[p].sram =
        static_cast<double>(sram_demand_[p]) /
        static_cast<double>(chip_.sram_words_per_pipeline());
    report.pipes[p].tcam =
        static_cast<double>(tcam_demand_[p]) /
        static_cast<double>(chip_.tcam_slices_per_pipeline());
    report.sram_worst = std::max(report.sram_worst, report.pipes[p].sram);
    report.tcam_worst = std::max(report.tcam_worst, report.pipes[p].tcam);
  }
  report.feasible = feasible_;
  return report;
}

// ---- Placement: chain geometry ---------------------------------------------

unsigned Placement::preferred_pipe(std::size_t path_index,
                                   PathSlot slot) const {
  const std::vector<unsigned>& pipes = paths_[path_index];
  const bool back_slot =
      slot == PathSlot::kBackEgress || slot == PathSlot::kBackIngress;
  return pipes[back_slot && pipes.size() > 1 ? 1 : 0];
}

std::vector<unsigned> Placement::chain_pipes(std::size_t path_index,
                                             PathSlot slot) const {
  const bool back_slot =
      slot == PathSlot::kBackEgress || slot == PathSlot::kBackIngress;
  std::vector<unsigned> order;
  order.reserve(config_.cross_path_spill ? paths_.size() * 2 : 2);
  const auto push_path = [&](const std::vector<unsigned>& pipes) {
    order.push_back(pipes[back_slot && pipes.size() > 1 ? 1 : 0]);
    if (pipes.size() > 1) order.push_back(pipes[back_slot ? 0 : 1]);
  };
  push_path(paths_[path_index]);
  if (config_.cross_path_spill) {
    for (std::size_t offset = 1; offset < paths_.size(); ++offset) {
      push_path(paths_[(path_index + offset) % paths_.size()]);
    }
  }
  return order;
}

// ---- Placement: incremental mutation ---------------------------------------

void Placement::grow_on_pipe(std::size_t table, std::size_t path,
                             MemoryKind kind, unsigned pipe,
                             std::size_t units) {
  if (units == 0) return;
  KindChain& c = chain(table, path, kind);
  auto extents =
      memory_->allocate(pipe, kind, units, tables_[table].demand.name);
  if (!extents) return;  // caller sized by free_units; defensive
  if (!c.extents.empty() && c.extents.back().pipeline != pipe) {
    ++stats_.fragmentation_events;
  }
  for (Extent& extent : *extents) c.extents.push_back(extent);
  c.placed += units;
  auto& demand_vec = kind == MemoryKind::kSram ? sram_demand_ : tcam_demand_;
  demand_vec[pipe] += units;
  stats_.moved_units += units;
}

std::size_t Placement::shrink_on_pipe(std::size_t table, std::size_t path,
                                      MemoryKind kind, unsigned pipe,
                                      std::size_t units) {
  KindChain& c = chain(table, path, kind);
  auto& demand_vec = kind == MemoryKind::kSram ? sram_demand_ : tcam_demand_;
  std::size_t remaining = units;
  for (std::size_t i = c.extents.size(); i > 0 && remaining > 0; --i) {
    Extent& extent = c.extents[i - 1];
    if (extent.pipeline != pipe) continue;
    const std::size_t take = std::min(extent.units, remaining);
    memory_->release(Extent{extent.pipeline, extent.stage, kind, take});
    extent.units -= take;
    remaining -= take;
    c.placed -= take;
    demand_vec[pipe] -= take;
    stats_.moved_units += take;
    if (extent.units == 0) {
      const bool was_spill = extent.pipeline != preferred_pipe(
          path, tables_[table].demand.slot);
      c.extents.erase(c.extents.begin() +
                      static_cast<std::ptrdiff_t>(i - 1));
      if (was_spill && !c.extents.empty()) ++stats_.fragmentation_events;
    }
  }
  return units - remaining;
}

bool Placement::adjust_chain(std::size_t table, std::size_t path,
                             MemoryKind kind, std::size_t target) {
  KindChain& c = chain(table, path, kind);
  if (c.placed + c.unplaced == target) return true;
  const PathSlot slot = tables_[table].demand.slot;
  const unsigned preferred = preferred_pipe(path, slot);
  auto& demand_vec = kind == MemoryKind::kSram ? sram_demand_ : tcam_demand_;

  // Unplaced overflow is re-derived below; uncharge the old amount.
  demand_vec[preferred] -= c.unplaced;
  c.unplaced = 0;

  if (c.placed > target) {
    // Shrink from the chain's tail: newest spill goes first.
    std::size_t drop = c.placed - target;
    while (drop > 0 && !c.extents.empty()) {
      const unsigned pipe = c.extents.back().pipeline;
      drop -= shrink_on_pipe(table, path, kind, pipe, drop);
    }
  } else if (target > c.placed) {
    // Grow at the chain's tail and keep spilling along the chain order;
    // earlier pipes are not revisited (that room is the fragmentation the
    // parity gate and replace_fragmentation_limit account for).
    const std::vector<unsigned> order = chain_pipes(path, slot);
    std::size_t start = 0;
    if (!c.extents.empty()) {
      const unsigned last_pipe = c.extents.back().pipeline;
      const auto it = std::find(order.begin(), order.end(), last_pipe);
      if (it == order.end()) return false;  // chain from a foreign config
      start = static_cast<std::size_t>(it - order.begin());
    }
    std::size_t need = target - c.placed;
    for (std::size_t i = start; i < order.size() && need > 0; ++i) {
      const std::size_t take =
          std::min(need, memory_->free_units(order[i], kind));
      if (take == 0) continue;
      grow_on_pipe(table, path, kind, order[i], take);
      need -= take;
    }
    c.unplaced = need;
  }
  demand_vec[preferred] += c.unplaced;
  return true;
}

bool Placement::adjust_balanced(std::size_t table, std::size_t path,
                                MemoryKind kind, std::size_t target) {
  const std::vector<unsigned>& pipes = paths_[path];
  if (pipes.size() < 2) return adjust_chain(table, path, kind, target);
  KindChain& c = chain(table, path, kind);
  if (c.placed + c.unplaced == target) return true;
  const unsigned first = pipes[0];
  const unsigned second = pipes[1];
  std::size_t cur_first = 0;
  std::size_t cur_second = 0;
  for (const Extent& extent : c.extents) {
    if (extent.pipeline == first) {
      cur_first += extent.units;
    } else if (extent.pipeline == second) {
      cur_second += extent.units;
    } else {
      return false;  // cross-path spill present; let the shadow re-balance
    }
  }
  auto& demand_vec = kind == MemoryKind::kSram ? sram_demand_ : tcam_demand_;
  demand_vec[first] -= c.unplaced;
  c.unplaced = 0;

  // Fresh targets: half/half, odd unit on the first pipe.
  const std::size_t want_first = (target + 1) / 2;
  const std::size_t want_second = target - want_first;
  if (cur_first > want_first) {
    shrink_on_pipe(table, path, kind, first, cur_first - want_first);
    cur_first = want_first;
  }
  if (cur_second > want_second) {
    shrink_on_pipe(table, path, kind, second, cur_second - want_second);
    cur_second = want_second;
  }
  std::size_t need = (want_first - cur_first) + (want_second - cur_second);
  // Grow toward the targets; overflow follows the fresh order (first pipe,
  // second pipe, first again, then cross-path).
  if (need > 0) {
    const std::size_t take_first = std::min(
        want_first - cur_first, memory_->free_units(first, kind));
    grow_on_pipe(table, path, kind, first, take_first);
    need -= take_first;
    const std::size_t take_second =
        std::min(need, memory_->free_units(second, kind));
    grow_on_pipe(table, path, kind, second, take_second);
    need -= take_second;
    if (need > 0) {
      const std::size_t take_back =
          std::min(need, memory_->free_units(first, kind));
      grow_on_pipe(table, path, kind, first, take_back);
      need -= take_back;
    }
    if (need > 0 && config_.cross_path_spill) {
      const std::vector<unsigned> order = chain_pipes(path, PathSlot::kBalanced);
      for (std::size_t i = 2; i < order.size() && need > 0; ++i) {
        const std::size_t take =
            std::min(need, memory_->free_units(order[i], kind));
        if (take == 0) continue;
        grow_on_pipe(table, path, kind, order[i], take);
        need -= take;
      }
    }
    c.unplaced = need;
  }
  demand_vec[first] += c.unplaced;
  return true;
}

void Placement::recount_feasible() {
  feasible_ = true;
  for (const PlacedTable& table : tables_) {
    for (const KindChain& c : table.sram) {
      if (c.unplaced > 0) feasible_ = false;
    }
    for (const KindChain& c : table.tcam) {
      if (c.unplaced > 0) feasible_ = false;
    }
  }
}

bool Placement::accounting_matches(const Placement& other) const {
  return sram_demand_ == other.sram_demand_ &&
         tcam_demand_ == other.tcam_demand_ && feasible_ == other.feasible_;
}

bool Placement::apply_demands(const std::vector<TableDemand>& next) {
  const std::size_t path_count = paths_.size();

  struct Target {
    std::optional<std::size_t> ours;  // existing table index
    std::size_t sram = 0;             // sharded per-path bills
    std::size_t tcam = 0;
  };
  std::vector<Target> targets(next.size());
  std::vector<char> keep(tables_.size(), 0);
  for (std::size_t i = 0; i < next.size(); ++i) {
    const TableDemand& d = next[i];
    Target& t = targets[i];
    t.ours = table_index(d.name);
    if (t.ours) {
      const TableDemand& old = tables_[*t.ours].demand;
      if (old.slot != d.slot || old.shardable != d.shardable) return false;
      keep[*t.ours] = 1;
    }
    t.sram = d.sram_words;
    t.tcam = d.tcam_slices;
    if (config_.split && d.shardable && path_count > 1) {
      t.sram = (t.sram + path_count - 1) / path_count;
      t.tcam = (t.tcam + path_count - 1) / path_count;
    }
  }

  const auto adjust = [&](std::size_t table, std::size_t path,
                          MemoryKind kind, std::size_t target) {
    return tables_[table].demand.slot == PathSlot::kBalanced
               ? adjust_balanced(table, path, kind, target)
               : adjust_chain(table, path, kind, target);
  };

  // Pass 1 — shrink: removed tables to zero, shrunk tables to their new
  // bills. Freeing room first lets the grow pass land where a fresh
  // placement would.
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    if (keep[t]) continue;
    ++stats_.touched_tables;
    for (std::size_t path = 0; path < path_count; ++path) {
      if (!adjust(t, path, MemoryKind::kSram, 0)) return false;
      if (!adjust(t, path, MemoryKind::kTcam, 0)) return false;
    }
  }
  for (std::size_t i = 0; i < next.size(); ++i) {
    const Target& target = targets[i];
    if (!target.ours) continue;
    PlacedTable& table = tables_[*target.ours];
    const bool changed =
        table.sram_units != target.sram || table.tcam_units != target.tcam;
    if (changed) ++stats_.touched_tables;
    for (std::size_t path = 0; path < path_count; ++path) {
      if (target.sram < table.sram_units &&
          !adjust(*target.ours, path, MemoryKind::kSram, target.sram)) {
        return false;
      }
      if (target.tcam < table.tcam_units &&
          !adjust(*target.ours, path, MemoryKind::kTcam, target.tcam)) {
        return false;
      }
    }
  }

  // Pass 2 — grow existing tables and place brand-new ones.
  for (std::size_t i = 0; i < next.size(); ++i) {
    Target& target = targets[i];
    if (!target.ours) {
      PlacedTable fresh;
      fresh.demand = next[i];
      fresh.sram.resize(path_count);
      fresh.tcam.resize(path_count);
      tables_.push_back(std::move(fresh));
      target.ours = tables_.size() - 1;
      keep.push_back(1);
      ++stats_.touched_tables;
    }
    PlacedTable& table = tables_[*target.ours];
    for (std::size_t path = 0; path < path_count; ++path) {
      if (!adjust(*target.ours, path, MemoryKind::kSram, target.sram)) {
        return false;
      }
      if (!adjust(*target.ours, path, MemoryKind::kTcam, target.tcam)) {
        return false;
      }
    }
    table.demand = next[i];
    table.sram_units = target.sram;
    table.tcam_units = target.tcam;
  }

  // Rebuild the table list in the fresh demand order, dropping removals,
  // so report().demands matches a from-scratch placement.
  std::vector<PlacedTable> reordered;
  reordered.reserve(next.size());
  for (const Target& target : targets) {
    reordered.push_back(std::move(tables_[*target.ours]));
  }
  tables_ = std::move(reordered);

  recount_feasible();
  return true;
}

// ---- Placer: layout construction -------------------------------------------

Placement Placer::place_layout(const GatewayWorkload& workload,
                               const CompressionConfig& config) const {
  return place_layout(compute_demands(chip_, workload, config), config,
                      workload);
}

Placement Placer::place_layout(std::vector<TableDemand> demands,
                               const CompressionConfig& config,
                               const GatewayWorkload& workload) const {
  if (config.split && !config.fold) {
    throw std::invalid_argument(
        "table splitting between pipelines requires pipeline folding");
  }

  Placement out;
  out.chip_ = chip_;
  out.config_ = config;
  out.workload_ = workload;

  // Paths: folded -> {0,1} and {2,3}; unfolded -> each pipeline is an
  // independent gateway holding everything.
  if (config.fold) {
    for (unsigned p = 0; p + 1 < chip_.pipelines; p += 2) {
      out.paths_.push_back({p, p + 1});
    }
  } else {
    for (unsigned p = 0; p < chip_.pipelines; ++p) {
      out.paths_.push_back({p});
    }
  }
  const std::size_t path_count = out.paths_.size();

  out.memory_.emplace(chip_);
  out.memory_->set_track_allocations(false);
  out.sram_demand_.assign(chip_.pipelines, 0);
  out.tcam_demand_.assign(chip_.pipelines, 0);

  out.tables_.reserve(demands.size());
  for (TableDemand& demand : demands) {
    Placement::PlacedTable table;
    table.demand = std::move(demand);
    // Shard across paths under (b); otherwise every path replicates.
    table.sram_units = table.demand.sram_words;
    table.tcam_units = table.demand.tcam_slices;
    if (config.split && table.demand.shardable && path_count > 1) {
      table.sram_units = (table.sram_units + path_count - 1) / path_count;
      table.tcam_units = (table.tcam_units + path_count - 1) / path_count;
    }
    table.sram.resize(path_count);
    table.tcam.resize(path_count);
    out.tables_.push_back(std::move(table));
  }

  ChipMemory& memory = *out.memory_;
  bool feasible = true;

  for (std::size_t path_index = 0; path_index < path_count; ++path_index) {
    const std::vector<unsigned>& pipes = out.paths_[path_index];
    for (std::size_t t = 0; t < out.tables_.size(); ++t) {
      Placement::PlacedTable& table = out.tables_[t];
      // Slot decides the preferred pipe on the path: front = first pipe,
      // back = second (same pipe when unfolded).
      const bool back_slot = table.demand.slot == PathSlot::kBackEgress ||
                             table.demand.slot == PathSlot::kBackIngress;
      const unsigned preferred =
          pipes[back_slot && pipes.size() > 1 ? 1 : 0];
      const unsigned other =
          pipes[pipes.size() > 1 ? (back_slot ? 0 : 1) : 0];
      const bool balanced =
          table.demand.slot == PathSlot::kBalanced && pipes.size() > 1;

      for (auto [kind, units] :
           {std::pair{MemoryKind::kSram, table.sram_units},
            std::pair{MemoryKind::kTcam, table.tcam_units}}) {
        if (units == 0) continue;
        auto& demand_vec =
            kind == MemoryKind::kSram ? out.sram_demand_ : out.tcam_demand_;
        Placement::KindChain& chain = kind == MemoryKind::kSram
                                          ? table.sram[path_index]
                                          : table.tcam[path_index];
        const auto record = [&](unsigned pipe, std::size_t taken,
                                std::vector<Extent>& extents) {
          demand_vec[pipe] += taken;
          chain.placed += taken;
          for (Extent& extent : extents) chain.extents.push_back(extent);
        };
        // Balanced tables split half/half across the path's pipes ("tables
        // should be evenly distributed in different pipelines"); slotted
        // tables try their pipe and spill the remainder to the sibling
        // ("mapping large tables across pipelines").
        const std::size_t want_first = balanced ? (units + 1) / 2 : units;
        const std::size_t room = memory.free_units(preferred, kind);
        const std::size_t first = std::min(want_first, room);
        if (first > 0) {
          if (auto extents = memory.allocate(preferred, kind, first,
                                             table.demand.name)) {
            record(preferred, first, *extents);
          }
        }
        std::size_t rest = units - first;
        if (rest > 0 && other != preferred) {
          const std::size_t other_room = memory.free_units(other, kind);
          const std::size_t second = std::min(rest, other_room);
          if (second > 0) {
            if (auto extents =
                    memory.allocate(other, kind, second, table.demand.name)) {
              record(other, second, *extents);
              rest -= second;
            }
          }
          // A balanced table's own overflow may still fit back on the
          // first pipe.
          if (rest > 0) {
            const std::size_t back_room = memory.free_units(preferred, kind);
            const std::size_t third = std::min(rest, back_room);
            if (third > 0) {
              if (auto extents = memory.allocate(preferred, kind, third,
                                                 table.demand.name)) {
                record(preferred, third, *extents);
                rest -= third;
              }
            }
          }
        }
        if (rest > 0 && config.cross_path_spill && path_count > 1) {
          // (f): keep spilling into the other paths' pipes, same slot
          // position first, before giving up.
          const std::vector<unsigned> order =
              out.chain_pipes(path_index, table.demand.slot);
          const std::size_t own = pipes.size() > 1 ? 2 : 1;
          for (std::size_t i = own; i < order.size() && rest > 0; ++i) {
            const std::size_t cross_room = memory.free_units(order[i], kind);
            const std::size_t take = std::min(rest, cross_room);
            if (take == 0) continue;
            if (auto extents =
                    memory.allocate(order[i], kind, take, table.demand.name)) {
              record(order[i], take, *extents);
              rest -= take;
            }
          }
        }
        if (rest > 0) {
          // Out of memory: record the unplaced demand against the
          // preferred pipe so occupancy shows the overflow.
          demand_vec[preferred] += rest;
          chain.unplaced = rest;
          feasible = false;
        }
      }
    }
  }
  out.feasible_ = feasible;
  return out;
}

// ---- Placer: public wrappers and incremental re-placement ------------------

OccupancyReport Placer::evaluate(const GatewayWorkload& workload,
                                 const CompressionConfig& config) const {
  return place_layout(workload, config).report();
}

OccupancyReport Placer::place(std::vector<TableDemand> demands,
                              const CompressionConfig& config) const {
  // The workload stays at its default here — it is layout metadata only;
  // the demands carry the bill.
  return place_layout(std::move(demands), config, GatewayWorkload{}).report();
}

Placement Placer::replace(const Placement& base,
                          const WorkloadDelta& delta) const {
  const GatewayWorkload next = delta.applied_to(base.workload());
  const CompressionConfig& config = base.compression();
  std::vector<TableDemand> next_demands =
      compute_demands(chip_, next, config);

  // The shadow is what a from-scratch placement of the new workload looks
  // like — cheap (O(tables x paths)) because demands are already counted.
  // It is both the fallback layout and the parity oracle.
  Placement shadow = place_layout(std::move(next_demands), config, next);
  shadow.stats_ = base.stats_;
  const auto adopt_shadow = [&]() {
    shadow.stats_.fragmentation_events = 0;  // compacted
    ++shadow.stats_.full_recomputes;
    return std::move(shadow);
  };

  if (base.fragmentation_score() >= config.replace_fragmentation_limit) {
    return adopt_shadow();
  }

  Placement incremental = base;
  incremental.workload_ = next;
  std::vector<TableDemand> fresh_demands;
  fresh_demands.reserve(shadow.table_count());
  for (std::size_t i = 0; i < shadow.table_count(); ++i) {
    fresh_demands.push_back(shadow.demand(i));
  }
  if (incremental.apply_demands(fresh_demands) &&
      incremental.accounting_matches(shadow)) {
    ++incremental.stats_.delta_applies;
    return incremental;
  }
  return adopt_shadow();
}

}  // namespace sf::asic
